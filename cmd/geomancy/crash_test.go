package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"

	"geomancy"
	"geomancy/internal/replaydb"
)

// TestMain lets the crash-safety test re-exec this test binary as the
// real geomancy command: with the environment marker set, the process
// runs main() instead of the test suite.
func TestMain(m *testing.M) {
	if os.Getenv("GEOMANCY_RUN_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// TestCrashSafetySIGKILL is the crash-recovery acceptance test: a
// deployment running with -checkpoint-dir and a WAL-backed ReplayDB is
// killed with SIGKILL (no signal handler, no graceful snapshot — the
// WAL may be torn mid-frame), then restored from the newest intact
// snapshot plus the WAL tail. The restored system must resume cleanly,
// and the replay log must hold every record exactly once: sequence
// numbers contiguous from 1 with no gaps (lost records) and no
// duplicates (double-applied tail).
func TestCrashSafetySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills a child process")
	}
	dir := t.TempDir()
	wal := filepath.Join(dir, "replay.wal")
	ckptDir := filepath.Join(dir, "ckpt")

	args := []string{
		"-runs", "10000", // far more than the child will live to finish
		"-seed", "11", "-cooldown", "2", "-bootstrap", "2",
		"-epochs", "4", "-window", "300", "-parallel", "2",
		"-db", wal, "-checkpoint-dir", ckptDir, "-checkpoint-every", "2",
	}
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "GEOMANCY_RUN_MAIN=1")
	var out strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Wait until at least two snapshots exist, so the kill lands well past
	// the first checkpoint and the WAL has a tail beyond the watermark.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if n, _ := filepath.Glob(filepath.Join(ckptDir, "snap-*.ckpt")); len(n) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no snapshots after 60s; child output:\n%s", out.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	time.Sleep(150 * time.Millisecond) // let the WAL grow past the snapshot
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ProcessState.Sys().(syscall.WaitStatus).Signal() != syscall.SIGKILL {
		t.Fatalf("child did not die by SIGKILL: %v\n%s", err, out.String())
	}

	// Restore with the same configuration the child ran under.
	opts := []geomancy.Option{
		geomancy.WithDistributed(),
		geomancy.WithSeed(11),
		geomancy.WithCooldown(2),
		geomancy.WithBootstrapRuns(2),
		geomancy.WithEpochs(4),
		geomancy.WithTrainingWindow(300),
		geomancy.WithParallelism(2),
		geomancy.WithReplayDB(wal),
		geomancy.WithCheckpointDir(ckptDir),
	}
	sys, err := geomancy.RestoreLatest(ckptDir, opts...)
	if err != nil {
		t.Fatalf("restoring after SIGKILL: %v\nchild output:\n%s", err, out.String())
	}
	resumedAt := len(sys.Stats())
	if resumedAt < 2 {
		t.Errorf("resumed at %d runs, want >= 2 (snapshot cadence)", resumedAt)
	}
	if _, err := sys.RunN(3); err != nil {
		t.Fatalf("running after restore: %v", err)
	}
	if got := len(sys.Stats()); got != resumedAt+3 {
		t.Errorf("resumed system completed %d runs, want %d", got, resumedAt+3)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	// Integrity: reopen the WAL raw and audit the sequence numbers.
	db, err := replaydb.Open(replaydb.Options{Path: wal})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var seqs []uint64
	for _, rec := range db.All() {
		seqs = append(seqs, rec.Seq)
	}
	for _, mv := range db.Movements() {
		seqs = append(seqs, mv.Seq)
	}
	if len(seqs) == 0 {
		t.Fatal("replay log is empty after crash + resume")
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for i, s := range seqs {
		if want := uint64(i + 1); s != want {
			t.Fatalf("sequence %d at position %d (want %d): records were %s across the crash",
				s, i, want, map[bool]string{true: "lost", false: "duplicated"}[s > want])
		}
	}
}
