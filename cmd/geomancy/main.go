// Command geomancy runs the full distributed deployment against the
// simulated Bluesky system: the Interface Daemon listens on TCP, one
// monitoring agent per mount ships telemetry batches, a control agent
// executes layout pushes, and the DRL engine trains from the ReplayDB and
// pushes new layouts every cooldown.
//
// This is the wiring of Fig. 2, with the simulated cluster standing in for
// the target system:
//
//	geomancy [-listen 127.0.0.1:0] [-runs 25] [-seed 1] [-epochs 40]
//	         [-scenario belle] [-list-scenarios]
//	         [-policy geomancy] [-list-policies]
//	         [-cooldown 5] [-bootstrap 5] [-db replay.wal] [-model 1]
//	         [-epsilon 0.1] [-target throughput|latency] [-parallel 0]
//	         [-shards 0]
//	         [-checkpoint-dir state/] [-checkpoint-every 5]
//	         [-retry-attempts 4] [-retry-base 5ms] [-io-timeout 5s]
//	         [-fail-open] [-fault-drop 0] [-fault-delay 0] [-fault-partial 0]
//	         [-metrics-addr 127.0.0.1:9090] [-metrics-json metrics.json] [-v]
//
// With -checkpoint-dir the process is crash-safe: rotating snapshots are
// written every -checkpoint-every runs and on graceful shutdown, and a
// restart with the same flags resumes from the newest intact snapshot,
// continuing the interrupted trajectory bit-for-bit. The first
// SIGINT/SIGTERM finishes the current run, snapshots, and exits; a second
// signal aborts immediately (no snapshot is taken of the torn run).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"geomancy"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "Interface Daemon listen address")
	runs := flag.Int("runs", 25, "workload runs to execute")
	seed := flag.Int64("seed", 1, "random seed")
	epochs := flag.Int("epochs", 40, "training epochs per decision")
	cooldown := flag.Int("cooldown", 5, "runs between layout decisions")
	bootstrap := flag.Int("bootstrap", 5, "telemetry-only warm-up runs before the first decision")
	windowX := flag.Int("window", 1000, "per-device ReplayDB training window")
	dbPath := flag.String("db", "", "ReplayDB WAL path (empty = in-memory)")
	verbose := flag.Bool("v", false, "log layout decisions and checkpoint writes")
	model := flag.Int("model", 1, "Table I architecture number (1-23)")
	epsilon := flag.Float64("epsilon", 0.1, "exploration rate")
	target := flag.String("target", "throughput", "modeling target: throughput or latency")
	parallel := flag.Int("parallel", 0, "engine worker pool size (0 = GOMAXPROCS, 1 = serial)")
	shards := flag.Int("shards", 0, "partition devices into N placement shards with one batched inference per cycle (0 = unsharded)")
	topK := flag.Int("topk", 0, "candidate pruning: score only the top-k devices per class by recent throughput (0 = exhaustive scoring)")
	fullRescan := flag.Int("full-rescan-every", 0, "with -topk: every Nth decision re-scores the full candidate space (0 = default 8)")
	ckptDir := flag.String("checkpoint-dir", "", "snapshot directory: resume from it on start, checkpoint into it while running (empty = disabled)")
	ckptEvery := flag.Int("checkpoint-every", 5, "runs between rotating snapshots (0 = only on shutdown)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus metrics on this address (empty = disabled)")
	metricsJSON := flag.String("metrics-json", "", "write a JSON metrics snapshot to this file on exit")
	retryAttempts := flag.Int("retry-attempts", 0, "agent RPC retry budget (0 = default 4)")
	retryBase := flag.Duration("retry-base", 0, "agent retry base backoff (0 = default 5ms)")
	ioTimeout := flag.Duration("io-timeout", 0, "per-RPC agent I/O deadline (0 = default 5s)")
	failOpen := flag.Bool("fail-open", true, "keep serving the last-known layout when agents are unreachable")
	faultDrop := flag.Float64("fault-drop", 0, "inject: probability an agent I/O drops the connection")
	faultDelay := flag.Float64("fault-delay", 0, "inject: probability an agent I/O is delayed")
	faultDelayDur := flag.Duration("fault-delay-ms", 2*time.Millisecond, "inject: delay applied to delayed I/Os")
	faultPartial := flag.Float64("fault-partial", 0, "inject: probability a write is truncated mid-stream")
	scenarioName := flag.String("scenario", "belle", "workload scenario to drive (see -list-scenarios)")
	listScenarios := flag.Bool("list-scenarios", false, "list the workload scenario catalogue and exit")
	policyName := flag.String("policy", "geomancy", "placement policy to drive decisions (see -list-policies)")
	listPolicies := flag.Bool("list-policies", false, "list the placement-policy catalogue and exit")
	flag.Parse()

	if *listScenarios {
		for _, info := range geomancy.Scenarios() {
			fmt.Printf("%-16s %s\n", info.Name, info.Description)
		}
		return
	}
	if *listPolicies {
		for _, info := range geomancy.Policies() {
			fmt.Printf("%-16s %s\n", info.Name, info.Description)
		}
		return
	}

	if *parallel <= 0 {
		*parallel = runtime.GOMAXPROCS(0)
	}
	reg := geomancy.NewMetrics()
	opts := []geomancy.Option{
		geomancy.WithDistributed(),
		geomancy.WithListenAddr(*listen),
		geomancy.WithSeed(*seed),
		geomancy.WithScenario(*scenarioName),
		geomancy.WithPolicy(*policyName),
		geomancy.WithModel(*model),
		geomancy.WithEpsilon(*epsilon),
		geomancy.WithEpochs(*epochs),
		geomancy.WithCooldown(*cooldown),
		geomancy.WithBootstrapRuns(*bootstrap),
		geomancy.WithTrainingWindow(*windowX),
		geomancy.WithParallelism(*parallel),
		geomancy.WithTelemetry(reg),
		geomancy.WithFailOpen(*failOpen),
		geomancy.WithRetryPolicy(geomancy.RetryPolicy{
			MaxAttempts: *retryAttempts,
			BaseDelay:   *retryBase,
			IOTimeout:   *ioTimeout,
		}),
	}
	if *dbPath != "" {
		opts = append(opts, geomancy.WithReplayDB(*dbPath))
	}
	if *shards > 0 {
		opts = append(opts, geomancy.WithShards(*shards))
	}
	if *topK > 0 {
		opts = append(opts, geomancy.WithTopK(*topK))
	}
	if *fullRescan > 0 {
		opts = append(opts, geomancy.WithFullRescanEvery(*fullRescan))
	}
	if *target == "latency" {
		opts = append(opts, geomancy.WithLatencyTarget())
	}
	faults := *faultDrop > 0 || *faultDelay > 0 || *faultPartial > 0
	if faults {
		opts = append(opts, geomancy.WithFaultInjection(geomancy.FaultConfig{
			Seed:             *seed,
			DropRate:         *faultDrop,
			DelayRate:        *faultDelay,
			Delay:            *faultDelayDur,
			PartialWriteRate: *faultPartial,
		}))
	}
	if *ckptDir != "" {
		opts = append(opts, geomancy.WithCheckpointDir(*ckptDir))
	}

	// The first signal requests a graceful stop: the current run finishes,
	// Close flushes a boundary snapshot, and the process exits. A second
	// signal cancels the run context and aborts mid-run without a snapshot.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stopping atomic.Bool
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	go func() {
		<-sigCh
		stopping.Store(true)
		fmt.Fprintln(os.Stderr, "geomancy: signal received; finishing current run (repeat to abort)")
		<-sigCh
		cancel()
	}()

	err := run(ctx, &stopping, *runs, *ckptDir, *ckptEvery, *verbose, *metricsAddr, *metricsJSON, faults, reg, opts)
	switch {
	case errors.Is(err, context.Canceled):
		fmt.Fprintln(os.Stderr, "geomancy: interrupted")
		os.Exit(130)
	case err != nil:
		log.SetFlags(0)
		log.Fatalf("geomancy: %v", err)
	}
}

// open resumes from the checkpoint directory when one is configured and
// holds a usable snapshot, otherwise starts a fresh system. A store whose
// every snapshot is corrupt is a hard error rather than a silent restart.
func open(ckptDir string, opts []geomancy.Option) (*geomancy.System, error) {
	if ckptDir == "" {
		return geomancy.New(opts...)
	}
	sys, err := geomancy.RestoreLatest(ckptDir, opts...)
	switch {
	case err == nil:
		fmt.Printf("resumed from %s: %d runs completed\n", ckptDir, len(sys.Stats()))
		return sys, nil
	case errors.Is(err, geomancy.ErrNoCheckpoint):
		return geomancy.New(opts...)
	case errors.Is(err, geomancy.ErrCorrupt):
		return nil, fmt.Errorf("every snapshot in %s is corrupt: %w (clear the directory to start fresh)", ckptDir, err)
	default:
		return nil, err
	}
}

func run(ctx context.Context, stopping *atomic.Bool, runs int, ckptDir string, ckptEvery int, verbose bool, metricsAddr, metricsJSON string, faults bool, reg *geomancy.Metrics, opts []geomancy.Option) error {
	if metricsAddr != "" {
		srv, err := reg.Serve(metricsAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("metrics on http://%s/metrics\n", srv.Addr())
	}

	sys, err := open(ckptDir, opts)
	if err != nil {
		return err
	}
	closed := false
	defer func() {
		if !closed {
			sys.Close()
		}
	}()
	fmt.Printf("interface daemon listening on %s\n", sys.ListenAddr())

	trained := len(sys.TrainLog())
	moved := len(sys.Movements())
	skipped := len(sys.Skipped())
	for len(sys.Stats()) < runs && !stopping.Load() {
		stats, err := sys.RunContext(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("run %2d: %4d accesses, mean %.2f GB/s, p50/p95/p99 latency %.1f/%.1f/%.1f ms\n",
			stats.Run, stats.Accesses, stats.MeanThroughput/1e9,
			stats.LatencyP50*1e3, stats.LatencyP95*1e3, stats.LatencyP99*1e3)

		if log := sys.TrainLog(); len(log) > trained {
			rep := log[len(log)-1]
			trained = len(log)
			movedFiles := 0
			events := sys.Movements()
			for _, ev := range events[moved:] {
				movedFiles += ev.Moved
			}
			moved = len(events)
			fmt.Printf("  tuned: trained on %d samples in %v (val MARE %s), moved %d files\n",
				rep.Samples, rep.Duration.Round(time.Millisecond), rep.Validation.String(), movedFiles)
			if verbose {
				for _, ev := range events[len(events)-1:] {
					fmt.Printf("    layout push at access %d: %d moved, %d explored\n",
						ev.AccessIndex, ev.Moved, ev.Random)
				}
			}
		}
		if sk := sys.Skipped(); len(sk) > skipped {
			for _, d := range sk[skipped:] {
				fmt.Fprintf(os.Stderr, "degraded (run %d): %s\n", d.Run, d.Reason)
			}
			skipped = len(sk)
		}
		if ckptDir != "" && ckptEvery > 0 && len(sys.Stats())%ckptEvery == 0 {
			path, err := sys.SaveCheckpoint()
			if err != nil {
				return fmt.Errorf("checkpointing: %w", err)
			}
			if verbose {
				fmt.Printf("  checkpoint: %s\n", path)
			}
		}
	}

	if n := sys.Telemetry(); n > 0 {
		movedFiles := 0
		for _, ev := range sys.Movements() {
			movedFiles += ev.Moved
		}
		fmt.Printf("overall mean throughput: %.2f GB/s over %d runs (%d telemetry records, %d movements)\n",
			sys.MeanThroughput()/1e9, len(sys.Stats()), n, movedFiles)
	}
	if faults {
		st := sys.FaultStats()
		fmt.Printf("fault injection: %d drops, %d delays, %d partial writes\n",
			st.Drops, st.Delays, st.PartialWrites)
	}

	// Close before writing the JSON snapshot so the final checkpoint (and
	// its replay-log sync) is included in the run's teardown path.
	closed = true
	if err := sys.Close(); err != nil {
		return err
	}
	if ckptDir != "" && stopping.Load() {
		fmt.Fprintf(os.Stderr, "geomancy: snapshot flushed to %s\n", ckptDir)
	}

	if metricsJSON != "" {
		f, err := os.Create(metricsJSON)
		if err != nil {
			return err
		}
		if err := reg.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("metrics snapshot written to %s\n", metricsJSON)
	}
	return nil
}
