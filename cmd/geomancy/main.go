// Command geomancy runs the full distributed deployment against the
// simulated Bluesky system: the Interface Daemon listens on TCP, one
// monitoring agent per mount ships telemetry batches, a control agent
// executes layout pushes, and the DRL engine trains from the ReplayDB and
// pushes new layouts every cooldown.
//
// This is the wiring of Fig. 2, with the simulated cluster standing in for
// the target system:
//
//	geomancy [-listen 127.0.0.1:0] [-runs 25] [-seed 1] [-epochs 40]
//	         [-cooldown 5] [-db replay.wal] [-model 1] [-epsilon 0.1]
//	         [-target throughput|latency] [-parallel 0]
//	         [-metrics-addr 127.0.0.1:9090] [-metrics-json metrics.json] [-v]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"geomancy/internal/agents"
	"geomancy/internal/core"
	"geomancy/internal/replaydb"
	"geomancy/internal/storagesim"
	"geomancy/internal/telemetry"
	"geomancy/internal/trace"
	"geomancy/internal/workload"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "Interface Daemon listen address")
	runs := flag.Int("runs", 25, "workload runs to execute")
	seed := flag.Int64("seed", 1, "random seed")
	epochs := flag.Int("epochs", 40, "training epochs per decision")
	cooldown := flag.Int("cooldown", 5, "runs between layout decisions")
	windowX := flag.Int("window", 1000, "per-device ReplayDB training window")
	dbPath := flag.String("db", "", "ReplayDB WAL path (empty = in-memory)")
	verbose := flag.Bool("v", false, "log every layout decision")
	model := flag.Int("model", 1, "Table I architecture number (1-23)")
	epsilon := flag.Float64("epsilon", 0.1, "exploration rate")
	target := flag.String("target", "throughput", "modeling target: throughput or latency")
	parallel := flag.Int("parallel", 0, "engine worker pool size (0 = GOMAXPROCS, 1 = serial)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus metrics on this address (empty = disabled)")
	metricsJSON := flag.String("metrics-json", "", "write a JSON metrics snapshot to this file on exit")
	flag.Parse()

	cfg := core.Config{
		ModelNumber:  *model,
		Epsilon:      *epsilon,
		Target:       *target,
		Epochs:       *epochs,
		CooldownRuns: *cooldown,
		WindowX:      *windowX,
		Seed:         *seed,
		Parallelism:  *parallel,
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	// SIGINT/SIGTERM cancel the run between accesses, epochs, and scoring
	// batches, so an interrupted deployment exits cleanly mid-cycle.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *listen, *runs, *seed, cfg, *dbPath, *verbose, *metricsAddr, *metricsJSON); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "geomancy: interrupted")
			os.Exit(130)
		}
		log.SetFlags(0)
		log.Fatalf("geomancy: %v", err)
	}
}

func run(ctx context.Context, listen string, runs int, seed int64, cfg core.Config, dbPath string, verbose bool, metricsAddr, metricsJSON string) error {
	// Observability: one registry shared by every layer of the deployment.
	reg := telemetry.NewRegistry()
	telemetry.RegisterHelp(reg)
	if metricsAddr != "" {
		srv, err := reg.Serve(metricsAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("metrics on http://%s/metrics\n", srv.Addr())
	}
	// Pre-register the decision counters so they export at zero before the
	// first layout push.
	movesCtr := reg.Counter(telemetry.MetricMovementsTotal)
	movedBytes := reg.Counter(telemetry.MetricMovedBytesTotal)

	// Target system.
	cluster := storagesim.NewBluesky(seed)
	files := trace.BelleFileSet(seed)
	runner := workload.NewRunner(cluster, files, 1, seed)
	if err := runner.SpreadEvenly(cluster.DeviceNames()); err != nil {
		return err
	}

	// Geomancy side: ReplayDB + Interface Daemon.
	db, err := replaydb.Open(replaydb.Options{Path: dbPath, SyncEvery: 256})
	if err != nil {
		return err
	}
	defer db.Close()
	db.SetMetrics(reg)
	daemon := agents.NewDaemon(db)
	daemon.SetMetrics(reg)
	daemon.Verbose = verbose
	addr, err := daemon.Start(listen)
	if err != nil {
		return err
	}
	defer daemon.Close()
	fmt.Printf("interface daemon listening on %s\n", addr)

	// Target-system side: monitoring agents (one per mount) + control agent.
	monitors, err := agents.NewMonitorSet(addr, cluster.DeviceNames(), 32)
	if err != nil {
		return err
	}
	defer monitors.Close()
	control, err := agents.NewControl(addr, func(id int64, dev string) (bool, error) {
		mv, err := cluster.Move(id, dev)
		if err != nil {
			return false, err
		}
		return mv.From != mv.To, nil
	})
	if err != nil {
		return err
	}
	defer control.Close()

	// DRL engine. Training data flows through the Interface Daemon (the
	// paper's Fig. 2 path), not by touching the database directly.
	store, err := agents.DialRemoteStore(addr)
	if err != nil {
		return err
	}
	defer store.Close()
	engine, err := core.NewEngine(store, cluster.DeviceNames(), cfg)
	if err != nil {
		return err
	}
	engine.SetMetrics(reg)
	checker := agents.NewActionChecker(rand.New(rand.NewSource(seed+17)), cluster.DeviceNames())

	accessObs := workload.MetricsObserver(reg)
	var tpSum float64
	var tpN int64
	for r := 0; r < runs; r++ {
		stats, err := runner.RunOnceContext(ctx, func(res storagesim.AccessResult, wl, run int) {
			if err := monitors.Observe(res, wl, run); err != nil {
				fmt.Fprintf(os.Stderr, "monitor: %v\n", err)
			}
			accessObs(res, wl, run)
			tpSum += res.Throughput
			tpN++
		})
		if err != nil {
			return err
		}
		if err := monitors.Flush(); err != nil {
			return err
		}
		fmt.Printf("run %2d: %4d accesses, mean %.2f GB/s, p50/p95/p99 latency %.1f/%.1f/%.1f ms\n",
			r, stats.Accesses, stats.MeanThroughput/1e9,
			stats.LatencyP50*1e3, stats.LatencyP95*1e3, stats.LatencyP99*1e3)

		if !engine.ShouldAct(stats.Run) {
			continue
		}
		rep, err := engine.TrainContext(ctx)
		if err != nil {
			return err
		}
		layout := cluster.Layout()
		metas := make([]core.FileMeta, 0, len(files))
		for _, f := range files {
			metas = append(metas, core.FileMeta{ID: f.ID, Path: f.Path, Size: f.Size, Device: layout[f.ID]})
		}
		proposal, decisions, err := engine.ProposeLayoutContext(ctx, metas, checker, agents.ClusterValidator(cluster))
		if err != nil {
			return err
		}
		before := cluster.Layout()
		moved, err := daemon.PushLayout(proposal)
		if err != nil {
			return err
		}
		// Persist the layout change the way the paper detects it: a file
		// whose location differs between ReplayDB entries has moved.
		after := cluster.Layout()
		for _, f := range files {
			if before[f.ID] != after[f.ID] {
				movesCtr.Inc()
				movedBytes.Add(uint64(f.Size))
				if _, err := db.AppendMovement(replaydb.MovementRecord{
					Time:        cluster.Now(),
					FileID:      f.ID,
					From:        before[f.ID],
					To:          after[f.ID],
					Bytes:       f.Size,
					AccessIndex: tpN,
				}); err != nil {
					return err
				}
			}
		}
		fmt.Printf("  tuned: trained on %d samples in %v (val MARE %s), moved %d files\n",
			rep.Samples, rep.Duration.Round(1e6), rep.Validation.String(), moved)
		if verbose {
			for _, d := range decisions {
				if d.Chosen != d.Current {
					fmt.Printf("    file %2d: %s -> %s (predicted %.2f GB/s, random=%v)\n",
						d.FileID, d.Current, d.Chosen, d.Predictions[d.Chosen]/1e9, d.Random)
				}
			}
		}
	}
	if tpN > 0 {
		fmt.Printf("overall mean throughput: %.2f GB/s over %d accesses (%d telemetry records, %d movements)\n",
			tpSum/float64(tpN)/1e9, tpN, db.Len(), db.MovementCount())
	}
	if metricsJSON != "" {
		f, err := os.Create(metricsJSON)
		if err != nil {
			return err
		}
		if err := reg.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("metrics snapshot written to %s\n", metricsJSON)
	}
	return nil
}
