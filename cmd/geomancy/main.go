// Command geomancy runs the full distributed deployment against the
// simulated Bluesky system: the Interface Daemon listens on TCP, one
// monitoring agent per mount ships telemetry batches, a control agent
// executes layout pushes, and the DRL engine trains from the ReplayDB and
// pushes new layouts every cooldown.
//
// This is the wiring of Fig. 2, with the simulated cluster standing in for
// the target system:
//
//	geomancy [-listen 127.0.0.1:0] [-runs 25] [-seed 1] [-epochs 40]
//	         [-cooldown 5] [-db replay.wal] [-model 1] [-epsilon 0.1]
//	         [-target throughput|latency] [-parallel 0]
//	         [-retry-attempts 4] [-retry-base 5ms] [-io-timeout 5s]
//	         [-fail-open] [-fault-drop 0] [-fault-delay 0] [-fault-partial 0]
//	         [-metrics-addr 127.0.0.1:9090] [-metrics-json metrics.json] [-v]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"geomancy/internal/agents"
	"geomancy/internal/core"
	"geomancy/internal/faultnet"
	"geomancy/internal/replaydb"
	"geomancy/internal/storagesim"
	"geomancy/internal/telemetry"
	"geomancy/internal/trace"
	"geomancy/internal/workload"
)

// deployOptions carries the fault-tolerance knobs into run.
type deployOptions struct {
	retry    agents.RetryPolicy
	failOpen bool
	faults   *faultnet.Config
}

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "Interface Daemon listen address")
	runs := flag.Int("runs", 25, "workload runs to execute")
	seed := flag.Int64("seed", 1, "random seed")
	epochs := flag.Int("epochs", 40, "training epochs per decision")
	cooldown := flag.Int("cooldown", 5, "runs between layout decisions")
	windowX := flag.Int("window", 1000, "per-device ReplayDB training window")
	dbPath := flag.String("db", "", "ReplayDB WAL path (empty = in-memory)")
	verbose := flag.Bool("v", false, "log every layout decision")
	model := flag.Int("model", 1, "Table I architecture number (1-23)")
	epsilon := flag.Float64("epsilon", 0.1, "exploration rate")
	target := flag.String("target", "throughput", "modeling target: throughput or latency")
	parallel := flag.Int("parallel", 0, "engine worker pool size (0 = GOMAXPROCS, 1 = serial)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus metrics on this address (empty = disabled)")
	metricsJSON := flag.String("metrics-json", "", "write a JSON metrics snapshot to this file on exit")
	retryAttempts := flag.Int("retry-attempts", 0, "agent RPC retry budget (0 = default 4)")
	retryBase := flag.Duration("retry-base", 0, "agent retry base backoff (0 = default 5ms)")
	ioTimeout := flag.Duration("io-timeout", 0, "per-RPC agent I/O deadline (0 = default 5s)")
	failOpen := flag.Bool("fail-open", true, "keep serving the last-known layout when agents are unreachable")
	faultDrop := flag.Float64("fault-drop", 0, "inject: probability an agent I/O drops the connection")
	faultDelay := flag.Float64("fault-delay", 0, "inject: probability an agent I/O is delayed")
	faultDelayDur := flag.Duration("fault-delay-ms", 2*time.Millisecond, "inject: delay applied to delayed I/Os")
	faultPartial := flag.Float64("fault-partial", 0, "inject: probability a write is truncated mid-stream")
	flag.Parse()

	cfg := core.Config{
		ModelNumber:  *model,
		Epsilon:      *epsilon,
		Target:       *target,
		Epochs:       *epochs,
		CooldownRuns: *cooldown,
		WindowX:      *windowX,
		Seed:         *seed,
		Parallelism:  *parallel,
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	opts := deployOptions{
		retry: agents.RetryPolicy{
			MaxAttempts: *retryAttempts,
			BaseDelay:   *retryBase,
			IOTimeout:   *ioTimeout,
		},
		failOpen: *failOpen,
	}
	if *faultDrop > 0 || *faultDelay > 0 || *faultPartial > 0 {
		opts.faults = &faultnet.Config{
			Seed:             *seed,
			DropRate:         *faultDrop,
			DelayRate:        *faultDelay,
			Delay:            *faultDelayDur,
			PartialWriteRate: *faultPartial,
		}
	}
	// SIGINT/SIGTERM cancel the run between accesses, epochs, and scoring
	// batches, so an interrupted deployment exits cleanly mid-cycle.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *listen, *runs, *seed, cfg, *dbPath, *verbose, *metricsAddr, *metricsJSON, opts); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "geomancy: interrupted")
			os.Exit(130)
		}
		log.SetFlags(0)
		log.Fatalf("geomancy: %v", err)
	}
}

func run(ctx context.Context, listen string, runs int, seed int64, cfg core.Config, dbPath string, verbose bool, metricsAddr, metricsJSON string, opts deployOptions) error {
	// Observability: one registry shared by every layer of the deployment.
	reg := telemetry.NewRegistry()
	telemetry.RegisterHelp(reg)
	if metricsAddr != "" {
		srv, err := reg.Serve(metricsAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("metrics on http://%s/metrics\n", srv.Addr())
	}
	// Pre-register the decision counters so they export at zero before the
	// first layout push.
	movesCtr := reg.Counter(telemetry.MetricMovementsTotal)
	movedBytes := reg.Counter(telemetry.MetricMovedBytesTotal)

	// Target system.
	cluster := storagesim.NewBluesky(seed)
	files := trace.BelleFileSet(seed)
	runner := workload.NewRunner(cluster, files, 1, seed)
	if err := runner.SpreadEvenly(cluster.DeviceNames()); err != nil {
		return err
	}

	// Geomancy side: ReplayDB + Interface Daemon.
	db, err := replaydb.Open(replaydb.Options{Path: dbPath, SyncEvery: 256})
	if err != nil {
		return err
	}
	defer db.Close()
	db.SetMetrics(reg)
	daemon := agents.NewDaemon(db)
	daemon.SetMetrics(reg)
	daemon.Verbose = verbose
	if opts.faults != nil {
		fn := faultnet.New(*opts.faults)
		daemon.WrapListener = fn.Listener
		defer func() {
			st := fn.Stats()
			fmt.Printf("fault injection: %d drops, %d delays, %d partial writes\n",
				st.Drops, st.Delays, st.PartialWrites)
		}()
	}
	addr, err := daemon.Start(listen)
	if err != nil {
		return err
	}
	defer daemon.Close()
	fmt.Printf("interface daemon listening on %s\n", addr)

	agentOpts := []agents.Option{
		agents.WithRetryPolicy(opts.retry),
		agents.WithMetrics(reg),
	}
	degradedCtr := reg.Counter(telemetry.MetricAgentDegradedTotal)
	// degrade reports (and logs) err as a tolerated outage when running
	// fail-open; otherwise the caller propagates it.
	degrade := func(stage string, err error) bool {
		if !opts.failOpen || !(errors.Is(err, agents.ErrUnavailable) || errors.Is(err, core.ErrNoTelemetry)) {
			return false
		}
		degradedCtr.Inc()
		fmt.Fprintf(os.Stderr, "degraded (%s): %v\n", stage, err)
		return true
	}

	// Target-system side: monitoring agents (one per mount) + control agent.
	monitors, err := agents.NewMonitorSet(addr, cluster.DeviceNames(), 32, agentOpts...)
	if err != nil {
		return err
	}
	defer monitors.Close()
	control, err := agents.NewControl(addr, func(id int64, dev string) (bool, error) {
		mv, err := cluster.Move(id, dev)
		if err != nil {
			return false, err
		}
		return mv.From != mv.To, nil
	}, agentOpts...)
	if err != nil {
		return err
	}
	defer control.Close()

	// DRL engine. Training data flows through the Interface Daemon (the
	// paper's Fig. 2 path), not by touching the database directly.
	store, err := agents.DialRemoteStore(addr, agentOpts...)
	if err != nil {
		return err
	}
	defer store.Close()
	engine, err := core.NewEngine(store, cluster.DeviceNames(), cfg)
	if err != nil {
		return err
	}
	engine.SetMetrics(reg)
	checker := agents.NewActionChecker(rand.New(rand.NewSource(seed+17)), cluster.DeviceNames())
	pushRng := rand.New(rand.NewSource(seed + 101))

	accessObs := workload.MetricsObserver(reg)
	var tpSum float64
	var tpN int64
	for r := 0; r < runs; r++ {
		stats, err := runner.RunOnceContext(ctx, func(res storagesim.AccessResult, wl, run int) {
			if err := monitors.Observe(res, wl, run); err != nil {
				fmt.Fprintf(os.Stderr, "monitor: %v\n", err)
			}
			accessObs(res, wl, run)
			tpSum += res.Throughput
			tpN++
		})
		if err != nil {
			return err
		}
		if err := monitors.Flush(); err != nil {
			// The unacked batch stays queued and replays on a later flush.
			if !degrade("telemetry flush", err) {
				return err
			}
		}
		fmt.Printf("run %2d: %4d accesses, mean %.2f GB/s, p50/p95/p99 latency %.1f/%.1f/%.1f ms\n",
			r, stats.Accesses, stats.MeanThroughput/1e9,
			stats.LatencyP50*1e3, stats.LatencyP95*1e3, stats.LatencyP99*1e3)

		if !engine.ShouldAct(stats.Run) {
			continue
		}
		rep, err := engine.TrainContext(ctx)
		if err != nil {
			if degrade("training", err) {
				continue
			}
			return err
		}
		layout := cluster.Layout()
		metas := make([]core.FileMeta, 0, len(files))
		for _, f := range files {
			metas = append(metas, core.FileMeta{ID: f.ID, Path: f.Path, Size: f.Size, Device: layout[f.ID]})
		}
		proposal, decisions, err := engine.ProposeLayoutContext(ctx, metas, checker, agents.ClusterValidator(cluster))
		if err != nil {
			if degrade("proposing layout", err) {
				continue
			}
			return err
		}
		before := cluster.Layout()
		moved, err := daemon.PushLayoutRetry(proposal, opts.retry, pushRng)
		if err != nil {
			if degrade("layout push", err) {
				continue
			}
			return err
		}
		// Persist the layout change the way the paper detects it: a file
		// whose location differs between ReplayDB entries has moved.
		after := cluster.Layout()
		for _, f := range files {
			if before[f.ID] != after[f.ID] {
				movesCtr.Inc()
				movedBytes.Add(uint64(f.Size))
				if _, err := db.AppendMovement(replaydb.MovementRecord{
					Time:        cluster.Now(),
					FileID:      f.ID,
					From:        before[f.ID],
					To:          after[f.ID],
					Bytes:       f.Size,
					AccessIndex: tpN,
				}); err != nil {
					return err
				}
			}
		}
		fmt.Printf("  tuned: trained on %d samples in %v (val MARE %s), moved %d files\n",
			rep.Samples, rep.Duration.Round(1e6), rep.Validation.String(), moved)
		if verbose {
			for _, d := range decisions {
				if d.Chosen != d.Current {
					fmt.Printf("    file %2d: %s -> %s (predicted %.2f GB/s, random=%v)\n",
						d.FileID, d.Current, d.Chosen, d.Predictions[d.Chosen]/1e9, d.Random)
				}
			}
		}
	}
	if tpN > 0 {
		fmt.Printf("overall mean throughput: %.2f GB/s over %d accesses (%d telemetry records, %d movements)\n",
			tpSum/float64(tpN)/1e9, tpN, db.Len(), db.MovementCount())
	}
	if metricsJSON != "" {
		f, err := os.Create(metricsJSON)
		if err != nil {
			return err
		}
		if err := reg.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("metrics snapshot written to %s\n", metricsJSON)
	}
	return nil
}
