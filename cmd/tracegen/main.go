// Command tracegen emits a synthetic CERN-EOS-style access log as CSV.
//
//	tracegen [-records 50000] [-seed 1] [-devices 24] [-files 4000] [-out trace.csv]
//
// The generated trace has the Fig. 4 correlation structure (see
// internal/trace); cmd/experiment -id fig4 analyzes it in-process, while
// this tool writes it out for external tooling.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"geomancy/internal/trace"
)

func main() {
	records := flag.Int("records", 50000, "number of access records")
	seed := flag.Int64("seed", 1, "random seed")
	devices := flag.Int("devices", 24, "distinct file systems (fsid)")
	files := flag.Int("files", 4000, "distinct files (fid)")
	out := flag.String("out", "-", "output path (- = stdout)")
	flag.Parse()

	gen := trace.NewGenerator(trace.GeneratorConfig{
		Seed:    *seed,
		Records: *records,
		Devices: *devices,
		Files:   *files,
	})
	recs := gen.Generate(*records)

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	if err := trace.WriteCSV(bw, recs); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	if err := bw.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d records\n", len(recs))
}
