// Command benchgate is the CI bench-regression gate: it compares a
// freshly measured BENCH_scoring.json against the committed baseline and
// exits non-zero when any baseline row's ns/op regressed beyond the
// threshold (default +25%).
//
//	benchgate [-baseline BENCH_scoring.json] [-fresh fresh.json] [-threshold 0.25]
//
// Improvements and new (not-yet-committed) benchmark rows pass; a
// baseline row missing from the fresh file fails, so a dropped benchmark
// cannot read as a pass.
package main

import (
	"flag"
	"fmt"
	"os"

	"geomancy/internal/benchcmp"
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_scoring.json", "committed baseline snapshot")
	freshPath := flag.String("fresh", "", "freshly measured snapshot (required)")
	threshold := flag.Float64("threshold", 0.25, "allowed fractional ns/op slowdown before the gate fails")
	flag.Parse()

	if *freshPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -fresh is required")
		os.Exit(2)
	}
	baseline, err := benchcmp.Load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	fresh, err := benchcmp.Load(*freshPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	deltas, err := benchcmp.Compare(baseline, fresh, *threshold)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	for _, d := range deltas {
		mark := "ok"
		if d.Regressed {
			mark = "REGRESSED"
		}
		fmt.Printf("%-24s %12.0f -> %12.0f ns/op  (%.2fx)  %s\n",
			d.Name, d.BaselineNs, d.FreshNs, d.Ratio, mark)
	}
	if reg := benchcmp.Regressions(deltas); len(reg) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d of %d rows regressed beyond +%.0f%% ns/op\n",
			len(reg), len(deltas), *threshold*100)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d rows within +%.0f%% of baseline\n", len(deltas), *threshold*100)
}
