// Command geomancy-vet runs Geomancy's custom static-analysis suite —
// determinism, rngsource, ctxflow, metricnames, errcompare, locksafe,
// statecheck — over the module, in the spirit of `go vet` but enforcing
// the repo's own invariants (see DESIGN.md §Enforced invariants).
//
// Usage:
//
//	go run ./cmd/geomancy-vet [flags] [packages]
//
// Findings print one per line as file:line:col: analyzer: message, and
// any finding makes the exit status 1. Sites that are intentionally
// exempt carry //geomancy:nondeterministic <reason> (determinism),
// //geomancy:allow <analyzer> <reason> (any analyzer), or
// //geomancy:ephemeral <reason> (statecheck) on the same or the
// preceding line.
//
// Flags:
//
//	-list    list the analyzers and exit
//	-json    emit the full report — live, suppressed (with directive
//	         reasons), and stale findings — as JSON on stdout
//	-audit   also fail on stale directives: //geomancy:... comments that
//	         no longer suppress anything and should be removed
//	-github  emit GitHub Actions ::error workflow commands alongside the
//	         plain lines, so findings annotate the PR diff (defaults to
//	         on when GITHUB_ACTIONS=true)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"geomancy/internal/analysis"
)

// jsonFinding is one finding in -json output.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	// Suppressed marks findings a reasoned directive silenced; Reason is
	// the directive's justification.
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

// jsonReport is the -json document: every live finding, every
// directive-suppressed finding, and every stale directive.
type jsonReport struct {
	Findings []jsonFinding `json:"findings"`
	Stale    []jsonFinding `json:"stale,omitempty"`
}

func toJSON(d analysis.Diagnostic, suppressed bool, reason string) jsonFinding {
	return jsonFinding{
		File:       d.Pos.Filename,
		Line:       d.Pos.Line,
		Col:        d.Pos.Column,
		Analyzer:   d.Analyzer,
		Message:    d.Message,
		Suppressed: suppressed,
		Reason:     reason,
	}
}

// githubAnnotation renders a finding as a GitHub Actions workflow
// command, which the runner turns into an inline PR annotation.
func githubAnnotation(d analysis.Diagnostic) string {
	return fmt.Sprintf("::error file=%s,line=%d,col=%d::%s: %s",
		d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	asJSON := flag.Bool("json", false, "emit the full report (live, suppressed, stale) as JSON")
	audit := flag.Bool("audit", false, "also fail on stale //geomancy: directives")
	github := flag.Bool("github", os.Getenv("GITHUB_ACTIONS") == "true",
		"emit GitHub Actions ::error annotations alongside plain findings")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: geomancy-vet [flags] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	rep, err := analysis.RunFull(analyzers, pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	failures := rep.Diagnostics
	if *audit {
		failures = append(failures, rep.Stale...)
	}

	if *asJSON {
		doc := jsonReport{Findings: []jsonFinding{}}
		for _, d := range rep.Diagnostics {
			doc.Findings = append(doc.Findings, toJSON(d, false, ""))
		}
		for _, s := range rep.Suppressed {
			doc.Findings = append(doc.Findings, toJSON(s.Diagnostic, true, s.Reason))
		}
		for _, d := range rep.Stale {
			doc.Stale = append(doc.Stale, toJSON(d, false, ""))
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, d := range failures {
			fmt.Println(d)
			if *github {
				fmt.Println(githubAnnotation(d))
			}
		}
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "geomancy-vet: %d finding(s)\n", len(failures))
		os.Exit(1)
	}
}
