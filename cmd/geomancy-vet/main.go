// Command geomancy-vet runs Geomancy's custom static-analysis suite —
// determinism, ctxflow, metricnames, errcompare, locksafe — over the
// module, in the spirit of `go vet` but enforcing the repo's own
// invariants (see DESIGN.md §Enforced invariants).
//
// Usage:
//
//	go run ./cmd/geomancy-vet ./...
//
// Findings print one per line as file:line:col: analyzer: message, and
// any finding makes the exit status 1. Sites that are intentionally
// exempt carry //geomancy:nondeterministic <reason> (determinism) or
// //geomancy:allow <analyzer> <reason> (any analyzer) on the same or
// the preceding line.
package main

import (
	"flag"
	"fmt"
	"os"

	"geomancy/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: geomancy-vet [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags, err := analysis.Run(analyzers, pkgs)
	for _, d := range diags {
		fmt.Println(d)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "geomancy-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
