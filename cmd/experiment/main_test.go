package main

import (
	"os"
	"strings"
	"testing"

	"geomancy/internal/experiments"
)

// capture redirects stdout around f.
func capture(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := f()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	r.Close()
	if errRun != nil {
		t.Fatal(errRun)
	}
	return string(buf[:n])
}

func TestRunExperimentTable1(t *testing.T) {
	out := capture(t, func() error {
		return runExperiment("table1", experiments.Quick(1), false)
	})
	if !strings.Contains(out, "Model 23") {
		t.Errorf("table1 output missing models:\n%s", out)
	}
}

func TestRunExperimentFig4(t *testing.T) {
	out := capture(t, func() error {
		return runExperiment("fig4", experiments.Quick(1), false)
	})
	if !strings.Contains(out, "pearson r") {
		t.Errorf("fig4 output missing header:\n%s", out)
	}
}

func TestRunExperimentFig4CSV(t *testing.T) {
	out := capture(t, func() error {
		return runExperiment("fig4", experiments.Quick(1), true)
	})
	if !strings.HasPrefix(out, "feature,pearson r") {
		t.Errorf("CSV output wrong:\n%s", out[:60])
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if err := runExperiment("bogus", experiments.Quick(1), false); err == nil {
		t.Error("unknown id should error")
	}
}
