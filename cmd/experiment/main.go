// Command experiment regenerates the paper's tables and figures on the
// simulated substrate.
//
// Usage:
//
//	experiment -id fig4|table1|table2|table3|fig5a|fig5b|table4|fig6|overhead|all|ablations|ablation-<name>|matrix|weighted
//	           [-scale quick|paper] [-seed N] [-csv]
//
// -id matrix runs the per-scenario policy matrix: every workload
// scenario under every baseline policy plus the Geomancy loop.
//
// At -scale paper the model search (table2) trains all 23 architectures
// for 200 epochs and takes minutes of CPU time; -scale quick (the default)
// reproduces the shape in seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"geomancy/internal/experiments"
)

func main() {
	id := flag.String("id", "all", "experiment id: fig4, table1, table2, table3, fig5a, fig5b, table4, fig6, overhead, all")
	scale := flag.String("scale", "quick", "quick or paper")
	seed := flag.Int64("seed", 1, "random seed")
	csv := flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
	flag.Parse()

	var opts experiments.Options
	switch *scale {
	case "quick":
		opts = experiments.Quick(*seed)
	case "paper":
		opts = experiments.Paper(*seed)
	default:
		fmt.Fprintf(os.Stderr, "experiment: unknown scale %q (want quick or paper)\n", *scale)
		os.Exit(2)
	}

	ids := []string{*id}
	switch *id {
	case "all":
		ids = []string{"fig4", "table1", "table2", "table3", "fig5a", "fig5b", "table4", "fig6", "overhead"}
	case "ablations":
		ids = []string{"ablation-epsilon", "ablation-cooldown", "ablation-smoothing",
			"ablation-optimizer", "ablation-model", "ablation-gaps"}
	}
	for _, one := range ids {
		start := time.Now()
		if err := runExperiment(one, opts, *csv); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s: %v\n", one, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", one, time.Since(start).Round(time.Millisecond))
	}
}

func emit(t *experiments.Table, csv bool) error {
	if csv {
		return t.RenderCSV(os.Stdout)
	}
	return t.Render(os.Stdout)
}

func runExperiment(id string, opts experiments.Options, csv bool) error {
	switch id {
	case "fig4":
		res, err := experiments.Fig4(opts)
		if err != nil {
			return err
		}
		return emit(res.Table(), csv)
	case "table1":
		return emit(experiments.Table1(), csv)
	case "table2":
		res, err := experiments.Table2(opts)
		if err != nil {
			return err
		}
		return emit(res.Table(), csv)
	case "table3":
		res, err := experiments.Table3(opts)
		if err != nil {
			return err
		}
		return emit(res.Table(), csv)
	case "fig5a":
		res, err := experiments.Fig5a(opts)
		if err != nil {
			return err
		}
		if err := emit(res.SummaryTable("Fig. 5a — Geomancy vs dynamic policies"), csv); err != nil {
			return err
		}
		if !csv {
			if err := experiments.RenderChart(os.Stdout, res.Series, 12); err != nil {
				return err
			}
			return experiments.RenderSeries(os.Stdout, res.Series)
		}
		return nil
	case "fig5b":
		res, err := experiments.Fig5b(opts)
		if err != nil {
			return err
		}
		if err := emit(res.SummaryTable("Fig. 5b — Geomancy vs static placements"), csv); err != nil {
			return err
		}
		if !csv {
			if err := experiments.RenderChart(os.Stdout, res.Series, 12); err != nil {
				return err
			}
			return experiments.RenderSeries(os.Stdout, res.Series)
		}
		return nil
	case "table4":
		res, err := experiments.Table4(opts)
		if err != nil {
			return err
		}
		return emit(res.Table(), csv)
	case "fig6":
		res, err := experiments.Fig6(opts)
		if err != nil {
			return err
		}
		fmt.Println(res.Summary())
		if err := experiments.RenderChart(os.Stdout, []experiments.Series{res.Tuned, res.Untuned}, 12); err != nil {
			return err
		}
		return experiments.RenderSeries(os.Stdout, []experiments.Series{res.Tuned, res.Untuned})
	case "overhead":
		res, err := experiments.Overhead(opts)
		if err != nil {
			return err
		}
		return emit(res.Table(), csv)
	case "matrix":
		res, err := experiments.PolicyMatrix(opts, nil)
		if err != nil {
			return err
		}
		return emit(res.Table(), csv)
	case "weighted":
		res, err := experiments.WeightedPolicies(opts)
		if err != nil {
			return err
		}
		return emit(res.SummaryTable("Extension — capacity-weighted heuristics vs Geomancy"), csv)
	case "ablation-epsilon":
		return runAblation(experiments.AblationEpsilon, opts, csv)
	case "ablation-cooldown":
		return runAblation(experiments.AblationCooldown, opts, csv)
	case "ablation-smoothing":
		return runAblation(experiments.AblationSmoothing, opts, csv)
	case "ablation-optimizer":
		return runAblation(experiments.AblationOptimizer, opts, csv)
	case "ablation-model":
		return runAblation(experiments.AblationModel, opts, csv)
	case "ablation-gaps":
		return runAblation(experiments.AblationGapScheduling, opts, csv)
	default:
		return fmt.Errorf("unknown experiment id %q", id)
	}
}

func runAblation(f func(experiments.Options) (*experiments.AblationResult, error), opts experiments.Options, csv bool) error {
	res, err := f(opts)
	if err != nil {
		return err
	}
	return emit(res.Table(), csv)
}
