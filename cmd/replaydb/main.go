// Command replaydb inspects a ReplayDB write-ahead log.
//
//	replaydb -db replay.wal stats            # record counts and device mix
//	replaydb -db replay.wal tail [-n 10]     # most recent accesses
//	replaydb -db replay.wal movements        # layout-change history
package main

import (
	"flag"
	"fmt"
	"os"

	"geomancy/internal/replaydb"
)

func main() {
	dbPath := flag.String("db", "", "ReplayDB WAL path")
	n := flag.Int("n", 10, "records to show for tail")
	flag.Parse()

	if *dbPath == "" {
		fmt.Fprintln(os.Stderr, "replaydb: -db is required")
		os.Exit(2)
	}
	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "stats"
	}
	db, err := replaydb.Open(replaydb.Options{Path: *dbPath})
	if err != nil {
		fmt.Fprintf(os.Stderr, "replaydb: %v\n", err)
		os.Exit(1)
	}
	defer db.Close()

	switch cmd {
	case "stats":
		stats(db)
	case "tail":
		tail(db, *n)
	case "movements":
		movements(db)
	default:
		fmt.Fprintf(os.Stderr, "replaydb: unknown command %q (want stats, tail or movements)\n", cmd)
		os.Exit(2)
	}
}

func stats(db *replaydb.DB) {
	fmt.Printf("access records:   %d\n", db.Len())
	fmt.Printf("movement records: %d\n", db.MovementCount())
	for _, s := range db.Summary() {
		fmt.Printf("  %-8s %7d accesses, %.2f ± %.2f GB/s, %.1f GB served, t=[%.1f, %.1f]\n",
			s.Device, s.Accesses, s.MeanThroughput/1e9, s.StdThroughput/1e9,
			float64(s.Bytes)/1e9, s.FirstTime, s.LastTime)
	}
}

func tail(db *replaydb.DB, n int) {
	for _, r := range db.Recent(n) {
		fmt.Printf("#%-6d t=%.3f wl=%d run=%d file=%d dev=%-8s rb=%d wb=%d tp=%.2f GB/s\n",
			r.Seq, r.Time, r.Workload, r.Run, r.FileID, r.Device, r.BytesRead, r.BytesWritten, r.Throughput/1e9)
	}
}

func movements(db *replaydb.DB) {
	for _, m := range db.Movements() {
		fmt.Printf("#%-6d t=%.3f file=%d %s -> %s (%d bytes in %.3fs, at access %d)\n",
			m.Seq, m.Time, m.FileID, m.From, m.To, m.Bytes, m.Duration, m.AccessIndex)
	}
}
