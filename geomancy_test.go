package geomancy

import (
	"path/filepath"
	"testing"
)

func quickSystem(t *testing.T, opts ...Option) *System {
	t.Helper()
	base := []Option{
		WithSeed(1),
		WithEpochs(5),
		WithTrainingWindow(300),
		WithCooldown(2),
		WithBootstrapRuns(2),
	}
	sys, err := New(append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	return sys
}

func TestNewDefaults(t *testing.T) {
	sys := quickSystem(t)
	if got := len(sys.Devices()); got != 6 {
		t.Errorf("devices = %d, want 6 (Bluesky)", got)
	}
	if got := len(sys.Layout()); got != 24 {
		t.Errorf("files = %d, want 24 (BELLE II)", got)
	}
}

func TestRunLifecycle(t *testing.T) {
	sys := quickSystem(t)
	stats, err := sys.RunN(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 6 || len(sys.Stats()) != 6 {
		t.Fatalf("stats = %d", len(stats))
	}
	if sys.MeanThroughput() <= 0 {
		t.Error("no throughput observed")
	}
	if sys.Telemetry() == 0 {
		t.Error("no telemetry stored")
	}
	// Bootstrap 2 + cooldown 2 over 4 tuned runs → 2 decisions.
	if got := len(sys.TrainLog()); got != 2 {
		t.Errorf("trainings = %d, want 2", got)
	}
	if got := len(sys.Movements()); got != 2 {
		t.Errorf("movement events = %d, want 2", got)
	}
}

func TestOptionValidation(t *testing.T) {
	if _, err := New(WithModel(99)); err == nil {
		t.Error("invalid model should error")
	}
	if _, err := New(WithDevices([]DeviceProfile{})); err == nil {
		t.Error("empty cluster should error")
	}
}

func TestPersistentReplayDB(t *testing.T) {
	path := filepath.Join(t.TempDir(), "replay.wal")
	sys := quickSystem(t, WithReplayDB(path))
	if _, err := sys.RunN(2); err != nil {
		t.Fatal(err)
	}
	n := sys.Telemetry()
	if n == 0 {
		t.Fatal("no telemetry")
	}
	sys.Close()
	// Reopen: history survives.
	sys2 := quickSystem(t, WithReplayDB(path))
	if got := sys2.Telemetry(); got < n {
		t.Errorf("reopened db has %d records, want ≥ %d", got, n)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() float64 {
		sys, err := New(WithSeed(7), WithEpochs(4), WithTrainingWindow(200), WithCooldown(2), WithBootstrapRuns(1))
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		if _, err := sys.RunN(4); err != nil {
			t.Fatal(err)
		}
		return sys.MeanThroughput()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("equal seeds differ: %v vs %v", a, b)
	}
}

func TestCustomWorkingSet(t *testing.T) {
	files := []File{
		{ID: 1, Path: "/custom/a.root", Size: 1 << 20},
		{ID: 2, Path: "/custom/b.root", Size: 2 << 20},
	}
	sys := quickSystem(t, WithFiles(files))
	if got := len(sys.Layout()); got != 2 {
		t.Errorf("layout has %d files, want 2", got)
	}
	if _, err := sys.RunN(3); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyTargetOption(t *testing.T) {
	sys := quickSystem(t, WithLatencyTarget())
	if _, err := sys.RunN(5); err != nil {
		t.Fatal(err)
	}
	if len(sys.TrainLog()) == 0 {
		t.Error("latency-target engine never trained")
	}
}

func TestGapSchedulingOption(t *testing.T) {
	sys := quickSystem(t, WithGapScheduling())
	if _, err := sys.RunN(6); err != nil {
		t.Fatal(err)
	}
	if len(sys.Movements()) == 0 {
		t.Error("gap scheduling blocked every movement")
	}
}
