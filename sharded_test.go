package geomancy

import (
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestShardedMatchesUnsharded pins the coordinator's degenerate case: a
// 1-shard system routes every decision through the global engine on the
// same RNG stream as the unsharded policy, so the full closed-loop
// trajectory — layouts, stats, movements, telemetry counts — must be
// bit-identical to a plain same-seed system.
func TestShardedMatchesUnsharded(t *testing.T) {
	plain, err := New(ckptOptions(1)...)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if _, err := plain.RunN(10); err != nil {
		t.Fatal(err)
	}
	want := capture(t, plain)

	sharded, err := New(ckptOptions(1, WithShards(1))...)
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	if got := sharded.Shards(); got != 1 {
		t.Fatalf("Shards() = %d, want 1", got)
	}
	if _, err := sharded.RunN(10); err != nil {
		t.Fatal(err)
	}
	assertSameTrajectory(t, capture(t, sharded), want, "1-shard vs unsharded")
}

// TestShardedResumeEquivalence extends the resume invariant to the
// sharded plane: a sharded run checkpointed at run N and restored — with
// every shard engine's RNG stream, adopted scorer, and device-group
// accounting rebuilt from the snapshot — must produce a bit-identical
// trajectory to the same-seed uninterrupted run, at every partition
// width the Bluesky cluster supports and at Parallelism 1 and 4.
func TestShardedResumeEquivalence(t *testing.T) {
	const checkpointAt, total = 5, 12

	for _, shards := range []int{1, 2, 3} {
		for _, p := range []int{1, 4} {
			t.Run("shards="+strconv.Itoa(shards)+"/parallelism="+strconv.Itoa(p), func(t *testing.T) {
				opts := ckptOptions(p, WithShards(shards))

				ref, err := New(opts...)
				if err != nil {
					t.Fatal(err)
				}
				defer ref.Close()
				if _, err := ref.RunN(total); err != nil {
					t.Fatal(err)
				}
				want := capture(t, ref)

				first, err := New(opts...)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := first.RunN(checkpointAt); err != nil {
					t.Fatal(err)
				}
				ckpt := filepath.Join(t.TempDir(), "snap.ckpt")
				if err := first.Checkpoint(ckpt); err != nil {
					t.Fatal(err)
				}
				if err := first.Close(); err != nil {
					t.Fatal(err)
				}

				resumed, err := Restore(ckpt, opts...)
				if err != nil {
					t.Fatal(err)
				}
				defer resumed.Close()
				if _, err := resumed.RunN(total - checkpointAt); err != nil {
					t.Fatal(err)
				}
				assertSameTrajectory(t, capture(t, resumed), want, "sharded resume")
			})
		}
	}
}

// A snapshot only restores under its own partition width: shard RNG
// streams and score caches are meaningless under a different sharding,
// so both a different WithShards and an unsharded restore are rejected.
func TestShardedRestoreRejectsPartitionMismatch(t *testing.T) {
	sys, err := New(ckptOptions(1, WithShards(2))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunN(6); err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "snap.ckpt")
	if err := sys.Checkpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := Restore(ckpt, ckptOptions(1, WithShards(3))...); err == nil {
		t.Error("restoring a 2-shard snapshot into a 3-shard system succeeded")
	} else if !strings.Contains(err.Error(), "shards") {
		t.Errorf("mismatch error does not mention shards: %v", err)
	}
	if _, err := Restore(ckpt, ckptOptions(1)...); err == nil {
		t.Error("restoring a 2-shard snapshot into an unsharded system succeeded")
	}
}

// WithShards drives the sharded Geomancy policy; combining it with a
// baseline WithPolicy has no meaning and must fail construction.
func TestShardedRejectsBaselinePolicy(t *testing.T) {
	if _, err := New(WithShards(2), WithPolicy("lru")); err == nil {
		t.Fatal("New(WithShards, WithPolicy(lru)) succeeded")
	}
}
