package geomancy

import (
	"runtime"
	"testing"
	"time"

	"geomancy/internal/telemetry"
)

func fastRetry() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 6,
		BaseDelay:   time.Millisecond,
		MaxDelay:    10 * time.Millisecond,
		IOTimeout:   2 * time.Second,
	}
}

func distributedSystem(t *testing.T, opts ...Option) (*System, *Metrics) {
	t.Helper()
	reg := NewMetrics()
	base := []Option{
		WithSeed(5),
		WithEpochs(4),
		WithTrainingWindow(300),
		WithCooldown(3),
		WithBootstrapRuns(2),
		WithDistributed(),
		WithRetryPolicy(fastRetry()),
		WithTelemetry(reg),
	}
	sys, err := New(append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	return sys, reg
}

func agentCounter(reg *Metrics, name, kind string) uint64 {
	return reg.Counter(name, telemetry.L("agent", kind)).Value()
}

// TestDistributedMatchesInProcess: the Fig. 2 plumbing (daemon, monitors,
// control agent, RemoteStore) must not change what telemetry is stored —
// every access lands in the ReplayDB exactly once.
func TestDistributedMatchesInProcess(t *testing.T) {
	sys, _ := distributedSystem(t)
	stats, err := sys.RunN(6)
	if err != nil {
		t.Fatal(err)
	}
	accesses := 0
	for _, st := range stats {
		accesses += st.Accesses
	}
	if sys.Telemetry() != accesses {
		t.Errorf("db has %d records for %d accesses; distributed path lost or duplicated telemetry",
			sys.Telemetry(), accesses)
	}
	if len(sys.Skipped()) != 0 {
		t.Errorf("healthy run skipped decisions: %+v", sys.Skipped())
	}
}

// TestDistributedDeterministicUnderFaults is the acceptance run: with ≥5%
// drops and delays injected on every agent connection, the closed loop
// completes without hanging, stores each access exactly once, exercises
// the retry/reconnect paths, and two same-seed runs converge to the same
// final layout — the faults are semantically transparent.
func TestDistributedDeterministicUnderFaults(t *testing.T) {
	faults := FaultConfig{
		Seed:      11,
		DropRate:  0.05,
		DelayRate: 0.05,
		Delay:     500 * time.Microsecond,
	}
	run := func() (map[int64]string, int, int, *Metrics, FaultStats) {
		sys, reg := distributedSystem(t, WithFaultInjection(faults))
		stats, err := sys.RunN(8)
		if err != nil {
			t.Fatal(err)
		}
		accesses := 0
		for _, st := range stats {
			accesses += st.Accesses
		}
		return sys.Layout(), accesses, sys.Telemetry(), reg, sys.FaultStats()
	}

	layout1, accesses1, records1, reg, fs := run()
	if fs.Drops == 0 && fs.Delays == 0 {
		t.Fatal("fault injector fired nothing; the run exercised no faults")
	}
	if records1 != accesses1 {
		t.Errorf("db has %d records for %d accesses; faults lost or duplicated telemetry",
			records1, accesses1)
	}
	if v := agentCounter(reg, telemetry.MetricAgentRetriesTotal, "monitor"); v == 0 {
		t.Error("monitor retry counter is 0 despite injected drops")
	}
	if v := agentCounter(reg, telemetry.MetricAgentReconnectsTotal, "monitor"); v == 0 {
		t.Error("monitor reconnect counter is 0 despite injected drops")
	}

	layout2, accesses2, records2, _, _ := run()
	if records2 != accesses2 {
		t.Errorf("second run: db has %d records for %d accesses", records2, accesses2)
	}
	if len(layout1) != len(layout2) {
		t.Fatalf("layout sizes differ: %d vs %d", len(layout1), len(layout2))
	}
	for id, dev := range layout1 {
		if layout2[id] != dev {
			t.Errorf("file %d: run1 on %s, run2 on %s — faults leaked into the decisions",
				id, dev, layout2[id])
		}
	}
}

// TestDistributedDegradesWhenDaemonDies: killing the daemon mid-run must
// not error or hang the loop — it keeps serving the last-known layout,
// records the skipped decisions, counts them on the degraded metric, and
// tears down cleanly without leaking goroutines.
func TestDistributedDegradesWhenDaemonDies(t *testing.T) {
	baseline := runtime.NumGoroutine()
	pol := fastRetry()
	pol.MaxAttempts = 2
	pol.IOTimeout = 200 * time.Millisecond
	sys, reg := distributedSystem(t, WithCooldown(2), WithRetryPolicy(pol))

	if _, err := sys.RunN(4); err != nil {
		t.Fatal(err)
	}
	healthyRecords := sys.Telemetry()
	layoutBefore := sys.Layout()

	// The outage: the Interface Daemon dies under the agents.
	if err := sys.daemon.Close(); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		if _, err := sys.RunContext(t.Context()); err != nil {
			t.Fatalf("run %d after daemon death: %v (fail-open must absorb the outage)", i, err)
		}
	}
	if len(sys.Skipped()) == 0 {
		t.Error("no skipped decisions recorded during the outage")
	}
	if v := reg.Counter(telemetry.MetricAgentDegradedTotal).Value(); v == 0 {
		t.Error("degraded-decisions counter is 0 during the outage")
	}
	if sys.Telemetry() != healthyRecords {
		t.Errorf("db grew from %d to %d records while the daemon was dead",
			healthyRecords, sys.Telemetry())
	}
	// The last-known layout keeps being served.
	layoutAfter := sys.Layout()
	for id, dev := range layoutBefore {
		if layoutAfter[id] != dev {
			t.Errorf("file %d moved from %s to %s with no daemon to decide it", id, dev, layoutAfter[id])
		}
	}

	if err := sys.Close(); err != nil {
		t.Errorf("close after outage: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > baseline+2 {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		t.Errorf("%d goroutines alive after Close (baseline %d); agent loops leaked", n, baseline)
	}
}
