// Benchmarks regenerating every table and figure of the paper (one bench
// per artifact, at Quick scale so `go test -bench=.` terminates in
// minutes; use cmd/experiment -scale paper for the full-scale numbers),
// plus the ablation benches for the design decisions DESIGN.md calls out.
//
// Outcome-quality benches report a custom "GB/s" metric — the mean
// per-access throughput the configuration achieved — alongside the usual
// ns/op.
package geomancy

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"geomancy/internal/agents"
	"geomancy/internal/core"
	"geomancy/internal/experiments"
	"geomancy/internal/features"
	"geomancy/internal/mat"
	"geomancy/internal/nn"
	"geomancy/internal/replaydb"
	"geomancy/internal/storagesim"
	"geomancy/internal/trace"
	"geomancy/internal/workload"
)

// BenchmarkFig4Correlation regenerates the Fig. 4 feature-correlation
// report from a synthetic EOS trace.
func BenchmarkFig4Correlation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(experiments.Quick(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Correlations) == 0 {
			b.Fatal("empty correlation report")
		}
	}
}

// BenchmarkTable2ModelSearch trains and scores all 23 Table I
// architectures on people-mount telemetry.
func BenchmarkTable2ModelSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(experiments.Quick(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Models) != nn.ModelCount {
			b.Fatalf("%d models", len(res.Models))
		}
	}
}

// BenchmarkTable3PerMount trains model 1 per storage point.
func BenchmarkTable3PerMount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(experiments.Quick(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.PerMount) != 6 {
			b.Fatalf("%d mounts", len(res.PerMount))
		}
	}
}

// BenchmarkFig5aDynamicPolicies runs the dynamic-policy comparison and
// reports Geomancy's mean throughput.
func BenchmarkFig5aDynamicPolicies(b *testing.B) {
	var lastGeo float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5a(experiments.Quick(int64(i + 3)))
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range res.Series {
			if s.Name == "Geomancy dynamic" {
				lastGeo = s.Mean
			}
		}
	}
	b.ReportMetric(lastGeo/1e9, "GB/s")
}

// BenchmarkFig5bStaticPolicies runs the static-placement comparison.
func BenchmarkFig5bStaticPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5b(experiments.Quick(int64(i + 4)))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Series) != 3 {
			b.Fatalf("%d series", len(res.Series))
		}
	}
}

// BenchmarkTable4SingleMount sweeps the all-on-one-mount placements.
func BenchmarkTable4SingleMount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table4(experiments.Quick(int64(i + 5)))
		if err != nil {
			b.Fatal(err)
		}
		if res.Best().Name == "" {
			b.Fatal("no best mount")
		}
	}
}

// BenchmarkFig6Adaptation runs the dual-workload interference scenario.
func BenchmarkFig6Adaptation(b *testing.B) {
	var recovered float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(experiments.Quick(int64(i + 6)))
		if err != nil {
			b.Fatal(err)
		}
		recovered = res.RecoveredMean
	}
	b.ReportMetric(recovered/1e9, "GB/s")
}

// BenchmarkOverheadTrain measures model 1 training time (§VIII) on the
// six-feature telemetry; see BenchmarkOverheadPredict for the inference
// half of the overhead study.
func BenchmarkOverheadTrain(b *testing.B) {
	opts := experiments.Quick(7)
	gen := trace.NewGenerator(trace.GeneratorConfig{Seed: 7, Records: opts.TraceRecords})
	recs := gen.Generate(opts.TraceRecords)
	ds := mustEOSDataset(b, recs)
	train, _, _ := ds.Split()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		net := nn.MustBuildModel(1, 6, rng)
		if _, err := net.Fit(train, nn.FitConfig{Epochs: 3, BatchSize: 32, Optimizer: &nn.SGD{LR: 0.05}, Rng: rng}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverheadPredict measures single-prediction latency (§VIII:
// ≤ ~55 ms on the paper's hardware; small dense nets are microseconds in
// pure Go).
func BenchmarkOverheadPredict(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	net := nn.MustBuildModel(1, 6, rng)
	row := []float64{0.5, 0.1, 0.9, 0.9, 0.3, 0.6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.PredictOne([][]float64{row})
	}
}

func mustEOSDataset(b *testing.B, recs []trace.EOSRecord) *nn.Dataset {
	b.Helper()
	rows := make([][]float64, len(recs))
	targets := make([]float64, len(recs))
	for i := range recs {
		rows[i] = recs[i].ChosenFeatures()
		targets[i] = recs[i].Throughput()
	}
	targets = features.MovingAverage(targets, 8)
	var fs features.MinMaxScaler
	x := fs.FitTransform(mat.FromRows(rows))
	var ts features.ScalarScaler
	ts.Fit(targets)
	return nn.NewDataset(x, ts.TransformAll(targets))
}

// --- Scoring and GEMM hot-path benches (BENCH_scoring.json baseline) ---

// scoringLoop builds a trained engine over a warmed-up testbed: the
// candidate-scoring benchmark's fixture.
func scoringLoop(tb testing.TB) (*core.Loop, []core.FileMeta, *storagesim.Cluster, func()) {
	tb.Helper()
	const seed = 21
	cluster := storagesim.NewBluesky(seed)
	files := trace.BelleFileSet(seed)
	runner := workload.NewRunner(cluster, files, 1, seed)
	if err := runner.SpreadEvenly(cluster.DeviceNames()); err != nil {
		tb.Fatal(err)
	}
	db, err := replaydb.Open(replaydb.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	loop, err := core.NewLoop(db, cluster, runner, quickEngineCfg(seed))
	if err != nil {
		db.Close()
		tb.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		if _, err := loop.RunOnce(); err != nil {
			db.Close()
			tb.Fatal(err)
		}
	}
	if _, err := loop.Engine.Train(); err != nil {
		db.Close()
		tb.Fatal(err)
	}
	layout := cluster.Layout()
	metas := make([]core.FileMeta, 0, len(files))
	for _, f := range files {
		metas = append(metas, core.FileMeta{ID: f.ID, Path: f.Path, Size: f.Size, Device: layout[f.ID]})
	}
	return loop, metas, cluster, func() { db.Close() }
}

// BenchmarkScoringProposeLayout measures the engine's decision hot path:
// one full candidate-scoring pass (len(files)×len(devices) batched
// inferences) plus Action Checker validation and layout assembly.
func BenchmarkScoringProposeLayout(b *testing.B) {
	loop, metas, cluster, closeDB := scoringLoop(b)
	defer closeDB()
	valid := agents.ClusterValidator(cluster)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := loop.Engine.ProposeLayout(metas, loop.Checker, valid); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScoringExhaustive2k measures the exhaustive O(F·D) decision
// pass at warehouse scale: 2048 files × 64 devices, every candidate
// re-scored each cycle. The TopK=0 counterpart of BenchmarkScoringTopK.
func BenchmarkScoringExhaustive2k(b *testing.B) {
	w := newWarehouse(b, 2048, 64, 0, 0)
	proposeWarehouse(b, w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proposeWarehouse(b, w)
	}
}

// BenchmarkScoringTopK measures the pruned decision pass over the same
// 2048×64 population: TopK=2 per class, a quarter of the files dirty per
// cycle, full rescan every 16th decision folded into the mean. See
// TestTopKSpeedup for the asserted ≥5× ratio against the exhaustive pass.
func BenchmarkScoringTopK(b *testing.B) {
	w := newWarehouse(b, 2048, 64, 2, 16)
	proposeWarehouse(b, w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proposeWarehouse(b, w)
	}
}

// shardedScoringFixture builds a warehouse-scale sharded coordinator:
// nDev synthetic devices across eight hardware classes partitioned into
// nShards device groups, nFiles files with seeded telemetry, and the
// global engine trained once. The returned dirty function mirrors the
// warehouseFixture's steady-state telemetry churn.
func shardedScoringFixture(tb testing.TB, nFiles, nDev, nShards int) (*core.Sharded, []core.FileMeta, func()) {
	tb.Helper()
	profiles := make([]storagesim.DeviceProfile, nDev)
	speeds := make([]float64, nDev)
	for i := range profiles {
		class := i % 8
		speeds[i] = float64(8-class)*1e9 + float64(i/8)*3e7
		profiles[i] = storagesim.DeviceProfile{
			Name:     fmt.Sprintf("dev%03d", i),
			Class:    fmt.Sprintf("class%d", class),
			ReadBW:   speeds[i],
			WriteBW:  speeds[i],
			Capacity: 1e13,
		}
	}
	cluster, err := storagesim.NewCluster(profiles, storagesim.Config{Seed: 7})
	if err != nil {
		tb.Fatal(err)
	}
	db, err := replaydb.Open(replaydb.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { db.Close() })
	r := rand.New(rand.NewSource(31))
	now := 0
	appendFor := func(id int64, dev int) {
		now++
		if _, err := db.AppendAccess(replaydb.AccessRecord{
			Time:       float64(now),
			FileID:     id,
			Device:     profiles[dev].Name,
			BytesRead:  int64(1e8 + r.Float64()*9e8),
			OpenTS:     int64(now),
			CloseTS:    int64(now),
			CloseTMS:   500,
			Throughput: speeds[dev] * (0.7 + 0.6*r.Float64()),
		}); err != nil {
			tb.Fatal(err)
		}
	}
	files := make([]core.FileMeta, nFiles)
	for i := range files {
		id := int64(i + 1)
		dev := r.Intn(nDev)
		files[i] = core.FileMeta{
			ID:     id,
			Path:   fmt.Sprintf("/wh/f%04d", i),
			Size:   int64(1e8 + r.Float64()*4e8),
			Device: profiles[dev].Name,
		}
		appendFor(id, dev)
	}
	cfg := core.Config{Epochs: 4, WindowX: 600, Seed: 31, Epsilon: 0.05}
	sharded, err := core.NewSharded(db, cluster, nShards, nil, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	if err := sharded.Model().Retrain(context.Background()); err != nil {
		tb.Fatal(err)
	}
	dirty := func(fraction float64) {
		n := int(float64(nFiles) * fraction)
		for k := 0; k < n; k++ {
			i := r.Intn(nFiles)
			appendFor(files[i].ID, r.Intn(nDev))
		}
	}
	return sharded, files, func() { dirty(0.25) }
}

// BenchmarkScoringSharded16 measures the sharded decision cycle over the
// BenchmarkScoringExhaustive2k population split into 16 device groups:
// per-shard candidate preparation, ONE cross-shard batched inference,
// concurrent ε-greedy selection, and the escalation merge. See
// TestShardedSpeedup (internal/core) for the asserted ≥4× ratio against
// the unsharded pass at 4096×256.
func BenchmarkScoringSharded16(b *testing.B) {
	sharded, files, dirty := shardedScoringFixture(b, 2048, 64, 16)
	ctx := context.Background()
	if _, _, err := sharded.DecideLayout(ctx, files); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dirty()
		if _, _, err := sharded.DecideLayout(ctx, files); err != nil {
			b.Fatal(err)
		}
	}
}

// gemmFixture builds a GEMM triple shaped like batched candidate scoring:
// (files×devices) stacked feature rows through a hidden layer.
func gemmFixture(rows, inner, cols int) (dst, a, bm *mat.Matrix) {
	rng := rand.New(rand.NewSource(3))
	a = mat.New(rows, inner)
	bm = mat.New(inner, cols)
	for i := range a.Data {
		a.Data[i] = rng.Float64()
	}
	for i := range bm.Data {
		bm.Data[i] = rng.Float64()
	}
	return mat.New(rows, cols), a, bm
}

// BenchmarkScoringGEMM measures the serial matrix multiply underneath
// every inference batch (144 candidate rows through a 64-wide layer).
func BenchmarkScoringGEMM(b *testing.B) {
	dst, x, w := gemmFixture(144, 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.MulTo(dst, x, w)
	}
}

// BenchmarkScoringGEMMParallel is the row-sharded variant the engine uses
// with a worker pool.
func BenchmarkScoringGEMMParallel(b *testing.B) {
	dst, x, w := gemmFixture(144, 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.ParallelMulTo(dst, x, w, 4)
	}
}

// benchRecord is one BENCH_scoring.json entry.
type benchRecord struct {
	Name      string  `json:"name"`
	NsPerOp   float64 `json:"ns_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Runs      int     `json:"runs"`
}

// TestBenchBaseline writes the scoring-path benchmark baseline as JSON to
// the path in GEOMANCY_BENCH_JSON (skipped when unset, so the regular
// test run stays fast). CI runs it with the env var set and uploads the
// file as the BENCH_scoring.json artifact; the committed copy at the
// repo root is the reference snapshot.
func TestBenchBaseline(t *testing.T) {
	path := os.Getenv("GEOMANCY_BENCH_JSON")
	if path == "" {
		t.Skip("GEOMANCY_BENCH_JSON not set")
	}
	var records []benchRecord
	for _, bench := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"ScoringProposeLayout", BenchmarkScoringProposeLayout},
		{"ScoringExhaustive2k", BenchmarkScoringExhaustive2k},
		{"ScoringTopK", BenchmarkScoringTopK},
		{"ScoringSharded16", BenchmarkScoringSharded16},
		{"ScoringGEMM", BenchmarkScoringGEMM},
		{"ScoringGEMMParallel", BenchmarkScoringGEMMParallel},
	} {
		res := testing.Benchmark(bench.fn)
		if res.N == 0 {
			t.Fatalf("benchmark %s did not run", bench.name)
		}
		ns := float64(res.NsPerOp())
		rec := benchRecord{Name: bench.name, NsPerOp: ns, Runs: res.N}
		if ns > 0 {
			rec.OpsPerSec = 1e9 / ns
		}
		records = append(records, rec)
		t.Logf("%s: %.0f ns/op (%.1f ops/s over %d runs)", rec.Name, rec.NsPerOp, rec.OpsPerSec, rec.Runs)
	}
	out, err := json.MarshalIndent(map[string]any{"benchmarks": records}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// --- Ablation benches (DESIGN.md §Key design decisions) ---

// ablationLoop runs a small closed loop with the given engine config and
// returns the mean throughput achieved.
func ablationLoop(b *testing.B, seed int64, cfg core.Config) float64 {
	b.Helper()
	cluster := storagesim.NewBluesky(seed)
	files := trace.BelleFileSet(seed)
	runner := workload.NewRunner(cluster, files, 1, seed)
	if err := runner.SpreadEvenly(cluster.DeviceNames()); err != nil {
		b.Fatal(err)
	}
	db, err := replaydb.Open(replaydb.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	loop, err := core.NewLoop(db, cluster, runner, cfg)
	if err != nil {
		b.Fatal(err)
	}
	var sum float64
	var n int64
	loop.Observer = func(res storagesim.AccessResult, wl, run int) {
		sum += res.Throughput
		n++
	}
	for r := 0; r < 10; r++ {
		if _, err := loop.RunOnce(); err != nil {
			b.Fatal(err)
		}
	}
	if n == 0 {
		b.Fatal("no accesses")
	}
	return sum / float64(n)
}

func quickEngineCfg(seed int64) core.Config {
	return core.Config{Epochs: 10, WindowX: 600, CooldownRuns: 2, Seed: seed}
}

// BenchmarkAblationRecurrent compares the deployed dense model 1 against
// the recurrent runner-up model 18 (§V-G's central trade-off).
func BenchmarkAblationRecurrent(b *testing.B) {
	for _, m := range []struct {
		name  string
		model int
	}{{"model1-dense", 1}, {"model18-rnn", 18}} {
		b.Run(m.name, func(b *testing.B) {
			var tp float64
			for i := 0; i < b.N; i++ {
				cfg := quickEngineCfg(int64(i + 1))
				cfg.ModelNumber = m.model
				tp = ablationLoop(b, int64(i+1), cfg)
			}
			b.ReportMetric(tp/1e9, "GB/s")
		})
	}
}

// BenchmarkAblationOptimizer reproduces the paper's SGD-vs-Adam choice.
func BenchmarkAblationOptimizer(b *testing.B) {
	for _, opt := range []string{"sgd", "adam"} {
		b.Run(opt, func(b *testing.B) {
			var tp float64
			for i := 0; i < b.N; i++ {
				cfg := quickEngineCfg(int64(i + 1))
				cfg.Optimizer = opt
				tp = ablationLoop(b, int64(i+1), cfg)
			}
			b.ReportMetric(tp/1e9, "GB/s")
		})
	}
}

// BenchmarkAblationEpsilon sweeps the exploration rate around the paper's
// 10%.
func BenchmarkAblationEpsilon(b *testing.B) {
	for _, e := range []struct {
		name string
		eps  float64
	}{{"eps0", 1e-9}, {"eps0.1", 0.1}, {"eps0.3", 0.3}} {
		b.Run(e.name, func(b *testing.B) {
			var tp float64
			for i := 0; i < b.N; i++ {
				cfg := quickEngineCfg(int64(i + 1))
				cfg.Epsilon = e.eps
				tp = ablationLoop(b, int64(i+1), cfg)
			}
			b.ReportMetric(tp/1e9, "GB/s")
		})
	}
}

// BenchmarkAblationCooldown sweeps the movement cadence around the
// paper's every-5-runs setting.
func BenchmarkAblationCooldown(b *testing.B) {
	for _, c := range []struct {
		name string
		runs int
	}{{"cooldown1", 1}, {"cooldown5", 5}, {"cooldown10", 10}} {
		b.Run(c.name, func(b *testing.B) {
			var tp float64
			for i := 0; i < b.N; i++ {
				cfg := quickEngineCfg(int64(i + 1))
				cfg.CooldownRuns = c.runs
				tp = ablationLoop(b, int64(i+1), cfg)
			}
			b.ReportMetric(tp/1e9, "GB/s")
		})
	}
}

// BenchmarkAblationSmoothing compares moving-average smoothing (the
// paper's choice) against cumulative average and no smoothing (§V-E).
func BenchmarkAblationSmoothing(b *testing.B) {
	for _, s := range []struct {
		name   string
		window int
	}{{"moving-average", 8}, {"cumulative", -1}, {"none", 1}} {
		b.Run(s.name, func(b *testing.B) {
			var tp float64
			for i := 0; i < b.N; i++ {
				cfg := quickEngineCfg(int64(i + 1))
				cfg.SmoothWindow = s.window
				tp = ablationLoop(b, int64(i+1), cfg)
			}
			b.ReportMetric(tp/1e9, "GB/s")
		})
	}
}
