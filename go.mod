module geomancy

go 1.22
