// Package geomancy is the public API of the Geomancy reproduction — an
// RL-driven data-layout optimizer for distributed storage, after "Geomancy:
// Automated Performance Enhancement through Data Layout Optimization"
// (Bel et al., ISPASS 2020).
//
// Geomancy watches per-access telemetry from every storage device of a
// target system, stores it in a replay database, trains a small neural
// network that predicts the throughput a file would see at every candidate
// location, and periodically migrates files to the locations with the
// highest predicted throughput (exploring randomly 10% of the time).
//
// The package wires the full closed loop over a simulated target system:
//
//	sys, err := geomancy.New(geomancy.WithSeed(42))
//	if err != nil { ... }
//	defer sys.Close()
//	for i := 0; i < 25; i++ {
//		stats, err := sys.Run()       // one workload run (+ tuning on cooldown)
//		...
//	}
//	fmt.Println(sys.MeanThroughput()) // bytes/second
//
// The building blocks live in internal packages: internal/nn (the neural
// network library), internal/storagesim (the simulated Bluesky cluster),
// internal/replaydb (the embedded telemetry store), internal/agents (the
// TCP monitoring/control plane), internal/core (the DRL engine), and
// internal/experiments (the paper's tables and figures).
package geomancy

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"geomancy/internal/agents"
	"geomancy/internal/checkpoint"
	"geomancy/internal/core"
	"geomancy/internal/faultnet"
	"geomancy/internal/policy"
	"geomancy/internal/replaydb"
	"geomancy/internal/rng"
	"geomancy/internal/scenario"
	"geomancy/internal/storagesim"
	"geomancy/internal/telemetry"
	"geomancy/internal/trace"
	"geomancy/internal/workload"
)

// Metrics is the telemetry registry: a concurrency-safe collection of
// counters, gauges, and histograms that every layer of the closed loop
// reports into. Expose it over HTTP with Serve (Prometheus text format on
// /metrics, JSON on /metrics.json) or snapshot it with WritePrometheus /
// WriteJSON.
type Metrics = telemetry.Registry

// NewMetrics returns an empty registry with the canonical Geomancy metric
// help text installed.
func NewMetrics() *Metrics {
	reg := telemetry.NewRegistry()
	telemetry.RegisterHelp(reg)
	return reg
}

// Sentinel errors of the public API. Match with errors.Is; the internal
// engine's sentinels (core.ErrNoTelemetry, core.ErrNotTrained) also surface
// through Run's error chain unchanged.
var (
	// ErrClosed reports a Run (or RunN) issued after Close.
	ErrClosed = errors.New("geomancy: system closed")
	// ErrCorrupt reports a checkpoint that failed validation (bad magic,
	// truncated frame, CRC mismatch). Restore from an older snapshot or
	// start fresh.
	ErrCorrupt = checkpoint.ErrCorrupt
	// ErrNoCheckpoint reports a Restore (or RestoreLatest) with no usable
	// snapshot to resume from.
	ErrNoCheckpoint = checkpoint.ErrNoCheckpoint
	// ErrUnknownPolicy reports a WithPolicy name outside the catalogue
	// (see Policies).
	ErrUnknownPolicy = policy.ErrUnknown
)

// RunStats re-exports the per-run workload summary.
type RunStats = workload.RunStats

// MovementEvent re-exports the layout-change record.
type MovementEvent = core.MovementEvent

// TrainReport re-exports the engine's training summary.
type TrainReport = core.TrainReport

// File describes one workload file.
type File = trace.BelleFile

// DeviceProfile re-exports the simulated-device description so callers can
// build custom clusters.
type DeviceProfile = storagesim.DeviceProfile

// AccessResult re-exports the per-access telemetry record observers see.
type AccessResult = storagesim.AccessResult

// Observer receives every access's telemetry, tagged with the workload id
// and run index. Observers run synchronously on the access path.
type Observer = workload.Observer

// RetryPolicy bounds every agent RPC in the distributed deployment:
// per-operation I/O deadlines plus an exponential-backoff retry budget
// with jitter. The zero value selects the defaults (4 attempts, 5ms base
// backoff, 5s I/O timeout).
type RetryPolicy = agents.RetryPolicy

// SkippedDecision records a decision cycle served in degraded mode: the
// agents plane was unreachable, so the last-known layout was kept.
type SkippedDecision = core.SkippedDecision

// FaultConfig tunes deterministic fault injection on the distributed
// deployment's agent connections (drops, delays, partial writes), for
// chaos-testing the control plane.
type FaultConfig = faultnet.Config

// FaultStats counts the faults injected so far.
type FaultStats = faultnet.Stats

// Workload is the scenario-plane contract a driven workload satisfies:
// identity, working set, placement, runs, and checkpoint serialization.
// See internal/scenario for the catalogue of implementations.
type Workload = scenario.Workload

// ScenarioInfo describes one registered scenario (name + description).
type ScenarioInfo = scenario.Info

// WorkloadBuilder constructs a custom workload over the system's cluster
// during New. files is the configured working set (nil selects the
// builder's default population) and seed is the configuration seed.
type WorkloadBuilder func(cluster *storagesim.Cluster, files []File, seed int64) (Workload, error)

// Scenarios lists every registered scenario, sorted by name — the
// catalogue WithScenario accepts.
func Scenarios() []ScenarioInfo { return scenario.List() }

// PolicyInfo describes one catalogued placement policy (name +
// description).
type PolicyInfo = policy.Info

// Policies lists every selectable placement policy, baselines first and
// the learned Geomancy family last — the catalogue WithPolicy accepts.
func Policies() []PolicyInfo { return policy.Catalogue() }

// config collects the options.
type config struct {
	seed          int64
	model         int
	epsilon       float64
	cooldown      int
	epochs        int
	windowX       int
	replayPath    string
	profiles      []storagesim.DeviceProfile
	files         []trace.BelleFile
	bootstrapRun  int
	target        string
	gapScheduling bool
	parallelism   int
	topK          int
	fullRescan    int
	observer      Observer
	metrics       *telemetry.Registry
	distributed   bool
	retry         *agents.RetryPolicy
	faults        *faultnet.Config
	checkpointDir string
	listenAddr    string
	failOpen      *bool
	scenario      string
	workload      WorkloadBuilder
	policy        string
	shards        int
	shardBy       func(string) int
}

// Option customizes New.
type Option func(*config)

// WithSeed fixes every stochastic component; equal seeds replay
// identically.
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithModel selects the Table I architecture (1–23); default 1.
func WithModel(n int) Option { return func(c *config) { c.model = n } }

// WithEpsilon sets the exploration rate; default 0.1.
func WithEpsilon(eps float64) Option { return func(c *config) { c.epsilon = eps } }

// WithCooldown sets how many workload runs pass between layout changes;
// default 5.
func WithCooldown(runs int) Option { return func(c *config) { c.cooldown = runs } }

// WithEpochs sets the training epochs per decision; default 200 (the
// paper's setting — use a smaller value for interactive experimentation).
func WithEpochs(epochs int) Option { return func(c *config) { c.epochs = epochs } }

// WithTrainingWindow sets the per-device ReplayDB window; default 2000.
func WithTrainingWindow(x int) Option { return func(c *config) { c.windowX = x } }

// WithReplayDB persists telemetry to the given WAL path instead of memory.
func WithReplayDB(path string) Option { return func(c *config) { c.replayPath = path } }

// WithDevices replaces the default Bluesky cluster profile.
func WithDevices(profiles []DeviceProfile) Option {
	return func(c *config) { c.profiles = profiles }
}

// WithScenario selects a named workload from the scenario catalogue
// (default "belle", the paper's BELLE II suite). See Scenarios for the
// registered names; an unknown name fails New.
func WithScenario(name string) Option { return func(c *config) { c.scenario = name } }

// WithPolicy selects a named placement policy from the policy catalogue
// (default "geomancy", the paper's DRL closed loop). See Policies for
// the registered names; an unknown name fails New with ErrUnknownPolicy.
// Baseline policies run engine-free: training-related options
// (WithModel, WithEpochs, ...) are ignored and checkpoints carry no
// engine state.
func WithPolicy(name string) Option { return func(c *config) { c.policy = name } }

// WithWorkload installs a custom workload built by fn over the system's
// cluster, overriding WithScenario. The builder's workload must be
// deterministic in (cluster, files, seed) for checkpoint/restore to
// reproduce it.
func WithWorkload(fn WorkloadBuilder) Option { return func(c *config) { c.workload = fn } }

// WithFiles replaces the default BELLE II working set.
func WithFiles(files []File) Option { return func(c *config) { c.files = files } }

// WithBootstrapRuns sets how many warm-up runs precede tuning; default 5.
func WithBootstrapRuns(n int) Option { return func(c *config) { c.bootstrapRun = n } }

// WithLatencyTarget switches the engine to minimizing predicted access
// latency instead of maximizing predicted throughput (the paper's §V-C
// future-work variant for latency-sensitive workloads).
func WithLatencyTarget() Option { return func(c *config) { c.target = core.TargetLatency } }

// WithGapScheduling gates data movements on each file's predicted
// inter-access gap, so transfers happen while their file is idle (the
// paper's §X extension).
func WithGapScheduling() Option { return func(c *config) { c.gapScheduling = true } }

// WithParallelism bounds the engine's worker pool: candidate feature
// assembly, the batched-inference GEMMs, and per-minibatch gradient
// accumulation all fan out across n goroutines. The default is
// runtime.GOMAXPROCS(0). n = 1 runs the serial engine bit-for-bit; any
// n ≥ 2 is deterministic and independent of the actual worker count, so
// equal seeds replay identically on any machine with at least two workers.
func WithParallelism(n int) Option { return func(c *config) { c.parallelism = n } }

// WithTopK enables the engine's candidate pruning: each decision scores a
// file against only the top-k devices per device class by recent
// throughput (plus the file's current device), and skips files whose
// telemetry has not changed since their last scoring. The first decision
// and every WithFullRescanEvery-th one still run the exhaustive pass, so
// pruning error cannot accumulate. k = 0 (the default) scores every
// (file, device) pairing on every decision — the paper's behavior.
func WithTopK(k int) Option { return func(c *config) { c.topK = k } }

// WithFullRescanEvery sets the pruning cadence: with WithTopK, every Nth
// decision re-scores the full candidate space and refreshes every cache.
// Default 8. Ignored without WithTopK.
func WithFullRescanEvery(n int) Option { return func(c *config) { c.fullRescan = n } }

// WithShards partitions the cluster's devices into n shards and drives
// placement through the sharded coordinator: each shard owns a
// lightweight engine deciding over its own device subset, every shard's
// candidate rows forward through the shared network in ONE batched
// inference per cycle, and placements a shard clearly cannot serve
// escalate to the cluster-wide throughput digest under two-phase
// capacity reservations. Shard decisions run concurrently under the
// WithParallelism worker bound, yet equal seeds replay identically at
// any parallelism (fixed merge order, per-shard RNG streams). n = 1 is
// bit-identical to the unsharded engine; n = 0 (the default) disables
// sharding entirely. Devices are grouped contiguously in profile order
// unless WithShardBy overrides the assignment. Only the default
// "geomancy" policy shards — combining WithShards with another
// WithPolicy fails New — and recurrent architectures (WithModel) are
// rejected for n > 1.
func WithShards(n int) Option { return func(c *config) { c.shards = n } }

// WithShardBy overrides the sharded coordinator's device→shard
// assignment: fn maps a device name to a shard index in [0, n). Only
// meaningful with WithShards.
func WithShardBy(fn func(device string) int) Option {
	return func(c *config) { c.shardBy = fn }
}

// WithObserver taps every access's telemetry: fn runs synchronously for
// each AccessResult the workload produces, during bootstrap and tuned runs
// alike. Use it to stream per-access data into custom sinks without
// wiring a full telemetry registry.
func WithObserver(fn Observer) Option { return func(c *config) { c.observer = fn } }

// WithTelemetry reports every layer of the system — per-device access
// histograms, training gauges, movement and ReplayDB counters — through m.
// Share one registry across systems to aggregate, or call Serve on it to
// scrape live.
func WithTelemetry(m *Metrics) Option { return func(c *config) { c.metrics = m } }

// WithDistributed runs the closed loop through the paper's Fig. 2
// plumbing instead of in-process calls: an Interface Daemon on loopback
// TCP, one monitoring agent per device shipping telemetry batches, a
// control agent executing layout pushes, and the engine training through
// a RemoteStore. The loop fails open: when the daemon or a control agent
// is unreachable, it keeps serving the last-known layout, records the
// skipped decision (see Skipped), and counts it on
// geomancy_agents_degraded_decisions_total.
func WithDistributed() Option { return func(c *config) { c.distributed = true } }

// WithRetryPolicy bounds the distributed deployment's agent RPCs:
// deadlines, retry budget, and backoff. Only meaningful with
// WithDistributed.
func WithRetryPolicy(p RetryPolicy) Option {
	return func(c *config) { c.retry = &p }
}

// WithFaultInjection perturbs every agent connection of the distributed
// deployment with deterministic, seeded faults — the chaos-testing knob
// for the control plane. Only meaningful with WithDistributed.
func WithFaultInjection(fc FaultConfig) Option {
	return func(c *config) { c.faults = &fc }
}

// WithCheckpointDir enables checkpointing into dir: SaveCheckpoint writes
// rotating numbered snapshots there, Close flushes a final one, and
// RestoreLatest resumes from the newest intact snapshot. The directory is
// created if needed.
func WithCheckpointDir(dir string) Option {
	return func(c *config) { c.checkpointDir = dir }
}

// WithListenAddr sets the distributed deployment's Interface Daemon
// listen address; default "127.0.0.1:0" (loopback, ephemeral port). Only
// meaningful with WithDistributed.
func WithListenAddr(addr string) Option {
	return func(c *config) { c.listenAddr = addr }
}

// WithFailOpen controls the distributed loop's degraded mode. Fail-open
// (the default with WithDistributed) keeps serving the last-known layout
// when the agents plane is unreachable, recording the skipped cycle;
// fail-closed surfaces the outage as a Run error instead. Only meaningful
// with WithDistributed.
func WithFailOpen(on bool) Option {
	return func(c *config) { c.failOpen = &on }
}

// System is a fully wired Geomancy deployment over a simulated target
// system. It is not safe for concurrent use.
type System struct {
	cluster *storagesim.Cluster
	db      *replaydb.DB
	runner  scenario.Workload
	loop    *core.Loop

	// sharded plane (nil without WithShards)
	sharded *core.Sharded
	shards  int

	// distributed plane (nil without WithDistributed)
	daemon     *agents.Daemon
	daemonAddr string
	monitors   *agents.MonitorSet
	control    *agents.Control
	store      *agents.RemoteStore
	fnet       *faultnet.Network

	bootstrapLeft int
	closed        bool
	midRun        bool
	stats         []RunStats
	tpSum         float64
	tpCount       int64

	seed       int64
	replayPath string
	ckptStore  *checkpoint.Store

	metrics    *telemetry.Registry
	metricsObs workload.Observer
}

// New assembles a system: cluster, working set spread evenly, replay
// database, and the DRL engine loop.
func New(opts ...Option) (*System, error) {
	cfg := config{
		seed:         1,
		model:        1,
		epsilon:      0.1,
		cooldown:     5,
		epochs:       200,
		windowX:      2000,
		bootstrapRun: 5,
		parallelism:  runtime.GOMAXPROCS(0),
	}
	for _, o := range opts {
		o(&cfg)
	}
	profiles := cfg.profiles
	if profiles == nil {
		profiles = storagesim.BlueskyProfiles()
	}
	cluster, err := storagesim.NewCluster(profiles, storagesim.Config{Seed: cfg.seed})
	if err != nil {
		return nil, fmt.Errorf("geomancy: building cluster: %w", err)
	}
	scenarioName := cfg.scenario
	if scenarioName == "" {
		scenarioName = "belle"
	}
	var runner scenario.Workload
	if cfg.workload != nil {
		runner, err = cfg.workload(cluster, cfg.files, cfg.seed)
		if err != nil {
			return nil, fmt.Errorf("geomancy: building custom workload: %w", err)
		}
		if runner == nil {
			return nil, fmt.Errorf("geomancy: workload builder returned nil")
		}
	} else {
		runner, err = scenario.New(scenarioName, cluster, cfg.files, cfg.seed)
		if err != nil {
			return nil, fmt.Errorf("geomancy: building workload: %w", err)
		}
	}
	if err := runner.SpreadEvenly(cluster.DeviceNames()); err != nil {
		return nil, fmt.Errorf("geomancy: placing working set: %w", err)
	}
	db, err := replaydb.Open(replaydb.Options{Path: cfg.replayPath})
	if err != nil {
		return nil, fmt.Errorf("geomancy: opening replay database: %w", err)
	}
	sys := &System{
		cluster:       cluster,
		db:            db,
		runner:        runner,
		bootstrapLeft: cfg.bootstrapRun,
		seed:          cfg.seed,
		replayPath:    cfg.replayPath,
		metrics:       cfg.metrics,
		metricsObs:    workload.MetricsObserver(cfg.metrics),
	}
	if cfg.checkpointDir != "" {
		store, err := checkpoint.NewStore(cfg.checkpointDir)
		if err != nil {
			db.Close()
			return nil, fmt.Errorf("geomancy: opening checkpoint store: %w", err)
		}
		sys.ckptStore = store
	}
	var store core.TelemetryStore = db
	if cfg.distributed {
		if err := sys.startAgents(&cfg); err != nil {
			sys.teardownAgents()
			db.Close()
			return nil, err
		}
		store = sys.store
	}
	engCfg := core.Config{
		ModelNumber:     cfg.model,
		Epsilon:         cfg.epsilon,
		CooldownRuns:    cfg.cooldown,
		Epochs:          cfg.epochs,
		WindowX:         cfg.windowX,
		Seed:            cfg.seed,
		Target:          cfg.target,
		Parallelism:     cfg.parallelism,
		TopK:            cfg.topK,
		FullRescanEvery: cfg.fullRescan,
	}
	var loop *core.Loop
	if cfg.shards > 0 {
		if cfg.policy != "" && cfg.policy != "geomancy" {
			sys.teardownAgents()
			db.Close()
			return nil, fmt.Errorf("geomancy: WithShards drives the %q policy; it cannot combine with WithPolicy(%q)",
				"geomancy", cfg.policy)
		}
		sharded, err := core.NewSharded(store, cluster, cfg.shards, cfg.shardBy, engCfg)
		if err != nil {
			sys.teardownAgents()
			db.Close()
			return nil, fmt.Errorf("geomancy: building sharded coordinator: %w", err)
		}
		loop = core.NewPolicyLoop(db, cluster, runner, sharded, cfg.cooldown)
		loop.SetModel(sharded.Model())
		sys.sharded = sharded
		sys.shards = cfg.shards
	} else {
		loop, err = core.NewNamedLoop(store, db, cluster, runner, cfg.policy, engCfg)
		if err != nil {
			sys.teardownAgents()
			db.Close()
			return nil, fmt.Errorf("geomancy: building loop: %w", err)
		}
	}
	sys.loop = loop
	if cfg.distributed {
		rp := agents.RetryPolicy{}
		if cfg.retry != nil {
			rp = *cfg.retry
		}
		loop.Recorder = sys.monitors.Observe
		loop.Flusher = sys.monitors.Flush
		loop.Pusher = pushRetrier{
			d:      sys.daemon,
			policy: rp,
			rng:    rng.New(cfg.seed + 101),
		}
		loop.FailOpen = true
		if cfg.failOpen != nil {
			loop.FailOpen = *cfg.failOpen
		}
	}
	if cfg.gapScheduling {
		loop.EnableGapScheduling()
	}
	if cfg.metrics != nil {
		db.SetMetrics(cfg.metrics)
		loop.SetMetrics(cfg.metrics)
	}
	loop.Observer = func(res storagesim.AccessResult, wl, run int) {
		sys.tpSum += res.Throughput
		sys.tpCount++
		if cfg.observer != nil {
			cfg.observer(res, wl, run)
		}
	}
	return sys, nil
}

// startAgents brings up the distributed plane on loopback TCP: Interface
// Daemon, one monitoring agent per device, a control agent whose mover
// drives the simulated cluster, and the engine's RemoteStore.
func (s *System) startAgents(cfg *config) error {
	daemon := agents.NewDaemon(s.db)
	if cfg.metrics != nil {
		daemon.SetMetrics(cfg.metrics)
	}
	if cfg.faults != nil {
		s.fnet = faultnet.New(*cfg.faults)
		daemon.WrapListener = s.fnet.Listener
	}
	listen := cfg.listenAddr
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	addr, err := daemon.Start(listen)
	if err != nil {
		return fmt.Errorf("geomancy: starting interface daemon: %w", err)
	}
	s.daemon = daemon
	s.daemonAddr = addr
	var aopts []agents.Option
	if cfg.retry != nil {
		aopts = append(aopts, agents.WithRetryPolicy(*cfg.retry))
	}
	if cfg.metrics != nil {
		aopts = append(aopts, agents.WithMetrics(cfg.metrics))
	}
	monitors, err := agents.NewMonitorSet(addr, s.cluster.DeviceNames(), monitorBatchSize, aopts...)
	if err != nil {
		return fmt.Errorf("geomancy: starting monitoring agents: %w", err)
	}
	s.monitors = monitors
	control, err := agents.NewControl(addr, func(id int64, dev string) (bool, error) {
		mv, err := s.cluster.Move(id, dev)
		if err != nil {
			return false, err
		}
		return mv.From != mv.To, nil
	}, aopts...)
	if err != nil {
		return fmt.Errorf("geomancy: starting control agent: %w", err)
	}
	s.control = control
	store, err := agents.DialRemoteStore(addr, aopts...)
	if err != nil {
		return fmt.Errorf("geomancy: connecting engine store: %w", err)
	}
	s.store = store
	return nil
}

// monitorBatchSize is the monitoring agents' telemetry batch size in the
// distributed deployment.
const monitorBatchSize = 32

// pushRetrier is the loop's LayoutPusher: Daemon.PushLayout under the
// retry policy, so a transient fault on a control-agent connection does
// not cost a decision cycle (pushes replay safely; see PushLayoutRetry).
type pushRetrier struct {
	d      *agents.Daemon
	policy agents.RetryPolicy
	rng    *rng.RNG
}

func (p pushRetrier) PushLayout(layout map[int64]string) (int, error) {
	return p.d.PushLayoutRetry(layout, p.policy, p.rng)
}

// teardownAgents closes whatever part of the distributed plane is up,
// tolerating an unreachable daemon (final flushes are then abandoned).
func (s *System) teardownAgents() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil && !errors.Is(err, agents.ErrUnavailable) {
			first = err
		}
	}
	if s.monitors != nil {
		keep(s.monitors.Close())
	}
	if s.control != nil {
		keep(s.control.Close())
	}
	if s.store != nil {
		keep(s.store.Close())
	}
	if s.daemon != nil {
		keep(s.daemon.Close())
	}
	return first
}

// Run executes one workload run. During the bootstrap phase only telemetry
// is collected; afterwards the engine trains and retunes the layout on its
// cooldown schedule. Run after Close returns ErrClosed.
func (s *System) Run() (RunStats, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run with cancellation: ctx is checked between workload
// accesses, between training epochs, and between candidate-scoring
// batches, so a cancelled call returns promptly with an error satisfying
// errors.Is(err, ctx.Err()) and without applying a partial layout.
func (s *System) RunContext(ctx context.Context) (RunStats, error) {
	if s.closed {
		return RunStats{}, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return RunStats{}, err
	}
	s.midRun = true
	var stats RunStats
	var err error
	if s.bootstrapLeft > 0 {
		s.bootstrapLeft--
		var obsErr error
		stats, err = s.runner.RunOnceContext(ctx, func(res storagesim.AccessResult, wl, run int) {
			s.loop.Observer(res, wl, run)
			if s.metricsObs != nil {
				s.metricsObs(res, wl, run)
			}
			if s.monitors != nil {
				if e := s.monitors.Observe(res, wl, run); e != nil && obsErr == nil {
					obsErr = e
				}
			} else {
				s.recordBootstrap(res, wl, run)
			}
		})
		if err == nil && s.monitors != nil {
			if e := s.monitors.Flush(); e != nil && obsErr == nil {
				obsErr = e
			}
		}
		// An unreachable daemon during bootstrap is tolerated: the
		// monitors retain the unacked batches and replay them on a later
		// flush, so no telemetry is lost.
		if err == nil && obsErr != nil && !errors.Is(obsErr, agents.ErrUnavailable) {
			return stats, fmt.Errorf("geomancy: recording bootstrap telemetry: %w", obsErr)
		}
	} else {
		stats, err = s.loop.RunOnceContext(ctx)
	}
	if err != nil {
		return stats, err
	}
	s.midRun = false
	s.stats = append(s.stats, stats)
	return stats, nil
}

// recordBootstrap stores warm-up telemetry directly.
func (s *System) recordBootstrap(res storagesim.AccessResult, wl, run int) {
	s.db.AppendAccess(replaydb.AccessRecord{
		Time:         res.Start,
		Workload:     int32(wl),
		Run:          int32(run),
		FileID:       res.FileID,
		Path:         res.Path,
		Device:       res.Device,
		BytesRead:    res.BytesRead,
		BytesWritten: res.BytesWritten,
		OpenTS:       res.OpenTS,
		OpenTMS:      res.OpenTMS,
		CloseTS:      res.CloseTS,
		CloseTMS:     res.CloseTMS,
		Throughput:   res.Throughput,
	})
}

// RunN executes n workload runs, stopping at the first error.
func (s *System) RunN(n int) ([]RunStats, error) {
	return s.RunNContext(context.Background(), n)
}

// RunNContext executes n workload runs under ctx, stopping at the first
// error; the completed runs' statistics are returned alongside it.
func (s *System) RunNContext(ctx context.Context, n int) ([]RunStats, error) {
	out := make([]RunStats, 0, n)
	for i := 0; i < n; i++ {
		st, err := s.RunContext(ctx)
		if err != nil {
			return out, err
		}
		out = append(out, st)
	}
	return out, nil
}

// MeanThroughput returns the mean per-access throughput observed so far,
// in bytes/second.
func (s *System) MeanThroughput() float64 {
	if s.tpCount == 0 {
		return 0
	}
	return s.tpSum / float64(s.tpCount)
}

// Stats returns per-run summaries in order.
func (s *System) Stats() []RunStats { return append([]RunStats(nil), s.stats...) }

// Movements returns the engine's layout-change history.
func (s *System) Movements() []MovementEvent { return s.loop.Movements() }

// TrainLog returns the engine's training reports.
func (s *System) TrainLog() []TrainReport { return s.loop.TrainLog() }

// Layout returns the current file→device placement.
func (s *System) Layout() map[int64]string { return s.cluster.Layout() }

// Devices returns the storage-device names.
func (s *System) Devices() []string { return s.cluster.DeviceNames() }

// Policy returns the display name of the placement policy driving the
// system (e.g. "Geomancy dynamic" for the default).
func (s *System) Policy() string { return s.loop.Policy.Name() }

// Shards returns the sharded coordinator's partition width, or 0 when
// the system runs unsharded (no WithShards).
func (s *System) Shards() int { return s.shards }

// Telemetry returns the number of access records collected.
func (s *System) Telemetry() int { return s.db.Len() }

// Metrics returns the registry installed with WithTelemetry, or nil.
func (s *System) Metrics() *Metrics { return s.metrics }

// Skipped returns every decision cycle served in degraded mode: the
// distributed plane was unreachable, so the last-known layout was kept.
// Always empty without WithDistributed.
func (s *System) Skipped() []SkippedDecision { return s.loop.Skipped() }

// ListenAddr returns the Interface Daemon's bound address ("" without
// WithDistributed) — useful with WithListenAddr("127.0.0.1:0") to learn
// the ephemeral port.
func (s *System) ListenAddr() string { return s.daemonAddr }

// FaultStats returns the faults injected so far; zero without
// WithFaultInjection.
func (s *System) FaultStats() FaultStats {
	if s.fnet == nil {
		return FaultStats{}
	}
	return s.fnet.Stats()
}

// buildSnapshot captures the complete dynamic state of the system. The
// replay WAL is synced first so the recorded watermark only covers
// durable records; memory databases embed their records in the snapshot
// instead.
func (s *System) buildSnapshot() (*checkpoint.Snapshot, error) {
	if s.closed {
		return nil, ErrClosed
	}
	if s.midRun {
		return nil, fmt.Errorf("geomancy: cannot snapshot mid-run state (last run was aborted)")
	}
	var engine core.EngineState
	if s.loop.Engine != nil {
		var err error
		engine, err = s.loop.Engine.State()
		if err != nil {
			return nil, fmt.Errorf("geomancy: capturing engine state: %w", err)
		}
	}
	if s.replayPath != "" {
		if err := s.db.Sync(); err != nil {
			return nil, fmt.Errorf("geomancy: syncing replay log: %w", err)
		}
	}
	wstate, err := s.runner.MarshalState()
	if err != nil {
		return nil, fmt.Errorf("geomancy: capturing workload state: %w", err)
	}
	pstate, err := s.loop.Policy.MarshalState()
	if err != nil {
		return nil, fmt.Errorf("geomancy: capturing policy state: %w", err)
	}
	snap := &checkpoint.Snapshot{
		Seed:            s.seed,
		Runs:            len(s.stats),
		BootstrapLeft:   s.bootstrapLeft,
		TpSum:           s.tpSum,
		TpCount:         s.tpCount,
		Stats:           append([]RunStats(nil), s.stats...),
		Engine:          engine,
		Loop:            s.loop.State(),
		Cluster:         s.cluster.State(),
		WorkloadName:    s.runner.Name(),
		Workload:        wstate,
		PolicyName:      s.loop.Policy.Name(),
		Policy:          pstate,
		ReplayWatermark: s.db.Watermark(),
	}
	if s.sharded != nil {
		snap.Shards = s.sharded.ShardCount()
		snap.ShardStates, err = s.sharded.ShardStates()
		if err != nil {
			return nil, fmt.Errorf("geomancy: capturing shard states: %w", err)
		}
	}
	if s.replayPath == "" {
		snap.Accesses = s.db.All()
		snap.Movements = s.db.Movements()
	}
	return snap, nil
}

// Checkpoint writes a snapshot of the running system to path, atomically
// (write-rename-fsync): a crash mid-checkpoint leaves either the previous
// file or the new one, never a torn state. The system keeps running; a
// later Restore with the same options resumes from this point
// bit-for-bit.
func (s *System) Checkpoint(path string) error {
	snap, err := s.buildSnapshot()
	if err != nil {
		return err
	}
	return checkpoint.Save(path, snap)
}

// SaveCheckpoint writes the next rotating snapshot into the directory
// configured with WithCheckpointDir, pruning old ones, and returns the
// path written. Without a configured directory it returns an error; use
// Checkpoint for an explicit path instead.
func (s *System) SaveCheckpoint() (string, error) {
	if s.ckptStore == nil {
		return "", fmt.Errorf("geomancy: no checkpoint directory configured (use WithCheckpointDir)")
	}
	snap, err := s.buildSnapshot()
	if err != nil {
		return "", err
	}
	return s.ckptStore.Save(snap)
}

// Restore rebuilds a system from the snapshot at path. opts must repeat
// the configuration of the checkpointed run (same seed, devices, files,
// model, parallelism, replay path, ...): the system is first assembled
// from them, then every piece of dynamic state — RNG streams, trained
// model and normalization, cluster clock and layout, workload cursor,
// loop counters — is overwritten from the snapshot, after which Run
// continues the trajectory of the interrupted system exactly. A snapshot
// whose seed disagrees with the options is rejected.
func Restore(path string, opts ...Option) (*System, error) {
	snap, err := checkpoint.Load(path)
	if err != nil {
		return nil, err
	}
	return restoreSystem(snap, opts)
}

// RestoreLatest resumes from the newest intact snapshot in dir, falling
// back to the previous one when the latest is corrupt (errors.Is(err,
// ErrCorrupt) only surfaces when every snapshot fails validation).
// An empty directory returns ErrNoCheckpoint — callers typically fall
// back to New.
func RestoreLatest(dir string, opts ...Option) (*System, error) {
	store, err := checkpoint.NewStore(dir)
	if err != nil {
		return nil, err
	}
	snap, _, err := store.Latest()
	if err != nil {
		return nil, err
	}
	return restoreSystem(snap, opts)
}

func restoreSystem(snap *checkpoint.Snapshot, opts []Option) (*System, error) {
	sys, err := New(opts...)
	if err != nil {
		return nil, err
	}
	if err := sys.applySnapshot(snap); err != nil {
		sys.closed = true // skip the Close-time snapshot of half-restored state
		sys.teardownAgents()
		sys.db.Close()
		return nil, err
	}
	return sys, nil
}

// applySnapshot overwrites the freshly built system's dynamic state.
func (s *System) applySnapshot(snap *checkpoint.Snapshot) error {
	if snap.Seed != s.seed {
		return fmt.Errorf("geomancy: snapshot was taken with seed %d, options configure seed %d", snap.Seed, s.seed)
	}
	if snap.Shards != s.shards {
		return fmt.Errorf("geomancy: snapshot was taken with %d shards, options configure %d — shard RNG streams do not translate across partitions",
			snap.Shards, s.shards)
	}
	if s.replayPath == "" {
		if err := s.db.Bulkload(snap.Accesses, snap.Movements); err != nil {
			return fmt.Errorf("geomancy: restoring replay records: %w", err)
		}
	} else {
		// Drop WAL records written after the snapshot; the resumed run
		// regenerates them with identical sequence numbers.
		if err := s.db.TruncateTo(snap.ReplayWatermark); err != nil {
			return fmt.Errorf("geomancy: truncating replay log: %w", err)
		}
	}
	if err := s.cluster.RestoreState(snap.Cluster); err != nil {
		return fmt.Errorf("geomancy: restoring cluster: %w", err)
	}
	if snap.WorkloadName != s.runner.Name() {
		return fmt.Errorf("geomancy: snapshot was taken under scenario %q, options configure %q",
			snap.WorkloadName, s.runner.Name())
	}
	if err := s.runner.UnmarshalState(snap.Workload); err != nil {
		return fmt.Errorf("geomancy: restoring workload: %w", err)
	}
	if snap.PolicyName != s.loop.Policy.Name() {
		return fmt.Errorf("geomancy: snapshot was taken under policy %q, options configure %q",
			snap.PolicyName, s.loop.Policy.Name())
	}
	if err := s.loop.Policy.UnmarshalState(snap.Policy); err != nil {
		return fmt.Errorf("geomancy: restoring policy: %w", err)
	}
	if s.loop.Engine != nil {
		if err := s.loop.Engine.RestoreState(snap.Engine); err != nil {
			return fmt.Errorf("geomancy: restoring engine: %w", err)
		}
	}
	if s.sharded != nil {
		if err := s.sharded.RestoreShardStates(snap.ShardStates); err != nil {
			return fmt.Errorf("geomancy: restoring shard states: %w", err)
		}
	}
	s.loop.RestoreState(snap.Loop)
	s.bootstrapLeft = snap.BootstrapLeft
	s.tpSum = snap.TpSum
	s.tpCount = snap.TpCount
	s.stats = append([]RunStats(nil), snap.Stats...)
	return nil
}

// Close flushes and stops the distributed agents (when running) and
// releases the replay database; with a checkpoint directory configured it
// first flushes a final snapshot, so a clean shutdown is always
// resumable. Close is idempotent: the second and later calls are no-ops
// returning nil — in particular they never rewrite the final snapshot.
// Run after Close returns ErrClosed.
func (s *System) Close() error {
	if s.closed {
		return nil
	}
	var ckptErr error
	// midRun guards against snapshotting torn state: a run aborted by
	// cancellation (or an error) leaves the RNG streams and virtual clock
	// mid-stride, and a snapshot of that point would resume a different
	// trajectory than the uninterrupted run. Only run boundaries are
	// snapshotted.
	if s.ckptStore != nil && !s.midRun {
		if snap, err := s.buildSnapshot(); err != nil {
			ckptErr = err
		} else if _, err := s.ckptStore.Save(snap); err != nil {
			ckptErr = err
		}
	}
	s.closed = true
	err := s.teardownAgents()
	if dbErr := s.db.Close(); dbErr != nil && err == nil {
		err = dbErr
	}
	if err == nil {
		err = ckptErr
	}
	return err
}
