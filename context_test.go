package geomancy

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

func TestCloseIdempotentAndRunAfterClose(t *testing.T) {
	sys, err := New(WithSeed(1), WithEpochs(2), WithTrainingWindow(100))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := sys.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := sys.Run(); !errors.Is(err, ErrClosed) {
		t.Errorf("Run after Close = %v, want ErrClosed", err)
	}
	if _, err := sys.RunN(3); !errors.Is(err, ErrClosed) {
		t.Errorf("RunN after Close = %v, want ErrClosed", err)
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	sys := quickSystem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("RunContext(cancelled) = %v, want context.Canceled", err)
	}
	if len(sys.Stats()) != 0 {
		t.Error("cancelled run recorded stats")
	}
}

// Cancelling a long tuned run (large epoch budget) must return promptly
// with the context's error and leave no engine goroutines behind.
func TestRunContextCancelMidCycle(t *testing.T) {
	sys := quickSystem(t,
		WithBootstrapRuns(1),
		WithCooldown(1),
		WithEpochs(20000), // far more than completes in the cancel window
		WithTrainingWindow(2000),
		WithParallelism(4),
	)
	if _, err := sys.Run(); err != nil { // bootstrap run, fills the ReplayDB
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := sys.RunContext(ctx) // tuned run: trains for 20000 epochs
		done <- err
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled tuned run = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunContext did not return promptly after cancellation")
	}
	// Worker goroutines must drain: poll until the count settles back.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("goroutines leaked: %d before, %d after cancellation", before, now)
	}
}

func TestWithObserver(t *testing.T) {
	var seen int
	sys := quickSystem(t, WithObserver(func(res AccessResult, wl, run int) {
		if res.Throughput <= 0 || res.Device == "" {
			t.Errorf("observer got malformed access: %+v", res)
		}
		seen++
	}))
	stats, err := sys.RunN(4) // spans bootstrap and tuned runs
	if err != nil {
		t.Fatal(err)
	}
	var accesses int
	for _, st := range stats {
		accesses += st.Accesses
	}
	if seen != accesses {
		t.Errorf("observer saw %d accesses, runs made %d", seen, accesses)
	}
}

// Any parallelism ≥ 2 is one canonical deterministic engine: equal seeds
// with different worker-pool sizes produce identical runs and layouts.
func TestWithParallelismDeterministic(t *testing.T) {
	run := func(par int) (float64, map[int64]string) {
		sys, err := New(WithSeed(7), WithEpochs(4), WithTrainingWindow(200),
			WithCooldown(2), WithBootstrapRuns(1), WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		if _, err := sys.RunN(5); err != nil {
			t.Fatal(err)
		}
		return sys.MeanThroughput(), sys.Layout()
	}
	tp2, layout2 := run(2)
	tp8, layout8 := run(8)
	if tp2 != tp8 {
		t.Errorf("parallelism 2 vs 8 throughput: %v vs %v", tp2, tp8)
	}
	for id, dev := range layout2 {
		if layout8[id] != dev {
			t.Errorf("file %d: parallelism 2 → %s, parallelism 8 → %s", id, dev, layout8[id])
		}
	}
}
