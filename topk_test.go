package geomancy

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"geomancy/internal/core"
	"geomancy/internal/replaydb"
	"geomancy/internal/storagesim"
)

// TestTopKScenarioLayoutAgreement is the exactness contract end to end:
// on the Bluesky cluster (five device classes, no class wider than two)
// a TopK=2 shortlist covers every device, so a pruned system and an
// exhaustive system of the same seed must land identical layouts and
// identical throughput across the quick-scale scenario matrix.
func TestTopKScenarioLayoutAgreement(t *testing.T) {
	for _, scen := range []string{"belle", "write-ingest", "zipfian-hot"} {
		t.Run(scen, func(t *testing.T) {
			run := func(opts ...Option) (map[int64]string, float64) {
				sys := quickSystem(t, append([]Option{WithScenario(scen)}, opts...)...)
				if _, err := sys.RunN(8); err != nil {
					t.Fatal(err)
				}
				return sys.Layout(), sys.MeanThroughput()
			}
			exLayout, exTP := run()
			prLayout, prTP := run(WithTopK(2), WithFullRescanEvery(4))
			if !reflect.DeepEqual(exLayout, prLayout) {
				t.Errorf("pruned layout diverged from exhaustive:\n  exhaustive %v\n  pruned     %v", exLayout, prLayout)
			}
			if exTP != prTP {
				t.Errorf("mean throughput: exhaustive %v, pruned %v", exTP, prTP)
			}
		})
	}
}

// warehouseFixture is a warehouse-scale scoring population: nDev synthetic
// devices across eight hardware classes and nFiles files with seeded
// telemetry, plus a trained engine configured with the given pruning
// knobs. The returned dirty function appends fresh telemetry for a
// fraction of the population, modelling the steady-state cycle where most
// files are cold between decisions.
type warehouseFixture struct {
	engine *core.Engine
	db     *replaydb.DB
	files  []core.FileMeta
	dirty  func(fraction float64)
}

func newWarehouse(tb testing.TB, nFiles, nDev, topK, fullRescan int) *warehouseFixture {
	tb.Helper()
	devices := make([]string, nDev)
	sums := make([]storagesim.DeviceSummary, nDev)
	speeds := make([]float64, nDev)
	for i := range devices {
		devices[i] = fmt.Sprintf("dev%03d", i)
		// Eight classes, class c clustered around (8-c) GB/s with a
		// per-device spread so shortlists have a real ranking to find.
		class := i % 8
		speeds[i] = float64(8-class)*1e9 + float64(i/8)*3e7
		sums[i] = storagesim.DeviceSummary{
			Name:             devices[i],
			Class:            fmt.Sprintf("class%d", class),
			RecentThroughput: speeds[i],
			Available:        true,
		}
	}
	db, err := replaydb.Open(replaydb.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { db.Close() })
	files := make([]core.FileMeta, nFiles)
	r := rand.New(rand.NewSource(31))
	now := 0
	appendFor := func(id int64, dev int) {
		now++
		if _, err := db.AppendAccess(replaydb.AccessRecord{
			Time:       float64(now),
			FileID:     id,
			Device:     devices[dev],
			BytesRead:  int64(1e8 + r.Float64()*9e8),
			OpenTS:     int64(now),
			CloseTS:    int64(now),
			CloseTMS:   500,
			Throughput: speeds[dev] * (0.7 + 0.6*r.Float64()),
		}); err != nil {
			tb.Fatal(err)
		}
	}
	for i := range files {
		id := int64(i + 1)
		dev := r.Intn(nDev)
		files[i] = core.FileMeta{
			ID:     id,
			Path:   fmt.Sprintf("/wh/f%04d", i),
			Size:   int64(1e8 + r.Float64()*4e8),
			Device: devices[dev],
		}
		appendFor(id, dev)
	}
	cfg := core.Config{
		Epochs:          4,
		WindowX:         600,
		Seed:            31,
		Epsilon:         0.05,
		TopK:            topK,
		FullRescanEvery: fullRescan,
	}
	eng, err := core.NewEngine(db, devices, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	eng.SetSummarySource(func() []storagesim.DeviceSummary { return sums })
	if _, err := eng.Train(); err != nil {
		tb.Fatal(err)
	}
	return &warehouseFixture{
		engine: eng,
		db:     db,
		files:  files,
		dirty: func(fraction float64) {
			n := int(float64(nFiles) * fraction)
			for k := 0; k < n; k++ {
				i := r.Intn(nFiles)
				appendFor(files[i].ID, r.Intn(nDev))
			}
		},
	}
}

// proposeWarehouse drives one steady-state decision cycle: a quarter of
// the population sees fresh telemetry, then the engine proposes a layout.
func proposeWarehouse(tb testing.TB, w *warehouseFixture) {
	w.dirty(0.25)
	if _, _, err := w.engine.ProposeLayout(w.files, nil, nil); err != nil {
		tb.Fatal(err)
	}
}

// TestTopKSpeedup is the headline acceptance check: at 2048 files × 64
// devices, steady-state pruned decisions (TopK=2 over eight classes,
// 25% of files dirty per cycle) must average at least 5× lower ns/op
// than exhaustive decisions over the same population. The committed
// BENCH_scoring.json rows carry the absolute numbers; this test pins the
// ratio so a regression in the pruning plane fails loudly.
func TestTopKSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("warehouse-scale timing in -short mode")
	}
	const reps = 4
	measure := func(topK, fullRescan int) time.Duration {
		w := newWarehouse(t, 2048, 64, topK, fullRescan)
		proposeWarehouse(t, w) // first decision is always a full rescan
		start := time.Now()
		for i := 0; i < reps; i++ {
			proposeWarehouse(t, w)
		}
		return time.Since(start) / reps
	}
	exhaustive := measure(0, 0)
	pruned := measure(2, 16)
	ratio := float64(exhaustive) / float64(pruned)
	t.Logf("exhaustive %v/op, pruned %v/op: %.1fx", exhaustive, pruned, ratio)
	if ratio < 5 {
		t.Errorf("pruned scoring only %.1fx faster than exhaustive, want ≥ 5x", ratio)
	}
}
