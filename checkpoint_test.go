package geomancy

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// ckptOptions is the configuration shared by every leg of the resume
// tests: small enough to be fast, with cooldown/bootstrap tuned so the
// run window crosses several training and layout decisions.
func ckptOptions(parallelism int, extra ...Option) []Option {
	opts := []Option{
		WithSeed(11),
		WithParallelism(parallelism),
		WithEpochs(4),
		WithTrainingWindow(300),
		WithCooldown(2),
		WithBootstrapRuns(2),
	}
	return append(opts, extra...)
}

// trajectory captures everything the resume-equivalence assertions
// compare: the layout, per-run stats, movement history, and replay-DB
// record counts.
type trajectory struct {
	Layout    map[int64]string
	Stats     []RunStats
	Movements []MovementEvent
	Telemetry int
	MoveCount int
	Mean      float64
}

func capture(t *testing.T, sys *System) trajectory {
	t.Helper()
	return trajectory{
		Layout:    sys.Layout(),
		Stats:     sys.Stats(),
		Movements: sys.Movements(),
		Telemetry: sys.Telemetry(),
		MoveCount: len(sys.Movements()),
		Mean:      sys.MeanThroughput(),
	}
}

func assertSameTrajectory(t *testing.T, got, want trajectory, label string) {
	t.Helper()
	gj, _ := json.Marshal(got)
	wj, _ := json.Marshal(want)
	if string(gj) != string(wj) {
		t.Errorf("%s: trajectories diverged\n  resumed:       %s\n  uninterrupted: %s", label, gj, wj)
	}
}

// TestResumeEquivalence is the tentpole acceptance test: a run
// checkpointed at run N and restored must produce a byte-identical
// trajectory (layouts, stats, movements, replay counts) to the same-seed
// uninterrupted run — at Parallelism 1 and 4, over both the memory and
// file-backed replay databases.
func TestResumeEquivalence(t *testing.T) {
	const checkpointAt, total = 5, 12

	for _, p := range []int{1, 4} {
		for _, fileBacked := range []bool{false, true} {
			name := map[bool]string{false: "memdb", true: "waldb"}[fileBacked]
			t.Run(name+"/parallelism="+string(rune('0'+p)), func(t *testing.T) {
				dir := t.TempDir()
				var refOpts, legOpts []Option
				if fileBacked {
					refOpts = ckptOptions(p, WithReplayDB(filepath.Join(dir, "ref.wal")))
					legOpts = ckptOptions(p, WithReplayDB(filepath.Join(dir, "leg.wal")))
				} else {
					refOpts = ckptOptions(p)
					legOpts = ckptOptions(p)
				}

				// Uninterrupted reference run.
				ref, err := New(refOpts...)
				if err != nil {
					t.Fatal(err)
				}
				defer ref.Close()
				if _, err := ref.RunN(total); err != nil {
					t.Fatal(err)
				}
				want := capture(t, ref)

				// Interrupted run: checkpoint at run N, throw the system
				// away, restore, and finish.
				first, err := New(legOpts...)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := first.RunN(checkpointAt); err != nil {
					t.Fatal(err)
				}
				ckpt := filepath.Join(dir, "snap.ckpt")
				if err := first.Checkpoint(ckpt); err != nil {
					t.Fatal(err)
				}
				if err := first.Close(); err != nil {
					t.Fatal(err)
				}

				resumed, err := Restore(ckpt, legOpts...)
				if err != nil {
					t.Fatal(err)
				}
				defer resumed.Close()
				if got := len(resumed.Stats()); got != checkpointAt {
					t.Fatalf("restored system reports %d completed runs, want %d", got, checkpointAt)
				}
				if _, err := resumed.RunN(total - checkpointAt); err != nil {
					t.Fatal(err)
				}
				assertSameTrajectory(t, capture(t, resumed), want, name)
			})
		}
	}
}

// TestScenarioResumeEquivalence extends the resume invariant to the
// workload plane: a hotspot-shift run checkpointed mid-flight — with the
// hot set already rotated away from its initial position — must restore
// the scenario's generator and RNG state bit-identically. The other
// non-belle scenarios ride along cheaply as subtests.
func TestScenarioResumeEquivalence(t *testing.T) {
	const checkpointAt, total = 5, 12

	for _, name := range []string{"hotspot-shift", "write-ingest", "diurnal-tenants"} {
		t.Run(name, func(t *testing.T) {
			opts := ckptOptions(1, WithScenario(name))

			ref, err := New(opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()
			if _, err := ref.RunN(total); err != nil {
				t.Fatal(err)
			}
			want := capture(t, ref)

			first, err := New(opts...)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := first.RunN(checkpointAt); err != nil {
				t.Fatal(err)
			}
			ckpt := filepath.Join(t.TempDir(), "snap.ckpt")
			if err := first.Checkpoint(ckpt); err != nil {
				t.Fatal(err)
			}
			if err := first.Close(); err != nil {
				t.Fatal(err)
			}

			resumed, err := Restore(ckpt, opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer resumed.Close()
			if _, err := resumed.RunN(total - checkpointAt); err != nil {
				t.Fatal(err)
			}
			assertSameTrajectory(t, capture(t, resumed), want, name)
		})
	}
}

// TestRestoreScenarioMismatch: a snapshot taken under one scenario must
// not restore into a system configured for another — the workload state
// blob would silently corrupt the run.
func TestRestoreScenarioMismatch(t *testing.T) {
	sys, err := New(ckptOptions(1, WithScenario("zipfian-hot"))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunN(2); err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "snap.ckpt")
	if err := sys.Checkpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	sys.Close()

	if _, err := Restore(ckpt, ckptOptions(1, WithScenario("cold-scan"))...); err == nil {
		t.Error("Restore under a different scenario should fail")
	}
}

// TestResumeEquivalenceDistributed runs the same invariant through the
// TCP agents plane: telemetry batches, layout pushes, and the remote
// store must not break resume determinism.
func TestResumeEquivalenceDistributed(t *testing.T) {
	const checkpointAt, total = 4, 8

	run := func(t *testing.T, upTo int, resumeFrom string, dir string) (*System, trajectory) {
		t.Helper()
		opts := ckptOptions(1, WithDistributed())
		var sys *System
		var err error
		if resumeFrom != "" {
			sys, err = Restore(resumeFrom, opts...)
		} else {
			sys, err = New(opts...)
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.RunN(upTo - len(sys.Stats())); err != nil {
			sys.Close()
			t.Fatal(err)
		}
		return sys, capture(t, sys)
	}

	ref, want := run(t, total, "", "")
	defer ref.Close()

	dir := t.TempDir()
	first, _ := run(t, checkpointAt, "", dir)
	ckpt := filepath.Join(dir, "snap.ckpt")
	if err := first.Checkpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}
	resumed, got := run(t, total, ckpt, dir)
	defer resumed.Close()
	assertSameTrajectory(t, got, want, "distributed")
}

// TestCloseWritesFinalSnapshot: with a checkpoint directory configured,
// Close flushes a snapshot, and a second Close neither rewrites nor
// corrupts it.
func TestCloseWritesFinalSnapshot(t *testing.T) {
	dir := t.TempDir()
	sys, err := New(ckptOptions(1, WithCheckpointDir(dir))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunN(3); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("checkpoint dir has %d entries after Close, want 1", len(entries))
	}
	info, _ := entries[0].Info()
	mtime := info.ModTime()
	size := info.Size()

	if err := sys.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	entries, _ = os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("second Close changed the snapshot count to %d", len(entries))
	}
	info2, _ := entries[0].Info()
	if !info2.ModTime().Equal(mtime) || info2.Size() != size {
		t.Error("second Close rewrote the final snapshot")
	}

	// The final snapshot is usable.
	resumed, err := RestoreLatest(dir, ckptOptions(1, WithCheckpointDir(dir))...)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if got := len(resumed.Stats()); got != 3 {
		t.Errorf("resumed from final snapshot at %d runs, want 3", got)
	}
	if _, err := resumed.Run(); err != nil {
		t.Errorf("run after resume: %v", err)
	}
}

// TestRestoreLatestEmptyDir: no snapshots yet means ErrNoCheckpoint, the
// signal to fall back to a fresh New.
func TestRestoreLatestEmptyDir(t *testing.T) {
	_, err := RestoreLatest(t.TempDir(), ckptOptions(1)...)
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("err = %v, want ErrNoCheckpoint", err)
	}
}

// TestRestoreSeedMismatch: resuming a snapshot under a different seed is
// a configuration error, not a silent divergence.
func TestRestoreSeedMismatch(t *testing.T) {
	dir := t.TempDir()
	sys, err := New(ckptOptions(1)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunN(2); err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(dir, "snap.ckpt")
	if err := sys.Checkpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	sys.Close()

	if _, err := Restore(ckpt, WithSeed(99)); err == nil {
		t.Error("Restore with a different seed should fail")
	}
}

// TestCheckpointAfterClose: capturing a closed system must fail with
// ErrClosed instead of snapshotting torn state.
func TestCheckpointAfterClose(t *testing.T) {
	sys, err := New(ckptOptions(1)...)
	if err != nil {
		t.Fatal(err)
	}
	sys.Close()
	if err := sys.Checkpoint(filepath.Join(t.TempDir(), "x.ckpt")); !errors.Is(err, ErrClosed) {
		t.Errorf("Checkpoint after Close: err = %v, want ErrClosed", err)
	}
}

// TestPolicyResumeEquivalence extends the resume invariant to the policy
// plane: stateful policies (one-shot flags, RNG registers, online-update
// counters) checkpointed mid-run must restore bit-identically. The
// checkpoint lands after random-static's one-shot layout has fired (it
// decides at run 3 with cooldown 2), so a restored done-flag that had
// been dropped would re-fire the layout and diverge the trajectory.
func TestPolicyResumeEquivalence(t *testing.T) {
	const checkpointAt, total = 5, 12

	for _, name := range []string{"random-static", "random-dynamic", "online-geomancy"} {
		t.Run(name, func(t *testing.T) {
			opts := ckptOptions(1, WithPolicy(name))

			ref, err := New(opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()
			if _, err := ref.RunN(total); err != nil {
				t.Fatal(err)
			}
			want := capture(t, ref)

			first, err := New(opts...)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := first.RunN(checkpointAt); err != nil {
				t.Fatal(err)
			}
			ckpt := filepath.Join(t.TempDir(), "snap.ckpt")
			if err := first.Checkpoint(ckpt); err != nil {
				t.Fatal(err)
			}
			if err := first.Close(); err != nil {
				t.Fatal(err)
			}

			resumed, err := Restore(ckpt, opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer resumed.Close()
			if _, err := resumed.RunN(total - checkpointAt); err != nil {
				t.Fatal(err)
			}
			assertSameTrajectory(t, capture(t, resumed), want, name)
		})
	}
}

// TestRestorePolicyMismatch: a snapshot taken under one placement policy
// must not restore into a system configured for another — the policy
// state blob (and the missing engine state for baselines) would silently
// corrupt the run.
func TestRestorePolicyMismatch(t *testing.T) {
	sys, err := New(ckptOptions(1, WithPolicy("lru"))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunN(2); err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "snap.ckpt")
	if err := sys.Checkpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	sys.Close()

	if _, err := Restore(ckpt, ckptOptions(1, WithPolicy("mru"))...); err == nil {
		t.Error("Restore under a different policy should fail")
	}
}
