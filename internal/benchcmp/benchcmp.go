// Package benchcmp compares two BENCH_scoring.json snapshots — a
// committed baseline and a freshly measured file — and flags ns/op
// regressions beyond a threshold. cmd/benchgate wraps it as the CI gate;
// the package stays dependency-free so tests can drive it directly.
package benchcmp

import (
	"encoding/json"
	"fmt"
	"os"
)

// Record is one benchmark row, matching the schema TestBenchBaseline
// writes.
type Record struct {
	Name      string  `json:"name"`
	NsPerOp   float64 `json:"ns_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Runs      int     `json:"runs"`
}

// File is the BENCH_scoring.json wire form.
type File struct {
	Benchmarks []Record `json:"benchmarks"`
}

// Load reads and decodes one snapshot.
func Load(path string) (File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return File{}, fmt.Errorf("benchcmp: %w", err)
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return File{}, fmt.Errorf("benchcmp: decoding %s: %w", path, err)
	}
	if len(f.Benchmarks) == 0 {
		return File{}, fmt.Errorf("benchcmp: %s has no benchmark rows", path)
	}
	return f, nil
}

// Delta is one baseline row's comparison against the fresh measurement.
type Delta struct {
	Name                string
	BaselineNs, FreshNs float64
	// Ratio is fresh/baseline ns/op: 1.0 unchanged, >1 slower.
	Ratio float64
	// Regressed marks rows whose slowdown exceeded the gate threshold.
	Regressed bool
}

// Compare checks every baseline row against the fresh file. threshold is
// the allowed fractional slowdown (0.25 = fail beyond +25% ns/op). A
// baseline row missing from the fresh file is an error — a silently
// dropped benchmark must not read as a pass. Rows only in the fresh file
// are ignored: new benchmarks gate once they join the committed baseline.
func Compare(baseline, fresh File, threshold float64) ([]Delta, error) {
	if threshold < 0 {
		return nil, fmt.Errorf("benchcmp: negative threshold %v", threshold)
	}
	freshByName := make(map[string]Record, len(fresh.Benchmarks))
	for _, r := range fresh.Benchmarks {
		freshByName[r.Name] = r
	}
	deltas := make([]Delta, 0, len(baseline.Benchmarks))
	for _, base := range baseline.Benchmarks {
		cur, ok := freshByName[base.Name]
		if !ok {
			return nil, fmt.Errorf("benchcmp: baseline row %q missing from fresh measurement", base.Name)
		}
		if base.NsPerOp <= 0 {
			return nil, fmt.Errorf("benchcmp: baseline row %q has non-positive ns/op %v", base.Name, base.NsPerOp)
		}
		ratio := cur.NsPerOp / base.NsPerOp
		deltas = append(deltas, Delta{
			Name:       base.Name,
			BaselineNs: base.NsPerOp,
			FreshNs:    cur.NsPerOp,
			Ratio:      ratio,
			Regressed:  ratio > 1+threshold,
		})
	}
	return deltas, nil
}

// Regressions filters the regressed rows.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}
