package benchcmp

import (
	"os"
	"path/filepath"
	"testing"
)

func rows(ns ...float64) File {
	names := []string{"ScoringProposeLayout", "ScoringTopK", "ScoringGEMM"}
	f := File{}
	for i, v := range ns {
		f.Benchmarks = append(f.Benchmarks, Record{Name: names[i], NsPerOp: v})
	}
	return f
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := rows(1000, 100, 500)
	fresh := rows(1200, 126, 500) // +20%, +26%, unchanged
	deltas, err := Compare(base, fresh, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 3 {
		t.Fatalf("%d deltas", len(deltas))
	}
	if deltas[0].Regressed || deltas[2].Regressed {
		t.Errorf("within-threshold rows flagged: %+v", deltas)
	}
	if !deltas[1].Regressed {
		t.Errorf("+26%% row not flagged: %+v", deltas[1])
	}
	if got := Regressions(deltas); len(got) != 1 || got[0].Name != "ScoringTopK" {
		t.Errorf("Regressions = %+v", got)
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	deltas, err := Compare(rows(1000), rows(10), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if deltas[0].Regressed || deltas[0].Ratio != 0.01 {
		t.Errorf("100x speedup flagged: %+v", deltas[0])
	}
}

func TestCompareMissingRowErrors(t *testing.T) {
	if _, err := Compare(rows(1000, 100), rows(1000), 0.25); err == nil {
		t.Error("dropped baseline row must not pass the gate")
	}
}

func TestCompareRejectsBadInput(t *testing.T) {
	if _, err := Compare(rows(1000), rows(1000), -1); err == nil {
		t.Error("negative threshold should error")
	}
	if _, err := Compare(rows(0), rows(1000), 0.25); err == nil {
		t.Error("zero baseline ns/op should error")
	}
}

func TestLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	body := `{"benchmarks": [{"name": "ScoringGEMM", "ns_per_op": 251604, "ops_per_sec": 3974.5, "runs": 4816}]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 1 || f.Benchmarks[0].NsPerOp != 251604 {
		t.Fatalf("loaded %+v", f)
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file should error")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"benchmarks": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(empty); err == nil {
		t.Error("empty benchmark list should error")
	}
}
