// Package rng is Geomancy's serializable pseudo-random number generator.
//
// The checkpoint/restore plane (internal/checkpoint) needs to snapshot a
// run mid-flight and resume it bit-for-bit, which means every random
// stream that feeds layout decisions must be capturable. The standard
// library's *rand.Rand over rand.NewSource cannot be: its lagged-Fibonacci
// source hides 607 words of state behind an unexported struct. RNG solves
// this by backing *rand.Rand with a splitmix64 source whose entire state
// is one uint64 — State and SetState move a stream across a process
// boundary losslessly.
//
// Every stream-consuming helper of *rand.Rand (Intn, Float64, Shuffle,
// NormFloat64, ExpFloat64, Perm, ...) is a pure function of the underlying
// Source64, so embedding *rand.Rand gives RNG the full method set with no
// hidden state. The one exception is Read, which buffers; RNG overrides it
// to draw whole words so the invariant holds.
//
// Construction of math/rand generators anywhere else in the module is a
// determinism-analyzer violation: all seeded streams are built here, either
// as a checkpointable *RNG (New/FromState) or, for streams whose state
// never needs to survive a restart (jitter, throwaway initialization), as
// a plain *rand.Rand via NewRand.
package rng

import "math/rand"

// source is a splitmix64 generator: one 64-bit state advanced by a Weyl
// sequence and finalized with a 2-round xor-shift-multiply mix (Steele,
// Lea & Flood, OOPSLA 2014). It passes BigCrush, and its single-word
// state is what makes RNG serializable.
type source struct {
	state uint64
}

var _ rand.Source64 = (*source)(nil)

func (s *source) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (s *source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

func (s *source) Seed(seed int64) {
	s.state = uint64(seed)
}

// RNG is a seedable pseudo-random generator with fully extractable state.
// It embeds a *rand.Rand over its own splitmix64 source, so it offers the
// complete math/rand method set while State/SetState capture and restore
// the stream exactly.
//
// An RNG must be shared by pointer: the embedded *rand.Rand points at the
// struct's own source field, so copying the struct by value splits the
// stream from its state. RNG is not safe for concurrent use, matching
// *rand.Rand.
type RNG struct {
	src        source
	*rand.Rand //geomancy:ephemeral rebuilt over src by New/FromState; the stream is fully determined by src.state
}

// New returns an RNG seeded with seed. Equal seeds yield identical
// streams on every platform.
func New(seed int64) *RNG {
	r := &RNG{src: source{state: uint64(seed)}}
	r.Rand = rand.New(&r.src)
	return r
}

// FromState reconstructs an RNG whose next draw continues exactly where
// the RNG that reported state (via State) left off.
func FromState(state uint64) *RNG {
	r := &RNG{src: source{state: state}}
	r.Rand = rand.New(&r.src)
	return r
}

// State returns the complete generator state. Restoring it with SetState
// (or FromState) replays the remainder of the stream identically.
func (r *RNG) State() uint64 { return r.src.state }

// SetState rewinds or fast-forwards the generator to a previously
// captured state, in place — aliases holding this RNG observe the
// restored stream too.
func (r *RNG) SetState(state uint64) { r.src.state = state }

// Read fills p with random bytes, drawing one fresh 64-bit word per 8
// bytes. Unlike (*rand.Rand).Read it never buffers residual bytes between
// calls, so Read keeps the whole-state-in-one-word serialization
// invariant (at the cost of discarding up to 7 bytes per call).
func (r *RNG) Read(p []byte) (int, error) {
	for i := range p {
		if i%8 == 0 {
			w := r.src.Uint64()
			for j := 0; j < 8 && i+j < len(p); j++ {
				p[i+j] = byte(w >> (8 * j))
			}
		}
	}
	return len(p), nil
}

// Split derives an independent child seed from a parent seed and a
// stream index, using the same xor-shift-multiply finalizer as the
// splitmix64 source above. Sharded components (one decision stream per
// shard) seed their RNGs with Split(seed, shard) so shard streams are
// decorrelated from each other and from the parent stream, while staying
// a pure function of (seed, index) — the property that makes concurrent
// per-shard decisions deterministic and checkpoint-stable.
func Split(seed int64, index int) int64 {
	z := uint64(seed) + uint64(index+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// NewRand returns a plain seeded *rand.Rand for streams that never need
// checkpointing — retry-backoff jitter, throwaway weight initialization,
// experiment-harness shuffles. It uses the standard library source, whose
// state cannot be extracted; any stream that feeds layout decisions or
// must survive a restart needs New instead.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
