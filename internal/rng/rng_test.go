package rng

import (
	"math/rand"
	"testing"
)

// TestDeterministic: equal seeds must produce identical streams across
// every consumption pattern the engine uses.
func TestDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		switch i % 5 {
		case 0:
			if a.Uint64() != b.Uint64() {
				t.Fatalf("Uint64 diverged at draw %d", i)
			}
		case 1:
			if a.Float64() != b.Float64() {
				t.Fatalf("Float64 diverged at draw %d", i)
			}
		case 2:
			if a.Intn(97) != b.Intn(97) {
				t.Fatalf("Intn diverged at draw %d", i)
			}
		case 3:
			if a.NormFloat64() != b.NormFloat64() {
				t.Fatalf("NormFloat64 diverged at draw %d", i)
			}
		case 4:
			if a.ExpFloat64() != b.ExpFloat64() {
				t.Fatalf("ExpFloat64 diverged at draw %d", i)
			}
		}
	}
}

// TestSeedsDecorrelated: adjacent seeds must not produce overlapping
// prefixes (splitmix64's mix function guarantees this).
func TestSeedsDecorrelated(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("seeds 1 and 2 collided on %d of 100 draws", same)
	}
}

// TestStateRoundTrip: capturing State mid-stream and restoring it must
// replay the remainder of the stream identically — including through the
// ziggurat (NormFloat64/ExpFloat64) and Shuffle paths the engine and
// simulator use.
func TestStateRoundTrip(t *testing.T) {
	r := New(7)
	// Burn an arbitrary prefix with mixed draw kinds.
	for i := 0; i < 137; i++ {
		r.Float64()
		r.NormFloat64()
		r.Intn(13)
	}
	state := r.State()

	want := make([]float64, 0, 300)
	wantPerm := r.Perm(24)
	for i := 0; i < 100; i++ {
		want = append(want, r.Float64(), r.NormFloat64(), r.ExpFloat64())
	}

	for name, restored := range map[string]*RNG{
		"FromState": FromState(state),
		"SetState":  func() *RNG { x := New(999); x.SetState(state); return x }(),
	} {
		gotPerm := restored.Perm(24)
		for i := range wantPerm {
			if gotPerm[i] != wantPerm[i] {
				t.Fatalf("%s: Perm diverged at %d: got %v want %v", name, i, gotPerm, wantPerm)
			}
		}
		for i := 0; i < 100; i++ {
			if g, w := restored.Float64(), want[3*i]; g != w {
				t.Fatalf("%s: Float64 draw %d: got %v want %v", name, i, g, w)
			}
			if g, w := restored.NormFloat64(), want[3*i+1]; g != w {
				t.Fatalf("%s: NormFloat64 draw %d: got %v want %v", name, i, g, w)
			}
			if g, w := restored.ExpFloat64(), want[3*i+2]; g != w {
				t.Fatalf("%s: ExpFloat64 draw %d: got %v want %v", name, i, g, w)
			}
		}
	}
}

// TestReadKeepsStateExact: Read must not buffer residual bytes — after any
// Read, State fully determines the future stream.
func TestReadKeepsStateExact(t *testing.T) {
	r := New(3)
	buf := make([]byte, 13) // deliberately not a multiple of 8
	if _, err := r.Read(buf); err != nil {
		t.Fatal(err)
	}
	state := r.State()
	next := r.Uint64()
	if got := FromState(state).Uint64(); got != next {
		t.Errorf("stream after Read not reproducible from State: got %d want %d", got, next)
	}
}

// TestSourceInterface: the source must satisfy rand.Source64 so rand.Rand
// draws 64-bit words directly instead of splicing Int63 pairs.
func TestSourceInterface(t *testing.T) {
	var s rand.Source = &source{state: 1}
	if _, ok := s.(rand.Source64); !ok {
		t.Fatal("source does not implement rand.Source64")
	}
	if v := s.Int63(); v < 0 {
		t.Errorf("Int63 returned negative value %d", v)
	}
}

// TestNewRandDeterministic: the non-serializable convenience constructor
// must still be seed-deterministic.
func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(5), NewRand(5)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatalf("NewRand streams diverged at draw %d", i)
		}
	}
}

// TestUniformity is a coarse sanity check that splitmix64 output is not
// badly skewed: bucket counts of 100k draws stay within 5% of uniform.
func TestUniformity(t *testing.T) {
	r := New(11)
	const buckets, draws = 16, 100000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	want := draws / buckets
	for b, c := range counts {
		if c < want*95/100 || c > want*105/100 {
			t.Errorf("bucket %d: %d draws, want ~%d", b, c, want)
		}
	}
}
