package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"geomancy/internal/replaydb"
	"geomancy/internal/storagesim"
	"geomancy/internal/workload"
)

// sampleSnapshot builds a snapshot with enough populated fields to catch
// field-level encoding regressions.
func sampleSnapshot() *Snapshot {
	return &Snapshot{
		Seed:          42,
		Runs:          7,
		BootstrapLeft: 1,
		TpSum:         1.5e9,
		TpCount:       1200,
		Stats:         []workload.RunStats{{Run: 0, Accesses: 300, Bytes: 1 << 30, MeanThroughput: 2e9}},
		Cluster: storagesim.ClusterState{
			Now: 123.5,
			RNG: 0xDEADBEEF,
			Devices: []storagesim.DeviceState{
				{Name: "file0", Available: true, Used: 1 << 20, BurstRNG: 7, EraRNG: 8},
			},
			Files: []storagesim.FileState{{ID: 1, Path: "/f1", Size: 1 << 20, Device: "file0"}},
		},
		WorkloadName:    "belle",
		Workload:        []byte{0x01, 0x02, 0x03},
		ReplayWatermark: 4321,
		Accesses:        []replaydb.AccessRecord{{Seq: 1, FileID: 1, Device: "file0", Throughput: 3e9}},
		Movements:       []replaydb.MovementRecord{{Seq: 2, FileID: 1, From: "file0", To: "pic"}},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	snap := sampleSnapshot()
	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != snap.Seed || got.Runs != snap.Runs || got.TpCount != snap.TpCount {
		t.Errorf("scalar fields did not round-trip: %+v", got)
	}
	if len(got.Cluster.Devices) != 1 || got.Cluster.Devices[0].Name != "file0" {
		t.Errorf("cluster state did not round-trip: %+v", got.Cluster)
	}
	if got.ReplayWatermark != 4321 || len(got.Accesses) != 1 || len(got.Movements) != 1 {
		t.Errorf("replay state did not round-trip: %+v", got)
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	_, err := Read(bytes.NewReader([]byte("NOTMAGIC and then some")))
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad magic: err = %v, want ErrCorrupt", err)
	}
}

func TestReadRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{4, len(magic), len(magic) + 3, len(full) / 2, len(full) - 1} {
		if _, err := Read(bytes.NewReader(full[:cut])); !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncated at %d: err = %v, want ErrCorrupt", cut, err)
		}
	}
}

func TestReadRejectsBitFlip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a bit in the middle of the gob payload.
	data[len(magic)+5+len(data)/3] ^= 0x40
	if _, err := Read(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bit flip: err = %v, want ErrCorrupt", err)
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.ckpt")
	if err := Save(path, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 42 {
		t.Errorf("Seed = %d, want 42", got.Seed)
	}
	// No temp droppings.
	entries, _ := os.ReadDir(filepath.Dir(path))
	if len(entries) != 1 {
		t.Errorf("directory has %d entries after Save, want 1", len(entries))
	}
}

func TestLoadMissing(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "nope.ckpt"))
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("missing file: err = %v, want ErrNoCheckpoint", err)
	}
}

func TestStoreRotation(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var last string
	for i := 0; i < 5; i++ {
		snap := sampleSnapshot()
		snap.Runs = i
		if last, err = s.Save(snap); err != nil {
			t.Fatal(err)
		}
	}
	nums, err := s.indexes()
	if err != nil {
		t.Fatal(err)
	}
	if len(nums) != keepCount {
		t.Errorf("store retains %d snapshots, want %d", len(nums), keepCount)
	}
	got, path, err := s.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if got.Runs != 4 {
		t.Errorf("Latest Runs = %d, want 4", got.Runs)
	}
	if path != last {
		t.Errorf("Latest path = %s, want %s", path, last)
	}
}

func TestStoreResumeNumbering(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Save(sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	s2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	path, err := s2.Save(sampleSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "snap-000002.ckpt" {
		t.Errorf("reopened store wrote %s, want snap-000002.ckpt", filepath.Base(path))
	}
}

func TestStoreFallsBackPastCorruptLatest(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	good := sampleSnapshot()
	good.Runs = 1
	if _, err := s.Save(good); err != nil {
		t.Fatal(err)
	}
	bad := sampleSnapshot()
	bad.Runs = 2
	badPath, err := s.Save(bad)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest snapshot in place.
	data, err := os.ReadFile(badPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(badPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	got, path, err := s.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if got.Runs != 1 {
		t.Errorf("fell back to Runs = %d, want 1 (the intact predecessor)", got.Runs)
	}
	if path == badPath {
		t.Error("Latest returned the corrupt path")
	}
}

func TestStoreAllCorrupt(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	path, err := s.Save(sampleSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Latest(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("all-corrupt store: err = %v, want ErrCorrupt", err)
	}
}

func TestStoreEmpty(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Latest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("empty store: err = %v, want ErrNoCheckpoint", err)
	}
}
