// Package checkpoint is Geomancy's snapshot format and on-disk store: the
// whole closed loop — RNG streams, trained model and optimizer, fitted
// normalization, simulated cluster, workload cursor, replay-log watermark,
// and every loop counter — serialized as one versioned, CRC-framed blob,
// so an interrupted run restores and continues bit-for-bit.
//
// A checkpoint file is the 8-byte magic "GCKP0004" (format version in the
// magic, like the replay WAL's "GRDB0001") followed by one frame: a type
// byte, a little-endian uint32 payload length, the gob-encoded Snapshot,
// and a CRC-32 (IEEE) of the payload. Truncated or bit-flipped files fail
// with ErrCorrupt, never with a partial state; Store.Latest then falls
// back to the previous snapshot.
//
// Writes are atomic: Save encodes to a temporary file in the destination
// directory, fsyncs it, renames it over the target, and fsyncs the
// directory, so a crash mid-write leaves either the old snapshot or the
// new one, never a torn file.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"geomancy/internal/core"
	"geomancy/internal/replaydb"
	"geomancy/internal/storagesim"
	"geomancy/internal/workload"
)

// magic identifies a checkpoint file and its format version. GCKP0004
// added the sharded-placement fields (Shards + per-shard opaque states);
// older snapshots predate the sharded plane and do not restore into it.
var magic = []byte("GCKP0004")

// frameSnapshot is the type byte of a Snapshot frame. Future format
// extensions get new type bytes; readers reject types they do not know.
const frameSnapshot = 0x01

// Sentinel errors. Match with errors.Is.
var (
	// ErrCorrupt reports a checkpoint that failed validation: bad magic,
	// truncated frame, CRC mismatch, or an undecodable payload.
	ErrCorrupt = errors.New("checkpoint: corrupt snapshot")
	// ErrNoCheckpoint reports a store (or path) with no usable snapshot.
	ErrNoCheckpoint = errors.New("checkpoint: no snapshot found")
)

// Snapshot is the complete serializable state of a running system. Static
// configuration (device profiles, working set, engine config) is NOT
// recorded: a restored run rebuilds the system from the same options and
// then overwrites its dynamic state from the snapshot.
type Snapshot struct {
	// Seed echoes the configuration seed, as a cheap restore-time guard
	// against resuming a snapshot under a different configuration.
	Seed int64
	// Runs is the number of completed Run calls when the snapshot was
	// taken.
	Runs int

	// Facade counters.
	BootstrapLeft int
	TpSum         float64
	TpCount       int64
	Stats         []workload.RunStats

	Engine  core.EngineState
	Loop    core.LoopState
	Cluster storagesim.ClusterState

	// Shards is the sharded coordinator's partition width when the
	// snapshot was taken (0 = unsharded), and ShardStates its per-shard
	// opaque blobs (shard engine + device-group accounting, one per
	// shard). Restore rejects a snapshot whose partition width disagrees
	// with the configured one: shard RNG streams and score caches are
	// meaningless under a different partition.
	Shards      int
	ShardStates [][]byte

	// WorkloadName names the scenario the snapshot was taken under
	// ("belle" for the classic runner); restore refuses a snapshot whose
	// scenario disagrees with the configured one. Workload is the
	// scenario's opaque MarshalState blob — the RNG register, run
	// counter, and generator registers.
	WorkloadName string
	Workload     []byte

	// PolicyName names the placement policy the snapshot was taken under
	// (a policy.Policy Name, e.g. "Geomancy dynamic" or "lru"); restore
	// refuses a snapshot whose policy disagrees with the configured one.
	// Policy is the policy's opaque MarshalState blob — one-shot flags,
	// RNG registers, online-update counters.
	PolicyName string
	Policy     []byte

	// ReplayWatermark is the highest replay-log sequence number covered
	// by this snapshot. A file-backed database truncates its WAL to the
	// watermark on restore (the discarded tail regenerates
	// deterministically); a memory database reloads from the embedded
	// records below instead.
	ReplayWatermark uint64
	Accesses        []replaydb.AccessRecord
	Movements       []replaydb.MovementRecord
}

// Write serializes snap to w in the framed checkpoint format.
func Write(w io.Writer, snap *Snapshot) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(snap); err != nil {
		return fmt.Errorf("checkpoint: encoding snapshot: %w", err)
	}
	if _, err := w.Write(magic); err != nil {
		return err
	}
	var hdr [5]byte
	hdr[0] = frameSnapshot
	binary.LittleEndian.PutUint32(hdr[1:], uint32(payload.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload.Bytes()))
	_, err := w.Write(crc[:])
	return err
}

// Read parses a framed snapshot, returning ErrCorrupt for anything that
// fails validation.
func Read(r io.Reader) (*Snapshot, error) {
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("%w: short magic: %v", ErrCorrupt, err)
	}
	if !bytes.Equal(hdr, magic) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, hdr)
	}
	var frame [5]byte
	if _, err := io.ReadFull(r, frame[:]); err != nil {
		return nil, fmt.Errorf("%w: short frame header: %v", ErrCorrupt, err)
	}
	if frame[0] != frameSnapshot {
		return nil, fmt.Errorf("%w: unknown frame type 0x%02x", ErrCorrupt, frame[0])
	}
	plen := binary.LittleEndian.Uint32(frame[1:])
	payload := make([]byte, int64(plen)+4)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: truncated payload: %v", ErrCorrupt, err)
	}
	body := payload[:plen]
	want := binary.LittleEndian.Uint32(payload[plen:])
	if crc32.ChecksumIEEE(body) != want {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	var snap Snapshot
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("%w: decoding payload: %v", ErrCorrupt, err)
	}
	return &snap, nil
}

// Save writes snap to path atomically: temp file in the same directory,
// fsync, rename over the target, fsync the directory.
func Save(path string, snap *Snapshot) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: creating temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := Write(tmp, snap); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: writing %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: syncing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: publishing %s: %w", path, err)
	}
	return syncDir(dir)
}

// Load reads the snapshot at path. A missing file is ErrNoCheckpoint; a
// damaged one is ErrCorrupt.
func Load(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNoCheckpoint, path)
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil // directory fsync is best-effort on exotic filesystems
	}
	defer d.Close()
	d.Sync()
	return nil
}

// Store manages numbered snapshots (snap-NNNNNN.ckpt) in a directory,
// keeping the newest keepCount so a corrupt or torn latest snapshot still
// leaves a usable predecessor.
type Store struct {
	dir  string
	next int
}

// keepCount is how many snapshots a Store retains.
const keepCount = 2

// NewStore opens (creating if necessary) a snapshot directory.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: creating store: %w", err)
	}
	s := &Store{dir: dir}
	nums, err := s.indexes()
	if err != nil {
		return nil, err
	}
	if len(nums) > 0 {
		s.next = nums[len(nums)-1] + 1
	} else {
		s.next = 1
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Save writes snap as the next numbered snapshot and prunes old ones,
// returning the path written.
func (s *Store) Save(snap *Snapshot) (string, error) {
	path := s.path(s.next)
	if err := Save(path, snap); err != nil {
		return "", err
	}
	s.next++
	s.prune()
	return path, nil
}

// Latest loads the newest readable snapshot, skipping (and reporting via
// the returned path only) corrupt ones. With no usable snapshot it
// returns ErrNoCheckpoint — or ErrCorrupt when snapshots exist but none
// decode, so callers can distinguish "fresh start" from "damaged store".
func (s *Store) Latest() (*Snapshot, string, error) {
	nums, err := s.indexes()
	if err != nil {
		return nil, "", err
	}
	sawCorrupt := false
	for i := len(nums) - 1; i >= 0; i-- {
		path := s.path(nums[i])
		snap, err := Load(path)
		if err == nil {
			return snap, path, nil
		}
		if errors.Is(err, ErrCorrupt) {
			sawCorrupt = true
			continue
		}
		return nil, "", err
	}
	if sawCorrupt {
		return nil, "", fmt.Errorf("%w: every snapshot in %s failed validation", ErrCorrupt, s.dir)
	}
	return nil, "", fmt.Errorf("%w: %s is empty", ErrNoCheckpoint, s.dir)
}

func (s *Store) path(n int) string {
	return filepath.Join(s.dir, fmt.Sprintf("snap-%06d.ckpt", n))
}

// indexes returns the numbered snapshots present, ascending.
func (s *Store) indexes() ([]int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reading store: %w", err)
	}
	var nums []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".ckpt"))
		if err != nil || n <= 0 {
			continue
		}
		nums = append(nums, n)
	}
	sort.Ints(nums)
	return nums, nil
}

// prune removes all but the newest keepCount snapshots.
func (s *Store) prune() {
	nums, err := s.indexes()
	if err != nil {
		return
	}
	for len(nums) > keepCount {
		os.Remove(s.path(nums[0]))
		nums = nums[1:]
	}
}
