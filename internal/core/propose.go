package core

import (
	"context"
	"sort"

	"geomancy/internal/agents"
	"geomancy/internal/mat"
	"geomancy/internal/nn"
)

// The decision pipeline is split into three stages so a sharded
// coordinator can interleave many engines' decisions around ONE batched
// inference per cycle (ROADMAP item 2's amortized inference):
//
//	prepare — dirty tracking, shortlist/task construction, and candidate
//	          row assembly into the engine's input buffer. Draws no
//	          randomness and runs no GEMM, so shards prepare concurrently.
//	forward — one nn.ForwardBatch over the assembled rows. The legacy
//	          single-engine path forwards its own rows; the coordinator
//	          concatenates every shard's rows and forwards once.
//	finish  — denormalization, cache writeback, and the serial ε-greedy
//	          selection (the only stage that draws from e.rng).
//
// ProposeLayoutContext composes the three stages over one engine and is
// bit-identical to the pre-split implementation: the same rows are
// assembled in the same order, forwarded through the same network, and
// selected with the same RNG stream.

// pendingDecision is a prepared-but-not-yet-scored decision: the task
// list mapping batch rows to (file, device) pairings, plus the assembled
// input rows in the owning engine's reusable buffers. The buffers are
// valid until the engine's next prepare.
type pendingDecision struct {
	eng     *Engine
	files   []FileMeta
	checker *agents.ActionChecker
	valid   agents.Validator

	// pruned marks the shortlist path; entries holds each file's cache
	// entry (pruned only), tasks the rows to score, total the row count.
	pruned  bool
	entries []*fileCache
	tasks   []scoreTask
	total   int

	// Assembled input: flat for dense models, seq for recurrent ones.
	// Aliases of the engine's reusable buffers.
	flat *mat.Matrix
	seq  []*mat.Matrix
}

// exhaustiveTasks builds the full-grid task list: every file against
// every device, rows laid out file-major exactly like candidateScores.
func exhaustiveTasks(nFiles, nDev int) []scoreTask {
	all := make([]int, nDev)
	for j := range all {
		all[j] = j
	}
	tasks := make([]scoreTask, nFiles)
	for i := range tasks {
		tasks[i] = scoreTask{file: i, devs: all, base: i * nDev}
	}
	return tasks
}

// prepareProposal runs the decision pipeline up to (but excluding) the
// batched inference: mode selection, dirty-set maintenance, task-list
// construction, and candidate-row assembly. It advances the decision
// counter and watermark, so every prepare must be followed by exactly one
// finish.
func (e *Engine) prepareProposal(ctx context.Context, files []FileMeta, checker *agents.ActionChecker, valid agents.Validator) (*pendingDecision, error) {
	if !e.trained {
		return nil, ErrNotTrained
	}
	if checker == nil {
		checker = agents.NewActionChecker(e.rng, e.devices)
	}
	pruned := e.cfg.TopK > 0 && !e.fullRescanDue()
	e.decisionCount++

	pd := &pendingDecision{eng: e, files: files, checker: checker, valid: valid, pruned: pruned}
	if pruned {
		// Dirty set: drop caches of files whose telemetry moved past the
		// last scoring watermark. Without a ChangeTracker nothing can be
		// trusted across decisions; the shortlist still prunes the device
		// axis.
		if e.tracker != nil {
			for _, id := range e.tracker.FilesChangedSince(e.lastWatermark) {
				if ent, ok := e.cache[id]; ok {
					ent.invalidate()
				}
			}
			e.lastWatermark = e.tracker.Watermark()
		} else {
			for _, ent := range e.cache {
				ent.invalidate()
			}
		}
		short := e.deviceShortlist()
		pd.entries, pd.tasks, pd.total = e.pruneTasks(files, short)
	} else {
		pd.total = len(files) * len(e.devices)
		pd.tasks = exhaustiveTasks(len(files), len(e.devices))
	}
	if pd.total > 0 {
		var err error
		pd.flat, pd.seq, err = e.assembleTasks(ctx, files, pd.tasks, pd.total)
		if err != nil {
			return nil, err
		}
	}
	return pd, nil
}

// rows returns the number of candidate rows awaiting inference.
func (pd *pendingDecision) rows() int { return pd.total }

// fillInto copies the assembled candidate rows into dst starting at row
// base — the coordinator's concatenation step. Dense models only; the
// coordinator rejects recurrent architectures at construction.
func (pd *pendingDecision) fillInto(dst *mat.Matrix, base int) {
	if pd.total == 0 {
		return
	}
	cols := pd.flat.Cols
	copy(dst.Data[base*cols:(base+pd.total)*cols], pd.flat.Data[:pd.total*cols])
}

// finish consumes the inference output rows [base, base+total) of out and
// completes the decision: denormalization, cache writeback (pruned) or
// full-cache refresh (exhaustive with TopK), candidate filtering, and the
// serial ε-greedy selection. out may be nil when rows() was 0.
func (pd *pendingDecision) finish(ctx context.Context, out *mat.Matrix, base int) (map[int64]string, []Decision, error) {
	e := pd.eng
	files := pd.files
	denorm := func(r int) float64 {
		raw := DecodeTarget(e.targetScaler.Inverse(clamp01(out.At(base+r, 0))))
		return nn.AdjustPrediction(raw, e.valMetrics)
	}

	if !pd.pruned {
		nDev := len(e.devices)
		scores := make([][]float64, len(files))
		err := parallelFor(ctx, len(files), e.cfg.Parallelism, func(i int) {
			s := make([]float64, nDev)
			for j := 0; j < nDev; j++ {
				s[j] = denorm(i*nDev + j)
			}
			scores[i] = s
		})
		if err != nil {
			return nil, nil, err
		}
		if e.cfg.TopK > 0 {
			e.refreshCacheFull(files, scores)
		}
		pre := make([]scored, len(files))
		err = parallelFor(ctx, len(files), e.cfg.Parallelism, func(i int) {
			f := files[i]
			d := Decision{FileID: f.ID, Current: f.Device, Predictions: make(map[string]float64, len(e.devices))}
			cands := make([]agents.Candidate, 0, len(e.devices))
			for j, dev := range e.devices {
				p := scores[i][j]
				d.Predictions[dev] = p
				// Candidate scores are maximize-me: latency negates.
				cands = append(cands, agents.Candidate{Device: dev, Predicted: e.betterScore(p)})
			}
			pre[i] = scored{d: d, cands: cands, passing: pd.checker.Filter(cands, f.Size, pd.valid), explore: cands}
		})
		if err != nil {
			return nil, nil, err
		}
		return e.selectLayout(files, pre, pd.checker, pd.valid)
	}

	// Pruned path: write the fresh scores back into the caches under the
	// current generation, then decide from every current-generation score.
	err := parallelFor(ctx, len(pd.tasks), e.cfg.Parallelism, func(ti int) {
		t := pd.tasks[ti]
		for k, j := range t.devs {
			t.ent.scores[j] = denorm(t.base + k)
			t.ent.gens[j] = e.modelGen
		}
	})
	if err != nil {
		return nil, nil, err
	}

	// Prepared decision material: candidates are every device scored
	// under the current generation — the full width for clean files still
	// carrying an exhaustive pass, the shortlist for freshly scored ones.
	// explore stays nil; selectLayout widens it to the full device list
	// only for the ε fraction of files that actually explore.
	pre := make([]scored, len(files))
	err = parallelFor(ctx, len(files), e.cfg.Parallelism, func(i int) {
		f := files[i]
		ent := pd.entries[i]
		d := Decision{FileID: f.ID, Current: f.Device, Predictions: make(map[string]float64)}
		cands := make([]agents.Candidate, 0, len(e.devices))
		for j, dev := range e.devices {
			if ent.gens[j] != e.modelGen {
				continue
			}
			p := ent.scores[j]
			d.Predictions[dev] = p
			cands = append(cands, agents.Candidate{Device: dev, Predicted: e.betterScore(p)})
		}
		pre[i] = scored{d: d, cands: cands, passing: pd.checker.Filter(cands, f.Size, pd.valid)}
	})
	if err != nil {
		return nil, nil, err
	}
	return e.selectLayout(files, pre, pd.checker, pd.valid)
}

// pruneTasks builds the pruned work list: per file, the shortlist ∪
// {current device} entries not yet scored under the current model
// generation.
func (e *Engine) pruneTasks(files []FileMeta, short []int) (entries []*fileCache, tasks []scoreTask, total int) {
	entries = make([]*fileCache, len(files))
	tasks = make([]scoreTask, 0, len(files))
	for i, f := range files {
		ent := e.ensureCache(f)
		entries[i] = ent
		var need []int
		cur, curOK := e.devIndex[f.Device]
		curListed := false
		for _, j := range short {
			if curOK && j == cur {
				curListed = true
			}
			if ent.gens[j] != e.modelGen {
				need = append(need, j)
			}
		}
		if curOK && !curListed && ent.gens[cur] != e.modelGen {
			pos := sort.SearchInts(need, cur)
			need = append(need, 0)
			copy(need[pos+1:], need[pos:])
			need[pos] = cur
		}
		if len(need) > 0 {
			tasks = append(tasks, scoreTask{file: i, ent: ent, devs: need, base: total})
			total += len(need)
		}
	}
	return entries, tasks, total
}

// assembleTasks builds the candidate feature rows for every task into the
// engine's reusable input buffers. A task with a cache entry reuses (and
// fills) the entry's raw feature ingredients; a task without one (the
// exhaustive grid) fetches them directly. Nothing here consumes e.rng,
// and tasks touch disjoint rows and cache entries, so the fan-out is
// race-free.
func (e *Engine) assembleTasks(ctx context.Context, files []FileMeta, tasks []scoreTask, total int) (*mat.Matrix, []*mat.Matrix, error) {
	cols := e.net.InSize
	recurrent := e.net.IsRecurrent()
	var flat *mat.Matrix
	var seq []*mat.Matrix
	w := 1
	if recurrent {
		w = e.net.Window
		seq = e.seqBufs(w, total, cols)
	} else {
		flat = e.flatBuf(total, cols)
	}
	err := parallelFor(ctx, len(tasks), e.cfg.Parallelism, func(ti int) {
		t := tasks[ti]
		f := files[t.file]
		// Candidate feature row ingredients: the file's typical access,
		// stamped at the most recent known time.
		var ff fileFeatures
		if t.ent != nil {
			if !t.ent.featValid {
				t.ent.feat = e.gatherFileFeatures(f, recurrent)
				t.ent.featValid = true
			}
			ff = t.ent.feat
		} else {
			ff = e.gatherFileFeatures(f, recurrent)
		}
		// History rows (normalized) are shared by every device pairing of
		// this file; only the candidate row itself differs per device.
		var hist [][]float64
		if recurrent {
			hist = make([][]float64, len(ff.hist))
			for k, raw := range ff.hist {
				nrm := make([]float64, len(raw))
				for c, v := range raw {
					nrm[c] = e.featScaler.TransformValue(c, v)
				}
				hist[k] = nrm
			}
		}
		for k, j := range t.devs {
			norm := e.candidateRow(ff, f.ID, j)
			r := t.base + k
			if !recurrent {
				flat.SetRow(r, norm)
				continue
			}
			// The window is the file's history padded by repeating the
			// candidate row, then the candidate row last — the batched form
			// of predictCandidate's prepend-and-slice.
			need := w - 1
			for x := 0; x < need; x++ {
				if h := len(hist) - need + x; h >= 0 {
					seq[x].SetRow(r, hist[h])
				} else {
					seq[x].SetRow(r, norm)
				}
			}
			seq[need].SetRow(r, norm)
		}
	})
	if err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	return flat, seq, nil
}
