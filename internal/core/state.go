package core

import (
	"bytes"
	"fmt"
	"sort"

	"geomancy/internal/features"
	"geomancy/internal/nn"
)

// EngineState is the serializable snapshot of a DRL engine: the decision
// stream, the trained model, fitted normalization, and the reward log —
// everything a restored engine needs to make the exact decisions the
// interrupted one would have. The engine's Config and store binding are
// reconstructed from configuration on restore.
type EngineState struct {
	RNG     uint64
	Net     []byte // nn wire format (architecture + weights)
	Devices []string

	FeatScaler   features.MinMaxState
	TargetScaler features.ScalarState
	ValMetrics   nn.Metrics
	Trained      bool

	Rewards []float64

	// Candidate-pruning bookkeeping (Config.TopK > 0): the decision
	// counter anchors the full-rescan cadence, the watermark anchors the
	// dirty set, and the score cache carries each file's per-device
	// scores and generations, so a restored run's pruned decisions replay
	// bit-for-bit. All zero/empty on engines that never pruned; feature
	// ingredients are deliberately not captured — a restored engine
	// refetches them, deterministically, from the restored ReplayDB.
	DecisionCount uint64
	ModelGen      uint64
	LastWatermark uint64
	ScoreCache    []FileScoreState
}

// FileScoreState is one file's serialized score-cache entry.
type FileScoreState struct {
	FileID int64
	Size   int64
	Scores []float64
	Gens   []uint64
}

// State captures the engine mid-run.
func (e *Engine) State() (EngineState, error) {
	var buf bytes.Buffer
	if err := e.net.Save(&buf); err != nil {
		return EngineState{}, fmt.Errorf("core: serializing model: %w", err)
	}
	st := EngineState{
		RNG:           e.rng.State(),
		Net:           buf.Bytes(),
		Devices:       append([]string(nil), e.devices...),
		FeatScaler:    e.featScaler.State(),
		TargetScaler:  e.targetScaler.State(),
		ValMetrics:    e.valMetrics,
		Trained:       e.trained,
		Rewards:       append([]float64(nil), e.rewards...),
		DecisionCount: e.decisionCount,
		ModelGen:      e.modelGen,
		LastWatermark: e.lastWatermark,
	}
	for id, ent := range e.cache {
		st.ScoreCache = append(st.ScoreCache, FileScoreState{
			FileID: id,
			Size:   ent.size,
			Scores: append([]float64(nil), ent.scores...),
			Gens:   append([]uint64(nil), ent.gens...),
		})
	}
	sort.Slice(st.ScoreCache, func(i, j int) bool { return st.ScoreCache[i].FileID < st.ScoreCache[j].FileID })
	return st, nil
}

// RestoreState overwrites the engine with a previously captured snapshot.
// The RNG is rewound in place so aliases (the loop's Action Checker
// shares the stream) observe the restored state too.
func (e *Engine) RestoreState(st EngineState) error {
	net, err := nn.Load(bytes.NewReader(st.Net))
	if err != nil {
		return fmt.Errorf("core: restoring model: %w", err)
	}
	e.rng.SetState(st.RNG)
	e.net = net
	e.SetDevices(st.Devices)
	e.featScaler.RestoreState(st.FeatScaler)
	e.targetScaler.RestoreState(st.TargetScaler)
	e.valMetrics = st.ValMetrics
	e.trained = st.Trained
	e.rewards = append([]float64(nil), st.Rewards...)
	e.decisionCount = st.DecisionCount
	if st.ModelGen != 0 {
		// Snapshots predating the pruning plane carry no generation; keep
		// the fresh engine's counter (SetDevices above already bumped it).
		e.modelGen = st.ModelGen
	}
	e.lastWatermark = st.LastWatermark
	e.cache = make(map[int64]*fileCache, len(st.ScoreCache))
	for _, fs := range st.ScoreCache {
		e.cache[fs.FileID] = &fileCache{
			size:   fs.Size,
			scores: append([]float64(nil), fs.Scores...),
			gens:   append([]uint64(nil), fs.Gens...),
		}
	}
	return nil
}

// GapFileState is the serializable per-file estimate of a GapPredictor.
type GapFileState struct {
	FileID     int64
	LastAccess float64
	Mean       float64
	Dev        float64
	N          int64

	ReleaseMean float64
	ReleaseDev  float64
	Releases    int64
}

// GapPredictorState is the serializable snapshot of a GapPredictor.
type GapPredictorState struct {
	Alpha float64
	Files []GapFileState
}

// State captures the predictor's estimates, sorted by file ID for a
// deterministic wire form.
func (g *GapPredictor) State() GapPredictorState {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := GapPredictorState{Alpha: g.Alpha}
	for id, s := range g.stats {
		st.Files = append(st.Files, GapFileState{
			FileID:      id,
			LastAccess:  s.lastAccess,
			Mean:        s.mean,
			Dev:         s.dev,
			N:           s.n,
			ReleaseMean: s.releaseMean,
			ReleaseDev:  s.releaseDev,
			Releases:    s.releases,
		})
	}
	sort.Slice(st.Files, func(i, j int) bool { return st.Files[i].FileID < st.Files[j].FileID })
	return st
}

// RestoreState overwrites the predictor with a previously captured
// snapshot.
func (g *GapPredictor) RestoreState(st GapPredictorState) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.Alpha = st.Alpha
	g.stats = make(map[int64]*gapStats, len(st.Files))
	for _, f := range st.Files {
		g.stats[f.FileID] = &gapStats{
			lastAccess:  f.LastAccess,
			mean:        f.Mean,
			dev:         f.Dev,
			n:           f.N,
			releaseMean: f.ReleaseMean,
			releaseDev:  f.ReleaseDev,
			releases:    f.Releases,
		}
	}
}

// FileHeatState is the serializable per-file recency/frequency entry of
// the loop's policy snapshot bookkeeping.
type FileHeatState struct {
	FileID     int64
	LastAccess float64
	Accesses   int64
}

// LoopState is the serializable snapshot of a closed loop: decision-cycle
// counters and logs, the per-file heat bookkeeping policies decide from,
// plus the gap predictor when gap scheduling is enabled. The engine,
// policy, runner, cluster, and replay DB snapshot themselves; the loop
// state is what remains.
type LoopState struct {
	AccessCount int64
	LastRun     int
	Movements   []MovementEvent
	TrainLog    []TrainReport
	Deferrals   []Deferral
	Skipped     []SkippedDecision
	Heat        []FileHeatState
	Gaps        *GapPredictorState
	// Headroom is the move scheduler's configured safety factor. Zero
	// means the snapshot predates the field (or the loop has no
	// scheduler); RestoreState then keeps the scheduler's current value
	// rather than silently resetting admission headroom to zero.
	Headroom float64
}

// State captures the loop's counters and logs. Heat entries are sorted
// by file ID for a deterministic wire form.
func (l *Loop) State() LoopState {
	st := LoopState{
		AccessCount: l.accessCount,
		LastRun:     l.lastRun,
		Movements:   append([]MovementEvent(nil), l.movements...),
		TrainLog:    append([]TrainReport(nil), l.trainLog...),
		Deferrals:   append([]Deferral(nil), l.deferrals...),
		Skipped:     append([]SkippedDecision(nil), l.skipped...),
	}
	for id, t := range l.lastAccess {
		st.Heat = append(st.Heat, FileHeatState{FileID: id, LastAccess: t, Accesses: l.accesses[id]})
	}
	sort.Slice(st.Heat, func(i, j int) bool { return st.Heat[i].FileID < st.Heat[j].FileID })
	if l.Scheduler != nil {
		st.Headroom = l.Scheduler.Headroom
		if l.Scheduler.Gaps != nil {
			g := l.Scheduler.Gaps.State()
			st.Gaps = &g
		}
	}
	return st
}

// RestoreState overwrites the loop's counters and logs with a previously
// captured snapshot. A snapshot carrying gap-predictor state enables gap
// scheduling on the restored loop if it was not already enabled.
func (l *Loop) RestoreState(st LoopState) {
	l.accessCount = st.AccessCount
	l.lastRun = st.LastRun
	l.movements = append([]MovementEvent(nil), st.Movements...)
	l.trainLog = append([]TrainReport(nil), st.TrainLog...)
	l.deferrals = append([]Deferral(nil), st.Deferrals...)
	l.skipped = append([]SkippedDecision(nil), st.Skipped...)
	l.lastAccess = make(map[int64]float64, len(st.Heat))
	l.accesses = make(map[int64]int64, len(st.Heat))
	for _, h := range st.Heat {
		l.lastAccess[h.FileID] = h.LastAccess
		l.accesses[h.FileID] = h.Accesses
	}
	if st.Gaps != nil {
		if l.Scheduler == nil || l.Scheduler.Gaps == nil {
			l.EnableGapScheduling()
		}
		l.Scheduler.Gaps.RestoreState(*st.Gaps)
	}
	if l.Scheduler != nil && st.Headroom > 0 {
		l.Scheduler.Headroom = st.Headroom
	}
}
