package core

import (
	"testing"
)

// benchmarkProposeLayout measures a full decision over a large synthetic
// working set at the given worker-pool size.
func benchmarkProposeLayout(b *testing.B, files, par int) {
	db := seedDB(b, 1200)
	cfg := quickCfg()
	cfg.Parallelism = par
	e, err := NewEngine(db, testDevices, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.Train(); err != nil {
		b.Fatal(err)
	}
	metas := make([]FileMeta, files)
	for i := range metas {
		metas[i] = FileMeta{ID: int64(i%30 + 1), Size: int64(1e6 * (i%7 + 1)), Device: testDevices[i%len(testDevices)]}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.ProposeLayout(metas, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProposeLayout200Serial(b *testing.B)    { benchmarkProposeLayout(b, 200, 1) }
func BenchmarkProposeLayout200Parallel4(b *testing.B) { benchmarkProposeLayout(b, 200, 4) }
func BenchmarkProposeLayout200Parallel8(b *testing.B) { benchmarkProposeLayout(b, 200, 8) }
