package core

import (
	"context"
	"errors"
	"testing"

	"geomancy/internal/replaydb"
	"geomancy/internal/storagesim"
	"geomancy/internal/trace"
	"geomancy/internal/workload"
)

// quickLoop assembles a small closed loop over an in-memory testbed.
func quickLoop(t *testing.T) *Loop {
	t.Helper()
	cluster := storagesim.NewBluesky(13)
	files := trace.BelleFileSet(13)
	runner := workload.NewRunner(cluster, files, 1, 13)
	if err := runner.SpreadEvenly(cluster.DeviceNames()); err != nil {
		t.Fatal(err)
	}
	db, err := replaydb.Open(replaydb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	loop, err := NewLoop(db, cluster, runner, Config{Epochs: 4, WindowX: 300, CooldownRuns: 2, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	return loop
}

// trainedEngine builds and trains an engine over a fresh seeded DB.
func trainedEngine(t *testing.T, mutate func(*Config)) *Engine {
	t.Helper()
	db := seedDB(t, 900)
	cfg := quickCfg()
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := NewEngine(db, testDevices, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	return e
}

// The batched candidateScores must reproduce the legacy per-pair
// predictCandidate exactly — the regression anchor for the batched engine.
func TestCandidateScoresMatchLegacyPredict(t *testing.T) {
	for _, model := range []int{1, 18} { // dense and recurrent
		e := trainedEngine(t, func(c *Config) {
			c.ModelNumber = model
			c.SeqWindow = 4
		})
		files := []FileMeta{
			{ID: 1, Size: 1e8, Device: "pic"},   // deep history in seedDB
			{ID: 3, Size: 2e8, Device: "var"},   // other history
			{ID: 999, Size: 5e7, Device: "tmp"}, // never accessed
		}
		scores, err := e.candidateScores(context.Background(), files)
		if err != nil {
			t.Fatal(err)
		}
		for i, f := range files {
			for j, dev := range e.devices {
				want := e.predictCandidate(f, dev)
				if scores[i][j] != want {
					t.Errorf("model %d: file %d on %s: batched %v != legacy %v",
						model, f.ID, dev, scores[i][j], want)
				}
			}
		}
	}
}

// A parallel engine must propose the exact layout a serial engine does at
// the same seed: scoring is bit-identical at any parallelism and the
// rng-consuming selection stays serial in file order.
func TestProposeLayoutParallelMatchesSerial(t *testing.T) {
	for _, model := range []int{1, 18} {
		mkEngine := func() *Engine {
			return trainedEngine(t, func(c *Config) {
				c.ModelNumber = model
				c.SeqWindow = 4
				c.Epsilon = 0.3 // exercise the exploration branch too
			})
		}
		serial := mkEngine()
		parallel := mkEngine()
		parallel.cfg.Parallelism = 4

		files := make([]FileMeta, 40)
		for i := range files {
			files[i] = FileMeta{ID: int64(i%30 + 1), Size: int64(1e6 * (i%7 + 1)), Device: testDevices[i%len(testDevices)]}
		}
		for round := 0; round < 3; round++ {
			ls, ds, err := serial.ProposeLayout(files, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			lp, dp, err := parallel.ProposeLayout(files, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(ls) != len(lp) {
				t.Fatalf("model %d round %d: layout sizes differ", model, round)
			}
			for id, dev := range ls {
				if lp[id] != dev {
					t.Errorf("model %d round %d: file %d serial→%s parallel→%s", model, round, id, dev, lp[id])
				}
			}
			for i := range ds {
				if ds[i].Chosen != dp[i].Chosen || ds[i].Random != dp[i].Random {
					t.Errorf("model %d round %d: decision %d differs: %+v vs %+v",
						model, round, i, ds[i], dp[i])
				}
			}
		}
	}
}

// Training with Parallelism 2 and 8 must produce identical models: the
// chunked gradient reduction is canonical for every worker count ≥ 2.
func TestTrainParallelDeterministicAcrossWorkerCounts(t *testing.T) {
	train := func(par int) TrainReport {
		db := seedDB(t, 900)
		cfg := quickCfg()
		cfg.Parallelism = par
		e, err := NewEngine(db, testDevices, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Train()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := train(2), train(8)
	if a.FinalLoss != b.FinalLoss || a.Validation.MARE != b.Validation.MARE {
		t.Errorf("parallelism 2 vs 8: loss %v/%v, MARE %v/%v",
			a.FinalLoss, b.FinalLoss, a.Validation.MARE, b.Validation.MARE)
	}
}

// Cancellation must surface promptly from TrainContext and
// ProposeLayoutContext with the context's error in the chain.
func TestTrainContextCancel(t *testing.T) {
	db := seedDB(t, 900)
	cfg := quickCfg()
	cfg.Epochs = 1000
	e, err := NewEngine(db, testDevices, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.TrainContext(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("TrainContext(cancelled) = %v, want context.Canceled", err)
	}
	if e.Trained() {
		t.Error("cancelled training must not mark the engine trained")
	}
}

func TestProposeLayoutContextCancel(t *testing.T) {
	e := trainedEngine(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	files := []FileMeta{{ID: 1, Size: 1e6, Device: "pic"}}
	if _, _, err := e.ProposeLayoutContext(ctx, files, nil, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("ProposeLayoutContext(cancelled) = %v, want context.Canceled", err)
	}
}

// The engine's failure modes are typed sentinels callers can match.
func TestSentinelErrors(t *testing.T) {
	empty, err := replaydb.Open(replaydb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer empty.Close()
	e, err := NewEngine(empty, testDevices, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Train(); !errors.Is(err, ErrNoTelemetry) {
		t.Errorf("Train on empty DB = %v, want ErrNoTelemetry", err)
	}
	if _, _, err := e.ProposeLayout([]FileMeta{{ID: 1}}, nil, nil); !errors.Is(err, ErrNotTrained) {
		t.Errorf("ProposeLayout untrained = %v, want ErrNotTrained", err)
	}
}

// The loop surfaces cancellation without applying a partial layout.
func TestLoopRunOnceContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	loop := quickLoop(t)
	if _, err := loop.RunOnceContext(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("RunOnceContext(cancelled) = %v, want context.Canceled", err)
	}
	if loop.AccessCount() != 0 {
		t.Errorf("cancelled run recorded %d accesses before the first item, want 0", loop.AccessCount())
	}
}
