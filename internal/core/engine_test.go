package core

import (
	"testing"

	"geomancy/internal/agents"
	"geomancy/internal/replaydb"
	"geomancy/internal/rng"
	"geomancy/internal/storagesim"
	"geomancy/internal/trace"
	"geomancy/internal/workload"
)

var testDevices = []string{"file0", "pic", "people", "tmp", "var", "USBtmp"}

// seedDB fills a memory database with synthetic telemetry: device i has a
// characteristic throughput, so the model has structure to learn.
func seedDB(t testing.TB, n int) *replaydb.DB {
	t.Helper()
	db, err := replaydb.Open(replaydb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	rng := rng.New(9)
	speeds := []float64{8e9, 2e9, 1.7e9, 1.6e9, 1.3e9, 0.6e9}
	for i := 0; i < n; i++ {
		dev := rng.Intn(len(testDevices))
		tp := speeds[dev] * (0.7 + 0.6*rng.Float64())
		rec := replaydb.AccessRecord{
			Time:       float64(i),
			FileID:     int64(rng.Intn(24) + 1),
			Device:     testDevices[dev],
			BytesRead:  int64(1e8 + rng.Float64()*9e8),
			OpenTS:     int64(i),
			CloseTS:    int64(i),
			CloseTMS:   500,
			Throughput: tp,
		}
		if _, err := db.AppendAccess(rec); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func quickCfg() Config {
	return Config{Epochs: 8, WindowX: 400, Seed: 1, LearningRate: 0.05}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.ModelNumber != 1 || cfg.FeatureCount != 6 || cfg.Epsilon != 0.1 ||
		cfg.CooldownRuns != 5 || cfg.WindowX != 2000 || cfg.Epochs != 200 ||
		cfg.Optimizer != "sgd" || cfg.SmoothWindow != 8 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
}

func TestNewEngineValidation(t *testing.T) {
	db := seedDB(t, 10)
	if _, err := NewEngine(db, nil, Config{}); err == nil {
		t.Error("no devices should error")
	}
	if _, err := NewEngine(db, testDevices, Config{ModelNumber: 99}); err == nil {
		t.Error("bad model number should error")
	}
}

func TestTrainProducesMetrics(t *testing.T) {
	db := seedDB(t, 1200)
	e, err := NewEngine(db, testDevices, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if e.Trained() {
		t.Error("engine should start untrained")
	}
	rep, err := e.Train()
	if err != nil {
		t.Fatal(err)
	}
	if !e.Trained() {
		t.Error("engine should be trained")
	}
	if rep.Samples != 1200 {
		t.Errorf("samples = %d, want 1200", rep.Samples)
	}
	if rep.Duration <= 0 {
		t.Error("duration not measured")
	}
	if rep.Validation.Diverged {
		t.Errorf("model diverged on easy synthetic data: %+v", rep.Validation)
	}
	if rep.Validation.MARE <= 0 || rep.Validation.MARE > 100 {
		t.Errorf("validation MARE = %v, want sane percentage", rep.Validation.MARE)
	}
}

func TestTrainEmptyDB(t *testing.T) {
	db, _ := replaydb.Open(replaydb.Options{})
	defer db.Close()
	e, err := NewEngine(db, testDevices, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Train(); err == nil {
		t.Error("training on an empty ReplayDB should error")
	}
}

func TestProposeRequiresTraining(t *testing.T) {
	db := seedDB(t, 100)
	e, _ := NewEngine(db, testDevices, quickCfg())
	if _, _, err := e.ProposeLayout([]FileMeta{{ID: 1}}, nil, nil); err == nil {
		t.Error("propose before training should error")
	}
}

func TestProposeLayoutCoversFilesAndCandidates(t *testing.T) {
	db := seedDB(t, 1200)
	cfg := quickCfg()
	cfg.Epsilon = 0 // deterministic greedy for this test
	e, err := NewEngine(db, testDevices, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	files := []FileMeta{
		{ID: 1, Path: "/a", Size: 1e8, Device: "pic"},
		{ID: 2, Path: "/b", Size: 2e8, Device: "USBtmp"},
	}
	layout, decisions, err := e.ProposeLayout(files, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(layout) != 2 || len(decisions) != 2 {
		t.Fatalf("layout %v decisions %d", layout, len(decisions))
	}
	for _, d := range decisions {
		if len(d.Predictions) != len(testDevices) {
			t.Errorf("file %d has %d candidate predictions, want %d (must include 'don't move')",
				d.FileID, len(d.Predictions), len(testDevices))
		}
		if _, ok := d.Predictions[d.Current]; !ok {
			t.Errorf("file %d missing prediction for its current location", d.FileID)
		}
		if d.Random {
			t.Error("epsilon=0 must not explore")
		}
		// Chosen is the argmax of the predictions.
		best, bestV := "", -1.0
		for dev, v := range d.Predictions {
			if v > bestV {
				best, bestV = dev, v
			}
		}
		if d.Chosen != best {
			t.Errorf("file %d chose %s (%.3g) over argmax %s (%.3g)",
				d.FileID, d.Chosen, d.Predictions[d.Chosen], best, bestV)
		}
	}
}

func TestProposeLayoutExploration(t *testing.T) {
	db := seedDB(t, 800)
	cfg := quickCfg()
	cfg.Epsilon = 1 // always explore
	e, err := NewEngine(db, testDevices, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	files := make([]FileMeta, 20)
	for i := range files {
		files[i] = FileMeta{ID: int64(i + 1), Size: 1e6, Device: "pic"}
	}
	_, decisions, err := e.ProposeLayout(files, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	chosen := map[string]bool{}
	for _, d := range decisions {
		if !d.Random {
			t.Fatal("epsilon=1 must always explore")
		}
		chosen[d.Chosen] = true
	}
	if len(chosen) < 3 {
		t.Errorf("exploration not spreading: %v", chosen)
	}
}

func TestProposeLayoutRespectsValidator(t *testing.T) {
	db := seedDB(t, 800)
	cfg := quickCfg()
	cfg.Epsilon = 0
	e, err := NewEngine(db, testDevices, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	// Only USBtmp is valid.
	valid := func(dev string, size int64) error {
		if dev != "USBtmp" {
			return agentsErr("invalid")
		}
		return nil
	}
	files := []FileMeta{{ID: 1, Size: 1e6, Device: "pic"}}
	layout, _, err := e.ProposeLayout(files, nil, valid)
	if err != nil {
		t.Fatal(err)
	}
	if layout[1] != "USBtmp" {
		t.Errorf("layout = %v, want USBtmp (only valid device)", layout)
	}
}

type agentsErr string

func (e agentsErr) Error() string { return string(e) }

func TestShouldAct(t *testing.T) {
	db := seedDB(t, 10)
	e, _ := NewEngine(db, testDevices, Config{CooldownRuns: 5, Epochs: 1})
	acts := 0
	for run := 0; run < 20; run++ {
		if e.ShouldAct(run) {
			acts++
			if (run+1)%5 != 0 {
				t.Errorf("acted on run %d", run)
			}
		}
	}
	if acts != 4 {
		t.Errorf("acted %d times in 20 runs, want 4", acts)
	}
}

func TestRecurrentEnginePropose(t *testing.T) {
	db := seedDB(t, 600)
	cfg := quickCfg()
	cfg.ModelNumber = 18 // SimpleRNN head — the paper's runner-up
	cfg.SeqWindow = 4
	cfg.Epsilon = 0
	e, err := NewEngine(db, testDevices, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	// Files with deep history and with none at all must both predict.
	files := []FileMeta{
		{ID: 1, Size: 1e8, Device: "pic"},   // has history in seedDB
		{ID: 999, Size: 1e8, Device: "var"}, // never accessed
	}
	layout, decisions, err := e.ProposeLayout(files, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(layout) != 2 {
		t.Fatalf("layout = %v", layout)
	}
	for _, d := range decisions {
		for dev, p := range d.Predictions {
			if p < 0 {
				t.Errorf("file %d on %s predicted negative throughput %v", d.FileID, dev, p)
			}
		}
	}
}

func TestRewardBookkeeping(t *testing.T) {
	db := seedDB(t, 10)
	e, _ := NewEngine(db, testDevices, quickCfg())
	if r := e.RecordReward(100, 130); r != 30 {
		t.Errorf("reward = %v, want 30", r)
	}
	if r := e.RecordReward(100, 90); r != -10 {
		t.Errorf("reward = %v, want -10", r)
	}
	if got := e.Rewards(); len(got) != 2 || got[0] != 30 || got[1] != -10 {
		t.Errorf("history = %v", got)
	}
}

func TestSetDevicesRefreshesCandidates(t *testing.T) {
	db := seedDB(t, 10)
	e, _ := NewEngine(db, testDevices, quickCfg())
	e.SetDevices([]string{"file0", "pic"})
	if got := e.Devices(); len(got) != 2 {
		t.Errorf("Devices = %v", got)
	}
}

// Full closed loop: Geomancy should discover that file0 is fast and shift
// load toward it relative to the even spread.
func TestLoopEndToEnd(t *testing.T) {
	cluster := storagesim.NewBluesky(11)
	files := trace.BelleFileSet(11)
	runner := workload.NewRunner(cluster, files, 1, 11)
	if err := runner.SpreadEvenly(cluster.DeviceNames()); err != nil {
		t.Fatal(err)
	}
	db, _ := replaydb.Open(replaydb.Options{})
	defer db.Close()

	cfg := Config{Epochs: 6, WindowX: 500, CooldownRuns: 2, Seed: 11, LearningRate: 0.05}
	loop, err := NewLoop(db, cluster, runner, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var observed int
	loop.Observer = func(res storagesim.AccessResult, wl, run int) { observed++ }

	for i := 0; i < 6; i++ {
		stats, err := loop.RunOnce()
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if stats.Accesses == 0 {
			t.Fatalf("run %d made no accesses", i)
		}
	}
	if loop.AccessCount() == 0 || int(loop.AccessCount()) != observed {
		t.Errorf("access count %d, observer saw %d", loop.AccessCount(), observed)
	}
	if db.Len() != int(loop.AccessCount()) {
		t.Errorf("db has %d records, loop counted %d", db.Len(), loop.AccessCount())
	}
	// Cooldown 2 over 6 runs → 3 decision points.
	if got := len(loop.TrainLog()); got != 3 {
		t.Errorf("trained %d times, want 3", got)
	}
	if got := len(loop.Movements()); got != 3 {
		t.Errorf("%d movement events, want 3", got)
	}
	for _, mv := range loop.Movements() {
		if mv.AccessIndex <= 0 {
			t.Error("movement event missing access index")
		}
	}
	// Movement records persisted.
	var moved int
	for _, mv := range loop.Movements() {
		moved += mv.Moved
	}
	if db.MovementCount() != moved {
		t.Errorf("db recorded %d movements, loop performed %d", db.MovementCount(), moved)
	}
}

func TestEngineAdamOption(t *testing.T) {
	db := seedDB(t, 600)
	cfg := quickCfg()
	cfg.Optimizer = "adam"
	e, err := NewEngine(db, testDevices, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	cfg.Optimizer = "bogus"
	e2, _ := NewEngine(db, testDevices, cfg)
	if _, err := e2.Train(); err == nil {
		t.Error("bogus optimizer should error")
	}
}

func TestEngineSmoothingModes(t *testing.T) {
	for _, w := range []int{1, 8, -1} {
		db := seedDB(t, 400)
		cfg := quickCfg()
		cfg.SmoothWindow = w
		e, err := NewEngine(db, testDevices, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Train(); err != nil {
			t.Fatalf("smoothing mode %d: %v", w, err)
		}
	}
}

func TestCheckerIntegration(t *testing.T) {
	db := seedDB(t, 600)
	cfg := quickCfg()
	cfg.Epsilon = 0
	e, _ := NewEngine(db, testDevices, cfg)
	e.Train()
	cluster := storagesim.NewBluesky(12)
	// Knock out every device: the Action Checker's random fallback fires.
	for _, d := range cluster.DeviceNames() {
		cluster.SetAvailable(d, false)
	}
	checker := agents.NewActionChecker(rng.New(3), cluster.DeviceNames())
	files := []FileMeta{{ID: 1, Size: 1e6, Device: "pic"}}
	_, decisions, err := e.ProposeLayout(files, checker, agents.ClusterValidator(cluster))
	if err != nil {
		t.Fatal(err)
	}
	if !decisions[0].Random {
		t.Error("all-invalid candidates must trigger the random fallback")
	}
}

func TestLatencyTarget(t *testing.T) {
	db, err := replaydb.Open(replaydb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Device "fast" serves in 0.1s, "slow" in 2s, same bytes.
	rng := rng.New(31)
	for i := 0; i < 900; i++ {
		dev, dur := "fast", 0.08+0.04*rng.Float64()
		if i%2 == 0 {
			dev, dur = "slow", 1.8+0.4*rng.Float64()
		}
		start := float64(i)
		db.AppendAccess(replaydb.AccessRecord{
			Time:       start,
			FileID:     int64(i%8 + 1),
			Device:     dev,
			BytesRead:  1e8,
			OpenTS:     int64(start),
			CloseTS:    int64(start + dur),
			CloseTMS:   int64((start + dur - float64(int64(start+dur))) * 1000),
			Throughput: 1e8 / dur,
		})
	}
	cfg := Config{Epochs: 25, WindowX: 500, Seed: 31, Target: TargetLatency, Epsilon: 1e-9, LearningRate: 0.05}
	e, err := NewEngine(db, []string{"fast", "slow"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	layout, decisions, err := e.ProposeLayout([]FileMeta{{ID: 1, Size: 1e8, Device: "slow"}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if layout[1] != "fast" {
		t.Errorf("latency target chose %q, want fast (predictions %v)", layout[1], decisions[0].Predictions)
	}
	// The chosen device has the LOWER predicted latency.
	p := decisions[0].Predictions
	if p["fast"] >= p["slow"] {
		t.Errorf("predicted latency fast=%v slow=%v, want fast < slow", p["fast"], p["slow"])
	}
}

func TestUnknownTargetRejected(t *testing.T) {
	db := seedDB(t, 10)
	if _, err := NewEngine(db, testDevices, Config{Target: "iops"}); err == nil {
		t.Error("unknown target should error")
	}
}

// The engine must train identically through the Interface Daemon's wire
// protocol (Fig. 2's decoupling) as it does against the local database.
func TestEngineOverRemoteStore(t *testing.T) {
	db := seedDB(t, 900)
	daemon := agents.NewDaemon(dbUnderlying(db))
	addr, err := daemon.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer daemon.Close()
	store, err := agents.DialRemoteStore(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	cfg := quickCfg()
	cfg.Epsilon = 0
	remote, err := NewEngine(store, testDevices, cfg)
	if err != nil {
		t.Fatal(err)
	}
	repR, err := remote.Train()
	if err != nil {
		t.Fatal(err)
	}
	local, err := NewEngine(db, testDevices, cfg)
	if err != nil {
		t.Fatal(err)
	}
	repL, err := local.Train()
	if err != nil {
		t.Fatal(err)
	}
	if repR.Samples != repL.Samples {
		t.Errorf("remote trained on %d samples, local on %d", repR.Samples, repL.Samples)
	}
	if repR.Validation.MARE != repL.Validation.MARE {
		t.Errorf("remote val MARE %v != local %v (training paths diverged)",
			repR.Validation.MARE, repL.Validation.MARE)
	}
	// Proposals agree too.
	files := []FileMeta{{ID: 1, Size: 1e8, Device: "pic"}}
	lr, _, err := remote.ProposeLayout(files, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ll, _, err := local.ProposeLayout(files, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lr[1] != ll[1] {
		t.Errorf("remote proposal %v != local %v", lr, ll)
	}
	if err := store.Err(); err != nil {
		t.Errorf("transport errors during training: %v", err)
	}
}

// dbUnderlying returns the concrete DB for daemon construction.
func dbUnderlying(db *replaydb.DB) *replaydb.DB { return db }

// Telemetry write failures surface as loop errors rather than being
// silently dropped.
func TestLoopSurfacesDBErrors(t *testing.T) {
	cluster := storagesim.NewBluesky(41)
	files := trace.BelleFileSet(41)
	runner := workload.NewRunner(cluster, files, 1, 41)
	if err := runner.SpreadEvenly(cluster.DeviceNames()); err != nil {
		t.Fatal(err)
	}
	db, _ := replaydb.Open(replaydb.Options{})
	loop, err := NewLoop(db, cluster, runner, Config{Epochs: 2, WindowX: 100, CooldownRuns: 2, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	db.Close() // appends now fail
	if _, err := loop.RunOnce(); err == nil {
		t.Error("RunOnce should fail when telemetry cannot be recorded")
	}
}

// A device disappearing between decisions must not abort the decision
// cycle: invalid destinations are filtered (Action Checker), moves to it
// are skipped, and the loop keeps running as long as the workload's own
// files remain reachable.
func TestLoopSurvivesDeviceLossForPlacement(t *testing.T) {
	cluster := storagesim.NewBluesky(42)
	files := trace.BelleFileSet(42)
	runner := workload.NewRunner(cluster, files, 1, 42)
	// Keep every file off USBtmp so losing it cannot break accesses.
	devs := []string{"file0", "pic", "people", "tmp", "var"}
	for i, f := range files {
		if err := cluster.PlaceFile(f.ID, f.Path, f.Size, devs[i%len(devs)]); err != nil {
			t.Fatal(err)
		}
	}
	db, _ := replaydb.Open(replaydb.Options{})
	defer db.Close()
	loop, err := NewLoop(db, cluster, runner, Config{Epochs: 4, WindowX: 300, CooldownRuns: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loop.RunOnce(); err != nil {
		t.Fatal(err)
	}
	cluster.SetAvailable("USBtmp", false)
	for i := 0; i < 3; i++ {
		if _, err := loop.RunOnce(); err != nil {
			t.Fatalf("run after device loss: %v", err)
		}
	}
	for id, dev := range cluster.Layout() {
		if dev == "USBtmp" {
			t.Errorf("file %d placed on the unavailable device", id)
		}
	}
}
