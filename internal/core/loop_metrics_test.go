package core

import (
	"testing"

	"geomancy/internal/replaydb"
	"geomancy/internal/storagesim"
	"geomancy/internal/telemetry"
	"geomancy/internal/trace"
	"geomancy/internal/workload"
)

// The loop's instrumentation should reconcile with its own bookkeeping
// after a few decision cycles.
func TestLoopMetrics(t *testing.T) {
	cluster := storagesim.NewBluesky(13)
	files := trace.BelleFileSet(13)
	runner := workload.NewRunner(cluster, files, 1, 13)
	if err := runner.SpreadEvenly(cluster.DeviceNames()); err != nil {
		t.Fatal(err)
	}
	db, _ := replaydb.Open(replaydb.Options{})
	defer db.Close()
	loop, err := NewLoop(db, cluster, runner, Config{Epochs: 4, WindowX: 300, CooldownRuns: 2, Seed: 13, LearningRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	loop.SetMetrics(reg)
	db.SetMetrics(reg)

	for i := 0; i < 4; i++ {
		if _, err := loop.RunOnce(); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}

	// Per-device access instrumentation covers every access exactly once.
	var accesses uint64
	for _, dev := range cluster.DeviceNames() {
		accesses += reg.Counter(telemetry.MetricAccessesTotal, telemetry.L("device", dev)).Value()
	}
	if accesses != uint64(loop.AccessCount()) {
		t.Errorf("access counters sum to %d, loop counted %d", accesses, loop.AccessCount())
	}
	lat := reg.Histogram(telemetry.MetricAccessLatency, telemetry.DefLatencyBuckets, telemetry.L("device", "pic"))
	if lat.Count() == 0 || lat.Quantile(0.95) <= 0 {
		t.Errorf("pic latency histogram empty: count %d p95 %v", lat.Count(), lat.Quantile(0.95))
	}

	// Cooldown 2 over 4 runs → 2 training cycles.
	if got := reg.Counter(telemetry.MetricTrainingsTotal).Value(); got != 2 {
		t.Errorf("trainings_total = %d, want 2", got)
	}
	if d := reg.Gauge(telemetry.MetricTrainingDuration).Value(); d <= 0 {
		t.Errorf("training duration gauge = %v, want > 0", d)
	}

	var moved int
	for _, mv := range loop.Movements() {
		moved += mv.Moved
	}
	if got := reg.Counter(telemetry.MetricMovementsTotal).Value(); got != uint64(moved) {
		t.Errorf("movements_total = %d, loop moved %d", got, moved)
	}

	// ReplayDB counters: every loop access was inserted, movements match.
	if got := reg.Counter(telemetry.MetricReplayAccessInserts).Value(); got != uint64(db.Len()) {
		t.Errorf("access inserts = %d, db has %d", got, db.Len())
	}
	if got := reg.Counter(telemetry.MetricReplayMovementInserts).Value(); got != uint64(db.MovementCount()) {
		t.Errorf("movement inserts = %d, db has %d", got, db.MovementCount())
	}
	// Training reads go through the query counter.
	if got := reg.Counter(telemetry.MetricReplayQueriesTotal).Value(); got == 0 {
		t.Error("queries_total = 0, training should have queried the db")
	}
}
