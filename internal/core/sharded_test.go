package core

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"geomancy/internal/replaydb"
	"geomancy/internal/rng"
	"geomancy/internal/storagesim"
	"geomancy/internal/telemetry"
)

// shardedBluesky builds a coordinator over a fresh Bluesky cluster and
// the shared synthetic telemetry DB, trained and ready to decide.
func shardedBluesky(t *testing.T, db TelemetryStore, n int, cfg Config) *Sharded {
	t.Helper()
	s, err := NewSharded(db, storagesim.NewBluesky(1), n, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.globalEngine.Train(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestShardedSingleShardMatchesEngine pins the compatibility contract: a
// 1-shard coordinator is the unsharded engine, bit-for-bit — same
// layouts, same decisions, same RNG stream — across decide cycles and
// retrains.
func TestShardedSingleShardMatchesEngine(t *testing.T) {
	db := seedDB(t, 1200)
	cfg := quickCfg()
	cfg.Epsilon = 0.3 // exploration exercises the RNG-alignment claim

	cluster := storagesim.NewBluesky(1)
	plain, err := NewEngine(db, cluster.DeviceNames(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	model := plain.NewModel(cluster)
	if _, err := plain.Train(); err != nil {
		t.Fatal(err)
	}

	s := shardedBluesky(t, db, 1, cfg)

	files := testFiles()
	for step := 0; step < 6; step++ {
		wantLayout, wantDec, err := plain.ProposeLayoutContext(t.Context(), files, model.Checker, model.Valid)
		if err != nil {
			t.Fatal(err)
		}
		gotLayout, gotDec, err := s.DecideLayout(t.Context(), files)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantLayout, gotLayout) {
			t.Fatalf("step %d: 1-shard layout %v != engine layout %v", step, gotLayout, wantLayout)
		}
		if !reflect.DeepEqual(wantDec, gotDec) {
			t.Fatalf("step %d: 1-shard decisions diverged from the engine's", step)
		}
		if step == 2 {
			if _, err := plain.Train(); err != nil {
				t.Fatal(err)
			}
			if _, err := s.globalEngine.Train(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if plain.rng.State() != s.globalEngine.rng.State() {
		t.Fatal("RNG streams diverged between the engine and the 1-shard coordinator")
	}
	if got := s.Shard(0).Decisions(); got != 6*int64(len(files)) {
		t.Errorf("shard 0 decision count = %d, want %d", got, 6*len(files))
	}
}

// TestShardedDeterministicAcrossParallelism pins the coordinator's
// deterministic-parallelism rule: shard decisions run concurrently but
// merge in fixed shard order on per-shard RNG streams, so Parallelism 4
// reproduces the serial trajectory bit-for-bit, retrains included.
func TestShardedDeterministicAcrossParallelism(t *testing.T) {
	db := seedDB(t, 1200)
	run := func(parallelism int) ([]map[int64]string, [][]Decision) {
		cfg := quickCfg()
		cfg.Epsilon = 0.3
		cfg.Parallelism = parallelism
		s := shardedBluesky(t, db, 4, cfg)
		files := testFiles()
		var layouts []map[int64]string
		var decs [][]Decision
		for step := 0; step < 6; step++ {
			l, d, err := s.DecideLayout(t.Context(), files)
			if err != nil {
				t.Fatal(err)
			}
			layouts = append(layouts, l)
			decs = append(decs, d)
			if step == 2 {
				if _, err := s.globalEngine.Train(); err != nil {
					t.Fatal(err)
				}
			}
		}
		return layouts, decs
	}
	l1, d1 := run(1)
	l4, d4 := run(4)
	if !reflect.DeepEqual(l1, l4) {
		t.Fatalf("layout trajectories diverged across Parallelism:\n  serial   %v\n  parallel %v", l1, l4)
	}
	if !reflect.DeepEqual(d1, d4) {
		t.Fatal("decision trajectories diverged across Parallelism")
	}
}

// TestShardedRouting checks the file→shard routing contract: files are
// decided by the shard owning their current device (its engine only
// scores in-shard candidates), and a file on a device no shard owns is
// an error, not a silent skip.
func TestShardedRouting(t *testing.T) {
	db := seedDB(t, 1200)
	cfg := quickCfg()
	cfg.Epsilon = 0 // greedy only: every choice comes from in-shard scores
	s := shardedBluesky(t, db, 3, cfg)

	// Bluesky into 3 shards: [file0, pic], [people, tmp], [var, USBtmp].
	files := []FileMeta{
		{ID: 1, Path: "/a", Size: 1e8, Device: "pic"},
		{ID: 2, Path: "/b", Size: 1e8, Device: "tmp"},
		{ID: 3, Path: "/c", Size: 1e8, Device: "USBtmp"},
	}
	_, dec, err := s.DecideLayout(t.Context(), files)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(files) {
		t.Fatalf("decided %d files, want %d", len(dec), len(files))
	}
	owners := map[int64]int{1: 0, 2: 1, 3: 2}
	for _, d := range dec {
		shard := s.Shard(owners[d.FileID])
		for dev := range d.Predictions {
			if !shard.Contains(dev) {
				t.Errorf("file %d (shard %d) scored out-of-shard device %q", d.FileID, owners[d.FileID], dev)
			}
		}
		// Migration may still move it out of shard (escalation), but a
		// greedy non-escalated choice stays in-shard; either way the choice
		// must be a real device.
		if _, ok := s.devShard[d.Chosen]; !ok {
			t.Errorf("file %d placed on unknown device %q", d.FileID, d.Chosen)
		}
	}
	for i := 0; i < 3; i++ {
		if got := s.Shard(i).Decisions(); got != 1 {
			t.Errorf("shard %d decisions = %d, want 1", i, got)
		}
	}

	if _, _, err := s.DecideLayout(t.Context(), []FileMeta{{ID: 9, Device: "nosuch"}}); err == nil {
		t.Error("file on an unowned device should error")
	}
}

// TestShardedEscalation pins the cross-shard escalation rule and its
// two-phase accounting: an in-shard choice predicted far below the
// global digest escalates and migrates when the digest device can cover
// the file, is counted-but-kept when the reservation fails, and never
// fires for exploration decisions or digests the shard already owns.
func TestShardedEscalation(t *testing.T) {
	db := seedDB(t, 1200)
	s := shardedBluesky(t, db, 2, quickCfg())

	digest := s.throughputDigest()
	if digest == nil {
		t.Fatal("no throughput digest on a healthy cluster")
	}
	if digest.Name != "file0" {
		t.Fatalf("digest = %q, want the fastest device file0", digest.Name)
	}
	if s.devShard[digest.Name] != 0 {
		t.Fatalf("digest device owned by shard %d, fixture wants 0", s.devShard[digest.Name])
	}

	// Far-underperforming choice in shard 1: escalates and migrates.
	d := Decision{FileID: 1, Current: "tmp", Chosen: "tmp",
		Predictions: map[string]float64{"tmp": digest.RecentThroughput / 10}}
	s.escalate(1, &d, digest, 1e6)
	if d.Chosen != digest.Name {
		t.Fatalf("underperforming choice not escalated: chosen %q", d.Chosen)
	}
	if s.Shard(1).Escalations() != 1 || s.Shard(0).Migrations() != 1 {
		t.Fatalf("counters after migration: escalations=%d migrations=%d, want 1/1",
			s.Shard(1).Escalations(), s.Shard(0).Migrations())
	}

	// A file the digest device cannot cover: escalation is counted, the
	// reservation fails, and the in-shard choice survives — two-phase
	// accounting means nothing was committed anywhere.
	huge := s.cluster.Device(digest.Name).Free() + 1
	d = Decision{FileID: 2, Current: "tmp", Chosen: "tmp",
		Predictions: map[string]float64{"tmp": digest.RecentThroughput / 10}}
	s.escalate(1, &d, digest, huge)
	if d.Chosen != "tmp" {
		t.Fatalf("failed reservation still moved the file to %q", d.Chosen)
	}
	if s.Shard(1).Escalations() != 2 || s.Shard(0).Migrations() != 1 {
		t.Fatalf("counters after failed reservation: escalations=%d migrations=%d, want 2/1",
			s.Shard(1).Escalations(), s.Shard(0).Migrations())
	}

	// Exploration decisions probe, they do not escalate.
	d = Decision{FileID: 3, Current: "tmp", Chosen: "tmp", Random: true,
		Predictions: map[string]float64{"tmp": digest.RecentThroughput / 10}}
	s.escalate(1, &d, digest, 1e6)
	if d.Chosen != "tmp" || s.Shard(1).Escalations() != 2 {
		t.Error("exploration decision escalated")
	}

	// A digest the deciding shard already owns is not an escalation.
	d = Decision{FileID: 4, Current: "pic", Chosen: "pic",
		Predictions: map[string]float64{"pic": digest.RecentThroughput / 10}}
	s.escalate(0, &d, digest, 1e6)
	if d.Chosen != "pic" || s.Shard(0).Escalations() != 0 {
		t.Error("in-shard digest treated as cross-shard escalation")
	}

	// A choice within escalationFactor of the digest stays put.
	d = Decision{FileID: 5, Current: "tmp", Chosen: "tmp",
		Predictions: map[string]float64{"tmp": digest.RecentThroughput / 2}}
	s.escalate(1, &d, digest, 1e6)
	if d.Chosen != "tmp" || s.Shard(1).Escalations() != 2 {
		t.Error("adequately served choice escalated")
	}
}

// TestShardedReservationsReleased checks that a full decide cycle leaves
// every shard's reservation ledger empty: reservations gate admission
// within one cycle only, so checkpoint boundaries always see a clean
// slate.
func TestShardedReservationsReleased(t *testing.T) {
	db := seedDB(t, 1200)
	cfg := quickCfg()
	cfg.Epsilon = 0
	s := shardedBluesky(t, db, 2, cfg)
	if _, _, err := s.DecideLayout(t.Context(), testFiles()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.ShardCount(); i++ {
		for _, dev := range s.Shard(i).DeviceNames() {
			if r := s.Shard(i).Reserved(dev); r != 0 {
				t.Errorf("shard %d device %s holds %d reserved bytes after the cycle", i, dev, r)
			}
		}
	}
}

// TestShardedSingleInferencePerCycle is the amortized-inference
// contract: a decide cycle forwards ALL shards' candidate rows through
// the network exactly once, so the inference batch-size histogram counts
// one observation per cycle — not one per shard.
func TestShardedSingleInferencePerCycle(t *testing.T) {
	db := seedDB(t, 1200)
	cfg := quickCfg()
	s := shardedBluesky(t, db, 3, cfg)
	reg := telemetry.NewRegistry()
	s.globalEngine.SetMetrics(reg)
	s.SetMetrics(reg)

	hist := reg.Histogram(telemetry.MetricInferenceBatchSize, telemetry.DefBatchSizeBuckets)
	const cycles = 5
	files := testFiles()
	for i := 0; i < cycles; i++ {
		if _, _, err := s.DecideLayout(t.Context(), files); err != nil {
			t.Fatal(err)
		}
	}
	if got := hist.Count(); got != cycles {
		t.Fatalf("inference batches = %d over %d cycles, want exactly one GEMM per cycle", got, cycles)
	}
	// Every cycle's batch spans the full working set: files × in-shard
	// devices summed over shards = 4 files × 2 devices each.
	if want := float64(cycles * len(files) * 2); hist.Sum() != want {
		t.Errorf("batched rows = %v, want %v", hist.Sum(), want)
	}
	// The per-shard counters registered on the same registry.
	if got := reg.Counter(telemetry.MetricShardDecisions, telemetry.L("shard", "0")).Value(); got == 0 {
		t.Error("per-shard decision counter never incremented")
	}
}

// TestShardedStateRoundTrip checks bit-identical resume of the whole
// coordinator: shard engines (RNG streams, adopted scorers, pruning
// caches), shard accounting, and the global engine restore into a fresh
// coordinator that continues the exact trajectory. A snapshot from a
// different partition width is rejected.
func TestShardedStateRoundTrip(t *testing.T) {
	db := seedDB(t, 1200)
	cfg := quickCfg()
	cfg.Epsilon = 0.3
	a := shardedBluesky(t, db, 2, cfg)

	files := testFiles()
	for i := 0; i < 3; i++ {
		if _, _, err := a.DecideLayout(t.Context(), files); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := a.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	ga, err := a.globalEngine.State()
	if err != nil {
		t.Fatal(err)
	}

	b, err := NewSharded(db, storagesim.NewBluesky(1), 2, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.globalEngine.RestoreState(ga); err != nil {
		t.Fatal(err)
	}
	if err := b.UnmarshalState(blob); err != nil {
		t.Fatal(err)
	}
	if b.Shard(0).Decisions() != a.Shard(0).Decisions() {
		t.Fatalf("restored shard 0 decisions = %d, want %d", b.Shard(0).Decisions(), a.Shard(0).Decisions())
	}
	for i := 0; i < 4; i++ {
		la, da, err := a.DecideLayout(t.Context(), files)
		if err != nil {
			t.Fatal(err)
		}
		lb, dbDec, err := b.DecideLayout(t.Context(), files)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(la, lb) {
			t.Fatalf("step %d: restored layout %v != original %v", i, lb, la)
		}
		if !reflect.DeepEqual(da, dbDec) {
			t.Fatalf("step %d: restored decisions diverged", i)
		}
		if i == 1 {
			if _, err := a.globalEngine.Train(); err != nil {
				t.Fatal(err)
			}
			if _, err := b.globalEngine.Train(); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Partition-width mismatch is rejected loudly.
	c, err := NewSharded(db, storagesim.NewBluesky(1), 3, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.UnmarshalState(blob); err == nil {
		t.Error("restoring a 2-shard snapshot into a 3-shard coordinator should fail")
	}
}

// shardedWarehouse builds a coordinator over nDev synthetic devices in
// eight hardware classes (mirroring the warehouse fixture at repo root)
// with one seeded access per file, trained and ready to decide.
func shardedWarehouse(tb testing.TB, nFiles, nDev, shards int, cfg Config) (*Sharded, []FileMeta) {
	tb.Helper()
	profiles := make([]storagesim.DeviceProfile, nDev)
	speeds := make([]float64, nDev)
	for i := range profiles {
		class := i % 8
		speeds[i] = float64(8-class)*1e9 + float64(i/8)*3e7
		profiles[i] = storagesim.DeviceProfile{
			Name:     fmt.Sprintf("dev%03d", i),
			Class:    fmt.Sprintf("class%d", class),
			ReadBW:   speeds[i],
			WriteBW:  speeds[i],
			Capacity: 1e13,
		}
	}
	cluster, err := storagesim.NewCluster(profiles, storagesim.Config{Seed: 7})
	if err != nil {
		tb.Fatal(err)
	}
	db, err := replaydb.Open(replaydb.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { db.Close() })
	r := rng.New(31)
	files := make([]FileMeta, nFiles)
	for i := range files {
		id := int64(i + 1)
		dev := r.Intn(nDev)
		files[i] = FileMeta{
			ID:     id,
			Path:   fmt.Sprintf("/wh/f%04d", i),
			Size:   int64(1e8 + r.Float64()*4e8),
			Device: profiles[dev].Name,
		}
		if _, err := db.AppendAccess(replaydb.AccessRecord{
			Time:       float64(i + 1),
			FileID:     id,
			Device:     profiles[dev].Name,
			BytesRead:  int64(1e8 + r.Float64()*9e8),
			OpenTS:     int64(i + 1),
			CloseTS:    int64(i + 1),
			CloseTMS:   500,
			Throughput: speeds[dev] * (0.7 + 0.6*r.Float64()),
		}); err != nil {
			tb.Fatal(err)
		}
	}
	s, err := NewSharded(db, cluster, shards, nil, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := s.globalEngine.Train(); err != nil {
		tb.Fatal(err)
	}
	return s, files
}

// TestShardedSpeedup is the headline acceptance check of the sharded
// plane: at 4096 files × 256 devices, a 16-shard coordinator must decide
// at least 4× faster than the unsharded engine over the same population.
// The win is structural — each file is scored only against its shard's
// 16 devices (a 16× row reduction through one amortized GEMM) and the
// per-shard pipelines run concurrently.
func TestShardedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("warehouse-scale timing in -short mode")
	}
	const (
		nFiles = 4096
		nDev   = 256
		reps   = 2
	)
	cfg := Config{Epochs: 4, WindowX: 400, Seed: 31, Epsilon: 0.05, LearningRate: 0.05, Parallelism: 4}
	measure := func(shards int) time.Duration {
		s, files := shardedWarehouse(t, nFiles, nDev, shards, cfg)
		if _, _, err := s.DecideLayout(t.Context(), files); err != nil { // warm buffers
			t.Fatal(err)
		}
		start := time.Now()
		for i := 0; i < reps; i++ {
			if _, _, err := s.DecideLayout(t.Context(), files); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start) / reps
	}
	flat := measure(1)
	sharded := measure(16)
	ratio := float64(flat) / float64(sharded)
	t.Logf("unsharded %v/op, 16-shard %v/op: %.1fx", flat, sharded, ratio)
	if ratio < 4 {
		t.Errorf("sharded decisions only %.1fx faster than unsharded, want ≥ 4x", ratio)
	}
}

// TestShardedRejectsRecurrent pins the dense-only constraint of the
// cross-shard batch concatenation.
func TestShardedRejectsRecurrent(t *testing.T) {
	db := seedDB(t, 100)
	cfg := quickCfg()
	cfg.ModelNumber = 12 // LSTM
	if _, err := NewSharded(db, storagesim.NewBluesky(1), 2, nil, cfg); err == nil {
		t.Error("recurrent architecture should be rejected for n > 1")
	}
	if _, err := NewSharded(db, storagesim.NewBluesky(1), 1, nil, cfg); err != nil {
		t.Errorf("recurrent architecture with a single shard should build: %v", err)
	}
}
