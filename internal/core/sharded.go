package core

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"strconv"

	"geomancy/internal/agents"
	"geomancy/internal/mat"
	"geomancy/internal/policy"
	"geomancy/internal/rng"
	"geomancy/internal/storagesim"
	"geomancy/internal/telemetry"
)

// Sharded is the sharded placement coordinator (ROADMAP item 2's
// warehouse-scale decision plane): the cluster's devices are partitioned
// into shards (storagesim.Shard), each shard owns a lightweight engine
// that decides only over its own device subset, and the coordinator
//
//   - routes every file to the shard owning its current device,
//   - runs the shards' decision pipelines concurrently under the
//     repository's deterministic-parallelism rules — shards always merge
//     in fixed index order and each shard draws from its own RNG stream
//     (rng.Split of the coordinator seed), so any Parallelism produces
//     the serial layout bit-for-bit,
//   - amortizes inference by concatenating every shard's candidate rows
//     into ONE batched forward pass per cycle through the shared network
//     (one GEMM per cycle instead of one per shard), and
//   - escalates: when a shard's best in-shard placement underperforms the
//     cluster-wide throughput digest by escalationFactor, the coordinator
//     attempts a cross-shard migration under two-phase accounting
//     (Shard.Reserve first, so a remote placement that no longer fits is
//     abandoned without ever touching used-bytes).
//
// Only the global engine trains; shard engines adopt its network and
// normalization after every retrain (adoptScorer) and never train
// themselves. A 1-shard coordinator routes every decision through the
// global engine directly and is bit-identical to the unsharded policy.
type Sharded struct {
	units []shardUnit

	// Training and batched inference happen on the global engine, which
	// sees every device; the bridge model wires it into the loop.
	globalEngine *Engine      //geomancy:ephemeral owned by units[?]/checkpoint engine half; rebuilt by NewSharded
	global       *EngineModel //geomancy:ephemeral policy-plane bridge, rebuilt by NewSharded
	cluster      *storagesim.Cluster
	cfg          Config //geomancy:ephemeral construction config, re-supplied by NewSharded on restore

	// devShard maps a device name to its owning shard index.
	devShard map[string]int //geomancy:ephemeral derived from the partition, rebuilt by NewSharded

	// combined is the reusable cross-shard inference buffer.
	combined *mat.Matrix //geomancy:ephemeral reusable inference buffer, overwritten per cycle

	// lastAdopted is the global model generation the shard engines last
	// copied; every retrain bumps the generation, so adoption re-fires on
	// the first decision after any (re)train.
	lastAdopted uint64 //geomancy:ephemeral adoption gate, re-primed by the first post-restore retrain

	explored int
}

// shardUnit is one shard's decision machinery: the device-group view with
// its accounting, the shard-local engine, and the shard's own action
// checker (sharing the shard engine's RNG stream) and validator.
type shardUnit struct {
	shard   *storagesim.Shard
	engine  *Engine
	checker *agents.ActionChecker //geomancy:ephemeral wraps the shard engine's RNG, whose stream restores with the engine state
	valid   agents.Validator
	tele    shardTelemetry //geomancy:ephemeral metrics counters, re-installed by SetMetrics
}

// shardTelemetry holds one shard's pre-resolved counters; nil until
// SetMetrics installs a registry (nil counters are no-ops).
type shardTelemetry struct {
	decisions   *telemetry.Counter
	escalations *telemetry.Counter
	migrations  *telemetry.Counter
}

// escalationFactor is the cross-shard escalation threshold: a committed
// in-shard choice is escalated to the global digest device only when the
// digest's recent throughput exceeds the chosen device's predicted
// throughput by this factor. The bar is deliberately high — escalations
// bypass the model's per-pairing prediction with a device-level digest,
// so only placements the shard is clearly unable to serve go remote.
const escalationFactor = 4.0

// NewSharded partitions the cluster into n device groups (contiguous in
// profile order, or by assign when non-nil; see storagesim.ShardBy) and
// builds the coordinator over them. cfg configures the global engine;
// shard engines inherit it with a per-shard RNG stream split from
// cfg.Seed and serial internals (cross-shard concurrency comes from the
// coordinator's cfg.Parallelism, not nested pools). Recurrent
// architectures are rejected for n > 1: the cross-shard batch
// concatenation is dense-only.
func NewSharded(db TelemetryStore, cluster *storagesim.Cluster, n int, assign func(string) int, cfg Config) (*Sharded, error) {
	shards, err := cluster.ShardBy(n, assign)
	if err != nil {
		return nil, err
	}
	globalEngine, err := NewEngine(db, cluster.DeviceNames(), cfg)
	if err != nil {
		return nil, err
	}
	if n > 1 && globalEngine.net.IsRecurrent() {
		return nil, fmt.Errorf("core: sharded coordinator requires a dense architecture (model %d is recurrent)", cfg.ModelNumber)
	}
	s := &Sharded{
		globalEngine: globalEngine,
		global:       globalEngine.NewModel(cluster),
		cluster:      cluster,
		cfg:          globalEngine.cfg,
		devShard:     make(map[string]int),
	}
	for i, sh := range shards {
		for _, name := range sh.DeviceNames() {
			s.devShard[name] = i
		}
		var u shardUnit
		u.shard = sh
		if n == 1 {
			// One shard owns everything: its engine IS the global engine and
			// its checker/validator are the bridge model's, so the decision
			// sequence is the unsharded policy's, bit-for-bit.
			u.engine = globalEngine
			u.checker = s.global.Checker
			u.valid = s.global.Valid
		} else {
			shardCfg := cfg
			shardCfg.Seed = rng.Split(cfg.Seed, i)
			shardCfg.Parallelism = 1
			eng, err := NewEngine(db, sh.DeviceNames(), shardCfg)
			if err != nil {
				return nil, fmt.Errorf("core: shard %d engine: %w", i, err)
			}
			eng.SetSummarySource(sh.DeviceSummaries)
			// The shard scores through the globally-trained network, whose
			// fsid feature is the device's GLOBAL index.
			fsids := make([]int, 0, len(sh.DeviceNames()))
			for _, name := range sh.DeviceNames() {
				fsids = append(fsids, globalEngine.devIndex[name])
			}
			eng.fsids = fsids
			u.engine = eng
			u.checker = agents.NewActionChecker(eng.rng, sh.DeviceNames())
			u.valid = agents.ClusterValidator(cluster)
		}
		s.units = append(s.units, u)
	}
	return s, nil
}

// Model returns the policy-plane bridge over the global engine; the loop
// wires its Engine/Checker and drains training reports through it.
func (s *Sharded) Model() *EngineModel { return s.global }

// ShardCount returns the partition width.
func (s *Sharded) ShardCount() int { return len(s.units) }

// Shard returns the i-th device group (for accounting inspection).
func (s *Sharded) Shard(i int) *storagesim.Shard { return s.units[i].shard }

// SetMetrics installs per-shard decision/escalation/migration counters,
// labeled {shard="i"}. A nil registry detaches.
func (s *Sharded) SetMetrics(reg *telemetry.Registry) {
	for i := range s.units {
		l := telemetry.L("shard", strconv.Itoa(i))
		s.units[i].tele = shardTelemetry{
			decisions:   reg.Counter(telemetry.MetricShardDecisions, l),
			escalations: reg.Counter(telemetry.MetricShardEscalations, l),
			migrations:  reg.Counter(telemetry.MetricShardMigrations, l),
		}
	}
}

// adoptScorer points a shard engine's scoring machinery at the freshly
// trained global engine: the network is shared by pointer (shard engines
// never mutate weights — they only forward), normalization and the MAE
// adjustment are copied by value, and the shard's model generation bumps
// so cached candidate scores from the previous weights go stale.
func (e *Engine) adoptScorer(src *Engine) {
	if e == src {
		return
	}
	e.net = src.net
	e.featScaler = src.featScaler
	e.targetScaler = src.targetScaler
	e.valMetrics = src.valMetrics
	e.trained = src.trained
	e.modelGen++
}

// adoptIfStale refreshes every shard engine's scorer after a retrain.
func (s *Sharded) adoptIfStale() {
	if s.globalEngine.modelGen == s.lastAdopted {
		return
	}
	for i := range s.units {
		s.units[i].engine.adoptScorer(s.globalEngine)
	}
	s.lastAdopted = s.globalEngine.modelGen
}

// DecideLayout runs one sharded decision cycle over the working set:
// route each file to the shard owning its current device, prepare every
// shard's candidate rows concurrently, forward ALL rows through the
// shared network in one batched inference, finish each shard's ε-greedy
// selection concurrently on its own RNG stream, then merge in fixed
// shard order with cross-shard escalation. The merged decision list is
// ordered by shard, preserving input file order within each shard.
func (s *Sharded) DecideLayout(ctx context.Context, files []FileMeta) (map[int64]string, []Decision, error) {
	s.adoptIfStale()

	if len(s.units) == 1 {
		u := &s.units[0]
		layout, decisions, err := u.engine.ProposeLayoutContext(ctx, files, u.checker, u.valid)
		if err != nil {
			return nil, nil, err
		}
		u.shard.NoteDecision(len(decisions))
		u.tele.decisions.Add(uint64(len(decisions)))
		return layout, decisions, nil
	}

	// Route files to their owning shards, preserving input order.
	routed := make([][]FileMeta, len(s.units))
	sizeOf := make(map[int64]int64, len(files))
	for _, f := range files {
		i, ok := s.devShard[f.Device]
		if !ok {
			return nil, nil, fmt.Errorf("core: file %d is on device %q, which no shard owns", f.ID, f.Device)
		}
		routed[i] = append(routed[i], f)
		sizeOf[f.ID] = f.Size
	}

	// Stage 1 — prepare concurrently. Preparation draws no randomness and
	// shards touch disjoint engines, so the fan-out is race-free; errors
	// surface in fixed shard order for determinism.
	pds := make([]*pendingDecision, len(s.units))
	errs := make([]error, len(s.units))
	if err := parallelFor(ctx, len(s.units), s.cfg.Parallelism, func(i int) {
		pds[i], errs[i] = s.units[i].engine.prepareProposal(ctx, routed[i], s.units[i].checker, s.units[i].valid)
	}); err != nil {
		return nil, nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}

	// Stage 2 — concatenate every shard's rows and forward ONCE through
	// the shared network on the global engine (one timed, observed GEMM
	// per cycle).
	total := 0
	bases := make([]int, len(s.units))
	for i, pd := range pds {
		bases[i] = total
		total += pd.rows()
	}
	var out *mat.Matrix
	if total > 0 {
		cols := s.globalEngine.net.InSize
		if s.combined == nil || s.combined.Rows != total || s.combined.Cols != cols {
			s.combined = mat.New(total, cols)
		}
		for i, pd := range pds {
			pd.fillInto(s.combined, bases[i])
		}
		out = s.globalEngine.forwardRows(s.combined, nil, total)
	}

	// Stage 3 — finish concurrently. Selection draws randomness, but each
	// shard draws only from its own stream (distinct rng.Split seeds), so
	// the layouts are independent of scheduling and identical at any
	// Parallelism.
	decs := make([][]Decision, len(s.units))
	if err := parallelFor(ctx, len(s.units), s.cfg.Parallelism, func(i int) {
		_, decs[i], errs[i] = pds[i].finish(ctx, out, bases[i])
	}); err != nil {
		return nil, nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}

	// Stage 4 — merge in fixed shard order, escalating placements the
	// owning shard clearly cannot serve.
	digest := s.throughputDigest()
	layout := make(map[int64]string, len(files))
	decisions := make([]Decision, 0, len(files))
	for i := range s.units {
		u := &s.units[i]
		u.shard.NoteDecision(len(decs[i]))
		u.tele.decisions.Add(uint64(len(decs[i])))
		for _, d := range decs[i] {
			s.escalate(i, &d, digest, sizeOf[d.FileID])
			layout[d.FileID] = d.Chosen
			decisions = append(decisions, d)
		}
	}
	// Reservations only gate admission within this cycle; the committed
	// layout re-validates in Cluster.Move.
	for i := range s.units {
		s.units[i].shard.ReleaseReservations()
	}
	return layout, decisions, nil
}

// throughputDigest returns the cluster-wide best-device digest the
// escalation check compares against: the available, writable device with
// the highest recent effective throughput (ties break toward profile
// order). Nil when nothing qualifies or the engine models latency —
// the digest is a throughput quantity, so under the latency target
// escalation is disabled rather than comparing unlike metrics.
func (s *Sharded) throughputDigest() *storagesim.DeviceSummary {
	if s.cfg.Target != TargetThroughput {
		return nil
	}
	sums := s.cluster.DeviceSummaries()
	var best *storagesim.DeviceSummary
	for i := range sums {
		d := &sums[i]
		if !d.Available || d.ReadOnly {
			continue
		}
		if best == nil || d.RecentThroughput > best.RecentThroughput {
			best = d
		}
	}
	return best
}

// escalate applies the cross-shard escalation rule to one decision owned
// by shard i: when the globally best device belongs to another shard and
// its digest throughput exceeds the chosen device's prediction by
// escalationFactor, reserve space on it (two-phase: admission only) and,
// if the reservation holds, override the placement. Exploration
// decisions never escalate — they exist to probe, not to optimize — and
// a decision with no usable prediction for its choice stays put.
func (s *Sharded) escalate(i int, d *Decision, digest *storagesim.DeviceSummary, size int64) {
	if digest == nil || d.Random {
		return
	}
	owner, ok := s.devShard[digest.Name]
	if !ok || owner == i {
		return
	}
	pred, ok := d.Predictions[d.Chosen]
	if !ok || pred <= 0 || digest.RecentThroughput <= escalationFactor*pred {
		return
	}
	u := &s.units[i]
	u.shard.NoteEscalation()
	u.tele.escalations.Inc()
	target := &s.units[owner]
	if err := target.shard.Reserve(digest.Name, size); err != nil {
		// The remote device cannot cover the file this cycle (capacity
		// already claimed, gone read-only, ...): keep the in-shard choice.
		return
	}
	d.Chosen = digest.Name
	target.shard.NoteMigration()
	target.tele.migrations.Inc()
}

// ShardedPolicyName is the coordinator's catalogue identity.
const ShardedPolicyName = "sharded-geomancy"

// Name implements policy.Policy.
func (s *Sharded) Name() string { return ShardedPolicyName }

// Propose implements policy.Policy: one full retrain of the global
// engine (shard engines adopt the new scorer on the next decide), then
// one sharded decision cycle over the snapshot's working set.
func (s *Sharded) Propose(ctx context.Context, st policy.State) (map[int64]string, error) {
	if err := s.global.Retrain(ctx); err != nil {
		return nil, fmt.Errorf("policy: sharded retrain: %w", err)
	}
	files := make([]FileMeta, 0, len(st.Files))
	for _, f := range st.Files {
		files = append(files, FileMeta{ID: f.ID, Path: f.Path, Size: f.Size, Device: f.Device})
	}
	layout, decisions, err := s.DecideLayout(ctx, files)
	if err != nil {
		return nil, fmt.Errorf("policy: sharded proposal: %w", err)
	}
	explored := 0
	for _, d := range decisions {
		if d.Random && d.Chosen != d.Current {
			explored++
		}
	}
	s.explored = explored
	return layout, nil
}

// LastExplored implements policy.Explorer.
func (s *Sharded) LastExplored() int { return s.explored }

// shardedState is the gob wire form of the coordinator's mutable state:
// the partition width (restores reject a mismatch — a snapshot taken
// under a different sharding cannot restore silently) and one opaque
// blob per shard unit.
type shardedState struct {
	Shards   int
	Explored int
	Units    [][]byte
}

// shardUnitState is one unit's wire form: the shard engine's full state
// (RNG stream, adopted scorer, pruning caches) plus the device group's
// identity and counters.
type shardUnitState struct {
	Engine EngineState
	Shard  storagesim.ShardState
}

// ShardStates returns one opaque blob per shard unit — the wire form the
// checkpoint plane embeds directly (Snapshot.ShardStates).
func (s *Sharded) ShardStates() ([][]byte, error) {
	out := make([][]byte, 0, len(s.units))
	for i := range s.units {
		es, err := s.units[i].engine.State()
		if err != nil {
			return nil, fmt.Errorf("core: sharded state, shard %d: %w", i, err)
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(shardUnitState{Engine: es, Shard: s.units[i].shard.State()}); err != nil {
			return nil, fmt.Errorf("core: encoding shard %d state: %w", i, err)
		}
		out = append(out, buf.Bytes())
	}
	return out, nil
}

// RestoreShardStates restores every shard unit from its opaque blob. The
// blob count must equal the partition width.
func (s *Sharded) RestoreShardStates(blobs [][]byte) error {
	if len(blobs) != len(s.units) {
		return fmt.Errorf("core: snapshot has %d shards, coordinator has %d — rebuild with the snapshot's shard count", len(blobs), len(s.units))
	}
	for i, blob := range blobs {
		var us shardUnitState
		if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&us); err != nil {
			return fmt.Errorf("%w: shard %d: %v", policy.ErrBadState, i, err)
		}
		if err := s.units[i].engine.RestoreState(us.Engine); err != nil {
			return fmt.Errorf("core: restoring shard %d engine: %w", i, err)
		}
		if err := s.units[i].shard.RestoreState(us.Shard); err != nil {
			return fmt.Errorf("core: restoring shard %d: %w", i, err)
		}
	}
	// Restored shard engines carry their own deserialized networks; the
	// first post-restore retrain bumps the global generation past this
	// gate and re-aliases them to the shared scorer.
	s.lastAdopted = 0
	return nil
}

// MarshalState implements policy.Policy.
func (s *Sharded) MarshalState() ([]byte, error) {
	units, err := s.ShardStates()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(shardedState{Shards: len(s.units), Explored: s.explored, Units: units}); err != nil {
		return nil, fmt.Errorf("core: encoding sharded state: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalState implements policy.Policy. The blob must describe the
// same partition width this coordinator was built with.
func (s *Sharded) UnmarshalState(data []byte) error {
	var st shardedState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("%w: %v", policy.ErrBadState, err)
	}
	if st.Shards != len(s.units) {
		return fmt.Errorf("core: snapshot has %d shards, coordinator has %d — rebuild with the snapshot's shard count", st.Shards, len(s.units))
	}
	if err := s.RestoreShardStates(st.Units); err != nil {
		return err
	}
	s.explored = st.Explored
	return nil
}

var (
	_ policy.Policy   = (*Sharded)(nil)
	_ policy.Explorer = (*Sharded)(nil)
)
