package core

import (
	"sort"

	"geomancy/internal/storagesim"
)

// Candidate pruning (Config.TopK > 0) makes the scoring hot path sublinear
// in the candidate space. The exhaustive pass builds and scores all
// files×devices rows on every decision; at warehouse scale (ROADMAP item
// 2) almost all of that work re-derives scores that cannot have changed.
// The pruned path keeps a per-file cache of candidate scores tagged with
// the model generation that produced them, and per decision scores only:
//
//   - files whose telemetry changed since the last pass — the dirty set,
//     answered by the ReplayDB's append watermark (ChangeTracker) instead
//     of re-reading every file's history;
//   - against a device shortlist — the top-K devices per device class by
//     recent effective throughput (storagesim.DeviceSummary), always
//     including the file's current device;
//   - plus anything the current model generation has not scored yet: a
//     retrain or incremental update bumps the generation, so fresh weights
//     never reuse stale scores.
//
// Exactness contract: the first decision and every FullRescanEvery-th one
// run the exhaustive pass, so pruning error cannot accumulate past one
// cadence window. Between rescans, a clean file whose cache still carries
// the full device width at the current generation decides over exactly
// the exhaustive candidate set, bit-identically (batching never changes a
// row's arithmetic); dirty or newly generated files decide over the
// shortlist ∪ {current device}. Exploration draws are aligned by
// construction (see scored.explore), so a pruned run and an exhaustive
// run of the same seed consume identical randomness, and agree on the
// chosen layout whenever the shortlist covers the argmax device.

// ChangeTracker is the optional dirty-tracking view of a TelemetryStore.
// The local *replaydb.DB implements it; a store that does not (e.g. a
// remote daemon without the extension) degrades the pruned path to
// treating every file as changed on every decision — still O(files×K).
type ChangeTracker interface {
	// Watermark returns the sequence number of the newest record.
	Watermark() uint64
	// FilesChangedSince returns IDs of files with access records appended
	// after seq, sorted ascending.
	FilesChangedSince(seq uint64) []int64
	// FileLastSeq returns the sequence number of the file's newest access
	// record, 0 if none.
	FileLastSeq(fileID int64) uint64
}

// SummarySource supplies the per-device recent-throughput digests the
// shortlist ranks; typically storagesim.(*Cluster).DeviceSummaries.
type SummarySource func() []storagesim.DeviceSummary

// SetSummarySource installs the device-summary provider the pruned path
// builds shortlists from. Without one, pruning still skips clean files
// but shortlists every device.
func (e *Engine) SetSummarySource(src SummarySource) { e.summarySource = src }

// fileCache is one file's pruning state: raw feature ingredients (valid
// until the file's telemetry changes) and per-device candidate scores
// tagged with the model generation that produced them. gens[j] == 0 means
// never scored; entries are laid out in e.devices index order.
type fileCache struct {
	size      int64
	featValid bool         //geomancy:ephemeral feature-cache validity bit, recomputed from telemetry after restore
	feat      fileFeatures //geomancy:ephemeral raw feature ingredients, recomputed from telemetry after restore
	scores    []float64
	gens      []uint64
}

// invalidate drops everything derived from the file's telemetry.
func (fc *fileCache) invalidate() {
	fc.featValid = false
	for i := range fc.gens {
		fc.gens[i] = 0
	}
}

// ensureCache returns the file's cache entry, creating or resetting it if
// the device width or the file's size changed.
func (e *Engine) ensureCache(f FileMeta) *fileCache {
	ent, ok := e.cache[f.ID]
	if !ok || len(ent.gens) != len(e.devices) {
		ent = &fileCache{
			size:   f.Size,
			scores: make([]float64, len(e.devices)),
			gens:   make([]uint64, len(e.devices)),
		}
		e.cache[f.ID] = ent
	} else if ent.size != f.Size {
		ent.size = f.Size
		ent.invalidate()
	}
	return ent
}

// fullRescanDue reports whether the next decision must run the exhaustive
// pass: always the first, then every FullRescanEvery-th.
func (e *Engine) fullRescanDue() bool {
	if e.decisionCount == 0 {
		return true
	}
	return e.cfg.FullRescanEvery > 0 && e.decisionCount%uint64(e.cfg.FullRescanEvery) == 0
}

// refreshCacheFull records an exhaustive pass's full-width scores and
// advances the dirty watermark. The cache is rebuilt from this file list,
// so entries for files that left the working set are dropped here —
// full rescans bound both pruning error and cache growth.
func (e *Engine) refreshCacheFull(files []FileMeta, scores [][]float64) {
	next := make(map[int64]*fileCache, len(files))
	for i, f := range files {
		ent := e.ensureCache(f)
		copy(ent.scores, scores[i])
		for j := range ent.gens {
			ent.gens[j] = e.modelGen
		}
		next[f.ID] = ent
	}
	e.cache = next
	if e.tracker != nil {
		e.lastWatermark = e.tracker.Watermark()
	}
}

// deviceShortlist returns the sorted device indices a pruned decision
// scores dirty files against: the top-K devices per device class by
// recent effective throughput, skipping devices no move could target
// (unavailable or read-only). Devices whose summary carries only the
// nominal-bandwidth fallback (DeviceSummary.Nominal — never probed by any
// access) are always shortlisted regardless of rank: their fallback
// throughput is a spec-sheet guess, and a device whose guess ranks below
// its classmates' measured rates would otherwise never be probed until
// the next full rescan. Ties break toward profile order, and the result
// is ascending by device index, so shortlists are deterministic — in
// particular, a shortlist built from restored summaries equals the one
// the original run built.
// Without a summary source every device is shortlisted.
func (e *Engine) deviceShortlist() []int {
	if e.summarySource == nil {
		out := make([]int, len(e.devices))
		for i := range out {
			out[i] = i
		}
		return out
	}
	type ranked struct {
		idx int
		tp  float64
	}
	byClass := make(map[string][]ranked)
	var classes []string
	var nominal []int
	for _, s := range e.summarySource() {
		j, ok := e.devIndex[s.Name]
		if !ok || !s.Available || s.ReadOnly {
			continue
		}
		if s.Nominal {
			nominal = append(nominal, j)
		}
		if _, seen := byClass[s.Class]; !seen {
			classes = append(classes, s.Class)
		}
		byClass[s.Class] = append(byClass[s.Class], ranked{j, s.RecentThroughput})
	}
	var out []int
	for _, cls := range classes {
		rs := byClass[cls]
		sort.SliceStable(rs, func(a, b int) bool { return rs[a].tp > rs[b].tp })
		n := e.cfg.TopK
		if n > len(rs) {
			n = len(rs)
		}
		for _, r := range rs[:n] {
			out = append(out, r.idx)
		}
	}
	out = append(out, nominal...)
	sort.Ints(out)
	// Nominal devices may double up with top-K winners; dedupe in place.
	dst := 0
	for i, v := range out {
		if i == 0 || v != out[dst-1] {
			out[dst] = v
			dst++
		}
	}
	return out[:dst]
}

// scoreTask is one file's pending inference work: the device indices to
// score (ascending) and where its rows start in the batch. The pruned
// decision body itself lives in propose.go (prepareProposal builds the
// task list via pruneTasks; pendingDecision.finish writes scores back),
// shared with the exhaustive path and the sharded coordinator.
type scoreTask struct {
	file int
	ent  *fileCache
	devs []int
	base int
}
