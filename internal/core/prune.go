package core

import (
	"context"
	"sort"
	"time"

	"geomancy/internal/agents"
	"geomancy/internal/mat"
	"geomancy/internal/nn"
	"geomancy/internal/storagesim"
)

// Candidate pruning (Config.TopK > 0) makes the scoring hot path sublinear
// in the candidate space. The exhaustive pass builds and scores all
// files×devices rows on every decision; at warehouse scale (ROADMAP item
// 2) almost all of that work re-derives scores that cannot have changed.
// The pruned path keeps a per-file cache of candidate scores tagged with
// the model generation that produced them, and per decision scores only:
//
//   - files whose telemetry changed since the last pass — the dirty set,
//     answered by the ReplayDB's append watermark (ChangeTracker) instead
//     of re-reading every file's history;
//   - against a device shortlist — the top-K devices per device class by
//     recent effective throughput (storagesim.DeviceSummary), always
//     including the file's current device;
//   - plus anything the current model generation has not scored yet: a
//     retrain or incremental update bumps the generation, so fresh weights
//     never reuse stale scores.
//
// Exactness contract: the first decision and every FullRescanEvery-th one
// run the exhaustive pass, so pruning error cannot accumulate past one
// cadence window. Between rescans, a clean file whose cache still carries
// the full device width at the current generation decides over exactly
// the exhaustive candidate set, bit-identically (batching never changes a
// row's arithmetic); dirty or newly generated files decide over the
// shortlist ∪ {current device}. Exploration draws are aligned by
// construction (see scored.explore), so a pruned run and an exhaustive
// run of the same seed consume identical randomness, and agree on the
// chosen layout whenever the shortlist covers the argmax device.

// ChangeTracker is the optional dirty-tracking view of a TelemetryStore.
// The local *replaydb.DB implements it; a store that does not (e.g. a
// remote daemon without the extension) degrades the pruned path to
// treating every file as changed on every decision — still O(files×K).
type ChangeTracker interface {
	// Watermark returns the sequence number of the newest record.
	Watermark() uint64
	// FilesChangedSince returns IDs of files with access records appended
	// after seq, sorted ascending.
	FilesChangedSince(seq uint64) []int64
	// FileLastSeq returns the sequence number of the file's newest access
	// record, 0 if none.
	FileLastSeq(fileID int64) uint64
}

// SummarySource supplies the per-device recent-throughput digests the
// shortlist ranks; typically storagesim.(*Cluster).DeviceSummaries.
type SummarySource func() []storagesim.DeviceSummary

// SetSummarySource installs the device-summary provider the pruned path
// builds shortlists from. Without one, pruning still skips clean files
// but shortlists every device.
func (e *Engine) SetSummarySource(src SummarySource) { e.summarySource = src }

// fileCache is one file's pruning state: raw feature ingredients (valid
// until the file's telemetry changes) and per-device candidate scores
// tagged with the model generation that produced them. gens[j] == 0 means
// never scored; entries are laid out in e.devices index order.
type fileCache struct {
	size      int64
	featValid bool         //geomancy:ephemeral feature-cache validity bit, recomputed from telemetry after restore
	feat      fileFeatures //geomancy:ephemeral raw feature ingredients, recomputed from telemetry after restore
	scores    []float64
	gens      []uint64
}

// invalidate drops everything derived from the file's telemetry.
func (fc *fileCache) invalidate() {
	fc.featValid = false
	for i := range fc.gens {
		fc.gens[i] = 0
	}
}

// ensureCache returns the file's cache entry, creating or resetting it if
// the device width or the file's size changed.
func (e *Engine) ensureCache(f FileMeta) *fileCache {
	ent, ok := e.cache[f.ID]
	if !ok || len(ent.gens) != len(e.devices) {
		ent = &fileCache{
			size:   f.Size,
			scores: make([]float64, len(e.devices)),
			gens:   make([]uint64, len(e.devices)),
		}
		e.cache[f.ID] = ent
	} else if ent.size != f.Size {
		ent.size = f.Size
		ent.invalidate()
	}
	return ent
}

// fullRescanDue reports whether the next decision must run the exhaustive
// pass: always the first, then every FullRescanEvery-th.
func (e *Engine) fullRescanDue() bool {
	if e.decisionCount == 0 {
		return true
	}
	return e.cfg.FullRescanEvery > 0 && e.decisionCount%uint64(e.cfg.FullRescanEvery) == 0
}

// refreshCacheFull records an exhaustive pass's full-width scores and
// advances the dirty watermark. The cache is rebuilt from this file list,
// so entries for files that left the working set are dropped here —
// full rescans bound both pruning error and cache growth.
func (e *Engine) refreshCacheFull(files []FileMeta, scores [][]float64) {
	next := make(map[int64]*fileCache, len(files))
	for i, f := range files {
		ent := e.ensureCache(f)
		copy(ent.scores, scores[i])
		for j := range ent.gens {
			ent.gens[j] = e.modelGen
		}
		next[f.ID] = ent
	}
	e.cache = next
	if e.tracker != nil {
		e.lastWatermark = e.tracker.Watermark()
	}
}

// deviceShortlist returns the sorted device indices a pruned decision
// scores dirty files against: the top-K devices per device class by
// recent effective throughput, skipping devices no move could target
// (unavailable or read-only). Ties break toward profile order, and the
// result is ascending by device index, so shortlists are deterministic.
// Without a summary source every device is shortlisted.
func (e *Engine) deviceShortlist() []int {
	if e.summarySource == nil {
		out := make([]int, len(e.devices))
		for i := range out {
			out[i] = i
		}
		return out
	}
	type ranked struct {
		idx int
		tp  float64
	}
	byClass := make(map[string][]ranked)
	var classes []string
	for _, s := range e.summarySource() {
		j, ok := e.devIndex[s.Name]
		if !ok || !s.Available || s.ReadOnly {
			continue
		}
		if _, seen := byClass[s.Class]; !seen {
			classes = append(classes, s.Class)
		}
		byClass[s.Class] = append(byClass[s.Class], ranked{j, s.RecentThroughput})
	}
	var out []int
	for _, cls := range classes {
		rs := byClass[cls]
		sort.SliceStable(rs, func(a, b int) bool { return rs[a].tp > rs[b].tp })
		n := e.cfg.TopK
		if n > len(rs) {
			n = len(rs)
		}
		for _, r := range rs[:n] {
			out = append(out, r.idx)
		}
	}
	sort.Ints(out)
	return out
}

// scoreTask is one file's pending inference work: the device indices to
// score (ascending) and where its rows start in the batch.
type scoreTask struct {
	file int
	ent  *fileCache
	devs []int
	base int
}

// proposePruned is the pruned counterpart of the exhaustive body of
// ProposeLayoutContext: dirty-set invalidation, shortlist construction,
// one batched inference over only the missing (file, device) rows, then
// the same serial ε-greedy selection.
func (e *Engine) proposePruned(ctx context.Context, files []FileMeta, checker *agents.ActionChecker, valid agents.Validator) (map[int64]string, []Decision, error) {
	// Dirty set: drop caches of files whose telemetry moved past the last
	// scoring watermark. Without a ChangeTracker nothing can be trusted
	// across decisions; the shortlist still prunes the device axis.
	if e.tracker != nil {
		for _, id := range e.tracker.FilesChangedSince(e.lastWatermark) {
			if ent, ok := e.cache[id]; ok {
				ent.invalidate()
			}
		}
		e.lastWatermark = e.tracker.Watermark()
	} else {
		for _, ent := range e.cache {
			ent.invalidate()
		}
	}

	short := e.deviceShortlist()

	// Work list: per file, the shortlist ∪ {current device} entries not
	// yet scored under the current model generation.
	entries := make([]*fileCache, len(files))
	tasks := make([]scoreTask, 0, len(files))
	total := 0
	for i, f := range files {
		ent := e.ensureCache(f)
		entries[i] = ent
		var need []int
		cur, curOK := e.devIndex[f.Device]
		curListed := false
		for _, j := range short {
			if curOK && j == cur {
				curListed = true
			}
			if ent.gens[j] != e.modelGen {
				need = append(need, j)
			}
		}
		if curOK && !curListed && ent.gens[cur] != e.modelGen {
			pos := sort.SearchInts(need, cur)
			need = append(need, 0)
			copy(need[pos+1:], need[pos:])
			need[pos] = cur
		}
		if len(need) > 0 {
			tasks = append(tasks, scoreTask{file: i, ent: ent, devs: need, base: total})
			total += len(need)
		}
	}
	if total > 0 {
		if err := e.scoreSubset(ctx, files, tasks, total); err != nil {
			return nil, nil, err
		}
	}

	// Prepared decision material: candidates are every device scored
	// under the current generation — the full width for clean files still
	// carrying an exhaustive pass, the shortlist for freshly scored ones.
	// explore stays nil; selectLayout widens it to the full device list
	// only for the ε fraction of files that actually explore.
	pre := make([]scored, len(files))
	err := parallelFor(ctx, len(files), e.cfg.Parallelism, func(i int) {
		f := files[i]
		ent := entries[i]
		d := Decision{FileID: f.ID, Current: f.Device, Predictions: make(map[string]float64, len(short)+1)}
		cands := make([]agents.Candidate, 0, len(short)+1)
		for j, dev := range e.devices {
			if ent.gens[j] != e.modelGen {
				continue
			}
			p := ent.scores[j]
			d.Predictions[dev] = p
			cands = append(cands, agents.Candidate{Device: dev, Predicted: e.betterScore(p)})
		}
		pre[i] = scored{d: d, cands: cands, passing: checker.Filter(cands, f.Size, valid)}
	})
	if err != nil {
		return nil, nil, err
	}
	return e.selectLayout(files, pre, checker, valid)
}

// scoreSubset runs one batched inference over the tasks' (file, device)
// rows and writes denormalized, MAE-adjusted scores into the file caches.
// Each row's arithmetic is identical to the exhaustive pass's, so a score
// computed here is bit-identical to the same pairing's exhaustive score.
func (e *Engine) scoreSubset(ctx context.Context, files []FileMeta, tasks []scoreTask, total int) error {
	cols := e.net.InSize
	recurrent := e.net.IsRecurrent()
	var flat *mat.Matrix
	var seq []*mat.Matrix
	w := 1
	if recurrent {
		w = e.net.Window
		seq = e.seqBufs(w, total, cols)
	} else {
		flat = e.flatBuf(total, cols)
	}

	// Assemble the missing candidate rows; nothing here consumes e.rng.
	// Tasks touch disjoint cache entries, so the fan-out is race-free.
	err := parallelFor(ctx, len(tasks), e.cfg.Parallelism, func(ti int) {
		t := tasks[ti]
		f := files[t.file]
		if !t.ent.featValid {
			t.ent.feat = e.gatherFileFeatures(f, recurrent)
			t.ent.featValid = true
		}
		ff := t.ent.feat
		var hist [][]float64
		if recurrent {
			hist = make([][]float64, len(ff.hist))
			for k, raw := range ff.hist {
				nrm := make([]float64, len(raw))
				for c, v := range raw {
					nrm[c] = e.featScaler.TransformValue(c, v)
				}
				hist[k] = nrm
			}
		}
		for k, j := range t.devs {
			norm := e.candidateRow(ff, f.ID, j)
			r := t.base + k
			if !recurrent {
				flat.SetRow(r, norm)
				continue
			}
			need := w - 1
			for x := 0; x < need; x++ {
				if h := len(hist) - need + x; h >= 0 {
					seq[x].SetRow(r, hist[h])
				} else {
					seq[x].SetRow(r, norm)
				}
			}
			seq[need].SetRow(r, norm)
		}
	})
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	start := time.Now() //geomancy:nondeterministic telemetry timestamp: inference duration is reported, never fed back into decisions
	e.scratch.Parallelism = e.cfg.Parallelism
	out := e.net.ForwardBatch(flat, seq, &e.scratch)
	e.metrics.inferSeconds.Set(time.Since(start).Seconds()) //geomancy:nondeterministic telemetry timestamp: inference duration is reported, never fed back into decisions
	e.metrics.inferBatch.Observe(float64(total))

	return parallelFor(ctx, len(tasks), e.cfg.Parallelism, func(ti int) {
		t := tasks[ti]
		for k, j := range t.devs {
			raw := DecodeTarget(e.targetScaler.Inverse(clamp01(out.At(t.base+k, 0))))
			t.ent.scores[j] = nn.AdjustPrediction(raw, e.valMetrics)
			t.ent.gens[j] = e.modelGen
		}
	})
}
