package core

import (
	"context"
	"errors"
	"fmt"

	"geomancy/internal/agents"
	"geomancy/internal/policy"
	"geomancy/internal/replaydb"
	"geomancy/internal/storagesim"
	"geomancy/internal/telemetry"
	"geomancy/internal/trace"
	"geomancy/internal/workload"
)

// MovementEvent records one layout application for Fig. 5's movement bars:
// how many files moved, aligned to the global access index.
type MovementEvent struct {
	AccessIndex int64
	Moved       int
	Run         int
	// Random counts exploration decisions in the applied layout.
	Random int
}

// SkippedDecision records one decision cycle the loop served in degraded
// mode: agents were unreachable (or telemetry was not yet queryable), so
// the last-known layout was kept instead of aborting the run.
type SkippedDecision struct {
	Run    int
	Reason string
}

// LayoutPusher applies a layout through the distributed control plane
// (agents.Daemon.PushLayout); the loop falls back to the in-process
// Workload.ApplyLayout when none is installed.
type LayoutPusher interface {
	PushLayout(layout map[int64]string) (int, error)
}

// Workload is the loop's view of the driven workload: the minimal
// surface the decide-and-move cycle needs. *workload.Runner and every
// scenario in internal/scenario satisfy it; the full scenario-plane
// contract (naming, checkpoint marshaling) lives in scenario.Workload,
// which embeds the same methods.
type Workload interface {
	// Files returns the working set the engine lays out.
	Files() []trace.BelleFile
	// ApplyLayout re-homes files per the layout, returning the moves.
	ApplyLayout(layout map[int64]string) ([]storagesim.MoveResult, error)
	// RunOnceContext executes one workload run, reporting every access
	// to obs.
	RunOnceContext(ctx context.Context, obs workload.Observer) (workload.RunStats, error)
}

// Loop wires the full Geomancy closed loop in-process: workload runs feed
// telemetry into the ReplayDB; every decision cycle the installed Policy
// proposes a layout from a fresh telemetry snapshot, the proposal passes
// the movement scheduler, and the moves are applied with their overhead
// charged to the virtual clock. With the default geomancy policy a cycle
// is the paper's retrain + ε-greedy proposal; baselines decide from the
// same snapshot with no engine at all (Engine stays nil).
//
// The distributed deployment (monitoring/control agents over TCP) lives in
// package agents and cmd/geomancy; Loop is the direct-coupled equivalent
// the experiments use, with identical decision logic.
type Loop struct {
	// Policy decides layouts. NewNamedLoop installs a catalogue policy;
	// NewPolicyLoop accepts any implementation.
	//geomancy:ephemeral serialized separately as the checkpoint's policy blob (Snapshot.Policy)
	Policy policy.Policy
	// Engine is the DRL engine behind an engine-backed Policy; nil when
	// the policy is a baseline heuristic.
	//geomancy:ephemeral snapshots itself as Snapshot.Engine (EngineState)
	Engine *Engine
	// Workload is the driven workload (the paper's BELLE II runner by
	// default; any scenario.Workload otherwise).
	//geomancy:ephemeral snapshots itself as the checkpoint's workload blob
	Workload Workload
	DB       *replaydb.DB          //geomancy:ephemeral external store handle, re-wired at restore
	Cluster  *storagesim.Cluster   //geomancy:ephemeral snapshots itself as Snapshot.Cluster (ClusterState)
	Checker  *agents.ActionChecker //geomancy:ephemeral stateless wiring over the shared RNG, rebuilt at construction

	// model is the policy-plane bridge of an engine-backed policy; its
	// training reports drain into trainLog after every proposal.
	//geomancy:ephemeral rebuilt by loop construction; pending reports drain into the serialized trainLog
	model *EngineModel
	// decideEvery is the decision cadence in runs (CooldownRuns for
	// constructed loops); ≤ 0 disables the automatic cadence, leaving
	// decisions to explicit Decide calls.
	//geomancy:ephemeral construction config (CooldownRuns), re-supplied on rebuild
	decideEvery int
	// lastRun is the index of the last completed workload run, so
	// out-of-cadence Decide calls attribute their movement events.
	lastRun int

	accessCount int64
	movements   []MovementEvent
	trainLog    []TrainReport
	deferrals   []Deferral
	skipped     []SkippedDecision
	// lastAccess / accesses feed the policy snapshot's per-file recency
	// and frequency (the view the paper's base cases decide from).
	lastAccess map[int64]float64
	accesses   map[int64]int64
	// Observer, when set, additionally receives every access.
	Observer workload.Observer
	// Recorder, when set, replaces the direct ReplayDB append on the
	// telemetry path — the distributed deployment routes every access
	// through its monitoring agents instead.
	Recorder func(res storagesim.AccessResult, wl, run int) error
	// Pusher, when set, applies decided layouts through the distributed
	// control plane instead of Runner.ApplyLayout.
	//geomancy:ephemeral deployment wiring, re-installed on rebuild
	Pusher LayoutPusher
	// Flusher, when set, drains buffered telemetry (the monitoring agents'
	// partial batches) after every run, so each run's accesses are fully
	// queryable before the engine's next decision.
	Flusher func() error
	// FailOpen keeps the loop alive through agent outages: when the
	// daemon or a control agent is unreachable during a decision cycle,
	// the loop keeps serving the last-known layout, records the cycle in
	// Skipped, and counts it on the degraded-decisions metric instead of
	// returning an error.
	//geomancy:ephemeral operator config, re-supplied on rebuild
	FailOpen bool
	// Scheduler, when set, gates movements on predicted access gaps (the
	// paper's §X extension). Use EnableGapScheduling to install one wired
	// to the loop's telemetry.
	Scheduler *MoveScheduler

	// metrics instrumentation, installed by SetMetrics; all handles no-op
	// while nil.
	metricsObs   workload.Observer
	movesCtr     *telemetry.Counter //geomancy:ephemeral telemetry counter, re-registered by SetMetrics
	movedBytes   *telemetry.Counter //geomancy:ephemeral telemetry counter, re-registered by SetMetrics
	deferralsCtr *telemetry.Counter //geomancy:ephemeral telemetry counter, re-registered by SetMetrics
	exploreCtr   *telemetry.Counter //geomancy:ephemeral telemetry counter, re-registered by SetMetrics
	degradedCtr  *telemetry.Counter //geomancy:ephemeral telemetry counter, re-registered by SetMetrics
}

// SetMetrics wires the loop (and its engine, when the policy has one) to
// report through reg: per-device access histograms on every recorded
// access, movement / deferral / exploration counters on every layout
// application, and the engine's training gauges. Counters are
// pre-registered so they export at zero before the first decision.
func (l *Loop) SetMetrics(reg *telemetry.Registry) {
	l.metricsObs = workload.MetricsObserver(reg)
	l.movesCtr = reg.Counter(telemetry.MetricMovementsTotal)
	l.movedBytes = reg.Counter(telemetry.MetricMovedBytesTotal)
	l.deferralsCtr = reg.Counter(telemetry.MetricDeferralsTotal)
	l.exploreCtr = reg.Counter(telemetry.MetricExplorationTotal)
	l.degradedCtr = reg.Counter(telemetry.MetricAgentDegradedTotal)
	if l.Engine != nil {
		l.Engine.SetMetrics(reg)
	}
	// Policies carrying their own instrumentation (the sharded
	// coordinator's per-shard counters) register on the same registry.
	if pm, ok := l.Policy.(interface{ SetMetrics(*telemetry.Registry) }); ok {
		pm.SetMetrics(reg)
	}
}

// NewLoop assembles a geomancy-policy loop over an existing
// cluster/runner/db.
func NewLoop(db *replaydb.DB, cluster *storagesim.Cluster, runner Workload, cfg Config) (*Loop, error) {
	return NewLoopWithStore(db, db, cluster, runner, cfg)
}

// NewLoopWithStore assembles a geomancy-policy loop whose engine trains
// through store — e.g. an agents.RemoteStore, preserving the paper's
// decoupling where "the DRL engine requests training data from the
// ReplayDB via the Interface Daemon" (§V-E) — while movement records
// still persist to db.
func NewLoopWithStore(store TelemetryStore, db *replaydb.DB, cluster *storagesim.Cluster, runner Workload, cfg Config) (*Loop, error) {
	return NewNamedLoop(store, db, cluster, runner, "geomancy", cfg)
}

// NewNamedLoop assembles a loop driven by the named placement policy
// from the catalogue (policy.Catalogue; the empty name selects
// "geomancy"). Engine-backed names build the DRL engine from cfg exactly
// as NewLoopWithStore always has; baseline names run engine-free, with
// any stochastic streams derived from cfg.Seed. The decision cadence is
// cfg.CooldownRuns either way.
func NewNamedLoop(store TelemetryStore, db *replaydb.DB, cluster *storagesim.Cluster, runner Workload, name string, cfg Config) (*Loop, error) {
	l := &Loop{
		Workload:    runner,
		DB:          db,
		Cluster:     cluster,
		decideEvery: cfg.withDefaults().CooldownRuns,
		lastRun:     -1,
		lastAccess:  make(map[int64]float64),
		accesses:    make(map[int64]int64),
	}
	var model *EngineModel
	if EngineBacked(name) {
		engine, err := NewEngine(store, cluster.DeviceNames(), cfg)
		if err != nil {
			return nil, err
		}
		model = engine.NewModel(cluster)
	}
	p, err := NewCataloguePolicy(name, model, cfg.Seed)
	if err != nil {
		return nil, err
	}
	l.Policy = p
	l.SetModel(model)
	return l, nil
}

// NewPolicyLoop assembles an engine-free loop driven by p, deciding
// every decideEvery runs (≤ 0 disables the automatic cadence; callers
// then drive decisions with Decide). For an engine-backed policy, attach
// its bridge with SetModel so training reports reach the TrainLog.
func NewPolicyLoop(db *replaydb.DB, cluster *storagesim.Cluster, runner Workload, p policy.Policy, decideEvery int) *Loop {
	return &Loop{
		Policy:      p,
		Workload:    runner,
		DB:          db,
		Cluster:     cluster,
		decideEvery: decideEvery,
		lastRun:     -1,
		lastAccess:  make(map[int64]float64),
		accesses:    make(map[int64]int64),
	}
}

// SetModel installs the engine bridge behind the loop's policy: its
// training reports drain into the TrainLog after every proposal, and its
// engine/checker surface on the Engine/Checker fields for inspection and
// checkpointing. NewNamedLoop installs the bridge automatically; a nil
// model detaches (baseline policies).
func (l *Loop) SetModel(m *EngineModel) {
	l.model = m
	if m != nil {
		l.Engine = m.Engine
		l.Checker = m.Checker
	}
}

// Skipped returns every decision cycle served in degraded mode.
func (l *Loop) Skipped() []SkippedDecision {
	return append([]SkippedDecision(nil), l.skipped...)
}

// degradable reports whether err is an outage the loop may fail open on:
// unreachable agents, or an engine window that came back empty because
// the remote store could not serve it.
func degradable(err error) bool {
	return errors.Is(err, agents.ErrUnavailable) || errors.Is(err, ErrNoTelemetry)
}

// noteDegraded records one fail-open cycle.
func (l *Loop) noteDegraded(run int, err error) {
	l.skipped = append(l.skipped, SkippedDecision{Run: run, Reason: err.Error()})
	l.degradedCtr.Inc()
}

// EnableGapScheduling installs a gap-aware movement scheduler fed by the
// loop's own telemetry and returns its predictor for inspection.
func (l *Loop) EnableGapScheduling() *GapPredictor {
	g := NewGapPredictor()
	l.Scheduler = NewMoveScheduler(g)
	return g
}

// Deferrals returns every move the scheduler postponed.
func (l *Loop) Deferrals() []Deferral { return append([]Deferral(nil), l.deferrals...) }

// AccessCount returns the total accesses observed by the loop.
func (l *Loop) AccessCount() int64 { return l.accessCount }

// Movements returns the layout-application history.
func (l *Loop) Movements() []MovementEvent {
	return append([]MovementEvent(nil), l.movements...)
}

// TrainLog returns every training report the loop produced.
func (l *Loop) TrainLog() []TrainReport {
	return append([]TrainReport(nil), l.trainLog...)
}

// SeedHeat preloads the per-file recency/frequency bookkeeping from
// accesses observed before the loop took over (the experiment harness's
// bootstrap phase records telemetry without a loop).
func (l *Loop) SeedHeat(lastAccess map[int64]float64, accesses map[int64]int64) {
	if l.lastAccess == nil {
		l.lastAccess = make(map[int64]float64, len(lastAccess))
	}
	if l.accesses == nil {
		l.accesses = make(map[int64]int64, len(accesses))
	}
	for id, t := range lastAccess {
		l.lastAccess[id] = t
	}
	for id, n := range accesses {
		l.accesses[id] = n
	}
}

// record stores telemetry from one access: through the Recorder (the
// distributed monitoring agents) when installed, directly into the
// ReplayDB otherwise.
func (l *Loop) record(res storagesim.AccessResult, wl, run int) error {
	l.accessCount++
	if l.lastAccess == nil {
		l.lastAccess = make(map[int64]float64)
		l.accesses = make(map[int64]int64)
	}
	l.lastAccess[res.FileID] = res.End
	l.accesses[res.FileID]++
	if l.metricsObs != nil {
		l.metricsObs(res, wl, run)
	}
	if l.Scheduler != nil && l.Scheduler.Gaps != nil {
		l.Scheduler.Gaps.Observe(res.FileID, res.Start)
	}
	if l.Recorder != nil {
		return l.Recorder(res, wl, run)
	}
	_, err := l.DB.AppendAccess(replaydb.AccessRecord{
		Time:         res.Start,
		Workload:     int32(wl),
		Run:          int32(run),
		FileID:       res.FileID,
		Path:         res.Path,
		Device:       res.Device,
		BytesRead:    res.BytesRead,
		BytesWritten: res.BytesWritten,
		OpenTS:       res.OpenTS,
		OpenTMS:      res.OpenTMS,
		CloseTS:      res.CloseTS,
		CloseTMS:     res.CloseTMS,
		Throughput:   res.Throughput,
	})
	return err
}

// policyThroughputWindow is the per-device telemetry window the loop
// averages into the policy snapshot's device throughput — the recency
// window the paper's base cases read from the ReplayDB.
const policyThroughputWindow = 200

// policyState snapshots the system the way policies decide on it: mean
// device throughput over recent ReplayDB telemetry, free capacity and
// hardware class per device, and the working set with its current
// placement, recency, and access counts.
func (l *Loop) policyState() policy.State {
	var s policy.State
	for _, name := range l.Cluster.DeviceNames() {
		recent := l.DB.RecentByDevice(name, policyThroughputWindow)
		var tp float64
		if len(recent) > 0 {
			for i := range recent {
				tp += recent[i].Throughput
			}
			tp /= float64(len(recent))
		}
		dev := l.Cluster.Device(name)
		s.Devices = append(s.Devices, policy.DeviceInfo{
			Name:       name,
			Throughput: tp,
			Free:       dev.Free(),
			Class:      dev.Profile.Class,
		})
	}
	layout := l.Cluster.Layout()
	for _, f := range l.Workload.Files() {
		s.Files = append(s.Files, policy.FileInfo{
			ID:         f.ID,
			Path:       f.Path,
			Size:       f.Size,
			Device:     layout[f.ID],
			LastAccess: l.lastAccess[f.ID],
			Accesses:   l.accesses[f.ID],
		})
	}
	return s
}

// shouldDecide reports whether the cadence calls for a decision after
// the given workload run (runs are 0-based; the first decision happens
// after the first decideEvery runs).
func (l *Loop) shouldDecide(run int) bool {
	return l.decideEvery > 0 && (run+1)%l.decideEvery == 0
}

// Decide forces one decision cycle immediately, outside the automatic
// cadence — the experiment harness uses it for the initial placement at
// measurement start. The cycle is attributed to the last completed run.
func (l *Loop) Decide(ctx context.Context) error {
	if l.Policy == nil {
		return fmt.Errorf("core: loop has no policy")
	}
	return l.decideCycle(ctx, l.lastRun)
}

// decideCycle runs one full decision: snapshot the system, ask the
// policy, filter the proposal through the movement scheduler, apply it,
// and record the movements.
func (l *Loop) decideCycle(ctx context.Context, run int) error {
	layout, err := l.Policy.Propose(ctx, l.policyState())
	if l.model != nil {
		l.trainLog = append(l.trainLog, l.model.Reports()...)
	}
	if err != nil {
		return fmt.Errorf("core: proposing layout: %w", err)
	}
	if layout == nil {
		return nil
	}
	if l.Scheduler != nil {
		current := l.Cluster.Layout()
		sizes := make(map[int64]int64, len(l.Workload.Files()))
		for _, f := range l.Workload.Files() {
			sizes[f.ID] = f.Size
		}
		readBW := make(map[string]float64)
		writeBW := make(map[string]float64)
		for _, name := range l.Cluster.DeviceNames() {
			p := l.Cluster.Device(name).Profile
			readBW[name] = p.ReadBW
			writeBW[name] = p.WriteBW
		}
		est := ClusterMoveEstimator(sizes, current, readBW, writeBW)
		var deferred []Deferral
		layout, deferred = l.Scheduler.Filter(layout, current, est)
		l.deferrals = append(l.deferrals, deferred...)
		l.deferralsCtr.Add(uint64(len(deferred)))
	}
	moves, err := l.applyLayout(layout)
	if err != nil {
		return fmt.Errorf("core: applying layout: %w", err)
	}
	randomCount := 0
	if ex, ok := l.Policy.(policy.Explorer); ok {
		randomCount = ex.LastExplored()
	}
	l.movesCtr.Add(uint64(len(moves)))
	l.exploreCtr.Add(uint64(randomCount))
	for _, mv := range moves {
		l.movedBytes.Add(uint64(mv.Bytes))
		if _, err := l.DB.AppendMovement(replaydb.MovementRecord{
			Time:        mv.Start,
			FileID:      mv.FileID,
			From:        mv.From,
			To:          mv.To,
			Bytes:       mv.Bytes,
			Duration:    mv.Duration,
			AccessIndex: l.accessCount,
		}); err != nil {
			return fmt.Errorf("core: recording movement: %w", err)
		}
	}
	l.movements = append(l.movements, MovementEvent{
		AccessIndex: l.accessCount,
		Moved:       len(moves),
		Run:         run,
		Random:      randomCount,
	})
	return nil
}

// applyLayout re-homes files: through the control plane when a Pusher is
// installed (the movements materialize as cluster-layout changes made by
// the control agents' movers), via the Runner otherwise.
func (l *Loop) applyLayout(layout map[int64]string) ([]storagesim.MoveResult, error) {
	if l.Pusher == nil {
		return l.Workload.ApplyLayout(layout)
	}
	before := l.Cluster.Layout()
	if _, err := l.Pusher.PushLayout(layout); err != nil {
		return nil, err
	}
	// The agents applied the moves remotely; reconstruct the movement
	// records from the observable layout change.
	after := l.Cluster.Layout()
	var moves []storagesim.MoveResult
	for _, f := range l.Workload.Files() {
		if before[f.ID] != after[f.ID] {
			moves = append(moves, storagesim.MoveResult{
				FileID: f.ID,
				From:   before[f.ID],
				To:     after[f.ID],
				Bytes:  f.Size,
				Start:  l.Cluster.Now(),
			})
		}
	}
	return moves, nil
}

// RunOnce executes one workload run and, when the cadence allows, one
// full decide-and-move cycle. It returns the run statistics.
func (l *Loop) RunOnce() (workload.RunStats, error) {
	return l.RunOnceContext(context.Background())
}

// RunOnceContext is RunOnce with cancellation: ctx is checked between
// workload accesses, between training epochs, and between candidate-scoring
// batches. A cancelled cycle returns ctx.Err() (possibly wrapped) promptly
// without applying a partial layout.
func (l *Loop) RunOnceContext(ctx context.Context) (workload.RunStats, error) {
	var obsErr error
	stats, err := l.Workload.RunOnceContext(ctx, func(res storagesim.AccessResult, wl, run int) {
		if e := l.record(res, wl, run); e != nil && obsErr == nil {
			obsErr = e
		}
		if l.Observer != nil {
			l.Observer(res, wl, run)
		}
	})
	if err != nil {
		return stats, err
	}
	l.lastRun = stats.Run
	if obsErr != nil {
		// Telemetry could not reach the daemon. In fail-open mode the
		// monitors retain the unacked batch (replayed on the next flush),
		// so nothing is lost — skip this cycle's decision and keep
		// serving the last-known layout.
		if l.FailOpen && degradable(obsErr) {
			l.noteDegraded(stats.Run, obsErr)
			return stats, nil
		}
		return stats, fmt.Errorf("core: recording telemetry: %w", obsErr)
	}
	if l.Flusher != nil {
		if err := l.Flusher(); err != nil {
			if l.FailOpen && degradable(err) {
				l.noteDegraded(stats.Run, err)
				return stats, nil
			}
			return stats, fmt.Errorf("core: flushing telemetry: %w", err)
		}
	}
	if l.Policy == nil || !l.shouldDecide(stats.Run) {
		return stats, nil
	}
	if err := l.decideCycle(ctx, stats.Run); err != nil {
		if l.FailOpen && degradable(err) {
			l.noteDegraded(stats.Run, err)
			return stats, nil
		}
		return stats, err
	}
	return stats, nil
}
