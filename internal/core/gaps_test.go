package core

import (
	"math"
	"testing"

	"geomancy/internal/replaydb"
	"geomancy/internal/storagesim"
	"geomancy/internal/trace"
	"geomancy/internal/workload"
)

func TestGapPredictorLearnsRegularGaps(t *testing.T) {
	g := NewGapPredictor()
	for i := 0; i < 20; i++ {
		g.Observe(1, float64(i)*10) // perfectly regular 10s gaps
	}
	mean, dev, ok := g.PredictGap(1)
	if !ok {
		t.Fatal("no prediction after 20 observations")
	}
	if math.Abs(mean-10) > 0.5 {
		t.Errorf("mean gap = %v, want ~10", mean)
	}
	if dev > 3 {
		t.Errorf("dev = %v, want small for regular gaps", dev)
	}
	last, ok := g.LastAccess(1)
	if !ok || last != 190 {
		t.Errorf("last access = %v, want 190", last)
	}
}

func TestGapPredictorUnknownFile(t *testing.T) {
	g := NewGapPredictor()
	if _, _, ok := g.PredictGap(42); ok {
		t.Error("unknown file should not predict")
	}
	if _, ok := g.LastAccess(42); ok {
		t.Error("unknown file should have no last access")
	}
	// One observation: still no gap (need two accesses for one gap).
	g.Observe(1, 5)
	if _, _, ok := g.PredictGap(1); ok {
		t.Error("single observation has no gap yet")
	}
}

func TestGapPredictorAdaptsToChange(t *testing.T) {
	g := NewGapPredictor()
	for i := 0; i < 30; i++ {
		g.Observe(1, float64(i)) // 1s gaps
	}
	// Gaps widen 100×.
	for i := 0; i < 30; i++ {
		g.Observe(1, 30+float64(i)*100)
	}
	mean, _, _ := g.PredictGap(1)
	if mean < 50 {
		t.Errorf("mean gap = %v, should have adapted toward 100", mean)
	}
}

func TestGapPredictorNonMonotoneTime(t *testing.T) {
	g := NewGapPredictor()
	g.Observe(1, 10)
	g.Observe(1, 5) // clock skew: treat as zero gap, don't go negative
	mean, _, ok := g.PredictGap(1)
	if !ok || mean < 0 {
		t.Errorf("mean = %v after skew, want ≥ 0", mean)
	}
}

func TestGapPredictorFiles(t *testing.T) {
	g := NewGapPredictor()
	g.Observe(3, 1)
	g.Observe(1, 1)
	g.Observe(2, 1)
	ids := g.Files()
	if len(ids) != 3 || ids[0] != 1 || ids[2] != 3 {
		t.Errorf("Files = %v", ids)
	}
}

func TestMoveSchedulerFilter(t *testing.T) {
	g := NewGapPredictor()
	// File 1: long 100s gaps. File 2: hot, 0.1s gaps. File 3: no history.
	for i := 0; i < 10; i++ {
		g.Observe(1, float64(i)*100)
		g.Observe(2, float64(i)*0.1)
	}
	s := NewMoveScheduler(g)

	current := map[int64]string{1: "a", 2: "a", 3: "a", 4: "a"}
	layout := map[int64]string{1: "b", 2: "b", 3: "b", 4: "a"}
	estimate := func(fileID int64, dst string) float64 { return 10 } // 10s move

	approved, deferred := s.Filter(layout, current, estimate)

	if approved[1] != "b" {
		t.Error("file 1 (idle 100s, move 10s) should be approved")
	}
	if _, ok := approved[2]; ok {
		t.Error("file 2 (hot) should be deferred")
	}
	if approved[3] != "b" {
		t.Error("file 3 (no history) should be allowed")
	}
	if approved[4] != "a" {
		t.Error("file 4 (no move) should pass through")
	}
	if len(deferred) != 1 || deferred[0].FileID != 2 {
		t.Fatalf("deferred = %+v", deferred)
	}
	if !deferred[0].Hot {
		t.Error("file 2 should be flagged hot (never idle long enough)")
	}
}

func TestMoveSchedulerHeadroom(t *testing.T) {
	g := NewGapPredictor()
	for i := 0; i < 10; i++ {
		g.Observe(1, float64(i)*12) // 12s gaps, low dev
	}
	s := NewMoveScheduler(g)
	current := map[int64]string{1: "a"}
	layout := map[int64]string{1: "b"}
	// 10s move × 1.5 headroom = 15s > 12s gap → deferred.
	_, deferred := s.Filter(layout, current, func(int64, string) float64 { return 10 })
	if len(deferred) != 1 {
		t.Fatalf("deferred = %+v, want the tight-window move postponed", deferred)
	}
	if deferred[0].Hot {
		t.Error("a merely tight window is not 'hot'")
	}
	// Lower headroom approves it.
	s.Headroom = 1.0
	approved, deferred := s.Filter(layout, current, func(int64, string) float64 { return 10 })
	if len(deferred) != 0 || approved[1] != "b" {
		t.Errorf("approved=%v deferred=%v with headroom 1.0", approved, deferred)
	}
}

func TestClusterMoveEstimator(t *testing.T) {
	sizes := map[int64]int64{1: 1e9}
	current := map[int64]string{1: "src"}
	readBW := map[string]float64{"src": 2e9}
	writeBW := map[string]float64{"dst": 1e9}
	est := ClusterMoveEstimator(sizes, current, readBW, writeBW)
	// min(2 GB/s, 1 GB/s) = 1 GB/s → 1 s.
	if got := est(1, "dst"); math.Abs(got-1) > 1e-9 {
		t.Errorf("estimate = %v, want 1", got)
	}
	if got := est(1, "unknown"); !math.IsInf(got, 1) {
		t.Errorf("unknown destination estimate = %v, want +Inf", got)
	}
	if got := est(99, "dst"); got != 0 {
		// unknown file has size 0 → instant move; acceptable but defined
		t.Logf("unknown file estimate = %v", got)
	}
}

func TestLoopWithGapScheduling(t *testing.T) {
	cluster := storagesim.NewBluesky(21)
	files := trace.BelleFileSet(21)
	runner := workload.NewRunner(cluster, files, 1, 21)
	if err := runner.SpreadEvenly(cluster.DeviceNames()); err != nil {
		t.Fatal(err)
	}
	db, _ := replaydb.Open(replaydb.Options{})
	defer db.Close()

	loop, err := NewLoop(db, cluster, runner, Config{Epochs: 5, WindowX: 400, CooldownRuns: 2, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	gaps := loop.EnableGapScheduling()
	for i := 0; i < 4; i++ {
		if _, err := loop.RunOnce(); err != nil {
			t.Fatal(err)
		}
	}
	// The predictor saw every file.
	if got := len(gaps.Files()); got != len(files) {
		t.Errorf("gap model tracked %d files, want %d", got, len(files))
	}
	// Deferral bookkeeping is consistent: the BELLE II pattern accesses
	// each file in a tight burst then leaves it idle for a long stretch,
	// so most moves are approvable; whatever was deferred is recorded.
	for _, d := range loop.Deferrals() {
		if d.FileID == 0 || d.Dst == "" {
			t.Errorf("malformed deferral %+v", d)
		}
	}
	if len(loop.Movements()) == 0 {
		t.Error("gap scheduling blocked every movement")
	}
}

func TestGapPredictorBurstyReleaseGaps(t *testing.T) {
	g := NewGapPredictor()
	// Bursts of 15 accesses 0.5s apart, then 600s idle — the BELLE II
	// shape. The usable window is the 600s release gap.
	tm := 0.0
	for burst := 0; burst < 6; burst++ {
		for i := 0; i < 15; i++ {
			g.Observe(1, tm)
			tm += 0.5
		}
		tm += 600
	}
	mean, dev, ok := g.PredictGap(1)
	if !ok {
		t.Fatal("no prediction")
	}
	if mean < 300 {
		t.Errorf("release-gap mean = %v, want ~600 (not the 0.5s cadence)", mean)
	}
	cad, _, ok := g.Cadence(1)
	if !ok || cad > 5 {
		t.Errorf("cadence = %v, want ~0.5", cad)
	}
	// A 60s move (×1.5 headroom = 90s) fits in the 600s release window.
	s := NewMoveScheduler(g)
	approved, deferred := s.Filter(map[int64]string{1: "b"}, map[int64]string{1: "a"},
		func(int64, string) float64 { return 60 })
	if len(deferred) != 0 || approved[1] != "b" {
		t.Errorf("bursty file should be movable in its release gap (deferred %+v, mean %v dev %v)", deferred, mean, dev)
	}
}

// A restored loop must keep the scheduler's configured headroom: before
// LoopState carried it, RestoreState rebuilt the scheduler through
// EnableGapScheduling and silently reverted a custom headroom to the 1.5
// default, so the restored run deferred moves the original approved.
func TestLoopStateRoundTripPreservesHeadroom(t *testing.T) {
	l := &Loop{}
	g := l.EnableGapScheduling()
	l.Scheduler.Headroom = 1.0
	for i := 0; i < 10; i++ {
		g.Observe(1, float64(i)*12) // 12s gaps, low dev
	}
	current := map[int64]string{1: "a"}
	layout := map[int64]string{1: "b"}
	estimate := func(int64, string) float64 { return 10 }
	// 10s move × 1.0 headroom = 10s < 12s window → approved.
	approved, _ := l.Scheduler.Filter(layout, current, estimate)
	if approved[1] != "b" {
		t.Fatal("original loop should approve the move at headroom 1.0")
	}

	restored := &Loop{}
	restored.RestoreState(l.State())
	if restored.Scheduler == nil {
		t.Fatal("restore did not enable gap scheduling")
	}
	if got := restored.Scheduler.Headroom; got != 1.0 {
		t.Fatalf("restored headroom = %v, want 1.0 (custom headroom lost)", got)
	}
	// Behavioral check: the restored loop must make the same call. At the
	// default 1.5 headroom this move would be deferred (15s > 12s window).
	approvedR, deferredR := restored.Scheduler.Filter(layout, current, estimate)
	if approvedR[1] != "b" || len(deferredR) != 0 {
		t.Fatalf("restored loop diverged: approved=%v deferred=%+v", approvedR, deferredR)
	}
}
