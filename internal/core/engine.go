// Package core implements Geomancy's DRL engine (§V): the component that
// re-trains a neural network on the most recent telemetry in the ReplayDB,
// predicts the throughput of every (file, storage device) pairing —
// including the "don't move" row — and proposes the data layout with the
// highest predicted throughput, exploring randomly 10% of the time.
//
// The engine treats layout optimization as unsupervised deep reinforcement
// learning with measured throughput as the reward (§V-B): it acts (moves
// data), observes the new performance, stores it, and re-trains on the
// outcome of its own actions.
package core

import (
	"context"
	"errors"
	"fmt"
	"geomancy/internal/rng"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"geomancy/internal/agents"
	"geomancy/internal/features"
	"geomancy/internal/mat"
	"geomancy/internal/nn"
	"geomancy/internal/replaydb"
	"geomancy/internal/telemetry"
)

// Sentinel errors of the engine. Callers match with errors.Is; the closed
// loop and the facade surface them unchanged (wrapped with context).
var (
	// ErrNoTelemetry reports an empty training window: the ReplayDB has
	// no access records for any candidate device yet.
	ErrNoTelemetry = errors.New("core: no telemetry in ReplayDB")
	// ErrNotTrained reports a layout proposal requested before the first
	// completed training cycle.
	ErrNotTrained = errors.New("core: engine not trained")
)

// Config tunes the engine. Zero values select the paper's settings.
type Config struct {
	// ModelNumber picks the Table I architecture; default 1, the model
	// the paper deployed.
	ModelNumber int
	// FeatureCount is Z; default 6 (rb, wb, ots, cts, fid, fsid).
	FeatureCount int
	// Epsilon is the random-exploration rate; default 0.1 ("random
	// decisions are used by Geomancy 10% of the runs", §V-H).
	Epsilon float64
	// CooldownRuns is how many workload runs pass between layout changes;
	// default 5 ("Geomancy moves data every five runs", §VI).
	CooldownRuns int
	// WindowX is the number of most recent accesses fetched per device
	// for training; default 2000 (6 devices × 2000 = the paper's 12,000
	// training entries).
	WindowX int
	// Epochs is the training epoch count; default 200 (§V-G).
	Epochs int
	// LearningRate for plain SGD; default 0.05.
	LearningRate float64
	// BatchSize for mini-batch SGD; default 32.
	BatchSize int
	// SmoothWindow is the moving-average window applied to ReplayDB
	// batches; default 8. 1 disables smoothing; negative selects the
	// cumulative average (for the smoothing ablation).
	SmoothWindow int
	// SeqWindow is the BPTT window for recurrent models; default
	// nn.DefaultWindow.
	SeqWindow int
	// Seed drives exploration and weight initialization.
	Seed int64
	// Optimizer overrides SGD when set ("sgd" default, "adam" for the
	// ablation).
	Optimizer string
	// Parallelism bounds the engine's worker pool: candidate feature
	// assembly, the batched-inference GEMMs, and per-minibatch gradient
	// accumulation all fan out across this many goroutines. 1 (the
	// default) reproduces the serial engine bit-for-bit; any value ≥ 2 is
	// deterministic and independent of the actual worker count, because
	// the layout-deciding randomness stays on one goroutine and gradient
	// reduction uses a fixed chunk structure.
	Parallelism int
	// Target selects the modeled performance metric: "throughput" (the
	// paper's choice) or "latency" (the §V-C future-work variant — some
	// workloads are latency-sensitive). With the latency target the
	// engine minimizes predicted access duration instead of maximizing
	// predicted throughput.
	Target string
	// TopK enables candidate pruning: a decision scores each file against
	// only the top-K devices per device class by recent throughput (plus
	// the file's current device) instead of every device, and files whose
	// telemetry has not changed since their last scoring reuse cached
	// scores. 0 (the default) keeps the exhaustive O(files×devices) pass
	// on every decision — the paper's behavior, bit-for-bit.
	TopK int
	// FullRescanEvery is the pruning cadence: with TopK > 0, every Nth
	// decision (and always the first) falls back to the exhaustive pass,
	// re-scoring the full candidate space and refreshing every cache.
	// Default 8. Ignored when TopK is 0.
	FullRescanEvery int
}

func (c Config) withDefaults() Config {
	if c.ModelNumber == 0 {
		c.ModelNumber = 1
	}
	if c.FeatureCount == 0 {
		c.FeatureCount = 6
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.1
	}
	if c.CooldownRuns == 0 {
		c.CooldownRuns = 5
	}
	if c.WindowX == 0 {
		c.WindowX = 2000
	}
	if c.Epochs == 0 {
		c.Epochs = 200
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.05
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.SmoothWindow == 0 {
		c.SmoothWindow = 8
	}
	if c.SeqWindow == 0 {
		c.SeqWindow = nn.DefaultWindow
	}
	if c.Optimizer == "" {
		c.Optimizer = "sgd"
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 1
	}
	if c.Target == "" {
		c.Target = TargetThroughput
	}
	if c.FullRescanEvery == 0 {
		c.FullRescanEvery = 8
	}
	return c
}

// Modeling targets.
const (
	TargetThroughput = "throughput"
	TargetLatency    = "latency"
)

// FileMeta is the engine's view of one workload file.
type FileMeta struct {
	ID     int64
	Path   string
	Size   int64
	Device string
}

// Decision records why one file landed where it did.
type Decision struct {
	FileID int64
	// Chosen is the selected device.
	Chosen string
	// Current is the device the file was on.
	Current string
	// Random marks an exploration move.
	Random bool
	// Predictions maps each candidate device to its predicted throughput
	// (bytes/second, denormalized and MAE-adjusted).
	Predictions map[string]float64
}

// TrainReport summarizes one training cycle.
type TrainReport struct {
	Samples    int
	FinalLoss  float64
	Validation nn.Metrics
	Test       nn.Metrics
	Duration   time.Duration
}

// TelemetryStore is the view of the ReplayDB the engine trains from. The
// local *replaydb.DB satisfies it directly; agents.RemoteStore provides
// the same view over the Interface Daemon's wire protocol, preserving the
// paper's decoupling ("the DRL engine requests training data from the
// ReplayDB via the Interface Daemon", §V-E).
type TelemetryStore interface {
	// RecentByDevice returns up to n most recent accesses on a device,
	// oldest first.
	RecentByDevice(device string, n int) []replaydb.AccessRecord
	// RecentByFile returns up to n most recent accesses of a file,
	// oldest first.
	RecentByFile(fileID int64, n int) []replaydb.AccessRecord
}

// Engine is the DRL engine.
type Engine struct {
	cfg Config         //geomancy:ephemeral construction config, re-supplied by NewEngine on restore
	db  TelemetryStore //geomancy:ephemeral external store handle, re-wired at construction
	rng *rng.RNG

	net      *nn.Network
	devices  []string
	devIndex map[string]int //geomancy:ephemeral derived index over devices, rebuilt at construction

	featScaler   features.MinMaxScaler
	targetScaler features.ScalarScaler
	valMetrics   nn.Metrics
	trained      bool

	rewards []float64

	// Batched-inference buffers, reused across decisions.
	scratch nn.Scratch    //geomancy:ephemeral scratch buffer, content meaningless between decisions
	inFlat  *mat.Matrix   //geomancy:ephemeral reusable inference buffer, overwritten per decision
	inSeq   []*mat.Matrix //geomancy:ephemeral reusable inference buffer, overwritten per decision

	// fsids maps a local device index to the fsid feature value the
	// model was trained with. Nil means identity (the engine trained over
	// its own device list); the sharded coordinator points shard-local
	// engines at the global indices so a shard scores candidates with the
	// device IDs the shared network actually learned.
	fsids []int //geomancy:ephemeral structural wiring, re-supplied by NewSharded on restore

	// Candidate-pruning state (cfg.TopK > 0); see prune.go.
	//geomancy:ephemeral store-backed change feed, re-wired at construction; progress is serialized as LastWatermark
	tracker       ChangeTracker
	summarySource SummarySource
	decisionCount uint64
	modelGen      uint64
	lastWatermark uint64
	cache         map[int64]*fileCache

	metrics engineMetrics //geomancy:ephemeral telemetry handles, re-installed by SetMetrics
}

// engineMetrics holds the engine's pre-resolved telemetry handles; all
// fields are nil (no-op) until SetMetrics installs a registry.
type engineMetrics struct {
	trainings    *telemetry.Counter
	trainErrors  *telemetry.Counter
	duration     *telemetry.Gauge
	durationHist *telemetry.Histogram
	loss         *telemetry.Gauge
	samples      *telemetry.Gauge
	valMARE      *telemetry.Gauge
	inferBatch   *telemetry.Histogram
	inferSeconds *telemetry.Gauge
}

// SetMetrics points the engine's training instrumentation at reg: a
// training-cycle counter, duration/loss/sample-count gauges refreshed
// every cycle, and a duration histogram. A nil registry detaches.
func (e *Engine) SetMetrics(reg *telemetry.Registry) {
	e.metrics = engineMetrics{
		trainings:    reg.Counter(telemetry.MetricTrainingsTotal),
		trainErrors:  reg.Counter(telemetry.MetricTrainingErrorsTotal),
		duration:     reg.Gauge(telemetry.MetricTrainingDuration),
		durationHist: reg.Histogram(telemetry.MetricTrainingDurationHist, telemetry.DefDurationBuckets),
		loss:         reg.Gauge(telemetry.MetricTrainingLoss),
		samples:      reg.Gauge(telemetry.MetricTrainingSamples),
		valMARE:      reg.Gauge(telemetry.MetricTrainingValidationMAE),
		inferBatch:   reg.Histogram(telemetry.MetricInferenceBatchSize, telemetry.DefBatchSizeBuckets),
		inferSeconds: reg.Gauge(telemetry.MetricInferenceDuration),
	}
}

// NewEngine builds an engine over the ReplayDB for the given candidate
// devices (the paper's refreshed configuration file of storage points a
// file may occupy, §V-F).
func NewEngine(db TelemetryStore, devices []string, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if len(devices) == 0 {
		return nil, fmt.Errorf("core: engine needs at least one candidate device")
	}
	if cfg.Target != TargetThroughput && cfg.Target != TargetLatency {
		return nil, fmt.Errorf("core: unknown modeling target %q", cfg.Target)
	}
	r := rng.New(cfg.Seed)
	net, err := nn.BuildModel(cfg.ModelNumber, cfg.FeatureCount, r.Rand)
	if err != nil {
		return nil, fmt.Errorf("core: building model: %w", err)
	}
	net.Window = cfg.SeqWindow
	e := &Engine{
		cfg:      cfg,
		db:       db,
		rng:      r,
		net:      net,
		devIndex: make(map[string]int),
		modelGen: 1,
		cache:    make(map[int64]*fileCache),
	}
	// Dirty tracking is a capability, not a requirement: the local
	// *replaydb.DB provides it, a RemoteStore may not. Without it the
	// pruned path still shortlists devices but treats every file as
	// changed on every decision.
	e.tracker, _ = db.(ChangeTracker)
	e.SetDevices(devices)
	return e, nil
}

// SetDevices refreshes the candidate location list. Cached candidate
// scores are laid out per device index, so any device-list change drops
// them and starts a new model generation.
func (e *Engine) SetDevices(devices []string) {
	e.devices = append([]string(nil), devices...)
	e.devIndex = make(map[string]int, len(devices))
	for i, d := range devices {
		e.devIndex[d] = i
	}
	e.cache = make(map[int64]*fileCache)
	e.modelGen++
}

// Devices returns the candidate location list.
func (e *Engine) Devices() []string { return append([]string(nil), e.devices...) }

// Network exposes the model (for persistence and inspection).
func (e *Engine) Network() *nn.Network { return e.net }

// Config returns the engine's effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// ShouldAct reports whether the cooldown permits a layout change after the
// given workload run index (runs are 0-based; the first decision happens
// after the first CooldownRuns runs).
func (e *Engine) ShouldAct(run int) bool {
	return (run+1)%e.cfg.CooldownRuns == 0
}

// FeatureVector builds the paper's six-feature vector of one stored
// access: rb, wb, ots (fractional seconds), cts, fid, fsid. The fsid is
// the device's index in devIndex; unknown devices park one past the range.
//
// The volume features enter in log scale (log1p bytes): file sizes are
// log-uniform over three decades, so a linear min-max normalization would
// compress the throughput-deciding distinctions among small transfers
// into a sliver near zero that gradient descent cannot resolve.
func FeatureVector(rec *replaydb.AccessRecord, devIndex map[string]int) []float64 {
	devIdx, ok := devIndex[rec.Device]
	if !ok {
		devIdx = len(devIndex)
	}
	return []float64{
		logBytes(float64(rec.BytesRead)),
		logBytes(float64(rec.BytesWritten)),
		float64(rec.OpenTS) + float64(rec.OpenTMS)/1000,
		float64(rec.CloseTS) + float64(rec.CloseTMS)/1000,
		float64(rec.FileID),
		float64(devIdx),
	}
}

// logBytes is the volume-feature transform.
func logBytes(v float64) float64 {
	if v < 0 {
		v = 0
	}
	return math.Log1p(v)
}

// EncodeTarget maps a raw performance value into model space. Targets are
// modeled in log scale: device throughputs span three-plus decades, and a
// squared-error fit in linear space ignores exactly the small values whose
// relative error Tables II/III report. In log space, MSE is relative
// error.
func EncodeTarget(v float64) float64 {
	if v < 0 {
		v = 0
	}
	return math.Log1p(v)
}

// DecodeTarget inverts EncodeTarget.
func DecodeTarget(v float64) float64 {
	return math.Expm1(v)
}

// featureRow builds the engine's feature vector for a stored access.
func (e *Engine) featureRow(rec *replaydb.AccessRecord) []float64 {
	return FeatureVector(rec, e.devIndex)
}

// SmoothByFile applies moving-average smoothing (window > 1; cumulative
// for window < 0) within each (device, file) subsequence of recs — the
// exported form of the engine's per-data-ID smoothing for the experiment
// harness. Both the targets and the volume features (rows columns 0 and
// 1: rb and wb) are smoothed together, so the feature→target relationship
// survives: smoothing only one side would decouple them.
func SmoothByFile(recs []replaydb.AccessRecord, rows [][]float64, targets []float64, window int) {
	smoothGrouped(recs, rows, targets, window)
}

// smoothKey groups telemetry for smoothing.
type smoothKey struct {
	device string
	fileID int64
}

// smoothGrouped applies the configured smoothing to targets and the rb/wb
// feature columns within each (device, file) subsequence of recs.
// window > 1 selects the moving average, window < 0 the cumulative
// average, anything else is a no-op.
func smoothGrouped(recs []replaydb.AccessRecord, rows [][]float64, targets []float64, window int) {
	if window == 1 || window == 0 {
		return
	}
	smooth := func(sub []float64) []float64 {
		if window > 1 {
			return features.MovingAverage(sub, window)
		}
		return features.CumulativeAverage(sub)
	}
	groups := make(map[smoothKey][]int)
	for i := range recs {
		k := smoothKey{recs[i].Device, recs[i].FileID}
		groups[k] = append(groups[k], i)
	}
	for _, idxs := range groups {
		sub := make([]float64, len(idxs))
		for j, i := range idxs {
			sub[j] = targets[i]
		}
		sub = smooth(sub)
		for j, i := range idxs {
			targets[i] = sub[j]
		}
		if rows == nil {
			continue
		}
		for col := 0; col <= 1; col++ { // rb, wb
			for j, i := range idxs {
				sub[j] = rows[i][col]
			}
			sc := smooth(sub[:len(idxs)])
			for j, i := range idxs {
				rows[i][col] = sc[j]
			}
		}
	}
}

// targetValue extracts the modeled metric from a record: throughput, or
// the open-to-close duration for the latency target.
func (e *Engine) targetValue(rec *replaydb.AccessRecord) float64 {
	if e.cfg.Target == TargetLatency {
		open := float64(rec.OpenTS) + float64(rec.OpenTMS)/1000
		cls := float64(rec.CloseTS) + float64(rec.CloseTMS)/1000
		d := cls - open
		if d < 0 {
			return 0
		}
		return d
	}
	return rec.Throughput
}

// betterScore converts a predicted metric into a maximize-me score.
func (e *Engine) betterScore(pred float64) float64 {
	if e.cfg.Target == TargetLatency {
		return -pred
	}
	return pred
}

// gatherTraining pulls the most recent WindowX accesses per device,
// merges them in time order, and assembles smoothed, normalized training
// data ("All requests for data contain the X most recent accesses for
// each of the storage devices from the ReplayDB, thereby creating a
// batch", §V-E).
func (e *Engine) gatherTraining() (*nn.Dataset, error) {
	var recs []replaydb.AccessRecord
	for _, dev := range e.devices {
		recs = append(recs, e.db.RecentByDevice(dev, e.cfg.WindowX)...)
	}
	if len(recs) == 0 {
		return nil, ErrNoTelemetry
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Time < recs[j].Time })

	rows := make([][]float64, len(recs))
	targets := make([]float64, len(recs))
	for i := range recs {
		rows[i] = e.featureRow(&recs[i])
		targets[i] = EncodeTarget(e.targetValue(&recs[i]))
	}
	// Smoothing: moving average (default), cumulative average
	// (SmoothWindow < 0, ablation), or none (SmoothWindow == 1).
	// Smoothing is applied within each (device, file) subsequence — "the
	// data is batched by data ID" (§V-E). Averaging across different
	// files or devices would blur exactly the per-file, per-location
	// throughput differences the model exists to learn (a 583 KB ROOT
	// file and a 1.1 GB one see ~30× different throughput on the same
	// mount through latency amortization).
	smoothGrouped(recs, rows, targets, e.cfg.SmoothWindow)

	x := mat.FromRows(rows)
	e.featScaler.Fit(x)
	xn := e.featScaler.Transform(x)
	e.targetScaler.Fit(targets)
	yn := e.targetScaler.TransformAll(targets)
	return nn.NewDataset(xn, yn), nil
}

// Train re-trains the network on the freshest ReplayDB window using the
// paper's 60/20/20 split, and refreshes the MAE adjustment from the
// validation partition.
func (e *Engine) Train() (TrainReport, error) {
	return e.TrainContext(context.Background())
}

// TrainContext is Train with cancellation: ctx is checked between training
// epochs, and a cancelled cycle returns ctx.Err() without refreshing the
// model's scalers or validation metrics.
func (e *Engine) TrainContext(ctx context.Context) (TrainReport, error) {
	rep, err := e.train(ctx)
	if err != nil {
		e.metrics.trainErrors.Inc()
		return rep, err
	}
	e.metrics.trainings.Inc()
	e.metrics.duration.Set(rep.Duration.Seconds())
	e.metrics.durationHist.Observe(rep.Duration.Seconds())
	e.metrics.loss.Set(rep.FinalLoss)
	e.metrics.samples.Set(float64(rep.Samples))
	e.metrics.valMARE.Set(rep.Validation.MARE)
	return rep, nil
}

func (e *Engine) train(ctx context.Context) (TrainReport, error) {
	ds, err := e.gatherTraining()
	if err != nil {
		return TrainReport{}, err
	}
	train, val, test := ds.Split()
	if train.Len() == 0 {
		return TrainReport{}, fmt.Errorf("core: training partition empty (%d samples)", ds.Len())
	}

	var opt nn.Optimizer
	switch e.cfg.Optimizer {
	case "sgd":
		opt = &nn.SGD{LR: e.cfg.LearningRate}
	case "adam":
		opt = nn.NewAdam(e.cfg.LearningRate / 10)
	default:
		return TrainReport{}, fmt.Errorf("core: unknown optimizer %q", e.cfg.Optimizer)
	}

	start := time.Now() //geomancy:nondeterministic telemetry timestamp: training duration is reported, never fed back into decisions
	loss, err := e.net.Fit(train, nn.FitConfig{
		Epochs:      e.cfg.Epochs,
		BatchSize:   e.cfg.BatchSize,
		Optimizer:   opt,
		Rng:         e.rng.Rand,
		Parallelism: e.cfg.Parallelism,
		Ctx:         ctx,
	})
	if err != nil {
		return TrainReport{}, err
	}
	rep := TrainReport{
		Samples:   ds.Len(),
		FinalLoss: loss,
		Duration:  time.Since(start), //geomancy:nondeterministic telemetry timestamp: training duration is reported, never fed back into decisions
	}
	rep.Validation = e.evaluateDenorm(val)
	rep.Test = e.evaluateDenorm(test)
	e.valMetrics = rep.Validation
	e.trained = true
	e.modelGen++ // new weights, scalers, and MAE adjustment: cached scores are stale
	return rep, nil
}

// Online-update defaults: the incremental cadence fine-tunes on a small
// recent window for a couple of epochs, a fraction of a full cycle's
// cost. Updates step at a fraction of the full-training learning rate:
// the window is tiny and recent-only, so a full-size step lets the
// newest accesses overwrite the ranking learned across the whole
// telemetry history instead of nudging it toward the drift.
const (
	DefaultUpdateWindow  = 96
	DefaultUpdateEpochs  = 2
	DefaultUpdateLRScale = 0.1
)

// Update applies one incremental minibatch update with the default
// window and epoch count. See UpdateContext.
func (e *Engine) Update() (TrainReport, error) {
	return e.UpdateContext(context.Background(), 0, 0)
}

// UpdateContext fine-tunes the trained model on only the newest `window`
// accesses per device (0 selects DefaultUpdateWindow) for `epochs`
// epochs (0 selects DefaultUpdateEpochs), reusing the scalers fitted by
// the last full training cycle instead of refitting them. Holding the
// normalization fixed is what makes the update incremental: the newest
// telemetry — say, a shifted hotspot — dominates the gradient instead of
// being averaged back into a window-wide refit, so the model starts
// tracking drift on the very next decision. Validation metrics and the
// MAE adjustment stay as the last full cycle computed them; an engine
// with no completed full cycle returns ErrNotTrained, an empty window
// ErrNoTelemetry.
func (e *Engine) UpdateContext(ctx context.Context, window, epochs int) (TrainReport, error) {
	if !e.trained {
		return TrainReport{}, ErrNotTrained
	}
	if window <= 0 {
		window = DefaultUpdateWindow
	}
	if epochs <= 0 {
		epochs = DefaultUpdateEpochs
	}
	var recs []replaydb.AccessRecord
	for _, dev := range e.devices {
		recs = append(recs, e.db.RecentByDevice(dev, window)...)
	}
	if len(recs) == 0 {
		e.metrics.trainErrors.Inc()
		return TrainReport{}, ErrNoTelemetry
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Time < recs[j].Time })

	rows := make([][]float64, len(recs))
	targets := make([]float64, len(recs))
	for i := range recs {
		rows[i] = e.featureRow(&recs[i])
		targets[i] = EncodeTarget(e.targetValue(&recs[i]))
	}
	// Same per-(device, file) smoothing as a full cycle, so update and
	// retrain samples live on the same scale.
	smoothGrouped(recs, rows, targets, e.cfg.SmoothWindow)
	x := mat.FromRows(rows)
	xn := e.featScaler.Transform(x)
	yn := e.targetScaler.TransformAll(targets)
	ds := nn.NewDataset(xn, yn)

	lr := e.cfg.LearningRate * DefaultUpdateLRScale
	var opt nn.Optimizer
	switch e.cfg.Optimizer {
	case "sgd":
		opt = &nn.SGD{LR: lr}
	case "adam":
		opt = nn.NewAdam(lr / 10)
	default:
		return TrainReport{}, fmt.Errorf("core: unknown optimizer %q", e.cfg.Optimizer)
	}
	start := time.Now() //geomancy:nondeterministic telemetry timestamp: training duration is reported, never fed back into decisions
	loss, err := e.net.Fit(ds, nn.FitConfig{
		Epochs:      epochs,
		BatchSize:   e.cfg.BatchSize,
		Optimizer:   opt,
		Rng:         e.rng.Rand,
		Parallelism: e.cfg.Parallelism,
		Ctx:         ctx,
	})
	if err != nil {
		e.metrics.trainErrors.Inc()
		return TrainReport{}, err
	}
	e.modelGen++ // fine-tuned weights: cached scores are stale
	rep := TrainReport{
		Samples:   ds.Len(),
		FinalLoss: loss,
		Duration:  time.Since(start), //geomancy:nondeterministic telemetry timestamp: training duration is reported, never fed back into decisions
		// The last full cycle's held-out metrics still describe the
		// model; an update's tiny window has no meaningful split.
		Validation: e.valMetrics,
	}
	e.metrics.trainings.Inc()
	e.metrics.duration.Set(rep.Duration.Seconds())
	e.metrics.durationHist.Observe(rep.Duration.Seconds())
	e.metrics.loss.Set(rep.FinalLoss)
	e.metrics.samples.Set(float64(rep.Samples))
	return rep, nil
}

// evaluateDenorm computes prediction metrics on the original throughput
// scale. Relative errors on normalized targets explode near the range
// minimum; real throughputs are safely bounded away from zero, matching
// how the paper reports its error percentages.
func (e *Engine) evaluateDenorm(ds *nn.Dataset) nn.Metrics {
	preds, idx := e.net.Predict(ds)
	if len(preds) == 0 {
		return nn.Metrics{Diverged: true}
	}
	targets := make([]float64, len(idx))
	for i, r := range idx {
		targets[i] = DecodeTarget(e.targetScaler.Inverse(ds.Y[r]))
		preds[i] = DecodeTarget(e.targetScaler.Inverse(clamp01(preds[i])))
	}
	return nn.EvaluatePredictions(preds, targets)
}

// Trained reports whether the engine has completed at least one training
// cycle.
func (e *Engine) Trained() bool { return e.trained }

// fileFeatures are the raw ingredients of a file's candidate rows: the
// averaged recent transfer volumes, the latest close timestamp, and (for
// recurrent models) the raw feature rows of the file's history window.
// They depend only on the file's telemetry and size — not on model
// weights or scalers — so the pruning plane caches them until the file's
// telemetry changes (see prune.go).
type fileFeatures struct {
	rb, wb, ts float64
	hist       [][]float64 // raw history rows, oldest first (recurrent models)
}

// gatherFileFeatures fetches a file's recent history from the ReplayDB
// and reduces it to candidate-row ingredients. A file with no recorded
// telemetry gets a symmetric cold-start prior — half its size split
// evenly between read and write volume: assuming reads only (the old
// prior) mis-ranked write-heavy cold files against devices with
// imbalanced read/write bandwidth, visible on the write-ingest scenario.
func (e *Engine) gatherFileFeatures(f FileMeta, withHist bool) fileFeatures {
	recent := e.db.RecentByFile(f.ID, e.net.Window)
	var ff fileFeatures
	if len(recent) > 0 {
		last := recent[len(recent)-1]
		ff.ts = float64(last.CloseTS) + float64(last.CloseTMS)/1000
		var rbSum, wbSum float64
		for i := range recent {
			rbSum += float64(recent[i].BytesRead)
			wbSum += float64(recent[i].BytesWritten)
		}
		ff.rb = rbSum / float64(len(recent))
		ff.wb = wbSum / float64(len(recent))
	} else {
		ff.rb = float64(f.Size) / 4
		ff.wb = float64(f.Size) / 4
	}
	if withHist {
		ff.hist = make([][]float64, len(recent))
		for i := range recent {
			ff.hist[i] = e.featureRow(&recent[i])
		}
	}
	return ff
}

// fsidOf translates a local device index to the model's fsid feature.
func (e *Engine) fsidOf(devIdx int) float64 {
	if e.fsids != nil && devIdx < len(e.fsids) {
		return float64(e.fsids[devIdx])
	}
	return float64(devIdx)
}

// candidateRow builds the normalized candidate feature row for placing a
// file with ingredients ff on the device at devIdx.
func (e *Engine) candidateRow(ff fileFeatures, fileID int64, devIdx int) []float64 {
	row := []float64{logBytes(ff.rb), logBytes(ff.wb), ff.ts, ff.ts, float64(fileID), e.fsidOf(devIdx)}
	for c, v := range row {
		row[c] = e.featScaler.TransformValue(c, v)
	}
	return row
}

// predictCandidate returns the adjusted predicted throughput (bytes/s) of
// accessing file f when placed on device. For recurrent models the
// candidate row is appended to the file's recent history window.
func (e *Engine) predictCandidate(f FileMeta, device string) float64 {
	recurrent := e.net.IsRecurrent()
	// Candidate feature row: the file's typical access at this location,
	// stamped at the most recent known time.
	ff := e.gatherFileFeatures(f, recurrent)
	devIdx, ok := e.devIndex[device]
	if !ok {
		devIdx = len(e.devices)
	}
	norm := e.candidateRow(ff, f.ID, devIdx)

	var pred float64
	if recurrent {
		window := make([][]float64, 0, e.net.Window)
		// History rows (normalized), oldest first, padded by repetition.
		hist := make([][]float64, 0, len(ff.hist))
		for _, raw := range ff.hist {
			n := make([]float64, len(raw))
			for c, v := range raw {
				n[c] = e.featScaler.TransformValue(c, v)
			}
			hist = append(hist, n)
		}
		need := e.net.Window - 1
		for len(hist) < need {
			hist = append([][]float64{norm}, hist...)
		}
		window = append(window, hist[len(hist)-need:]...)
		window = append(window, norm)
		pred = e.net.PredictOne(window)
	} else {
		pred = e.net.PredictOne([][]float64{norm})
	}

	raw := DecodeTarget(e.targetScaler.Inverse(clamp01(pred)))
	return nn.AdjustPrediction(raw, e.valMetrics)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// parallelFor runs fn(i) for every i in [0, n) across up to workers
// goroutines, checking ctx between work items. workers ≤ 1 runs inline.
// The iteration partition never affects results: callers only use it for
// independent per-item work.
func parallelFor(ctx context.Context, n, workers int, fn func(i int)) error {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// flatBuf returns the engine's reusable flat-input buffer sized rows×cols.
func (e *Engine) flatBuf(rows, cols int) *mat.Matrix {
	if e.inFlat == nil || e.inFlat.Rows != rows || e.inFlat.Cols != cols {
		e.inFlat = mat.New(rows, cols)
	}
	return e.inFlat
}

// seqBufs returns the engine's reusable sequence-input buffers: w timestep
// matrices, each rows×cols.
func (e *Engine) seqBufs(w, rows, cols int) []*mat.Matrix {
	if len(e.inSeq) != w {
		e.inSeq = make([]*mat.Matrix, w)
	}
	for t := range e.inSeq {
		if e.inSeq[t] == nil || e.inSeq[t].Rows != rows || e.inSeq[t].Cols != cols {
			e.inSeq[t] = mat.New(rows, cols)
		}
	}
	return e.inSeq
}

// forwardRows runs the engine's (timed, observed) batched forward pass
// over already-assembled input rows.
func (e *Engine) forwardRows(flat *mat.Matrix, seq []*mat.Matrix, total int) *mat.Matrix {
	start := time.Now() //geomancy:nondeterministic telemetry timestamp: inference duration is reported, never fed back into decisions
	e.scratch.Parallelism = e.cfg.Parallelism
	out := e.net.ForwardBatch(flat, seq, &e.scratch)
	e.metrics.inferSeconds.Set(time.Since(start).Seconds()) //geomancy:nondeterministic telemetry timestamp: inference duration is reported, never fed back into decisions
	e.metrics.inferBatch.Observe(float64(total))
	return out
}

// candidateScores evaluates every (file, device) pairing in one batched
// inference: feature assembly fans out over the worker pool (one ReplayDB
// fetch per file instead of one per pairing), all len(files)×len(devices)
// candidate rows go through a single ForwardBatch call, and the
// denormalized, MAE-adjusted predictions come back as scores[i][j] for
// files[i] on e.devices[j]. Every score is bit-identical to what
// predictCandidate computes for the same pairing: batching and row-sharded
// GEMMs do not change any output row's arithmetic order.
func (e *Engine) candidateScores(ctx context.Context, files []FileMeta) ([][]float64, error) {
	nDev := len(e.devices)
	total := len(files) * nDev
	if total == 0 {
		return nil, nil
	}
	flat, seq, err := e.assembleTasks(ctx, files, exhaustiveTasks(len(files), nDev), total)
	if err != nil {
		return nil, err
	}
	out := e.forwardRows(flat, seq, total)

	// Denormalize and MAE-adjust every prediction.
	scores := make([][]float64, len(files))
	err = parallelFor(ctx, len(files), e.cfg.Parallelism, func(i int) {
		s := make([]float64, nDev)
		for j := 0; j < nDev; j++ {
			raw := DecodeTarget(e.targetScaler.Inverse(clamp01(out.At(i*nDev+j, 0))))
			s[j] = nn.AdjustPrediction(raw, e.valMetrics)
		}
		scores[i] = s
	})
	if err != nil {
		return nil, err
	}
	return scores, nil
}

// ProposeLayout predicts the throughput of every file at every candidate
// location (including not moving it) and returns the layout assigning each
// file to its best predicted location. With probability Epsilon a file is
// assigned a random device instead — the exploration that keeps the
// availability picture fresh (§V-H). The checker validates destinations;
// invalid proposals fall back per the Action Checker rules.
func (e *Engine) ProposeLayout(files []FileMeta, checker *agents.ActionChecker, valid agents.Validator) (map[int64]string, []Decision, error) {
	return e.ProposeLayoutContext(context.Background(), files, checker, valid)
}

// scored is one file's prepared decision material: the decision shell
// with its predictions, the candidate set the greedy rule maximizes over,
// its validity-filtered form, and the full-width candidate list used for
// exploration shuffles. On the exhaustive path cands spans every device;
// on the pruned path it spans only the current-generation scored subset —
// but explore always spans every device, so both paths consume identical
// randomness and a fixed seed replays identically across modes.
type scored struct {
	d       Decision
	cands   []agents.Candidate
	passing []agents.Candidate
	explore []agents.Candidate
}

// ProposeLayoutContext is ProposeLayout with cancellation: ctx is checked
// between candidate-scoring batches. The decision runs through the
// three-stage pipeline in propose.go — prepare (mode selection and row
// assembly, exhaustive or pruned when Config.TopK > 0), one batched
// forward pass, finish (denormalization, cache writeback, selection). The
// per-file validity filters fan out over the worker pool; only the
// ε-greedy selection — the part that draws from e.rng — runs serially in
// file order, so a fixed seed replays identically at any Parallelism.
func (e *Engine) ProposeLayoutContext(ctx context.Context, files []FileMeta, checker *agents.ActionChecker, valid agents.Validator) (map[int64]string, []Decision, error) {
	pd, err := e.prepareProposal(ctx, files, checker, valid)
	if err != nil {
		return nil, nil, err
	}
	var out *mat.Matrix
	if pd.rows() > 0 {
		out = e.forwardRows(pd.flat, pd.seq, pd.total)
	}
	return pd.finish(ctx, out, 0)
}

// selectLayout runs the serial ε-greedy selection over prepared decision
// material. This is the only stage that draws from e.rng.
func (e *Engine) selectLayout(files []FileMeta, pre []scored, checker *agents.ActionChecker, valid agents.Validator) (map[int64]string, []Decision, error) {
	layout := make(map[int64]string, len(files))
	decisions := make([]Decision, 0, len(files))
	for i := range files {
		f := files[i]
		d := pre[i].d
		if e.rng.Float64() < e.cfg.Epsilon {
			// Exploration: random movement, still subject to validation.
			// The shuffle always spans the full device width — the choice
			// only depends on which devices validate, never on scores, so
			// pruned and exhaustive modes explore identically.
			d.Random = true
			exp := pre[i].explore
			if exp == nil {
				// Pruned path: widen to the full device list on demand,
				// only for the files that actually explore. Predicted is
				// irrelevant — the choice is the first device to validate.
				exp = make([]agents.Candidate, len(e.devices))
				for j, dev := range e.devices {
					exp[j] = agents.Candidate{Device: dev}
				}
			}
			shuffled := make([]agents.Candidate, len(exp))
			copy(shuffled, exp)
			e.rng.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
			passing := checker.Filter(shuffled, f.Size, valid)
			if len(passing) > 0 {
				d.Chosen = passing[0].Device
			} else {
				d.Chosen = f.Device
			}
		} else if passing := pre[i].passing; len(passing) > 0 {
			// The checker's greedy rule over the precomputed valid set.
			best := passing[0]
			for _, c := range passing[1:] {
				if c.Predicted > best.Predicted {
					best = c
				}
			}
			d.Chosen = best.Device
		} else if len(checker.AllDevices) > 0 {
			// "In case all storage devices are invalid, a random movement
			// is performed" (§V-H).
			d.Chosen = checker.AllDevices[checker.Rng.Intn(len(checker.AllDevices))]
			d.Random = true
		} else {
			d.Chosen = f.Device // nowhere to go: stay put
		}
		layout[f.ID] = d.Chosen
		decisions = append(decisions, d)
	}
	return layout, decisions, nil
}

// RecordReward stores the throughput delta observed after a layout change:
// "any increase in the throughput of the workload [is] a positive reward"
// (§V). The history feeds diagnostics and tests.
func (e *Engine) RecordReward(before, after float64) float64 {
	r := after - before
	e.rewards = append(e.rewards, r)
	return r
}

// Rewards returns the reward history.
func (e *Engine) Rewards() []float64 { return append([]float64(nil), e.rewards...) }
