package core

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"geomancy/internal/agents"
	"geomancy/internal/policy"
	"geomancy/internal/rng"
	"geomancy/internal/storagesim"
)

// EngineModel adapts the DRL engine to the policy plane's Model
// contract, so policy.Geomancy / Online / Tiered can drive the engine
// without the policy package importing core. Training reports accumulate
// inside the bridge; the loop (or any other driver) drains them with
// Reports after each proposal.
type EngineModel struct {
	Engine  *Engine
	Checker *agents.ActionChecker
	Valid   agents.Validator
	// UpdateWindow and UpdateEpochs tune the incremental cadence; zero
	// selects DefaultUpdateWindow / DefaultUpdateEpochs.
	UpdateWindow int
	UpdateEpochs int

	reports []TrainReport
}

// NewModel bridges the engine to the policy plane: an EngineModel whose
// Action Checker shares the engine's decision stream (so checkpointed
// runs replay its draws bit-for-bit) and whose validator tracks the
// cluster's live capacity and availability. The cluster also becomes the
// engine's device-summary source, so candidate pruning (Config.TopK)
// ranks shortlists from live recent-throughput digests.
func (e *Engine) NewModel(cluster *storagesim.Cluster) *EngineModel {
	e.SetSummarySource(cluster.DeviceSummaries)
	return &EngineModel{
		Engine:  e,
		Checker: agents.NewActionChecker(e.rng, cluster.DeviceNames()),
		Valid:   agents.ClusterValidator(cluster),
	}
}

// Retrain implements policy.Model: one full training cycle.
func (m *EngineModel) Retrain(ctx context.Context) error {
	rep, err := m.Engine.TrainContext(ctx)
	if err != nil {
		return err
	}
	m.reports = append(m.reports, rep)
	return nil
}

// Update implements policy.Model: one incremental minibatch update. An
// engine with no completed full cycle maps to policy.ErrNotReady so the
// policy plane can fall back to a retrain without importing core.
func (m *EngineModel) Update(ctx context.Context) error {
	rep, err := m.Engine.UpdateContext(ctx, m.UpdateWindow, m.UpdateEpochs)
	if err != nil {
		if errors.Is(err, ErrNotTrained) {
			return fmt.Errorf("%w: %v", policy.ErrNotReady, err)
		}
		return err
	}
	m.reports = append(m.reports, rep)
	return nil
}

// Propose implements policy.Model: one batched ε-greedy proposal over
// the snapshot's working set.
func (m *EngineModel) Propose(ctx context.Context, s policy.State) (map[int64]string, []policy.Prediction, error) {
	files := make([]FileMeta, 0, len(s.Files))
	for _, f := range s.Files {
		files = append(files, FileMeta{ID: f.ID, Path: f.Path, Size: f.Size, Device: f.Device})
	}
	layout, decisions, err := m.Engine.ProposeLayoutContext(ctx, files, m.Checker, m.Valid)
	if err != nil {
		return nil, nil, err
	}
	preds := make([]policy.Prediction, 0, len(decisions))
	for _, d := range decisions {
		preds = append(preds, policy.Prediction{FileID: d.FileID, Current: d.Current, Chosen: d.Chosen, Random: d.Random})
	}
	return layout, preds, nil
}

// Reports drains the training reports accumulated since the last drain.
func (m *EngineModel) Reports() []TrainReport {
	out := m.reports
	m.reports = nil
	return out
}

// EngineBacked reports whether the named catalogue policy drives the DRL
// engine (and so needs an EngineModel and engine state in checkpoints).
// The empty name is the default, "geomancy".
func EngineBacked(name string) bool {
	switch name {
	case "", "geomancy", "online-geomancy", "tiered-geomancy":
		return true
	}
	return false
}

// NewCataloguePolicy builds the named policy from the catalogue (see
// policy.Catalogue). Engine-backed names require model; baselines ignore
// it. Stochastic baselines derive checkpointable streams from seed with
// the same offsets the experiment matrix uses, so a facade run and a
// matrix cell of the same seed draw identically.
func NewCataloguePolicy(name string, model *EngineModel, seed int64) (policy.Policy, error) {
	switch name {
	case "", "geomancy":
		return &policy.Geomancy{Model: model}, nil
	case "online-geomancy":
		return &policy.Online{Model: model}, nil
	case "tiered-geomancy":
		return &policy.Tiered{Model: model}, nil
	case "lru":
		return policy.LRU{}, nil
	case "mru":
		return policy.MRU{}, nil
	case "lfu":
		return policy.LFU{}, nil
	case "lfu-weighted":
		return policy.Weighted{Base: policy.LFU{}}, nil
	case "random-dynamic":
		return &policy.RandomDynamic{Rng: rng.New(seed + 2)}, nil
	case "random-static":
		return &policy.RandomStatic{Rng: rng.New(seed + 3)}, nil
	case "noop":
		return policy.NoOp{}, nil
	}
	return nil, fmt.Errorf("%w: %q (catalogue: %s)", policy.ErrUnknown, name, strings.Join(policy.Names(), ", "))
}
