package core

import (
	"reflect"
	"testing"

	"geomancy/internal/replaydb"
	"geomancy/internal/storagesim"
)

// blueskySummaries mirrors the paper cluster's class structure with fixed
// recent throughputs, so shortlist tests are deterministic. With TopK ≥ 2
// every device is shortlisted (no class has more than two members).
func blueskySummaries() []storagesim.DeviceSummary {
	return []storagesim.DeviceSummary{
		{Name: "file0", Class: "raid5", RecentThroughput: 8e9, Available: true},
		{Name: "pic", Class: "lustre", RecentThroughput: 2e9, Available: true},
		{Name: "people", Class: "nfs", RecentThroughput: 1.7e9, Available: true},
		{Name: "tmp", Class: "raid1", RecentThroughput: 1.6e9, Available: true},
		{Name: "var", Class: "raid1", RecentThroughput: 1.3e9, Available: true},
		{Name: "USBtmp", Class: "usb", RecentThroughput: 0.6e9, Available: true},
	}
}

// countingStore wraps the ReplayDB, counting per-file feature fetches —
// the per-decision cost the pruning plane exists to avoid. The embedded
// DB keeps the ChangeTracker capability visible to the engine.
type countingStore struct {
	*replaydb.DB
	byFileCalls int
}

func (c *countingStore) RecentByFile(id int64, n int) []replaydb.AccessRecord {
	c.byFileCalls++
	return c.DB.RecentByFile(id, n)
}

func testFiles() []FileMeta {
	return []FileMeta{
		{ID: 1, Path: "/a", Size: 1e8, Device: "pic"},
		{ID: 2, Path: "/b", Size: 2e8, Device: "USBtmp"},
		{ID: 3, Path: "/c", Size: 5e7, Device: "file0"},
		{ID: 4, Path: "/d", Size: 3e8, Device: "tmp"},
	}
}

func TestDeviceShortlist(t *testing.T) {
	db := seedDB(t, 100)
	cfg := quickCfg()
	cfg.TopK = 1
	e, err := NewEngine(db, testDevices, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// No summary source: every device.
	if got := e.deviceShortlist(); !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4, 5}) {
		t.Fatalf("sourceless shortlist = %v", got)
	}

	sums := blueskySummaries()
	e.SetSummarySource(func() []storagesim.DeviceSummary { return sums })
	// TopK=1: one device per class; raid1 keeps tmp (higher throughput),
	// drops var (index 4).
	if got := e.deviceShortlist(); !reflect.DeepEqual(got, []int{0, 1, 2, 3, 5}) {
		t.Fatalf("top-1 shortlist = %v", got)
	}
	// TopK=2 covers the full cluster.
	e.cfg.TopK = 2
	if got := e.deviceShortlist(); !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4, 5}) {
		t.Fatalf("top-2 shortlist = %v", got)
	}
	// Unavailable and read-only devices never shortlist.
	sums[0].Available = false
	sums[3].ReadOnly = true
	e.cfg.TopK = 1
	if got := e.deviceShortlist(); !reflect.DeepEqual(got, []int{1, 2, 4, 5}) {
		t.Fatalf("degraded shortlist = %v", got)
	}
}

func TestColdFileSymmetricPrior(t *testing.T) {
	db := seedDB(t, 1200)
	e, err := NewEngine(db, testDevices, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// A file with no telemetry history gets the symmetric prior: half its
	// size split evenly across read and write volume.
	ff := e.gatherFileFeatures(FileMeta{ID: 999, Size: 1000}, false)
	if ff.rb != 250 || ff.wb != 250 || ff.ts != 0 {
		t.Fatalf("cold prior = %+v, want rb=wb=250 ts=0", ff)
	}
	// The prior reaches the batched path and the single-candidate path
	// identically (the bit-identity invariant of candidateScores).
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	cold := []FileMeta{{ID: 999, Path: "/new", Size: 5e8, Device: "pic"}}
	scores, err := e.candidateScores(t.Context(), cold)
	if err != nil {
		t.Fatal(err)
	}
	for j, dev := range testDevices {
		if got := e.predictCandidate(cold[0], dev); got != scores[0][j] {
			t.Fatalf("cold file on %s: predictCandidate %v != batched %v", dev, got, scores[0][j])
		}
	}
}

// TestPrunedMatchesExhaustive is the layout-agreement contract at engine
// level: with a shortlist covering every device (TopK=2 on the Bluesky
// class structure), a pruned engine and an exhaustive engine of the same
// seed propose identical layouts decision after decision — through cache
// hits, dirty files, retrains, and exploration draws.
func TestPrunedMatchesExhaustive(t *testing.T) {
	mk := func(topK int) (*Engine, *replaydb.DB) {
		db := seedDB(t, 1200)
		cfg := quickCfg()
		cfg.Epsilon = 0.3 // plenty of exploration: the RNG streams must stay aligned
		cfg.TopK = topK
		cfg.FullRescanEvery = 4
		e, err := NewEngine(db, testDevices, cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.SetSummarySource(func() []storagesim.DeviceSummary { return blueskySummaries() })
		if _, err := e.Train(); err != nil {
			t.Fatal(err)
		}
		return e, db
	}
	ex, exDB := mk(0)
	pr, prDB := mk(2)

	files := testFiles()
	dirty := func(db *replaydb.DB, id int64) {
		if _, err := db.AppendAccess(replaydb.AccessRecord{
			Time: 2000, FileID: id, Device: "pic", BytesRead: 2e8,
			OpenTS: 2000, CloseTS: 2001, Throughput: 1.5e9,
		}); err != nil {
			t.Fatal(err)
		}
	}
	for step := 0; step < 10; step++ {
		exLayout, exDec, err := ex.ProposeLayout(files, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		prLayout, prDec, err := pr.ProposeLayout(files, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(exLayout, prLayout) {
			t.Fatalf("step %d: pruned layout %v != exhaustive %v", step, prLayout, exLayout)
		}
		for i := range exDec {
			if exDec[i].Chosen != prDec[i].Chosen || exDec[i].Random != prDec[i].Random {
				t.Fatalf("step %d file %d: pruned (%s, random=%v) != exhaustive (%s, random=%v)",
					step, exDec[i].FileID, prDec[i].Chosen, prDec[i].Random, exDec[i].Chosen, exDec[i].Random)
			}
		}
		// Mutate the world between decisions: dirty a file on both DBs,
		// and retrain on a cadence that exercises generation bumps.
		dirty(exDB, int64(step%4+1))
		dirty(prDB, int64(step%4+1))
		if step%3 == 2 {
			if _, err := ex.Train(); err != nil {
				t.Fatal(err)
			}
			if _, err := pr.Train(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if ex.rng.State() != pr.rng.State() {
		t.Fatal("RNG streams diverged between pruned and exhaustive modes")
	}
}

// TestPrunedSkipsCleanFiles checks the incremental accounting: after the
// first (exhaustive) decision, a decision with no new telemetry fetches
// no per-file features at all, and a decision with one dirty file fetches
// exactly that file's.
func TestPrunedSkipsCleanFiles(t *testing.T) {
	base := seedDB(t, 1200)
	store := &countingStore{DB: base}
	cfg := quickCfg()
	cfg.Epsilon = 0
	cfg.TopK = 2
	cfg.FullRescanEvery = 100 // keep cadence rescans out of this test
	e, err := NewEngine(store, testDevices, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.tracker == nil {
		t.Fatal("embedded ReplayDB should expose ChangeTracker")
	}
	e.SetSummarySource(func() []storagesim.DeviceSummary { return blueskySummaries() })
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}

	files := testFiles()
	if _, _, err := e.ProposeLayout(files, nil, nil); err != nil {
		t.Fatal(err)
	}
	first := store.byFileCalls
	if first < len(files) {
		t.Fatalf("exhaustive pass fetched %d files, want ≥ %d", first, len(files))
	}

	// Clean decision: every file reuses its cached full-width scores.
	store.byFileCalls = 0
	_, dec, err := e.ProposeLayout(files, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if store.byFileCalls != 0 {
		t.Fatalf("clean decision fetched %d file histories, want 0", store.byFileCalls)
	}
	for _, d := range dec {
		if len(d.Predictions) != len(testDevices) {
			t.Fatalf("clean file %d kept %d cached predictions, want full width %d",
				d.FileID, len(d.Predictions), len(testDevices))
		}
	}

	// One dirty file: only it is re-featurized and re-scored.
	if _, err := base.AppendAccess(replaydb.AccessRecord{
		Time: 3000, FileID: 2, Device: "USBtmp", BytesRead: 1e8,
		OpenTS: 3000, CloseTS: 3001, Throughput: 5e8,
	}); err != nil {
		t.Fatal(err)
	}
	store.byFileCalls = 0
	_, dec, err = e.ProposeLayout(files, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if store.byFileCalls != 1 {
		t.Fatalf("one-dirty-file decision fetched %d file histories, want 1", store.byFileCalls)
	}
	for _, d := range dec {
		want := len(testDevices)
		if d.FileID == 2 {
			// The dirty file was rescored against the shortlist only —
			// which happens to be the full width here (TopK=2 covers the
			// cluster), so it stays at full width too.
			want = len(testDevices)
		}
		if len(d.Predictions) != want {
			t.Fatalf("file %d has %d predictions, want %d", d.FileID, len(d.Predictions), want)
		}
	}
}

// TestPrunedNarrowShortlist checks genuine pruning: with TopK=1 a dirty
// file is scored against strictly fewer devices (shortlist ∪ current),
// while the full-rescan cadence still restores the full width.
func TestPrunedNarrowShortlist(t *testing.T) {
	db := seedDB(t, 1200)
	cfg := quickCfg()
	cfg.Epsilon = 0
	cfg.TopK = 1
	cfg.FullRescanEvery = 3
	e, err := NewEngine(db, testDevices, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.SetSummarySource(func() []storagesim.DeviceSummary { return blueskySummaries() })
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	// var (index 4) is outside the top-1 shortlist; a file living there
	// keeps its current device as a candidate anyway.
	files := []FileMeta{{ID: 7, Path: "/v", Size: 1e8, Device: "var"}}
	if _, _, err := e.ProposeLayout(files, nil, nil); err != nil { // decision 0: exhaustive
		t.Fatal(err)
	}
	if _, err := e.Train(); err != nil { // new generation: cached scores stale
		t.Fatal(err)
	}
	_, dec, err := e.ProposeLayout(files, nil, nil) // decision 1: pruned
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"USBtmp", "file0", "people", "pic", "tmp", "var"}
	if len(dec[0].Predictions) != 6 {
		t.Fatalf("pruned width = %d predictions %v", len(dec[0].Predictions), dec[0].Predictions)
	}
	for _, devName := range want {
		if _, ok := dec[0].Predictions[devName]; !ok {
			t.Fatalf("pruned predictions missing %s: %v", devName, dec[0].Predictions)
		}
	}
	// Narrow case: shortlist (5 devices: one per class) ∪ current (var) =
	// 6 of 6 here because every class head is listed. Drop to a world
	// where pruning is visible: exclude classes by marking them
	// unavailable in the summaries.
	sums := blueskySummaries()
	sums[1].Available = false // pic
	sums[2].Available = false // people
	e.SetSummarySource(func() []storagesim.DeviceSummary { return sums })
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	_, dec, err = e.ProposeLayout(files, nil, nil) // decision 2: pruned
	if err != nil {
		t.Fatal(err)
	}
	// Shortlist: file0 (raid5), tmp (raid1 head), USBtmp (usb) + current
	// var. pic/people are out, and the retrain staled every cached score,
	// so the decision is over exactly those four devices.
	if _, ok := dec[0].Predictions["pic"]; ok {
		t.Fatalf("pruned decision scored an unavailable class head: %v", dec[0].Predictions)
	}
	if _, ok := dec[0].Predictions["var"]; !ok {
		t.Fatalf("pruned decision must keep the current device: %v", dec[0].Predictions)
	}
	if len(dec[0].Predictions) != 4 {
		t.Fatalf("narrow shortlist did not prune: %v", dec[0].Predictions)
	}
	_, dec, err = e.ProposeLayout(files, nil, nil) // decision 3: cadence rescan
	if err != nil {
		t.Fatal(err)
	}
	if len(dec[0].Predictions) != len(testDevices) {
		t.Fatalf("cadence rescan width = %d, want full %d: %v",
			len(dec[0].Predictions), len(testDevices), dec[0].Predictions)
	}
}

// TestShortlistSeedsNominalDevices is the regression test for the
// never-probed-device starvation bug: a device idle since decision 0
// carries only its nominal-bandwidth fallback in the summaries
// (DeviceSummary.Nominal), and when that spec-sheet guess ranked below a
// classmate's measured throughput, the device fell out of the top-K
// shortlist and was never re-probed until the next full rescan — including
// on the first pruned decision after a checkpoint restore. Never-probed
// devices must always be shortlisted.
func TestShortlistSeedsNominalDevices(t *testing.T) {
	db := seedDB(t, 1200)
	cfg := quickCfg()
	cfg.Epsilon = 0
	cfg.TopK = 1
	cfg.FullRescanEvery = 100 // keep cadence rescans out of this test
	sums := blueskySummaries()
	// var has never served an access: its summary carries the nominal
	// fallback, which ranks below its raid1 classmate tmp's measured rate.
	sums[4].Nominal = true
	mk := func() *Engine {
		e, err := NewEngine(db, testDevices, cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.SetSummarySource(func() []storagesim.DeviceSummary { return sums })
		return e
	}
	e := mk()
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}

	// Shortlist level: var (index 4) loses the raid1 top-1 slot to tmp but
	// stays a candidate as a never-probed device.
	if got := e.deviceShortlist(); !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4, 5}) {
		t.Fatalf("shortlist with nominal device = %v, want it included", got)
	}

	// Decision level, across a restore: the first pruned decision after the
	// round-trip still scores the idle device.
	files := []FileMeta{{ID: 7, Path: "/t", Size: 1e8, Device: "tmp"}}
	if _, _, err := e.ProposeLayout(files, nil, nil); err != nil { // decision 0: exhaustive
		t.Fatal(err)
	}
	st, err := e.State()
	if err != nil {
		t.Fatal(err)
	}
	r := mk()
	if err := r.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Train(); err != nil { // new generation: cached scores stale
		t.Fatal(err)
	}
	_, dec, err := r.ProposeLayout(files, nil, nil) // decision 1: pruned
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := dec[0].Predictions["var"]; !ok {
		t.Fatalf("first pruned decision after restore never probed the idle device: %v", dec[0].Predictions)
	}
}

// TestPrunedStateRoundTrip checks bit-identical resume mid-pruned-stream:
// a restored engine continues the decision sequence exactly where the
// original would have, caches and cadence included.
func TestPrunedStateRoundTrip(t *testing.T) {
	db := seedDB(t, 1200)
	cfg := quickCfg()
	cfg.Epsilon = 0.3
	cfg.TopK = 2
	cfg.FullRescanEvery = 4
	mk := func() *Engine {
		e, err := NewEngine(db, testDevices, cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.SetSummarySource(func() []storagesim.DeviceSummary { return blueskySummaries() })
		return e
	}
	a := mk()
	if _, err := a.Train(); err != nil {
		t.Fatal(err)
	}
	files := testFiles()
	for i := 0; i < 3; i++ {
		if _, _, err := a.ProposeLayout(files, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	st, err := a.State()
	if err != nil {
		t.Fatal(err)
	}

	b := mk()
	if err := b.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	// New telemetry lands after the snapshot; both engines see it.
	if _, err := db.AppendAccess(replaydb.AccessRecord{
		Time: 5000, FileID: 3, Device: "file0", BytesRead: 3e8,
		OpenTS: 5000, CloseTS: 5001, Throughput: 6e9,
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		la, da, err := a.ProposeLayout(files, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		lb, db2, err := b.ProposeLayout(files, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(la, lb) {
			t.Fatalf("step %d: restored layout %v != original %v", i, lb, la)
		}
		if !reflect.DeepEqual(da, db2) {
			t.Fatalf("step %d: restored decisions diverged", i)
		}
	}
}
