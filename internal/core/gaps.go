package core

import (
	"math"
	"sort"
	"sync"
)

// GapPredictor implements the paper's proposed second model (§X): it
// predicts, per file, the gaps between accesses — "periods of time, where
// the individual file is not accessed by any workloads, that is long
// enough for Geomancy to move the file to the new location". The paper
// leaves this as future work and sketches it as "a second neural network
// or algorithm" (§V-F); this implementation is the algorithmic variant, an
// exponentially weighted estimate of each file's inter-access gap mean and
// deviation.
//
// GapPredictor is safe for concurrent use.
type GapPredictor struct {
	// Alpha is the EWMA weight for new gap observations (default 0.25).
	Alpha float64

	mu    sync.Mutex
	stats map[int64]*gapStats
}

type gapStats struct {
	lastAccess float64
	mean       float64 // EWMA of gap lengths
	dev        float64 // EWMA of absolute deviation
	n          int64
	// Release gaps: scientific workloads read a file 10–20 times in a
	// burst and then leave it idle for a long stretch. The idle windows
	// that matter for movement are those release gaps, not the intra-
	// burst cadence, so gaps well above the running mean are tracked
	// separately.
	releaseMean float64
	releaseDev  float64
	releases    int64
}

// releaseFactor is how far above the running mean a gap must be to count
// as a release (end-of-burst idle period).
const releaseFactor = 5

// NewGapPredictor returns an empty predictor.
func NewGapPredictor() *GapPredictor {
	return &GapPredictor{Alpha: 0.25, stats: make(map[int64]*gapStats)}
}

// Observe records an access of the file at time t (virtual seconds).
func (g *GapPredictor) Observe(fileID int64, t float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	s, ok := g.stats[fileID]
	if !ok {
		g.stats[fileID] = &gapStats{lastAccess: t}
		return
	}
	gap := t - s.lastAccess
	if gap < 0 {
		gap = 0
	}
	s.lastAccess = t
	s.n++
	if s.n == 1 {
		s.mean = gap
		s.dev = gap / 2
		return
	}
	a := g.alpha()
	if s.mean > 0 && gap > releaseFactor*s.mean {
		// End-of-burst idle period: feed the release-gap model and keep
		// the cadence model untouched.
		s.releases++
		if s.releases == 1 {
			s.releaseMean = gap
			s.releaseDev = gap / 2
		} else {
			diff := math.Abs(gap - s.releaseMean)
			s.releaseMean = (1-a)*s.releaseMean + a*gap
			s.releaseDev = (1-a)*s.releaseDev + a*diff
		}
		return
	}
	diff := math.Abs(gap - s.mean)
	s.mean = (1-a)*s.mean + a*gap
	s.dev = (1-a)*s.dev + a*diff
}

func (g *GapPredictor) alpha() float64 {
	if g.Alpha > 0 && g.Alpha <= 1 {
		return g.Alpha
	}
	return 0.25
}

// PredictGap returns the estimated mean and deviation of the file's
// usable idle window: the release-gap model once end-of-burst idle
// periods have been observed, otherwise the all-gap cadence. ok is false
// until at least two accesses were observed.
func (g *GapPredictor) PredictGap(fileID int64) (mean, dev float64, ok bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	s, found := g.stats[fileID]
	if !found || s.n < 1 {
		return 0, 0, false
	}
	if s.releases > 0 {
		return s.releaseMean, s.releaseDev, true
	}
	return s.mean, s.dev, true
}

// Cadence returns the intra-burst gap statistics (the all-gap EWMA before
// release filtering); diagnostics use it.
func (g *GapPredictor) Cadence(fileID int64) (mean, dev float64, ok bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	s, found := g.stats[fileID]
	if !found || s.n < 1 {
		return 0, 0, false
	}
	return s.mean, s.dev, true
}

// LastAccess returns the most recent observed access time of the file.
func (g *GapPredictor) LastAccess(fileID int64) (float64, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	s, ok := g.stats[fileID]
	if !ok {
		return 0, false
	}
	return s.lastAccess, true
}

// Files returns the file IDs with gap statistics, sorted.
func (g *GapPredictor) Files() []int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]int64, 0, len(g.stats))
	for id := range g.stats {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MoveEstimator predicts the transfer duration (seconds) of moving a file
// to a destination device.
type MoveEstimator func(fileID int64, dst string) float64

// Deferral explains why a proposed move was postponed.
type Deferral struct {
	FileID int64
	Dst    string
	// Gap is the predicted inter-access gap; Need the estimated move time.
	Gap, Need float64
	// Hot marks files "that are always accessed and never released" —
	// gap statistics say they are never idle long enough.
	Hot bool
}

// MoveScheduler gates proposed movements on predicted access gaps: a file
// is only moved when its predicted idle window comfortably covers the
// transfer, so parallel accesses never race an in-flight move (§X). Files
// without gap history are allowed through (Geomancy must be able to act on
// new files).
type MoveScheduler struct {
	// Gaps supplies the per-file gap model.
	Gaps *GapPredictor
	// Headroom scales the required window: move only if
	// predictedGap - dev ≥ Headroom × estimated transfer (default 1.5).
	Headroom float64
}

// NewMoveScheduler returns a scheduler over the given predictor.
func NewMoveScheduler(g *GapPredictor) *MoveScheduler {
	return &MoveScheduler{Gaps: g, Headroom: 1.5}
}

func (s *MoveScheduler) headroom() float64 {
	if s.Headroom > 0 {
		return s.Headroom
	}
	return 1.5
}

// Filter splits a proposed layout into the moves safe to execute now and
// the deferrals. Entries whose destination equals the file's current
// device (no move) pass through untouched.
func (s *MoveScheduler) Filter(layout map[int64]string, current map[int64]string, estimate MoveEstimator) (map[int64]string, []Deferral) {
	approved := make(map[int64]string, len(layout))
	var deferred []Deferral
	for id, dst := range layout {
		if current[id] == dst {
			approved[id] = dst // not a movement
			continue
		}
		mean, dev, ok := s.Gaps.PredictGap(id)
		if !ok {
			approved[id] = dst // no history: allow, and learn from it
			continue
		}
		need := estimate(id, dst) * s.headroom()
		window := mean - dev
		if window >= need {
			approved[id] = dst
			continue
		}
		deferred = append(deferred, Deferral{
			FileID: id,
			Dst:    dst,
			Gap:    mean,
			Need:   need,
			// Hot files are "always accessed and never released": their
			// idle windows are an order of magnitude short of any move.
			Hot: window < need/10,
		})
	}
	sort.Slice(deferred, func(i, j int) bool { return deferred[i].FileID < deferred[j].FileID })
	return approved, deferred
}

// ClusterMoveEstimator builds a MoveEstimator from static device profiles:
// transfer time ≈ size / min(source read BW, destination write BW).
func ClusterMoveEstimator(sizes map[int64]int64, current map[int64]string, readBW, writeBW map[string]float64) MoveEstimator {
	return func(fileID int64, dst string) float64 {
		size := float64(sizes[fileID])
		src := current[fileID]
		r, okR := readBW[src]
		w, okW := writeBW[dst]
		if !okR || !okW || r <= 0 || w <= 0 {
			return math.Inf(1) // unknown path: never "safe"
		}
		bw := math.Min(r, w)
		return size / bw
	}
}
