package analysis

import "testing"

func TestDeterminism(t *testing.T) {
	RunTest(t, DeterminismAnalyzer, "determinism")
}

// The workload plane's packages are part of the deterministic core:
// their draws feed layouts and checkpoints, so wall-clock reads and the
// global rand stream are banned there too.
func TestDeterminismScopeCoversWorkloadPlane(t *testing.T) {
	for _, pkg := range []string{
		"geomancy/internal/generator",
		"geomancy/internal/scenario",
		"geomancy/internal/core",
	} {
		if !inDeterministicCore(pkg) {
			t.Errorf("%s not in the determinism analyzer's scope", pkg)
		}
	}
	for _, pkg := range []string{
		"geomancy/internal/telemetry",
		"geomancy/internal/experiments",
	} {
		if inDeterministicCore(pkg) {
			t.Errorf("%s unexpectedly in the determinism analyzer's scope", pkg)
		}
	}
}
