package analysis

import "testing"

func TestDeterminism(t *testing.T) {
	RunTest(t, DeterminismAnalyzer, "determinism")
}
