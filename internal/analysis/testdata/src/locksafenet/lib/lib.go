// Package lib is the upstream half of locksafe's cross-package fixture:
// Ping performs network I/O with no lock in sight, so analyzing this
// package exports a netIOFact that downstream callers are checked
// against.
package lib

import "net"

// Ping writes a probe on the connection.
func Ping(c net.Conn) error {
	_, err := c.Write([]byte("ping"))
	return err
}
