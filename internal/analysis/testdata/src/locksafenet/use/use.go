// Package use is the downstream half of locksafe's cross-package
// fixture: lib.Ping's netIOFact makes a call to it while a mutex is
// held a finding, even though this package never touches a connection
// directly.
package use

import (
	"net"
	"sync"

	"geomancy/internal/analysis/testdata/src/locksafenet/lib"
)

// Prober serializes probes behind a mutex.
type Prober struct {
	mu   sync.Mutex
	conn net.Conn
}

func (p *Prober) BadProbe() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return lib.Ping(p.conn) // want `call to lib\.Ping transitively performs network I/O \(net\.Conn\.Write\) while p\.mu is held`
}

func (p *Prober) GoodProbe() error {
	p.mu.Lock()
	conn := p.conn
	p.mu.Unlock()
	return lib.Ping(conn) // clean: lock released before the probe
}
