// Package ctxflow seeds violations and clean sites for the ctxflow
// analyzer's fixture suite.
package ctxflow

import (
	"context"
	"net"
)

type Server struct{ conn net.Conn }

func (s *Server) Push(b []byte) error { // want `exported Server\.Push performs I/O \(net\.Conn\.Write\)`
	_, err := s.conn.Write(b)
	return err
}

func (s *Server) PushWithCtx(ctx context.Context, b []byte) error { // clean: accepts a context
	_ = ctx
	_, err := s.conn.Write(b)
	return err
}

func (s *Server) Send(b []byte) error { // clean: SendContext sibling exists
	_, err := s.conn.Write(b)
	return err
}

func (s *Server) SendContext(ctx context.Context, b []byte) error {
	_ = ctx
	_, err := s.conn.Write(b)
	return err
}

func Dial(addr string) (net.Conn, error) { // want `exported Dial performs I/O \(net\.Dial\)`
	return net.Dial("tcp", addr)
}

//geomancy:allow ctxflow fixture: setup call returns immediately
func Exempt(addr string) (net.Conn, error) { // clean: allowlisted with reason
	return net.Dial("tcp", addr)
}

func (s *Server) Run() error { // clean: convenience wrapper of RunContext
	return s.RunContext(context.Background())
}

func (s *Server) RunContext(ctx context.Context) error {
	_ = ctx
	return nil
}

func synthesize() context.Context {
	return context.Background() // want `context\.Background synthesized in library code`
}

// flush is the I/O-owning helper the one-level rule sees through.
func (s *Server) flush(b []byte) error {
	_, err := s.conn.Write(b)
	return err
}

func (s *Server) Deliver(b []byte) error { // want `exported Server\.Deliver performs I/O through Server\.flush \(net\.Conn\.Write\) but accepts no context\.Context and has no DeliverContext variant`
	return s.flush(b)
}

func (s *Server) DeliverWithCtx(ctx context.Context, b []byte) error { // clean: accepts a context
	_ = ctx
	return s.flush(b)
}

func (s *Server) Post(b []byte) error { // clean: PostContext sibling exists
	return s.flush(b)
}

func (s *Server) PostContext(ctx context.Context, b []byte) error {
	_ = ctx
	return s.flush(b)
}

var _ = []any{Dial, Exempt, synthesize, (*Server).flush}
