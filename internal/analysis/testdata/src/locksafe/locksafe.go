// Package locksafe seeds violations and clean sites for the locksafe
// analyzer's fixture suite.
package locksafe

import (
	"net"
	"sync"
)

// Pool owns one connection serialized by a mutex.
type Pool struct {
	mu   sync.Mutex
	conn net.Conn
	wg   sync.WaitGroup
}

func (p *Pool) BadWrite(b []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, err := p.conn.Write(b) // want `network I/O \(net\.Conn\.Write\) while p\.mu is held`
	return err
}

func (p *Pool) GoodWrite(b []byte) error {
	p.mu.Lock()
	conn := p.conn
	p.mu.Unlock()
	_, err := conn.Write(b) // clean: lock released before the write
	return err
}

func (p *Pool) badSend(ch chan int) {
	p.mu.Lock()
	ch <- 1 // want `channel send while p\.mu is held`
	p.mu.Unlock()
}

func (p *Pool) writeLocked(b []byte) error {
	_, err := p.conn.Write(b) // want `while the caller's lock \(function is \*Locked\) is held`
	return err
}

func (p *Pool) allowedWrite(b []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	//geomancy:allow locksafe fixture: deadline-bounded serialization lock
	_, err := p.conn.Write(b) // clean: allowlisted with reason
	return err
}

func (p *Pool) Spawn() {
	go p.drain() // want `goroutine launched without a join`
}

func (p *Pool) SpawnJoined() {
	p.wg.Add(1)
	go func() { // clean: WaitGroup join
		defer p.wg.Done()
		p.drain()
	}()
}

func (p *Pool) SpawnDone() chan struct{} {
	done := make(chan struct{})
	go func() { // clean: done-channel join
		defer close(done)
		p.drain()
	}()
	return done
}

func (p *Pool) allowedSpawn() {
	//geomancy:allow locksafe fixture: fire-and-forget by design
	go p.drain() // clean: allowlisted with reason
}

func (p *Pool) drain() {}

// ship performs network I/O with no lock of its own: callers holding a
// lock inherit the finding transitively.
func (p *Pool) ship(b []byte) error {
	_, err := p.conn.Write(b)
	return err
}

// shipVia adds a second hop to the chain.
func (p *Pool) shipVia(b []byte) error { return p.ship(b) }

func (p *Pool) BadShip(b []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ship(b) // want `call to Pool\.ship transitively performs network I/O \(net\.Conn\.Write\) while p\.mu is held`
}

func (p *Pool) BadShipVia(b []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.shipVia(b) // want `call to Pool\.shipVia transitively performs network I/O \(net\.Conn\.Write\) while p\.mu is held`
}

func (p *Pool) GoodShip(b []byte) error {
	p.mu.Lock()
	b = append([]byte(nil), b...)
	p.mu.Unlock()
	return p.ship(b) // clean: lock released before the transitive I/O
}

// auditedShip's I/O is allowlisted at the leaf, so no netIOFact
// propagates to its callers.
func (p *Pool) auditedShip(b []byte) error {
	//geomancy:allow locksafe fixture: deadline-bounded write reviewed at the leaf
	_, err := p.conn.Write(b)
	return err
}

func (p *Pool) CallsAudited(b []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.auditedShip(b) // clean: the reviewed leaf does not re-flag its callers
}

var _ = []any{(*Pool).badSend, (*Pool).writeLocked, (*Pool).allowedSpawn, (*Pool).allowedWrite}
