// Package rngsource seeds violations and clean sites for the rngsource
// analyzer's fixture suite.
package rngsource

import (
	"errors"
	"math/rand"
	v2 "math/rand/v2"
)

func directStream(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want `direct rand\.New outside internal/rng` `direct rand\.NewSource outside internal/rng`
}

func directSourceOnly(seed int64) rand.Source {
	return rand.NewSource(seed) // want `direct rand\.NewSource outside internal/rng`
}

func directZipf(r *rand.Rand) *rand.Zipf {
	return rand.NewZipf(r, 1.1, 1, 100) // want `direct rand\.NewZipf outside internal/rng`
}

func directV2() *v2.Rand {
	return v2.New(v2.NewPCG(1, 2)) // want `direct rand/v2\.New outside internal/rng` `direct rand/v2\.NewPCG outside internal/rng`
}

func directChaCha(seed [32]byte) v2.Source {
	return v2.NewChaCha8(seed) // want `direct rand/v2\.NewChaCha8 outside internal/rng`
}

func allowedLegacy(seed int64) rand.Source {
	return rand.NewSource(seed) //geomancy:allow rngsource fixture: pre-checkpoint stream kept for trace replay
}

func bareDirective(seed int64) rand.Source {
	//geomancy:allow rngsource // want `directive is missing a reason`
	return rand.NewSource(seed)
}

func otherNewIsClean() error {
	return errors.New("not a stream") // clean: unrelated constructor named New
}

func methodUseIsClean(r *rand.Rand) int {
	return r.Intn(10) // clean: drawing from an existing stream is fine anywhere
}

var _ = []any{directStream, directSourceOnly, directZipf, directV2,
	directChaCha, allowedLegacy, bareDirective, otherNewIsClean, methodUseIsClean}

// Checkpointable-plane struct fields: a raw math/rand stream in a struct
// has no readable position, so a snapshot cannot round-trip it.

type badHolder struct {
	r *rand.Rand // want `rand\.Rand field in a checkpointable-plane package`
}

type badSourceHolder struct {
	src rand.Source // want `rand\.Source field in a checkpointable-plane package`
}

type badV2Holder struct {
	r *v2.Rand // want `rand/v2\.Rand field in a checkpointable-plane package`
}

type badZipfHolder struct {
	z *rand.Zipf // want `rand\.Zipf field in a checkpointable-plane package`
}

type allowedHolder struct {
	r *rand.Rand //geomancy:allow rngsource fixture: test-only helper never checkpointed
}

type cleanHolder struct {
	seed  int64   // clean: a seed is serializable
	state uint64  // clean: a splitmix64 register is serializable
	name  string  // clean: unrelated field
	ratio float64 // clean: unrelated field
}

var _ = []any{badHolder{}, badSourceHolder{}, badV2Holder{}, badZipfHolder{}, allowedHolder{}, cleanHolder{}}
