// Package errcompare seeds violations and clean sites for the
// errcompare analyzer's fixture suite.
package errcompare

import (
	"errors"
	"fmt"
)

// ErrClosed is a sentinel in the repo's convention: package-level,
// Err-prefixed, error-typed.
var ErrClosed = errors.New("closed")

func compareEq(err error) bool {
	return err == ErrClosed // want `sentinel errcompare\.ErrClosed compared with ==`
}

func compareNeq(err error) bool {
	return ErrClosed != err // want `sentinel errcompare\.ErrClosed compared with !=`
}

func compareIs(err error) bool {
	return errors.Is(err, ErrClosed) // clean: errors.Is
}

func compareNil(err error) bool {
	return err == nil // clean: nil check, not a sentinel match
}

func switchCase(err error) string {
	switch err {
	case ErrClosed: // want `sentinel errcompare\.ErrClosed matched by switch case`
		return "closed"
	default:
		return ""
	}
}

func wrapBad(err error) error {
	return fmt.Errorf("op failed: %v", err) // want `without %w`
}

func wrapGood(err error) error {
	return fmt.Errorf("op failed: %w", err) // clean: %w keeps the chain
}

func formatValue(s string) error {
	return fmt.Errorf("bad value %q", s) // clean: no error interpolated
}

func allowComparison(err error) bool {
	//geomancy:allow errcompare fixture: identity check is intentional
	return err == ErrClosed // clean: allowlisted with reason
}

var _ = []any{compareEq, compareNeq, compareIs, compareNil, switchCase,
	wrapBad, wrapGood, formatValue, allowComparison}
