// Package determinism seeds violations and clean sites for the
// determinism analyzer's fixture suite.
package determinism

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func clock() time.Time {
	return time.Now() // want `time\.Now in the deterministic core`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since in the deterministic core`
}

func globalRand() int {
	return rand.Intn(10) // want `global rand\.Intn in the deterministic core`
}

func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // clean: seeded private stream
	return rng.Intn(10)
}

func allowedClock() time.Time {
	return time.Now() //geomancy:nondeterministic fixture: telemetry timestamp
}

func bareDirective() time.Time {
	//geomancy:nondeterministic // want `directive is missing a reason`
	return time.Now()
}

func encodeOrder(m map[string]int) []string {
	var out []string
	for k := range m { // want `iteration over map has nondeterministic order`
		out = append(out, k)
	}
	return out
}

func sortedOrder(m map[string]int) []string {
	var out []string
	for k := range m { // clean: sorted before the order can be observed
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func aggregate(m map[string]int) int {
	total := 0
	for _, v := range m { // clean: order-insensitive reduction
		total += v
	}
	return total
}

func printOrder(m map[string]int) {
	for k := range m { // want `iteration over map has nondeterministic order`
		fmt.Println(k)
	}
}

func sendOrder(m map[string]int, ch chan string) {
	for k := range m { // want `iteration over map has nondeterministic order`
		ch <- k
	}
}

var _ = []any{clock, elapsed, globalRand, seededRand, allowedClock,
	bareDirective, encodeOrder, sortedOrder, aggregate, printOrder, sendOrder}
