// Package use is the downstream half of statecheck's cross-package
// hidden-state fixture: capturing lib.Clock by plain value is flagged
// (its unexported ticks never reach gob), while lib.Covered (upstream
// coveredFact) and lib.Sealed (MarshalBinary) pass.
package use

import "geomancy/internal/analysis/testdata/src/statecheck/lib"

// Engine captures three upstream types by value.
type Engine struct {
	Clock   lib.Clock // want `field Engine\.Clock is captured by value, but Clock hides unexported state \(ticks\) from gob; delegate to its capture method or implement GobEncode`
	Covered lib.Covered
	Sealed  lib.Sealed
	Steps   int
}

// EngineState is the wire form.
type EngineState struct {
	Clock   lib.Clock
	Covered lib.Covered
	Sealed  lib.Sealed
	Steps   int
}

// State copies every field into the payload by value.
func (e *Engine) State() EngineState {
	return EngineState{Clock: e.Clock, Covered: e.Covered, Sealed: e.Sealed, Steps: e.Steps}
}
