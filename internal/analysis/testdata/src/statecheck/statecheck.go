// Package statecheck seeds violations and clean sites for the
// statecheck analyzer's fixture suite: serialization-coverage (rule 1),
// zero-state reliance through a promoted MarshalState (rule 2), and the
// gob payload walk (rule 3). The cross-package hidden-state rule (4)
// lives in the lib/use sibling packages.
package statecheck

import (
	"bytes"
	"encoding/gob"
	"io"
)

// Adam mirrors the repo's worst historical bug shape: State() captures
// the step counter but forgets the moment vectors, so a restored
// optimizer silently restarts with zeroed moments.
type Adam struct {
	M []float64 // want `field Adam\.M is not captured by the state serialization of Adam and not marked //geomancy:ephemeral`
	V []float64 // want `field Adam\.V is not captured by the state serialization of Adam and not marked //geomancy:ephemeral`
	T int
}

// AdamState is the (incomplete) wire form.
type AdamState struct {
	T int
}

func (a *Adam) State() AdamState { return AdamState{T: a.T} }

// GoodAdam captures every field.
type GoodAdam struct {
	M []float64
	V []float64
	T int
}

// GoodAdamState is the complete wire form.
type GoodAdamState struct {
	M, V []float64
	T    int
}

func (a *GoodAdam) State() GoodAdamState {
	return GoodAdamState{M: a.M, V: a.V, T: a.T}
}

// Engine mixes a captured field, an annotated ephemeral, and a leak.
type Engine struct {
	Steps   int
	rate    float64   // want `field Engine\.rate is not captured by the state serialization of Engine and not marked //geomancy:ephemeral`
	scratch []float64 //geomancy:ephemeral forward-pass scratch, recomputed every step
}

// EngineState is the wire form.
type EngineState struct {
	Steps int
}

func (e *Engine) State() EngineState { return EngineState{Steps: e.Steps} }

// Loop captures one field through a same-package helper: the closure
// walk must follow the call.
type Loop struct {
	count int
	last  float64
}

// LoopState is the wire form.
type LoopState struct {
	Count int
	Last  float64
}

func (l *Loop) State() LoopState { return LoopState{Count: l.count, Last: l.captureLast()} }

func (l *Loop) captureLast() float64 { return l.last }

// Sched has no capture method of its own; Outer's closure reading
// Window adopts it, which holds Slack to the same standard.
type Sched struct {
	Window int
	Slack  float64 // want `field Sched\.Slack is not captured by the state serialization of Sched and not marked //geomancy:ephemeral`
}

// Outer owns a Sched and serializes only half of it.
type Outer struct {
	sched *Sched
}

// OuterState is the wire form.
type OuterState struct {
	Window int
}

func (o *Outer) State() OuterState { return OuterState{Window: o.sched.Window} }

// Stateless is the promoted-MarshalState embed (policy.Stateless's
// shape): embedding it satisfies an interface without serializing the
// outer type's fields.
type Stateless struct{}

// MarshalState implements the checkpoint interface with no state.
func (Stateless) MarshalState() ([]byte, error) { return nil, nil }

// UnmarshalState implements the checkpoint interface with no state.
func (Stateless) UnmarshalState([]byte) error { return nil }

// Counter mutates a field at runtime that its promoted MarshalState can
// never capture — the unserialized done-flag bug class.
type Counter struct {
	Stateless
	n int // want `field Counter\.n is mutated at runtime but Counter only inherits a promoted MarshalState that cannot capture it; serialize it or mark it //geomancy:ephemeral`
}

// Bump is a runtime mutation (not a constructor or restore path).
func (c *Counter) Bump() { c.n = c.n + 1 }

// TelemetryCounter is the same shape with the mutation annotated away.
type TelemetryCounter struct {
	Stateless
	hits int //geomancy:ephemeral fixture: telemetry counter, recomputed after restore
}

// Note is a runtime mutation covered by the ephemeral directive.
func (t *TelemetryCounter) Note() { t.hits = t.hits + 1 }

// GoodCounter overrides the promoted MarshalState with its own capture.
type GoodCounter struct {
	Stateless
	n int
}

// MarshalState captures n, so runtime mutations are fine.
func (c *GoodCounter) MarshalState() ([]byte, error) {
	_ = c.n
	return nil, nil
}

// Tally is a runtime mutation of a properly captured field.
func (c *GoodCounter) Tally() { c.n = c.n + 1 }

// Coordinator mirrors the sharded-coordinator shape: MarshalState
// delegates to a per-unit capture helper (one opaque blob per unit), the
// reusable inference buffer is annotated ephemeral, and the scorer
// generation gate leaks — a restored coordinator would silently skip
// re-adopting the shared scorer.
type Coordinator struct {
	units    []coordUnit
	adopted  uint64 // want `field Coordinator\.adopted is not captured by the state serialization of Coordinator and not marked //geomancy:ephemeral`
	explored int
	combined []float64 //geomancy:ephemeral fixture: reusable inference buffer, overwritten per cycle
}

// coordUnit is one unit's wire-clean state.
type coordUnit struct {
	Decisions int
}

// coordState is the coordinator's wire form.
type coordState struct {
	Explored int
	Units    [][]byte
}

// unitStates captures one blob per unit — the helper MarshalState
// delegates to, so the closure walk must follow the call and count the
// units field as captured.
func (c *Coordinator) unitStates() ([][]byte, error) {
	out := make([][]byte, 0, len(c.units))
	for i := range c.units {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(c.units[i]); err != nil {
			return nil, err
		}
		out = append(out, buf.Bytes())
	}
	return out, nil
}

// MarshalState assembles the wire form from the per-unit blobs.
func (c *Coordinator) MarshalState() ([]byte, error) {
	units, err := c.unitStates()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(coordState{Explored: c.explored, Units: units}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Net's Save is a gob-capture root: it feeds receiver-derived data to
// (*gob.Encoder).Encode, so its closure governs Net's coverage.
type Net struct {
	W    []float64
	bias []float64 // want `field Net\.bias is not captured by the state serialization of Net and not marked //geomancy:ephemeral`
}

type netSnapshot struct {
	W []float64
}

// Save writes the (incomplete) snapshot.
func (n *Net) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(netSnapshot{W: n.W})
}

// hiddenClock carries unexported state and no GobEncode/MarshalBinary:
// gob drops ticks without error.
type hiddenClock struct {
	ticks int
}

// Snapshot embeds the leaky type in an otherwise exported payload.
type Snapshot struct {
	Clock hiddenClock
}

// SaveSnapshot trips the gob payload walk.
func SaveSnapshot(w io.Writer, s *Snapshot) error {
	return gob.NewEncoder(w).Encode(s) // want `gob payload reaches statecheck\.hiddenClock, whose unexported fields \(ticks\) gob silently drops; give it GobEncode/MarshalBinary or restructure the payload`
}

// sealed serializes itself, so the walk stops at it.
type sealed struct {
	n int
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s sealed) MarshalBinary() ([]byte, error) { return []byte{byte(s.n)}, nil }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *sealed) UnmarshalBinary(b []byte) error { s.n = int(b[0]); return nil }

// CleanSnapshot's only unexported-state type handles its own encoding.
type CleanSnapshot struct {
	S sealed
}

// SaveClean is a clean gob payload.
func SaveClean(w io.Writer, s *CleanSnapshot) error {
	return gob.NewEncoder(w).Encode(s) // clean: sealed implements MarshalBinary
}
