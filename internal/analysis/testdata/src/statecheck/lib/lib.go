// Package lib is the upstream half of statecheck's cross-package
// hidden-state fixture: Clock hides unexported state from gob, Covered
// proves its coverage upstream (exporting a coveredFact), and Sealed
// serializes itself.
package lib

// Clock hides unexported state: capturing one by value through gob
// silently zeroes ticks.
type Clock struct {
	ticks int
}

// Tick advances the clock.
func (c *Clock) Tick() { c.ticks++ }

// Covered has its own capture method reading every field, so this
// package's statecheck pass exports a coveredFact for it.
type Covered struct {
	pos int
}

// CoveredState is the wire form.
type CoveredState struct {
	Pos int
}

// State captures pos.
func (c *Covered) State() CoveredState { return CoveredState{Pos: c.pos} }

// Sealed handles its own encoding.
type Sealed struct {
	n int
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s Sealed) MarshalBinary() ([]byte, error) { return []byte{byte(s.n)}, nil }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *Sealed) UnmarshalBinary(b []byte) error { s.n = int(b[0]); return nil }
