// Package telemetry is a miniature stand-in for internal/telemetry: the
// metricnames analyzer recognizes any package named telemetry that
// declares a Registry type, so the fixture exercises the production
// code path without importing the real registry.
package telemetry

// Label is one key=value metric dimension.
type Label struct{ Key, Value string }

// Counter is a stub metric handle.
type Counter struct{}

// Registry is the stub registry the analyzer polices.
type Registry struct{}

func (r *Registry) Counter(name string, labels ...Label) *Counter { return nil }

func (r *Registry) Gauge(name string, labels ...Label) *Counter { return nil }

func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Counter { return nil }

func (r *Registry) Help(name, text string) {}
