package telemetry

// Canonical metric names of the fixture schema.
const (
	MetricUsed   = "fixture_used_total"
	MetricUnused = "fixture_unused_total" // want `MetricUnused is declared in names\.go but never used`
)
