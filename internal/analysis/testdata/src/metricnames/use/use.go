// Package use consumes the fixture telemetry registry with both legal
// and ad hoc metric names.
package use

import "geomancy/internal/analysis/testdata/src/metricnames/telemetry"

// Wire creates metrics with a declared constant (clean), a string
// literal, and a local variable (both flagged).
func Wire(reg *telemetry.Registry) {
	reg.Counter(telemetry.MetricUsed)  // clean: declared constant
	reg.Counter("fixture_adhoc_total") // want `must be a Metric\* constant`
	name := "fixture_var_total"
	reg.Gauge(name)                                       // want `must be a Metric\* constant`
	reg.Histogram(telemetry.MetricUsed, []float64{1, 10}) // clean: declared constant
}
