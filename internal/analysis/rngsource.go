package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// RngSourceAnalyzer enforces the checkpoint plane's ownership of random
// streams: every stream in this module is constructed through
// internal/rng — rng.New for checkpointable streams whose position is
// captured and restored by snapshots, rng.NewRand for seeded throwaway
// streams — so a direct rand.New/rand.NewSource call anywhere else
// creates a stream the checkpoint subsystem cannot see. Such a stream
// resumes from its seed instead of its position after a restore and
// silently breaks bit-identical resume.
var RngSourceAnalyzer = &Analyzer{
	Name: "rngsource",
	Doc: "flags direct math/rand (and math/rand/v2) source construction outside " +
		"internal/rng, and raw *rand.Rand / rand.Source struct fields in " +
		"checkpointable-plane packages (internal/policy, internal/scenario), " +
		"whose stream position no snapshot can capture; build streams with " +
		"rng.New or rng.NewRand and store *rng.RNG in serializable structs",
	Filter: outsideRngPackage,
	Run:    runRngSource,
}

func outsideRngPackage(pkgPath string) bool {
	return pkgPath != "geomancy/internal/rng" && !strings.HasSuffix(pkgPath, "/internal/rng")
}

// statefulPlanePkg reports whether pkgPath holds checkpointable state:
// every struct there must round-trip through MarshalState/UnmarshalState,
// so a raw math/rand field (no readable position) is always a bug. The
// fixture package opts in so the check stays under test.
func statefulPlanePkg(pkgPath string) bool {
	return strings.HasSuffix(pkgPath, "/internal/policy") ||
		strings.HasSuffix(pkgPath, "/internal/scenario") ||
		strings.Contains(pkgPath, "testdata/src/rngsource")
}

// rawRandField reports whether t is a stream type from math/rand or
// math/rand/v2 (optionally behind a pointer) whose position cannot be
// extracted for checkpointing.
func rawRandField(t types.Type) (string, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return "", false
	}
	pkg := n.Obj().Pkg().Path()
	if pkg != "math/rand" && pkg != "math/rand/v2" {
		return "", false
	}
	switch n.Obj().Name() {
	case "Rand", "Zipf":
		return strings.TrimPrefix(pkg, "math/") + "." + n.Obj().Name(), true
	}
	// rand.Source is an interface: any implementation hides its position.
	if n.Obj().Name() == "Source" {
		return strings.TrimPrefix(pkg, "math/") + ".Source", true
	}
	return "", false
}

// randConstructors are the stream/source constructors whose state would
// escape checkpointing, per math/rand package version.
var randConstructors = map[string]map[string]bool{
	"math/rand":    {"New": true, "NewSource": true, "NewZipf": true},
	"math/rand/v2": {"New": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true},
}

func runRngSource(pass *Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if sig, _ := fn.Type().(*types.Signature); sig == nil || sig.Recv() != nil {
				return true
			}
			if names := randConstructors[fn.Pkg().Path()]; names[fn.Name()] {
				pass.Reportf(call.Pos(), "direct %s.%s outside internal/rng: streams built here escape checkpointing; use rng.New (checkpointable) or rng.NewRand (seeded throwaway)",
					strings.TrimPrefix(fn.Pkg().Path(), "math/"), fn.Name())
			}
			return true
		})
	}
	if statefulPlanePkg(pass.Pkg.Path()) {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					t := pass.TypesInfo.TypeOf(field.Type)
					if t == nil {
						continue
					}
					if name, bad := rawRandField(t); bad {
						pass.Reportf(field.Pos(), "%s field in a checkpointable-plane package: its stream position cannot be serialized; store *rng.RNG and persist it with State()/FromState", name)
					}
				}
				return true
			})
		}
	}
	return nil, nil
}
