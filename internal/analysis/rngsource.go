package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// RngSourceAnalyzer enforces the checkpoint plane's ownership of random
// streams: every stream in this module is constructed through
// internal/rng — rng.New for checkpointable streams whose position is
// captured and restored by snapshots, rng.NewRand for seeded throwaway
// streams — so a direct rand.New/rand.NewSource call anywhere else
// creates a stream the checkpoint subsystem cannot see. Such a stream
// resumes from its seed instead of its position after a restore and
// silently breaks bit-identical resume.
var RngSourceAnalyzer = &Analyzer{
	Name: "rngsource",
	Doc: "flags direct math/rand (and math/rand/v2) source construction outside " +
		"internal/rng; build streams with rng.New or rng.NewRand instead",
	Filter: outsideRngPackage,
	Run:    runRngSource,
}

func outsideRngPackage(pkgPath string) bool {
	return pkgPath != "geomancy/internal/rng" && !strings.HasSuffix(pkgPath, "/internal/rng")
}

// randConstructors are the stream/source constructors whose state would
// escape checkpointing, per math/rand package version.
var randConstructors = map[string]map[string]bool{
	"math/rand":    {"New": true, "NewSource": true, "NewZipf": true},
	"math/rand/v2": {"New": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true},
}

func runRngSource(pass *Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if sig, _ := fn.Type().(*types.Signature); sig == nil || sig.Recv() != nil {
				return true
			}
			if names := randConstructors[fn.Pkg().Path()]; names[fn.Name()] {
				pass.Reportf(call.Pos(), "direct %s.%s outside internal/rng: streams built here escape checkpointing; use rng.New (checkpointable) or rng.NewRand (seeded throwaway)",
					strings.TrimPrefix(fn.Pkg().Path(), "math/"), fn.Name())
			}
			return true
		})
	}
	return nil, nil
}
