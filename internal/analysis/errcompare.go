package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ErrCompareAnalyzer keeps the typed-error API honest: sentinel errors
// (package-level `var ErrX = errors.New(...)` values such as
// geomancy.ErrClosed, core.ErrNoTelemetry, core.ErrNotTrained,
// core.ErrUnavailable) travel through wrapped chains, so comparing them
// with == / != or a switch silently breaks once any layer wraps — and
// fmt.Errorf that swallows an error without %w severs the chain that
// errors.Is depends on.
var ErrCompareAnalyzer = &Analyzer{
	Name: "errcompare",
	Doc: "sentinel errors must be matched with errors.Is, and errors passed to " +
		"fmt.Errorf must be wrapped with %w",
	Run: runErrCompare,
}

func runErrCompare(pass *Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if name := sentinelName(pass, n.X); name != "" {
					pass.Reportf(n.Pos(), "sentinel %s compared with %s: use errors.Is so wrapped chains still match", name, n.Op)
				} else if name := sentinelName(pass, n.Y); name != "" {
					pass.Reportf(n.Pos(), "sentinel %s compared with %s: use errors.Is so wrapped chains still match", name, n.Op)
				}
			case *ast.SwitchStmt:
				checkErrSwitch(pass, n)
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// sentinelName returns "pkg.ErrX" when e references a package-level
// error variable whose name starts with "Err", else "".
func sentinelName(pass *Pass, e ast.Expr) string {
	var obj types.Object
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[e.Sel]
	default:
		return ""
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || !strings.HasPrefix(v.Name(), "Err") || !isErrorType(v.Type()) {
		return ""
	}
	// Package-level variables only: locals named Err* are not sentinels.
	if v.Parent() != v.Pkg().Scope() {
		return ""
	}
	return v.Pkg().Name() + "." + v.Name()
}

// checkErrSwitch flags `switch err { case ErrX: }` over sentinels.
func checkErrSwitch(pass *Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil || !isErrorType(pass.TypesInfo.Types[sw.Tag].Type) {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if name := sentinelName(pass, e); name != "" {
				pass.Reportf(e.Pos(), "sentinel %s matched by switch case: use errors.Is so wrapped chains still match", name)
			}
		}
	}
}

// checkErrorfWrap flags fmt.Errorf calls that interpolate an error value
// without a %w verb in a constant format string.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if !isPkgLevelFunc(fn, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	if strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		t := pass.TypesInfo.Types[arg].Type
		if t != nil && isErrorInterface(t) {
			pass.Reportf(arg.Pos(), "error passed to fmt.Errorf without %%w: the chain is severed and errors.Is callers cannot match it")
			return
		}
	}
}

// isErrorInterface matches only values statically typed as `error` (or
// a concrete type implementing it whose name says error) — so stringly
// fields named Error stay exempt.
func isErrorInterface(t types.Type) bool {
	if t.String() == "error" {
		return true
	}
	n := namedOf(t)
	if n == nil {
		return false
	}
	return isErrorType(t) && n.Obj().Pkg() != nil
}
