package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// CallGraph is one package's static call graph: every declared function
// or method, with the statically resolvable calls its body makes. Edges
// point at FactKeys, so callees in other packages — resolvable only as
// export-data objects — participate the same way local ones do; dynamic
// calls (function values, interface methods without a named concrete
// receiver) have no edge, which keeps every derived property an
// under-approximation: the graph never claims a call that cannot happen.
type CallGraph struct {
	// Decls maps each declared function's key to its declaration.
	Decls map[FactKey]*ast.FuncDecl
	// Callees maps each declared function's key to the keys of functions
	// its body calls (deduplicated, sorted for determinism).
	Callees map[FactKey][]FactKey

	order []FactKey // declaration order, for deterministic iteration
}

// NewCallGraph builds the call graph of the pass's package. Function
// literals are attributed to their enclosing declaration: a call made
// inside a closure body is an edge of the declaring function, because the
// closure may run on the declaring function's synchronous path.
// Goroutine bodies are excluded — a `go` statement's work does not run on
// the caller's stack, so its calls are not the caller's calls.
func NewCallGraph(pass *Pass) *CallGraph {
	g := &CallGraph{
		Decls:   make(map[FactKey]*ast.FuncDecl),
		Callees: make(map[FactKey][]FactKey),
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			key, ok := FuncKey(obj)
			if !ok {
				continue
			}
			g.Decls[key] = fd
			g.order = append(g.order, key)
			seen := make(map[FactKey]bool)
			var callees []FactKey
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					return false // asynchronous: not on this function's path
				case *ast.CallExpr:
					fn := calleeFunc(pass.TypesInfo, n)
					if ck, ok := FuncKey(fn); ok && !seen[ck] {
						seen[ck] = true
						callees = append(callees, ck)
					}
				}
				return true
			})
			sort.Slice(callees, func(i, j int) bool {
				if callees[i].Pkg != callees[j].Pkg {
					return callees[i].Pkg < callees[j].Pkg
				}
				return callees[i].Object < callees[j].Object
			})
			g.Callees[key] = callees
		}
	}
	return g
}

// Keys returns the declared functions in declaration order.
func (g *CallGraph) Keys() []FactKey { return g.order }

// Fixpoint propagates a bottom-up property through the package until it
// stabilizes: starting from the functions has already holds for (direct
// evidence or imported facts), any function calling a marked function is
// marked via mark(caller, callee). Iteration is in declaration order and
// repeats until a full sweep marks nothing, so call chains resolve
// regardless of declaration order; mark must make has(caller) true.
func (g *CallGraph) Fixpoint(has func(FactKey) bool, mark func(caller, callee FactKey)) {
	for changed := true; changed; {
		changed = false
		for _, caller := range g.order {
			if has(caller) {
				continue
			}
			for _, callee := range g.Callees[caller] {
				if has(callee) {
					mark(caller, callee)
					changed = true
					break
				}
			}
		}
	}
}

// Closure returns the set of declared-in-package functions reachable from
// the roots by following static call edges (roots included when they are
// declared here). Edges into other packages terminate: only this
// package's bodies are available to walk.
func (g *CallGraph) Closure(roots []FactKey) map[FactKey]*ast.FuncDecl {
	out := make(map[FactKey]*ast.FuncDecl)
	var visit func(k FactKey)
	visit = func(k FactKey) {
		fd, declared := g.Decls[k]
		if !declared || out[k] != nil {
			return
		}
		out[k] = fd
		for _, c := range g.Callees[k] {
			visit(c)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return out
}
