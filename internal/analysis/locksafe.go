package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// LockSafeAnalyzer guards the concurrency invariants the agents plane
// depends on: a sync.Mutex/RWMutex must not be held across blocking
// network I/O or a channel send (a slow peer then stalls every other
// path into the lock), and goroutines launched in library code must
// have a join — a WaitGroup or a done channel — so Close can prove
// quiescence (the "no goroutine leaks" acceptance test of the fault
// plane). Functions whose name ends in "Locked" are, by repo
// convention, called with the lock held and are checked the same way.
//
// The I/O rule is interprocedural: every function that performs network
// I/O on its synchronous path — directly or by calling another such
// function, in this package or (via netIOFact) any dependency — is
// tracked, and a call to one while a lock is held is flagged just like
// the raw conn.Write would be. Dynamic calls carry no fact, so the
// property stays an under-approximation: every flagged chain is real.
var LockSafeAnalyzer = &Analyzer{
	Name: "locksafe",
	Doc: "no mutex held across network I/O or channel sends — directly or through " +
		"any statically resolvable call chain; no goroutine in library code " +
		"without a WaitGroup or done-channel join",
	Run: runLockSafe,
}

// netIOFact marks a function that performs blocking network I/O on its
// synchronous path, directly or transitively. Desc names the I/O at the
// end of the chain (e.g. "net.Conn.Write") for diagnostics.
type netIOFact struct {
	Desc string
}

func (*netIOFact) AFact() {}

func runLockSafe(pass *Pass) (any, error) {
	netIO := netIOFuncs(pass, NewCallGraph(pass))
	isMain := pass.Pkg.Name() == "main"
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			held := make(map[string]bool)
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				held["<caller>"] = true
			}
			checkLockedStmts(pass, fd.Body.List, held, netIO)
			if !isMain {
				checkGoroutineJoins(pass, fd)
			}
		}
	}
	return nil, nil
}

// netIOFuncs computes the package's network-I/O-performing functions:
// seeded by direct blocking calls in each body (goroutine bodies
// excluded — their I/O is not on the caller's path), grown to a fixpoint
// over the call graph, with cross-package callees resolved through
// imported netIOFacts. Every function in the result is exported as a
// netIOFact for dependent packages.
func netIOFuncs(pass *Pass, g *CallGraph) map[FactKey]string {
	netIO := make(map[FactKey]string)
	for _, key := range g.Keys() {
		fd := g.Decls[key]
		desc := ""
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if desc != "" {
				return false
			}
			switch n := n.(type) {
			case *ast.GoStmt:
				return false
			case *ast.CallExpr:
				if d := ioCallDesc(pass.TypesInfo, n); d != "" {
					// An allowlisted I/O site has been reviewed; it does not
					// make this function I/O-performing for its callers.
					if pass.allowlisted(n.Pos()) {
						return true
					}
					desc = d
					return false
				}
			}
			return true
		})
		if desc != "" {
			netIO[key] = desc
		}
	}
	g.Fixpoint(
		func(k FactKey) bool {
			if _, ok := netIO[k]; ok {
				return true
			}
			if k.Pkg != pass.Pkg.Path() {
				var f netIOFact
				if pass.ImportFact(k, &f) {
					netIO[k] = f.Desc
					return true
				}
			}
			return false
		},
		func(caller, callee FactKey) { netIO[caller] = netIO[callee] },
	)
	for key, desc := range netIO {
		if _, declared := g.Decls[key]; declared {
			pass.ExportFact(key, &netIOFact{Desc: desc})
		}
	}
	return netIO
}

// funcDisplay renders a callee for diagnostics: "Recv.Method" or "Func"
// locally, package-qualified across packages.
func funcDisplay(pass *Pass, fn *types.Func, key FactKey) string {
	if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
		return fn.Pkg().Name() + "." + key.Object
	}
	return key.Object
}

// exprString renders the receiver expression of a Lock/Unlock call so
// matching Lock/Unlock pairs can be correlated textually.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var b bytes.Buffer
	printer.Fprint(&b, fset, e)
	return b.String()
}

// mutexMethod classifies x.Lock()/x.Unlock()-style calls on
// sync.Mutex/sync.RWMutex, returning the receiver key and whether the
// call acquires (true) or releases (false); ok=false otherwise.
func mutexMethod(pass *Pass, call *ast.CallExpr) (key string, acquire, ok bool) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || !typeIsFromPkg(receiverType(fn), "sync", "Mutex", "RWMutex") {
		return "", false, false
	}
	sel, selOK := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !selOK {
		return "", false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return exprString(pass.Fset, sel.X), true, true
	case "Unlock", "RUnlock":
		return exprString(pass.Fset, sel.X), false, true
	}
	return "", false, false
}

// checkLockedStmts walks a statement list in order, tracking which
// mutexes are held, and reports blocking operations executed while any
// lock is held. Nested control flow shares the held set — precise
// branch-sensitive tracking is not needed for the invariant.
func checkLockedStmts(pass *Pass, stmts []ast.Stmt, held map[string]bool, netIO map[FactKey]string) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if key, acquire, ok := mutexMethod(pass, call); ok {
					if acquire {
						held[key] = true
					} else {
						delete(held, key)
					}
					continue
				}
			}
		case *ast.DeferStmt:
			if _, _, ok := mutexMethod(pass, s.Call); ok {
				// defer mu.Unlock(): the lock stays held to function end;
				// leave the held set untouched and keep scanning.
				continue
			}
		case *ast.BlockStmt:
			checkLockedStmts(pass, s.List, held, netIO)
			continue
		case *ast.IfStmt:
			checkStmtWhileHeld(pass, s.Init, held, netIO)
			checkExprWhileHeld(pass, s.Cond, held, netIO)
			checkLockedStmts(pass, s.Body.List, held, netIO)
			if s.Else != nil {
				checkLockedStmts(pass, []ast.Stmt{s.Else}, held, netIO)
			}
			continue
		case *ast.ForStmt:
			checkLockedStmts(pass, s.Body.List, held, netIO)
			continue
		case *ast.RangeStmt:
			checkLockedStmts(pass, s.Body.List, held, netIO)
			continue
		}
		checkStmtWhileHeld(pass, stmt, held, netIO)
	}
}

// checkStmtWhileHeld reports blocking operations inside stmt when a
// lock is held: direct network I/O, channel sends, and calls to
// functions known (by local fixpoint or imported netIOFact) to perform
// network I/O somewhere down their synchronous call chain.
func checkStmtWhileHeld(pass *Pass, stmt ast.Stmt, held map[string]bool, netIO map[FactKey]string) {
	if stmt == nil || len(held) == 0 {
		return
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its body runs later, not under this lock
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send while %s is held: a blocked receiver stalls every path into the lock", heldName(held))
		case *ast.CallExpr:
			if desc := ioCallDesc(pass.TypesInfo, n); desc != "" {
				pass.Reportf(n.Pos(), "network I/O (%s) while %s is held: a slow peer stalls every path into the lock", desc, heldName(held))
				return true
			}
			fn := calleeFunc(pass.TypesInfo, n)
			key, ok := FuncKey(fn)
			if !ok {
				return true
			}
			desc, marked := netIO[key]
			if !marked && key.Pkg != pass.Pkg.Path() {
				var f netIOFact
				if pass.ImportFact(key, &f) {
					desc, marked = f.Desc, true
				}
			}
			if marked {
				pass.Reportf(n.Pos(), "call to %s transitively performs network I/O (%s) while %s is held: a slow peer stalls every path into the lock", funcDisplay(pass, fn, key), desc, heldName(held))
			}
		}
		return true
	})
}

func checkExprWhileHeld(pass *Pass, e ast.Expr, held map[string]bool, netIO map[FactKey]string) {
	if e == nil || len(held) == 0 {
		return
	}
	checkStmtWhileHeld(pass, &ast.ExprStmt{X: e}, held, netIO)
}

// heldName names one held lock for the diagnostic, "<caller>" meaning
// the lock the *Locked naming convention documents.
func heldName(held map[string]bool) string {
	name := ""
	for k := range held {
		if name == "" || k < name {
			name = k
		}
	}
	if name == "<caller>" {
		return "the caller's lock (function is *Locked)"
	}
	return name
}

// checkGoroutineJoins flags `go` statements in library code with no
// visible join: neither the enclosing function nor the goroutine body
// shows a WaitGroup, a done-channel close/send, or a channel being
// constructed to coordinate shutdown.
func checkGoroutineJoins(pass *Pass, fd *ast.FuncDecl) {
	var gos []*ast.GoStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			gos = append(gos, g)
		}
		return true
	})
	if len(gos) == 0 {
		return
	}
	if funcShowsJoin(pass, fd.Body) {
		return
	}
	for _, g := range gos {
		pass.Reportf(g.Pos(), "goroutine launched without a join: add a sync.WaitGroup or done channel so Close can prove quiescence")
	}
}

// funcShowsJoin reports whether body references a sync.WaitGroup,
// constructs a channel, closes one, or sends on one — the joinable
// shutdown patterns.
func funcShowsJoin(pass *Pass, body *ast.BlockStmt) bool {
	join := false
	ast.Inspect(body, func(n ast.Node) bool {
		if join {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			join = true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" &&
				pass.TypesInfo.Uses[id] == types.Universe.Lookup("close") {
				join = true
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "make" &&
				pass.TypesInfo.Uses[id] == types.Universe.Lookup("make") && len(n.Args) > 0 {
				if _, isChan := n.Args[0].(*ast.ChanType); isChan {
					join = true
				}
			}
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[n]; obj != nil {
				if typeIsFromPkg(obj.Type(), "sync", "WaitGroup") {
					join = true
				}
			}
		}
		return true
	})
	return join
}
