package analysis

import "testing"

func TestErrCompare(t *testing.T) {
	RunTest(t, ErrCompareAnalyzer, "errcompare")
}
