package analysis

import "testing"

func TestCtxflow(t *testing.T) {
	RunTest(t, CtxflowAnalyzer, "ctxflow")
}
