// Package analysis is Geomancy's static-analysis suite: seven custom
// analyzers that mechanically enforce the repo's determinism, context,
// metric-naming, error-handling, lock-safety, and serialization-coverage
// invariants, plus the tiny framework they run on.
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic, facts) but is self-contained on the
// standard library: packages are loaded through `go list -export` (see
// load.go), type-checked with go/types against compiler export data, and
// each analyzer walks the typed ASTs. Packages are analyzed in dependency
// order, and analyzers may export per-object Facts (see facts.go) that
// later passes over importing packages consume — the cross-package layer
// that makes locksafe, ctxflow, and statecheck interprocedural. If the
// module ever takes x/tools as a dependency, each analyzer's Run is a
// mechanical port.
//
// # Escape hatches
//
// Three comment directives suppress a diagnostic on the same line or the
// line immediately below them, and all require a reason:
//
//	//geomancy:nondeterministic <reason>   (determinism analyzer only)
//	//geomancy:allow <analyzer> <reason>   (any analyzer, by name)
//	//geomancy:ephemeral <reason>          (statecheck: field is derived or
//	                                        rebuilt on restore, not serialized)
//
// A directive without a reason does not count: the framework reports the
// bare directive instead, so allowlists stay self-documenting. A
// directive that suppresses nothing is stale; RunFull reports stale
// directives separately and `geomancy-vet -audit` fails on them.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer checks one invariant over a package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //geomancy:allow directives.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Filter restricts the analyzer to packages for which it returns
	// true; nil runs everywhere. The analysistest runner bypasses it so
	// fixtures need not live under the production import paths.
	Filter func(pkgPath string) bool
	// Run analyzes one package, reporting through pass.Reportf. The
	// returned value is handed to Flush after every package ran.
	Run func(pass *Pass) (any, error)
	// Flush, if non-nil, runs once after every package: module-wide
	// checks (e.g. "every declared metric name is used somewhere") that
	// no single package can decide.
	Flush func(results []Result) []Diagnostic
}

// Result pairs a package with the value its Run returned.
type Result struct {
	Pkg   *Package
	Value any
}

// Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Directive is one parsed //geomancy:... comment.
type Directive struct {
	Line     int    // line the comment sits on
	File     string // file name (full path)
	Kind     string // "nondeterministic", "allow", or "ephemeral"
	Analyzer string // target analyzer ("" for nondeterministic = determinism)
	Reason   string
	Pos      token.Position
	// Used records whether the directive suppressed at least one finding
	// during a run; directives still unused afterwards are stale.
	Used bool
}

// suppresses reports whether the directive covers analyzer a at line.
// A directive covers its own line and the line immediately below it.
func (d *Directive) suppresses(analyzer string, file string, line int) bool {
	if d.File != file || (d.Line != line && d.Line != line-1) {
		return false
	}
	switch d.Kind {
	case "nondeterministic":
		return analyzer == "determinism"
	case "allow":
		return d.Analyzer == analyzer
	case "ephemeral":
		return analyzer == "statecheck"
	}
	return false
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	pkg        *Package
	diags      *[]Diagnostic
	suppressed *[]SuppressedDiagnostic
	store      *factStore
	// bareReported dedupes "directive missing reason" per directive.
	bareReported map[*Directive]bool
}

// matchingDirective returns the directive governing analyzer findings at
// (file, line): a directive on the line itself wins over one on the line
// above, so adjacent annotated lines each consume their own directive
// (otherwise the upper directive would claim both findings and leave the
// lower one spuriously stale).
func (p *Pass) matchingDirective(file string, line int) *Directive {
	var above *Directive
	for i := range p.pkg.Directives {
		d := &p.pkg.Directives[i]
		if !d.suppresses(p.Analyzer.Name, file, line) {
			continue
		}
		if d.Line == line {
			return d
		}
		if above == nil {
			above = d
		}
	}
	return above
}

// Reportf records a diagnostic at pos unless a directive allowlists the
// site. A matching directive with no reason suppresses the original
// diagnostic but is itself reported once, so it cannot hide findings
// silently.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if d := p.matchingDirective(position.Filename, position.Line); d != nil {
		d.Used = true
		if p.suppressed != nil {
			*p.suppressed = append(*p.suppressed, SuppressedDiagnostic{
				Diagnostic: Diagnostic{
					Pos:      position,
					Analyzer: p.Analyzer.Name,
					Message:  fmt.Sprintf(format, args...),
				},
				Reason: d.Reason,
			})
		}
		if d.Reason == "" && !p.bareReported[d] {
			p.bareReported[d] = true
			*p.diags = append(*p.diags, Diagnostic{
				Pos:      d.Pos,
				Analyzer: p.Analyzer.Name,
				Message:  fmt.Sprintf("//geomancy:%s directive is missing a reason", d.Kind),
			})
		}
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowlisted reports whether a reasoned directive covers this
// analyzer's findings at pos, marking the directive used. Analyzers
// consult it when deriving facts from a site whose finding a human
// already reviewed — locksafe, for example, does not propagate a
// netIOFact out of an allowlisted I/O call, so one reviewed leaf does
// not re-flag every transitive caller. Bare directives (no reason) do
// not count: they are findings themselves.
func (p *Pass) allowlisted(pos token.Pos) bool {
	position := p.Fset.Position(pos)
	for i := range p.pkg.Directives {
		d := &p.pkg.Directives[i]
		if d.Reason != "" && d.suppresses(p.Analyzer.Name, position.Filename, position.Line) {
			d.Used = true
			return true
		}
	}
	return false
}

// All returns the full Geomancy analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		RngSourceAnalyzer,
		CtxflowAnalyzer,
		MetricNamesAnalyzer,
		ErrCompareAnalyzer,
		LockSafeAnalyzer,
		StateCheckAnalyzer,
	}
}

// SuppressedDiagnostic is a finding a reasoned directive silenced: still
// worth surfacing in machine-readable reports, so allowlists stay
// auditable without failing the run.
type SuppressedDiagnostic struct {
	Diagnostic
	// Reason is the directive's justification text.
	Reason string
}

// Report is the complete outcome of one analysis run.
type Report struct {
	// Diagnostics are the live findings, sorted by position; a non-empty
	// slice means the run failed.
	Diagnostics []Diagnostic
	// Suppressed are findings silenced by reasoned directives.
	Suppressed []SuppressedDiagnostic
	// Stale are //geomancy:... directives that suppressed nothing: each is
	// an "audit" diagnostic pointing at the directive. `geomancy-vet
	// -audit` turns these into failures.
	Stale []Diagnostic
}

// Run applies every analyzer to every package (honoring Filters), then
// the module-wide Flush passes, and returns the diagnostics sorted by
// position. The error reports analyzer crashes, not findings.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	rep, err := RunFull(analyzers, pkgs)
	if rep == nil {
		return nil, err
	}
	return rep.Diagnostics, err
}

// RunUnfiltered is Run with every Filter bypassed — the analysistest
// entry point, so fixture packages need not mimic production paths.
func RunUnfiltered(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	rep, err := run(analyzers, pkgs, false)
	if rep == nil {
		return nil, err
	}
	return rep.Diagnostics, err
}

// RunFull is Run returning the complete Report: live findings, suppressed
// findings with their directive reasons, and stale directives.
func RunFull(analyzers []*Analyzer, pkgs []*Package) (*Report, error) {
	return run(analyzers, pkgs, true)
}

func run(analyzers []*Analyzer, pkgs []*Package, useFilter bool) (*Report, error) {
	rep := &Report{}
	store := newFactStore()
	results := make(map[*Analyzer][]Result)
	// pkgs arrive in dependency order (see Load), so when a package is
	// analyzed every fact its dependencies exported is already in store.
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if useFilter && a.Filter != nil && !a.Filter(pkg.PkgPath) {
				continue
			}
			pass := &Pass{
				Analyzer:     a,
				Fset:         pkg.Fset,
				Files:        pkg.Files,
				Pkg:          pkg.Types,
				TypesInfo:    pkg.TypesInfo,
				pkg:          pkg,
				diags:        &rep.Diagnostics,
				suppressed:   &rep.Suppressed,
				store:        store,
				bareReported: make(map[*Directive]bool),
			}
			value, err := a.Run(pass)
			if err != nil {
				return rep, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
			results[a] = append(results[a], Result{Pkg: pkg, Value: value})
		}
	}
	for _, a := range analyzers {
		if a.Flush != nil {
			rep.Diagnostics = append(rep.Diagnostics, a.Flush(results[a])...)
		}
	}
	rep.Stale = staleDirectives(pkgs)
	sortDiags(rep.Diagnostics)
	sortDiags(rep.Stale)
	return rep, nil
}

// staleDirectives collects directives no Reportf call used during the
// run just finished. Bare directives are excluded: they already produce a
// "missing a reason" finding, and double-reporting them helps nobody.
func staleDirectives(pkgs []*Package) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for i := range pkg.Directives {
			d := &pkg.Directives[i]
			if d.Used || d.Reason == "" {
				continue
			}
			out = append(out, Diagnostic{
				Pos:      d.Pos,
				Analyzer: "audit",
				Message:  fmt.Sprintf("stale //geomancy:%s directive: it no longer suppresses any finding; remove it", d.Kind),
			})
		}
	}
	return out
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// parseDirectives extracts //geomancy:... comments from a parsed file.
func parseDirectives(fset *token.FileSet, f *ast.File) []Directive {
	var out []Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//geomancy:")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			// Fixtures may carry a trailing "// want ..." expectation in
			// the same comment; it is not part of the directive.
			if i := strings.Index(text, "// want"); i >= 0 {
				text = text[:i]
			}
			kind, rest, _ := strings.Cut(text, " ")
			d := Directive{
				Line: pos.Line,
				File: pos.Filename,
				Kind: kind,
				Pos:  pos,
			}
			switch kind {
			case "nondeterministic", "ephemeral":
				d.Reason = strings.TrimSpace(rest)
			case "allow":
				d.Analyzer, d.Reason, _ = strings.Cut(strings.TrimSpace(rest), " ")
				d.Reason = strings.TrimSpace(d.Reason)
			default:
				continue // unknown directive family; not ours to police
			}
			out = append(out, d)
		}
	}
	return out
}

// --- shared type-resolution helpers used by several analyzers ---

// calleeFunc resolves the *types.Func a call expression invokes, or nil
// for dynamic calls, conversions, and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPkgLevelFunc reports whether fn is the package-level function
// pkgPath.name (not a method).
func isPkgLevelFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Name() != name || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	return sig != nil && sig.Recv() == nil
}

// receiverType returns the receiver type of a method, or nil.
func receiverType(fn *types.Func) types.Type {
	if fn == nil {
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// namedOf unwraps pointers and aliases down to a *types.Named, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// typeIsFromPkg reports whether t (after unwrapping pointers) is a named
// type declared in package pkgPath, optionally with one of the names.
func typeIsFromPkg(t types.Type, pkgPath string, names ...string) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != pkgPath {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, name := range names {
		if n.Obj().Name() == name {
			return true
		}
	}
	return false
}

// isErrorType reports whether t is the error interface or implements it.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if t.String() == "error" {
		return true
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errType) || types.Implements(types.NewPointer(t), errType)
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return typeIsFromPkg(t, "context", "Context")
}

// enclosingFuncName formats a FuncDecl's name as Recv.Name or Name.
func enclosingFuncName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	var b strings.Builder
	if star, ok := recv.(*ast.StarExpr); ok {
		recv = star.X
	}
	if id, ok := recv.(*ast.Ident); ok {
		b.WriteString(id.Name)
		b.WriteByte('.')
	}
	b.WriteString(fd.Name.Name)
	return b.String()
}
