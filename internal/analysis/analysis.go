// Package analysis is Geomancy's static-analysis suite: five custom
// analyzers that mechanically enforce the repo's determinism, context,
// metric-naming, error-handling, and lock-safety invariants, plus the
// tiny framework they run on.
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic) but is self-contained on the standard
// library: packages are loaded through `go list -export` (see load.go),
// type-checked with go/types against compiler export data, and each
// analyzer walks the typed ASTs. If the module ever takes x/tools as a
// dependency, each analyzer's Run is a mechanical port.
//
// # Escape hatches
//
// Two comment directives suppress a diagnostic on the same line or the
// line immediately below them, and both require a reason:
//
//	//geomancy:nondeterministic <reason>   (determinism analyzer only)
//	//geomancy:allow <analyzer> <reason>   (any analyzer, by name)
//
// A directive without a reason does not count: the framework reports the
// bare directive instead, so allowlists stay self-documenting.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer checks one invariant over a package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //geomancy:allow directives.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Filter restricts the analyzer to packages for which it returns
	// true; nil runs everywhere. The analysistest runner bypasses it so
	// fixtures need not live under the production import paths.
	Filter func(pkgPath string) bool
	// Run analyzes one package, reporting through pass.Reportf. The
	// returned value is handed to Flush after every package ran.
	Run func(pass *Pass) (any, error)
	// Flush, if non-nil, runs once after every package: module-wide
	// checks (e.g. "every declared metric name is used somewhere") that
	// no single package can decide.
	Flush func(results []Result) []Diagnostic
}

// Result pairs a package with the value its Run returned.
type Result struct {
	Pkg   *Package
	Value any
}

// Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Directive is one parsed //geomancy:... comment.
type Directive struct {
	Line     int    // line the comment sits on
	File     string // file name (full path)
	Kind     string // "nondeterministic" or "allow"
	Analyzer string // target analyzer ("" for nondeterministic = determinism)
	Reason   string
	Pos      token.Position
}

// suppresses reports whether the directive covers analyzer a at line.
// A directive covers its own line and the line immediately below it.
func (d *Directive) suppresses(analyzer string, file string, line int) bool {
	if d.File != file || (d.Line != line && d.Line != line-1) {
		return false
	}
	switch d.Kind {
	case "nondeterministic":
		return analyzer == "determinism"
	case "allow":
		return d.Analyzer == analyzer
	}
	return false
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	pkg   *Package
	diags *[]Diagnostic
	// bareReported dedupes "directive missing reason" per directive.
	bareReported map[*Directive]bool
}

// Reportf records a diagnostic at pos unless a directive allowlists the
// site. A matching directive with no reason suppresses the original
// diagnostic but is itself reported once, so it cannot hide findings
// silently.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	for i := range p.pkg.Directives {
		d := &p.pkg.Directives[i]
		if !d.suppresses(p.Analyzer.Name, position.Filename, position.Line) {
			continue
		}
		if d.Reason == "" && !p.bareReported[d] {
			p.bareReported[d] = true
			*p.diags = append(*p.diags, Diagnostic{
				Pos:      d.Pos,
				Analyzer: p.Analyzer.Name,
				Message:  fmt.Sprintf("//geomancy:%s directive is missing a reason", d.Kind),
			})
		}
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full Geomancy analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		RngSourceAnalyzer,
		CtxflowAnalyzer,
		MetricNamesAnalyzer,
		ErrCompareAnalyzer,
		LockSafeAnalyzer,
	}
}

// Run applies every analyzer to every package (honoring Filters), then
// the module-wide Flush passes, and returns the diagnostics sorted by
// position. The error reports analyzer crashes, not findings.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	return run(analyzers, pkgs, true)
}

// RunUnfiltered is Run with every Filter bypassed — the analysistest
// entry point, so fixture packages need not mimic production paths.
func RunUnfiltered(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	return run(analyzers, pkgs, false)
}

func run(analyzers []*Analyzer, pkgs []*Package, useFilter bool) ([]Diagnostic, error) {
	var diags []Diagnostic
	results := make(map[*Analyzer][]Result)
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if useFilter && a.Filter != nil && !a.Filter(pkg.PkgPath) {
				continue
			}
			pass := &Pass{
				Analyzer:     a,
				Fset:         pkg.Fset,
				Files:        pkg.Files,
				Pkg:          pkg.Types,
				TypesInfo:    pkg.TypesInfo,
				pkg:          pkg,
				diags:        &diags,
				bareReported: make(map[*Directive]bool),
			}
			value, err := a.Run(pass)
			if err != nil {
				return diags, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
			results[a] = append(results[a], Result{Pkg: pkg, Value: value})
		}
	}
	for _, a := range analyzers {
		if a.Flush != nil {
			diags = append(diags, a.Flush(results[a])...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// parseDirectives extracts //geomancy:... comments from a parsed file.
func parseDirectives(fset *token.FileSet, f *ast.File) []Directive {
	var out []Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//geomancy:")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			// Fixtures may carry a trailing "// want ..." expectation in
			// the same comment; it is not part of the directive.
			if i := strings.Index(text, "// want"); i >= 0 {
				text = text[:i]
			}
			kind, rest, _ := strings.Cut(text, " ")
			d := Directive{
				Line: pos.Line,
				File: pos.Filename,
				Kind: kind,
				Pos:  pos,
			}
			switch kind {
			case "nondeterministic":
				d.Reason = strings.TrimSpace(rest)
			case "allow":
				d.Analyzer, d.Reason, _ = strings.Cut(strings.TrimSpace(rest), " ")
				d.Reason = strings.TrimSpace(d.Reason)
			default:
				continue // unknown directive family; not ours to police
			}
			out = append(out, d)
		}
	}
	return out
}

// --- shared type-resolution helpers used by several analyzers ---

// calleeFunc resolves the *types.Func a call expression invokes, or nil
// for dynamic calls, conversions, and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPkgLevelFunc reports whether fn is the package-level function
// pkgPath.name (not a method).
func isPkgLevelFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Name() != name || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	return sig != nil && sig.Recv() == nil
}

// receiverType returns the receiver type of a method, or nil.
func receiverType(fn *types.Func) types.Type {
	if fn == nil {
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// namedOf unwraps pointers and aliases down to a *types.Named, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// typeIsFromPkg reports whether t (after unwrapping pointers) is a named
// type declared in package pkgPath, optionally with one of the names.
func typeIsFromPkg(t types.Type, pkgPath string, names ...string) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != pkgPath {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, name := range names {
		if n.Obj().Name() == name {
			return true
		}
	}
	return false
}

// isErrorType reports whether t is the error interface or implements it.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if t.String() == "error" {
		return true
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errType) || types.Implements(types.NewPointer(t), errType)
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return typeIsFromPkg(t, "context", "Context")
}

// enclosingFuncName formats a FuncDecl's name as Recv.Name or Name.
func enclosingFuncName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	var b strings.Builder
	if star, ok := recv.(*ast.StarExpr); ok {
		recv = star.X
	}
	if id, ok := recv.(*ast.Ident); ok {
		b.WriteString(id.Name)
		b.WriteByte('.')
	}
	b.WriteString(fd.Name.Name)
	return b.String()
}
