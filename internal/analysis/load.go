package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package of the module under
// analysis.
type Package struct {
	PkgPath    string
	Name       string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
	Directives []Directive
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (relative to dir; "" =
// current directory), parses their sources with comments, and
// type-checks them against compiler export data produced by
// `go list -export`. Dependencies — including the standard library —
// are imported from export data, so loading needs no network and no
// pre-installed artifacts beyond the Go toolchain's build cache.
//
// The returned slice preserves `go list -deps` order, which emits every
// dependency before its dependents. Run relies on this: analyzing
// packages in slice order guarantees that facts exported while analyzing
// a dependency are visible when its importers are analyzed (facts.go).
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: load %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := typeCheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// goList runs `go list -export -deps -json` and decodes the stream.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %w\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(stdout))
	var out []listedPackage
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// typeCheck parses and checks one target package.
func typeCheck(fset *token.FileSet, imp types.Importer, lp listedPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	var directives []Directive
	for _, name := range lp.GoFiles {
		path := filepath.Join(lp.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", path, err)
		}
		files = append(files, f)
		directives = append(directives, parseDirectives(fset, f)...)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", lp.ImportPath, err)
	}
	return &Package{
		PkgPath:    lp.ImportPath,
		Name:       lp.Name,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
		Directives: directives,
	}, nil
}

// newExportImporter builds a gc-export-data importer whose lookup
// resolves import paths through the Export files `go list` reported.
func newExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}
