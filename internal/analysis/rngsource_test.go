package analysis

import "testing"

func TestRngSource(t *testing.T) {
	RunTest(t, RngSourceAnalyzer, "rngsource")
}

func TestRngSourceFilter(t *testing.T) {
	for path, want := range map[string]bool{
		"geomancy/internal/rng":        false,
		"geomancy/internal/core":       true,
		"geomancy/internal/storagesim": true,
		"geomancy":                     true,
		"geomancy/cmd/geomancy":        true,
	} {
		if got := outsideRngPackage(path); got != want {
			t.Errorf("outsideRngPackage(%q) = %v, want %v", path, got, want)
		}
	}
}
