package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxflowAnalyzer enforces context plumbing on the RPC surface: inside
// internal/agents and the facade, an exported function or method that
// performs I/O — directly, or one call away through a helper that does
// (in this package or, via directIOFact, a dependency) — must accept a
// context.Context (or have an exported <Name>Context sibling), and no
// function may synthesize context.Background()/context.TODO() unless it
// is the documented convenience wrapper of its own <Name>Context
// variant.
var CtxflowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc: "exported I/O- or RPC-performing functions in internal/agents and the facade " +
		"must accept a context.Context — I/O one helper call away counts — and may " +
		"not synthesize context.Background()",
	Filter: func(pkgPath string) bool {
		return !strings.Contains(pkgPath, "/") || // module root = the facade
			strings.Contains(pkgPath, "internal/agents")
	},
	Run: runCtxflow,
}

// directIOFact marks a function whose own body performs network or
// stream I/O; Desc names the operation (e.g. "net.Conn.Write"). The
// fact lets exported callers one package downstream be held to the
// context rule without re-analyzing the helper's source.
type directIOFact struct {
	Desc string
}

func (*directIOFact) AFact() {}

func runCtxflow(pass *Pass) (any, error) {
	// funcNames collects every function / method name in the package so
	// the <Name>Context sibling rule can be checked cheaply. Keyed by
	// "Recv.Name" for methods and "Name" for functions.
	funcNames := make(map[string]bool)
	// ioOf records which declared functions perform I/O in their own
	// body, exported as directIOFacts for downstream packages.
	ioOf := make(map[FactKey]string)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			funcNames[enclosingFuncName(fd)] = true
			if fd.Body == nil {
				continue
			}
			if io := directIOCall(pass, fd.Body); io != "" {
				obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
				if key, ok := FuncKey(obj); ok {
					ioOf[key] = io
					pass.ExportFact(key, &directIOFact{Desc: io})
				}
			}
		}
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := enclosingFuncName(fd)
			isWrapper := funcNames[name+"Context"]
			if fd.Name.IsExported() && !isWrapper && !hasCtxParam(pass, fd) {
				if io := directIOCall(pass, fd.Body); io != "" {
					pass.Reportf(fd.Name.Pos(), "exported %s performs I/O (%s) but accepts no context.Context and has no %sContext variant", name, io, fd.Name.Name)
				} else if helper, io := helperIOCall(pass, fd.Body, ioOf); io != "" {
					pass.Reportf(fd.Name.Pos(), "exported %s performs I/O through %s (%s) but accepts no context.Context and has no %sContext variant", name, helper, io, fd.Name.Name)
				}
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass.TypesInfo, call)
				if fn == nil {
					return true
				}
				if isPkgLevelFunc(fn, "context", "Background") || isPkgLevelFunc(fn, "context", "TODO") {
					if !isWrapper {
						pass.Reportf(call.Pos(), "context.%s synthesized in library code: thread the caller's context (only the %sContext wrapper pattern is exempt)", fn.Name(), name)
					}
				}
				return true
			})
		}
	}
	return nil, nil
}

// hasCtxParam reports whether fd accepts a context.Context parameter.
func hasCtxParam(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if isContextType(pass.TypesInfo.Types[field.Type].Type) {
			return true
		}
	}
	return false
}

// helperIOCall scans a body for a call to a function that itself
// performs direct I/O — one level of helper indirection, resolved
// against this package's ioOf map or an imported directIOFact. The
// first match (in source order) names the helper for the diagnostic.
// Goroutine bodies are skipped: their I/O is not on this function's
// synchronous path.
func helperIOCall(pass *Pass, body *ast.BlockStmt, ioOf map[FactKey]string) (helper, desc string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			fn := calleeFunc(pass.TypesInfo, n)
			key, ok := FuncKey(fn)
			if !ok {
				return true
			}
			if d, ok := ioOf[key]; ok {
				helper, desc = funcDisplay(pass, fn, key), d
				return false
			}
			if key.Pkg != pass.Pkg.Path() {
				var f directIOFact
				if pass.ImportFact(key, &f) {
					helper, desc = funcDisplay(pass, fn, key), f.Desc
					return false
				}
			}
		}
		return true
	})
	return helper, desc
}

// directIOCall scans a body for calls that perform network or stream
// I/O directly, returning a short description of the first one found.
// The deeper transitive chain is deliberately out of scope: the context
// rule targets the function that owns the connection and its immediate
// exported wrappers, not every distant caller (which locksafe's
// netIOFact chain already covers for the lock invariant).
func directIOCall(pass *Pass, body *ast.BlockStmt) string {
	found := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if desc := ioCallDesc(pass.TypesInfo, call); desc != "" {
			found = desc
			return false
		}
		return true
	})
	return found
}

// blockingConnMethods are the net.Conn / net.Listener operations that
// block on the network. Deadline setters and Close are excluded: they
// return immediately.
var blockingConnMethods = map[string]bool{
	"Read": true, "Write": true, "Accept": true,
}

// ioCallDesc classifies a call as direct I/O, returning a description
// ("net.Dial", "net.Conn.Write", ...) or "".
func ioCallDesc(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn != nil && fn.Pkg() != nil {
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() == nil {
			if fn.Pkg().Path() == "net" && strings.HasPrefix(fn.Name(), "Dial") {
				return "net." + fn.Name()
			}
			if fn.Pkg().Path() == "net" && fn.Name() == "Listen" {
				return "net.Listen"
			}
			return ""
		}
		recv := receiverType(fn)
		switch {
		case isNetConnLike(recv) && blockingConnMethods[fn.Name()]:
			return "net.Conn." + fn.Name()
		case typeIsFromPkg(recv, "encoding/json", "Encoder", "Decoder") &&
			(fn.Name() == "Encode" || fn.Name() == "Decode"):
			return "json." + namedOf(recv).Obj().Name() + "." + fn.Name()
		case typeIsFromPkg(recv, "bufio", "Writer") && fn.Name() == "Flush":
			return "bufio.Writer.Flush"
		case typeIsFromPkg(recv, "bufio", "Reader") && strings.HasPrefix(fn.Name(), "Read"):
			return "bufio.Reader." + fn.Name()
		}
		return ""
	}
	// Dynamic calls through func-typed fields: dialer hooks and friends.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if strings.EqualFold(sel.Sel.Name, "dial") {
			return "a dial hook"
		}
	}
	return ""
}

// isNetConnLike reports whether t is a type from package net, or an
// interface carrying read+write deadline setters (structurally a
// net.Conn / net.PacketConn, including wrappers like faultnet's).
func isNetConnLike(t types.Type) bool {
	if t == nil {
		return false
	}
	if typeIsFromPkg(t, "net") {
		return true
	}
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	hasRead, hasWrite := false, false
	for i := 0; i < iface.NumMethods(); i++ {
		switch iface.Method(i).Name() {
		case "SetReadDeadline":
			hasRead = true
		case "SetWriteDeadline":
			hasWrite = true
		}
	}
	return hasRead && hasWrite
}
