package analysis

import (
	"go/types"
	"reflect"
	"sort"
)

// This file is the suite's cross-package facts layer, in the spirit of
// go/analysis facts but self-contained on the standard library: while a
// package is analyzed, an analyzer may export a Fact about one of the
// package's objects (a function performs network I/O, a type's fields are
// fully serialized, ...), and analyzers running later — over packages that
// import it — look the fact up to reason interprocedurally without
// re-analyzing the dependency's source.
//
// go/analysis keys facts by types.Object identity, which works there
// because a single shared importer materializes every declaration exactly
// once. This loader type-checks each target package from source while
// importing its dependencies from gc export data, so one declaration
// appears as two distinct objects (the source-checked one and the
// imported one). Facts are therefore keyed by FactKey — (package path,
// qualified object name) — which is stable across both views.
//
// Facts only flow forward: Load returns packages in dependency order
// (`go list -deps` emits dependencies before dependents), and Run analyzes
// them in that order, so by the time a package is analyzed every fact its
// dependencies can produce has been exported. Facts are namespaced per
// analyzer, exactly as in go/analysis: one analyzer never observes
// another's facts.

// FactKey names one program object stably across the source-checked and
// export-data views of its package.
type FactKey struct {
	// Pkg is the object's package path.
	Pkg string
	// Object is the qualified name: "Func" for a package-level function,
	// "Type.Method" for a method (receiver pointer-ness erased), "Type"
	// for a type, "Type.Field" for a struct field.
	Object string
}

func (k FactKey) String() string { return k.Pkg + "." + k.Object }

// A Fact is a property an analyzer proves about an object. Implementations
// are pointer-to-struct; the marker method keeps arbitrary values out of
// the store.
type Fact interface{ AFact() }

// FuncKey computes the FactKey of a function or method, ok=false for
// nil functions, functions without a package (builtins), and methods on
// unnamed receivers.
func FuncKey(fn *types.Func) (FactKey, bool) {
	if fn == nil || fn.Pkg() == nil {
		return FactKey{}, false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return FactKey{}, false
	}
	if sig.Recv() == nil {
		return FactKey{Pkg: fn.Pkg().Path(), Object: fn.Name()}, true
	}
	recv := namedOf(sig.Recv().Type())
	if recv == nil {
		// Interface methods reach here with a named interface receiver;
		// methods on unnamed types do not get keys.
		return FactKey{}, false
	}
	return FactKey{Pkg: fn.Pkg().Path(), Object: recv.Obj().Name() + "." + fn.Name()}, true
}

// TypeKey computes the FactKey of a named type (pointers and aliases
// unwrapped), ok=false for unnamed or package-less types.
func TypeKey(t types.Type) (FactKey, bool) {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return FactKey{}, false
	}
	return FactKey{Pkg: n.Obj().Pkg().Path(), Object: n.Obj().Name()}, true
}

// factStore accumulates facts across one Run, namespaced per analyzer.
type factStore struct {
	// facts[analyzer][key] holds the facts exported about key, at most
	// one per concrete Fact type (a re-export overwrites).
	facts map[string]map[FactKey][]Fact
}

func newFactStore() *factStore {
	return &factStore{facts: make(map[string]map[FactKey][]Fact)}
}

func (s *factStore) export(analyzer string, key FactKey, fact Fact) {
	byKey := s.facts[analyzer]
	if byKey == nil {
		byKey = make(map[FactKey][]Fact)
		s.facts[analyzer] = byKey
	}
	want := reflect.TypeOf(fact)
	for i, f := range byKey[key] {
		if reflect.TypeOf(f) == want {
			byKey[key][i] = fact
			return
		}
	}
	byKey[key] = append(byKey[key], fact)
}

// lookup copies the stored fact of target's concrete type into target.
func (s *factStore) lookup(analyzer string, key FactKey, target Fact) bool {
	want := reflect.TypeOf(target)
	for _, f := range s.facts[analyzer][key] {
		if reflect.TypeOf(f) == want {
			reflect.ValueOf(target).Elem().Set(reflect.ValueOf(f).Elem())
			return true
		}
	}
	return false
}

// keys returns every key the analyzer exported any fact about, sorted.
func (s *factStore) keys(analyzer string) []FactKey {
	byKey := s.facts[analyzer]
	out := make([]FactKey, 0, len(byKey))
	for k := range byKey {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pkg != out[j].Pkg {
			return out[i].Pkg < out[j].Pkg
		}
		return out[i].Object < out[j].Object
	})
	return out
}

// ExportFact records a fact about key for this pass's analyzer. Later
// passes of the same analyzer — over this package or packages importing
// it — retrieve it with ImportFact.
func (p *Pass) ExportFact(key FactKey, fact Fact) {
	if fact == nil {
		panic("analysis: ExportFact(nil)")
	}
	p.store.export(p.Analyzer.Name, key, fact)
}

// ExportObjectFact is ExportFact keyed by a function object.
func (p *Pass) ExportObjectFact(fn *types.Func, fact Fact) {
	if key, ok := FuncKey(fn); ok {
		p.ExportFact(key, fact)
	}
}

// ImportFact copies the fact of target's concrete type recorded about key
// into target, reporting whether one was found. Only facts exported by
// the same analyzer are visible.
func (p *Pass) ImportFact(key FactKey, target Fact) bool {
	return p.store.lookup(p.Analyzer.Name, key, target)
}

// ImportObjectFact is ImportFact keyed by a function object.
func (p *Pass) ImportObjectFact(fn *types.Func, target Fact) bool {
	key, ok := FuncKey(fn)
	return ok && p.ImportFact(key, target)
}

// FactKeys returns every key this pass's analyzer has exported facts
// about so far, sorted; module-wide Flush passes use it to enumerate.
func (p *Pass) FactKeys() []FactKey {
	return p.store.keys(p.Analyzer.Name)
}
