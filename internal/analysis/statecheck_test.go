package analysis

import "testing"

func TestStateCheck(t *testing.T) {
	RunTest(t, StateCheckAnalyzer, "statecheck", "statecheck/lib", "statecheck/use")
}
