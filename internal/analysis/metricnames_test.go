package analysis

import "testing"

func TestMetricNames(t *testing.T) {
	RunTest(t, MetricNamesAnalyzer, "metricnames/telemetry", "metricnames/use")
}
