package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// MetricNamesAnalyzer keeps the telemetry schema closed in both
// directions: every metric name handed to the telemetry registry
// (Registry.Counter/Gauge/Histogram/Help) must be one of the Metric*
// constants declared in internal/telemetry/names.go, and every declared
// constant must be referenced somewhere outside names.go — so names can
// neither drift in ad hoc nor rot unused.
var MetricNamesAnalyzer = &Analyzer{
	Name: "metricnames",
	Doc: "metric names passed to the telemetry registry must be telemetry.Metric* " +
		"constants, and every declared constant must be used",
	Run:   runMetricNames,
	Flush: flushMetricNames,
}

// metricNamesResult is one package's contribution to the module-wide
// declared/used reconciliation.
type metricNamesResult struct {
	used  map[string]bool      // Metric* constants referenced outside names.go
	decls map[string]token.Pos // Metric* constants declared in a names.go
}

// namesFile is the canonical home of the metric-name constants.
const namesFile = "names.go"

func runMetricNames(pass *Pass) (any, error) {
	res := &metricNamesResult{
		used:  make(map[string]bool),
		decls: make(map[string]token.Pos),
	}
	ownRegistry := declaresRegistry(pass)
	for _, file := range pass.Files {
		inNamesFile := filepath.Base(pass.Fset.Position(file.Pos()).Filename) == namesFile
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if obj, ok := pass.TypesInfo.Uses[n].(*types.Const); ok && isMetricConst(obj) && !inNamesFile {
					res.used[obj.Name()] = true
				}
				if obj, ok := pass.TypesInfo.Defs[n].(*types.Const); ok && isMetricConst(obj) && inNamesFile {
					res.decls[obj.Name()] = n.Pos()
				}
			case *ast.CallExpr:
				// The telemetry package itself may route names through
				// variables (RegisterHelp's map range); consumers may not.
				if !ownRegistry {
					checkRegistryCall(pass, n)
				}
			}
			return true
		})
	}
	return res, nil
}

// registryMethods take a metric name as their first argument.
var registryMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true, "Help": true,
}

// checkRegistryCall flags registry calls whose name argument is not a
// telemetry Metric* constant.
func checkRegistryCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || !registryMethods[fn.Name()] || len(call.Args) == 0 {
		return
	}
	recv := receiverType(fn)
	if !isTelemetryRegistry(recv) {
		return
	}
	arg := ast.Unparen(call.Args[0])
	var obj types.Object
	switch a := arg.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[a]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[a.Sel]
	}
	if c, ok := obj.(*types.Const); ok && isMetricConst(c) {
		return
	}
	pass.Reportf(call.Args[0].Pos(), "metric name passed to Registry.%s must be a Metric* constant from the telemetry package's %s", fn.Name(), namesFile)
}

// isTelemetryRegistry matches *telemetry.Registry receivers by package
// name + type name, so fixture registries exercise the same code path
// as the real internal/telemetry package.
func isTelemetryRegistry(t types.Type) bool {
	n := namedOf(t)
	return n != nil && n.Obj().Name() == "Registry" &&
		n.Obj().Pkg() != nil && n.Obj().Pkg().Name() == "telemetry"
}

// isMetricConst matches the Metric*-prefixed constants of a telemetry
// package.
func isMetricConst(obj *types.Const) bool {
	return obj.Pkg() != nil && obj.Pkg().Name() == "telemetry" &&
		strings.HasPrefix(obj.Name(), "Metric")
}

// declaresRegistry reports whether this package is a telemetry package
// (declares the Registry type the suite polices).
func declaresRegistry(pass *Pass) bool {
	if pass.Pkg.Name() != "telemetry" {
		return false
	}
	obj := pass.Pkg.Scope().Lookup("Registry")
	_, ok := obj.(*types.TypeName)
	return ok
}

// flushMetricNames reconciles declarations against uses module-wide.
func flushMetricNames(results []Result) []Diagnostic {
	used := make(map[string]bool)
	type decl struct {
		pkg  *Package
		pos  token.Pos
		name string
	}
	var decls []decl
	for _, r := range results {
		res, ok := r.Value.(*metricNamesResult)
		if !ok {
			continue
		}
		for name := range res.used {
			used[name] = true
		}
		for name, pos := range res.decls {
			decls = append(decls, decl{pkg: r.Pkg, pos: pos, name: name})
		}
	}
	var out []Diagnostic
	for _, d := range decls {
		if !used[d.name] {
			out = append(out, Diagnostic{
				Pos:      d.pkg.Fset.Position(d.pos),
				Analyzer: "metricnames",
				Message:  d.name + " is declared in " + namesFile + " but never used: delete it or wire the metric",
			})
		}
	}
	return out
}
