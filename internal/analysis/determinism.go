package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterminismAnalyzer enforces the closed loop's reproducibility
// contract inside the deterministic core: same-seed runs must produce
// identical layouts, so wall-clock reads, the global math/rand stream,
// and map-iteration order must never reach layout, wire, or
// serialization output. Legitimate sites (telemetry timestamps, I/O
// deadlines, jittered retry backoff) carry //geomancy:nondeterministic
// with a reason.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc: "flags time.Now/time.Since/time.Until, global math/rand functions, and " +
		"order-escaping iteration over maps inside the deterministic core packages",
	Filter: inDeterministicCore,
	Run:    runDeterminism,
}

// deterministicCorePkgs are the internal packages whose outputs feed
// layouts, wire frames, or serialized model state.
var deterministicCorePkgs = []string{
	"core", "nn", "mat", "policy", "storagesim", "agents",
	"generator", "scenario",
}

func inDeterministicCore(pkgPath string) bool {
	i := strings.Index(pkgPath, "internal/")
	if i < 0 {
		return false
	}
	rest := pkgPath[i+len("internal/"):]
	for _, p := range deterministicCorePkgs {
		if rest == p || strings.HasPrefix(rest, p+"/") {
			return true
		}
	}
	return false
}

// seededRandConstructors are the math/rand entry points that do NOT
// consume the shared global stream and so stay legal everywhere.
var seededRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkDeterministicCall(pass, n)
				case *ast.RangeStmt:
					checkMapRange(pass, fd, n)
				}
				return true
			})
		}
	}
	return nil, nil
}

func checkDeterministicCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn, time.Time.Sub) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(), "time.%s in the deterministic core: wall-clock reads break same-seed reproducibility", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !seededRandConstructors[fn.Name()] {
			pass.Reportf(call.Pos(), "global %s.%s in the deterministic core: use a seeded *rand.Rand instead", pathBase(fn.Pkg().Path()), fn.Name())
		}
	}
}

func pathBase(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}

// checkMapRange flags `range m` over a map whose iteration order escapes
// the loop — into an appended slice that is never sorted afterwards, a
// channel send, or a write/encode/print call — because that order then
// reaches wire, layout, or serialization output nondeterministically.
func checkMapRange(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	t := pass.TypesInfo.Types[rng.X].Type
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if escape := orderEscape(pass, fd, rng); escape != "" {
		pass.Reportf(rng.Pos(), "iteration over map has nondeterministic order and the order escapes via %s; sort the keys first", escape)
	}
}

// orderEscape reports how (if at all) the loop body publishes iteration
// order: "" means it does not.
func orderEscape(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) string {
	escape := ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if escape != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			escape = "a channel send"
		case *ast.CallExpr:
			if name := emitCallName(pass, n); name != "" {
				escape = "a call to " + name
			}
		case *ast.AssignStmt:
			if target := appendToOuter(pass, rng, n); target != nil && !sortedAfter(pass, fd, rng, target) {
				escape = "append to " + target.Name + " (never sorted afterwards)"
			}
		}
		return true
	})
	return escape
}

// emitCallName matches calls that serialize or emit data in order:
// Write*/Encode*/Marshal*/Fprint*/Print* functions and methods.
func emitCallName(pass *Pass, call *ast.CallExpr) string {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return ""
	}
	for _, prefix := range []string{"Write", "Encode", "Marshal", "Fprint", "Print"} {
		if strings.HasPrefix(name, prefix) {
			return name
		}
	}
	return ""
}

// appendToOuter returns the identifier x of `x = append(x, ...)` when x
// is declared outside the range statement, else nil.
func appendToOuter(pass *Pass, rng *ast.RangeStmt, assign *ast.AssignStmt) *ast.Ident {
	for i, rhs := range assign.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" || pass.TypesInfo.Uses[id] != types.Universe.Lookup("append") {
			continue
		}
		if i >= len(assign.Lhs) {
			continue
		}
		target, ok := ast.Unparen(assign.Lhs[i]).(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.TypesInfo.Uses[target]
		if obj == nil {
			obj = pass.TypesInfo.Defs[target]
		}
		if obj == nil || obj.Pos() == 0 {
			continue
		}
		// Declared outside the loop?
		if obj.Pos() < rng.Pos() || obj.Pos() > rng.End() {
			return target
		}
	}
	return nil
}

// sortedAfter reports whether, after the range statement, the enclosing
// function passes ident's object to a sort.* or slices.Sort* call —
// which restores a deterministic order before the slice is consumed.
func sortedAfter(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, target *ast.Ident) bool {
	obj := pass.TypesInfo.Uses[target]
	if obj == nil {
		obj = pass.TypesInfo.Defs[target]
	}
	if obj == nil {
		return false
	}
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		pkg := fn.Pkg().Path()
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					sorted = true
					return false
				}
				return true
			})
		}
		return true
	})
	return sorted
}
