package analysis

import "testing"

func TestLockSafe(t *testing.T) {
	RunTest(t, LockSafeAnalyzer, "locksafe")
}
