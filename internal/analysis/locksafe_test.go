package analysis

import "testing"

func TestLockSafe(t *testing.T) {
	RunTest(t, LockSafeAnalyzer, "locksafe")
}

func TestLockSafeCrossPackage(t *testing.T) {
	RunTest(t, LockSafeAnalyzer, "locksafenet/lib", "locksafenet/use")
}
