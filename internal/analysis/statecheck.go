package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// StateCheckAnalyzer enforces serialization coverage: every field of a
// type that participates in checkpoint state must provably survive a
// State()/MarshalState/gob-encode round trip, carry a
// //geomancy:ephemeral <reason> directive, or fail the build. The repo's
// two worst latent bugs (zeroed Adam moments, the unserialized done-flag
// resume bug) were both silently-dropped fields of exactly this shape.
//
// The analyzer applies four rules per package, in dependency order so
// facts about upstream packages are available:
//
//   - Coverage: a named struct with its own capture method (State,
//     MarshalState, GobEncode, or any method that feeds receiver-derived
//     data to (*gob.Encoder).Encode) must read or delegate every field
//     somewhere in the capture method's same-package call closure. Types
//     without their own method are "adopted" the moment a closure reads
//     one of their fields — then all their fields are held to the same
//     standard. Func-, channel-, sync-, and empty-struct-typed fields are
//     exempt (never serializable state).
//   - Zero-state reliance: a type whose MarshalState is only promoted
//     from an embedded type (e.g. policy.Stateless) must not assign its
//     own fields at runtime — the promoted method cannot capture them.
//     Constructor and Unmarshal/Restore writes don't count.
//   - Gob payload walk: at every (*gob.Encoder).Encode call site the
//     payload type is walked structurally, across packages; a reachable
//     named struct with unexported fields and no GobEncode/MarshalBinary
//     is flagged, because gob drops those fields without error.
//   - Hidden-state capture: a closure that captures a field by plain
//     value — not delegating to the field type's own capture method —
//     is flagged when that cross-package type hides unexported state and
//     no coveredFact proves its fields are accounted for upstream.
//
// Types that pass coverage export a coveredFact, so downstream packages
// capturing them by value are not re-flagged.
var StateCheckAnalyzer = &Analyzer{
	Name: "statecheck",
	Doc: "require every field of checkpoint-reachable types to be serialized, " +
		"annotated //geomancy:ephemeral, or flagged",
	Run: runStateCheck,
}

// coveredFact marks a named type whose fields are all accounted for by
// its package's capture closures — safe to embed in payloads by value.
type coveredFact struct{}

func (*coveredFact) AFact() {}

// captureMethodNames are method names that start a capture closure.
var captureMethodNames = map[string]bool{
	"State":        true,
	"MarshalState": true,
	"GobEncode":    true,
}

// delegateMethodNames are methods whose call on a field counts as
// delegated capture: the field type serializes itself.
var delegateMethodNames = map[string]bool{
	"State":         true,
	"MarshalState":  true,
	"GobEncode":     true,
	"MarshalBinary": true,
	"Save":          true,
}

func runStateCheck(pass *Pass) (any, error) {
	g := NewCallGraph(pass)
	roots := stateRoots(pass, g)

	var rootKeys []FactKey
	rootTypes := make(map[*types.TypeName]bool)
	for tn, keys := range roots {
		rootTypes[tn] = true
		rootKeys = append(rootKeys, keys...)
	}
	closure := g.Closure(rootKeys)
	widenThroughInterfaces(pass, g, rootKeys, closure)
	caps := capturedFields(pass, g, closure)

	structs := packageStructs(pass)
	owners := fieldOwners(structs)

	// Checked types: the roots plus every type adopted by a closure read.
	// Types the closures construct are payload being built, not state
	// being captured, so reads of their fields do not adopt them.
	checked := make(map[*types.TypeName]bool)
	for tn := range rootTypes {
		checked[tn] = true
	}
	for f := range caps.read {
		if tn := owners[f]; tn != nil && !caps.built[tn] {
			checked[tn] = true
		}
	}

	for _, tn := range structs {
		if !checked[tn] {
			continue
		}
		st := tn.Type().Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if exemptField(f) {
				continue
			}
			switch {
			case !caps.read[f] && !caps.delegated[f]:
				pass.Reportf(f.Pos(),
					"field %s.%s is not captured by the state serialization of %s and not marked //geomancy:ephemeral",
					tn.Name(), f.Name(), tn.Name())
			case caps.read[f] && !caps.delegated[f]:
				if hidden, bad := hidesState(pass, f.Type()); bad {
					pass.Reportf(f.Pos(),
						"field %s.%s is captured by value, but %s hides unexported state (%s) from gob; delegate to its capture method or implement GobEncode",
						tn.Name(), f.Name(), hidden.name, strings.Join(hidden.fields, ", "))
				}
			}
		}
		if key, ok := TypeKey(tn.Type()); ok {
			pass.ExportFact(key, &coveredFact{})
		}
	}

	checkZeroStateReliance(pass, structs, owners, rootTypes, checked)
	checkGobPayloads(pass)
	return nil, nil
}

// stateRoots maps each named struct type declared in the package to the
// FactKeys of its capture methods.
func stateRoots(pass *Pass, g *CallGraph) map[*types.TypeName][]FactKey {
	roots := make(map[*types.TypeName][]FactKey)
	for key, fd := range g.Decls {
		if fd.Recv == nil {
			continue
		}
		fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		recv := namedOf(receiverType(fn))
		if recv == nil || recv.Obj().Pkg() != pass.Pkg {
			continue
		}
		if _, isStruct := recv.Underlying().(*types.Struct); !isStruct {
			continue
		}
		if captureMethodNames[fn.Name()] || encodesReceiverViaGob(pass, fd) {
			roots[recv.Obj()] = append(roots[recv.Obj()], key)
		}
	}
	return roots
}

// encodesReceiverViaGob reports whether the method body passes
// receiver-derived data to (*gob.Encoder).Encode — the Save-style capture
// root (`gob.NewEncoder(w).Encode(n.snapshot())`).
func encodesReceiverViaGob(pass *Pass, fd *ast.FuncDecl) bool {
	recvObj := receiverVar(pass, fd)
	if recvObj == nil || fd.Body == nil {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !isGobEncodeCall(pass.TypesInfo, call) {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObject(pass.TypesInfo, arg, recvObj) {
				found = true
			}
		}
		return true
	})
	return found
}

// isGobEncodeCall reports whether call invokes (*encoding/gob.Encoder).Encode.
func isGobEncodeCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Name() == "Encode" &&
		typeIsFromPkg(receiverType(fn), "encoding/gob", "Encoder")
}

// receiverVar returns the receiver's *types.Var, or nil for anonymous
// receivers.
func receiverVar(pass *Pass, fd *ast.FuncDecl) *types.Var {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	v, _ := pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
	return v
}

// mentionsObject reports whether the expression references obj.
func mentionsObject(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// widenThroughInterfaces grows the closure across dynamic dispatch: when
// a closure body calls a method through an interface, every same-package
// concrete implementation of that method joins the closure — the call
// may reach any of them, and a network's weights are captured exactly
// this way (Network.Params fanning out over the layer interface).
// Over-approximating the reads only suppresses diagnostics, never
// invents them.
func widenThroughInterfaces(pass *Pass, g *CallGraph, rootKeys []FactKey, closure map[FactKey]*ast.FuncDecl) {
	named := packageNamedTypes(pass)
	roots := append([]FactKey(nil), rootKeys...)
	for {
		grown := false
		for _, key := range g.Keys() {
			fd := closure[key]
			if fd == nil || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass.TypesInfo, call)
				rt := receiverType(fn)
				if rt == nil {
					return true
				}
				iface, ok := rt.Underlying().(*types.Interface)
				if !ok {
					return true
				}
				for _, tn := range named {
					if !types.Implements(tn.Type(), iface) &&
						!types.Implements(types.NewPointer(tn.Type()), iface) {
						continue
					}
					implKey := FactKey{Pkg: pass.Pkg.Path(), Object: tn.Name() + "." + fn.Name()}
					if _, declared := g.Decls[implKey]; declared && closure[implKey] == nil {
						roots = append(roots, implKey)
						grown = true
					}
				}
				return true
			})
		}
		if !grown {
			return
		}
		for k, fd := range g.Closure(roots) {
			closure[k] = fd
		}
	}
}

// packageNamedTypes returns every package-level named type, sorted by
// scope name.
func packageNamedTypes(pass *Pass) []*types.TypeName {
	scope := pass.Pkg.Scope()
	var out []*types.TypeName
	for _, name := range scope.Names() {
		if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
			out = append(out, tn)
		}
	}
	return out
}

// captureSet records which struct fields the capture closures read, which
// they delegated to the field type's own capture method, and which named
// types they construct (payload under assembly, not captured state).
type captureSet struct {
	read      map[*types.Var]bool
	delegated map[*types.Var]bool
	built     map[*types.TypeName]bool
}

// capturedFields walks every function in the capture closure, collecting
// field reads. Write-position selections (assignment targets) do not
// count: they are destinations, not captured state. Reads inside
// error/format/log calls do not count either — a field mentioned in an
// error message is diagnostics, not serialization.
func capturedFields(pass *Pass, g *CallGraph, closure map[FactKey]*ast.FuncDecl) *captureSet {
	caps := &captureSet{
		read:      make(map[*types.Var]bool),
		delegated: make(map[*types.Var]bool),
		built:     make(map[*types.TypeName]bool),
	}
	for _, key := range g.Keys() {
		fd := closure[key]
		if fd == nil || fd.Body == nil {
			continue
		}
		writes := make(map[ast.Node]bool)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if as, ok := n.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if se, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
						writes[se] = true
					}
				}
			}
			return true
		})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if tv, ok := pass.TypesInfo.Types[n]; ok {
					if named := namedOf(tv.Type); named != nil && named.Obj().Pkg() == pass.Pkg {
						caps.built[named.Obj()] = true
					}
				}
			case *ast.CallExpr:
				if isIncidentalCall(pass.TypesInfo, n) {
					return false
				}
				if se, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && delegateMethodNames[se.Sel.Name] {
					if base, ok := ast.Unparen(se.X).(*ast.SelectorExpr); ok {
						if f := selectedField(pass, base); f != nil {
							caps.delegated[f] = true
						}
					}
				}
			case *ast.SelectorExpr:
				sel := pass.TypesInfo.Selections[n]
				if sel != nil && sel.Kind() == types.FieldVal {
					markSelectionPath(sel, caps.read, writes[n])
				}
			}
			return true
		})
	}
	return caps
}

// isIncidentalCall reports whether the call is error construction,
// formatting, logging, or panic — sinks whose arguments are messages,
// not captured state.
func isIncidentalCall(info *types.Info, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, builtin := info.Uses[id].(*types.Builtin); builtin &&
			(id.Name == "panic" || id.Name == "print" || id.Name == "println") {
			return true
		}
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "fmt", "errors", "log", "log/slog":
		return true
	}
	return false
}

// markSelectionPath marks every field along the selection's (possibly
// promoted) index path as read; when the selection is a write target the
// final field is skipped — only the path leading to it was read.
func markSelectionPath(sel *types.Selection, read map[*types.Var]bool, isWrite bool) {
	t := sel.Recv()
	idx := sel.Index()
	for i, fi := range idx {
		st, ok := derefStruct(t)
		if !ok || fi >= st.NumFields() {
			return
		}
		f := st.Field(fi)
		if i == len(idx)-1 && isWrite {
			return
		}
		read[f] = true
		t = f.Type()
	}
}

// selectedField returns the field a selector expression reads, or nil.
func selectedField(pass *Pass, se *ast.SelectorExpr) *types.Var {
	sel := pass.TypesInfo.Selections[se]
	if sel == nil || sel.Kind() != types.FieldVal {
		return nil
	}
	f, _ := sel.Obj().(*types.Var)
	return f
}

// packageStructs returns the package-level named struct types, sorted by
// name (scope order).
func packageStructs(pass *Pass) []*types.TypeName {
	scope := pass.Pkg.Scope()
	var out []*types.TypeName
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		if _, ok := tn.Type().Underlying().(*types.Struct); ok {
			out = append(out, tn)
		}
	}
	return out
}

// fieldOwners maps every field of the package's struct types back to the
// declaring type.
func fieldOwners(structs []*types.TypeName) map[*types.Var]*types.TypeName {
	owners := make(map[*types.Var]*types.TypeName)
	for _, tn := range structs {
		st := tn.Type().Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			owners[st.Field(i)] = tn
		}
	}
	return owners
}

// exemptField reports whether a field can never be meaningful serialized
// state: blank fields, funcs, channels, sync primitives, empty structs.
func exemptField(f *types.Var) bool {
	if f.Name() == "_" {
		return true
	}
	t := f.Type()
	switch t.Underlying().(type) {
	case *types.Signature, *types.Chan:
		return true
	}
	if n := namedOf(t); n != nil && n.Obj().Pkg() != nil {
		switch n.Obj().Pkg().Path() {
		case "sync", "sync/atomic":
			return true
		}
	}
	if st, ok := derefStruct(t); ok && st.NumFields() == 0 {
		return true
	}
	return false
}

// derefStruct unwraps pointers, aliases, and named types to a struct.
func derefStruct(t types.Type) (*types.Struct, bool) {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			t = tt.Underlying()
		case *types.Struct:
			return tt, true
		default:
			return nil, false
		}
	}
}

// hiddenState describes a type whose unexported fields gob would drop.
type hiddenState struct {
	name   string
	fields []string
}

// hidesState reports whether a captured value of type t (containers
// unwrapped) would silently lose unexported state through gob: a
// cross-package named struct with unexported non-exempt fields, no
// GobEncode/MarshalBinary, no capture method of its own, and no upstream
// coveredFact. Same-package types are governed by adoption instead.
func hidesState(pass *Pass, t types.Type) (hiddenState, bool) {
	t = unwrapContainers(t)
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg() == pass.Pkg {
		return hiddenState{}, false
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return hiddenState{}, false
	}
	if key, ok := TypeKey(n); ok {
		var cf coveredFact
		if pass.ImportFact(key, &cf) {
			return hiddenState{}, false
		}
	}
	if hasMethodNamed(n, "GobEncode", "MarshalBinary", "State", "MarshalState", "Save") {
		return hiddenState{}, false
	}
	hidden := hiddenFieldNames(st)
	if len(hidden) == 0 {
		return hiddenState{}, false
	}
	return hiddenState{name: n.Obj().Name(), fields: hidden}, true
}

// unwrapContainers strips pointers, slices, arrays, maps, and aliases.
func unwrapContainers(t types.Type) types.Type {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Slice:
			t = tt.Elem()
		case *types.Array:
			t = tt.Elem()
		case *types.Map:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		default:
			return t
		}
	}
}

// hasMethodNamed reports whether *t's method set has any of the names.
func hasMethodNamed(n *types.Named, names ...string) bool {
	for _, name := range names {
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(n), true, n.Obj().Pkg(), name)
		if _, ok := obj.(*types.Func); ok {
			return true
		}
	}
	return false
}

// hiddenFieldNames lists the unexported, non-exempt fields of a struct —
// the ones gob drops without error.
func hiddenFieldNames(st *types.Struct) []string {
	var out []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Exported() || exemptField(f) {
			continue
		}
		out = append(out, f.Name())
	}
	return out
}

// checkZeroStateReliance flags runtime-mutated fields of types whose only
// MarshalState is promoted from an embedded type: the promoted method
// cannot capture the outer type's fields, so every such assignment is
// state that a checkpoint silently loses (the unserialized done-flag bug
// class).
func checkZeroStateReliance(pass *Pass, structs []*types.TypeName, owners map[*types.Var]*types.TypeName, rootTypes, checked map[*types.TypeName]bool) {
	reliant := make(map[*types.TypeName]bool)
	for _, tn := range structs {
		if rootTypes[tn] || checked[tn] {
			continue // its own capture method / adoption governs coverage
		}
		if promotedMarshalState(pass, tn) {
			reliant[tn] = true
		}
	}
	if len(reliant) == 0 {
		return
	}
	flagged := make(map[*types.Var]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || isConstructorOrRestore(pass, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for _, lhs := range as.Lhs {
					se, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					f := selectedField(pass, se)
					if f == nil || flagged[f] {
						continue
					}
					if tn := owners[f]; tn != nil && reliant[tn] {
						flagged[f] = true
						pass.Reportf(f.Pos(),
							"field %s.%s is mutated at runtime but %s only inherits a promoted MarshalState that cannot capture it; serialize it or mark it //geomancy:ephemeral",
							tn.Name(), f.Name(), tn.Name())
					}
				}
				return true
			})
		}
	}
}

// promotedMarshalState reports whether tn's MarshalState exists only via
// an embedded type (its receiver is not tn).
func promotedMarshalState(pass *Pass, tn *types.TypeName) bool {
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(tn.Type()), true, pass.Pkg, "MarshalState")
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	recv := namedOf(receiverType(fn))
	return recv != nil && recv.Obj() != tn
}

// isConstructorOrRestore reports whether fd is a constructor (returns the
// package's own named type) or a restore-side method, whose field writes
// are rebuilding state rather than carrying it.
func isConstructorOrRestore(pass *Pass, fd *ast.FuncDecl) bool {
	switch fd.Name.Name {
	case "UnmarshalState", "RestoreState", "Reset":
		return true
	}
	fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if n := namedOf(sig.Results().At(i).Type()); n != nil && n.Obj().Pkg() == pass.Pkg {
			return true
		}
	}
	return false
}

// checkGobPayloads walks the payload type of every
// (*gob.Encoder).Encode call in the package, across package boundaries,
// and flags reachable named structs whose unexported fields gob would
// silently drop. One report per type per package.
func checkGobPayloads(pass *Pass) {
	w := &gobWalker{pass: pass, visited: make(map[string]bool)}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 || !isGobEncodeCall(pass.TypesInfo, call) {
				return true
			}
			if tv, ok := pass.TypesInfo.Types[call.Args[0]]; ok {
				w.pos = call.Pos()
				w.walk(tv.Type)
			}
			return true
		})
	}
}

type gobWalker struct {
	pass    *Pass
	pos     token.Pos
	visited map[string]bool
}

func (w *gobWalker) walk(t types.Type) {
	t = types.Unalias(t)
	if w.visited[t.String()] {
		return
	}
	w.visited[t.String()] = true
	switch tt := t.(type) {
	case *types.Pointer:
		w.walk(tt.Elem())
	case *types.Slice:
		w.walk(tt.Elem())
	case *types.Array:
		w.walk(tt.Elem())
	case *types.Map:
		w.walk(tt.Key())
		w.walk(tt.Elem())
	case *types.Struct:
		w.walkStruct(nil, tt)
	case *types.Named:
		if hasMethodNamed(tt, "GobEncode", "MarshalBinary") {
			return // the type serializes itself; gob defers to it
		}
		if st, ok := tt.Underlying().(*types.Struct); ok {
			w.walkStruct(tt, st)
			return
		}
		w.walk(tt.Underlying())
	}
}

func (w *gobWalker) walkStruct(n *types.Named, st *types.Struct) {
	if n != nil {
		if hidden := hiddenFieldNames(st); len(hidden) > 0 {
			name := n.Obj().Name()
			if p := n.Obj().Pkg(); p != nil {
				name = p.Name() + "." + name
			}
			w.pass.Reportf(w.pos,
				"gob payload reaches %s, whose unexported fields (%s) gob silently drops; give it GobEncode/MarshalBinary or restructure the payload",
				name, strings.Join(hidden, ", "))
		}
	}
	// gob only encodes exported fields; unexported ones are already
	// reported above and have no reachable payload of their own.
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() || exemptField(f) {
			continue
		}
		w.walk(f.Type())
	}
}
