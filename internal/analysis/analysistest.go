package analysis

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
)

// RunTest is the suite's analysistest harness: it loads the fixture
// packages under testdata/src/<pkg>, runs the analyzer over them with
// Filters bypassed, and reconciles the diagnostics against the
// fixtures' expectation comments.
//
// Expectations use the x/tools analysistest convention:
//
//	time.Now() // want `wall-clock`
//
// Each `backquoted` (or "quoted") string after `// want` is a regular
// expression that must match the message of one diagnostic reported on
// that line; several patterns expect several diagnostics. Every
// diagnostic must be expected and every expectation must fire.
func RunTest(t *testing.T, a *Analyzer, fixturePkgs ...string) {
	t.Helper()
	patterns := make([]string, len(fixturePkgs))
	for i, p := range fixturePkgs {
		patterns[i] = "./testdata/src/" + p
	}
	pkgs, err := Load("", patterns...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", fixturePkgs, err)
	}
	diags, err := RunUnfiltered([]*Analyzer{a}, pkgs)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, pkgs)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		matched := false
		for i, w := range wants[key] {
			if w != nil && w.MatchString(d.Message) {
				wants[key][i] = nil
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: %s", d.Pos.Filename, d.Pos.Line, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if w != nil {
				t.Errorf("expected diagnostic matching %q at %s, got none", w, key)
			}
		}
	}
}

// wantRx extracts the quoted patterns of a // want comment.
var wantRx = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// collectWants parses every fixture file's // want comments into
// per-line compiled expectations.
func collectWants(t *testing.T, pkgs []*Package) map[string][]*regexp.Regexp {
	t.Helper()
	wants := make(map[string][]*regexp.Regexp)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text, ok := cutWant(c.Text)
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					for _, m := range wantRx.FindAllStringSubmatch(text, -1) {
						pat := m[1]
						if pat == "" {
							pat = m[2]
						}
						rx, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", key, pat, err)
						}
						wants[key] = append(wants[key], rx)
					}
				}
			}
		}
	}
	return wants
}

// cutWant returns the expectation part of a comment: the text after a
// "// want" marker, which may open the comment or follow other text
// (e.g. a //geomancy: directive under test).
func cutWant(comment string) (string, bool) {
	if body, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(comment, "//")), "want "); ok {
		return body, true
	}
	if i := strings.Index(comment, "// want "); i >= 0 {
		return comment[i+len("// want "):], true
	}
	return "", false
}
