package storagesim

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"geomancy/internal/rng"
)

// FileState tracks one placed file.
type FileState struct {
	ID     int64
	Path   string
	Size   int64
	Device string
}

// AccessResult is the telemetry of one simulated access — exactly what a
// monitoring agent observes on the real system.
type AccessResult struct {
	FileID       int64
	Path         string
	Device       string
	BytesRead    int64
	BytesWritten int64
	// Start and End are virtual-clock seconds.
	Start, End float64
	// OpenTS/OpenTMS and CloseTS/CloseTMS split the timestamps the way
	// the paper's throughput formula consumes them.
	OpenTS, OpenTMS   int64
	CloseTS, CloseTMS int64
	// Throughput is (rb+wb)/duration in bytes/second.
	Throughput float64
}

// MoveResult describes a completed file movement.
type MoveResult struct {
	FileID   int64
	From, To string
	Bytes    int64
	// Duration is the full transfer time in seconds.
	Duration float64
	// Start is the virtual time the move began.
	Start float64
}

// Config tunes cluster-wide behaviour.
type Config struct {
	// Seed drives all stochastic processes.
	Seed int64
	// MoveBlocking is the fraction of a move's duration that stalls the
	// workload clock. Geomancy transfers data "in the background" (§V-A)
	// rate-limited to avoid bottlenecking the network, but the overhead is
	// still partly visible; 0.25 models that residual interference.
	MoveBlocking float64
	// EpochOffset shifts device contention phases, letting tests start at
	// different points of the diurnal wave.
	EpochOffset float64
}

// Cluster is the simulated storage system: a set of devices, the files
// placed on them, and a virtual clock. Cluster methods are safe for
// concurrent use; the virtual clock serializes accesses the way a single
// compute node's I/O path does.
type Cluster struct {
	mu      sync.Mutex
	now     float64
	rng     *rng.RNG
	cfg     Config //geomancy:ephemeral construction config, re-supplied by NewCluster before RestoreState
	devices map[string]*Device
	order   []string // device names in profile order
	files   map[int64]*FileState

	totalAccesses int64
}

// NewCluster builds a cluster from profiles.
func NewCluster(profiles []DeviceProfile, cfg Config) (*Cluster, error) {
	if cfg.MoveBlocking == 0 {
		cfg.MoveBlocking = 0.25
	}
	if cfg.MoveBlocking < 0 || cfg.MoveBlocking > 1 {
		return nil, fmt.Errorf("storagesim: MoveBlocking %v outside [0,1]", cfg.MoveBlocking)
	}
	c := &Cluster{
		now:     cfg.EpochOffset,
		rng:     rng.New(cfg.Seed),
		cfg:     cfg,
		devices: make(map[string]*Device),
		files:   make(map[int64]*FileState),
	}
	for i, p := range profiles {
		if p.Name == "" {
			return nil, fmt.Errorf("storagesim: device %d has no name", i)
		}
		if _, dup := c.devices[p.Name]; dup {
			return nil, fmt.Errorf("storagesim: duplicate device %q", p.Name)
		}
		if p.ReadBW <= 0 || p.WriteBW <= 0 {
			return nil, fmt.Errorf("storagesim: device %q has non-positive bandwidth", p.Name)
		}
		c.devices[p.Name] = newDevice(p, cfg.Seed+int64(i)*7919)
		c.order = append(c.order, p.Name)
	}
	if len(c.devices) == 0 {
		return nil, fmt.Errorf("storagesim: cluster needs at least one device")
	}
	return c, nil
}

// NewBluesky returns the paper's six-mount system.
func NewBluesky(seed int64) *Cluster {
	c, err := NewCluster(BlueskyProfiles(), Config{Seed: seed})
	if err != nil {
		panic(err) // static profiles cannot fail validation
	}
	return c
}

// Now returns the virtual clock in seconds.
func (c *Cluster) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// AdvanceTo moves the virtual clock forward to t (no-op if t is earlier).
func (c *Cluster) AdvanceTo(t float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
}

// DeviceNames returns the device names in profile order.
func (c *Cluster) DeviceNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// Device returns the named device, or nil.
func (c *Cluster) Device(name string) *Device {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.devices[name]
}

// SetAvailable flips a device's availability (mount loss / recovery).
func (c *Cluster) SetAvailable(name string, avail bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.devices[name]
	if !ok {
		return fmt.Errorf("storagesim: unknown device %q", name)
	}
	d.Available = avail
	return nil
}

// SetReadOnly flips a device's write permission.
func (c *Cluster) SetReadOnly(name string, ro bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.devices[name]
	if !ok {
		return fmt.Errorf("storagesim: unknown device %q", name)
	}
	d.ReadOnly = ro
	return nil
}

// SetExternalScale multiplies a device's external contention; scenario
// hooks use it to create sudden environment changes (Fig. 6).
func (c *Cluster) SetExternalScale(name string, scale float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.devices[name]
	if !ok {
		return fmt.Errorf("storagesim: unknown device %q", name)
	}
	d.externalScale = scale
	return nil
}

// PlaceFile creates (or re-homes without transfer cost) a file on device.
// It fails if the device is unknown, unavailable, read-only, or full — and
// a failed call leaves the cluster untouched: every check runs before any
// accounting mutates, so re-placing a file onto a full device keeps the
// file on its old device with that device's used bytes intact.
func (c *Cluster) PlaceFile(id int64, path string, size int64, device string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.devices[device]
	if !ok {
		return fmt.Errorf("storagesim: unknown device %q", device)
	}
	if !d.Available {
		return fmt.Errorf("storagesim: device %q unavailable", device)
	}
	if d.ReadOnly {
		return fmt.Errorf("storagesim: device %q is read-only", device)
	}
	if size < 0 {
		return fmt.Errorf("storagesim: negative file size %d", size)
	}
	// Capacity check before any mutation. A re-place frees the old copy's
	// bytes, so when the destination already holds the file its current
	// size counts as available.
	avail := d.Free()
	f, exists := c.files[id]
	if exists && f.Device == device {
		avail += f.Size
	}
	if avail < size {
		return fmt.Errorf("storagesim: device %q full (%d free, need %d)", device, avail, size)
	}
	if exists {
		if old := c.devices[f.Device]; old != nil {
			old.used -= f.Size
		}
	}
	c.files[id] = &FileState{ID: id, Path: path, Size: size, Device: device}
	d.used += size
	return nil
}

// File returns the state of a file, or an error if unknown.
func (c *Cluster) File(id int64) (FileState, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.files[id]
	if !ok {
		return FileState{}, fmt.Errorf("storagesim: unknown file %d", id)
	}
	return *f, nil
}

// Files returns a snapshot of all file states sorted by ID.
func (c *Cluster) Files() []FileState {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]FileState, 0, len(c.files))
	for _, f := range c.files {
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Layout returns the current file→device assignment.
func (c *Cluster) Layout() map[int64]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int64]string, len(c.files))
	for id, f := range c.files {
		out[id] = f.Device
	}
	return out
}

// noise draws the bounded multiplicative noise factor for a device.
func (c *Cluster) noise(d *Device) float64 {
	n := 1 + d.Profile.Noise*c.rng.NormFloat64()
	if n < 0.15 {
		n = 0.15
	}
	if n > 3 {
		n = 3
	}
	return n
}

// Access simulates reading/writing the file at its current location,
// advancing the virtual clock by the access duration and returning the
// telemetry a monitoring agent would capture.
func (c *Cluster) Access(fileID, readBytes, writeBytes int64) (AccessResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if readBytes < 0 || writeBytes < 0 {
		return AccessResult{}, fmt.Errorf("storagesim: negative access size")
	}
	f, ok := c.files[fileID]
	if !ok {
		return AccessResult{}, fmt.Errorf("storagesim: unknown file %d", fileID)
	}
	d := c.devices[f.Device]
	if !d.Available {
		return AccessResult{}, fmt.Errorf("storagesim: device %q unavailable", f.Device)
	}
	if writeBytes > 0 && d.ReadOnly {
		return AccessResult{}, fmt.Errorf("storagesim: write of %d bytes to read-only device %q", writeBytes, f.Device)
	}

	start := c.now
	dur := d.Profile.LatencyFloor
	if readBytes > 0 {
		dur += float64(readBytes) / d.effectiveBW(start, d.Profile.ReadBW)
	}
	if writeBytes > 0 {
		dur += float64(writeBytes) / d.effectiveBW(start, d.Profile.WriteBW)
	}
	dur *= c.noise(d)
	if dur <= 0 {
		dur = 1e-6
	}
	end := start + dur
	c.now = end
	d.addLoad(end, dur)
	d.accessCount++
	d.bytesServed += readBytes + writeBytes
	d.busySeconds += dur
	c.totalAccesses++

	res := AccessResult{
		FileID:       fileID,
		Path:         f.Path,
		Device:       f.Device,
		BytesRead:    readBytes,
		BytesWritten: writeBytes,
		Start:        start,
		End:          end,
		Throughput:   float64(readBytes+writeBytes) / dur,
	}
	d.noteThroughput(res.Throughput)
	res.OpenTS, res.OpenTMS = splitTS(start)
	res.CloseTS, res.CloseTMS = splitTS(end)
	return res, nil
}

// Move transfers a file to device dst, charging the transfer cost: the
// full duration loads both devices, and MoveBlocking of it stalls the
// workload clock. Moving a file onto its current device is a no-op.
func (c *Cluster) Move(fileID int64, dst string) (MoveResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.files[fileID]
	if !ok {
		return MoveResult{}, fmt.Errorf("storagesim: unknown file %d", fileID)
	}
	if f.Device == dst {
		return MoveResult{FileID: fileID, From: dst, To: dst, Start: c.now}, nil
	}
	to, ok := c.devices[dst]
	if !ok {
		return MoveResult{}, fmt.Errorf("storagesim: unknown device %q", dst)
	}
	if !to.Available {
		return MoveResult{}, fmt.Errorf("storagesim: device %q unavailable", dst)
	}
	if to.ReadOnly {
		return MoveResult{}, fmt.Errorf("storagesim: device %q is read-only", dst)
	}
	if to.Free() < f.Size {
		return MoveResult{}, fmt.Errorf("storagesim: device %q full (%d free, need %d)", dst, to.Free(), f.Size)
	}
	from := c.devices[f.Device]

	start := c.now
	readBW := from.effectiveBW(start, from.Profile.ReadBW)
	writeBW := to.effectiveBW(start, to.Profile.WriteBW)
	bw := math.Min(readBW, writeBW)
	dur := from.Profile.LatencyFloor + to.Profile.LatencyFloor + float64(f.Size)/bw
	dur *= c.noise(to)

	from.used -= f.Size
	to.used += f.Size
	prev := f.Device
	f.Device = dst

	from.addLoad(start, dur)
	to.addLoad(start, dur)
	c.now += dur * c.cfg.MoveBlocking

	return MoveResult{FileID: fileID, From: prev, To: dst, Bytes: f.Size, Duration: dur, Start: start}, nil
}

// Stats summarizes one device's accounting.
type Stats struct {
	Name        string
	Accesses    int64
	BytesServed int64
	BusySeconds float64
	Used        int64
	Capacity    int64
}

// DeviceStats returns per-device accounting in profile order.
func (c *Cluster) DeviceStats() []Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Stats, 0, len(c.order))
	for _, name := range c.order {
		d := c.devices[name]
		out = append(out, Stats{
			Name:        name,
			Accesses:    d.accessCount,
			BytesServed: d.bytesServed,
			BusySeconds: d.busySeconds,
			Used:        d.used,
			Capacity:    d.Profile.Capacity,
		})
	}
	return out
}

// DeviceSummary is the cheap per-device digest the candidate-pruning plane
// ranks shortlists by: no effectiveBW evaluation, no clock advancement —
// just state the cluster already maintains on every access.
type DeviceSummary struct {
	Name  string
	Class string
	// RecentThroughput is an exponentially weighted moving average of the
	// device's observed per-access throughput in bytes/second. A device
	// with no recorded accesses yet reports its nominal read bandwidth, so
	// an idle fast device still ranks into shortlists.
	RecentThroughput float64
	// Available and ReadOnly mirror the device flags so shortlist
	// construction can skip devices no move could target anyway.
	Available bool
	ReadOnly  bool
	// Nominal reports that RecentThroughput is the nominal-bandwidth
	// fallback — the device has never served an access — so shortlist
	// construction can make sure never-probed devices stay candidates
	// instead of being starved by class-mates with observed throughput.
	Nominal bool
}

// DeviceSummaries returns one summary per device in profile order.
func (c *Cluster) DeviceSummaries() []DeviceSummary {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]DeviceSummary, 0, len(c.order))
	for _, name := range c.order {
		d := c.devices[name]
		tp := d.recentTP
		if !d.recentTPValid {
			tp = d.Profile.ReadBW
		}
		out = append(out, DeviceSummary{
			Name:             name,
			Class:            d.Profile.Class,
			RecentThroughput: tp,
			Available:        d.Available,
			ReadOnly:         d.ReadOnly,
			Nominal:          !d.recentTPValid,
		})
	}
	return out
}

// TotalAccesses returns the number of accesses served by the cluster.
func (c *Cluster) TotalAccesses() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totalAccesses
}

// CurrentBandwidth reports the effective single-stream read bandwidth of a
// device right now; instrumentation for examples and debugging.
func (c *Cluster) CurrentBandwidth(name string) (float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.devices[name]
	if !ok {
		return 0, fmt.Errorf("storagesim: unknown device %q", name)
	}
	return d.effectiveBW(c.now, d.Profile.ReadBW), nil
}

// splitTS splits seconds into whole seconds and a millisecond part,
// matching the paper's (ts, tms) telemetry convention.
func splitTS(t float64) (sec, ms int64) {
	sec = int64(t)
	ms = int64((t - float64(sec)) * 1000)
	if ms > 999 {
		ms = 999
	}
	if ms < 0 {
		ms = 0
	}
	return sec, ms
}
