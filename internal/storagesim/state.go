package storagesim

import (
	"fmt"
	"sort"
)

// DeviceState is the serializable dynamic state of one device: everything
// newDevice and subsequent simulation mutate, excluding the static
// Profile (which the restoring side reconstructs from configuration).
type DeviceState struct {
	Name      string
	Available bool
	ReadOnly  bool
	Used      int64

	Load          float64
	LoadUpdated   float64
	ExternalScale float64

	BurstStart, BurstEnd float64
	BurstRNG             uint64

	EraLoad float64
	EraEnd  float64
	EraRNG  uint64

	AccessCount int64
	BytesServed int64
	BusySeconds float64

	// RecentTP/RecentTPValid carry the per-device throughput EWMA that
	// DeviceSummaries reports, so shortlists after a restore match the
	// original run bit-for-bit.
	RecentTP      float64
	RecentTPValid bool
}

// ClusterState is the serializable snapshot of a cluster: the virtual
// clock, the shared noise stream, every device's dynamic state, and the
// full file placement. Device profiles and Config are deliberately
// excluded — a restored run is expected to rebuild the cluster from the
// same configuration before applying the state.
type ClusterState struct {
	Now           float64
	RNG           uint64
	TotalAccesses int64
	Devices       []DeviceState
	Files         []FileState
}

// State captures the cluster mid-run. Restoring it onto a freshly built
// cluster with the same profiles and config resumes the simulation
// bit-for-bit.
func (c *Cluster) State() ClusterState {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := ClusterState{
		Now:           c.now,
		RNG:           c.rng.State(),
		TotalAccesses: c.totalAccesses,
	}
	for _, name := range c.order {
		d := c.devices[name]
		st.Devices = append(st.Devices, DeviceState{
			Name:          name,
			Available:     d.Available,
			ReadOnly:      d.ReadOnly,
			Used:          d.used,
			Load:          d.load,
			LoadUpdated:   d.loadUpdated,
			ExternalScale: d.externalScale,
			BurstStart:    d.burstStart,
			BurstEnd:      d.burstEnd,
			BurstRNG:      d.burstRNG.State(),
			EraLoad:       d.eraLoad,
			EraEnd:        d.eraEnd,
			EraRNG:        d.eraRNG.State(),
			AccessCount:   d.accessCount,
			BytesServed:   d.bytesServed,
			BusySeconds:   d.busySeconds,
			RecentTP:      d.recentTP,
			RecentTPValid: d.recentTPValid,
		})
	}
	for _, id := range sortedFileIDs(c.files) {
		st.Files = append(st.Files, *c.files[id])
	}
	return st
}

// RestoreState overwrites the cluster's dynamic state with a previously
// captured snapshot. The cluster must have been built from the same
// profiles: every device named in the snapshot must exist, and devices
// missing from the snapshot are an error (a layout restored onto a
// different topology would silently misplace files otherwise).
func (c *Cluster) RestoreState(st ClusterState) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(st.Devices) != len(c.devices) {
		return fmt.Errorf("storagesim: snapshot has %d devices, cluster has %d", len(st.Devices), len(c.devices))
	}
	for _, ds := range st.Devices {
		if _, ok := c.devices[ds.Name]; !ok {
			return fmt.Errorf("storagesim: snapshot device %q not in cluster", ds.Name)
		}
	}
	for _, fs := range st.Files {
		if _, ok := c.devices[fs.Device]; !ok {
			return fmt.Errorf("storagesim: snapshot file %d placed on unknown device %q", fs.ID, fs.Device)
		}
	}
	c.now = st.Now
	c.rng.SetState(st.RNG)
	c.totalAccesses = st.TotalAccesses
	for _, ds := range st.Devices {
		d := c.devices[ds.Name]
		d.Available = ds.Available
		d.ReadOnly = ds.ReadOnly
		d.used = ds.Used
		d.load = ds.Load
		d.loadUpdated = ds.LoadUpdated
		d.externalScale = ds.ExternalScale
		d.burstStart = ds.BurstStart
		d.burstEnd = ds.BurstEnd
		d.burstRNG.SetState(ds.BurstRNG)
		d.eraLoad = ds.EraLoad
		d.eraEnd = ds.EraEnd
		d.eraRNG.SetState(ds.EraRNG)
		d.accessCount = ds.AccessCount
		d.bytesServed = ds.BytesServed
		d.busySeconds = ds.BusySeconds
		d.recentTP = ds.RecentTP
		d.recentTPValid = ds.RecentTPValid
	}
	c.files = make(map[int64]*FileState, len(st.Files))
	for i := range st.Files {
		f := st.Files[i]
		c.files[f.ID] = &f
	}
	return nil
}

func sortedFileIDs(files map[int64]*FileState) []int64 {
	ids := make([]int64, 0, len(files))
	for id := range files {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
