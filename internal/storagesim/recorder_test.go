package storagesim

import (
	"testing"
)

func TestTraceRecorder(t *testing.T) {
	c := NewBluesky(31)
	c.PlaceFile(1, "/belle2/a.root", 100e6, "file0")
	rec := NewTraceRecorder(c.DeviceNames())

	res, err := c.Access(1, 60e6, 10e6)
	if err != nil {
		t.Fatal(err)
	}
	rec.Observe(res, 2, 7)
	if rec.Len() != 1 {
		t.Fatalf("Len = %d", rec.Len())
	}
	out := rec.Records()[0]
	if out.FID != 1 || out.RB != 60e6 || out.WB != 10e6 {
		t.Errorf("record = %+v", out)
	}
	if out.FSID != 1 {
		t.Errorf("fsid = %d, want 1 (file0 is first device)", out.FSID)
	}
	if out.RUID != 2 || out.TD != 7 {
		t.Errorf("workload/run tags = %d/%d", out.RUID, out.TD)
	}
	if err := out.Validate(); err != nil {
		t.Errorf("recorded trace invalid: %v", err)
	}
	// Throughput from the trace form matches the sim within ms rounding.
	if tp := out.Throughput(); tp <= 0 {
		t.Errorf("trace throughput = %v", tp)
	}
	if out.NRC != 1 || out.NWC != 1 {
		t.Errorf("call counts = %d/%d", out.NRC, out.NWC)
	}
}

func TestTraceRecorderUnknownDevice(t *testing.T) {
	rec := NewTraceRecorder([]string{"a"})
	res := AccessResult{FileID: 1, Device: "mystery", BytesRead: 10, OpenTS: 1, CloseTS: 2}
	rec.Observe(res, 1, 0)
	if got := rec.Records()[0].FSID; got != 2 {
		t.Errorf("new device fsid = %d, want 2", got)
	}
	// Stable on repeat.
	rec.Observe(res, 1, 0)
	if got := rec.Records()[1].FSID; got != 2 {
		t.Errorf("repeat fsid = %d, want 2", got)
	}
}

func TestTraceRecorderReadShare(t *testing.T) {
	rec := NewTraceRecorder(nil)
	res := AccessResult{FileID: 1, Device: "d", BytesRead: 0, BytesWritten: 0, OpenTS: 0, CloseTS: 1}
	rec.Observe(res, 1, 0)
	out := rec.Records()[0]
	if out.RT != 0 {
		t.Errorf("zero-byte access RT = %v", out.RT)
	}
	if out.NRC != 0 || out.NWC != 0 {
		t.Errorf("zero-byte call counts = %d/%d", out.NRC, out.NWC)
	}
}
