package storagesim

import (
	"math/rand"
	"strings"
	"testing"
)

// tinyCluster builds a two-device cluster with exact byte capacities so
// capacity-edge cases are easy to hit deterministically.
func tinyCluster(t *testing.T, capA, capB int64) *Cluster {
	t.Helper()
	c, err := NewCluster([]DeviceProfile{
		{Name: "a", Class: "ssd", ReadBW: 1e9, WriteBW: 1e9, Capacity: capA},
		{Name: "b", Class: "hdd", ReadBW: 1e8, WriteBW: 1e8, Capacity: capB},
	}, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestPlaceFileFailedReplaceKeepsAccounting is the regression test for the
// used-bytes corruption: re-placing an existing file onto a full device
// must fail without touching the old device's accounting. On the pre-fix
// code the old device's used bytes were decremented before the capacity
// check, so the failed call left the file resident but uncounted.
func TestPlaceFileFailedReplaceKeepsAccounting(t *testing.T) {
	c := tinyCluster(t, 1000, 100)
	if err := c.PlaceFile(1, "/f1", 600, "a"); err != nil {
		t.Fatal(err)
	}
	// Destination b (capacity 100) cannot hold the 600-byte file.
	if err := c.PlaceFile(1, "/f1", 600, "b"); err == nil {
		t.Fatal("re-place onto full device succeeded")
	}
	f, err := c.File(1)
	if err != nil {
		t.Fatal(err)
	}
	if f.Device != "a" {
		t.Fatalf("file moved to %q by a failed re-place", f.Device)
	}
	if used := c.Device("a").Used(); used != 600 {
		t.Fatalf("device a used = %d after failed re-place, want 600", used)
	}
	if used := c.Device("b").Used(); used != 0 {
		t.Fatalf("device b used = %d after failed re-place, want 0", used)
	}
	// The accounting must survive repeated failures: the pre-fix bug
	// compounded, eventually driving used negative.
	for i := 0; i < 5; i++ {
		if err := c.PlaceFile(1, "/f1", 600, "b"); err == nil {
			t.Fatal("re-place onto full device succeeded")
		}
	}
	if used := c.Device("a").Used(); used != 600 {
		t.Fatalf("device a used = %d after repeated failures, want 600", used)
	}
}

// TestPlaceFileSameDeviceResize checks the effective-free accounting: a
// re-place onto the file's current device frees the old copy first, so
// growing a file in place succeeds whenever the delta fits.
func TestPlaceFileSameDeviceResize(t *testing.T) {
	c := tinyCluster(t, 1000, 100)
	if err := c.PlaceFile(1, "/f1", 900, "a"); err != nil {
		t.Fatal(err)
	}
	// 950 > 1000-900 free, but the old 900-byte copy is replaced.
	if err := c.PlaceFile(1, "/f1", 950, "a"); err != nil {
		t.Fatalf("in-place grow within capacity failed: %v", err)
	}
	if used := c.Device("a").Used(); used != 950 {
		t.Fatalf("device a used = %d, want 950", used)
	}
	// Growing past capacity still fails, and cleanly.
	if err := c.PlaceFile(1, "/f1", 1001, "a"); err == nil {
		t.Fatal("grow past capacity succeeded")
	}
	if used := c.Device("a").Used(); used != 950 {
		t.Fatalf("device a used = %d after failed grow, want 950", used)
	}
}

func TestAccessRejectsWriteToReadOnly(t *testing.T) {
	c := tinyCluster(t, 1000, 1000)
	if err := c.PlaceFile(1, "/f1", 100, "a"); err != nil {
		t.Fatal(err)
	}
	if err := c.SetReadOnly("a", true); err != nil {
		t.Fatal(err)
	}
	before := c.DeviceStats()[0]

	if _, err := c.Access(1, 0, 50); err == nil {
		t.Fatal("write to read-only device succeeded")
	} else if !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("unexpected error: %v", err)
	}
	if _, err := c.Access(1, 10, 50); err == nil {
		t.Fatal("mixed read+write to read-only device succeeded")
	}
	after := c.DeviceStats()[0]
	if after.Accesses != before.Accesses || after.BytesServed != before.BytesServed || after.BusySeconds != before.BusySeconds {
		t.Fatalf("rejected write mutated accounting: before %+v after %+v", before, after)
	}

	// Pure reads still work on a read-only device.
	if _, err := c.Access(1, 10, 0); err != nil {
		t.Fatalf("read from read-only device failed: %v", err)
	}
}

func TestDeviceSummaries(t *testing.T) {
	c := tinyCluster(t, 1000, 1000)
	sums := c.DeviceSummaries()
	if len(sums) != 2 {
		t.Fatalf("got %d summaries", len(sums))
	}
	if sums[0].Name != "a" || sums[0].Class != "ssd" || sums[1].Name != "b" {
		t.Fatalf("summaries out of profile order: %+v", sums)
	}
	// Before any access, summaries fall back to nominal read bandwidth.
	if sums[0].RecentThroughput != 1e9 || sums[1].RecentThroughput != 1e8 {
		t.Fatalf("idle-device fallback wrong: %+v", sums)
	}
	if !sums[0].Available || sums[0].ReadOnly {
		t.Fatalf("flags wrong: %+v", sums[0])
	}

	if err := c.PlaceFile(1, "/f1", 100, "a"); err != nil {
		t.Fatal(err)
	}
	res, err := c.Access(1, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := c.DeviceSummaries()[0].RecentThroughput
	if got != res.Throughput {
		t.Fatalf("first observation should seed the EWMA: got %v, want %v", got, res.Throughput)
	}
	res2, err := c.Access(1, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := res.Throughput + recentTPAlpha*(res2.Throughput-res.Throughput)
	if got := c.DeviceSummaries()[0].RecentThroughput; got != want {
		t.Fatalf("EWMA after second access = %v, want %v", got, want)
	}
	// Device b stays on its fallback.
	if got := c.DeviceSummaries()[1].RecentThroughput; got != 1e8 {
		t.Fatalf("untouched device EWMA moved: %v", got)
	}

	if err := c.SetReadOnly("b", true); err != nil {
		t.Fatal(err)
	}
	if !c.DeviceSummaries()[1].ReadOnly {
		t.Fatal("ReadOnly flag not reflected in summary")
	}
}

func TestDeviceSummariesSurviveRestore(t *testing.T) {
	c := tinyCluster(t, 1000, 1000)
	if err := c.PlaceFile(1, "/f1", 100, "a"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Access(1, 500, 100); err != nil {
			t.Fatal(err)
		}
	}
	st := c.State()

	re := tinyCluster(t, 1000, 1000)
	if err := re.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	want := c.DeviceSummaries()
	got := re.DeviceSummaries()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("summary %d diverged after restore: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestAccountingInvariant drives a cluster through arbitrary interleavings
// of placements, re-placements, moves, accesses, and deliberately failing
// ops, checking after every step that each device's used bytes equal the
// summed sizes of the files resident on it — the invariant the PlaceFile
// bug violated.
func TestAccountingInvariant(t *testing.T) {
	const files = 40
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		seed := seed
		t.Run("", func(t *testing.T) {
			c, err := NewCluster([]DeviceProfile{
				{Name: "a", Class: "ssd", ReadBW: 1e9, WriteBW: 1e9, Capacity: 3000},
				{Name: "b", Class: "ssd", ReadBW: 8e8, WriteBW: 8e8, Capacity: 2000},
				{Name: "d", Class: "hdd", ReadBW: 2e8, WriteBW: 1e8, Capacity: 1500},
				{Name: "e", Class: "hdd", ReadBW: 1e8, WriteBW: 5e7, Capacity: 800},
			}, Config{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			devs := []string{"a", "b", "d", "e", "nope"} // includes an unknown device
			r := rand.New(rand.NewSource(seed))

			check := func(step int) {
				t.Helper()
				bySizes := map[string]int64{}
				var total int64
				for _, f := range c.Files() {
					bySizes[f.Device] += f.Size
					total += f.Size
				}
				var usedTotal int64
				for _, s := range c.DeviceStats() {
					if s.Used != bySizes[s.Name] {
						t.Fatalf("step %d: device %s used=%d but resident files sum to %d", step, s.Name, s.Used, bySizes[s.Name])
					}
					if s.Used < 0 {
						t.Fatalf("step %d: device %s used went negative: %d", step, s.Name, s.Used)
					}
					usedTotal += s.Used
				}
				if usedTotal != total {
					t.Fatalf("step %d: total used %d != total file bytes %d", step, usedTotal, total)
				}
			}

			for step := 0; step < 600; step++ {
				id := int64(r.Intn(files))
				dev := devs[r.Intn(len(devs))]
				switch r.Intn(6) {
				case 0, 1: // place or re-place, sometimes oversized
					size := int64(r.Intn(1200))
					_ = c.PlaceFile(id, "/f", size, dev)
				case 2: // move, often failing on capacity or unknown file
					_, _ = c.Move(id, dev)
				case 3: // access
					_, _ = c.Access(id, int64(r.Intn(1000)), int64(r.Intn(1000)))
				case 4: // flip availability, then restore it
					_ = c.SetAvailable(dev, r.Intn(2) == 0)
				case 5: // flip read-only
					_ = c.SetReadOnly(dev, r.Intn(2) == 0)
				}
				check(step)
			}
		})
	}
}
