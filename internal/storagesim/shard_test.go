package storagesim

import (
	"reflect"
	"strings"
	"testing"
)

func TestShardsPartition(t *testing.T) {
	c := NewBluesky(1)
	all := c.DeviceNames()

	for _, n := range []int{1, 2, 3, 6} {
		shards, err := c.Shards(n)
		if err != nil {
			t.Fatalf("Shards(%d): %v", n, err)
		}
		if len(shards) != n {
			t.Fatalf("Shards(%d) returned %d shards", n, len(shards))
		}
		// Disjoint and covering, in profile order.
		var flat []string
		for i, s := range shards {
			if s.Index() != i {
				t.Errorf("shard %d reports index %d", i, s.Index())
			}
			names := s.DeviceNames()
			if len(names) == 0 {
				t.Errorf("Shards(%d): shard %d is empty", n, i)
			}
			for _, name := range names {
				if !s.Contains(name) {
					t.Errorf("shard %d does not Contain its own device %q", i, name)
				}
				if s.Device(name) == nil {
					t.Errorf("shard %d Device(%q) = nil", i, name)
				}
			}
			flat = append(flat, names...)
		}
		if !reflect.DeepEqual(flat, all) {
			t.Errorf("Shards(%d) partition %v does not cover %v", n, flat, all)
		}
	}

	if _, err := c.Shards(0); err == nil {
		t.Error("Shards(0) should fail")
	}
	if _, err := c.Shards(len(all) + 1); err == nil {
		t.Error("more shards than devices should fail")
	}
}

func TestShardViewFilters(t *testing.T) {
	c := NewBluesky(1)
	shards, err := c.Shards(2)
	if err != nil {
		t.Fatal(err)
	}
	s0, s1 := shards[0], shards[1]

	// A device owned by the other shard is invisible: nil Device, no
	// summary, Contains false.
	other := s1.DeviceNames()[0]
	if s0.Contains(other) || s0.Device(other) != nil {
		t.Errorf("shard 0 sees shard 1's device %q", other)
	}
	sums := s0.DeviceSummaries()
	if len(sums) != len(s0.DeviceNames()) {
		t.Fatalf("shard 0 has %d summaries for %d devices", len(sums), len(s0.DeviceNames()))
	}
	for i, d := range sums {
		if d.Name != s0.DeviceNames()[i] {
			t.Errorf("summary %d is %q, want %q (profile order)", i, d.Name, s0.DeviceNames()[i])
		}
	}
}

func TestShardByCustomAssign(t *testing.T) {
	c := NewBluesky(1)
	// Route the raid devices to shard 0, everything else to shard 1.
	shards, err := c.ShardBy(2, func(device string) int {
		if strings.HasPrefix(device, "file") || device == "tmp" || device == "var" {
			return 0
		}
		return 1
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := shards[0].DeviceNames(); !reflect.DeepEqual(got, []string{"file0", "tmp", "var"}) {
		t.Errorf("shard 0 = %v", got)
	}
	if got := shards[1].DeviceNames(); !reflect.DeepEqual(got, []string{"pic", "people", "USBtmp"}) {
		t.Errorf("shard 1 = %v", got)
	}

	// Out-of-range assignment and empty shards are errors.
	if _, err := c.ShardBy(2, func(string) int { return 5 }); err == nil {
		t.Error("out-of-range assign should fail")
	}
	if _, err := c.ShardBy(2, func(string) int { return 0 }); err == nil {
		t.Error("empty shard should fail")
	}
}

// TestShardReserveTwoPhase pins the two-phase accounting contract: a
// reservation gates admission without touching used-bytes, a failed
// reservation leaves the ledger unchanged, and releasing returns the
// shard to a clean slate.
func TestShardReserveTwoPhase(t *testing.T) {
	c := NewBluesky(1)
	shards, err := c.Shards(2)
	if err != nil {
		t.Fatal(err)
	}
	s := shards[0]
	dev := s.DeviceNames()[0]
	d := s.Device(dev)
	free := d.Free()
	usedBefore := d.Used()

	// Claim most of the device, then fail to claim the remainder plus one.
	if err := s.Reserve(dev, free-10); err != nil {
		t.Fatalf("first reservation: %v", err)
	}
	if d.Used() != usedBefore {
		t.Fatalf("Reserve mutated used bytes: %d -> %d", usedBefore, d.Used())
	}
	if err := s.Reserve(dev, 11); err == nil {
		t.Fatal("over-reservation should fail")
	}
	if got := s.Reserved(dev); got != free-10 {
		t.Fatalf("failed reservation changed the ledger: %d", got)
	}
	// The remaining 10 bytes are still claimable.
	if err := s.Reserve(dev, 10); err != nil {
		t.Fatalf("exact-fit reservation: %v", err)
	}

	// Devices outside the shard, unavailable, and read-only devices reject.
	other := shards[1].DeviceNames()[0]
	if err := s.Reserve(other, 1); err == nil {
		t.Error("reserving an unowned device should fail")
	}
	if err := c.SetReadOnly(dev, true); err != nil {
		t.Fatal(err)
	}
	if err := s.Reserve(dev, 0); err == nil {
		t.Error("reserving a read-only device should fail")
	}
	if err := c.SetReadOnly(dev, false); err != nil {
		t.Fatal(err)
	}

	s.ReleaseReservations()
	if got := s.Reserved(dev); got != 0 {
		t.Fatalf("ledger not empty after release: %d", got)
	}
	if d.Used() != usedBefore {
		t.Fatalf("reservation cycle leaked into used bytes: %d -> %d", usedBefore, d.Used())
	}
}

func TestShardStateRoundTrip(t *testing.T) {
	c := NewBluesky(1)
	shards, err := c.Shards(3)
	if err != nil {
		t.Fatal(err)
	}
	s := shards[1]
	s.NoteDecision(7)
	s.NoteEscalation()
	s.NoteEscalation()
	s.NoteMigration()

	st := s.State()

	c2 := NewBluesky(1)
	shards2, err := c2.Shards(3)
	if err != nil {
		t.Fatal(err)
	}
	r := shards2[1]
	if err := r.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if r.Decisions() != 7 || r.Escalations() != 2 || r.Migrations() != 1 {
		t.Errorf("restored counters = %d/%d/%d, want 7/2/1",
			r.Decisions(), r.Escalations(), r.Migrations())
	}

	// Mismatched partition: wrong index, wrong device set.
	if err := shards2[0].RestoreState(st); err == nil {
		t.Error("restoring into the wrong shard index should fail")
	}
	shards4, err := c2.Shards(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := shards4[1].RestoreState(st); err == nil {
		t.Error("restoring across a different partition should fail")
	}
}
