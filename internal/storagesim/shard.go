package storagesim

import "fmt"

// ClusterView is the read-and-summarize surface the placement plane
// decides from: the full flat Cluster implements it, and so does a
// Shard, which exposes the same surface filtered down to its device
// subset. Engines and policies written against ClusterView work
// unchanged whether they see the whole system or one shard of it.
type ClusterView interface {
	// DeviceNames returns the view's device names in profile order.
	DeviceNames() []string
	// DeviceSummaries returns one digest per device in the view, in
	// profile order.
	DeviceSummaries() []DeviceSummary
	// Device returns the named device, or nil when the device is unknown
	// to (or outside) the view.
	Device(name string) *Device
}

var (
	_ ClusterView = (*Cluster)(nil)
	_ ClusterView = (*Shard)(nil)
)

// Shard is a disjoint device subset of a cluster with its own decision
// accounting and a two-phase reservation ledger for cross-shard
// migrations. Shards share the parent cluster's devices and virtual
// clock — a shard is a *view* plus shard-local state, not a copy — so
// accesses and moves still go through the parent; the shard adds the
// bookkeeping the sharded placement plane needs: which devices it owns,
// how many decisions/escalations/migrations it has made, and which
// remote placements are tentatively holding bytes.
type Shard struct {
	parent  *Cluster //geomancy:ephemeral structural wiring, re-supplied by Cluster.Shards on restore
	index   int
	names   []string
	nameSet map[string]bool //geomancy:ephemeral derived from names by newShard

	// reserved holds tentative byte claims per device (two-phase
	// cross-shard placement): Reserve admits a claim only if the device's
	// free space minus existing claims covers it, and ReleaseReservations
	// drops all claims at the end of a decision cycle. Reservations never
	// touch Device.used — the actual accounting happens in Cluster.Move,
	// which re-validates — so a failed or abandoned remote placement can
	// never corrupt used-bytes.
	reserved map[string]int64 //geomancy:ephemeral intra-decision-cycle ledger, always empty at checkpoint boundaries

	decisions   int64
	escalations int64
	migrations  int64
}

func newShard(parent *Cluster, index int, names []string) *Shard {
	s := &Shard{
		parent:   parent,
		index:    index,
		names:    names,
		nameSet:  make(map[string]bool, len(names)),
		reserved: make(map[string]int64),
	}
	for _, n := range names {
		s.nameSet[n] = true
	}
	return s
}

// Shards partitions the cluster's devices into n contiguous groups in
// profile order. Every device lands in exactly one shard; the first
// len(devices) mod n shards carry one extra device when the division is
// uneven. n must be in [1, len(devices)].
func (c *Cluster) Shards(n int) ([]*Shard, error) {
	return c.ShardBy(n, nil)
}

// ShardBy partitions the cluster's devices into n groups using assign,
// which maps a device name to its shard index in [0, n). A nil assign
// falls back to the contiguous profile-order partition. Every shard must
// end up with at least one device — an empty shard would own an engine
// with no candidates — and an out-of-range assignment is an error.
func (c *Cluster) ShardBy(n int, assign func(device string) int) ([]*Shard, error) {
	c.mu.Lock()
	order := make([]string, len(c.order))
	copy(order, c.order)
	c.mu.Unlock()

	if n < 1 {
		return nil, fmt.Errorf("storagesim: shard count %d < 1", n)
	}
	if n > len(order) {
		return nil, fmt.Errorf("storagesim: %d shards over %d devices leaves empty shards", n, len(order))
	}
	groups := make([][]string, n)
	if assign == nil {
		// Contiguous profile-order split: sizes differ by at most one.
		base, extra := len(order)/n, len(order)%n
		at := 0
		for i := 0; i < n; i++ {
			size := base
			if i < extra {
				size++
			}
			groups[i] = order[at : at+size]
			at += size
		}
	} else {
		for _, name := range order {
			i := assign(name)
			if i < 0 || i >= n {
				return nil, fmt.Errorf("storagesim: device %q assigned to shard %d outside [0,%d)", name, i, n)
			}
			groups[i] = append(groups[i], name)
		}
	}
	shards := make([]*Shard, n)
	for i, g := range groups {
		if len(g) == 0 {
			return nil, fmt.Errorf("storagesim: shard %d of %d has no devices", i, n)
		}
		shards[i] = newShard(c, i, g)
	}
	return shards, nil
}

// Index returns the shard's position in the partition.
func (s *Shard) Index() int { return s.index }

// Contains reports whether the shard owns the named device.
func (s *Shard) Contains(device string) bool { return s.nameSet[device] }

// DeviceNames returns the shard's device names in profile order.
func (s *Shard) DeviceNames() []string {
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

// Device returns the named device when the shard owns it, else nil —
// including devices that exist in the parent cluster but belong to a
// different shard.
func (s *Shard) Device(name string) *Device {
	if !s.nameSet[name] {
		return nil
	}
	return s.parent.Device(name)
}

// DeviceSummaries returns the parent's digests filtered to the shard's
// devices, preserving profile order.
func (s *Shard) DeviceSummaries() []DeviceSummary {
	all := s.parent.DeviceSummaries()
	out := make([]DeviceSummary, 0, len(s.names))
	for _, d := range all {
		if s.nameSet[d.Name] {
			out = append(out, d)
		}
	}
	return out
}

// Reserve tentatively claims size bytes on one of the shard's devices —
// phase one of a cross-shard migration. The claim succeeds only when the
// device is present, available, writable, and its free space minus the
// shard's existing claims covers size. A successful Reserve mutates only
// the reservation ledger; the used-bytes accounting happens later, in
// Cluster.Move, which re-validates against real free space. A failed
// Reserve leaves the ledger untouched.
func (s *Shard) Reserve(device string, size int64) error {
	if size < 0 {
		return fmt.Errorf("storagesim: negative reservation %d", size)
	}
	d := s.Device(device)
	if d == nil {
		return fmt.Errorf("storagesim: shard %d does not own device %q", s.index, device)
	}
	if !d.Available {
		return fmt.Errorf("storagesim: device %q unavailable", device)
	}
	if d.ReadOnly {
		return fmt.Errorf("storagesim: device %q is read-only", device)
	}
	if free := d.Free() - s.reserved[device]; free < size {
		return fmt.Errorf("storagesim: device %q cannot cover reservation (%d unreserved, need %d)", device, free, size)
	}
	s.reserved[device] += size
	return nil
}

// Reserved returns the bytes currently claimed on a device.
func (s *Shard) Reserved(device string) int64 { return s.reserved[device] }

// ReleaseReservations drops every tentative claim — phase two of the
// cycle, after the coordinator has committed its layout. Reservations
// only ever gate admission within one decision cycle, so the ledger is
// empty at every checkpoint boundary.
func (s *Shard) ReleaseReservations() {
	for k := range s.reserved {
		delete(s.reserved, k)
	}
}

// NoteDecision counts n files decided by the shard's engine this cycle.
func (s *Shard) NoteDecision(n int) { s.decisions += int64(n) }

// NoteEscalation counts a decision escalated to the global digest check.
func (s *Shard) NoteEscalation() { s.escalations++ }

// NoteMigration counts a committed cross-shard migration targeting this
// shard.
func (s *Shard) NoteMigration() { s.migrations++ }

// Decisions returns the shard's cumulative decided-file count.
func (s *Shard) Decisions() int64 { return s.decisions }

// Escalations returns the shard's cumulative escalation count.
func (s *Shard) Escalations() int64 { return s.escalations }

// Migrations returns the cumulative cross-shard migrations into the
// shard.
func (s *Shard) Migrations() int64 { return s.migrations }

// ShardState is the serializable snapshot of a shard: its identity (index
// + owned devices, validated on restore) and its cumulative counters. The
// devices themselves serialize with the parent ClusterState; the
// reservation ledger is intra-cycle and always empty at snapshot time.
type ShardState struct {
	Index       int
	Devices     []string
	Decisions   int64
	Escalations int64
	Migrations  int64
}

// State captures the shard's identity and counters.
func (s *Shard) State() ShardState {
	return ShardState{
		Index:       s.index,
		Devices:     append([]string(nil), s.names...),
		Decisions:   s.decisions,
		Escalations: s.escalations,
		Migrations:  s.migrations,
	}
}

// RestoreState overwrites the shard's counters with a snapshot, after
// verifying the snapshot describes this shard — same index, same device
// set. A partition mismatch means the snapshot was taken under a
// different sharding configuration and must not restore silently.
func (s *Shard) RestoreState(st ShardState) error {
	if st.Index != s.index {
		return fmt.Errorf("storagesim: shard state index %d does not match shard %d", st.Index, s.index)
	}
	if len(st.Devices) != len(s.names) {
		return fmt.Errorf("storagesim: shard %d state has %d devices, shard owns %d", s.index, len(st.Devices), len(s.names))
	}
	for i, name := range st.Devices {
		if s.names[i] != name {
			return fmt.Errorf("storagesim: shard %d device %d is %q in state, %q in shard", s.index, i, name, s.names[i])
		}
	}
	s.decisions = st.Decisions
	s.escalations = st.Escalations
	s.migrations = st.Migrations
	return nil
}
