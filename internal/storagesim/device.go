// Package storagesim simulates the storage substrate of the paper's live
// experiments: PNNL Bluesky's single compute node with six mounted storage
// devices (§III) — an NFS home directory shared with other users (people),
// two RAID-1 scratch mounts (var, tmp), a RAID-5 mount with a large
// read/write speed imbalance (file0), a Lustre file system (pic), and an
// externally mounted USB disk (USBtmp).
//
// The simulator is a virtual-clock discrete-event model. Each device has a
// sustained read/write bandwidth, a per-access latency floor, bounded
// multiplicative noise, and an external-contention process (diurnal wave
// plus Poisson bursts) standing in for the other users of the shared
// system. Every stochastic choice derives from an explicit seed, so
// experiments replay bit-for-bit.
//
// Accounting semantics: a failed mutation leaves the cluster untouched.
// PlaceFile, Move, and Access validate every precondition (device known,
// available, writable when bytes land on it, capacity) before touching any
// used-bytes or served-bytes counter, so each device's used bytes always
// equal the summed sizes of the files resident on it and read-only devices
// never absorb writes.
package storagesim

import (
	"fmt"
	"math"

	"geomancy/internal/rng"
)

// ExternalLoad models contention from other users of a shared device as a
// fraction of device bandwidth consumed at a given time.
type ExternalLoad struct {
	// Base is the always-present load fraction in [0,1).
	Base float64
	// WaveAmp and WavePeriod describe the diurnal demand wave.
	WaveAmp    float64
	WavePeriod float64
	// Phase offsets the wave so devices do not peak together.
	Phase float64
	// BurstRate is the expected bursts per simulated hour; BurstLoad the
	// extra load during a burst, and BurstMean the mean burst length in
	// seconds. The NFS mount's multi-hour stalls are long, severe bursts.
	BurstRate float64
	BurstLoad float64
	BurstMean float64
	// EraMean and EraSpread describe slow regime changes in the device's
	// background demand: roughly every EraMean seconds an additive
	// contention level is re-drawn uniformly from [0, EraSpread] and
	// persists for the era. These are the "shifting workloads" of §I —
	// the non-stationarity that makes any one-shot layout decay and that
	// a periodically re-trained model can chase. Zero disables eras.
	EraMean   float64
	EraSpread float64
}

// DeviceProfile is the static description of a storage device.
type DeviceProfile struct {
	// Name is the mount name (file0, pic, people, tmp, var, USBtmp).
	Name string
	// Class names the hardware class behind the mount ("raid5", "nfs",
	// "usb", ...). Tier-aware policies group devices into performance
	// tiers by class; empty means unclassified.
	Class string
	// ReadBW and WriteBW are sustained bandwidths in bytes/second.
	ReadBW, WriteBW float64
	// LatencyFloor is the fixed per-access overhead in seconds.
	LatencyFloor float64
	// Noise is the relative sigma of per-access multiplicative noise.
	Noise float64
	// Capacity is the device size in bytes.
	Capacity int64
	// External is the contention process of the device.
	External ExternalLoad
}

// Device is the live state of a simulated device.
type Device struct {
	Profile DeviceProfile //geomancy:ephemeral topology config; RestoreState requires a cluster rebuilt from the same profiles

	// Available mirrors mount availability; the Action Checker consults
	// it before approving moves.
	Available bool
	// ReadOnly marks devices that cannot accept new data.
	ReadOnly bool

	used int64 // bytes currently stored

	// load is a decaying account of recent internal traffic (our own
	// workloads), producing self-contention when two workloads or a move
	// hit the same mount.
	load        float64
	loadUpdated float64
	// externalScale multiplies the external load; scenario hooks use it.
	externalScale float64

	// burst state: the current/next burst window, generated lazily.
	burstStart, burstEnd float64
	burstRNG             *rng.RNG

	// era state: the current additive contention regime and when it ends.
	eraLoad float64
	eraEnd  float64
	eraRNG  *rng.RNG

	// accounting
	accessCount int64
	bytesServed int64
	busySeconds float64

	// recentTP is an exponentially weighted moving average of observed
	// per-access throughput, the cheap signal DeviceSummaries exposes for
	// shortlist ranking. recentTPValid distinguishes "never accessed" from
	// a genuine zero.
	recentTP      float64
	recentTPValid bool
}

// recentTPAlpha is the EWMA smoothing factor for recentTP: each access
// contributes 20% of its throughput, so the average spans roughly the last
// five accesses — fresh enough to track bursts, smooth enough that one
// noisy access does not reorder a shortlist.
const recentTPAlpha = 0.2

// noteThroughput folds one observed access throughput into the EWMA.
func (d *Device) noteThroughput(tp float64) {
	if d.recentTPValid {
		d.recentTP += recentTPAlpha * (tp - d.recentTP)
	} else {
		d.recentTP = tp
		d.recentTPValid = true
	}
}

// loadHalfLife is the decay half-life, in simulated seconds, of the
// self-contention account.
const loadHalfLife = 20.0

func newDevice(p DeviceProfile, seed int64) *Device {
	d := &Device{
		Profile:       p,
		Available:     true,
		externalScale: 1,
		burstRNG:      rng.New(seed),
		eraRNG:        rng.New(seed ^ 0x5eed),
	}
	d.scheduleBurst(0)
	d.nextEra(0)
	return d
}

// nextEra draws the contention regime starting at time t.
func (d *Device) nextEra(t float64) {
	e := d.Profile.External
	if e.EraMean <= 0 || e.EraSpread <= 0 {
		d.eraLoad = 0
		d.eraEnd = math.Inf(1)
		return
	}
	d.eraLoad = d.eraRNG.Float64() * e.EraSpread
	d.eraEnd = t + e.EraMean*(0.5+d.eraRNG.ExpFloat64())
}

// scheduleBurst draws the next burst window at or after time t.
func (d *Device) scheduleBurst(t float64) {
	e := d.Profile.External
	if e.BurstRate <= 0 {
		d.burstStart = math.Inf(1)
		d.burstEnd = math.Inf(1)
		return
	}
	gap := d.burstRNG.ExpFloat64() * 3600 / e.BurstRate
	d.burstStart = t + gap
	d.burstEnd = d.burstStart + d.burstRNG.ExpFloat64()*e.BurstMean
}

// externalLoad returns the contention fraction at time t, advancing the
// burst schedule as the clock passes windows.
func (d *Device) externalLoad(t float64) float64 {
	e := d.Profile.External
	load := e.Base
	if e.WaveAmp > 0 && e.WavePeriod > 0 {
		load += e.WaveAmp * (0.5 + 0.5*math.Sin(2*math.Pi*(t+e.Phase)/e.WavePeriod))
	}
	for t > d.burstEnd {
		d.scheduleBurst(d.burstEnd)
	}
	if t >= d.burstStart && t <= d.burstEnd {
		load += e.BurstLoad
	}
	for t > d.eraEnd {
		d.nextEra(d.eraEnd)
	}
	load += d.eraLoad
	load *= d.externalScale
	if load < 0 {
		return 0
	}
	if load > 0.97 {
		return 0.97
	}
	return load
}

// decayLoad brings the self-contention account forward to time t.
func (d *Device) decayLoad(t float64) {
	if t <= d.loadUpdated {
		return
	}
	dt := t - d.loadUpdated
	d.load *= math.Exp2(-dt / loadHalfLife)
	d.loadUpdated = t
}

// addLoad records internal traffic that occupied the device for busy
// seconds around time t.
func (d *Device) addLoad(t, busy float64) {
	d.decayLoad(t)
	d.load += busy
}

// steadyStateLoad is the load account's value for a device that is busy
// 100% of the time: the integral of busy-seconds under exponential decay,
// loadHalfLife/ln 2.
const steadyStateLoad = loadHalfLife / math.Ln2

// effectiveBW returns the bandwidth available to one stream at time t,
// before noise. Internal traffic costs up to ~45% of bandwidth at full
// utilization (busyFrac 1.5 caps the penalty when moves pile on top of a
// saturated device) — enough that cramming everything onto the fastest
// mount costs real bandwidth (the paper's "its performance would suffer
// greatly"), but not so much that the per-file greedy placement, which is
// blind to joint contention, destabilizes.
func (d *Device) effectiveBW(t, base float64) float64 {
	d.decayLoad(t)
	ext := d.externalLoad(t)
	busyFrac := d.load / steadyStateLoad
	if busyFrac > 1.5 {
		busyFrac = 1.5
	}
	return base * (1 - ext) / (1 + 0.55*busyFrac)
}

// Used returns the bytes currently stored on the device.
func (d *Device) Used() int64 { return d.used }

// Free returns the remaining capacity in bytes.
func (d *Device) Free() int64 { return d.Profile.Capacity - d.used }

func (d *Device) String() string {
	return fmt.Sprintf("%s(read=%.2gB/s write=%.2gB/s used=%d)",
		d.Profile.Name, d.Profile.ReadBW, d.Profile.WriteBW, d.used)
}

// BlueskyProfiles returns the six-device configuration calibrated to the
// paper: Table IV average throughputs (file0 7.61 GB/s … USBtmp 0.63 GB/s),
// §III's qualitative notes (RAID-5 fastest with read≫write, USB slowest,
// NFS home with hour-scale interference from other users), and the heavy
// per-device variance the paper reports.
func BlueskyProfiles() []DeviceProfile {
	const GB = 1e9
	return []DeviceProfile{
		{
			Name: "file0", Class: "raid5", ReadBW: 14 * GB, WriteBW: 4 * GB,
			LatencyFloor: 0.004, Noise: 0.32, Capacity: 400e9,
			External: ExternalLoad{Base: 0.1, WaveAmp: 0.25, WavePeriod: 3000, BurstRate: 0.4, BurstLoad: 0.35, BurstMean: 1500, EraMean: 4200, EraSpread: 0.45},
		},
		{
			Name: "pic", Class: "lustre", ReadBW: 6 * GB, WriteBW: 4.5 * GB,
			LatencyFloor: 0.008, Noise: 0.35, Capacity: 800e9,
			External: ExternalLoad{Base: 0.2, WaveAmp: 0.25, WavePeriod: 3200, Phase: 1600, BurstRate: 0.4, BurstLoad: 0.3, BurstMean: 1200, EraMean: 4800, EraSpread: 0.4},
		},
		{
			Name: "people", Class: "nfs", ReadBW: 5.5 * GB, WriteBW: 4 * GB,
			LatencyFloor: 0.012, Noise: 0.35, Capacity: 300e9,
			External: ExternalLoad{Base: 0.35, WaveAmp: 0.2, WavePeriod: 4000, Phase: 1500, BurstRate: 0.4, BurstLoad: 0.4, BurstMean: 3600, EraMean: 5400, EraSpread: 0.4},
		},
		{
			Name: "tmp", Class: "raid1", ReadBW: 4 * GB, WriteBW: 3.2 * GB,
			LatencyFloor: 0.005, Noise: 0.32, Capacity: 200e9,
			External: ExternalLoad{Base: 0.15, WaveAmp: 0.15, WavePeriod: 1800, Phase: 300, BurstRate: 0.6, BurstLoad: 0.25, BurstMean: 420, EraMean: 4500, EraSpread: 0.35},
		},
		{
			Name: "var", Class: "raid1", ReadBW: 3 * GB, WriteBW: 2.4 * GB,
			LatencyFloor: 0.005, Noise: 0.32, Capacity: 150e9,
			External: ExternalLoad{Base: 0.15, WaveAmp: 0.18, WavePeriod: 2200, Phase: 900, BurstRate: 0.6, BurstLoad: 0.28, BurstMean: 480, EraMean: 5000, EraSpread: 0.35},
		},
		{
			Name: "USBtmp", Class: "usb", ReadBW: 0.8 * GB, WriteBW: 0.55 * GB,
			LatencyFloor: 0.02, Noise: 0.2, Capacity: 1000e9,
			External: ExternalLoad{Base: 0.02, WaveAmp: 0.05, WavePeriod: 3600},
		},
	}
}
