package storagesim

import (
	"sync"

	"geomancy/internal/trace"
)

// TraceRecorder converts simulator telemetry into EOS-style access-log
// records, bridging live runs to the offline trace tooling (tracegen's
// CSV format, the Fig. 4 correlation analysis, external analyzers). One
// recorder serves a whole cluster; feed it from a workload observer.
type TraceRecorder struct {
	mu   sync.Mutex
	recs []trace.EOSRecord
	// deviceIndex assigns stable fsid values.
	deviceIndex map[string]int64
}

// NewTraceRecorder returns a recorder with fsids assigned in device order.
func NewTraceRecorder(devices []string) *TraceRecorder {
	idx := make(map[string]int64, len(devices))
	for i, d := range devices {
		idx[d] = int64(i + 1)
	}
	return &TraceRecorder{deviceIndex: idx}
}

// Observe converts one access result; plug it into a workload observer.
func (r *TraceRecorder) Observe(res AccessResult, workloadID, run int) {
	dur := res.End - res.Start
	rec := trace.EOSRecord{
		RUID: int64(workloadID),
		TD:   int64(run),
		FID:  res.FileID,
		FSID: r.fsid(res.Device),

		OTS:  res.OpenTS,
		OTMS: res.OpenTMS,
		CTS:  res.CloseTS,
		CTMS: res.CloseTMS,

		RB: res.BytesRead,
		WB: res.BytesWritten,

		NRC: boolToCount(res.BytesRead > 0),
		NWC: boolToCount(res.BytesWritten > 0),

		RT: dur * readShare(res) * 1000,
		WT: dur * (1 - readShare(res)) * 1000,

		OSize: res.BytesRead + res.BytesWritten,
		CSize: res.BytesRead + res.BytesWritten,

		Path: res.Path,
	}
	r.mu.Lock()
	r.recs = append(r.recs, rec)
	r.mu.Unlock()
}

func (r *TraceRecorder) fsid(device string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.deviceIndex[device]; ok {
		return id
	}
	id := int64(len(r.deviceIndex) + 1)
	r.deviceIndex[device] = id
	return id
}

// Records returns a copy of everything observed so far.
func (r *TraceRecorder) Records() []trace.EOSRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]trace.EOSRecord, len(r.recs))
	copy(out, r.recs)
	return out
}

// Len returns the number of recorded accesses.
func (r *TraceRecorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.recs)
}

func readShare(res AccessResult) float64 {
	total := res.BytesRead + res.BytesWritten
	if total == 0 {
		return 0
	}
	return float64(res.BytesRead) / float64(total)
}

func boolToCount(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
