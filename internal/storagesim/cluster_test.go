package storagesim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewBlueskyDevices(t *testing.T) {
	c := NewBluesky(1)
	names := c.DeviceNames()
	want := []string{"file0", "pic", "people", "tmp", "var", "USBtmp"}
	if len(names) != len(want) {
		t.Fatalf("got %d devices, want %d", len(names), len(want))
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("device %d = %q, want %q", i, names[i], want[i])
		}
	}
	if c.Device("file0") == nil || c.Device("nope") != nil {
		t.Error("Device lookup broken")
	}
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(nil, Config{}); err == nil {
		t.Error("empty cluster should error")
	}
	if _, err := NewCluster([]DeviceProfile{{Name: ""}}, Config{}); err == nil {
		t.Error("unnamed device should error")
	}
	if _, err := NewCluster([]DeviceProfile{
		{Name: "a", ReadBW: 1, WriteBW: 1},
		{Name: "a", ReadBW: 1, WriteBW: 1},
	}, Config{}); err == nil {
		t.Error("duplicate device should error")
	}
	if _, err := NewCluster([]DeviceProfile{{Name: "a"}}, Config{}); err == nil {
		t.Error("zero bandwidth should error")
	}
	if _, err := NewCluster([]DeviceProfile{{Name: "a", ReadBW: 1, WriteBW: 1}}, Config{MoveBlocking: 2}); err == nil {
		t.Error("MoveBlocking > 1 should error")
	}
}

func TestPlaceAndAccess(t *testing.T) {
	c := NewBluesky(2)
	if err := c.PlaceFile(1, "/belle2/a.root", 100e6, "file0"); err != nil {
		t.Fatal(err)
	}
	f, err := c.File(1)
	if err != nil {
		t.Fatal(err)
	}
	if f.Device != "file0" || f.Size != 100e6 {
		t.Errorf("file state = %+v", f)
	}

	// A sizeable read keeps the duration well above millisecond
	// resolution, so the split-timestamp throughput check below is
	// meaningful.
	res, err := c.Access(1, 5e9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Device != "file0" || res.BytesRead != 5e9 {
		t.Errorf("access result = %+v", res)
	}
	if res.End <= res.Start {
		t.Error("access must take positive time")
	}
	if res.Throughput <= 0 {
		t.Error("throughput must be positive")
	}
	// Clock advanced to the access end.
	if got := c.Now(); got != res.End {
		t.Errorf("Now = %v, want %v", got, res.End)
	}
	// Paper formula consistency: (rb+wb)/((cts+ctms/1e3)-(ots+otms/1e3))
	dur := (float64(res.CloseTS) + float64(res.CloseTMS)/1000) - (float64(res.OpenTS) + float64(res.OpenTMS)/1000)
	if dur <= 0 {
		t.Fatal("split timestamps give non-positive duration")
	}
	tsTp := float64(res.BytesRead+res.BytesWritten) / dur
	if math.Abs(tsTp-res.Throughput)/res.Throughput > 0.05 {
		t.Errorf("timestamp throughput %v deviates from exact %v", tsTp, res.Throughput)
	}
}

func TestAccessErrors(t *testing.T) {
	c := NewBluesky(3)
	if _, err := c.Access(42, 100, 0); err == nil {
		t.Error("access to unknown file should error")
	}
	c.PlaceFile(1, "/f", 1e6, "pic")
	if _, err := c.Access(1, -1, 0); err == nil {
		t.Error("negative size should error")
	}
	c.SetAvailable("pic", false)
	if _, err := c.Access(1, 100, 0); err == nil {
		t.Error("access on unavailable device should error")
	}
}

func TestPlaceFileErrors(t *testing.T) {
	c := NewBluesky(4)
	if err := c.PlaceFile(1, "/f", 100, "nodev"); err == nil {
		t.Error("unknown device should error")
	}
	if err := c.PlaceFile(1, "/f", -5, "pic"); err == nil {
		t.Error("negative size should error")
	}
	c.SetReadOnly("pic", true)
	if err := c.PlaceFile(1, "/f", 100, "pic"); err == nil {
		t.Error("read-only device should reject placement")
	}
	c.SetAvailable("var", false)
	if err := c.PlaceFile(1, "/f", 100, "var"); err == nil {
		t.Error("unavailable device should reject placement")
	}
	// Capacity.
	if err := c.PlaceFile(2, "/big", int64(5e18), "file0"); err == nil {
		t.Error("oversized file should be rejected")
	}
}

func TestPlaceFileRehome(t *testing.T) {
	c := NewBluesky(5)
	c.PlaceFile(1, "/f", 100e6, "file0")
	before := c.Device("file0").Used()
	if err := c.PlaceFile(1, "/f", 100e6, "pic"); err != nil {
		t.Fatal(err)
	}
	if got := c.Device("file0").Used(); got != before-100e6 {
		t.Errorf("old device usage = %d, want %d", got, before-100e6)
	}
	if got := c.Device("pic").Used(); got != 100e6 {
		t.Errorf("new device usage = %d, want 100e6", got)
	}
}

func TestMoveTransfersAndCharges(t *testing.T) {
	c := NewBluesky(6)
	c.PlaceFile(1, "/f", 500e6, "USBtmp")
	t0 := c.Now()
	mv, err := c.Move(1, "file0")
	if err != nil {
		t.Fatal(err)
	}
	if mv.From != "USBtmp" || mv.To != "file0" || mv.Bytes != 500e6 {
		t.Errorf("move result = %+v", mv)
	}
	if mv.Duration <= 0 {
		t.Error("move must take time")
	}
	// Clock advanced by the blocking fraction only.
	dt := c.Now() - t0
	if dt <= 0 || dt >= mv.Duration {
		t.Errorf("clock advanced %v, want in (0, %v)", dt, mv.Duration)
	}
	f, _ := c.File(1)
	if f.Device != "file0" {
		t.Errorf("file on %q after move", f.Device)
	}
	if c.Device("USBtmp").Used() != 0 || c.Device("file0").Used() != 500e6 {
		t.Error("usage accounting wrong after move")
	}
}

func TestMoveNoOpAndErrors(t *testing.T) {
	c := NewBluesky(7)
	c.PlaceFile(1, "/f", 1e6, "pic")
	t0 := c.Now()
	mv, err := c.Move(1, "pic")
	if err != nil {
		t.Fatal(err)
	}
	if mv.Duration != 0 || c.Now() != t0 {
		t.Error("same-device move should be free")
	}
	if _, err := c.Move(99, "pic"); err == nil {
		t.Error("unknown file should error")
	}
	if _, err := c.Move(1, "nodev"); err == nil {
		t.Error("unknown device should error")
	}
	c.SetReadOnly("file0", true)
	if _, err := c.Move(1, "file0"); err == nil {
		t.Error("read-only destination should error")
	}
	c.SetAvailable("var", false)
	if _, err := c.Move(1, "var"); err == nil {
		t.Error("unavailable destination should error")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		c := NewBluesky(42)
		c.PlaceFile(1, "/f", 200e6, "pic")
		c.PlaceFile(2, "/g", 300e6, "people")
		var tps []float64
		for i := 0; i < 50; i++ {
			r, err := c.Access(int64(i%2+1), 50e6, 0)
			if err != nil {
				t.Fatal(err)
			}
			tps = append(tps, r.Throughput)
		}
		return tps
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at access %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestDeviceSpeedOrdering(t *testing.T) {
	// Averaged over many accesses, file0 must beat USBtmp decisively —
	// the Table IV ordering the policies rely on.
	c := NewBluesky(8)
	c.PlaceFile(1, "/fast", 100e6, "file0")
	c.PlaceFile(2, "/slow", 100e6, "USBtmp")
	var fast, slow float64
	for i := 0; i < 200; i++ {
		r1, _ := c.Access(1, 50e6, 0)
		r2, _ := c.Access(2, 50e6, 0)
		fast += r1.Throughput
		slow += r2.Throughput
	}
	if fast < 3*slow {
		t.Errorf("file0 (%v) should be ≫ USBtmp (%v)", fast/200, slow/200)
	}
}

func TestSelfContentionSlowsDevice(t *testing.T) {
	// Hammering one device should reduce its observed per-access
	// throughput versus a fresh clone of the same cluster state.
	c := NewBluesky(9)
	c.PlaceFile(1, "/a", 1e9, "tmp")
	// Warm up load.
	for i := 0; i < 30; i++ {
		c.Access(1, 500e6, 0)
	}
	loaded := c.Device("tmp")
	loaded.decayLoad(c.Now())
	if loaded.load <= 0 {
		t.Error("sustained traffic should accumulate load")
	}
	// Decay: after a long idle period load shrinks.
	before := loaded.load
	c.AdvanceTo(c.Now() + 300)
	loaded.decayLoad(c.Now())
	if loaded.load >= before/100 {
		t.Errorf("load should decay: %v -> %v", before, loaded.load)
	}
}

func TestExternalScale(t *testing.T) {
	c := NewBluesky(10)
	if err := c.SetExternalScale("people", 0); err != nil {
		t.Fatal(err)
	}
	quiet, err := c.CurrentBandwidth("people")
	if err != nil {
		t.Fatal(err)
	}
	c.SetExternalScale("people", 1.6)
	busy, _ := c.CurrentBandwidth("people")
	if busy >= quiet {
		t.Errorf("scaled-up contention should reduce bandwidth: %v -> %v", quiet, busy)
	}
	if err := c.SetExternalScale("nodev", 1); err == nil {
		t.Error("unknown device should error")
	}
	if _, err := c.CurrentBandwidth("nodev"); err == nil {
		t.Error("unknown device should error")
	}
}

func TestSetAvailableUnknown(t *testing.T) {
	c := NewBluesky(11)
	if err := c.SetAvailable("nodev", true); err == nil {
		t.Error("unknown device should error")
	}
	if err := c.SetReadOnly("nodev", true); err == nil {
		t.Error("unknown device should error")
	}
}

func TestLayoutAndFiles(t *testing.T) {
	c := NewBluesky(12)
	c.PlaceFile(2, "/b", 10, "pic")
	c.PlaceFile(1, "/a", 10, "file0")
	files := c.Files()
	if len(files) != 2 || files[0].ID != 1 || files[1].ID != 2 {
		t.Errorf("Files = %+v, want sorted by ID", files)
	}
	layout := c.Layout()
	if layout[1] != "file0" || layout[2] != "pic" {
		t.Errorf("Layout = %v", layout)
	}
	if _, err := c.File(99); err == nil {
		t.Error("unknown file should error")
	}
}

func TestDeviceStatsAccounting(t *testing.T) {
	c := NewBluesky(13)
	c.PlaceFile(1, "/a", 50e6, "var")
	for i := 0; i < 10; i++ {
		c.Access(1, 10e6, 1e6)
	}
	stats := c.DeviceStats()
	var varStats *Stats
	for i := range stats {
		if stats[i].Name == "var" {
			varStats = &stats[i]
		}
	}
	if varStats == nil {
		t.Fatal("var missing from stats")
	}
	if varStats.Accesses != 10 {
		t.Errorf("accesses = %d, want 10", varStats.Accesses)
	}
	if varStats.BytesServed != 10*(10e6+1e6) {
		t.Errorf("bytes served = %d", varStats.BytesServed)
	}
	if varStats.BusySeconds <= 0 {
		t.Error("busy seconds should accumulate")
	}
	if c.TotalAccesses() != 10 {
		t.Errorf("TotalAccesses = %d", c.TotalAccesses())
	}
}

func TestAdvanceToMonotone(t *testing.T) {
	c := NewBluesky(14)
	c.AdvanceTo(100)
	if c.Now() != 100 {
		t.Errorf("Now = %v, want 100", c.Now())
	}
	c.AdvanceTo(50) // no-op
	if c.Now() != 100 {
		t.Error("AdvanceTo must not move the clock backwards")
	}
}

func TestSplitTS(t *testing.T) {
	s, ms := splitTS(12.345)
	if s != 12 || ms != 345 {
		t.Errorf("splitTS(12.345) = %d,%d", s, ms)
	}
	s, ms = splitTS(99.9999)
	if s != 99 || ms != 999 {
		t.Errorf("splitTS(99.9999) = %d,%d; ms must clamp to 999", s, ms)
	}
}

// Property: capacity accounting is conserved — sum of Used equals the sum
// of placed file sizes after arbitrary placement/move sequences.
func TestCapacityConservation(t *testing.T) {
	f := func(seed int64) bool {
		c := NewBluesky(seed)
		names := c.DeviceNames()
		rng := newRand(seed)
		var total int64
		for i := int64(1); i <= 20; i++ {
			size := int64(1e6) + rng.Int63n(int64(50e6))
			dev := names[rng.Intn(len(names))]
			if err := c.PlaceFile(i, "/f", size, dev); err != nil {
				continue
			}
			total += size
		}
		for i := 0; i < 30; i++ {
			id := 1 + rng.Int63n(20)
			dev := names[rng.Intn(len(names))]
			c.Move(id, dev) // errors fine (unknown file / full)
		}
		var used int64
		for _, s := range c.DeviceStats() {
			used += s.Used
		}
		return used == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestExternalLoadClamped(t *testing.T) {
	d := newDevice(DeviceProfile{
		Name: "x", ReadBW: 1e9, WriteBW: 1e9,
		External: ExternalLoad{Base: 5, WaveAmp: 5, WavePeriod: 100, BurstRate: 100, BurstLoad: 5, BurstMean: 1000},
	}, 1)
	for _, tm := range []float64{0, 10, 50, 1000, 9999} {
		if l := d.externalLoad(tm); l < 0 || l > 0.97 {
			t.Fatalf("external load %v at t=%v outside [0, 0.97]", l, tm)
		}
	}
}

func TestBurstScheduleAdvances(t *testing.T) {
	d := newDevice(DeviceProfile{
		Name: "x", ReadBW: 1e9, WriteBW: 1e9,
		External: ExternalLoad{BurstRate: 60, BurstLoad: 0.5, BurstMean: 10},
	}, 2)
	// Sampling far into the future must roll the schedule forward, not
	// loop forever or stall.
	_ = d.externalLoad(1e6)
	if d.burstEnd < 1e6-1e5 && !math.IsInf(d.burstEnd, 1) {
		t.Errorf("burst schedule did not advance: end %v", d.burstEnd)
	}
}

// newRand is a tiny helper so property tests can derive their own stream.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
