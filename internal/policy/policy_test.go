package policy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"geomancy/internal/rng"
)

// testState builds 6 devices (fastest first by construction: d0 fastest)
// and n files with LastAccess == ID and Accesses == 100-ID.
func testState(nFiles int) State {
	s := State{}
	names := []string{"d0", "d1", "d2", "d3", "d4", "d5"}
	for i, n := range names {
		s.Devices = append(s.Devices, DeviceInfo{Name: n, Throughput: float64(1000 - 100*i), Free: 1 << 40})
	}
	for i := 0; i < nFiles; i++ {
		s.Files = append(s.Files, FileInfo{
			ID:         int64(i + 1),
			Size:       1000,
			Device:     "d0",
			LastAccess: float64(i + 1),       // file n is the most recent
			Accesses:   int64(100 - (i + 1)), // file 1 is the most frequent
		})
	}
	return s
}

func TestLRUPlacesRecentOnFast(t *testing.T) {
	s := testState(24)
	layout := LRU{}.Layout(s)
	if len(layout) != 24 {
		t.Fatalf("layout has %d entries, want 24", len(layout))
	}
	// Most recently used files are 24..21 → group 0 → fastest device d0.
	for id := int64(21); id <= 24; id++ {
		if layout[id] != "d0" {
			t.Errorf("file %d on %s, want d0 (most recent → fastest)", id, layout[id])
		}
	}
	// Least recently used files 1..4 → slowest device d5.
	for id := int64(1); id <= 4; id++ {
		if layout[id] != "d5" {
			t.Errorf("file %d on %s, want d5 (least recent → slowest)", id, layout[id])
		}
	}
}

func TestMRUPlacesRecentOnSlow(t *testing.T) {
	s := testState(24)
	layout := MRU{}.Layout(s)
	for id := int64(21); id <= 24; id++ {
		if layout[id] != "d5" {
			t.Errorf("file %d on %s, want d5 (most recent → slowest)", id, layout[id])
		}
	}
	for id := int64(1); id <= 4; id++ {
		if layout[id] != "d0" {
			t.Errorf("file %d on %s, want d0", id, layout[id])
		}
	}
}

func TestLFUPlacesHotOnFast(t *testing.T) {
	s := testState(24)
	layout := LFU{}.Layout(s)
	// Files 1..4 have the highest access counts → fastest device.
	for id := int64(1); id <= 4; id++ {
		if layout[id] != "d0" {
			t.Errorf("file %d on %s, want d0 (most accessed → fastest)", id, layout[id])
		}
	}
	for id := int64(21); id <= 24; id++ {
		if layout[id] != "d5" {
			t.Errorf("file %d on %s, want d5", id, layout[id])
		}
	}
}

func TestRemainderGoesToSlowest(t *testing.T) {
	// 26 files over 6 devices: groups of 4, remainder 2 → slowest.
	s := testState(26)
	layout := LRU{}.Layout(s)
	count := map[string]int{}
	for _, d := range layout {
		count[d]++
	}
	if count["d5"] != 4+2 {
		t.Errorf("slowest device got %d files, want 6 (group + remainder)", count["d5"])
	}
	for _, d := range []string{"d0", "d1", "d2", "d3", "d4"} {
		if count[d] != 4 {
			t.Errorf("device %s got %d files, want 4", d, count[d])
		}
	}
}

func TestFewerFilesThanDevices(t *testing.T) {
	s := testState(3)
	layout := LFU{}.Layout(s)
	if len(layout) != 3 {
		t.Fatalf("layout has %d entries, want 3", len(layout))
	}
	used := map[string]bool{}
	for _, d := range layout {
		if used[d] {
			t.Error("with fewer files than devices each file gets its own device")
		}
		used[d] = true
	}
}

func TestEmptyState(t *testing.T) {
	for _, p := range []LayoutPolicy{LRU{}, MRU{}, LFU{}, &RandomDynamic{Rng: rng.New(1)}, NoOp{}} {
		if l := p.Layout(State{}); l != nil {
			t.Errorf("%s on empty state = %v, want nil", p.Name(), l)
		}
	}
}

func TestRandomStaticFiresOnce(t *testing.T) {
	p := &RandomStatic{Rng: rng.New(2)}
	s := testState(10)
	first := p.Layout(s)
	if first == nil || len(first) != 10 {
		t.Fatalf("first layout = %v", first)
	}
	if second := p.Layout(s); second != nil {
		t.Error("random static must not move files twice")
	}
}

func TestRandomDynamicReshuffles(t *testing.T) {
	p := &RandomDynamic{Rng: rng.New(3)}
	s := testState(24)
	a := p.Layout(s)
	b := p.Layout(s)
	if a == nil || b == nil {
		t.Fatal("dynamic layouts must not be nil")
	}
	same := true
	for id := range a {
		if a[id] != b[id] {
			same = false
			break
		}
	}
	if same {
		t.Error("consecutive random dynamic layouts identical (astronomically unlikely)")
	}
}

func TestStaticPolicy(t *testing.T) {
	target := map[int64]string{1: "d3", 2: "d1"}
	p := &Static{Desc: "Geomancy static", Target: target}
	if p.Name() != "Geomancy static" {
		t.Errorf("Name = %q", p.Name())
	}
	if got := p.Layout(State{}); len(got) != 2 || got[1] != "d3" {
		t.Errorf("first Layout = %v", got)
	}
	if got := p.Layout(State{}); got != nil {
		t.Error("static must fire once")
	}
	anon := &Static{}
	if anon.Name() != "static" {
		t.Errorf("default name = %q", anon.Name())
	}
}

func TestSingleMount(t *testing.T) {
	p := &SingleMount{Device: "file0"}
	if p.Name() != "all-on-file0" {
		t.Errorf("Name = %q", p.Name())
	}
	s := testState(5)
	layout := p.Layout(s)
	for id, d := range layout {
		if d != "file0" {
			t.Errorf("file %d on %s, want file0", id, d)
		}
	}
	if p.Layout(s) != nil {
		t.Error("single mount must fire once")
	}
}

func TestDevicesByThroughputStable(t *testing.T) {
	devs := []DeviceInfo{
		{Name: "slow", Throughput: 1},
		{Name: "fast", Throughput: 100},
		{Name: "mid", Throughput: 50},
	}
	got := devicesByThroughput(devs)
	want := []string{"fast", "mid", "slow"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("order[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	// Input untouched.
	if devs[0].Name != "slow" {
		t.Error("devicesByThroughput mutated its input")
	}
}

// Property: every heuristic layout maps every file to a known device, and
// group sizes differ by at most the remainder.
func TestHeuristicLayoutsComplete(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(60)
		s := testState(n)
		for _, p := range []LayoutPolicy{LRU{}, MRU{}, LFU{}} {
			layout := p.Layout(s)
			if len(layout) != n {
				return false
			}
			valid := map[string]bool{}
			for _, d := range s.Devices {
				valid[d.Name] = true
			}
			for _, dev := range layout {
				if !valid[dev] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
