package policy

// Info describes one catalogued policy: the key WithPolicy / -policy
// accept, and a one-line description for listings.
type Info struct {
	Name        string
	Description string
}

// Catalogue lists every selectable policy, baselines first and the
// learned Geomancy family last. The metadata lives here; construction
// lives where the dependencies do (core.NewCataloguePolicy wires the
// engine-backed entries).
func Catalogue() []Info {
	return []Info{
		{"lru", "most recently used files on the fastest devices (§VI)"},
		{"mru", "most recently used files on the slowest devices (Chou & DeWitt)"},
		{"lfu", "most frequently used files on the fastest devices (Gupta et al.)"},
		{"lfu-weighted", "LFU with capacity-proportional group sizing"},
		{"random-dynamic", "uniformly random placement, reshuffled every decision"},
		{"random-static", "one uniformly random placement, then frozen"},
		{"noop", "never moves anything (spread-evenly control)"},
		{"geomancy", "the paper's closed loop: retrain + ε-greedy proposal each decision"},
		{"online-geomancy", "geomancy with incremental minibatch updates between full retrains"},
		{"tiered-geomancy", "geomancy gated to cross-tier promote/demote moves by device class"},
	}
}

// Names returns the catalogue keys in catalogue order.
func Names() []string {
	infos := Catalogue()
	names := make([]string, len(infos))
	for i, info := range infos {
		names[i] = info.Name
	}
	return names
}
