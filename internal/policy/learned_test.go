package policy

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"geomancy/internal/rng"
)

// stubModel is a canned Model: counts Retrain/Update calls and replays a
// fixed proposal.
type stubModel struct {
	retrains, updates int
	notReadyUntil     int // Update fails with ErrNotReady before this many retrains
	layout            map[int64]string
	preds             []Prediction
}

func (m *stubModel) Retrain(context.Context) error { m.retrains++; return nil }

func (m *stubModel) Update(context.Context) error {
	if m.retrains < m.notReadyUntil {
		return fmt.Errorf("stub: %w", ErrNotReady)
	}
	m.updates++
	return nil
}

func (m *stubModel) Propose(context.Context, State) (map[int64]string, []Prediction, error) {
	return m.layout, m.preds, nil
}

func TestOnlineRetrainCadence(t *testing.T) {
	m := &stubModel{}
	p := &Online{Model: m, RetrainEvery: 3}
	ctx := context.Background()
	for i := 0; i < 7; i++ {
		if _, err := p.Propose(ctx, State{}); err != nil {
			t.Fatal(err)
		}
	}
	// Calls 0, 3, 6 retrain; 1, 2, 4, 5 update.
	if m.retrains != 3 || m.updates != 4 {
		t.Errorf("retrains=%d updates=%d, want 3/4", m.retrains, m.updates)
	}
}

func TestOnlineFallsBackOnNotReady(t *testing.T) {
	// The model rejects updates until it has seen 2 retrains: the policy
	// must fall back to a retrain instead of proposing untrained.
	m := &stubModel{notReadyUntil: 2}
	p := &Online{Model: m, RetrainEvery: 4}
	ctx := context.Background()
	if _, err := p.Propose(ctx, State{}); err != nil { // call 0: retrain
		t.Fatal(err)
	}
	if _, err := p.Propose(ctx, State{}); err != nil { // call 1: update → not ready → retrain
		t.Fatal(err)
	}
	if m.retrains != 2 || m.updates != 0 {
		t.Errorf("retrains=%d updates=%d, want 2/0 (fallback)", m.retrains, m.updates)
	}
	if _, err := p.Propose(ctx, State{}); err != nil { // call 2: update succeeds now
		t.Fatal(err)
	}
	if m.updates != 1 {
		t.Errorf("updates=%d, want 1", m.updates)
	}
}

func TestOnlineStateRoundTrip(t *testing.T) {
	m := &stubModel{}
	p := &Online{Model: m, RetrainEvery: 2}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := p.Propose(ctx, State{}); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := p.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	restored := &Online{Model: &stubModel{}, RetrainEvery: 2}
	if err := restored.UnmarshalState(blob); err != nil {
		t.Fatal(err)
	}
	if restored.calls != p.calls {
		t.Errorf("restored calls=%d, want %d", restored.calls, p.calls)
	}
	// The restored counter keeps the cadence phase: call 3 is an update.
	rm := restored.Model.(*stubModel)
	if _, err := restored.Propose(ctx, State{}); err != nil {
		t.Fatal(err)
	}
	if rm.retrains != 0 || rm.updates != 1 {
		t.Errorf("restored cadence: retrains=%d updates=%d, want 0/1", rm.retrains, rm.updates)
	}
}

func TestUnmarshalBadState(t *testing.T) {
	p := &Online{Model: &stubModel{}}
	if err := p.UnmarshalState([]byte("not gob")); !errors.Is(err, ErrBadState) {
		t.Errorf("err = %v, want ErrBadState", err)
	}
}

// tieredState builds two tiers (ssd: s0 s1 fast; hdd: h0 h1 slow) and
// four files: 1 and 2 hot (on h0 and s0), 3 and 4 cold (on s1 and h1).
func tieredState() State {
	return State{
		Devices: []DeviceInfo{
			{Name: "s0", Throughput: 1000, Class: "ssd"},
			{Name: "s1", Throughput: 900, Class: "ssd"},
			{Name: "h0", Throughput: 100, Class: "hdd"},
			{Name: "h1", Throughput: 80, Class: "hdd"},
		},
		Files: []FileInfo{
			{ID: 1, Device: "h0", Accesses: 50},
			{ID: 2, Device: "s0", Accesses: 40},
			{ID: 3, Device: "s1", Accesses: 1},
			{ID: 4, Device: "h1", Accesses: 0},
		},
	}
}

func TestTieredGatesMoves(t *testing.T) {
	s := tieredState()
	m := &stubModel{
		layout: map[int64]string{1: "s1", 2: "s1", 3: "s0", 4: "h0"},
		preds: []Prediction{
			{FileID: 1, Current: "h0", Chosen: "s1"}, // hot promotion: allowed
			{FileID: 2, Current: "s0", Chosen: "s1"}, // lateral inside ssd: suppressed
			{FileID: 3, Current: "s1", Chosen: "s0"}, // cold lateral: suppressed
			{FileID: 4, Current: "h1", Chosen: "s0"}, // cold promotion: suppressed
		},
	}
	p := &Tiered{Model: m}
	layout, err := p.Propose(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]string{1: "s1", 2: "s0", 3: "s1", 4: "h1"}
	if !reflect.DeepEqual(layout, want) {
		t.Errorf("layout = %v, want %v", layout, want)
	}
}

func TestTieredNeverDemotesHot(t *testing.T) {
	s := tieredState()
	m := &stubModel{
		layout: map[int64]string{2: "h1"},
		preds:  []Prediction{{FileID: 2, Current: "s0", Chosen: "h1"}},
	}
	p := &Tiered{Model: m}
	layout, err := p.Propose(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if layout[2] != "s0" {
		t.Errorf("hot file demoted to %q, want kept on s0", layout[2])
	}
}

func TestTieredAllowsColdDemotion(t *testing.T) {
	s := tieredState()
	m := &stubModel{
		layout: map[int64]string{3: "h1"},
		preds:  []Prediction{{FileID: 3, Current: "s1", Chosen: "h1"}},
	}
	p := &Tiered{Model: m}
	layout, err := p.Propose(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if layout[3] != "h1" {
		t.Errorf("cold demotion suppressed (got %q), want h1", layout[3])
	}
}

func TestDeviceTiersRanking(t *testing.T) {
	tiers := deviceTiers(tieredState().Devices)
	want := map[string]int{"s0": 0, "s1": 0, "h0": 1, "h1": 1}
	if !reflect.DeepEqual(tiers, want) {
		t.Errorf("tiers = %v, want %v", tiers, want)
	}
	// Unclassified devices form their own single-device classes.
	tiers = deviceTiers([]DeviceInfo{
		{Name: "a", Throughput: 10},
		{Name: "b", Throughput: 20},
	})
	if tiers["b"] != 0 || tiers["a"] != 1 {
		t.Errorf("unclassified tiers = %v, want b→0, a→1", tiers)
	}
}

func TestRandomStaticStateRoundTrip(t *testing.T) {
	s := testState(12)
	p := &RandomStatic{Rng: rng.New(9)}
	ctx := context.Background()
	if _, err := p.Propose(ctx, s); err != nil {
		t.Fatal(err)
	}
	blob, err := p.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	restored := &RandomStatic{}
	if err := restored.UnmarshalState(blob); err != nil {
		t.Fatal(err)
	}
	// The one-shot flag survives: the restored policy must not re-fire.
	layout, err := restored.Propose(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	if layout != nil {
		t.Error("restored random-static re-fired its one-shot layout")
	}
}

func TestRandomDynamicStateRoundTrip(t *testing.T) {
	s := testState(12)
	a := &RandomDynamic{Rng: rng.New(9)}
	b := &RandomDynamic{Rng: rng.New(9)}
	ctx := context.Background()
	if _, err := a.Propose(ctx, s); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Propose(ctx, s); err != nil {
		t.Fatal(err)
	}
	// Round-trip a's RNG register into a fresh instance: its next draw
	// must match b's (same stream, same position).
	blob, err := a.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	restored := &RandomDynamic{}
	if err := restored.UnmarshalState(blob); err != nil {
		t.Fatal(err)
	}
	la, err := restored.Propose(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := b.Propose(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(la, lb) {
		t.Error("restored random-dynamic diverged from the uninterrupted stream")
	}
}

func TestOneShotStateRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() Policy
	}{
		{"static", func() Policy { return &Static{Desc: "s", Target: map[int64]string{1: "d0"}} }},
		{"single-mount", func() Policy { return &SingleMount{Device: "d0"} }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := testState(4)
			p := tc.mk()
			ctx := context.Background()
			if _, err := p.Propose(ctx, s); err != nil {
				t.Fatal(err)
			}
			blob, err := p.MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			restored := tc.mk()
			if err := restored.UnmarshalState(blob); err != nil {
				t.Fatal(err)
			}
			layout, err := restored.Propose(ctx, s)
			if err != nil {
				t.Fatal(err)
			}
			if layout != nil {
				t.Errorf("%s re-fired after restore", tc.name)
			}
		})
	}
}

func TestDeprecatedLayoutMatchesPropose(t *testing.T) {
	s := testState(18)
	for _, tc := range []struct {
		viaLayout  LayoutPolicy
		viaPropose Policy
	}{
		{LRU{}, LRU{}},
		{MRU{}, MRU{}},
		{LFU{}, LFU{}},
		{Weighted{Base: LFU{}}, Weighted{Base: LFU{}}},
		{&RandomDynamic{Rng: rng.New(4)}, &RandomDynamic{Rng: rng.New(4)}},
	} {
		a := tc.viaLayout.Layout(s)
		b, err := tc.viaPropose.Propose(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: Layout and Propose disagree", tc.viaLayout.Name())
		}
	}
}

func TestCatalogueNames(t *testing.T) {
	names := Names()
	if len(names) != len(Catalogue()) {
		t.Fatal("Names/Catalogue length mismatch")
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate catalogue name %q", n)
		}
		seen[n] = true
	}
	for _, want := range []string{"geomancy", "online-geomancy", "tiered-geomancy", "lru", "noop"} {
		if !seen[want] {
			t.Errorf("catalogue missing %q", want)
		}
	}
	if last := names[len(names)-1]; last != "tiered-geomancy" {
		t.Errorf("catalogue order changed: last = %q", last)
	}
}
