package policy

import (
	"math/rand"
	"testing"
)

// weightedState: d0 fastest with 60% of free space, d1 mid with 30%,
// d2 slowest with 10%.
func weightedState(nFiles int) State {
	s := State{
		Devices: []DeviceInfo{
			{Name: "d0", Throughput: 300, Free: 600},
			{Name: "d1", Throughput: 200, Free: 300},
			{Name: "d2", Throughput: 100, Free: 100},
		},
	}
	for i := 0; i < nFiles; i++ {
		s.Files = append(s.Files, FileInfo{
			ID:         int64(i + 1),
			Size:       1,
			LastAccess: float64(i + 1),
			Accesses:   int64(100 - i),
		})
	}
	return s
}

func TestWeightedLFUSharesByCapacity(t *testing.T) {
	s := weightedState(20)
	layout := Weighted{Base: LFU{}}.Layout(s)
	if len(layout) != 20 {
		t.Fatalf("layout covers %d files, want 20", len(layout))
	}
	counts := map[string]int{}
	for _, d := range layout {
		counts[d]++
	}
	// 60/30/10 split of 20 files → 12/6/2.
	if counts["d0"] != 12 || counts["d1"] != 6 || counts["d2"] != 2 {
		t.Errorf("counts = %v, want d0:12 d1:6 d2:2", counts)
	}
	// Hottest files (ids 1..12 by Accesses) land on the fastest device.
	for id := int64(1); id <= 12; id++ {
		if layout[id] != "d0" {
			t.Errorf("hot file %d on %s, want d0", id, layout[id])
		}
	}
}

func TestWeightedLRUOrdering(t *testing.T) {
	s := weightedState(10)
	layout := Weighted{Base: LRU{}}.Layout(s)
	// Most recent (id 10) on the fastest device.
	if layout[10] != "d0" {
		t.Errorf("most recent file on %s, want d0", layout[10])
	}
	// Least recent on the slowest.
	if layout[1] != "d2" {
		t.Errorf("least recent file on %s, want d2", layout[1])
	}
}

func TestWeightedName(t *testing.T) {
	if got := (Weighted{Base: LFU{}}).Name(); got != "LFU (capacity-weighted)" {
		t.Errorf("Name = %q", got)
	}
}

func TestWeightedUnsupportedBase(t *testing.T) {
	w := Weighted{Base: NoOp{}}
	if l := w.Layout(weightedState(5)); l != nil {
		t.Error("unsupported base should yield nil layout")
	}
}

func TestWeightedEmptyState(t *testing.T) {
	if l := (Weighted{Base: LFU{}}).Layout(State{}); l != nil {
		t.Error("empty state should yield nil")
	}
}

func TestWeightedZeroCapacityFallsBack(t *testing.T) {
	s := weightedState(12)
	for i := range s.Devices {
		s.Devices[i].Free = 0
	}
	layout := Weighted{Base: LFU{}}.Layout(s)
	if len(layout) != 12 {
		t.Fatalf("fallback layout covers %d files", len(layout))
	}
	counts := map[string]int{}
	for _, d := range layout {
		counts[d]++
	}
	// Even fallback: 4 each.
	for _, d := range []string{"d0", "d1", "d2"} {
		if counts[d] != 4 {
			t.Errorf("device %s got %d files, want 4 (even fallback)", d, counts[d])
		}
	}
}

func TestWeightedNegativeFreeClamped(t *testing.T) {
	s := weightedState(10)
	s.Devices[2].Free = -50 // over-committed device contributes nothing
	layout := Weighted{Base: LFU{}}.Layout(s)
	counts := map[string]int{}
	for _, d := range layout {
		counts[d]++
	}
	if counts["d0"] == 0 || counts["d1"] == 0 {
		t.Errorf("healthy devices unused: %v", counts)
	}
	if len(layout) != 10 {
		t.Errorf("layout covers %d files, want 10", len(layout))
	}
}

func TestWeightedRandomizedComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(50)
		s := weightedState(n)
		for _, base := range []Policy{LRU{}, MRU{}, LFU{}} {
			layout := Weighted{Base: base}.Layout(s)
			if len(layout) != n {
				t.Fatalf("%s weighted layout covers %d of %d files", base.Name(), len(layout), n)
			}
		}
	}
}
