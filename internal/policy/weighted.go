package policy

import (
	"context"
	"sort"
)

// Weighted wraps a recency/frequency heuristic with capacity-aware group
// sizing. The paper's base cases "evenly spread the files across all
// available storage devices, however it is possible to spread files based
// upon the capacities of the storage devices" (§VI) — this is that
// variant: device i receives a share of files proportional to its free
// capacity, still ordered fastest-to-slowest by the wrapped policy's
// ranking rule.
type Weighted struct {
	Stateless
	// Base must be LRU, MRU or LFU; its Name is extended with
	// " (capacity-weighted)".
	Base Policy
}

// Name implements Policy.
func (w Weighted) Name() string { return w.Base.Name() + " (capacity-weighted)" }

// Propose implements Policy.
func (w Weighted) Propose(ctx context.Context, s State) (map[int64]string, error) {
	if len(s.Devices) == 0 || len(s.Files) == 0 {
		return nil, nil
	}
	// Rank files with the base policy's ordering by observing which
	// groups it forms on an unweighted run, then re-cut the group
	// boundaries by capacity share.
	order := w.fileOrder(s)
	if order == nil {
		return nil, nil
	}
	devices := devicesByThroughputInfo(s.Devices)

	var totalFree int64
	for _, d := range devices {
		if d.Free > 0 {
			totalFree += d.Free
		}
	}
	if totalFree == 0 {
		// No capacity signal: fall back to even groups.
		return w.Base.Propose(ctx, s)
	}

	layout := make(map[int64]string, len(order))
	n := len(order)
	assigned := 0
	for i, d := range devices {
		share := int(float64(n) * float64(max64(d.Free, 0)) / float64(totalFree))
		if i == len(devices)-1 {
			share = n - assigned // remainder → slowest device (paper rule)
		}
		for j := 0; j < share && assigned < n; j++ {
			layout[order[assigned].ID] = d.Name
			assigned++
		}
	}
	// Any stragglers (rounding) land on the slowest device.
	for assigned < n {
		layout[order[assigned].ID] = devices[len(devices)-1].Name
		assigned++
	}
	return layout, nil
}

// Layout is the v1 single-shot entry point.
//
// Deprecated: Use Propose, which adds cancellation and error reporting.
func (w Weighted) Layout(s State) map[int64]string { return layoutCompat(w, s) }

// fileOrder extracts the base policy's file ranking.
func (w Weighted) fileOrder(s State) []FileInfo {
	files := make([]FileInfo, len(s.Files))
	copy(files, s.Files)
	switch w.Base.(type) {
	case LRU:
		sort.SliceStable(files, func(i, j int) bool { return files[i].LastAccess > files[j].LastAccess })
	case MRU:
		sort.SliceStable(files, func(i, j int) bool { return files[i].LastAccess < files[j].LastAccess })
	case LFU:
		sort.SliceStable(files, func(i, j int) bool { return files[i].Accesses > files[j].Accesses })
	default:
		return nil
	}
	return files
}

// devicesByThroughputInfo orders the device infos fastest first.
func devicesByThroughputInfo(devs []DeviceInfo) []DeviceInfo {
	sorted := make([]DeviceInfo, len(devs))
	copy(sorted, devs)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Throughput > sorted[j].Throughput
	})
	return sorted
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
