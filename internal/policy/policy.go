// Package policy implements the data-placement baselines Geomancy is
// evaluated against (§VI): LRU, MRU (Chou & DeWitt), LFU (Gupta et al.),
// random static, random dynamic, a fixed static layout, and all-on-one-
// mount placement. Dynamic policies re-rank devices from the latest
// telemetry in the ReplayDB on every invocation, exactly as the paper's
// base cases "access the updated performance values from the ReplayDB".
package policy

import (
	"fmt"
	"math/rand"
	"sort"
)

// DeviceInfo is a policy's view of one storage device.
type DeviceInfo struct {
	Name string
	// Throughput is the current total average throughput observed at the
	// device (bytes/second), from ReplayDB telemetry.
	Throughput float64
	// Free is the remaining capacity in bytes.
	Free int64
}

// FileInfo is a policy's view of one workload file.
type FileInfo struct {
	ID     int64
	Size   int64
	Device string
	// LastAccess is the most recent access time (virtual seconds).
	LastAccess float64
	// Accesses counts observed accesses of the file.
	Accesses int64
}

// State is the system snapshot a policy decides from.
type State struct {
	Devices []DeviceInfo
	Files   []FileInfo
}

// Policy computes a desired data layout from a system snapshot.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Layout returns the desired file→device assignment. A nil map means
	// "no change". Static policies return a layout once and nil afterward.
	Layout(s State) map[int64]string
}

// devicesByThroughput returns device names ordered fastest first.
func devicesByThroughput(devs []DeviceInfo) []string {
	sorted := make([]DeviceInfo, len(devs))
	copy(sorted, devs)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Throughput > sorted[j].Throughput
	})
	names := make([]string, len(sorted))
	for i, d := range sorted {
		names[i] = d.Name
	}
	return names
}

// assignGrouped implements the paper's shared heuristic skeleton: order
// the files by some key, divide them evenly into as many groups as there
// are devices, and place group i on the i-th fastest device. Files that
// do not divide evenly land on the slowest device, as §VI specifies.
func assignGrouped(files []FileInfo, devices []string) map[int64]string {
	if len(devices) == 0 || len(files) == 0 {
		return nil
	}
	perGroup := len(files) / len(devices)
	layout := make(map[int64]string, len(files))
	if perGroup == 0 {
		// Fewer files than devices: fastest devices get one file each,
		// there is no remainder group.
		for i, f := range files {
			layout[f.ID] = devices[i]
		}
		return layout
	}
	for i, f := range files {
		g := i / perGroup
		if g >= len(devices) {
			g = len(devices) - 1 // remainder → slowest device
		}
		layout[f.ID] = devices[g]
	}
	return layout
}

// LRU places the most recently used files on the fastest devices and the
// least recently used on the slowest (§VI).
type LRU struct{}

// Name implements Policy.
func (LRU) Name() string { return "LRU" }

// Layout implements Policy.
func (LRU) Layout(s State) map[int64]string {
	files := make([]FileInfo, len(s.Files))
	copy(files, s.Files)
	sort.SliceStable(files, func(i, j int) bool {
		return files[i].LastAccess > files[j].LastAccess // most recent first
	})
	return assignGrouped(files, devicesByThroughput(s.Devices))
}

// MRU places the most recently used files on the slowest devices, which
// benefits looping sequential scans (Chou & DeWitt; §VI).
type MRU struct{}

// Name implements Policy.
func (MRU) Name() string { return "MRU" }

// Layout implements Policy.
func (MRU) Layout(s State) map[int64]string {
	files := make([]FileInfo, len(s.Files))
	copy(files, s.Files)
	sort.SliceStable(files, func(i, j int) bool {
		return files[i].LastAccess < files[j].LastAccess // least recent first
	})
	return assignGrouped(files, devicesByThroughput(s.Devices))
}

// LFU places heavily accessed files on fast devices and rarely accessed
// files on slow ones (Gupta et al.; §VI).
type LFU struct{}

// Name implements Policy.
func (LFU) Name() string { return "LFU" }

// Layout implements Policy.
func (LFU) Layout(s State) map[int64]string {
	files := make([]FileInfo, len(s.Files))
	copy(files, s.Files)
	sort.SliceStable(files, func(i, j int) bool {
		return files[i].Accesses > files[j].Accesses // most accessed first
	})
	return assignGrouped(files, devicesByThroughput(s.Devices))
}

// RandomStatic shuffles every file to a uniformly random device once and
// never moves them again (§VI "random static").
type RandomStatic struct {
	Rng  *rand.Rand
	done bool
}

// Name implements Policy.
func (p *RandomStatic) Name() string { return "random static" }

// Layout implements Policy.
func (p *RandomStatic) Layout(s State) map[int64]string {
	if p.done || len(s.Devices) == 0 {
		return nil
	}
	p.done = true
	return randomLayout(p.Rng, s)
}

// RandomDynamic reshuffles file locations on every invocation (§VI
// "random dynamic").
type RandomDynamic struct {
	Rng *rand.Rand
}

// Name implements Policy.
func (p *RandomDynamic) Name() string { return "random dynamic" }

// Layout implements Policy.
func (p *RandomDynamic) Layout(s State) map[int64]string {
	if len(s.Devices) == 0 {
		return nil
	}
	return randomLayout(p.Rng, s)
}

func randomLayout(rng *rand.Rand, s State) map[int64]string {
	layout := make(map[int64]string, len(s.Files))
	for _, f := range s.Files {
		layout[f.ID] = s.Devices[rng.Intn(len(s.Devices))].Name
	}
	return layout
}

// Static applies one fixed layout once — the paper's "Geomancy static"
// and manual-tuning base cases both use it, differing only in where the
// layout came from.
type Static struct {
	// Desc names the layout's origin, e.g. "Geomancy static".
	Desc   string
	Target map[int64]string
	done   bool
}

// Name implements Policy.
func (p *Static) Name() string {
	if p.Desc != "" {
		return p.Desc
	}
	return "static"
}

// Layout implements Policy.
func (p *Static) Layout(State) map[int64]string {
	if p.done {
		return nil
	}
	p.done = true
	return p.Target
}

// SingleMount places every file on one device — experiment 2's
// all-data-on-one-storage-point base case.
type SingleMount struct {
	Device string
	done   bool
}

// Name implements Policy.
func (p *SingleMount) Name() string { return fmt.Sprintf("all-on-%s", p.Device) }

// Layout implements Policy.
func (p *SingleMount) Layout(s State) map[int64]string {
	if p.done {
		return nil
	}
	p.done = true
	layout := make(map[int64]string, len(s.Files))
	for _, f := range s.Files {
		layout[f.ID] = p.Device
	}
	return layout
}

// NoOp never moves anything; the "leave the spread layout alone" control.
type NoOp struct{}

// Name implements Policy.
func (NoOp) Name() string { return "no-op" }

// Layout implements Policy.
func (NoOp) Layout(State) map[int64]string { return nil }
