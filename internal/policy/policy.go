// Package policy is the placement-policy plane: one first-class Policy
// contract implemented by the paper's base cases (§VI) — LRU, MRU (Chou
// & DeWitt), LFU (Gupta et al.), random static, random dynamic, a fixed
// static layout, and all-on-one-mount placement — and by the learned
// Geomancy family (Geomancy, Online, Tiered) adapting the DRL engine
// through the Model bridge. Dynamic policies re-rank devices from the
// latest telemetry snapshot on every invocation, exactly as the paper's
// base cases "access the updated performance values from the ReplayDB".
//
// Policies are stateful citizens of the checkpoint plane: MarshalState
// captures everything a policy needs to keep deciding identically after
// a restore (one-shot flags, RNG stream positions, online cadence
// counters), and UnmarshalState rewinds a freshly built policy to that
// point.
package policy

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"

	"geomancy/internal/rng"
)

// Sentinel errors. Match with errors.Is.
var (
	// ErrUnknown reports a policy name absent from the catalogue.
	ErrUnknown = errors.New("policy: unknown policy")
	// ErrNotReady reports a learned policy asked for an incremental
	// update before its model completed a full training cycle; callers
	// (and Online itself) fall back to a full retrain.
	ErrNotReady = errors.New("policy: model not trained yet")
	// ErrBadState reports an UnmarshalState blob that does not decode as
	// the policy's serialized state.
	ErrBadState = errors.New("policy: undecodable state blob")
)

// DeviceInfo is a policy's view of one storage device.
type DeviceInfo struct {
	Name string
	// Throughput is the current total average throughput observed at the
	// device (bytes/second), from ReplayDB telemetry.
	Throughput float64
	// Free is the remaining capacity in bytes.
	Free int64
	// Class names the device's hardware class ("raid5", "nfs", "usb",
	// ...). Tier-aware policies group devices by class; empty means
	// unclassified, and each unclassified device forms its own class.
	Class string
}

// FileInfo is a policy's view of one workload file.
type FileInfo struct {
	ID   int64
	Path string
	Size int64
	// Device is the file's current location.
	Device string
	// LastAccess is the most recent access time (virtual seconds).
	LastAccess float64
	// Accesses counts observed accesses of the file.
	Accesses int64
}

// State is the system snapshot a policy decides from.
type State struct {
	Devices []DeviceInfo
	Files   []FileInfo
}

// Policy computes desired data layouts from system snapshots. It is the
// one placement contract of the repository: the experiment baselines,
// the facade's WithPolicy catalogue, and the learned Geomancy family all
// implement it, and core.Loop drives whichever implementation it is
// given.
type Policy interface {
	// Name identifies the policy in experiment output and checkpoints.
	Name() string
	// Propose returns the desired file→device assignment for the given
	// snapshot. A nil map with a nil error means "no change" (static
	// policies return their layout once and nil afterward). Errors wrap
	// the package sentinels where applicable; match with errors.Is.
	Propose(ctx context.Context, s State) (map[int64]string, error)
	// MarshalState captures the policy's mutable decision state for a
	// checkpoint; stateless policies return (nil, nil).
	MarshalState() ([]byte, error)
	// UnmarshalState rewinds the policy to a previously captured state.
	UnmarshalState(data []byte) error
}

// LayoutPolicy is the v1 policy contract: a bare Name/Layout pair.
//
// Deprecated: Policy superseded it in the placement-plane redesign; use
// Propose, which adds cancellation, error reporting, and state
// serialization. Every shipped policy still satisfies LayoutPolicy
// through its deprecated Layout method; both will be removed one
// release after the redesign.
type LayoutPolicy interface {
	Name() string
	Layout(s State) map[int64]string
}

// Stateless provides the no-op serialization half of Policy for
// policies whose decisions depend only on the snapshot. Embed it.
type Stateless struct{}

// MarshalState implements Policy: no mutable state.
func (Stateless) MarshalState() ([]byte, error) { return nil, nil }

// UnmarshalState implements Policy: nothing to restore.
func (Stateless) UnmarshalState([]byte) error { return nil }

// marshalGob encodes one policy-state struct.
func marshalGob(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("policy: encoding state: %w", err)
	}
	return buf.Bytes(), nil
}

// unmarshalGob decodes one policy-state struct, wrapping decode
// failures in ErrBadState.
func unmarshalGob(data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("%w: %v", ErrBadState, err)
	}
	return nil
}

// devicesByThroughput returns device names ordered fastest first.
func devicesByThroughput(devs []DeviceInfo) []string {
	sorted := make([]DeviceInfo, len(devs))
	copy(sorted, devs)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Throughput > sorted[j].Throughput
	})
	names := make([]string, len(sorted))
	for i, d := range sorted {
		names[i] = d.Name
	}
	return names
}

// assignGrouped implements the paper's shared heuristic skeleton: order
// the files by some key, divide them evenly into as many groups as there
// are devices, and place group i on the i-th fastest device. Files that
// do not divide evenly land on the slowest device, as §VI specifies.
func assignGrouped(files []FileInfo, devices []string) map[int64]string {
	if len(devices) == 0 || len(files) == 0 {
		return nil
	}
	perGroup := len(files) / len(devices)
	layout := make(map[int64]string, len(files))
	if perGroup == 0 {
		// Fewer files than devices: fastest devices get one file each,
		// there is no remainder group.
		for i, f := range files {
			layout[f.ID] = devices[i]
		}
		return layout
	}
	for i, f := range files {
		g := i / perGroup
		if g >= len(devices) {
			g = len(devices) - 1 // remainder → slowest device
		}
		layout[f.ID] = devices[g]
	}
	return layout
}

// LRU places the most recently used files on the fastest devices and the
// least recently used on the slowest (§VI).
type LRU struct{ Stateless }

// Name implements Policy.
func (LRU) Name() string { return "LRU" }

// Propose implements Policy.
func (LRU) Propose(_ context.Context, s State) (map[int64]string, error) {
	files := make([]FileInfo, len(s.Files))
	copy(files, s.Files)
	sort.SliceStable(files, func(i, j int) bool {
		return files[i].LastAccess > files[j].LastAccess // most recent first
	})
	return assignGrouped(files, devicesByThroughput(s.Devices)), nil
}

// Layout is the v1 single-shot entry point.
//
// Deprecated: Use Propose, which adds cancellation and error reporting.
func (p LRU) Layout(s State) map[int64]string { return layoutCompat(p, s) }

// MRU places the most recently used files on the slowest devices, which
// benefits looping sequential scans (Chou & DeWitt; §VI).
type MRU struct{ Stateless }

// Name implements Policy.
func (MRU) Name() string { return "MRU" }

// Propose implements Policy.
func (MRU) Propose(_ context.Context, s State) (map[int64]string, error) {
	files := make([]FileInfo, len(s.Files))
	copy(files, s.Files)
	sort.SliceStable(files, func(i, j int) bool {
		return files[i].LastAccess < files[j].LastAccess // least recent first
	})
	return assignGrouped(files, devicesByThroughput(s.Devices)), nil
}

// Layout is the v1 single-shot entry point.
//
// Deprecated: Use Propose, which adds cancellation and error reporting.
func (p MRU) Layout(s State) map[int64]string { return layoutCompat(p, s) }

// LFU places heavily accessed files on fast devices and rarely accessed
// files on slow ones (Gupta et al.; §VI).
type LFU struct{ Stateless }

// Name implements Policy.
func (LFU) Name() string { return "LFU" }

// Propose implements Policy.
func (LFU) Propose(_ context.Context, s State) (map[int64]string, error) {
	files := make([]FileInfo, len(s.Files))
	copy(files, s.Files)
	sort.SliceStable(files, func(i, j int) bool {
		return files[i].Accesses > files[j].Accesses // most accessed first
	})
	return assignGrouped(files, devicesByThroughput(s.Devices)), nil
}

// Layout is the v1 single-shot entry point.
//
// Deprecated: Use Propose, which adds cancellation and error reporting.
func (p LFU) Layout(s State) map[int64]string { return layoutCompat(p, s) }

// layoutCompat adapts Propose to the v1 Layout signature for the
// deprecated methods: v1 policies never failed, so the error is
// discarded the way v1 callers implicitly did.
func layoutCompat(p Policy, s State) map[int64]string {
	layout, _ := p.Propose(context.Background(), s)
	return layout
}

// RandomStatic shuffles every file to a uniformly random device once and
// never moves them again (§VI "random static").
type RandomStatic struct {
	// Rng drives the shuffle. Use rng.New: the stream position is part
	// of MarshalState, so a restored policy replays the exact draws the
	// interrupted one would have made.
	Rng  *rng.RNG
	done bool
}

// Name implements Policy.
func (p *RandomStatic) Name() string { return "random static" }

// Propose implements Policy.
func (p *RandomStatic) Propose(_ context.Context, s State) (map[int64]string, error) {
	if p.done || len(s.Devices) == 0 {
		return nil, nil
	}
	p.done = true
	return randomLayout(p.Rng, s), nil
}

// randomStaticState is the gob wire form of RandomStatic's mutable
// state: the stream position and the one-shot flag whose loss would make
// a restored run re-fire the shuffle.
type randomStaticState struct {
	RNG  uint64
	Done bool
}

// MarshalState implements Policy.
func (p *RandomStatic) MarshalState() ([]byte, error) {
	return marshalGob(randomStaticState{RNG: p.Rng.State(), Done: p.done})
}

// UnmarshalState implements Policy.
func (p *RandomStatic) UnmarshalState(data []byte) error {
	var st randomStaticState
	if err := unmarshalGob(data, &st); err != nil {
		return err
	}
	if p.Rng == nil {
		p.Rng = rng.FromState(st.RNG)
	} else {
		p.Rng.SetState(st.RNG)
	}
	p.done = st.Done
	return nil
}

// Layout is the v1 single-shot entry point.
//
// Deprecated: Use Propose, which adds cancellation and error reporting.
func (p *RandomStatic) Layout(s State) map[int64]string { return layoutCompat(p, s) }

// RandomDynamic reshuffles file locations on every invocation (§VI
// "random dynamic").
type RandomDynamic struct {
	// Rng drives the shuffles; use rng.New so the stream position
	// serializes with MarshalState.
	Rng *rng.RNG
}

// Name implements Policy.
func (p *RandomDynamic) Name() string { return "random dynamic" }

// Propose implements Policy.
func (p *RandomDynamic) Propose(_ context.Context, s State) (map[int64]string, error) {
	if len(s.Devices) == 0 {
		return nil, nil
	}
	return randomLayout(p.Rng, s), nil
}

// randomDynamicState is the gob wire form of RandomDynamic's mutable
// state: just the stream position.
type randomDynamicState struct {
	RNG uint64
}

// MarshalState implements Policy.
func (p *RandomDynamic) MarshalState() ([]byte, error) {
	return marshalGob(randomDynamicState{RNG: p.Rng.State()})
}

// UnmarshalState implements Policy.
func (p *RandomDynamic) UnmarshalState(data []byte) error {
	var st randomDynamicState
	if err := unmarshalGob(data, &st); err != nil {
		return err
	}
	if p.Rng == nil {
		p.Rng = rng.FromState(st.RNG)
	} else {
		p.Rng.SetState(st.RNG)
	}
	return nil
}

// Layout is the v1 single-shot entry point.
//
// Deprecated: Use Propose, which adds cancellation and error reporting.
func (p *RandomDynamic) Layout(s State) map[int64]string { return layoutCompat(p, s) }

func randomLayout(r *rng.RNG, s State) map[int64]string {
	layout := make(map[int64]string, len(s.Files))
	for _, f := range s.Files {
		layout[f.ID] = s.Devices[r.Intn(len(s.Devices))].Name
	}
	return layout
}

// oneShotState is the gob wire form shared by the fixed-layout policies:
// only the fired-already flag is mutable.
type oneShotState struct {
	Done bool
}

// Static applies one fixed layout once — the paper's "Geomancy static"
// and manual-tuning base cases both use it, differing only in where the
// layout came from.
type Static struct {
	// Desc names the layout's origin, e.g. "Geomancy static".
	//geomancy:ephemeral construction config, re-supplied when the policy is rebuilt
	Desc   string
	Target map[int64]string //geomancy:ephemeral construction config, re-supplied when the policy is rebuilt
	done   bool
}

// Name implements Policy.
func (p *Static) Name() string {
	if p.Desc != "" {
		return p.Desc
	}
	return "static"
}

// Propose implements Policy.
func (p *Static) Propose(context.Context, State) (map[int64]string, error) {
	if p.done {
		return nil, nil
	}
	p.done = true
	return p.Target, nil
}

// MarshalState implements Policy.
func (p *Static) MarshalState() ([]byte, error) {
	return marshalGob(oneShotState{Done: p.done})
}

// UnmarshalState implements Policy.
func (p *Static) UnmarshalState(data []byte) error {
	var st oneShotState
	if err := unmarshalGob(data, &st); err != nil {
		return err
	}
	p.done = st.Done
	return nil
}

// Layout is the v1 single-shot entry point.
//
// Deprecated: Use Propose, which adds cancellation and error reporting.
func (p *Static) Layout(s State) map[int64]string { return layoutCompat(p, s) }

// SingleMount places every file on one device — experiment 2's
// all-data-on-one-storage-point base case.
type SingleMount struct {
	Device string //geomancy:ephemeral construction config, re-supplied when the policy is rebuilt
	done   bool
}

// Name implements Policy.
func (p *SingleMount) Name() string { return fmt.Sprintf("all-on-%s", p.Device) }

// Propose implements Policy.
func (p *SingleMount) Propose(_ context.Context, s State) (map[int64]string, error) {
	if p.done {
		return nil, nil
	}
	p.done = true
	layout := make(map[int64]string, len(s.Files))
	for _, f := range s.Files {
		layout[f.ID] = p.Device
	}
	return layout, nil
}

// MarshalState implements Policy.
func (p *SingleMount) MarshalState() ([]byte, error) {
	return marshalGob(oneShotState{Done: p.done})
}

// UnmarshalState implements Policy.
func (p *SingleMount) UnmarshalState(data []byte) error {
	var st oneShotState
	if err := unmarshalGob(data, &st); err != nil {
		return err
	}
	p.done = st.Done
	return nil
}

// Layout is the v1 single-shot entry point.
//
// Deprecated: Use Propose, which adds cancellation and error reporting.
func (p *SingleMount) Layout(s State) map[int64]string { return layoutCompat(p, s) }

// NoOp never moves anything; the "leave the spread layout alone" control.
type NoOp struct{ Stateless }

// Name implements Policy.
func (NoOp) Name() string { return "no-op" }

// Propose implements Policy.
func (NoOp) Propose(context.Context, State) (map[int64]string, error) { return nil, nil }

// Layout is the v1 single-shot entry point.
//
// Deprecated: Use Propose, which adds cancellation and error reporting.
func (p NoOp) Layout(s State) map[int64]string { return layoutCompat(p, s) }
