package policy

import (
	"context"
	"errors"
	"fmt"
	"sort"
)

// Model is the narrow surface of a learned placement engine the policy
// plane drives. core.EngineModel implements it over the DRL engine; the
// indirection keeps this package a leaf (core imports policy, not the
// reverse) and lets tests substitute canned models.
type Model interface {
	// Retrain runs one full training cycle on the freshest telemetry
	// window (the paper's periodic retrain).
	Retrain(ctx context.Context) error
	// Update applies one incremental minibatch update from the newest
	// telemetry only, reusing the normalization fitted by the last full
	// cycle. A model with no completed full cycle returns an error
	// wrapping ErrNotReady.
	Update(ctx context.Context) error
	// Propose scores every (file, device) candidate and returns the
	// chosen layout plus the per-file prediction record.
	Propose(ctx context.Context, s State) (map[int64]string, []Prediction, error)
}

// Prediction records one file's placement decision by a learned model.
type Prediction struct {
	FileID int64
	// Current and Chosen are the file's device before and after the
	// decision (equal when the model keeps the file in place).
	Current string
	Chosen  string
	// Random marks ε-greedy exploration decisions.
	Random bool
}

// Explorer is implemented by policies that track how many of their last
// proposal's moves were exploration; the loop reports the count on
// MovementEvent.Random. Policies without the method count as zero.
type Explorer interface {
	LastExplored() int
}

// countExplored tallies exploration decisions that actually moved data.
func countExplored(preds []Prediction) int {
	n := 0
	for _, d := range preds {
		if d.Random && d.Chosen != d.Current {
			n++
		}
	}
	return n
}

// Geomancy is the paper's closed loop as a Policy: every proposal is
// preceded by a full retrain on the freshest telemetry window, then the
// model's ε-greedy layout is applied as-is. Its mutable state (RNG
// stream, weights, scalers) lives in the engine, which snapshots itself
// through the engine half of the checkpoint — so the policy blob itself
// is empty.
type Geomancy struct {
	Stateless
	Model    Model
	explored int //geomancy:ephemeral last-proposal telemetry (LastExplored), overwritten by the next Propose
}

// Name implements Policy.
func (p *Geomancy) Name() string { return "Geomancy dynamic" }

// Propose implements Policy.
func (p *Geomancy) Propose(ctx context.Context, s State) (map[int64]string, error) {
	if err := p.Model.Retrain(ctx); err != nil {
		return nil, fmt.Errorf("policy: geomancy retrain: %w", err)
	}
	layout, preds, err := p.Model.Propose(ctx, s)
	if err != nil {
		return nil, fmt.Errorf("policy: geomancy proposal: %w", err)
	}
	p.explored = countExplored(preds)
	return layout, nil
}

// LastExplored implements Explorer.
func (p *Geomancy) LastExplored() int { return p.explored }

// Layout is the v1 single-shot entry point.
//
// Deprecated: Use Propose, which adds cancellation and error reporting.
func (p *Geomancy) Layout(s State) map[int64]string { return layoutCompat(p, s) }

// DefaultRetrainEvery is Online's default full-retrain cadence: one full
// cycle per this many proposals, incremental updates in between.
const DefaultRetrainEvery = 4

// Online is Geomancy with incremental learning between full retrains
// (after Sibyl's continuously adapting placement, arXiv:2205.07394):
// most proposals are preceded by a cheap minibatch update on only the
// newest telemetry, so the model starts tracking a hotspot shift on the
// very next decision instead of waiting for the retrain window to turn
// over — a full window is dominated by pre-shift telemetry for many runs
// after the shift, which is exactly when the periodic retrainer keeps
// reproducing the stale placement.
type Online struct {
	Model Model //geomancy:ephemeral serializes through the engine half of the checkpoint
	// RetrainEvery is the full-retrain cadence in proposals; proposal 0
	// and every RetrainEvery-th after it retrain fully, the rest update
	// incrementally. 0 selects DefaultRetrainEvery.
	//geomancy:ephemeral construction config, re-supplied by policy wiring
	RetrainEvery int

	calls    int64
	explored int //geomancy:ephemeral last-proposal telemetry (LastExplored), overwritten by the next Propose
}

// Name implements Policy.
func (p *Online) Name() string { return "online-geomancy" }

// Propose implements Policy.
func (p *Online) Propose(ctx context.Context, s State) (map[int64]string, error) {
	every := p.RetrainEvery
	if every <= 0 {
		every = DefaultRetrainEvery
	}
	full := p.calls%int64(every) == 0
	p.calls++
	if full {
		if err := p.Model.Retrain(ctx); err != nil {
			return nil, fmt.Errorf("policy: online retrain: %w", err)
		}
	} else if err := p.Model.Update(ctx); err != nil {
		if !errors.Is(err, ErrNotReady) {
			return nil, fmt.Errorf("policy: online update: %w", err)
		}
		// No full cycle behind us (e.g. restored from an old snapshot):
		// fall back to a retrain rather than proposing untrained.
		if err := p.Model.Retrain(ctx); err != nil {
			return nil, fmt.Errorf("policy: online retrain: %w", err)
		}
	}
	layout, preds, err := p.Model.Propose(ctx, s)
	if err != nil {
		return nil, fmt.Errorf("policy: online proposal: %w", err)
	}
	p.explored = countExplored(preds)
	return layout, nil
}

// LastExplored implements Explorer.
func (p *Online) LastExplored() int { return p.explored }

// onlineState is the gob wire form of Online's mutable state: the
// proposal counter that phases full retrains against updates. The model
// itself serializes through the engine half of the checkpoint.
type onlineState struct {
	Calls int64
}

// MarshalState implements Policy.
func (p *Online) MarshalState() ([]byte, error) {
	return marshalGob(onlineState{Calls: p.calls})
}

// UnmarshalState implements Policy.
func (p *Online) UnmarshalState(data []byte) error {
	var st onlineState
	if err := unmarshalGob(data, &st); err != nil {
		return err
	}
	p.calls = st.Calls
	return nil
}

// Layout is the v1 single-shot entry point.
//
// Deprecated: Use Propose, which adds cancellation and error reporting.
func (p *Online) Layout(s State) map[int64]string { return layoutCompat(p, s) }

// Tiered is Geomancy restricted to cross-tier migrations (after
// Harmonia's device-class-aware promote/demote, arXiv:2503.20507):
// devices are grouped into performance tiers by hardware class, files
// are split into hot and cold halves by access count, and of the model's
// proposed moves only promotions of hot files and demotions of cold ones
// survive — lateral shuffles inside a tier, cold promotions, and hot
// demotions are suppressed (the file stays put). The gate trades some of
// the model's freedom for migration traffic that always has a tiering
// rationale.
type Tiered struct {
	Stateless
	Model    Model
	explored int //geomancy:ephemeral last-proposal telemetry (LastExplored), overwritten by the next Propose
}

// Name implements Policy.
func (p *Tiered) Name() string { return "tiered-geomancy" }

// Propose implements Policy.
func (p *Tiered) Propose(ctx context.Context, s State) (map[int64]string, error) {
	if err := p.Model.Retrain(ctx); err != nil {
		return nil, fmt.Errorf("policy: tiered retrain: %w", err)
	}
	_, preds, err := p.Model.Propose(ctx, s)
	if err != nil {
		return nil, fmt.Errorf("policy: tiered proposal: %w", err)
	}
	tiers := deviceTiers(s.Devices)
	hot := hotFiles(s.Files)
	layout := make(map[int64]string, len(preds))
	explored := 0
	for _, d := range preds {
		chosen := d.Chosen
		ct, haveCur := tiers[d.Current]
		nt, haveNew := tiers[d.Chosen]
		switch {
		case d.Chosen == d.Current:
			// Staying put is always allowed.
		case !haveCur || !haveNew:
			// A device outside the snapshot (shouldn't happen): trust the
			// model rather than inventing a rule.
		case nt == ct:
			chosen = d.Current // lateral move inside a tier: suppress
		case nt < ct && !hot[d.FileID]:
			chosen = d.Current // promotion is reserved for hot files
		case nt > ct && hot[d.FileID]:
			chosen = d.Current // never demote a hot file
		}
		layout[d.FileID] = chosen
		if d.Random && chosen != d.Current {
			explored++
		}
	}
	p.explored = explored
	return layout, nil
}

// LastExplored implements Explorer.
func (p *Tiered) LastExplored() int { return p.explored }

// Layout is the v1 single-shot entry point.
//
// Deprecated: Use Propose, which adds cancellation and error reporting.
func (p *Tiered) Layout(s State) map[int64]string { return layoutCompat(p, s) }

// deviceTiers maps every device to its performance tier: devices are
// grouped by hardware class (an unclassified device forms its own
// class), classes are ranked by mean observed throughput, and tier 0 is
// the fastest class. Iteration stays in slice order throughout so the
// ranking is deterministic; throughput ties break by class name.
func deviceTiers(devs []DeviceInfo) map[string]int {
	classOf := func(d DeviceInfo) string {
		if d.Class != "" {
			return d.Class
		}
		return "device:" + d.Name
	}
	type group struct {
		key string
		sum float64
		n   int
	}
	var groups []group
	index := make(map[string]int)
	for _, d := range devs {
		key := classOf(d)
		gi, ok := index[key]
		if !ok {
			gi = len(groups)
			index[key] = gi
			groups = append(groups, group{key: key})
		}
		groups[gi].sum += d.Throughput
		groups[gi].n++
	}
	sort.SliceStable(groups, func(i, j int) bool {
		mi := groups[i].sum / float64(groups[i].n)
		mj := groups[j].sum / float64(groups[j].n)
		if mi != mj {
			return mi > mj
		}
		return groups[i].key < groups[j].key
	})
	tierOf := make(map[string]int, len(groups))
	for tier, g := range groups {
		tierOf[g.key] = tier
	}
	tiers := make(map[string]int, len(devs))
	for _, d := range devs {
		tiers[d.Name] = tierOf[classOf(d)]
	}
	return tiers
}

// hotFiles splits the working set at the median access count: files at
// or above it (having been accessed at all) are hot. With no access
// history yet, nothing is hot and only demotions pass the gate.
func hotFiles(files []FileInfo) map[int64]bool {
	if len(files) == 0 {
		return nil
	}
	counts := make([]int64, len(files))
	for i, f := range files {
		counts[i] = f.Accesses
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] < counts[j] })
	median := counts[len(counts)/2]
	hot := make(map[int64]bool, len(files))
	for _, f := range files {
		if f.Accesses > 0 && f.Accesses >= median {
			hot[f.ID] = true
		}
	}
	return hot
}
