package agents

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sort"
	"sync"
	"time"

	"geomancy/internal/replaydb"
	"geomancy/internal/rng"
	"geomancy/internal/telemetry"
)

// Daemon is the Interface Daemon: it accepts monitoring-agent telemetry,
// stores it in the ReplayDB, serves recent-access queries, and pushes
// layout updates to registered control agents.
type Daemon struct {
	db *replaydb.DB

	mu       sync.Mutex
	ln       net.Listener
	controls map[uint64]*controlConn
	conns    map[net.Conn]struct{}
	nextID   uint64
	nextPush uint64
	// lastSeq holds the highest acknowledged batch ID per monitor (the
	// envelope's From). Batch IDs are monotonic per monitor and survive
	// reconnects, so a replayed batch whose original delivery succeeded
	// is detected here and acknowledged without storing duplicates.
	lastSeq map[string]uint64
	closed  bool
	wg      sync.WaitGroup

	// AckTimeout bounds how long PushLayout waits for each control agent.
	AckTimeout time.Duration

	// WrapListener, when set before Start, wraps the accept listener —
	// the hook fault-injection harnesses (internal/faultnet) use to
	// perturb every agent connection.
	WrapListener func(net.Listener) net.Listener

	// Verbose enables structured connection/error logging with a [daemon]
	// prefix. Quiet by default: connection handling errors are counted in
	// the metrics but not printed.
	Verbose bool
	// Logger overrides the destination of verbose logs (default:
	// log.Default()).
	Logger *log.Logger

	metrics daemonMetrics
}

// daemonMetrics bundles the daemon's pre-resolved telemetry handles; nil
// handles no-op until SetMetrics installs a registry.
type daemonMetrics struct {
	connsTotal   *telemetry.Counter
	connsOpen    *telemetry.Gauge
	errorsTotal  *telemetry.Counter
	reportsTotal *telemetry.Counter
	layoutPushes *telemetry.Counter
	duplicates   *telemetry.Counter
	rpcMetrics   *telemetry.Histogram
	rpcRecent    *telemetry.Histogram
	rpcPush      *telemetry.Histogram
}

type controlConn struct {
	enc  *json.Encoder
	conn net.Conn
	acks chan Envelope
}

// NewDaemon returns a daemon backed by db.
func NewDaemon(db *replaydb.DB) *Daemon {
	return &Daemon{
		db:         db,
		controls:   make(map[uint64]*controlConn),
		conns:      make(map[net.Conn]struct{}),
		lastSeq:    make(map[string]uint64),
		AckTimeout: 5 * time.Second,
	}
}

// SetMetrics wires the daemon's connection and RPC-latency instrumentation
// to reg. Call before Start; handles are pre-registered so every metric
// exports (at zero) from the first scrape.
func (d *Daemon) SetMetrics(reg *telemetry.Registry) {
	d.metrics = daemonMetrics{
		connsTotal:   reg.Counter(telemetry.MetricDaemonConnectionsTotal),
		connsOpen:    reg.Gauge(telemetry.MetricDaemonConnectionsOpen),
		errorsTotal:  reg.Counter(telemetry.MetricDaemonErrorsTotal),
		reportsTotal: reg.Counter(telemetry.MetricDaemonReportsTotal),
		layoutPushes: reg.Counter(telemetry.MetricDaemonLayoutPushes),
		duplicates:   reg.Counter(telemetry.MetricDaemonDuplicateBatches),
		rpcMetrics:   reg.Histogram(telemetry.MetricDaemonRPCSeconds, telemetry.DefDurationBuckets, telemetry.L("type", TypeMetrics)),
		rpcRecent:    reg.Histogram(telemetry.MetricDaemonRPCSeconds, telemetry.DefDurationBuckets, telemetry.L("type", TypeRecentQuery)),
		rpcPush:      reg.Histogram(telemetry.MetricDaemonRPCSeconds, telemetry.DefDurationBuckets, telemetry.L("type", TypeLayout)),
	}
}

// logf prints one structured log line when Verbose is set.
func (d *Daemon) logf(format string, args ...any) {
	if !d.Verbose {
		return
	}
	l := d.Logger
	if l == nil {
		l = log.Default()
	}
	l.Printf("[daemon] "+format, args...)
}

// Start listens on addr (e.g. "127.0.0.1:0") and serves connections until
// Close. It returns the bound address.
//
//geomancy:allow ctxflow Listen binds and returns immediately; the daemon's lifetime is owned by Close
func (d *Daemon) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("agents: daemon listen: %w", err)
	}
	if d.WrapListener != nil {
		ln = d.WrapListener(ln)
	}
	d.mu.Lock()
	d.ln = ln
	d.mu.Unlock()
	d.logf("listening on %s", ln.Addr())
	d.wg.Add(1)
	go d.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (d *Daemon) acceptLoop(ln net.Listener) {
	defer d.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if !errors.Is(err, net.ErrClosed) {
				d.metrics.errorsTotal.Inc()
				d.logf("accept: %v", err)
			}
			return // listener closed
		}
		d.metrics.connsTotal.Inc()
		d.metrics.connsOpen.Add(1)
		d.logf("accepted %s", conn.RemoteAddr())
		d.wg.Add(1)
		go d.serve(conn)
	}
}

// serve handles one connection: a stream of JSON envelopes.
func (d *Daemon) serve(conn net.Conn) {
	defer d.wg.Done()
	defer conn.Close()
	defer d.metrics.connsOpen.Add(-1)
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.conns[conn] = struct{}{}
	d.mu.Unlock()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	var registered *controlConn
	var regID uint64
	defer func() {
		d.mu.Lock()
		delete(d.conns, conn)
		if registered != nil {
			delete(d.controls, regID)
			d.logf("control agent %d disconnected (%s)", regID, conn.RemoteAddr())
		}
		d.mu.Unlock()
	}()
	for {
		var env Envelope
		if err := dec.Decode(&env); err != nil {
			// EOF is the peer's orderly close; anything else is a broken
			// or malformed stream worth surfacing.
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				d.metrics.errorsTotal.Inc()
				d.logf("decode from %s: %v", conn.RemoteAddr(), err)
			} else {
				d.logf("peer %s closed", conn.RemoteAddr())
			}
			return
		}
		start := time.Now() //geomancy:nondeterministic telemetry timestamp for the RPC-latency histogram
		switch env.Type {
		case TypeMetrics:
			// Dedupe replayed batches: a monitor that never saw the ack
			// re-sends the batch under its original (From, ID). Storing it
			// again would double-count the telemetry, so acknowledge
			// without appending.
			if env.From != "" && env.ID != 0 {
				d.mu.Lock()
				dup := env.ID <= d.lastSeq[env.From]
				d.mu.Unlock()
				if dup {
					d.metrics.duplicates.Inc()
					d.logf("duplicate batch (%s, %d) deduped", env.From, env.ID)
					if err := enc.Encode(Envelope{Type: TypeMetricsAck, ID: env.ID, N: len(env.Reports)}); err != nil {
						d.metrics.errorsTotal.Inc()
						return
					}
					continue
				}
			}
			ok := true
			for _, rep := range env.Reports {
				if _, err := d.db.AppendAccess(rep.ToRecord()); err != nil {
					d.metrics.errorsTotal.Inc()
					d.logf("append from %s: %v", env.From, err)
					enc.Encode(Envelope{Type: TypeError, Error: err.Error()})
					ok = false
					break
				}
			}
			if !ok {
				return
			}
			if env.From != "" && env.ID != 0 {
				d.mu.Lock()
				if env.ID > d.lastSeq[env.From] {
					d.lastSeq[env.From] = env.ID
				}
				d.mu.Unlock()
			}
			d.metrics.reportsTotal.Add(uint64(len(env.Reports)))
			d.metrics.rpcMetrics.Observe(time.Since(start).Seconds()) //geomancy:nondeterministic telemetry timestamp for the RPC-latency histogram
			if err := enc.Encode(Envelope{Type: TypeMetricsAck, ID: env.ID, N: len(env.Reports)}); err != nil {
				d.metrics.errorsTotal.Inc()
				d.logf("ack to %s: %v", conn.RemoteAddr(), err)
				return
			}
		case TypeRegisterControl:
			cc := &controlConn{enc: enc, conn: conn, acks: make(chan Envelope, 16)}
			d.mu.Lock()
			d.nextID++
			regID = d.nextID
			d.controls[regID] = cc
			d.mu.Unlock()
			registered = cc
			d.logf("control agent %d registered (%s)", regID, conn.RemoteAddr())
		case TypeLayoutAck:
			if registered != nil {
				select {
				case registered.acks <- env:
				default: // ack buffer full; drop rather than block the wire
				}
			}
		case TypeRecentQuery:
			var recs []replaydb.AccessRecord
			switch {
			case env.FileID != 0:
				recs = d.db.RecentByFile(env.FileID, env.N)
			case env.Device == "":
				recs = d.db.Recent(env.N)
			default:
				recs = d.db.RecentByDevice(env.Device, env.N)
			}
			reply := Envelope{Type: TypeRecentReply, ID: env.ID}
			for _, rec := range recs {
				reply.Reports = append(reply.Reports, ReportFromRecord(rec))
			}
			d.metrics.rpcRecent.Observe(time.Since(start).Seconds()) //geomancy:nondeterministic telemetry timestamp for the RPC-latency histogram
			if err := enc.Encode(reply); err != nil {
				d.metrics.errorsTotal.Inc()
				d.logf("recent reply to %s: %v", conn.RemoteAddr(), err)
				return
			}
		default:
			d.metrics.errorsTotal.Inc()
			d.logf("unknown message type %q from %s", env.Type, conn.RemoteAddr())
			enc.Encode(Envelope{Type: TypeError, Error: fmt.Sprintf("unknown message type %q", env.Type)})
		}
	}
}

// ControlCount returns the number of registered control agents.
func (d *Daemon) ControlCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.controls)
}

// PushOutcome reports how one control agent handled a layout push.
type PushOutcome struct {
	// Agent is the daemon-assigned registration ID.
	Agent uint64
	// Moved is the number of files the agent reports moving.
	Moved int
	// Err is the agent's failure, a transport error, or an ack timeout;
	// nil for a clean application.
	Err error
}

// PushLayout broadcasts a layout to every registered control agent and
// waits (up to AckTimeout overall) for their acknowledgements. It returns
// the total number of files the agents report moving.
//
// Entries go out sorted by FileID, so the wire transcript of a fixed-seed
// run is identical run-to-run (the layout map's iteration order is not).
// Every agent is contacted even when an earlier one fails — an agent that
// silently kept a stale layout is worse than an aggregated error — and
// the error (if any) reports each failing agent's outcome. Acks are
// correlated by a per-push ID so a late ack from a previous, timed-out
// push is never credited to this one.
//
//geomancy:allow ctxflow push I/O is deadline-bounded by AckTimeout and replays idempotently via PushLayoutRetry
func (d *Daemon) PushLayout(layout map[int64]string) (int, error) {
	moved, outcomes, err := d.PushLayoutOutcomes(layout)
	_ = outcomes
	return moved, err
}

// PushLayoutOutcomes is PushLayout with the per-agent outcomes exposed.
//
//geomancy:allow ctxflow push I/O is deadline-bounded by AckTimeout and replays idempotently via PushLayoutRetry
func (d *Daemon) PushLayoutOutcomes(layout map[int64]string) (int, []PushOutcome, error) {
	start := time.Now() //geomancy:nondeterministic telemetry timestamp for the RPC-latency histogram
	entries := make([]LayoutEntry, 0, len(layout))
	for id, dev := range layout {
		entries = append(entries, LayoutEntry{FileID: id, Device: dev})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].FileID < entries[j].FileID })

	d.mu.Lock()
	d.nextPush++
	pushID := d.nextPush
	ids := make([]uint64, 0, len(d.controls))
	for id := range d.controls {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	targets := make([]*controlConn, 0, len(ids))
	for _, id := range ids {
		targets = append(targets, d.controls[id])
	}
	d.mu.Unlock()
	if len(targets) == 0 {
		d.metrics.errorsTotal.Inc()
		return 0, nil, markUnavailable(fmt.Errorf("agents: no control agents registered"))
	}
	env := Envelope{Type: TypeLayout, ID: pushID, Layout: entries}

	// Write phase: contact every agent before waiting on any ack.
	outcomes := make([]PushOutcome, len(targets))
	for i, cc := range targets {
		outcomes[i].Agent = ids[i]
		cc.conn.SetWriteDeadline(time.Now().Add(d.AckTimeout)) //geomancy:nondeterministic I/O deadline computation; never reaches wire or layout output
		if err := cc.enc.Encode(env); err != nil {
			d.metrics.errorsTotal.Inc()
			d.logf("layout push to %s: %v", cc.conn.RemoteAddr(), err)
			outcomes[i].Err = markUnavailable(fmt.Errorf("push: %w", err))
		}
		cc.conn.SetWriteDeadline(time.Time{})
	}

	// Ack phase: one shared deadline so a slow agent cannot stretch the
	// wait to len(targets) × AckTimeout.
	deadline := time.After(d.AckTimeout)
	var moved int
	for i, cc := range targets {
		if outcomes[i].Err != nil {
			continue
		}
	await:
		for {
			select {
			case ack := <-cc.acks:
				if ack.ID != 0 && ack.ID != pushID {
					continue await // stale ack from a superseded push
				}
				moved += ack.Moved
				outcomes[i].Moved = ack.Moved
				if ack.Error != "" {
					d.metrics.errorsTotal.Inc()
					d.logf("layout ack from %s: %s", cc.conn.RemoteAddr(), ack.Error)
					outcomes[i].Err = fmt.Errorf("apply: %s", ack.Error)
				}
				break await
			case <-deadline:
				d.metrics.errorsTotal.Inc()
				d.logf("layout ack from %s timed out after %v", cc.conn.RemoteAddr(), d.AckTimeout)
				outcomes[i].Err = markUnavailable(fmt.Errorf("ack timed out after %v", d.AckTimeout))
				break await
			}
		}
	}

	var errs []error
	for _, oc := range outcomes {
		if oc.Err != nil {
			errs = append(errs, fmt.Errorf("agents: control agent %d: %w", oc.Agent, oc.Err))
		}
	}
	if len(errs) > 0 {
		return moved, outcomes, errors.Join(errs...)
	}
	d.metrics.layoutPushes.Inc()
	d.metrics.rpcPush.Observe(time.Since(start).Seconds()) //geomancy:nondeterministic telemetry timestamp for the RPC-latency histogram
	d.logf("pushed layout of %d files to %d control agents (%d moved)", len(entries), len(targets), moved)
	return moved, outcomes, nil
}

// PushLayoutRetry is PushLayout with policy's retry budget. Replaying a
// push is safe — layout application is idempotent (re-homing a file onto
// its current device is a no-op) and acks are correlated per push — so a
// transient transport fault need not cost the caller a decision cycle.
// Mover failures (the target system refusing a move) are not retried:
// repeating the request would not change the answer.
//
//geomancy:allow ctxflow push I/O is deadline-bounded by AckTimeout and replays idempotently via PushLayoutRetry
func (d *Daemon) PushLayoutRetry(layout map[int64]string, policy RetryPolicy, jitter *rng.RNG) (int, error) {
	policy = policy.withDefaults()
	var lastErr error
	for attempt := 1; attempt <= policy.MaxAttempts; attempt++ {
		if attempt > 1 {
			time.Sleep(policy.backoff(attempt-1, jitter))
		}
		moved, _, err := d.PushLayoutOutcomes(layout)
		if err == nil {
			return moved, nil
		}
		lastErr = err
		if !errors.Is(err, ErrUnavailable) {
			return moved, err
		}
	}
	return 0, lastErr
}

// Close stops the listener and waits for connection handlers to drain.
func (d *Daemon) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	ln := d.ln
	conns := make([]net.Conn, 0, len(d.conns))
	//geomancy:nondeterministic shutdown path: every connection is closed, so close order cannot reach wire or layout output
	for c := range d.conns {
		conns = append(conns, c)
	}
	d.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	d.wg.Wait()
	d.logf("closed")
	return err
}
