package agents

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"geomancy/internal/replaydb"
)

// Daemon is the Interface Daemon: it accepts monitoring-agent telemetry,
// stores it in the ReplayDB, serves recent-access queries, and pushes
// layout updates to registered control agents.
type Daemon struct {
	db *replaydb.DB

	mu       sync.Mutex
	ln       net.Listener
	controls map[uint64]*controlConn
	conns    map[net.Conn]struct{}
	nextID   uint64
	closed   bool
	wg       sync.WaitGroup

	// AckTimeout bounds how long PushLayout waits for each control agent.
	AckTimeout time.Duration
}

type controlConn struct {
	enc  *json.Encoder
	conn net.Conn
	acks chan Envelope
}

// NewDaemon returns a daemon backed by db.
func NewDaemon(db *replaydb.DB) *Daemon {
	return &Daemon{
		db:         db,
		controls:   make(map[uint64]*controlConn),
		conns:      make(map[net.Conn]struct{}),
		AckTimeout: 5 * time.Second,
	}
}

// Start listens on addr (e.g. "127.0.0.1:0") and serves connections until
// Close. It returns the bound address.
func (d *Daemon) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("agents: daemon listen: %w", err)
	}
	d.mu.Lock()
	d.ln = ln
	d.mu.Unlock()
	d.wg.Add(1)
	go d.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (d *Daemon) acceptLoop(ln net.Listener) {
	defer d.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		d.wg.Add(1)
		go d.serve(conn)
	}
}

// serve handles one connection: a stream of JSON envelopes.
func (d *Daemon) serve(conn net.Conn) {
	defer d.wg.Done()
	defer conn.Close()
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.conns[conn] = struct{}{}
	d.mu.Unlock()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	var registered *controlConn
	var regID uint64
	defer func() {
		d.mu.Lock()
		delete(d.conns, conn)
		if registered != nil {
			delete(d.controls, regID)
		}
		d.mu.Unlock()
	}()
	for {
		var env Envelope
		if err := dec.Decode(&env); err != nil {
			return // EOF or broken peer
		}
		switch env.Type {
		case TypeMetrics:
			for _, rep := range env.Reports {
				if _, err := d.db.AppendAccess(rep.ToRecord()); err != nil {
					enc.Encode(Envelope{Type: TypeError, Error: err.Error()})
					return
				}
			}
			if err := enc.Encode(Envelope{Type: TypeMetricsAck, ID: env.ID, N: len(env.Reports)}); err != nil {
				return
			}
		case TypeRegisterControl:
			cc := &controlConn{enc: enc, conn: conn, acks: make(chan Envelope, 16)}
			d.mu.Lock()
			d.nextID++
			regID = d.nextID
			d.controls[regID] = cc
			d.mu.Unlock()
			registered = cc
		case TypeLayoutAck:
			if registered != nil {
				select {
				case registered.acks <- env:
				default: // ack buffer full; drop rather than block the wire
				}
			}
		case TypeRecentQuery:
			var recs []replaydb.AccessRecord
			switch {
			case env.FileID != 0:
				recs = d.db.RecentByFile(env.FileID, env.N)
			case env.Device == "":
				recs = d.db.Recent(env.N)
			default:
				recs = d.db.RecentByDevice(env.Device, env.N)
			}
			reply := Envelope{Type: TypeRecentReply, ID: env.ID}
			for _, rec := range recs {
				reply.Reports = append(reply.Reports, ReportFromRecord(rec))
			}
			if err := enc.Encode(reply); err != nil {
				return
			}
		default:
			enc.Encode(Envelope{Type: TypeError, Error: fmt.Sprintf("unknown message type %q", env.Type)})
		}
	}
}

// ControlCount returns the number of registered control agents.
func (d *Daemon) ControlCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.controls)
}

// PushLayout broadcasts a layout to every registered control agent and
// waits (up to AckTimeout each) for their acknowledgements. It returns the
// total number of files the agents report moving.
func (d *Daemon) PushLayout(layout map[int64]string) (int, error) {
	entries := make([]LayoutEntry, 0, len(layout))
	for id, dev := range layout {
		entries = append(entries, LayoutEntry{FileID: id, Device: dev})
	}
	env := Envelope{Type: TypeLayout, Layout: entries}

	d.mu.Lock()
	targets := make([]*controlConn, 0, len(d.controls))
	for _, cc := range d.controls {
		targets = append(targets, cc)
	}
	d.mu.Unlock()
	if len(targets) == 0 {
		return 0, fmt.Errorf("agents: no control agents registered")
	}

	var moved int
	for _, cc := range targets {
		if err := cc.enc.Encode(env); err != nil {
			return moved, fmt.Errorf("agents: pushing layout: %w", err)
		}
		select {
		case ack := <-cc.acks:
			if ack.Error != "" {
				return moved, fmt.Errorf("agents: control agent: %s", ack.Error)
			}
			moved += ack.Moved
		case <-time.After(d.AckTimeout):
			return moved, fmt.Errorf("agents: timed out waiting for layout ack")
		}
	}
	return moved, nil
}

// Close stops the listener and waits for connection handlers to drain.
func (d *Daemon) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	ln := d.ln
	conns := make([]net.Conn, 0, len(d.conns))
	for c := range d.conns {
		conns = append(conns, c)
	}
	d.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	d.wg.Wait()
	return err
}
