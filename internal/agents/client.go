package agents

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"geomancy/internal/rng"
	"geomancy/internal/telemetry"
)

// Client is a query connection to the Interface Daemon; the DRL engine
// uses one to request training data ("the DRL engine requests training
// data from the ReplayDB via the Interface Daemon", §V-E).
//
// Failure model: every query runs under the retry policy's I/O deadline,
// so a hung daemon surfaces as a timeout instead of blocking forever.
// Queries are idempotent reads, so transport failures redial and repeat
// the query; replies are matched by ID, and stale replies left over from
// timed-out predecessors are drained rather than mistaken for answers.
type Client struct {
	addr string
	opts options
	met  agentMetrics
	rng  *rng.RNG // backoff jitter only

	mu        sync.Mutex
	conn      net.Conn
	bw        *bufio.Writer
	enc       *json.Encoder
	dec       *json.Decoder
	connected bool
	next      uint64
}

// NewClient dials the daemon at addr.
//
//geomancy:allow ctxflow constructor dial is deadline-bounded by RetryPolicy.IOTimeout; no caller context exists yet
func NewClient(addr string, opts ...Option) (*Client, error) {
	o := buildOptions(opts)
	c := &Client{
		addr: addr,
		opts: o,
		met:  metricsFor(o.reg, "client"),
		rng:  rng.New(1009),
	}
	if err := c.ensureConnLocked(); err != nil {
		return nil, fmt.Errorf("agents: client dial: %w", err)
	}
	return c, nil
}

// SetMetrics re-points the client's retry/reconnect instrumentation at
// reg (agents dialed before a registry existed).
func (c *Client) SetMetrics(reg *telemetry.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.met = metricsFor(reg, "client")
}

func (c *Client) ensureConnLocked() error {
	if c.conn != nil {
		return nil
	}
	//geomancy:allow locksafe connection-serialization lock; the dial is deadline-bounded by RetryPolicy.IOTimeout
	conn, err := c.opts.dial("tcp", c.addr)
	if err != nil {
		return err
	}
	c.conn = conn
	c.bw = bufio.NewWriter(conn)
	c.enc = json.NewEncoder(c.bw)
	c.dec = json.NewDecoder(bufio.NewReader(conn))
	if c.connected {
		c.met.reconnects.Inc()
	}
	c.connected = true
	return nil
}

func (c *Client) dropConnLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// Recent fetches the n most recent accesses for a device (empty device =
// all devices), oldest first.
func (c *Client) Recent(device string, n int) ([]Report, error) {
	return c.query(Envelope{Type: TypeRecentQuery, Device: device, N: n})
}

// RecentByFile fetches the n most recent accesses of one file, oldest
// first.
func (c *Client) RecentByFile(fileID int64, n int) ([]Report, error) {
	return c.query(Envelope{Type: TypeRecentQuery, FileID: fileID, N: n})
}

func (c *Client) query(req Envelope) ([]Report, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.next++
	req.ID = c.next
	var lastErr error
	for attempt := 1; attempt <= c.opts.policy.MaxAttempts; attempt++ {
		if attempt > 1 {
			c.met.retries.Inc()
			time.Sleep(c.opts.policy.backoff(attempt-1, c.rng))
		}
		if err := c.ensureConnLocked(); err != nil {
			lastErr = err
			continue
		}
		reports, err := c.roundTripLocked(req)
		if err == nil {
			return reports, nil
		}
		if fe, ok := err.(fatalAckError); ok {
			return nil, fmt.Errorf("agents: daemon error: %w", fe.err)
		}
		lastErr = err
		c.dropConnLocked()
	}
	return nil, markUnavailable(fmt.Errorf("agents: client query: %w", lastErr))
}

// roundTripLocked performs one query round trip under the I/O deadline,
// draining any stale replies whose ID predates this query.
func (c *Client) roundTripLocked(req Envelope) ([]Report, error) {
	deadline := time.Now().Add(c.opts.policy.IOTimeout) //geomancy:nondeterministic I/O deadline computation; never reaches wire or layout output
	if err := c.conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	start := time.Now() //geomancy:nondeterministic telemetry timestamp for the ack-latency histogram
	//geomancy:allow locksafe connection-serialization lock; the round trip is deadline-bounded by RetryPolicy.IOTimeout
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("write query: %w", err)
	}
	//geomancy:allow locksafe connection-serialization lock; the round trip is deadline-bounded by RetryPolicy.IOTimeout
	if err := c.bw.Flush(); err != nil {
		return nil, fmt.Errorf("write query: %w", err)
	}
	for {
		var reply Envelope
		//geomancy:allow locksafe connection-serialization lock; the round trip is deadline-bounded by RetryPolicy.IOTimeout
		if err := c.dec.Decode(&reply); err != nil {
			return nil, fmt.Errorf("read reply: %w", err)
		}
		switch {
		case reply.Type == TypeError:
			return nil, fatalAckError{fmt.Errorf("%s", reply.Error)}
		case reply.Type == TypeRecentReply && reply.ID < req.ID:
			// A stale reply to an earlier query whose round trip we
			// abandoned; drain it so this query reads its own answer.
			continue
		case reply.Type != TypeRecentReply || reply.ID != req.ID:
			return nil, fmt.Errorf("unexpected reply %q (id %d, want %d)", reply.Type, reply.ID, req.ID)
		}
		c.met.ackLatency.Observe(time.Since(start).Seconds()) //geomancy:nondeterministic telemetry timestamp for the ack-latency histogram
		return reply.Reports, nil
	}
}

// Close disconnects the client.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}
