package agents

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
)

// Client is a query connection to the Interface Daemon; the DRL engine
// uses one to request training data ("the DRL engine requests training
// data from the ReplayDB via the Interface Daemon", §V-E).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	bw   *bufio.Writer
	enc  *json.Encoder
	dec  *json.Decoder
	next uint64
}

// NewClient dials the daemon at addr.
func NewClient(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("agents: client dial: %w", err)
	}
	bw := bufio.NewWriter(conn)
	return &Client{
		conn: conn,
		bw:   bw,
		enc:  json.NewEncoder(bw),
		dec:  json.NewDecoder(bufio.NewReader(conn)),
	}, nil
}

// Recent fetches the n most recent accesses for a device (empty device =
// all devices), oldest first.
func (c *Client) Recent(device string, n int) ([]Report, error) {
	return c.query(Envelope{Type: TypeRecentQuery, Device: device, N: n})
}

// RecentByFile fetches the n most recent accesses of one file, oldest
// first.
func (c *Client) RecentByFile(fileID int64, n int) ([]Report, error) {
	return c.query(Envelope{Type: TypeRecentQuery, FileID: fileID, N: n})
}

func (c *Client) query(req Envelope) ([]Report, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.next++
	req.ID = c.next
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("agents: client query: %w", err)
	}
	if err := c.bw.Flush(); err != nil {
		return nil, fmt.Errorf("agents: client query: %w", err)
	}
	var reply Envelope
	if err := c.dec.Decode(&reply); err != nil {
		return nil, fmt.Errorf("agents: client reply: %w", err)
	}
	if reply.Type == TypeError {
		return nil, fmt.Errorf("agents: daemon error: %s", reply.Error)
	}
	if reply.Type != TypeRecentReply || reply.ID != req.ID {
		return nil, fmt.Errorf("agents: unexpected reply %q (id %d, want %d)", reply.Type, reply.ID, req.ID)
	}
	return reply.Reports, nil
}

// Close disconnects the client.
func (c *Client) Close() error { return c.conn.Close() }
