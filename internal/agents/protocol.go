// Package agents implements Geomancy's distributed plumbing (§V-A): the
// monitoring agents that watch one storage device each and report access
// telemetry, the control agents that execute data movements on the target
// system, the Interface Daemon — "a networking middleware that allows
// parallel requests to be sent between the target system, Geomancy, and
// internally within Geomancy" — and the Action Checker, the final sanity
// check on proposed movements (§V-H).
//
// Geomancy and the target system are separate entities communicating only
// over the network; the wire protocol is newline-delimited JSON over TCP.
package agents

import (
	"geomancy/internal/replaydb"
	"geomancy/internal/storagesim"
)

// Message types exchanged on the wire.
const (
	// TypeMetrics carries a batch of access reports from a monitoring
	// agent to the Interface Daemon.
	TypeMetrics = "metrics"
	// TypeMetricsAck confirms a telemetry batch was durably stored, so a
	// monitor's Flush has read-your-writes semantics for the engine.
	TypeMetricsAck = "metrics_ack"
	// TypeRegisterControl announces a control agent ready to execute
	// layout updates.
	TypeRegisterControl = "register_control"
	// TypeLayout pushes a new data layout to control agents.
	TypeLayout = "layout"
	// TypeLayoutAck reports the outcome of applying a layout.
	TypeLayoutAck = "layout_ack"
	// TypeRecentQuery asks the daemon for the most recent accesses of a
	// device (empty device = all devices), or of one file when FileID is
	// set.
	TypeRecentQuery = "recent"
	// TypeRecentReply answers a TypeRecentQuery.
	TypeRecentReply = "recent_reply"
	// TypeError reports a protocol-level failure.
	TypeError = "error"
)

// Report is the wire form of one observed access.
type Report struct {
	Time         float64 `json:"time"`
	Workload     int32   `json:"workload"`
	Run          int32   `json:"run"`
	FileID       int64   `json:"file_id"`
	Path         string  `json:"path"`
	Device       string  `json:"device"`
	BytesRead    int64   `json:"rb"`
	BytesWritten int64   `json:"wb"`
	OpenTS       int64   `json:"ots"`
	OpenTMS      int64   `json:"otms"`
	CloseTS      int64   `json:"cts"`
	CloseTMS     int64   `json:"ctms"`
	Throughput   float64 `json:"throughput"`
}

// LayoutEntry is one file→device assignment on the wire.
type LayoutEntry struct {
	FileID int64  `json:"file_id"`
	Device string `json:"device"`
}

// Envelope is the single wire message; Type selects which fields matter.
type Envelope struct {
	Type    string        `json:"type"`
	From    string        `json:"from,omitempty"`
	ID      uint64        `json:"id,omitempty"`
	Reports []Report      `json:"reports,omitempty"`
	Layout  []LayoutEntry `json:"layout,omitempty"`
	Device  string        `json:"device,omitempty"`
	FileID  int64         `json:"file_id,omitempty"`
	N       int           `json:"n,omitempty"`
	Moved   int           `json:"moved,omitempty"`
	Error   string        `json:"error,omitempty"`
}

// ReportFromAccess converts simulator telemetry into a wire report.
func ReportFromAccess(res storagesim.AccessResult, workloadID, run int) Report {
	return Report{
		Time:         res.Start,
		Workload:     int32(workloadID),
		Run:          int32(run),
		FileID:       res.FileID,
		Path:         res.Path,
		Device:       res.Device,
		BytesRead:    res.BytesRead,
		BytesWritten: res.BytesWritten,
		OpenTS:       res.OpenTS,
		OpenTMS:      res.OpenTMS,
		CloseTS:      res.CloseTS,
		CloseTMS:     res.CloseTMS,
		Throughput:   res.Throughput,
	}
}

// ToRecord converts a wire report into a ReplayDB access record.
func (r Report) ToRecord() replaydb.AccessRecord {
	return replaydb.AccessRecord{
		Time:         r.Time,
		Workload:     r.Workload,
		Run:          r.Run,
		FileID:       r.FileID,
		Path:         r.Path,
		Device:       r.Device,
		BytesRead:    r.BytesRead,
		BytesWritten: r.BytesWritten,
		OpenTS:       r.OpenTS,
		OpenTMS:      r.OpenTMS,
		CloseTS:      r.CloseTS,
		CloseTMS:     r.CloseTMS,
		Throughput:   r.Throughput,
	}
}

// ReportFromRecord converts a stored record back to wire form.
func ReportFromRecord(rec replaydb.AccessRecord) Report {
	return Report{
		Time:         rec.Time,
		Workload:     rec.Workload,
		Run:          rec.Run,
		FileID:       rec.FileID,
		Path:         rec.Path,
		Device:       rec.Device,
		BytesRead:    rec.BytesRead,
		BytesWritten: rec.BytesWritten,
		OpenTS:       rec.OpenTS,
		OpenTMS:      rec.OpenTMS,
		CloseTS:      rec.CloseTS,
		CloseTMS:     rec.CloseTMS,
		Throughput:   rec.Throughput,
	}
}
