package agents

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"geomancy/internal/faultnet"
	"geomancy/internal/replaydb"
	"geomancy/internal/telemetry"
)

// fastPolicy keeps retry-path tests quick.
func fastPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		IOTimeout:   2 * time.Second,
	}
}

// ackKillingProxy sits between an agent and the daemon. While armed, it
// severs both sides of a connection the moment the daemon sends bytes back
// (i.e. it delivers the batch but destroys the ack), then disarms.
type ackKillingProxy struct {
	ln     net.Listener
	target string
	armed  atomic.Bool
}

func startAckKillingProxy(t *testing.T, target string) *ackKillingProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &ackKillingProxy{ln: ln, target: target}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			cli, err := ln.Accept()
			if err != nil {
				return
			}
			srv, err := net.Dial("tcp", target)
			if err != nil {
				cli.Close()
				continue
			}
			go func() { io.Copy(srv, cli); srv.Close() }()
			go func() {
				buf := make([]byte, 4096)
				for {
					n, err := srv.Read(buf)
					if err != nil {
						cli.Close()
						return
					}
					if p.armed.CompareAndSwap(true, false) {
						// The daemon processed the batch; its ack dies here.
						srv.Close()
						cli.Close()
						return
					}
					if _, err := cli.Write(buf[:n]); err != nil {
						srv.Close()
						return
					}
				}
			}()
		}
	}()
	return p
}

// TestMonitorReplayDoesNotDuplicateBatch is the regression test for the
// duplicate-telemetry bug: a batch whose ack was lost used to be re-sent
// under a fresh ID, so the daemon stored it twice. Now the replay keeps
// the original ID and the daemon dedupes by (From, ID).
func TestMonitorReplayDoesNotDuplicateBatch(t *testing.T) {
	db, err := replaydb.Open(replaydb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	d := NewDaemon(db)
	reg := telemetry.NewRegistry()
	d.SetMetrics(reg)
	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	proxy := startAckKillingProxy(t, addr)

	m, err := NewMonitor(proxy.ln.Addr().String(), "pic", 4, WithRetryPolicy(fastPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Arm the proxy: the flush's batch reaches the daemon, the ack does not.
	proxy.armed.Store(true)
	for i := 0; i < 4; i++ {
		if err := m.Observe(sampleResult("pic", i), 1, 0); err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
	}
	if m.Pending() != 0 {
		t.Fatalf("pending = %d after flush, want 0", m.Pending())
	}
	if got := db.Len(); got != 4 {
		t.Errorf("db has %d records, want 4 (replayed batch must dedupe)", got)
	}
	if v := reg.Counter(telemetry.MetricDaemonDuplicateBatches).Value(); v == 0 {
		t.Error("duplicate-batch counter is 0; the replay never hit the dedupe path")
	}

	// The next batch must ship under a fresh ID and store normally.
	for i := 4; i < 8; i++ {
		if err := m.Observe(sampleResult("pic", i), 1, 0); err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
	}
	if got := db.Len(); got != 8 {
		t.Errorf("db has %d records after second batch, want 8", got)
	}
}

// TestClientTimesOutOnHungDaemon: a daemon that accepts but never answers
// used to block the engine's training query forever; now the I/O deadline
// turns it into ErrUnavailable within the retry budget.
func TestClientTimesOutOnHungDaemon(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			// Read and drop everything; never reply.
			go io.Copy(io.Discard, conn)
		}
	}()

	pol := fastPolicy()
	pol.MaxAttempts = 2
	pol.IOTimeout = 50 * time.Millisecond
	cl, err := NewClient(ln.Addr().String(), WithRetryPolicy(pol))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	start := time.Now()
	_, err = cl.Recent("", 10)
	if err == nil {
		t.Fatal("query against hung daemon succeeded")
	}
	if !errors.Is(err, ErrUnavailable) {
		t.Errorf("err = %v, want ErrUnavailable", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("query took %v; deadline did not bound the hang", elapsed)
	}
}

// TestClientDrainsStaleReplies: a reply whose ID predates the query (left
// over from an abandoned round trip) must be drained, not returned as the
// answer — the bug that used to desync the stream permanently.
func TestClientDrainsStaleReplies(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		dec := json.NewDecoder(bufio.NewReader(conn))
		enc := json.NewEncoder(conn)
		var req Envelope
		if err := dec.Decode(&req); err != nil {
			return
		}
		// A stale reply from a round trip the client abandoned earlier...
		enc.Encode(Envelope{Type: TypeRecentReply, ID: req.ID - 1, Reports: []Report{
			{Device: "stale", Throughput: 1},
		}})
		// ...then the real answer.
		enc.Encode(Envelope{Type: TypeRecentReply, ID: req.ID, Reports: []Report{
			{Device: "fresh", Throughput: 2},
		}})
	}()

	cl, err := NewClient(ln.Addr().String(), WithRetryPolicy(fastPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	reports, err := cl.Recent("", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].Device != "fresh" {
		t.Errorf("got %+v, want the fresh reply only", reports)
	}
}

// rawControl registers as a control agent over a bare connection so tests
// can inspect the wire bytes the daemon sends.
func rawControl(t *testing.T, addr string) (net.Conn, *json.Decoder, *json.Encoder) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	enc := json.NewEncoder(conn)
	if err := enc.Encode(Envelope{Type: TypeRegisterControl}); err != nil {
		t.Fatal(err)
	}
	return conn, json.NewDecoder(bufio.NewReader(conn)), enc
}

// TestPushLayoutDeterministicWireOrder: layout entries must leave the
// daemon sorted by FileID, not in the map's random iteration order.
func TestPushLayoutDeterministicWireOrder(t *testing.T) {
	d, _, addr := startDaemon(t)
	_, dec, enc := rawControl(t, addr)
	waitFor(t, "control registration", func() bool { return d.ControlCount() == 1 })

	layout := map[int64]string{5: "a", 1: "b", 9: "c", 3: "d", 7: "e"}
	for round := 0; round < 3; round++ {
		errCh := make(chan error, 1)
		go func() {
			_, err := d.PushLayout(layout)
			errCh <- err
		}()
		var env Envelope
		if err := dec.Decode(&env); err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(env.Layout); i++ {
			if env.Layout[i-1].FileID >= env.Layout[i].FileID {
				t.Fatalf("round %d: wire order not sorted by FileID: %+v", round, env.Layout)
			}
		}
		if err := enc.Encode(Envelope{Type: TypeLayoutAck, ID: env.ID}); err != nil {
			t.Fatal(err)
		}
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
}

// TestPushLayoutContactsEveryAgent: one unresponsive agent must not leave
// the others with a stale layout, and the aggregated error must name it.
func TestPushLayoutContactsEveryAgent(t *testing.T) {
	d, _, addr := startDaemon(t)
	d.AckTimeout = 200 * time.Millisecond

	var applied1, applied2 atomic.Int64
	mover := func(ctr *atomic.Int64) Mover {
		return func(fileID int64, device string) (bool, error) {
			ctr.Add(1)
			return true, nil
		}
	}
	c1, err := NewControl(addr, mover(&applied1), WithRetryPolicy(fastPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := NewControl(addr, mover(&applied2), WithRetryPolicy(fastPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// Registers, then never acks.
	rawControl(t, addr)
	waitFor(t, "3 control registrations", func() bool { return d.ControlCount() == 3 })

	moved, outcomes, err := d.PushLayoutOutcomes(map[int64]string{1: "a", 2: "b"})
	if err == nil {
		t.Fatal("push with a silent agent reported success")
	}
	if !errors.Is(err, ErrUnavailable) {
		t.Errorf("err = %v, want ErrUnavailable in the chain", err)
	}
	if len(outcomes) != 3 {
		t.Fatalf("got %d outcomes, want 3", len(outcomes))
	}
	failures := 0
	for _, oc := range outcomes {
		if oc.Err != nil {
			failures++
		}
	}
	if failures != 1 {
		t.Errorf("%d failing outcomes, want exactly the silent agent", failures)
	}
	// Both live agents were contacted despite the failure.
	if applied1.Load() != 2 || applied2.Load() != 2 {
		t.Errorf("live agents applied %d/%d moves, want 2/2 — push must broadcast to all",
			applied1.Load(), applied2.Load())
	}
	if moved != 4 {
		t.Errorf("moved = %d, want 4 (2 files × 2 live agents)", moved)
	}
}

// TestMonitorRedialsAfterDaemonRestart: a monitor whose daemon died holds
// the unacked batch, then redials and replays it when the daemon returns.
func TestMonitorRedialsAfterDaemonRestart(t *testing.T) {
	db, err := replaydb.Open(replaydb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	d1 := NewDaemon(db)
	addr, err := d1.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	pol := fastPolicy()
	pol.MaxAttempts = 2
	m, err := NewMonitor(addr, "pic", 8, WithRetryPolicy(pol), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	for i := 0; i < 3; i++ {
		if err := m.Observe(sampleResult("pic", i), 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 3 {
		t.Fatalf("db has %d records, want 3", db.Len())
	}

	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 3; i < 5; i++ {
		if err := m.Observe(sampleResult("pic", i), 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Flush(); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("flush against dead daemon: err = %v, want ErrUnavailable", err)
	}
	if m.Pending() != 2 {
		t.Fatalf("pending = %d after failed flush, want 2 (batch retained)", m.Pending())
	}

	// Daemon restarts on the same address (fresh process, same DB).
	d2 := NewDaemon(db)
	if _, err := d2.Start(addr); err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer d2.Close()

	if err := m.Flush(); err != nil {
		t.Fatalf("flush after restart: %v", err)
	}
	if m.Pending() != 0 {
		t.Errorf("pending = %d, want 0", m.Pending())
	}
	if db.Len() != 5 {
		t.Errorf("db has %d records, want 5", db.Len())
	}
	if v := reg.Counter(telemetry.MetricAgentReconnectsTotal, telemetry.L("agent", "monitor")).Value(); v == 0 {
		t.Error("reconnect counter is 0; monitor never counted the redial")
	}
}

// TestMonitorSurvivesFaultInjection: with heavy seeded drops on the
// daemon's listener, every flush still lands exactly once.
func TestMonitorSurvivesFaultInjection(t *testing.T) {
	db, err := replaydb.Open(replaydb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	d := NewDaemon(db)
	fn := faultnet.New(faultnet.Config{Seed: 42, DropRate: 0.2})
	d.WrapListener = fn.Listener
	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	reg := telemetry.NewRegistry()
	pol := fastPolicy()
	pol.MaxAttempts = 10
	m, err := NewMonitor(addr, "pic", 4, WithRetryPolicy(pol), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	const total = 40
	for i := 0; i < total; i++ {
		if err := m.Observe(sampleResult("pic", i), 1, 0); err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if db.Len() != total {
		t.Errorf("db has %d records, want %d (no loss, no duplicates)", db.Len(), total)
	}
	if fn.Stats().Drops == 0 {
		t.Error("fault injector dropped nothing; test exercised no faults")
	}
	if v := reg.Counter(telemetry.MetricAgentRetriesTotal, telemetry.L("agent", "monitor")).Value(); v == 0 {
		t.Error("retry counter is 0 despite injected drops")
	}
}
