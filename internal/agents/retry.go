package agents

import (
	"errors"
	"net"
	"time"

	"geomancy/internal/rng"
	"geomancy/internal/telemetry"
)

// ErrUnavailable marks a transport failure that exhausted its retry
// budget: the daemon (or a control agent) is unreachable. Callers running
// in degraded mode match it with errors.Is and keep serving the last-known
// layout instead of aborting.
var ErrUnavailable = errors.New("agents: peer unavailable")

// unavailable wraps err so errors.Is(err, ErrUnavailable) holds while the
// underlying cause stays inspectable.
type unavailableError struct{ err error }

func (e unavailableError) Error() string { return e.err.Error() }
func (e unavailableError) Unwrap() []error {
	return []error{ErrUnavailable, e.err}
}

func markUnavailable(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrUnavailable) {
		return err
	}
	return unavailableError{err: err}
}

// RetryPolicy bounds every agent RPC: per-operation I/O deadlines, and an
// exponential-backoff retry budget with jitter for transient transport
// failures. The zero value selects the defaults.
type RetryPolicy struct {
	// MaxAttempts is the total tries per operation (first attempt
	// included); default 4. 1 disables retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; default 5ms. Each
	// further retry doubles it.
	BaseDelay time.Duration
	// MaxDelay caps the backoff; default 500ms.
	MaxDelay time.Duration
	// Jitter is the uniform random fraction added to each backoff
	// (0 ≤ Jitter ≤ 1); default 0.2. Jitter decorrelates the retry storms
	// of many agents reconnecting to one daemon.
	Jitter float64
	// IOTimeout is the per-attempt read/write deadline on the socket;
	// default 5s. It is what turns a hung peer into a retryable error.
	IOTimeout time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 5 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 500 * time.Millisecond
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	if p.IOTimeout <= 0 {
		p.IOTimeout = 5 * time.Second
	}
	return p
}

// backoff computes the sleep before retry attempt (1-based), with jitter
// drawn from rng (nil rng = no jitter, for deterministic tests).
func (p RetryPolicy) backoff(attempt int, jitter *rng.RNG) time.Duration {
	d := p.BaseDelay
	for i := 1; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	if jitter != nil && p.Jitter > 0 {
		d += time.Duration(float64(d) * p.Jitter * jitter.Float64())
	}
	return d
}

// DialFunc opens a connection to the daemon; tests substitute fault
// injectors, the default is net.Dial.
type DialFunc func(network, addr string) (net.Conn, error)

// options collects the knobs shared by every agent constructor.
type options struct {
	dial   DialFunc
	policy RetryPolicy
	reg    *telemetry.Registry
}

func buildOptions(opts []Option) options {
	o := options{dial: net.Dial, policy: RetryPolicy{}.withDefaults()}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// Option customizes an agent (Monitor, MonitorSet, Client, Control).
type Option func(*options)

// WithDialer substitutes the transport used to reach the daemon (fault
// injection, in-memory pipes, proxies).
func WithDialer(d DialFunc) Option {
	return func(o *options) {
		if d != nil {
			o.dial = d
		}
	}
}

// WithRetryPolicy overrides the default deadlines and retry budget.
func WithRetryPolicy(p RetryPolicy) Option {
	return func(o *options) { o.policy = p.withDefaults() }
}

// WithMetrics reports the agent's retries, reconnects, and ack latency
// through reg.
func WithMetrics(reg *telemetry.Registry) Option {
	return func(o *options) { o.reg = reg }
}

// agentMetrics bundles the fault-tolerance instrumentation of one agent;
// nil handles no-op.
type agentMetrics struct {
	retries    *telemetry.Counter
	reconnects *telemetry.Counter
	ackLatency *telemetry.Histogram
}

// metricsFor resolves the handles for one agent kind ("monitor",
// "client", "control") from reg; a nil registry yields no-op handles.
func metricsFor(reg *telemetry.Registry, kind string) agentMetrics {
	return agentMetrics{
		retries:    reg.Counter(telemetry.MetricAgentRetriesTotal, telemetry.L("agent", kind)),
		reconnects: reg.Counter(telemetry.MetricAgentReconnectsTotal, telemetry.L("agent", kind)),
		ackLatency: reg.Histogram(telemetry.MetricAgentAckSeconds, telemetry.DefDurationBuckets, telemetry.L("agent", kind)),
	}
}
