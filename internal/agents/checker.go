package agents

import (
	"geomancy/internal/rng"
	"geomancy/internal/storagesim"
)

// Candidate pairs a storage device with the DRL engine's predicted
// throughput for placing a file there.
type Candidate struct {
	Device    string
	Predicted float64
}

// Validator reports whether a device can currently receive a file of the
// given size; a non-nil error names the reason.
type Validator func(device string, size int64) error

// ActionChecker is "the last sanity check for file movements in case
// permissions or availability changes in the system" (§V-H). It removes
// invalid storage devices from the candidate list, picks the destination
// with the highest predicted throughput, and falls back to a random
// movement when every candidate is invalid — the paper's mechanism for
// keeping the availability picture fresh and continuing to learn.
type ActionChecker struct {
	// Rng drives the random fallback (and must be non-nil).
	Rng *rng.RNG
	// AllDevices is the universe the random fallback draws from.
	AllDevices []string
}

// NewActionChecker returns a checker drawing random fallbacks from devices.
func NewActionChecker(r *rng.RNG, devices []string) *ActionChecker {
	return &ActionChecker{Rng: r, AllDevices: devices}
}

// Filter returns the candidates that pass validation for a file of size
// bytes, preserving order.
func (a *ActionChecker) Filter(cands []Candidate, size int64, valid Validator) []Candidate {
	out := make([]Candidate, 0, len(cands))
	for _, c := range cands {
		if valid != nil && valid(c.Device, size) != nil {
			continue
		}
		out = append(out, c)
	}
	return out
}

// Choose picks the destination for a file: the valid candidate with the
// highest predicted throughput, or a uniformly random device when all
// candidates are invalid. random reports whether the fallback fired;
// ok is false only when there is nowhere at all to go.
func (a *ActionChecker) Choose(cands []Candidate, size int64, valid Validator) (device string, random, ok bool) {
	passing := a.Filter(cands, size, valid)
	if len(passing) > 0 {
		best := passing[0]
		for _, c := range passing[1:] {
			if c.Predicted > best.Predicted {
				best = c
			}
		}
		return best.Device, false, true
	}
	// "In case all storage devices are invalid, a random movement is
	// performed" (§V-H).
	if len(a.AllDevices) == 0 {
		return "", false, false
	}
	return a.AllDevices[a.Rng.Intn(len(a.AllDevices))], true, true
}

// ClusterValidator adapts a simulated cluster into a Validator: a device
// is valid when it exists, is available, is writable, and has room.
func ClusterValidator(c *storagesim.Cluster) Validator {
	return func(device string, size int64) error {
		d := c.Device(device)
		if d == nil {
			return errUnknownDevice(device)
		}
		if !d.Available {
			return errUnavailable(device)
		}
		if d.ReadOnly {
			return errReadOnly(device)
		}
		if d.Free() < size {
			return errFull(device)
		}
		return nil
	}
}

type checkerErr string

func (e checkerErr) Error() string { return string(e) }

func errUnknownDevice(d string) error { return checkerErr("agents: unknown device " + d) }
func errUnavailable(d string) error   { return checkerErr("agents: device unavailable " + d) }
func errReadOnly(d string) error      { return checkerErr("agents: device read-only " + d) }
func errFull(d string) error          { return checkerErr("agents: device full " + d) }
