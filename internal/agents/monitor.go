package agents

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"geomancy/internal/rng"
	"geomancy/internal/storagesim"
)

// Monitor is a monitoring agent. One monitor watches one storage device —
// "each monitoring agent only measures the performance of one storage
// device to allow for parallel data collection" (§V-A) — and ships access
// telemetry to the Interface Daemon in batches, because "Geomancy captures
// groups of accesses as one access to lower the overhead of transferring
// the performance data".
//
// Failure model: a batch keeps its sequence ID until the daemon
// acknowledges it. Transport failures (write error, ack timeout, dropped
// connection) redial and replay the batch under the *same* ID; the daemon
// deduplicates by (From, ID), so a retry whose original delivery actually
// succeeded is acknowledged without storing duplicates.
type Monitor struct {
	// Device is the mount this agent watches; accesses on other devices
	// are ignored.
	Device string
	// BatchSize is the number of reports shipped per message.
	BatchSize int

	addr string
	opts options
	met  agentMetrics
	rng  *rng.RNG // backoff jitter only; never affects behaviour

	mu        sync.Mutex
	conn      net.Conn
	bw        *bufio.Writer
	enc       *json.Encoder
	dec       *json.Decoder
	connected bool // a connection has succeeded before (reconnect metric)
	next      uint64
	batchID   uint64 // ID of the buffered batch; 0 = unassigned
	batch     []Report
}

// NewMonitor dials the Interface Daemon at addr and returns an agent for
// the named device. batchSize ≤ 0 defaults to 32.
//
//geomancy:allow ctxflow constructor dial is deadline-bounded by RetryPolicy.IOTimeout; no caller context exists yet
func NewMonitor(addr, device string, batchSize int, opts ...Option) (*Monitor, error) {
	if batchSize <= 0 {
		batchSize = 32
	}
	o := buildOptions(opts)
	m := &Monitor{
		Device:    device,
		BatchSize: batchSize,
		addr:      addr,
		opts:      o,
		met:       metricsFor(o.reg, "monitor"),
		rng:       rng.New(int64(len(device)) + 42),
	}
	if err := m.ensureConnLocked(); err != nil {
		return nil, fmt.Errorf("agents: monitor dial: %w", err)
	}
	return m, nil
}

// ensureConnLocked (re)establishes the daemon connection. Callers hold
// m.mu (or are the constructor).
func (m *Monitor) ensureConnLocked() error {
	if m.conn != nil {
		return nil
	}
	//geomancy:allow locksafe connection-serialization lock; the dial is deadline-bounded by RetryPolicy.IOTimeout
	conn, err := m.opts.dial("tcp", m.addr)
	if err != nil {
		return err
	}
	m.conn = conn
	m.bw = bufio.NewWriter(conn)
	m.enc = json.NewEncoder(m.bw)
	m.dec = json.NewDecoder(bufio.NewReader(conn))
	if m.connected {
		m.met.reconnects.Inc()
	}
	m.connected = true
	return nil
}

// dropConnLocked discards a broken connection so the next attempt
// redials. A fresh connection also guarantees a clean stream position: no
// stale acks from timed-out round trips linger in the read buffer.
func (m *Monitor) dropConnLocked() {
	if m.conn != nil {
		m.conn.Close()
		m.conn = nil
	}
}

// Observe records one access. Accesses on other devices are ignored, so a
// single workload callback can fan out to the per-device agents. The batch
// is shipped when full.
func (m *Monitor) Observe(res storagesim.AccessResult, workloadID, run int) error {
	if res.Device != m.Device {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batch = append(m.batch, ReportFromAccess(res, workloadID, run))
	if len(m.batch) >= m.BatchSize {
		return m.flushLocked()
	}
	return nil
}

// Pending returns the number of buffered, unshipped reports.
func (m *Monitor) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.batch)
}

// Flush ships any buffered reports immediately.
func (m *Monitor) Flush() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.flushLocked()
}

func (m *Monitor) flushLocked() error {
	if len(m.batch) == 0 {
		return nil
	}
	// The batch ID is assigned once and survives retries: the daemon
	// dedupes replays by (From, ID).
	if m.batchID == 0 {
		m.next++
		m.batchID = m.next
	}
	env := Envelope{Type: TypeMetrics, ID: m.batchID, From: m.Device, Reports: m.batch}
	var lastErr error
	for attempt := 1; attempt <= m.opts.policy.MaxAttempts; attempt++ {
		if attempt > 1 {
			m.met.retries.Inc()
			time.Sleep(m.opts.policy.backoff(attempt-1, m.rng))
		}
		if err := m.ensureConnLocked(); err != nil {
			lastErr = err
			continue
		}
		err := m.shipLocked(env)
		if err == nil {
			m.batch = m.batch[:0]
			m.batchID = 0
			return nil
		}
		if isFatalAck(err) {
			// The daemon answered; the failure is its storage layer, not
			// the transport. Keep the batch (and its ID) for the caller
			// to retry; do not burn the retry budget on it.
			return fmt.Errorf("agents: monitor %s: %w", m.Device, err)
		}
		lastErr = err
		m.dropConnLocked()
	}
	return markUnavailable(fmt.Errorf("agents: monitor %s flush: %w", m.Device, lastErr))
}

// fatalAckError marks a daemon-level (non-transport) rejection.
type fatalAckError struct{ err error }

func (e fatalAckError) Error() string { return e.err.Error() }
func (e fatalAckError) Unwrap() error { return e.err }

func isFatalAck(err error) bool {
	_, ok := err.(fatalAckError)
	return ok
}

// shipLocked performs one write-batch/read-ack round trip under the
// policy's I/O deadline.
func (m *Monitor) shipLocked(env Envelope) error {
	deadline := time.Now().Add(m.opts.policy.IOTimeout) //geomancy:nondeterministic I/O deadline computation; never reaches wire or layout output
	if err := m.conn.SetDeadline(deadline); err != nil {
		return err
	}
	start := time.Now() //geomancy:nondeterministic telemetry timestamp for the ack-latency histogram
	//geomancy:allow locksafe connection-serialization lock; the round trip is deadline-bounded by RetryPolicy.IOTimeout
	if err := m.enc.Encode(env); err != nil {
		return fmt.Errorf("write batch: %w", err)
	}
	//geomancy:allow locksafe connection-serialization lock; the round trip is deadline-bounded by RetryPolicy.IOTimeout
	if err := m.bw.Flush(); err != nil {
		return fmt.Errorf("write batch: %w", err)
	}
	// Wait for the daemon's ack so that a completed Flush guarantees the
	// telemetry is queryable (the engine trains right after flushing).
	// Acks for earlier IDs (replays of round trips whose ack was lost)
	// are drained, never treated as answers to this batch.
	for {
		var ack Envelope
		//geomancy:allow locksafe connection-serialization lock; the round trip is deadline-bounded by RetryPolicy.IOTimeout
		if err := m.dec.Decode(&ack); err != nil {
			return fmt.Errorf("read ack: %w", err)
		}
		switch {
		case ack.Type == TypeError:
			return fatalAckError{fmt.Errorf("daemon error: %s", ack.Error)}
		case ack.Type == TypeMetricsAck && ack.ID < env.ID:
			continue // stale ack from a superseded round trip
		case ack.Type != TypeMetricsAck || ack.ID != env.ID:
			return fmt.Errorf("unexpected ack %q (id %d, want %d)", ack.Type, ack.ID, env.ID)
		}
		m.met.ackLatency.Observe(time.Since(start).Seconds()) //geomancy:nondeterministic telemetry timestamp for the ack-latency histogram
		return nil
	}
}

// Close flushes and closes the connection.
func (m *Monitor) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	err := m.flushLocked()
	if m.conn != nil {
		if cerr := m.conn.Close(); err == nil {
			err = cerr
		}
		m.conn = nil
	}
	return err
}

// MonitorSet bundles one monitor per device behind a single Observer
// callback, mirroring how agents sit on every mount of the target system.
type MonitorSet struct {
	monitors []*Monitor
}

// NewMonitorSet dials one monitoring agent per device name.
func NewMonitorSet(addr string, devices []string, batchSize int, opts ...Option) (*MonitorSet, error) {
	set := &MonitorSet{}
	for _, dev := range devices {
		m, err := NewMonitor(addr, dev, batchSize, opts...)
		if err != nil {
			set.Close()
			return nil, err
		}
		set.monitors = append(set.monitors, m)
	}
	return set, nil
}

// Observe fans the access out to the device's agent.
func (s *MonitorSet) Observe(res storagesim.AccessResult, workloadID, run int) error {
	for _, m := range s.monitors {
		if err := m.Observe(res, workloadID, run); err != nil {
			return err
		}
	}
	return nil
}

// Flush flushes every agent.
func (s *MonitorSet) Flush() error {
	for _, m := range s.monitors {
		if err := m.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Pending returns the total buffered, unshipped reports across agents.
func (s *MonitorSet) Pending() int {
	n := 0
	for _, m := range s.monitors {
		n += m.Pending()
	}
	return n
}

// Close closes every agent, returning the first error.
func (s *MonitorSet) Close() error {
	var first error
	for _, m := range s.monitors {
		if err := m.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
