package agents

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"geomancy/internal/storagesim"
)

// Monitor is a monitoring agent. One monitor watches one storage device —
// "each monitoring agent only measures the performance of one storage
// device to allow for parallel data collection" (§V-A) — and ships access
// telemetry to the Interface Daemon in batches, because "Geomancy captures
// groups of accesses as one access to lower the overhead of transferring
// the performance data".
type Monitor struct {
	// Device is the mount this agent watches; accesses on other devices
	// are ignored.
	Device string
	// BatchSize is the number of reports shipped per message.
	BatchSize int

	mu    sync.Mutex
	conn  net.Conn
	bw    *bufio.Writer
	enc   *json.Encoder
	dec   *json.Decoder
	next  uint64
	batch []Report
}

// NewMonitor dials the Interface Daemon at addr and returns an agent for
// the named device. batchSize ≤ 0 defaults to 32.
func NewMonitor(addr, device string, batchSize int) (*Monitor, error) {
	if batchSize <= 0 {
		batchSize = 32
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("agents: monitor dial: %w", err)
	}
	bw := bufio.NewWriter(conn)
	return &Monitor{
		Device:    device,
		BatchSize: batchSize,
		conn:      conn,
		bw:        bw,
		enc:       json.NewEncoder(bw),
		dec:       json.NewDecoder(bufio.NewReader(conn)),
	}, nil
}

// Observe records one access. Accesses on other devices are ignored, so a
// single workload callback can fan out to the per-device agents. The batch
// is shipped when full.
func (m *Monitor) Observe(res storagesim.AccessResult, workloadID, run int) error {
	if res.Device != m.Device {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batch = append(m.batch, ReportFromAccess(res, workloadID, run))
	if len(m.batch) >= m.BatchSize {
		return m.flushLocked()
	}
	return nil
}

// Pending returns the number of buffered, unshipped reports.
func (m *Monitor) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.batch)
}

// Flush ships any buffered reports immediately.
func (m *Monitor) Flush() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.flushLocked()
}

func (m *Monitor) flushLocked() error {
	if len(m.batch) == 0 {
		return nil
	}
	m.next++
	env := Envelope{Type: TypeMetrics, ID: m.next, From: m.Device, Reports: m.batch}
	if err := m.enc.Encode(env); err != nil {
		return fmt.Errorf("agents: monitor %s flush: %w", m.Device, err)
	}
	if err := m.bw.Flush(); err != nil {
		return fmt.Errorf("agents: monitor %s flush: %w", m.Device, err)
	}
	// Wait for the daemon's ack so that a completed Flush guarantees the
	// telemetry is queryable (the engine trains right after flushing).
	var ack Envelope
	if err := m.dec.Decode(&ack); err != nil {
		return fmt.Errorf("agents: monitor %s ack: %w", m.Device, err)
	}
	if ack.Type == TypeError {
		return fmt.Errorf("agents: monitor %s: daemon error: %s", m.Device, ack.Error)
	}
	if ack.Type != TypeMetricsAck || ack.ID != m.next {
		return fmt.Errorf("agents: monitor %s: unexpected ack %q (id %d, want %d)", m.Device, ack.Type, ack.ID, m.next)
	}
	m.batch = m.batch[:0]
	return nil
}

// Close flushes and closes the connection.
func (m *Monitor) Close() error {
	if err := m.Flush(); err != nil {
		m.conn.Close()
		return err
	}
	return m.conn.Close()
}

// MonitorSet bundles one monitor per device behind a single Observer
// callback, mirroring how agents sit on every mount of the target system.
type MonitorSet struct {
	monitors []*Monitor
}

// NewMonitorSet dials one monitoring agent per device name.
func NewMonitorSet(addr string, devices []string, batchSize int) (*MonitorSet, error) {
	set := &MonitorSet{}
	for _, dev := range devices {
		m, err := NewMonitor(addr, dev, batchSize)
		if err != nil {
			set.Close()
			return nil, err
		}
		set.monitors = append(set.monitors, m)
	}
	return set, nil
}

// Observe fans the access out to the device's agent.
func (s *MonitorSet) Observe(res storagesim.AccessResult, workloadID, run int) error {
	for _, m := range s.monitors {
		if err := m.Observe(res, workloadID, run); err != nil {
			return err
		}
	}
	return nil
}

// Flush flushes every agent.
func (s *MonitorSet) Flush() error {
	for _, m := range s.monitors {
		if err := m.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Close closes every agent, returning the first error.
func (s *MonitorSet) Close() error {
	var first error
	for _, m := range s.monitors {
		if err := m.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
