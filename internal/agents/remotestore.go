package agents

import (
	"sync"

	"geomancy/internal/replaydb"
)

// RemoteStore is a core.TelemetryStore served over the Interface Daemon's
// wire protocol: the DRL engine's training-data path of Fig. 2, where
// "the DRL engine requests training data from the ReplayDB via the
// Interface Daemon" (§V-E). It lets the engine run in a separate process
// from the database.
//
// The TelemetryStore interface has no error returns (the local DB cannot
// fail); network failures therefore surface as empty results, with the
// last error retained for inspection via Err.
type RemoteStore struct {
	mu      sync.Mutex
	client  *Client
	lastErr error
}

// NewRemoteStore wraps a daemon client.
func NewRemoteStore(client *Client) *RemoteStore {
	return &RemoteStore{client: client}
}

// DialRemoteStore connects a fresh client to the daemon at addr.
func DialRemoteStore(addr string, opts ...Option) (*RemoteStore, error) {
	cl, err := NewClient(addr, opts...)
	if err != nil {
		return nil, err
	}
	return NewRemoteStore(cl), nil
}

// RecentByDevice implements core.TelemetryStore over the wire.
func (r *RemoteStore) RecentByDevice(device string, n int) []replaydb.AccessRecord {
	reports, err := r.client.Recent(device, n)
	if err != nil {
		r.setErr(err)
		return nil
	}
	return toRecords(reports)
}

// RecentByFile implements core.TelemetryStore over the wire.
func (r *RemoteStore) RecentByFile(fileID int64, n int) []replaydb.AccessRecord {
	reports, err := r.client.RecentByFile(fileID, n)
	if err != nil {
		r.setErr(err)
		return nil
	}
	return toRecords(reports)
}

func toRecords(reports []Report) []replaydb.AccessRecord {
	if len(reports) == 0 {
		return nil
	}
	out := make([]replaydb.AccessRecord, len(reports))
	for i, rep := range reports {
		out[i] = rep.ToRecord()
	}
	return out
}

func (r *RemoteStore) setErr(err error) {
	r.mu.Lock()
	r.lastErr = err
	r.mu.Unlock()
}

// Err returns the most recent transport error, if any, and clears it.
func (r *RemoteStore) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	err := r.lastErr
	r.lastErr = nil
	return err
}

// Close releases the underlying client connection.
func (r *RemoteStore) Close() error { return r.client.Close() }
