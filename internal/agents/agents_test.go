package agents

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"geomancy/internal/replaydb"
	"geomancy/internal/rng"
	"geomancy/internal/storagesim"
	"geomancy/internal/trace"
)

// startDaemon spins up a daemon on a loopback port.
func startDaemon(t *testing.T) (*Daemon, *replaydb.DB, string) {
	t.Helper()
	db, err := replaydb.Open(replaydb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDaemon(db)
	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		d.Close()
		db.Close()
	})
	return d, db, addr
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func sampleResult(dev string, i int) storagesim.AccessResult {
	return storagesim.AccessResult{
		FileID:     int64(i + 1),
		Path:       "/belle2/f.root",
		Device:     dev,
		BytesRead:  1000,
		Start:      float64(i),
		End:        float64(i) + 0.5,
		OpenTS:     int64(i),
		CloseTS:    int64(i),
		CloseTMS:   500,
		Throughput: 2000,
	}
}

func TestMonitorShipsBatches(t *testing.T) {
	_, db, addr := startDaemon(t)
	m, err := NewMonitor(addr, "pic", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	for i := 0; i < 3; i++ {
		if err := m.Observe(sampleResult("pic", i), 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	if m.Pending() != 3 {
		t.Errorf("pending = %d, want 3 (below batch size)", m.Pending())
	}
	// Fourth access fills the batch and ships it.
	if err := m.Observe(sampleResult("pic", 3), 1, 0); err != nil {
		t.Fatal(err)
	}
	if m.Pending() != 0 {
		t.Errorf("pending = %d after batch flush, want 0", m.Pending())
	}
	waitFor(t, "daemon to store batch", func() bool { return db.Len() == 4 })

	// Accesses on other devices are ignored.
	if err := m.Observe(sampleResult("file0", 9), 1, 0); err != nil {
		t.Fatal(err)
	}
	if m.Pending() != 0 {
		t.Error("monitor buffered an access for a foreign device")
	}
}

func TestMonitorFlushAndRecordFidelity(t *testing.T) {
	_, db, addr := startDaemon(t)
	m, err := NewMonitor(addr, "var", 100)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	res := sampleResult("var", 7)
	if err := m.Observe(res, 2, 5); err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "record stored", func() bool { return db.Len() == 1 })
	rec := db.All()[0]
	if rec.Device != "var" || rec.FileID != 8 || rec.Workload != 2 || rec.Run != 5 {
		t.Errorf("stored record = %+v", rec)
	}
	if rec.Throughput != res.Throughput || rec.CloseTMS != res.CloseTMS {
		t.Errorf("telemetry mangled: %+v", rec)
	}
}

func TestMonitorSetFansOut(t *testing.T) {
	_, db, addr := startDaemon(t)
	set, err := NewMonitorSet(addr, []string{"pic", "var"}, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	set.Observe(sampleResult("pic", 0), 1, 0)
	set.Observe(sampleResult("var", 1), 1, 0)
	set.Observe(sampleResult("file0", 2), 1, 0) // nobody watches file0
	if err := set.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "both records stored", func() bool { return db.Len() == 2 })
	devs := map[string]bool{}
	for _, r := range db.All() {
		devs[r.Device] = true
	}
	if !devs["pic"] || !devs["var"] || devs["file0"] {
		t.Errorf("stored devices = %v", devs)
	}
}

func TestControlAppliesLayout(t *testing.T) {
	d, _, addr := startDaemon(t)

	var mu sync.Mutex
	location := map[int64]string{1: "pic", 2: "pic", 3: "file0"}
	mover := func(id int64, dev string) (bool, error) {
		mu.Lock()
		defer mu.Unlock()
		if location[id] == dev {
			return false, nil
		}
		location[id] = dev
		return true, nil
	}
	ctrl, err := NewControl(addr, mover)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	waitFor(t, "control registration", func() bool { return d.ControlCount() == 1 })

	moved, err := d.PushLayout(map[int64]string{1: "file0", 2: "pic", 3: "var"})
	if err != nil {
		t.Fatal(err)
	}
	if moved != 2 {
		t.Errorf("moved = %d, want 2 (file 2 already in place)", moved)
	}
	mu.Lock()
	if location[1] != "file0" || location[3] != "var" {
		t.Errorf("layout not applied: %v", location)
	}
	mu.Unlock()
	if ctrl.Applied() != 2 {
		t.Errorf("Applied = %d, want 2", ctrl.Applied())
	}
}

func TestControlReportsMoverErrors(t *testing.T) {
	d, _, addr := startDaemon(t)
	mover := func(id int64, dev string) (bool, error) {
		if id == 2 {
			return false, fmt.Errorf("disk on fire")
		}
		return true, nil
	}
	ctrl, err := NewControl(addr, mover)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	waitFor(t, "control registration", func() bool { return d.ControlCount() == 1 })

	moved, err := d.PushLayout(map[int64]string{1: "a", 2: "b", 3: "c"})
	if err == nil {
		t.Fatal("PushLayout should surface the mover error")
	}
	_ = moved
	// The other files still moved.
	if ctrl.Applied() != 2 {
		t.Errorf("Applied = %d, want 2 despite one failure", ctrl.Applied())
	}
}

func TestPushLayoutWithoutControls(t *testing.T) {
	d, _, _ := startDaemon(t)
	if _, err := d.PushLayout(map[int64]string{1: "x"}); err == nil {
		t.Error("PushLayout with no control agents should error")
	}
}

func TestControlRequiresMover(t *testing.T) {
	if _, err := NewControl("127.0.0.1:1", nil); err == nil {
		t.Error("nil mover should be rejected")
	}
}

func TestClientRecentQuery(t *testing.T) {
	_, db, addr := startDaemon(t)
	for i := 0; i < 10; i++ {
		dev := "pic"
		if i%2 == 0 {
			dev = "var"
		}
		db.AppendAccess(replaydb.AccessRecord{Time: float64(i), Device: dev, FileID: int64(i), Throughput: float64(i * 100)})
	}
	cl, err := NewClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	reports, err := cl.Recent("pic", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("got %d reports, want 3", len(reports))
	}
	if reports[0].Time != 5 || reports[2].Time != 9 {
		t.Errorf("wrong window: %v .. %v", reports[0].Time, reports[2].Time)
	}

	all, err := cl.Recent("", 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 10 {
		t.Errorf("all-device query returned %d, want 10", len(all))
	}
	// Sequential queries on one connection keep working.
	again, err := cl.Recent("var", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 2 {
		t.Errorf("second query returned %d, want 2", len(again))
	}
}

func TestDaemonRejectsUnknownType(t *testing.T) {
	_, _, addr := startDaemon(t)
	cl, err := NewClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Hand-craft a bogus request through the client's encoder by asking
	// for a type the daemon does not know: easiest is to dial raw.
	cl.mu.Lock()
	cl.enc.Encode(Envelope{Type: "bogus"})
	cl.bw.Flush()
	var reply Envelope
	if err := cl.dec.Decode(&reply); err != nil {
		cl.mu.Unlock()
		t.Fatal(err)
	}
	cl.mu.Unlock()
	if reply.Type != TypeError {
		t.Errorf("reply = %+v, want error", reply)
	}
}

func TestActionCheckerChoosesBest(t *testing.T) {
	ac := NewActionChecker(rng.New(1), []string{"a", "b", "c"})
	cands := []Candidate{{"a", 1}, {"b", 5}, {"c", 3}}
	dev, random, ok := ac.Choose(cands, 0, nil)
	if !ok || random || dev != "b" {
		t.Errorf("Choose = %q random=%v ok=%v, want b/false/true", dev, random, ok)
	}
}

func TestActionCheckerFiltersInvalid(t *testing.T) {
	ac := NewActionChecker(rng.New(2), []string{"a", "b"})
	valid := func(dev string, size int64) error {
		if dev == "b" {
			return fmt.Errorf("b is read-only")
		}
		return nil
	}
	cands := []Candidate{{"a", 1}, {"b", 99}}
	dev, random, ok := ac.Choose(cands, 0, valid)
	if !ok || random || dev != "a" {
		t.Errorf("Choose = %q random=%v, want a/false", dev, random)
	}
	got := ac.Filter(cands, 0, valid)
	if len(got) != 1 || got[0].Device != "a" {
		t.Errorf("Filter = %v", got)
	}
}

func TestActionCheckerRandomFallback(t *testing.T) {
	ac := NewActionChecker(rng.New(3), []string{"x", "y", "z"})
	invalid := func(string, int64) error { return fmt.Errorf("nope") }
	seen := map[string]bool{}
	for i := 0; i < 60; i++ {
		dev, random, ok := ac.Choose([]Candidate{{"x", 1}}, 0, invalid)
		if !ok || !random {
			t.Fatalf("fallback not taken: %q %v %v", dev, random, ok)
		}
		seen[dev] = true
	}
	if len(seen) < 2 {
		t.Errorf("random fallback not exploring: saw %v", seen)
	}
}

func TestActionCheckerNowhereToGo(t *testing.T) {
	ac := NewActionChecker(rng.New(4), nil)
	if _, _, ok := ac.Choose(nil, 0, nil); ok {
		t.Error("no candidates and no devices should report !ok")
	}
}

func TestClusterValidator(t *testing.T) {
	c := storagesim.NewBluesky(5)
	v := ClusterValidator(c)
	if err := v("file0", 1000); err != nil {
		t.Errorf("healthy device rejected: %v", err)
	}
	if err := v("nodev", 0); err == nil {
		t.Error("unknown device accepted")
	}
	c.SetAvailable("pic", false)
	if err := v("pic", 0); err == nil {
		t.Error("unavailable device accepted")
	}
	c.SetReadOnly("var", true)
	if err := v("var", 0); err == nil {
		t.Error("read-only device accepted")
	}
	if err := v("tmp", int64(5e18)); err == nil {
		t.Error("oversized placement accepted")
	}
}

// End-to-end: workload accesses flow through monitoring agents into the
// ReplayDB while a control agent applies a layout mid-stream.
func TestAgentsEndToEnd(t *testing.T) {
	d, db, addr := startDaemon(t)
	cluster := storagesim.NewBluesky(6)
	files := trace.BelleFileSet(6)
	for i, f := range files {
		dev := cluster.DeviceNames()[i%6]
		if err := cluster.PlaceFile(f.ID, f.Path, f.Size, dev); err != nil {
			t.Fatal(err)
		}
	}
	set, err := NewMonitorSet(addr, cluster.DeviceNames(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	ctrl, err := NewControl(addr, func(id int64, dev string) (bool, error) {
		mv, err := cluster.Move(id, dev)
		if err != nil {
			return false, err
		}
		return mv.From != mv.To, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	waitFor(t, "control registration", func() bool { return d.ControlCount() == 1 })

	for i := 0; i < 100; i++ {
		f := files[i%len(files)]
		res, err := cluster.Access(f.ID, f.Size/2, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := set.Observe(res, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := set.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "all telemetry stored", func() bool { return db.Len() == 100 })

	moved, err := d.PushLayout(map[int64]string{files[0].ID: "file0", files[1].ID: "file0"})
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Error("push moved nothing")
	}
	layout := cluster.Layout()
	if layout[files[0].ID] != "file0" || layout[files[1].ID] != "file0" {
		t.Errorf("layout not applied: %v", layout)
	}
}

func TestRemoteStoreServesTelemetry(t *testing.T) {
	_, db, addr := startDaemon(t)
	for i := 0; i < 20; i++ {
		dev := "pic"
		if i%2 == 0 {
			dev = "var"
		}
		db.AppendAccess(replaydb.AccessRecord{Time: float64(i), Device: dev, FileID: int64(i%4 + 1), Throughput: float64(i)})
	}
	store, err := DialRemoteStore(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	byDev := store.RecentByDevice("pic", 5)
	if len(byDev) != 5 {
		t.Fatalf("RecentByDevice = %d records, want 5", len(byDev))
	}
	for _, r := range byDev {
		if r.Device != "pic" {
			t.Fatalf("wrong device %q", r.Device)
		}
	}
	byFile := store.RecentByFile(2, 100)
	if len(byFile) != 5 {
		t.Fatalf("RecentByFile = %d records, want 5", len(byFile))
	}
	for i := 1; i < len(byFile); i++ {
		if byFile[i].Time < byFile[i-1].Time {
			t.Fatal("records out of order")
		}
	}
	if err := store.Err(); err != nil {
		t.Errorf("unexpected transport error: %v", err)
	}
}

func TestRemoteStoreSurfacesTransportErrors(t *testing.T) {
	d, _, addr := startDaemon(t)
	store, err := DialRemoteStore(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	d.Close() // kill the daemon under the store
	if got := store.RecentByDevice("pic", 5); got != nil {
		t.Errorf("dead daemon returned records: %v", got)
	}
	if err := store.Err(); err == nil {
		t.Error("transport error not retained")
	}
	if err := store.Err(); err != nil {
		t.Error("Err should clear after reading")
	}
}
