package agents

import (
	"bytes"
	"encoding/json"
	"log"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"geomancy/internal/replaydb"
	"geomancy/internal/telemetry"
)

func newTestDB(t *testing.T) *replaydb.DB {
	t.Helper()
	db, err := replaydb.Open(replaydb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// registerRawControl dials the daemon and registers as a control agent
// without an ack loop, so layout pushes to it hang until the ack timeout.
func registerRawControl(t *testing.T, d *Daemon, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if err := json.NewEncoder(conn).Encode(Envelope{Type: TypeRegisterControl}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "raw control registration", func() bool { return d.ControlCount() == 1 })
	return conn
}

func TestPushLayoutAckTimeout(t *testing.T) {
	d, _, addr := startDaemon(t)
	d.AckTimeout = 50 * time.Millisecond
	registerRawControl(t, d, addr)

	start := time.Now()
	_, err := d.PushLayout(map[int64]string{1: "pic"})
	if err == nil {
		t.Fatal("PushLayout should time out when the control agent never acks")
	}
	if !strings.Contains(err.Error(), "timed out") {
		t.Errorf("error = %v, want ack timeout", err)
	}
	if elapsed := time.Since(start); elapsed < d.AckTimeout {
		t.Errorf("returned after %v, before the %v ack timeout", elapsed, d.AckTimeout)
	}
}

func TestPushLayoutErrorAck(t *testing.T) {
	d, _, addr := startDaemon(t)
	conn := registerRawControl(t, d, addr)

	// Ack every layout push with an error, like a control agent whose
	// mover failed.
	go func() {
		dec := json.NewDecoder(conn)
		enc := json.NewEncoder(conn)
		var env Envelope
		for dec.Decode(&env) == nil {
			if env.Type == TypeLayout {
				enc.Encode(Envelope{Type: TypeLayoutAck, Error: "mover: disk on fire"})
			}
		}
	}()
	_, err := d.PushLayout(map[int64]string{1: "pic"})
	if err == nil || !strings.Contains(err.Error(), "disk on fire") {
		t.Errorf("error = %v, want the control agent's mover error", err)
	}
}

func TestDaemonMetrics(t *testing.T) {
	db := newTestDB(t)
	d := NewDaemon(db)
	d.SetMetrics(telemetry.NewRegistry())
	reg := telemetry.NewRegistry()
	d.SetMetrics(reg) // re-wiring replaces the handles cleanly
	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	m, err := NewMonitor(addr, "pic", 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := m.Observe(sampleResult("pic", i), 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "reports stored", func() bool { return db.Len() == 4 })
	m.Close()
	waitFor(t, "connection closed", func() bool {
		return reg.Gauge(telemetry.MetricDaemonConnectionsOpen).Value() == 0
	})

	if got := reg.Counter(telemetry.MetricDaemonConnectionsTotal).Value(); got != 1 {
		t.Errorf("connections_total = %d, want 1", got)
	}
	if got := reg.Counter(telemetry.MetricDaemonReportsTotal).Value(); got != 4 {
		t.Errorf("reports_total = %d, want 4", got)
	}
	rpc := reg.Histogram(telemetry.MetricDaemonRPCSeconds, telemetry.DefDurationBuckets, telemetry.L("type", TypeMetrics))
	if rpc.Count() != 1 {
		t.Errorf("rpc histogram count = %d, want 1 batch", rpc.Count())
	}
	// A push with no registered controls is an error and counts as one.
	if _, err := d.PushLayout(map[int64]string{1: "x"}); err == nil {
		t.Fatal("expected error with no controls")
	}
	if got := reg.Counter(telemetry.MetricDaemonErrorsTotal).Value(); got != 1 {
		t.Errorf("errors_total = %d, want 1", got)
	}
	if got := reg.Counter(telemetry.MetricDaemonLayoutPushes).Value(); got != 0 {
		t.Errorf("layout_pushes_total = %d, want 0 (push failed)", got)
	}
}

func TestDaemonVerboseLogging(t *testing.T) {
	db := newTestDB(t)
	d := NewDaemon(db)
	var buf bytes.Buffer
	var mu sync.Mutex
	d.Verbose = true
	d.Logger = log.New(lockedWriter{&mu, &buf}, "", 0)
	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// One well-behaved connection, then one that sends garbage.
	m, err := NewMonitor(addr, "pic", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Observe(sampleResult("pic", 0), 1, 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "report stored", func() bool { return db.Len() == 1 })
	m.Close()

	garbage, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	garbage.Write([]byte("this is not JSON\n"))
	garbage.Close()
	waitFor(t, "decode error logged", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return strings.Contains(buf.String(), "decode from")
	})
	d.Close()

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	for _, want := range []string{"[daemon] listening on", "[daemon] accepted", "[daemon] decode from", "[daemon] closed"} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q:\n%s", want, out)
		}
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (lw lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}
