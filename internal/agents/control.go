package agents

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
)

// Mover executes one file movement on the target system. It reports
// whether the file actually moved (re-homing a file onto its current
// device is a successful no-op).
type Mover func(fileID int64, device string) (moved bool, err error)

// Control is a control agent: it registers with the Interface Daemon,
// receives layout updates, executes them via its Mover, and acknowledges
// with the number of files moved. Agents "do not interfere with the
// system's activities except for instructing the target system to move
// data in the background" (§V-A).
type Control struct {
	mover Mover

	conn net.Conn
	bw   *bufio.Writer
	enc  *json.Encoder

	mu      sync.Mutex
	applied int // total files moved over the agent's lifetime
	done    chan struct{}
}

// NewControl dials the daemon, registers, and starts applying layout
// pushes in the background.
func NewControl(addr string, mover Mover) (*Control, error) {
	if mover == nil {
		return nil, fmt.Errorf("agents: control agent needs a mover")
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("agents: control dial: %w", err)
	}
	bw := bufio.NewWriter(conn)
	c := &Control{
		mover: mover,
		conn:  conn,
		bw:    bw,
		enc:   json.NewEncoder(bw),
		done:  make(chan struct{}),
	}
	if err := c.send(Envelope{Type: TypeRegisterControl}); err != nil {
		conn.Close()
		return nil, err
	}
	go c.loop()
	return c, nil
}

func (c *Control) send(env Envelope) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(env); err != nil {
		return fmt.Errorf("agents: control send: %w", err)
	}
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("agents: control send: %w", err)
	}
	return nil
}

// loop reads layout pushes until the connection closes.
func (c *Control) loop() {
	defer close(c.done)
	dec := json.NewDecoder(bufio.NewReader(c.conn))
	for {
		var env Envelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		if env.Type != TypeLayout {
			continue
		}
		moved := 0
		var firstErr error
		for _, entry := range env.Layout {
			didMove, err := c.mover(entry.FileID, entry.Device)
			if err != nil {
				// Keep applying the rest; report the first failure.
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			if didMove {
				moved++
			}
		}
		c.mu.Lock()
		c.applied += moved
		c.mu.Unlock()
		ack := Envelope{Type: TypeLayoutAck, Moved: moved}
		if firstErr != nil {
			ack.Error = firstErr.Error()
		}
		if err := c.send(ack); err != nil {
			return
		}
	}
}

// Applied returns the total number of file movements executed.
func (c *Control) Applied() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.applied
}

// Close disconnects the agent and waits for its loop to stop.
func (c *Control) Close() error {
	err := c.conn.Close()
	<-c.done
	return err
}
