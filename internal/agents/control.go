package agents

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"geomancy/internal/rng"
)

// Mover executes one file movement on the target system. It reports
// whether the file actually moved (re-homing a file onto its current
// device is a successful no-op).
type Mover func(fileID int64, device string) (moved bool, err error)

// Control is a control agent: it registers with the Interface Daemon,
// receives layout updates, executes them via its Mover, and acknowledges
// with the number of files moved. Agents "do not interfere with the
// system's activities except for instructing the target system to move
// data in the background" (§V-A).
//
// Failure model: when the daemon connection breaks, the agent redials and
// re-registers with exponential backoff, indefinitely, until Close — a
// long-lived agent on the target system must outlive daemon restarts.
// Layout application is idempotent (moving a file to the device it is
// already on is a no-op), so a push replayed after a reconnect is safe.
type Control struct {
	mover Mover
	addr  string
	opts  options
	met   agentMetrics
	rng   *rng.RNG // backoff jitter only

	mu      sync.Mutex
	conn    net.Conn
	bw      *bufio.Writer
	enc     *json.Encoder
	applied int // total files moved over the agent's lifetime
	closed  bool

	stop chan struct{} // closed by Close; interrupts reconnect backoff
	done chan struct{} // closed when the receive loop exits
}

// NewControl dials the daemon, registers, and starts applying layout
// pushes in the background.
//
//geomancy:allow ctxflow constructor dial is deadline-bounded by RetryPolicy.IOTimeout; no caller context exists yet
func NewControl(addr string, mover Mover, opts ...Option) (*Control, error) {
	if mover == nil {
		return nil, fmt.Errorf("agents: control agent needs a mover")
	}
	o := buildOptions(opts)
	c := &Control{
		mover: mover,
		addr:  addr,
		opts:  o,
		met:   metricsFor(o.reg, "control"),
		rng:   rng.New(2027),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	if err := c.connect(); err != nil {
		return nil, err
	}
	go c.run()
	return c, nil
}

// connect dials and registers one connection, installing it as current.
func (c *Control) connect() error {
	conn, err := c.opts.dial("tcp", c.addr)
	if err != nil {
		return fmt.Errorf("agents: control dial: %w", err)
	}
	bw := bufio.NewWriter(conn)
	enc := json.NewEncoder(bw)
	c.mu.Lock()
	c.conn = conn
	c.bw = bw
	c.enc = enc
	c.mu.Unlock()
	if err := c.send(Envelope{Type: TypeRegisterControl}); err != nil {
		conn.Close()
		return err
	}
	return nil
}

func (c *Control) send(env Envelope) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return fmt.Errorf("agents: control send: not connected")
	}
	//geomancy:nondeterministic I/O deadline computation; never reaches wire or layout output
	if err := c.conn.SetWriteDeadline(time.Now().Add(c.opts.policy.IOTimeout)); err != nil {
		return fmt.Errorf("agents: control send: %w", err)
	}
	//geomancy:allow locksafe connection-serialization lock; the write is deadline-bounded by RetryPolicy.IOTimeout
	if err := c.enc.Encode(env); err != nil {
		return fmt.Errorf("agents: control send: %w", err)
	}
	//geomancy:allow locksafe connection-serialization lock; the write is deadline-bounded by RetryPolicy.IOTimeout
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("agents: control send: %w", err)
	}
	return nil
}

// run reads layout pushes, reconnecting on connection loss until Close.
func (c *Control) run() {
	defer close(c.done)
	for {
		c.mu.Lock()
		conn := c.conn
		closed := c.closed
		c.mu.Unlock()
		if closed || conn == nil {
			return
		}
		c.serveConn(conn)
		if !c.reconnect() {
			return
		}
	}
}

// serveConn applies pushes from one connection until it breaks.
func (c *Control) serveConn(conn net.Conn) {
	dec := json.NewDecoder(bufio.NewReader(conn))
	for {
		var env Envelope
		if err := dec.Decode(&env); err != nil {
			conn.Close()
			return
		}
		if env.Type != TypeLayout {
			continue
		}
		moved := 0
		var firstErr error
		for _, entry := range env.Layout {
			didMove, err := c.mover(entry.FileID, entry.Device)
			if err != nil {
				// Keep applying the rest; report the first failure.
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			if didMove {
				moved++
			}
		}
		c.mu.Lock()
		c.applied += moved
		c.mu.Unlock()
		ack := Envelope{Type: TypeLayoutAck, ID: env.ID, Moved: moved}
		if firstErr != nil {
			ack.Error = firstErr.Error()
		}
		if err := c.send(ack); err != nil {
			conn.Close()
			return
		}
	}
}

// reconnect redials-and-reregisters with backoff until it succeeds or the
// agent is closed. It reports whether a connection was established.
func (c *Control) reconnect() bool {
	for attempt := 1; ; attempt++ {
		select {
		case <-c.stop:
			return false
		case <-time.After(c.opts.policy.backoff(attempt, c.rng)):
		}
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return false
		}
		c.met.retries.Inc()
		if err := c.connect(); err == nil {
			c.met.reconnects.Inc()
			return true
		}
	}
}

// Applied returns the total number of file movements executed.
func (c *Control) Applied() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.applied
}

// Close disconnects the agent and waits for its loop to stop.
func (c *Control) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.done
		return nil
	}
	c.closed = true
	conn := c.conn
	c.mu.Unlock()
	close(c.stop)
	var err error
	if conn != nil {
		// The serve loop closes the connection itself when it breaks; a
		// second close here is a harmless no-op, not a failure.
		if cerr := conn.Close(); cerr != nil && !errors.Is(cerr, net.ErrClosed) {
			err = cerr
		}
	}
	<-c.done
	return err
}
