package workload

import (
	"context"
	"errors"
	"testing"

	"geomancy/internal/storagesim"
	"geomancy/internal/telemetry"
	"geomancy/internal/trace"
)

func newTestRunner(t *testing.T, seed int64) *Runner {
	t.Helper()
	cluster := storagesim.NewBluesky(seed)
	files := trace.BelleFileSet(seed)
	r := NewRunner(cluster, files, 1, seed)
	if err := r.SpreadEvenly(cluster.DeviceNames()); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSpreadEvenly(t *testing.T) {
	r := newTestRunner(t, 1)
	counts := map[string]int{}
	for _, f := range r.Cluster().Files() {
		counts[f.Device]++
	}
	// 24 files over 6 devices → 4 each.
	if len(counts) != 6 {
		t.Fatalf("files on %d devices, want 6", len(counts))
	}
	for dev, n := range counts {
		if n != 4 {
			t.Errorf("device %s has %d files, want 4", dev, n)
		}
	}
}

func TestSpreadEvenlyNoDevices(t *testing.T) {
	cluster := storagesim.NewBluesky(1)
	r := NewRunner(cluster, trace.BelleFileSet(1), 1, 1)
	if err := r.SpreadEvenly(nil); err == nil {
		t.Error("spreading across no devices should error")
	}
}

func TestRunOnceProducesTelemetry(t *testing.T) {
	r := newTestRunner(t, 2)
	var observed int
	var lastRun int
	stats, err := r.RunOnce(func(res storagesim.AccessResult, wl, run int) {
		observed++
		lastRun = run
		if wl != 1 {
			t.Errorf("workload id = %d, want 1", wl)
		}
		if res.Throughput <= 0 {
			t.Error("non-positive throughput observed")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Accesses != observed {
		t.Errorf("stats.Accesses = %d, observer saw %d", stats.Accesses, observed)
	}
	// 24 files × 10..20 accesses each.
	if stats.Accesses < 240 || stats.Accesses > 480 {
		t.Errorf("accesses = %d, want within [240,480]", stats.Accesses)
	}
	if stats.MeanThroughput <= 0 || stats.Bytes <= 0 || stats.Duration <= 0 {
		t.Errorf("stats not populated: %+v", stats)
	}
	if lastRun != 0 || r.Runs() != 1 {
		t.Errorf("run bookkeeping wrong: lastRun %d, Runs %d", lastRun, r.Runs())
	}

	// Second run increments the counter.
	stats2, err := r.RunOnce(nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Run != 1 || r.Runs() != 2 {
		t.Errorf("second run index = %d, Runs = %d", stats2.Run, r.Runs())
	}
}

func TestApplyLayoutMovesFiles(t *testing.T) {
	r := newTestRunner(t, 3)
	layout := map[int64]string{}
	for _, f := range r.Files() {
		layout[f.ID] = "file0"
	}
	moves, err := r.ApplyLayout(layout)
	if err != nil {
		t.Fatal(err)
	}
	// 4 files already on file0 → 20 moves.
	if len(moves) != 20 {
		t.Errorf("moves = %d, want 20", len(moves))
	}
	for _, f := range r.Cluster().Files() {
		if f.Device != "file0" {
			t.Errorf("file %d still on %s", f.ID, f.Device)
		}
	}
	// Idempotent: re-applying produces no moves.
	moves, err = r.ApplyLayout(layout)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 0 {
		t.Errorf("re-apply produced %d moves, want 0", len(moves))
	}
}

func TestApplyLayoutSkipsInvalidDestination(t *testing.T) {
	r := newTestRunner(t, 4)
	r.Cluster().SetAvailable("USBtmp", false)
	layout := map[int64]string{r.Files()[0].ID: "USBtmp", r.Files()[1].ID: "file0"}
	moves, err := r.ApplyLayout(layout)
	if err != nil {
		t.Fatal(err)
	}
	// The USBtmp move is skipped, the file0 move may or may not be needed.
	for _, mv := range moves {
		if mv.To == "USBtmp" {
			t.Error("moved onto an unavailable device")
		}
	}
}

func TestApplyLayoutPartial(t *testing.T) {
	r := newTestRunner(t, 5)
	before := r.Cluster().Layout()
	// Move only file 1; everything else untouched.
	var target string
	if before[1] == "file0" {
		target = "pic"
	} else {
		target = "file0"
	}
	moves, err := r.ApplyLayout(map[int64]string{1: target})
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 1 || moves[0].FileID != 1 {
		t.Fatalf("moves = %+v", moves)
	}
	after := r.Cluster().Layout()
	for id, dev := range before {
		if id == 1 {
			continue
		}
		if after[id] != dev {
			t.Errorf("file %d moved unexpectedly %s → %s", id, dev, after[id])
		}
	}
}

func TestRunStatsLatencyPercentiles(t *testing.T) {
	r := newTestRunner(t, 9)
	stats, err := r.RunOnce(nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.LatencyP50 <= 0 {
		t.Fatalf("p50 = %v, want > 0", stats.LatencyP50)
	}
	if stats.LatencyP50 > stats.LatencyP95 || stats.LatencyP95 > stats.LatencyP99 {
		t.Errorf("percentiles not monotone: p50 %v p95 %v p99 %v",
			stats.LatencyP50, stats.LatencyP95, stats.LatencyP99)
	}
	// No single access can outlast the whole run (serial virtual clock), so
	// p99 is bounded by the run duration even after bucket rounding.
	if stats.LatencyP99 > 2*stats.Duration {
		t.Errorf("p99 %v implausible for a run of duration %v", stats.LatencyP99, stats.Duration)
	}
}

func TestMetricsObserver(t *testing.T) {
	r := newTestRunner(t, 10)
	reg := telemetry.NewRegistry()
	obs := MetricsObserver(reg)
	stats, err := r.RunOnce(obs)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, dev := range r.Cluster().DeviceNames() {
		total += reg.Counter(telemetry.MetricAccessesTotal, telemetry.L("device", dev)).Value()
	}
	if total != uint64(stats.Accesses) {
		t.Errorf("device counters sum to %d, run made %d accesses", total, stats.Accesses)
	}
	if MetricsObserver(nil) != nil {
		t.Error("nil registry should yield a nil observer")
	}
}

func TestRunDeterminism(t *testing.T) {
	run := func() RunStats {
		r := newTestRunner(t, 7)
		s, err := r.RunOnce(nil)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("equal seeds gave different runs:\n  %+v\n  %+v", a, b)
	}
}

func TestRunErrorsOnUnavailableDevice(t *testing.T) {
	r := newTestRunner(t, 8)
	r.Cluster().SetAvailable("pic", false)
	if _, err := r.RunOnce(nil); err == nil {
		t.Error("run should fail when a hosting device disappears")
	}
}

// A cancelled context aborts a run between accesses: partial stats come
// back with ctx.Err() and the run does not count as completed.
func TestRunOnceContextCancel(t *testing.T) {
	r := newTestRunner(t, 6)
	ctx, cancel := context.WithCancel(context.Background())
	var seen int
	_, err := r.RunOnceContext(ctx, func(res storagesim.AccessResult, wl, run int) {
		seen++
		if seen == 3 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunOnceContext = %v, want context.Canceled", err)
	}
	if seen != 3 {
		t.Errorf("observer saw %d accesses after cancel at 3", seen)
	}
	if r.Runs() != 0 {
		t.Errorf("cancelled run counted as completed (%d runs)", r.Runs())
	}
	// The runner remains usable: the next uncancelled run completes.
	stats, err := r.RunOnce(nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Accesses == 0 || r.Runs() != 1 {
		t.Errorf("runner unusable after cancellation: %+v runs=%d", stats, r.Runs())
	}
}
