// Package workload drives the BELLE II-style Monte-Carlo workload of the
// paper's live experiments (§IV) against the simulated cluster: 24 ROOT
// files between 583 KB and 1.1 GB, read-heavy, each file accessed 10–20
// times in succession, acting "as a suite of many applications reading and
// writing many files individually".
//
// Before each access the runner consults its Locator — the paper's
// configuration file that Geomancy rewrites after data movements — so
// layout changes take effect for subsequent reads without restarting the
// workload.
package workload

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"sync"

	"geomancy/internal/rng"
	"geomancy/internal/storagesim"
	"geomancy/internal/telemetry"
	"geomancy/internal/trace"
)

// Observer receives the telemetry of each access, tagged with the workload
// id and run index; monitoring agents subscribe here.
type Observer func(res storagesim.AccessResult, workloadID, run int)

// MetricsObserver returns an Observer that feeds per-device access
// telemetry into reg: latency and throughput histograms plus access/byte
// counters, all labeled {device="..."}. Per-device metric handles are
// cached so the per-access cost is a few atomic adds. Returns nil for a
// nil registry (a nil Observer is ignored by every caller).
func MetricsObserver(reg *telemetry.Registry) Observer {
	if reg == nil {
		return nil
	}
	type devMetrics struct {
		accesses *telemetry.Counter
		bytes    *telemetry.Counter
		latency  *telemetry.Histogram
		tput     *telemetry.Histogram
	}
	var mu sync.Mutex
	cache := make(map[string]*devMetrics)
	return func(res storagesim.AccessResult, workloadID, run int) {
		mu.Lock()
		m := cache[res.Device]
		if m == nil {
			dev := telemetry.L("device", res.Device)
			m = &devMetrics{
				accesses: reg.Counter(telemetry.MetricAccessesTotal, dev),
				bytes:    reg.Counter(telemetry.MetricAccessBytesTotal, dev),
				latency:  reg.Histogram(telemetry.MetricAccessLatency, telemetry.DefLatencyBuckets, dev),
				tput:     reg.Histogram(telemetry.MetricAccessThroughput, telemetry.DefThroughputBuckets, dev),
			}
			cache[res.Device] = m
		}
		mu.Unlock()
		m.accesses.Inc()
		m.bytes.Add(uint64(res.BytesRead + res.BytesWritten))
		m.latency.Observe(res.End - res.Start)
		m.tput.Observe(res.Throughput)
	}
}

// Runner executes BELLE II runs against a cluster. It is the original
// hardcoded workload of the reproduction and doubles as the "belle"
// scenario of the workload plane (internal/scenario): every method the
// scenario.Workload interface requires lives here.
type Runner struct {
	// ID distinguishes concurrent workloads (experiment 3 runs two).
	//geomancy:ephemeral construction arg, re-supplied by NewRunner on restore
	ID int

	files   []trace.BelleFile   //geomancy:ephemeral construction arg, re-supplied by NewRunner on restore
	cluster *storagesim.Cluster //geomancy:ephemeral serialized separately as the checkpoint's ClusterState
	rng     *rng.RNG
	runs    int
}

// NewRunner returns a workload runner for the given file set.
func NewRunner(cluster *storagesim.Cluster, files []trace.BelleFile, id int, seed int64) *Runner {
	return &Runner{
		ID:      id,
		files:   files,
		cluster: cluster,
		rng:     rng.New(seed),
	}
}

// Name identifies the workload in scenario registries and checkpoints.
func (r *Runner) Name() string { return "belle" }

// Files returns the working set.
func (r *Runner) Files() []trace.BelleFile { return r.files }

// SpreadEvenly places the working set round-robin across the given devices
// — the paper's "basic spread policy (evenly across all available mounts)"
// used as the starting layout for every experiment.
func (r *Runner) SpreadEvenly(devices []string) error {
	if len(devices) == 0 {
		return fmt.Errorf("workload: no devices to spread across")
	}
	for i, f := range r.files {
		dev := devices[i%len(devices)]
		if err := r.cluster.PlaceFile(f.ID, f.Path, f.Size, dev); err != nil {
			return fmt.Errorf("workload: placing %s on %s: %w", f.Path, dev, err)
		}
	}
	return nil
}

// ApplyLayout re-homes files per the layout using cluster moves, returning
// the movements performed. Files absent from the layout stay put.
func (r *Runner) ApplyLayout(layout map[int64]string) ([]storagesim.MoveResult, error) {
	var moves []storagesim.MoveResult
	for _, f := range r.files {
		dst, ok := layout[f.ID]
		if !ok {
			continue
		}
		cur, err := r.cluster.File(f.ID)
		if err != nil {
			return moves, err
		}
		if cur.Device == dst {
			continue
		}
		mv, err := r.cluster.Move(f.ID, dst)
		if err != nil {
			// A single invalid destination must not abort the run;
			// skip the move the way a control agent would log and
			// continue.
			continue
		}
		moves = append(moves, mv)
	}
	return moves, nil
}

// RunStats summarizes one workload run.
type RunStats struct {
	Run            int
	Accesses       int
	Bytes          int64
	MeanThroughput float64
	// Duration is the simulated wall time of the run in seconds.
	Duration float64
	// LatencyP50/P95/P99 are per-access latency percentiles of the run in
	// seconds (YCSB-style measurement, estimated from a fixed-bucket
	// histogram).
	LatencyP50, LatencyP95, LatencyP99 float64
}

// RunOnce executes one workload run: every file visited in random order,
// each accessed 10–20 times in succession. The observer (if non-nil) sees
// every access.
func (r *Runner) RunOnce(obs Observer) (RunStats, error) {
	return r.RunOnceContext(context.Background(), obs)
}

// RunOnceContext is RunOnce with cancellation: ctx is checked before every
// access, and a cancelled run returns the partial statistics together with
// ctx.Err() without counting as a completed run.
func (r *Runner) RunOnceContext(ctx context.Context, obs Observer) (RunStats, error) {
	seq := trace.BelleRun(r.rng.Rand, len(r.files))
	start := r.cluster.Now()
	stats := RunStats{Run: r.runs}
	lat := telemetry.NewHistogram(telemetry.DefLatencyBuckets)
	var tpSum float64
	for _, a := range seq {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		f := r.files[a.FileIndex]
		bytes := int64(float64(f.Size) * a.Fraction)
		if bytes <= 0 {
			bytes = 1
		}
		var rb, wb int64
		if a.Write {
			wb = bytes
		} else {
			rb = bytes
		}
		res, err := r.cluster.Access(f.ID, rb, wb)
		if err != nil {
			return stats, fmt.Errorf("workload %d run %d: %w", r.ID, r.runs, err)
		}
		stats.Accesses++
		stats.Bytes += rb + wb
		tpSum += res.Throughput
		lat.Observe(res.End - res.Start)
		if obs != nil {
			obs(res, r.ID, r.runs)
		}
	}
	if stats.Accesses > 0 {
		stats.MeanThroughput = tpSum / float64(stats.Accesses)
		stats.LatencyP50 = lat.Quantile(0.50)
		stats.LatencyP95 = lat.Quantile(0.95)
		stats.LatencyP99 = lat.Quantile(0.99)
	}
	stats.Duration = r.cluster.Now() - start
	r.runs++
	return stats, nil
}

// Runs returns the number of completed runs.
func (r *Runner) Runs() int { return r.runs }

// RunnerState is the serializable snapshot of a runner: the access-order
// stream and the completed-run counter. The file set and cluster binding
// are reconstructed from configuration on restore.
type RunnerState struct {
	RNG  uint64
	Runs int
}

// State captures the runner mid-experiment.
func (r *Runner) State() RunnerState {
	return RunnerState{RNG: r.rng.State(), Runs: r.runs}
}

// RestoreState overwrites the runner's stream and counters with a
// previously captured snapshot.
func (r *Runner) RestoreState(st RunnerState) {
	r.rng.SetState(st.RNG)
	r.runs = st.Runs
}

// MarshalState serializes the runner for checkpoints — the opaque
// workload-state bytes the snapshot plane stores next to the scenario
// name.
func (r *Runner) MarshalState() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r.State()); err != nil {
		return nil, fmt.Errorf("workload: marshaling runner state: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalState restores a runner from MarshalState output.
func (r *Runner) UnmarshalState(data []byte) error {
	var st RunnerState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("workload: unmarshaling runner state: %w", err)
	}
	r.RestoreState(st)
	return nil
}

// Cluster exposes the underlying cluster (examples and experiments use it
// for instrumentation).
func (r *Runner) Cluster() *storagesim.Cluster { return r.cluster }
