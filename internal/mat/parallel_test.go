package mat

import (
	"math/rand"
	"testing"
)

func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// ParallelMulTo must be bit-for-bit identical to MulTo at every worker
// count: sharding by output rows never changes any row's arithmetic order.
func TestParallelMulToMatchesMulTo(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, shape := range [][3]int{{1, 6, 8}, {33, 6, 96}, {200, 96, 1}, {130, 17, 17}} {
		a := randomMatrix(rng, shape[0], shape[1])
		b := randomMatrix(rng, shape[1], shape[2])
		want := New(shape[0], shape[2])
		MulTo(want, a, b)
		for _, workers := range []int{1, 2, 4, 16} {
			got := New(shape[0], shape[2])
			// Pre-dirty the destination: ParallelMulTo must overwrite fully.
			for i := range got.Data {
				got.Data[i] = 99
			}
			ParallelMulTo(got, a, b, workers)
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("shape %v workers %d: element %d = %v, want %v",
						shape, workers, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

func TestParallelMulToShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched inner dims should panic")
		}
	}()
	ParallelMulTo(New(2, 2), New(2, 3), New(4, 2), 2)
}
