package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows, m.Cols)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestFromSliceAndAt(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if got := m.At(0, 0); got != 1 {
		t.Errorf("At(0,0) = %v, want 1", got)
	}
	if got := m.At(1, 2); got != 6 {
		t.Errorf("At(1,2) = %v, want 6", got)
	}
	m.Set(1, 0, -7)
	if got := m.At(1, 0); got != -7 {
		t.Errorf("after Set, At(1,0) = %v, want -7", got)
	}
}

func TestFromSliceWrongLenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong data length")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("shape = %dx%d, want 3x2", m.Rows, m.Cols)
	}
	if m.At(2, 1) != 6 {
		t.Errorf("At(2,1) = %v, want 6", m.At(2, 1))
	}
	empty := FromRows(nil)
	if empty.Rows != 0 || empty.Cols != 0 {
		t.Errorf("FromRows(nil) shape = %dx%d, want 0x0", empty.Rows, empty.Cols)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestCloneIsDeep(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 2})
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestMulKnownValues(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := Mul(a, b)
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if !Equal(got, want, 1e-12) {
		t.Errorf("Mul = %v, want %v", got, want)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(4, 4)
	a.Randomize(rng, 1)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(i, i, 1)
	}
	if got := Mul(a, id); !Equal(got, a, 1e-12) {
		t.Error("A·I != A")
	}
	if got := Mul(id, a); !Equal(got, a, 1e-12) {
		t.Error("I·A != A")
	}
}

func TestMulDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mul(New(2, 3), New(2, 3))
}

func TestMulTransAMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := New(5, 3)
	b := New(5, 4)
	a.Randomize(rng, 1)
	b.Randomize(rng, 1)
	got := MulTransA(a, b)
	want := Mul(a.Transpose(), b)
	if !Equal(got, want, 1e-12) {
		t.Error("MulTransA != Aᵀ·B")
	}
}

func TestMulTransBMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := New(5, 3)
	b := New(4, 3)
	a.Randomize(rng, 1)
	b.Randomize(rng, 1)
	got := MulTransB(a, b)
	want := Mul(a, b.Transpose())
	if !Equal(got, want, 1e-12) {
		t.Error("MulTransB != A·Bᵀ")
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := New(3, 7)
	a.Randomize(rng, 1)
	if !Equal(a.Transpose().Transpose(), a, 0) {
		t.Error("(Aᵀ)ᵀ != A")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{10, 20, 30, 40})

	if got, want := Add(a, b), FromSlice(2, 2, []float64{11, 22, 33, 44}); !Equal(got, want, 0) {
		t.Errorf("Add = %v, want %v", got, want)
	}
	if got, want := Sub(b, a), FromSlice(2, 2, []float64{9, 18, 27, 36}); !Equal(got, want, 0) {
		t.Errorf("Sub = %v, want %v", got, want)
	}
	if got, want := Hadamard(a, b), FromSlice(2, 2, []float64{10, 40, 90, 160}); !Equal(got, want, 0) {
		t.Errorf("Hadamard = %v, want %v", got, want)
	}
	if got, want := a.Scale(2), FromSlice(2, 2, []float64{2, 4, 6, 8}); !Equal(got, want, 0) {
		t.Errorf("Scale = %v, want %v", got, want)
	}

	c := a.Clone()
	AddInPlace(c, b)
	if !Equal(c, Add(a, b), 0) {
		t.Error("AddInPlace disagrees with Add")
	}
	d := a.Clone()
	HadamardInPlace(d, b)
	if !Equal(d, Hadamard(a, b), 0) {
		t.Error("HadamardInPlace disagrees with Hadamard")
	}
	e := a.Clone()
	AddScaled(e, 0.5, b)
	if got, want := e, FromSlice(2, 2, []float64{6, 12, 18, 24}); !Equal(got, want, 1e-12) {
		t.Errorf("AddScaled = %v, want %v", got, want)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Add(New(2, 2), New(2, 3))
}

func TestApply(t *testing.T) {
	a := FromSlice(1, 3, []float64{-1, 0, 2})
	relu := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		return v
	}
	if got, want := a.Apply(relu), FromSlice(1, 3, []float64{0, 0, 2}); !Equal(got, want, 0) {
		t.Errorf("Apply = %v, want %v", got, want)
	}
	a.ApplyInPlace(relu)
	if a.At(0, 0) != 0 {
		t.Error("ApplyInPlace did not modify receiver")
	}
}

func TestAddRowVectorAndSumRows(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	v := FromSlice(1, 3, []float64{10, 20, 30})
	m.AddRowVector(v)
	want := FromSlice(2, 3, []float64{11, 22, 33, 14, 25, 36})
	if !Equal(m, want, 0) {
		t.Errorf("AddRowVector = %v, want %v", m, want)
	}
	sums := want.SumRows()
	wantSums := FromSlice(1, 3, []float64{25, 47, 69})
	if !Equal(sums, wantSums, 1e-12) {
		t.Errorf("SumRows = %v, want %v", sums, wantSums)
	}
}

func TestSumMeanMaxAbs(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, -5, 2, 2})
	if m.Sum() != 0 {
		t.Errorf("Sum = %v, want 0", m.Sum())
	}
	if m.Mean() != 0 {
		t.Errorf("Mean = %v, want 0", m.Mean())
	}
	if m.MaxAbs() != 5 {
		t.Errorf("MaxAbs = %v, want 5", m.MaxAbs())
	}
	empty := New(0, 0)
	if empty.Mean() != 0 || empty.MaxAbs() != 0 {
		t.Error("empty matrix Mean/MaxAbs should be 0")
	}
}

func TestRowAliasesStorage(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	row := m.Row(1)
	row[0] = 99
	if m.At(1, 0) != 99 {
		t.Error("Row should alias underlying storage")
	}
	m.SetRow(0, []float64{7, 8})
	if m.At(0, 1) != 8 {
		t.Error("SetRow did not write")
	}
}

func TestXavierInitBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := New(20, 30)
	m.XavierInit(rng, 20, 30)
	limit := math.Sqrt(6.0 / 50.0)
	for i, v := range m.Data {
		if math.Abs(v) > limit {
			t.Fatalf("Data[%d] = %v exceeds Xavier limit %v", i, v, limit)
		}
	}
	if m.MaxAbs() == 0 {
		t.Error("XavierInit left matrix all zeros")
	}
}

// Property: matrix multiplication distributes over addition,
// A·(B+C) == A·B + A·C.
func TestMulDistributesOverAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, m, p := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a, b, c := New(n, m), New(m, p), New(m, p)
		a.Randomize(r, 1)
		b.Randomize(r, 1)
		c.Randomize(r, 1)
		left := Mul(a, Add(b, c))
		right := Add(Mul(a, b), Mul(a, c))
		return Equal(left, right, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ.
func TestMulTransposeIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, m, p := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a, b := New(n, m), New(m, p)
		a.Randomize(r, 1)
		b.Randomize(r, 1)
		left := Mul(a, b).Transpose()
		right := Mul(b.Transpose(), a.Transpose())
		return Equal(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: scaling commutes with multiplication, (sA)·B == s(A·B).
func TestScaleCommutesWithMul(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, m, p := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		s := r.Float64()*4 - 2
		a, b := New(n, m), New(m, p)
		a.Randomize(r, 1)
		b.Randomize(r, 1)
		left := Mul(a.Scale(s), b)
		right := Mul(a, b).Scale(s)
		return Equal(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEqualShapes(t *testing.T) {
	if Equal(New(1, 2), New(2, 1), 1) {
		t.Error("Equal should reject different shapes")
	}
}

func TestStringFormat(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	if got := m.String(); got != "2x2[1 2; 3 4]" {
		t.Errorf("String = %q", got)
	}
}

func BenchmarkMul96x48(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := New(32, 96)
	w := New(96, 48)
	x.Randomize(rng, 1)
	w.Randomize(rng, 1)
	dst := New(32, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulTo(dst, x, w)
	}
}
