// Package mat implements the dense float64 matrix kernel used by the
// Geomancy neural-network library. It is deliberately small: row-major
// matrices, the handful of operations backpropagation needs, and nothing
// else. All operations either allocate a fresh result or write into an
// explicitly provided destination so that training loops can reuse buffers.
package mat

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"unsafe"
)

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	// Data holds the elements in row-major order: element (r,c) lives at
	// Data[r*Cols+c]. len(Data) == Rows*Cols always.
	Data []float64
}

// New returns a zero-valued rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice builds a rows×cols matrix backed by a copy of data, which must
// contain exactly rows*cols values in row-major order.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: FromSlice got %d values for %dx%d", len(data), rows, cols))
	}
	m := New(rows, cols)
	copy(m.Data, data)
	return m
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for r, row := range rows {
		if len(row) != cols {
			panic(fmt.Sprintf("mat: FromRows row %d has %d cols, want %d", r, len(row), cols))
		}
		copy(m.Data[r*cols:(r+1)*cols], row)
	}
	return m
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// At returns the element at row r, column c.
func (m *Matrix) At(r, c int) float64 {
	m.boundsCheck(r, c)
	return m.Data[r*m.Cols+c]
}

// Set stores v at row r, column c.
func (m *Matrix) Set(r, c int, v float64) {
	m.boundsCheck(r, c)
	m.Data[r*m.Cols+c] = v
}

func (m *Matrix) boundsCheck(r, c int) {
	if r < 0 || r >= m.Rows || c < 0 || c >= m.Cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range for %dx%d", r, c, m.Rows, m.Cols))
	}
}

// Row returns row r as a slice aliasing the matrix storage.
func (m *Matrix) Row(r int) []float64 {
	if r < 0 || r >= m.Rows {
		panic(fmt.Sprintf("mat: row %d out of range for %dx%d", r, m.Rows, m.Cols))
	}
	return m.Data[r*m.Cols : (r+1)*m.Cols]
}

// SetRow copies vals into row r; len(vals) must equal Cols.
func (m *Matrix) SetRow(r int, vals []float64) {
	if len(vals) != m.Cols {
		panic(fmt.Sprintf("mat: SetRow got %d values, want %d", len(vals), m.Cols))
	}
	copy(m.Row(r), vals)
}

// Zero sets every element to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v in place.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Randomize fills m with uniform values in [-scale, scale) drawn from rng.
func (m *Matrix) Randomize(rng *rand.Rand, scale float64) {
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * scale
	}
}

// XavierInit fills m with the Glorot/Xavier uniform initialization for a
// layer with the given fan-in and fan-out. It is the standard choice for
// the small dense and recurrent layers in the Geomancy model zoo.
func (m *Matrix) XavierInit(rng *rand.Rand, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// sameShape panics unless a and b have identical dimensions.
func sameShape(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// Mul returns the matrix product a×b. It panics if a.Cols != b.Rows.
func Mul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	MulTo(out, a, b)
	return out
}

// MulTo computes dst = a×b, reusing dst's storage. dst must be a.Rows×b.Cols
// and must not alias a or b.
func MulTo(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul inner dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulTo dst is %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	mulRows(dst, a, b, 0, a.Rows)
}

// mulRows computes output rows [lo, hi) of dst = a×b. Each output row
// depends only on the matching row of a, so disjoint row ranges can run
// concurrently and each row's arithmetic order is identical no matter how
// the rows are sharded.
func mulRows(dst, a, b *Matrix, lo, hi int) {
	// Output rows are processed four at a time with a 4×2 register tile:
	// eight accumulators live in registers across the whole k loop, so the
	// hot loop issues no stores and reuses every loaded b element across
	// four rows. Each output element still sums its products in
	// ascending-k order, so the result is bit-identical to the
	// one-row-at-a-time loop (an a-element of exactly 0 contributes a ±0
	// whose addition can never change an accumulator that started at +0).
	n := b.Cols
	kdim := a.Cols
	i := lo
	for ; i+4 <= hi; i += 4 {
		a0 := a.Data[i*kdim : (i+1)*kdim]
		a1 := a.Data[(i+1)*kdim : (i+2)*kdim]
		a2 := a.Data[(i+2)*kdim : (i+3)*kdim]
		a3 := a.Data[(i+3)*kdim : (i+4)*kdim]
		d0 := dst.Data[i*n : (i+1)*n]
		d1 := dst.Data[(i+1)*n : (i+2)*n]
		d2 := dst.Data[(i+2)*n : (i+3)*n]
		d3 := dst.Data[(i+3)*n : (i+4)*n]
		// The b column loads stride by n each k step, a pattern the
		// bounds-check prover cannot handle; a pointer walk keeps the
		// two loads per step check-free. b.Data is reachable from the
		// argument for the whole loop, so the pointer stays valid.
		stride := uintptr(n) * 8
		j := 0
		for ; j+2 <= n; j += 2 {
			var s00, s01, s10, s11, s20, s21, s30, s31 float64
			pb := unsafe.Pointer(&b.Data[j])
			k := 0
			for ; k+2 <= kdim; k += 2 {
				v0, v1, v2, v3 := a0[k], a1[k], a2[k], a3[k]
				b0 := *(*float64)(pb)
				b1 := *(*float64)(unsafe.Add(pb, 8))
				s00 += v0 * b0
				s01 += v0 * b1
				s10 += v1 * b0
				s11 += v1 * b1
				s20 += v2 * b0
				s21 += v2 * b1
				s30 += v3 * b0
				s31 += v3 * b1
				w0, w1, w2, w3 := a0[k+1], a1[k+1], a2[k+1], a3[k+1]
				c0 := *(*float64)(unsafe.Add(pb, stride))
				c1 := *(*float64)(unsafe.Add(pb, stride+8))
				s00 += w0 * c0
				s01 += w0 * c1
				s10 += w1 * c0
				s11 += w1 * c1
				s20 += w2 * c0
				s21 += w2 * c1
				s30 += w3 * c0
				s31 += w3 * c1
				pb = unsafe.Add(pb, 2*stride)
			}
			for ; k < kdim; k++ {
				v0, v1, v2, v3 := a0[k], a1[k], a2[k], a3[k]
				b0 := *(*float64)(pb)
				b1 := *(*float64)(unsafe.Add(pb, 8))
				s00 += v0 * b0
				s01 += v0 * b1
				s10 += v1 * b0
				s11 += v1 * b1
				s20 += v2 * b0
				s21 += v2 * b1
				s30 += v3 * b0
				s31 += v3 * b1
				pb = unsafe.Add(pb, stride)
			}
			d0[j], d0[j+1] = s00, s01
			d1[j], d1[j+1] = s10, s11
			d2[j], d2[j+1] = s20, s21
			d3[j], d3[j+1] = s30, s31
		}
		for ; j < n; j++ {
			var s0, s1, s2, s3 float64
			pb := unsafe.Pointer(&b.Data[j])
			for k := 0; k < kdim; k++ {
				v0, v1, v2, v3 := a0[k], a1[k], a2[k], a3[k]
				bv := *(*float64)(pb)
				s0 += v0 * bv
				s1 += v1 * bv
				s2 += v2 * bv
				s3 += v3 * bv
				pb = unsafe.Add(pb, stride)
			}
			d0[j], d1[j], d2[j], d3[j] = s0, s1, s2, s3
		}
	}
	for ; i < hi; i++ {
		drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for j := range drow {
			drow[j] = 0
		}
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// parallelMulMinRows is the batch height below which ParallelMulTo stays
// serial: smaller products finish faster than goroutine handoff costs.
const parallelMulMinRows = 32

// ParallelMulTo computes dst = a×b like MulTo, sharding the output rows
// across up to workers goroutines. Every output row is produced with the
// same arithmetic order as the serial product, so the result is
// bit-for-bit identical for any worker count.
func ParallelMulTo(dst, a, b *Matrix, workers int) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul inner dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulTo dst is %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	if workers > a.Rows/parallelMulMinRows {
		workers = a.Rows / parallelMulMinRows
	}
	if workers <= 1 {
		mulRows(dst, a, b, 0, a.Rows)
		return
	}
	chunk := (a.Rows + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < a.Rows; lo += chunk {
		hi := lo + chunk
		if hi > a.Rows {
			hi = a.Rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mulRows(dst, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MulTransA returns aᵀ×b without materializing the transpose.
func MulTransA(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: MulTransA dimension mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	for k := 0; k < a.Rows; k++ {
		arow := a.Data[k*a.Cols : (k+1)*a.Cols]
		brow := b.Data[k*b.Cols : (k+1)*b.Cols]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulTransB returns a×bᵀ without materializing the transpose.
func MulTransB(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulTransB dimension mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*b.Cols : (j+1)*b.Cols]
			var sum float64
			for k, av := range arow {
				sum += av * brow[k]
			}
			orow[j] = sum
		}
	}
	return out
}

// Transpose returns mᵀ as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			out.Data[c*out.Cols+r] = m.Data[r*m.Cols+c]
		}
	}
	return out
}

// Add returns a+b elementwise.
func Add(a, b *Matrix) *Matrix {
	sameShape("Add", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// AddInPlace sets a += b elementwise.
func AddInPlace(a, b *Matrix) {
	sameShape("AddInPlace", a, b)
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// Sub returns a-b elementwise.
func Sub(a, b *Matrix) *Matrix {
	sameShape("Sub", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Hadamard returns the elementwise product a∘b.
func Hadamard(a, b *Matrix) *Matrix {
	sameShape("Hadamard", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// HadamardInPlace sets a *= b elementwise.
func HadamardInPlace(a, b *Matrix) {
	sameShape("HadamardInPlace", a, b)
	for i := range a.Data {
		a.Data[i] *= b.Data[i]
	}
}

// Scale returns m scaled by s as a new matrix.
func (m *Matrix) Scale(s float64) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = v * s
	}
	return out
}

// ScaleInPlace multiplies every element of m by s.
func (m *Matrix) ScaleInPlace(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddScaled sets a += s*b elementwise; the axpy of gradient descent.
func AddScaled(a *Matrix, s float64, b *Matrix) {
	sameShape("AddScaled", a, b)
	for i := range a.Data {
		a.Data[i] += s * b.Data[i]
	}
}

// Apply returns a new matrix with f applied to every element of m.
func (m *Matrix) Apply(f func(float64) float64) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = f(v)
	}
	return out
}

// ApplyInPlace applies f to every element of m in place.
func (m *Matrix) ApplyInPlace(f func(float64) float64) {
	for i, v := range m.Data {
		m.Data[i] = f(v)
	}
}

// AddRowVector adds the 1×Cols vector v to every row of m, in place.
// This is the bias-broadcast used by every layer.
func (m *Matrix) AddRowVector(v *Matrix) {
	if v.Rows != 1 || v.Cols != m.Cols {
		panic(fmt.Sprintf("mat: AddRowVector vector is %dx%d, want 1x%d", v.Rows, v.Cols, m.Cols))
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c := range row {
			row[c] += v.Data[c]
		}
	}
}

// SumRows returns a 1×Cols vector whose entries are the column sums of m;
// the reduction used for bias gradients.
func (m *Matrix) SumRows() *Matrix {
	out := New(1, m.Cols)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c, v := range row {
			out.Data[c] += v
		}
	}
	return out
}

// Sum returns the sum of all elements.
func (m *Matrix) Sum() float64 {
	var s float64
	for _, v := range m.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for an empty matrix).
func (m *Matrix) Mean() float64 {
	if len(m.Data) == 0 {
		return 0
	}
	return m.Sum() / float64(len(m.Data))
}

// MaxAbs returns the largest absolute element value (0 for empty).
func (m *Matrix) MaxAbs() float64 {
	var max float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// Equal reports whether a and b have the same shape and all elements are
// within tol of each other.
func Equal(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%dx%d[", m.Rows, m.Cols)
	for r := 0; r < m.Rows; r++ {
		if r > 0 {
			b.WriteString("; ")
		}
		for c := 0; c < m.Cols; c++ {
			if c > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.4g", m.At(r, c))
		}
	}
	b.WriteByte(']')
	return b.String()
}
