package replaydb

import "sort"

// Dirty tracking: the candidate-pruning plane asks the ReplayDB which
// files gained telemetry since a watermark instead of re-reading every
// file's history each decision. Access records are appended with strictly
// increasing sequence numbers, so "changed since seq" is a binary search
// for the first access past the watermark plus a scan of only the tail —
// O(log N + changed), never O(files).

// FilesChangedSince returns the IDs of files with at least one access
// record appended after seq (the value a prior Watermark call returned),
// sorted ascending for a deterministic order. A watermark at or past the
// newest record returns nil.
func (db *DB) FilesChangedSince(seq uint64) []int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	db.queries.Inc()
	i := sort.Search(len(db.accesses), func(i int) bool { return db.accesses[i].Seq > seq })
	if i == len(db.accesses) {
		return nil
	}
	seen := make(map[int64]struct{})
	out := make([]int64, 0, len(db.accesses)-i)
	for ; i < len(db.accesses); i++ {
		id := db.accesses[i].FileID
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// FileLastSeq returns the sequence number of the file's newest access
// record — its per-file change counter. A file with no recorded accesses
// returns 0. Two calls returning the same value bracket a window in which
// the file's telemetry (and therefore any feature derived from it) did
// not change.
func (db *DB) FileLastSeq(fileID int64) uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	positions := db.byFile[fileID]
	if len(positions) == 0 {
		return 0
	}
	return db.accesses[positions[len(positions)-1]].Seq
}
