package replaydb

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"geomancy/internal/telemetry"
)

// magic identifies a ReplayDB WAL file and its format version.
var magic = []byte("GRDB0001")

// Options configure a database.
type Options struct {
	// Path is the WAL file; empty means a memory-only database.
	Path string
	// SyncEvery fsyncs the WAL after every n appends; 0 disables explicit
	// syncing (the OS flushes on Close).
	SyncEvery int
}

// DB is the ReplayDB: an append-only store of access and movement records
// with in-memory indexes. All methods are safe for concurrent use.
type DB struct {
	mu sync.RWMutex

	accesses  []AccessRecord
	movements []MovementRecord
	byDevice  map[string][]int // positions in accesses
	byFile    map[int64][]int
	nextSeq   uint64

	file     *os.File
	w        *bufio.Writer
	opts     Options
	unsynced int
	closed   bool

	// marks are the (seq, end-offset) boundaries of replayed WAL frames;
	// TruncateTo uses them to cut the file at a record boundary. appended
	// flips on the first live write, after which the marks are stale and
	// TruncateTo is refused.
	marks    []frameMark
	appended bool

	// telemetry counters; nil handles no-op until SetMetrics installs a
	// registry. Atomic, so they are safe to bump under either lock mode.
	accessInserts   *telemetry.Counter
	movementInserts *telemetry.Counter
	queries         *telemetry.Counter
}

// SetMetrics wires the database's insert/query counters to reg. Replayed
// WAL frames are not counted — the counters track live traffic.
func (db *DB) SetMetrics(reg *telemetry.Registry) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.accessInserts = reg.Counter(telemetry.MetricReplayAccessInserts)
	db.movementInserts = reg.Counter(telemetry.MetricReplayMovementInserts)
	db.queries = reg.Counter(telemetry.MetricReplayQueriesTotal)
}

// Open opens (creating if necessary) a database. Existing WAL contents are
// replayed into memory; a torn final frame — the signature of a crash
// mid-append — is truncated away, matching the recovery behaviour of a
// journaled embedded database.
func Open(opts Options) (*DB, error) {
	db := &DB{
		byDevice: make(map[string][]int),
		byFile:   make(map[int64][]int),
		nextSeq:  1,
		opts:     opts,
	}
	if opts.Path == "" {
		return db, nil
	}
	f, err := os.OpenFile(opts.Path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("replaydb: opening WAL: %w", err)
	}
	validLen, err := db.replay(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, fmt.Errorf("replaydb: truncating torn WAL tail: %w", err)
	}
	if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("replaydb: seeking WAL: %w", err)
	}
	db.file = f
	db.w = bufio.NewWriter(f)
	if validLen == 0 {
		if _, err := db.w.Write(magic); err != nil {
			f.Close()
			return nil, fmt.Errorf("replaydb: writing WAL header: %w", err)
		}
	}
	return db, nil
}

// replay loads every intact frame from f, returning the byte offset of the
// end of the last valid frame.
func (db *DB) replay(f *os.File) (int64, error) {
	r := bufio.NewReader(f)
	hdr := make([]byte, len(magic))
	n, err := io.ReadFull(r, hdr)
	if errors.Is(err, io.EOF) || (errors.Is(err, io.ErrUnexpectedEOF) && n < len(magic)) {
		return 0, nil // empty or stub file: start fresh
	}
	if err != nil {
		return 0, fmt.Errorf("replaydb: reading WAL header: %w", err)
	}
	if string(hdr) != string(magic) {
		return 0, fmt.Errorf("replaydb: %s is not a ReplayDB WAL (bad magic)", f.Name())
	}
	valid := int64(len(magic))
	var frame [5]byte
	for {
		if _, err := io.ReadFull(r, frame[:]); err != nil {
			break // clean EOF or torn header: stop at last valid offset
		}
		typ := recordType(frame[0])
		plen := binary.LittleEndian.Uint32(frame[1:5])
		payload := make([]byte, plen+4)
		if _, err := io.ReadFull(r, payload); err != nil {
			break // torn payload
		}
		body := payload[:plen]
		want := binary.LittleEndian.Uint32(payload[plen:])
		if crc32.Checksum(body, crcTable) != want {
			break // corrupt frame: treat as torn tail
		}
		var seq uint64
		switch typ {
		case frameAccess:
			rec, err := decodeAccess(body)
			if err != nil {
				return valid, err
			}
			db.insertAccess(rec)
			seq = rec.Seq
		case frameMovement:
			m, err := decodeMovement(body)
			if err != nil {
				return valid, err
			}
			db.insertMovement(m)
			seq = m.Seq
		default:
			// Unknown frame type: future format. Stop replay here.
			return valid, nil
		}
		valid += int64(5 + len(payload))
		db.marks = append(db.marks, frameMark{seq: seq, end: valid})
	}
	return valid, nil
}

// frameMark records where a replayed frame ends in the WAL file.
type frameMark struct {
	seq uint64
	end int64
}

func (db *DB) insertAccess(rec AccessRecord) {
	pos := len(db.accesses)
	db.accesses = append(db.accesses, rec)
	db.byDevice[rec.Device] = append(db.byDevice[rec.Device], pos)
	db.byFile[rec.FileID] = append(db.byFile[rec.FileID], pos)
	if rec.Seq >= db.nextSeq {
		db.nextSeq = rec.Seq + 1
	}
}

func (db *DB) insertMovement(m MovementRecord) {
	db.movements = append(db.movements, m)
	if m.Seq >= db.nextSeq {
		db.nextSeq = m.Seq + 1
	}
}

var errClosed = errors.New("replaydb: database is closed")

// writeFrame appends one frame to the WAL (no-op for memory databases).
func (db *DB) writeFrame(typ recordType, payload []byte) error {
	if db.w == nil {
		return nil
	}
	var hdr [5]byte
	hdr[0] = byte(typ)
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := db.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := db.w.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload, crcTable))
	if _, err := db.w.Write(crc[:]); err != nil {
		return err
	}
	db.unsynced++
	if db.opts.SyncEvery > 0 && db.unsynced >= db.opts.SyncEvery {
		//geomancy:allow locksafe journal flush to the local data file, bounded by disk latency, not a network peer
		if err := db.w.Flush(); err != nil {
			return err
		}
		if err := db.file.Sync(); err != nil {
			return err
		}
		db.unsynced = 0
	}
	return nil
}

// AppendAccess stores one access record, assigning its sequence number.
// The stored record (with Seq filled in) is returned.
func (db *DB) AppendAccess(rec AccessRecord) (AccessRecord, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return rec, errClosed
	}
	rec.Seq = db.nextSeq
	db.nextSeq++
	db.appended = true
	if err := db.writeFrame(frameAccess, encodeAccess(&rec)); err != nil {
		return rec, fmt.Errorf("replaydb: appending access: %w", err)
	}
	db.insertAccessNoSeq(rec)
	db.accessInserts.Inc()
	return rec, nil
}

// insertAccessNoSeq is insertAccess without the nextSeq adjustment (the
// caller already assigned the sequence number).
func (db *DB) insertAccessNoSeq(rec AccessRecord) {
	pos := len(db.accesses)
	db.accesses = append(db.accesses, rec)
	db.byDevice[rec.Device] = append(db.byDevice[rec.Device], pos)
	db.byFile[rec.FileID] = append(db.byFile[rec.FileID], pos)
}

// AppendMovement stores one movement record.
func (db *DB) AppendMovement(m MovementRecord) (MovementRecord, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return m, errClosed
	}
	m.Seq = db.nextSeq
	db.nextSeq++
	db.appended = true
	if err := db.writeFrame(frameMovement, encodeMovement(&m)); err != nil {
		return m, fmt.Errorf("replaydb: appending movement: %w", err)
	}
	db.movements = append(db.movements, m)
	db.movementInserts.Inc()
	return m, nil
}

// Len returns the number of access records.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.accesses)
}

// MovementCount returns the number of movement records.
func (db *DB) MovementCount() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.movements)
}

// All returns a copy of every access record in append order.
func (db *DB) All() []AccessRecord {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]AccessRecord, len(db.accesses))
	copy(out, db.accesses)
	return out
}

// Movements returns a copy of every movement record in append order.
func (db *DB) Movements() []MovementRecord {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]MovementRecord, len(db.movements))
	copy(out, db.movements)
	return out
}

// RecentByDevice returns up to n most recent accesses observed on device,
// oldest first — the engine's per-device training query.
func (db *DB) RecentByDevice(device string, n int) []AccessRecord {
	db.mu.RLock()
	defer db.mu.RUnlock()
	db.queries.Inc()
	return db.collect(db.byDevice[device], n)
}

// RecentByFile returns up to n most recent accesses of the file, oldest
// first — the per-file batch query (§V-E: "The data is batched by data
// ID").
func (db *DB) RecentByFile(fileID int64, n int) []AccessRecord {
	db.mu.RLock()
	defer db.mu.RUnlock()
	db.queries.Inc()
	return db.collect(db.byFile[fileID], n)
}

// Recent returns up to n most recent accesses across all devices, oldest
// first.
func (db *DB) Recent(n int) []AccessRecord {
	db.mu.RLock()
	defer db.mu.RUnlock()
	db.queries.Inc()
	start := len(db.accesses) - n
	if start < 0 {
		start = 0
	}
	out := make([]AccessRecord, len(db.accesses)-start)
	copy(out, db.accesses[start:])
	return out
}

func (db *DB) collect(positions []int, n int) []AccessRecord {
	if n <= 0 {
		return nil
	}
	start := len(positions) - n
	if start < 0 {
		start = 0
	}
	out := make([]AccessRecord, 0, len(positions)-start)
	for _, p := range positions[start:] {
		out = append(out, db.accesses[p])
	}
	return out
}

// TimeRange returns all accesses with Time in [from, to), oldest first.
func (db *DB) TimeRange(from, to float64) []AccessRecord {
	db.mu.RLock()
	defer db.mu.RUnlock()
	db.queries.Inc()
	var out []AccessRecord
	for i := range db.accesses {
		if t := db.accesses[i].Time; t >= from && t < to {
			out = append(out, db.accesses[i])
		}
	}
	return out
}

// Devices returns the set of device names that have recorded accesses.
func (db *DB) Devices() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.byDevice))
	for d := range db.byDevice {
		out = append(out, d)
	}
	return out
}

// Sync flushes buffered WAL writes to stable storage.
func (db *DB) Sync() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errClosed
	}
	if db.w == nil {
		return nil
	}
	//geomancy:allow locksafe db.w wraps the local WAL file, not a socket; disk flush latency is bounded
	if err := db.w.Flush(); err != nil {
		return err
	}
	db.unsynced = 0
	return db.file.Sync()
}

// Close flushes and closes the WAL. The database rejects writes afterwards.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	if db.w == nil {
		return nil
	}
	//geomancy:allow locksafe db.w wraps the local WAL file, not a socket; disk flush latency is bounded
	if err := db.w.Flush(); err != nil {
		db.file.Close()
		return err
	}
	if err := db.file.Sync(); err != nil {
		db.file.Close()
		return err
	}
	return db.file.Close()
}
