package replaydb

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func memDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func sampleAccess(i int) AccessRecord {
	devices := []string{"file0", "pic", "people", "tmp", "var", "USBtmp"}
	return AccessRecord{
		Time:       float64(i),
		Workload:   1,
		Run:        int32(i / 10),
		FileID:     int64(i%5 + 1),
		Path:       "/belle2/mc/run00/sim00.root",
		Device:     devices[i%len(devices)],
		BytesRead:  int64(1000 * (i + 1)),
		OpenTS:     int64(i),
		CloseTS:    int64(i + 1),
		Throughput: float64(1000 * (i + 1)),
	}
}

func TestAppendAssignsSequence(t *testing.T) {
	db := memDB(t)
	a, err := db.AppendAccess(sampleAccess(0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.AppendAccess(sampleAccess(1))
	if err != nil {
		t.Fatal(err)
	}
	if a.Seq != 1 || b.Seq != 2 {
		t.Errorf("seqs = %d,%d; want 1,2", a.Seq, b.Seq)
	}
	m, err := db.AppendMovement(MovementRecord{FileID: 1, From: "pic", To: "file0"})
	if err != nil {
		t.Fatal(err)
	}
	if m.Seq != 3 {
		t.Errorf("movement seq = %d, want 3", m.Seq)
	}
}

func TestRecentQueries(t *testing.T) {
	db := memDB(t)
	for i := 0; i < 60; i++ {
		if _, err := db.AppendAccess(sampleAccess(i)); err != nil {
			t.Fatal(err)
		}
	}
	if db.Len() != 60 {
		t.Fatalf("Len = %d, want 60", db.Len())
	}

	// file0 hosts accesses 0, 6, 12, ... (10 of them).
	recs := db.RecentByDevice("file0", 3)
	if len(recs) != 3 {
		t.Fatalf("RecentByDevice returned %d, want 3", len(recs))
	}
	// Oldest first, and the newest is access 54.
	if recs[2].Time != 54 || recs[0].Time != 42 {
		t.Errorf("RecentByDevice times = %v, %v; want 42, 54", recs[0].Time, recs[2].Time)
	}

	byFile := db.RecentByFile(1, 100)
	if len(byFile) != 12 {
		t.Errorf("RecentByFile(1) = %d records, want 12", len(byFile))
	}
	for i := 1; i < len(byFile); i++ {
		if byFile[i].Time < byFile[i-1].Time {
			t.Fatal("RecentByFile not in time order")
		}
	}

	recent := db.Recent(5)
	if len(recent) != 5 || recent[4].Time != 59 {
		t.Errorf("Recent(5) wrong: len %d, last %v", len(recent), recent[len(recent)-1].Time)
	}

	if got := db.RecentByDevice("nonexistent", 5); len(got) != 0 {
		t.Errorf("unknown device returned %d records", len(got))
	}
	if got := db.RecentByDevice("file0", 0); got != nil {
		t.Error("n=0 should return nil")
	}
}

func TestTimeRange(t *testing.T) {
	db := memDB(t)
	for i := 0; i < 20; i++ {
		db.AppendAccess(sampleAccess(i))
	}
	got := db.TimeRange(5, 10)
	if len(got) != 5 {
		t.Fatalf("TimeRange(5,10) = %d records, want 5", len(got))
	}
	if got[0].Time != 5 || got[4].Time != 9 {
		t.Errorf("range bounds wrong: %v..%v", got[0].Time, got[4].Time)
	}
}

func TestDevices(t *testing.T) {
	db := memDB(t)
	for i := 0; i < 12; i++ {
		db.AppendAccess(sampleAccess(i))
	}
	devs := db.Devices()
	if len(devs) != 6 {
		t.Errorf("Devices = %v, want 6 names", devs)
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "replay.wal")
	db, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	var want []AccessRecord
	for i := 0; i < 25; i++ {
		rec, err := db.AppendAccess(sampleAccess(i))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, rec)
	}
	mv, err := db.AppendMovement(MovementRecord{Time: 9, FileID: 3, From: "pic", To: "file0", Bytes: 1 << 20, Duration: 0.5, AccessIndex: 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got := db2.All()
	if len(got) != len(want) {
		t.Fatalf("reloaded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d changed: %+v vs %+v", i, got[i], want[i])
		}
	}
	mvs := db2.Movements()
	if len(mvs) != 1 || mvs[0] != mv {
		t.Fatalf("movement not recovered: %+v", mvs)
	}
	// Sequence numbering continues after reload.
	next, err := db2.AppendAccess(sampleAccess(99))
	if err != nil {
		t.Fatal(err)
	}
	if next.Seq != mv.Seq+1 {
		t.Errorf("continued seq = %d, want %d", next.Seq, mv.Seq+1)
	}
	// Indexes rebuilt.
	if len(db2.RecentByFile(3, 100)) == 0 {
		t.Error("per-file index not rebuilt after reload")
	}
}

func TestTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "replay.wal")
	db, err := Open(Options{Path: path, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := db.AppendAccess(sampleAccess(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: chop bytes off the tail.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-7); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer db2.Close()
	if got := db2.Len(); got != 9 {
		t.Errorf("after torn tail Len = %d, want 9 (last record dropped)", got)
	}
	// Database remains writable after recovery.
	if _, err := db2.AppendAccess(sampleAccess(100)); err != nil {
		t.Fatal(err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	db3, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if got := db3.Len(); got != 10 {
		t.Errorf("after recovery+append Len = %d, want 10", got)
	}
}

func TestCorruptFrameRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "replay.wal")
	db, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		db.AppendAccess(sampleAccess(i))
	}
	db.Close()

	// Flip a byte in the last frame's payload: CRC must reject it.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer db2.Close()
	if got := db2.Len(); got != 4 {
		t.Errorf("after corrupt frame Len = %d, want 4", got)
	}
}

func TestBadMagicRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "notdb.wal")
	if err := os.WriteFile(path, []byte("definitely not a WAL file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Path: path}); err == nil {
		t.Error("Open of non-WAL file should error")
	}
}

func TestClosedRejectsWrites(t *testing.T) {
	db := memDB(t)
	db.Close()
	if _, err := db.AppendAccess(sampleAccess(0)); err == nil {
		t.Error("append after Close should error")
	}
	if _, err := db.AppendMovement(MovementRecord{}); err == nil {
		t.Error("movement after Close should error")
	}
	if err := db.Sync(); err == nil {
		t.Error("Sync after Close should error")
	}
	if err := db.Close(); err != nil {
		t.Errorf("double Close should be nil, got %v", err)
	}
}

func TestConcurrentAppendsAndReads(t *testing.T) {
	db := memDB(t)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				db.AppendAccess(sampleAccess(g*200 + i))
				db.RecentByDevice("file0", 10)
				db.Recent(5)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if db.Len() != 800 {
		t.Errorf("Len = %d, want 800", db.Len())
	}
	// Sequence numbers unique and dense.
	seen := make(map[uint64]bool)
	for _, r := range db.All() {
		if seen[r.Seq] {
			t.Fatalf("duplicate seq %d", r.Seq)
		}
		seen[r.Seq] = true
	}
}

// Property: for any append sequence, RecentByDevice(dev, n) returns the
// suffix of that device's accesses in order.
func TestRecentByDeviceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db, _ := Open(Options{})
		defer db.Close()
		devices := []string{"a", "b", "c"}
		var perDev = map[string][]float64{}
		total := 20 + rng.Intn(80)
		for i := 0; i < total; i++ {
			d := devices[rng.Intn(3)]
			rec := AccessRecord{Time: float64(i), Device: d, FileID: 1}
			db.AppendAccess(rec)
			perDev[d] = append(perDev[d], rec.Time)
		}
		for _, d := range devices {
			n := 1 + rng.Intn(10)
			got := db.RecentByDevice(d, n)
			want := perDev[d]
			if len(want) > n {
				want = want[len(want)-n:]
			}
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i].Time != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeAccessRoundTrip(t *testing.T) {
	rec := AccessRecord{
		Seq: 42, Time: 123.456, Workload: -2, Run: 7, FileID: 9,
		Path: "/a/b/c.root", Device: "pic",
		BytesRead: 1 << 40, BytesWritten: 12345,
		OpenTS: 1600000000, OpenTMS: 999, CloseTS: 1600000001, CloseTMS: 1,
		Throughput: 7.61e9,
	}
	got, err := decodeAccess(encodeAccess(&rec))
	if err != nil {
		t.Fatal(err)
	}
	if got != rec {
		t.Errorf("round trip changed record:\n  %+v\n  %+v", rec, got)
	}
}

func TestDecodeAccessTruncated(t *testing.T) {
	rec := AccessRecord{Path: "/x", Device: "d"}
	payload := encodeAccess(&rec)
	if _, err := decodeAccess(payload[:len(payload)-3]); err == nil {
		t.Error("truncated payload should error")
	}
	if _, err := decodeAccess(nil); err == nil {
		t.Error("empty payload should error")
	}
}

func TestEncodeDecodeMovementRoundTrip(t *testing.T) {
	m := MovementRecord{Seq: 3, Time: 55.5, FileID: 8, From: "pic", To: "file0", Bytes: 999, Duration: 1.25, AccessIndex: 4242}
	got, err := decodeMovement(encodeMovement(&m))
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Errorf("round trip changed movement:\n  %+v\n  %+v", m, got)
	}
	if _, err := decodeMovement([]byte{1, 2}); err == nil {
		t.Error("truncated movement should error")
	}
}

func TestSyncEveryFlushes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sync.wal")
	db, err := Open(Options{Path: path, SyncEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	db.AppendAccess(sampleAccess(0))
	db.AppendAccess(sampleAccess(1)) // triggers sync
	// Without closing, a second handle must see both records.
	db2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if got := db2.Len(); got != 2 {
		t.Errorf("after SyncEvery flush, reader sees %d records, want 2", got)
	}
	db2.Close()
	db.Close()
}

func TestCompactTrimsAndSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "compact.wal")
	db, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		db.AppendAccess(sampleAccess(i))
	}
	db.AppendMovement(MovementRecord{FileID: 1, From: "a", To: "b"})
	if err := db.Compact(10); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 10 {
		t.Errorf("Len after compact = %d, want 10", db.Len())
	}
	if db.MovementCount() != 1 {
		t.Error("movements must survive compaction")
	}
	// Most recent records kept.
	recent := db.Recent(10)
	if recent[0].Time != 40 || recent[9].Time != 49 {
		t.Errorf("kept window = %v..%v, want 40..49", recent[0].Time, recent[9].Time)
	}
	// Indexes rebuilt correctly.
	if got := db.RecentByDevice("file0", 100); len(got) == 0 {
		t.Error("device index broken after compact")
	}
	// Still writable; new records persist across reopen.
	if _, err := db.AppendAccess(sampleAccess(99)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Len() != 11 {
		t.Errorf("reopened Len = %d, want 11", db2.Len())
	}
	if db2.MovementCount() != 1 {
		t.Error("movement lost across compact+reopen")
	}
}

func TestCompactMemoryOnly(t *testing.T) {
	db := memDB(t)
	for i := 0; i < 20; i++ {
		db.AppendAccess(sampleAccess(i))
	}
	if err := db.Compact(5); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 5 {
		t.Errorf("Len = %d, want 5", db.Len())
	}
	if err := db.Compact(-1); err == nil {
		t.Error("negative keep should error")
	}
}

func TestCompactNoOpWhenSmall(t *testing.T) {
	db := memDB(t)
	for i := 0; i < 5; i++ {
		db.AppendAccess(sampleAccess(i))
	}
	if err := db.Compact(100); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 5 {
		t.Errorf("Len = %d, want 5", db.Len())
	}
}

func TestCompactClosed(t *testing.T) {
	db := memDB(t)
	db.Close()
	if err := db.Compact(1); err == nil {
		t.Error("compact on closed db should error")
	}
}

func TestExportCSV(t *testing.T) {
	db := memDB(t)
	db.AppendAccess(sampleAccess(0))
	db.AppendAccess(sampleAccess(1))
	var buf strings.Builder
	if err := db.ExportCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2", len(lines))
	}
	if !strings.HasPrefix(lines[0], "seq,time,workload") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "file0") {
		t.Errorf("row = %q", lines[1])
	}
}
