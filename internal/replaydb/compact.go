package replaydb

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// Compact rewrites the WAL keeping only the most recent keepAccesses
// access records (movement records are always kept: they are the layout
// history). Memory state is trimmed to match. Compact is a no-op for
// memory-only databases beyond trimming, and for keepAccesses ≥ Len().
//
// The rewrite is atomic: a temporary WAL is written, synced, and renamed
// over the original, so a crash mid-compact preserves the old contents.
func (db *DB) Compact(keepAccesses int) error {
	if keepAccesses < 0 {
		return fmt.Errorf("replaydb: negative keep count %d", keepAccesses)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errClosed
	}

	// Trim memory state.
	if keepAccesses < len(db.accesses) {
		drop := len(db.accesses) - keepAccesses
		db.accesses = append([]AccessRecord(nil), db.accesses[drop:]...)
		db.byDevice = make(map[string][]int)
		db.byFile = make(map[int64][]int)
		for pos := range db.accesses {
			rec := &db.accesses[pos]
			db.byDevice[rec.Device] = append(db.byDevice[rec.Device], pos)
			db.byFile[rec.FileID] = append(db.byFile[rec.FileID], pos)
		}
	}
	if db.w == nil {
		return nil
	}

	// Rewrite the WAL.
	//geomancy:allow locksafe db.w wraps the local WAL file, not a socket; disk flush latency is bounded
	if err := db.w.Flush(); err != nil {
		return fmt.Errorf("replaydb: compacting: %w", err)
	}
	tmpPath := db.opts.Path + ".compact"
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("replaydb: compacting: %w", err)
	}
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpPath)
	}
	write := func(data []byte) error {
		_, err := tmp.Write(data)
		return err
	}
	if err := write(magic); err != nil {
		cleanup()
		return fmt.Errorf("replaydb: compacting: %w", err)
	}
	frame := func(typ recordType, payload []byte) []byte {
		return appendFrame(nil, typ, payload)
	}
	for i := range db.accesses {
		if err := write(frame(frameAccess, encodeAccess(&db.accesses[i]))); err != nil {
			cleanup()
			return fmt.Errorf("replaydb: compacting: %w", err)
		}
	}
	for i := range db.movements {
		if err := write(frame(frameMovement, encodeMovement(&db.movements[i]))); err != nil {
			cleanup()
			return fmt.Errorf("replaydb: compacting: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("replaydb: compacting: %w", err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return fmt.Errorf("replaydb: compacting: %w", err)
	}
	if err := os.Rename(tmpPath, db.opts.Path); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("replaydb: compacting: %w", err)
	}
	// Reopen the handle on the new file.
	old := db.file
	f, err := os.OpenFile(db.opts.Path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("replaydb: reopening after compact: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("replaydb: reopening after compact: %w", err)
	}
	db.file = f
	db.w.Reset(f)
	old.Close()
	return nil
}

// ExportCSV writes every access record as CSV for external analysis.
func (db *DB) ExportCSV(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	cw := csv.NewWriter(w)
	header := []string{"seq", "time", "workload", "run", "file_id", "path", "device",
		"rb", "wb", "ots", "otms", "cts", "ctms", "throughput"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("replaydb: exporting CSV: %w", err)
	}
	for i := range db.accesses {
		r := &db.accesses[i]
		row := []string{
			strconv.FormatUint(r.Seq, 10),
			strconv.FormatFloat(r.Time, 'g', -1, 64),
			strconv.FormatInt(int64(r.Workload), 10),
			strconv.FormatInt(int64(r.Run), 10),
			strconv.FormatInt(r.FileID, 10),
			r.Path,
			r.Device,
			strconv.FormatInt(r.BytesRead, 10),
			strconv.FormatInt(r.BytesWritten, 10),
			strconv.FormatInt(r.OpenTS, 10),
			strconv.FormatInt(r.OpenTMS, 10),
			strconv.FormatInt(r.CloseTS, 10),
			strconv.FormatInt(r.CloseTMS, 10),
			strconv.FormatFloat(r.Throughput, 'g', -1, 64),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("replaydb: exporting CSV: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// appendFrame appends one encoded WAL frame to dst.
func appendFrame(dst []byte, typ recordType, payload []byte) []byte {
	var hdr [5]byte
	hdr[0] = byte(typ)
	putLen(hdr[1:], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	var crc [4]byte
	putLen(crc[:], checksum(payload))
	return append(dst, crc[:]...)
}
