// Package replaydb implements Geomancy's ReplayDB (§V-A): the embedded
// database, decoupled from the target system, that stores every raw
// performance record the monitoring agents report and every data-layout
// action the engine takes, each indexed by timestamp "to show an evolution
// of the data layout and corresponding performance".
//
// The paper uses SQLite; this implementation is a purpose-built embedded
// store with the same durability contract for this access pattern: an
// append-only write-ahead log with CRC-framed records and torn-tail
// recovery, plus in-memory indexes serving the engine's queries (the most
// recent X accesses per storage device or per file, and time-range scans).
package replaydb

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// AccessRecord is one observed file access: the telemetry a monitoring
// agent reports for a single open-to-close interaction.
type AccessRecord struct {
	// Seq is the database-assigned monotone sequence number.
	Seq uint64
	// Time is the (virtual) time of the access in seconds.
	Time float64
	// Workload distinguishes concurrent workloads (experiment 3).
	Workload int32
	// Run is the workload-run index the access belongs to.
	Run int32
	// FileID is the stable file identifier.
	FileID int64
	// Path is the file's logical path.
	Path string
	// Device is the storage-device (mount) name hosting the access.
	Device string
	// BytesRead and BytesWritten measure the access volume.
	BytesRead, BytesWritten int64
	// OpenTS/OpenTMS and CloseTS/CloseTMS split the open and close
	// timestamps into seconds and millisecond parts as the paper's
	// throughput formula expects.
	OpenTS, OpenTMS   int64
	CloseTS, CloseTMS int64
	// Throughput is the measured bytes/second of the access.
	Throughput float64
}

// MovementRecord is one data-layout action: a file moved between devices.
type MovementRecord struct {
	Seq      uint64
	Time     float64
	FileID   int64
	From, To string
	Bytes    int64
	// Duration is the transfer time in seconds (the movement overhead).
	Duration float64
	// AccessIndex is the global access count at the moment of the move;
	// Fig. 5 aligns movement bars with it.
	AccessIndex int64
}

// recordType tags WAL frames.
type recordType byte

const (
	frameAccess recordType = iota + 1
	frameMovement
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// checksum computes the WAL frame checksum of a payload.
func checksum(payload []byte) uint32 { return crc32.Checksum(payload, crcTable) }

// putLen stores a uint32 little-endian into b[:4].
func putLen(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }

func putString(buf *bytes.Buffer, s string) {
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], uint32(len(s)))
	buf.Write(l[:])
	buf.WriteString(s)
}

func getString(r *bytes.Reader) (string, error) {
	var l [4]byte
	if _, err := io.ReadFull(r, l[:]); err != nil {
		return "", err
	}
	n := binary.LittleEndian.Uint32(l[:])
	if n > uint32(r.Len()) {
		return "", fmt.Errorf("replaydb: string length %d exceeds remaining %d", n, r.Len())
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func putU64(buf *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	buf.Write(b[:])
}

func getU64(r *bytes.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func putI64(buf *bytes.Buffer, v int64)   { putU64(buf, uint64(v)) }
func putF64(buf *bytes.Buffer, v float64) { putU64(buf, math.Float64bits(v)) }
func putI32(buf *bytes.Buffer, v int32)   { putU64(buf, uint64(uint32(v))) }

func getI64(r *bytes.Reader) (int64, error) {
	v, err := getU64(r)
	return int64(v), err
}

func getF64(r *bytes.Reader) (float64, error) {
	v, err := getU64(r)
	return math.Float64frombits(v), err
}

func getI32(r *bytes.Reader) (int32, error) {
	v, err := getU64(r)
	return int32(uint32(v)), err
}

// encodeAccess serializes a record into a WAL frame payload.
func encodeAccess(rec *AccessRecord) []byte {
	var buf bytes.Buffer
	putU64(&buf, rec.Seq)
	putF64(&buf, rec.Time)
	putI32(&buf, rec.Workload)
	putI32(&buf, rec.Run)
	putI64(&buf, rec.FileID)
	putString(&buf, rec.Path)
	putString(&buf, rec.Device)
	putI64(&buf, rec.BytesRead)
	putI64(&buf, rec.BytesWritten)
	putI64(&buf, rec.OpenTS)
	putI64(&buf, rec.OpenTMS)
	putI64(&buf, rec.CloseTS)
	putI64(&buf, rec.CloseTMS)
	putF64(&buf, rec.Throughput)
	return buf.Bytes()
}

func decodeAccess(payload []byte) (AccessRecord, error) {
	r := bytes.NewReader(payload)
	var rec AccessRecord
	var err error
	read := func(f func() error) {
		if err == nil {
			err = f()
		}
	}
	read(func() error { rec.Seq, err = getU64(r); return err })
	read(func() error { rec.Time, err = getF64(r); return err })
	read(func() error { rec.Workload, err = getI32(r); return err })
	read(func() error { rec.Run, err = getI32(r); return err })
	read(func() error { rec.FileID, err = getI64(r); return err })
	read(func() error { rec.Path, err = getString(r); return err })
	read(func() error { rec.Device, err = getString(r); return err })
	read(func() error { rec.BytesRead, err = getI64(r); return err })
	read(func() error { rec.BytesWritten, err = getI64(r); return err })
	read(func() error { rec.OpenTS, err = getI64(r); return err })
	read(func() error { rec.OpenTMS, err = getI64(r); return err })
	read(func() error { rec.CloseTS, err = getI64(r); return err })
	read(func() error { rec.CloseTMS, err = getI64(r); return err })
	read(func() error { rec.Throughput, err = getF64(r); return err })
	if err != nil {
		return rec, fmt.Errorf("replaydb: decoding access record: %w", err)
	}
	return rec, nil
}

func encodeMovement(m *MovementRecord) []byte {
	var buf bytes.Buffer
	putU64(&buf, m.Seq)
	putF64(&buf, m.Time)
	putI64(&buf, m.FileID)
	putString(&buf, m.From)
	putString(&buf, m.To)
	putI64(&buf, m.Bytes)
	putF64(&buf, m.Duration)
	putI64(&buf, m.AccessIndex)
	return buf.Bytes()
}

func decodeMovement(payload []byte) (MovementRecord, error) {
	r := bytes.NewReader(payload)
	var m MovementRecord
	var err error
	read := func(f func() error) {
		if err == nil {
			err = f()
		}
	}
	read(func() error { m.Seq, err = getU64(r); return err })
	read(func() error { m.Time, err = getF64(r); return err })
	read(func() error { m.FileID, err = getI64(r); return err })
	read(func() error { m.From, err = getString(r); return err })
	read(func() error { m.To, err = getString(r); return err })
	read(func() error { m.Bytes, err = getI64(r); return err })
	read(func() error { m.Duration, err = getF64(r); return err })
	read(func() error { m.AccessIndex, err = getI64(r); return err })
	if err != nil {
		return m, fmt.Errorf("replaydb: decoding movement record: %w", err)
	}
	return m, nil
}
