package replaydb

import (
	"math"
	"testing"
)

func TestSummary(t *testing.T) {
	db := memDB(t)
	// Two devices with known throughputs.
	for i, tp := range []float64{100, 200, 300} {
		db.AppendAccess(AccessRecord{Time: float64(i), Device: "a", FileID: 1, BytesRead: 10, Throughput: tp})
	}
	db.AppendAccess(AccessRecord{Time: 9, Device: "b", FileID: 2, BytesWritten: 5, Throughput: 50})

	sums := db.Summary()
	if len(sums) != 2 || sums[0].Device != "a" || sums[1].Device != "b" {
		t.Fatalf("summaries = %+v", sums)
	}
	a := sums[0]
	if a.Accesses != 3 || a.MeanThroughput != 200 {
		t.Errorf("a = %+v", a)
	}
	wantStd := math.Sqrt((100.0*100 + 0 + 100*100) / 3)
	if math.Abs(a.StdThroughput-wantStd) > 1e-9 {
		t.Errorf("std = %v, want %v", a.StdThroughput, wantStd)
	}
	if a.Bytes != 30 || a.FirstTime != 0 || a.LastTime != 2 {
		t.Errorf("a aggregates = %+v", a)
	}
	if sums[1].Bytes != 5 {
		t.Errorf("b bytes = %d", sums[1].Bytes)
	}
}

func TestSummaryEmpty(t *testing.T) {
	db := memDB(t)
	if got := db.Summary(); len(got) != 0 {
		t.Errorf("empty db summary = %+v", got)
	}
}

func TestQueryFilters(t *testing.T) {
	db := memDB(t)
	for i := 0; i < 30; i++ {
		db.AppendAccess(AccessRecord{
			Time:     float64(i),
			Device:   []string{"a", "b"}[i%2],
			FileID:   int64(i%3 + 1),
			Workload: int32(i%2 + 1),
		})
	}
	if got := db.Query(Filter{Device: "a"}); len(got) != 15 {
		t.Errorf("device filter = %d records, want 15", len(got))
	}
	if got := db.Query(Filter{FileID: 2}); len(got) != 10 {
		t.Errorf("file filter = %d records, want 10", len(got))
	}
	if got := db.Query(Filter{Workload: 1}); len(got) != 15 {
		t.Errorf("workload filter = %d records, want 15", len(got))
	}
	if got := db.Query(Filter{From: 10, To: 20}); len(got) != 10 {
		t.Errorf("time filter = %d records, want 10", len(got))
	}
	got := db.Query(Filter{Device: "a", Workload: 1, From: 0, To: 10})
	for _, r := range got {
		if r.Device != "a" || r.Workload != 1 || r.Time >= 10 {
			t.Fatalf("combined filter leaked %+v", r)
		}
	}
	if got := db.Query(Filter{Device: "zzz"}); got != nil {
		t.Error("no-match query should return nil")
	}
	if got := db.Query(Filter{}); len(got) != 30 {
		t.Errorf("empty filter = %d records, want all 30", len(got))
	}
}
