package replaydb

import (
	"testing"

	"geomancy/internal/telemetry"
)

func TestInsertAndQueryCounters(t *testing.T) {
	db := memDB(t)
	reg := telemetry.NewRegistry()
	db.SetMetrics(reg)

	for i := 0; i < 10; i++ {
		if _, err := db.AppendAccess(sampleAccess(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.AppendMovement(MovementRecord{FileID: 1, From: "pic", To: "file0"}); err != nil {
		t.Fatal(err)
	}
	db.Recent(5)
	db.RecentByDevice("pic", 5)
	db.RecentByFile(1, 5)
	db.TimeRange(0, 5)
	db.Query(Filter{Device: "pic"})

	if got := reg.Counter(telemetry.MetricReplayAccessInserts).Value(); got != 10 {
		t.Errorf("access inserts = %d, want 10", got)
	}
	if got := reg.Counter(telemetry.MetricReplayMovementInserts).Value(); got != 1 {
		t.Errorf("movement inserts = %d, want 1", got)
	}
	if got := reg.Counter(telemetry.MetricReplayQueriesTotal).Value(); got != 5 {
		t.Errorf("queries = %d, want 5", got)
	}
}

// A WAL reopen replays frames without counting them as live inserts.
func TestReplayedFramesNotCounted(t *testing.T) {
	path := t.TempDir() + "/replay.wal"
	db, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := db.AppendAccess(sampleAccess(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	reg := telemetry.NewRegistry()
	db2.SetMetrics(reg)
	if db2.Len() != 4 {
		t.Fatalf("replay lost records: %d", db2.Len())
	}
	if got := reg.Counter(telemetry.MetricReplayAccessInserts).Value(); got != 0 {
		t.Errorf("replayed frames counted as inserts: %d", got)
	}
	if _, err := db2.AppendAccess(sampleAccess(9)); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(telemetry.MetricReplayAccessInserts).Value(); got != 1 {
		t.Errorf("live insert count = %d, want 1", got)
	}
}
