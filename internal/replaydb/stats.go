package replaydb

import (
	"math"
	"sort"
)

// DeviceSummary aggregates one device's telemetry.
type DeviceSummary struct {
	Device   string
	Accesses int
	// MeanThroughput and StdThroughput are in bytes/second.
	MeanThroughput, StdThroughput float64
	// Bytes is the total volume observed (reads + writes).
	Bytes int64
	// FirstTime and LastTime bound the device's observation window.
	FirstTime, LastTime float64
}

// Summary computes per-device aggregates over all stored accesses,
// ordered by device name — the data behind Table IV's throughput column
// and cmd/replaydb's stats view.
func (db *DB) Summary() []DeviceSummary {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]DeviceSummary, 0, len(db.byDevice))
	for dev, positions := range db.byDevice {
		s := DeviceSummary{Device: dev, Accesses: len(positions)}
		if len(positions) == 0 {
			out = append(out, s)
			continue
		}
		var sum, sq float64
		s.FirstTime = math.Inf(1)
		s.LastTime = math.Inf(-1)
		for _, p := range positions {
			rec := &db.accesses[p]
			sum += rec.Throughput
			s.Bytes += rec.BytesRead + rec.BytesWritten
			if rec.Time < s.FirstTime {
				s.FirstTime = rec.Time
			}
			if rec.Time > s.LastTime {
				s.LastTime = rec.Time
			}
		}
		mean := sum / float64(len(positions))
		for _, p := range positions {
			d := db.accesses[p].Throughput - mean
			sq += d * d
		}
		s.MeanThroughput = mean
		s.StdThroughput = math.Sqrt(sq / float64(len(positions)))
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Device < out[j].Device })
	return out
}

// Filter selects access records matching every non-zero criterion.
type Filter struct {
	// Device restricts to one mount when non-empty.
	Device string
	// FileID restricts to one file when non-zero.
	FileID int64
	// Workload restricts to one workload id when non-zero.
	Workload int32
	// From/To bound Time as [From, To); both zero means unbounded.
	From, To float64
}

// Query returns all access records matching f, in append order.
func (db *DB) Query(f Filter) []AccessRecord {
	db.mu.RLock()
	defer db.mu.RUnlock()
	db.queries.Inc()
	bounded := f.From != 0 || f.To != 0
	var out []AccessRecord
	for i := range db.accesses {
		rec := &db.accesses[i]
		if f.Device != "" && rec.Device != f.Device {
			continue
		}
		if f.FileID != 0 && rec.FileID != f.FileID {
			continue
		}
		if f.Workload != 0 && rec.Workload != f.Workload {
			continue
		}
		if bounded && (rec.Time < f.From || rec.Time >= f.To) {
			continue
		}
		out = append(out, *rec)
	}
	return out
}
