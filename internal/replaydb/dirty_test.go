package replaydb

import (
	"reflect"
	"testing"
)

func appendAccessOn(t *testing.T, db *DB, fileID int64, device string) AccessRecord {
	t.Helper()
	rec, err := db.AppendAccess(AccessRecord{FileID: fileID, Device: device, Throughput: 1})
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestFilesChangedSince(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if got := db.FilesChangedSince(0); got != nil {
		t.Fatalf("empty db reported changes: %v", got)
	}

	appendAccessOn(t, db, 3, "a")
	appendAccessOn(t, db, 1, "a")
	mark := db.Watermark()

	if got := db.FilesChangedSince(mark); got != nil {
		t.Fatalf("nothing appended past watermark, got %v", got)
	}

	appendAccessOn(t, db, 7, "b")
	// A movement record bumps the global sequence but dirties no file.
	if _, err := db.AppendMovement(MovementRecord{FileID: 7, From: "a", To: "b"}); err != nil {
		t.Fatal(err)
	}
	appendAccessOn(t, db, 2, "a")
	appendAccessOn(t, db, 7, "a") // duplicate file: reported once

	got := db.FilesChangedSince(mark)
	want := []int64{2, 7}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("FilesChangedSince(%d) = %v, want %v", mark, got, want)
	}

	// The full history from seq 0: every file, sorted.
	if got := db.FilesChangedSince(0); !reflect.DeepEqual(got, []int64{1, 2, 3, 7}) {
		t.Fatalf("FilesChangedSince(0) = %v", got)
	}
}

func TestFileLastSeq(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if got := db.FileLastSeq(9); got != 0 {
		t.Fatalf("unknown file has change counter %d", got)
	}
	first := appendAccessOn(t, db, 9, "a")
	if got := db.FileLastSeq(9); got != first.Seq {
		t.Fatalf("FileLastSeq = %d, want %d", got, first.Seq)
	}
	appendAccessOn(t, db, 4, "a") // other file: counter unchanged
	if got := db.FileLastSeq(9); got != first.Seq {
		t.Fatalf("FileLastSeq moved to %d on another file's append", got)
	}
	second := appendAccessOn(t, db, 9, "b")
	if got := db.FileLastSeq(9); got != second.Seq {
		t.Fatalf("FileLastSeq = %d, want %d", got, second.Seq)
	}
}

// TestFilesChangedSinceSurvivesWAL checks that dirty tracking anchors on
// the persisted sequence numbers: records replayed from a WAL answer the
// same queries the original writer's memory index did.
func TestFilesChangedSinceSurvivesWAL(t *testing.T) {
	path := t.TempDir() + "/dirty.wal"
	db, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	appendAccessOn(t, db, 5, "a")
	mark := db.Watermark()
	appendAccessOn(t, db, 6, "b")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.FilesChangedSince(mark); !reflect.DeepEqual(got, []int64{6}) {
		t.Fatalf("after replay FilesChangedSince(%d) = %v, want [6]", mark, got)
	}
	if got := re.FileLastSeq(5); got != mark {
		t.Fatalf("after replay FileLastSeq(5) = %d, want %d", got, mark)
	}
}
