package replaydb

import "fmt"

// Watermark returns the highest sequence number assigned so far (0 when
// the database is empty). The checkpoint plane records it so a restored
// run can discard WAL records written after the snapshot was taken and
// regenerate them deterministically.
func (db *DB) Watermark() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.nextSeq - 1
}

// TruncateTo discards every record with a sequence number greater than
// seq, from memory and — for a file-backed database — from the WAL file,
// which is physically truncated at the matching frame boundary. The next
// append is assigned seq+1, so a resumed run regenerates the discarded
// tail with identical sequence numbers.
//
// TruncateTo is a recovery-time operation: it is only valid on a freshly
// opened database, before any appends (frame offsets are tracked during
// WAL replay and are not maintained across live writes).
func (db *DB) TruncateTo(seq uint64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errClosed
	}
	if db.appended {
		return fmt.Errorf("replaydb: TruncateTo after appends; truncate immediately after Open")
	}
	if seq >= db.nextSeq-1 {
		return nil // nothing recorded past seq
	}

	accesses := db.accesses
	movements := db.movements
	db.accesses = nil
	db.movements = nil
	db.byDevice = make(map[string][]int)
	db.byFile = make(map[int64][]int)
	db.nextSeq = 1
	for i := range accesses {
		if accesses[i].Seq <= seq {
			db.insertAccess(accesses[i])
		}
	}
	for i := range movements {
		if movements[i].Seq <= seq {
			db.insertMovement(movements[i])
		}
	}
	db.nextSeq = seq + 1

	if db.file == nil {
		return nil
	}
	end := int64(len(magic))
	for _, m := range db.marks {
		if m.seq > seq {
			break
		}
		end = m.end
	}
	db.marks = db.marks[:0]
	if err := db.file.Truncate(end); err != nil {
		return fmt.Errorf("replaydb: truncating WAL to seq %d: %w", seq, err)
	}
	if _, err := db.file.Seek(end, 0); err != nil {
		return fmt.Errorf("replaydb: seeking WAL after truncate: %w", err)
	}
	db.w.Reset(db.file)
	if err := db.file.Sync(); err != nil {
		return fmt.Errorf("replaydb: syncing truncated WAL: %w", err)
	}
	return nil
}

// Bulkload inserts previously exported records into an empty memory
// database, preserving their sequence numbers — how a snapshot restores a
// memory-only replay log. File-backed databases recover their records
// from the WAL instead, so Bulkload rejects them, as it does a database
// that already holds records.
func (db *DB) Bulkload(accesses []AccessRecord, movements []MovementRecord) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errClosed
	}
	if db.file != nil {
		return fmt.Errorf("replaydb: Bulkload on a file-backed database; records replay from the WAL")
	}
	if len(db.accesses) > 0 || len(db.movements) > 0 {
		return fmt.Errorf("replaydb: Bulkload into a non-empty database")
	}
	for i := range accesses {
		db.insertAccess(accesses[i])
	}
	for i := range movements {
		db.insertMovement(movements[i])
	}
	db.appended = true
	return nil
}
