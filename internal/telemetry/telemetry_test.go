package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", L("dev", "a"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	// Same name+labels returns the same series.
	if r.Counter("test_total", L("dev", "a")) != c {
		t.Error("counter identity not stable across lookups")
	}
	if r.Counter("test_total", L("dev", "b")) == c {
		t.Error("different labels must yield a different series")
	}

	g := r.Gauge("test_gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual_use")
	defer func() {
		if recover() == nil {
			t.Error("reusing a counter name as a gauge should panic")
		}
	}()
	r.Gauge("dual_use")
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(LinearBuckets(1, 1, 100)) // bounds 1..100
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); got != 5050 {
		t.Errorf("sum = %v, want 5050", got)
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.50, 50, 1.5},
		{0.95, 95, 1.5},
		{0.99, 99, 1.5},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("q%.0f = %v, want ≈%v", tc.q*100, got, tc.want)
		}
	}
	if p50, p99 := h.Quantile(0.5), h.Quantile(0.99); p50 > p99 {
		t.Errorf("quantiles not monotone: p50=%v p99=%v", p50, p99)
	}
	// Overflow clamps to the last finite bound.
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(50)
	if got := h2.Quantile(0.5); got != 2 {
		t.Errorf("overflow quantile = %v, want 2 (last bound)", got)
	}
}

func TestHistogramQuantileAccuracyUniform(t *testing.T) {
	h := NewHistogram(ExpBuckets(1e-4, 2, 24))
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		h.Observe(rng.Float64()) // uniform [0,1)
	}
	// Exponential buckets are coarse; within-bucket interpolation should
	// still land within the bucket-resolution error of the true quantile.
	if got := h.Quantile(0.5); got < 0.35 || got > 0.70 {
		t.Errorf("p50 of U[0,1) = %v, want ≈0.5", got)
	}
	// p95 falls in the (0.82, 1.64] bucket; the estimate is only as good
	// as the bucket resolution.
	if got := h.Quantile(0.95); got < 0.82 || got > 1.65 {
		t.Errorf("p95 of U[0,1) = %v, want within its bucket (0.82, 1.64]", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(3)
	r.Histogram("z", nil).Observe(1)
	r.Help("x", "nope")
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot should be nil")
	}
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Error(err)
	}
	var h *Histogram
	h.Observe(1)
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Error("nil histogram should read zero")
	}
}

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("geo_ops_total", L("device", "pic")).Add(3)
	r.Gauge("geo_loss").Set(0.25)
	h := r.Histogram("geo_lat_seconds", []float64{0.1, 1}, L("device", "pic"))
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.Help("geo_ops_total", "Operations.")

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP geo_ops_total Operations.",
		"# TYPE geo_ops_total counter",
		`geo_ops_total{device="pic"} 3`,
		"# TYPE geo_loss gauge",
		"geo_loss 0.25",
		"# TYPE geo_lat_seconds histogram",
		`geo_lat_seconds_bucket{device="pic",le="0.1"} 1`,
		`geo_lat_seconds_bucket{device="pic",le="1"} 2`,
		`geo_lat_seconds_bucket{device="pic",le="+Inf"} 3`,
		`geo_lat_seconds_sum{device="pic"} 5.55`,
		`geo_lat_seconds_count{device="pic"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
}

// Help installed before the metric's first use (the RegisterHelp pattern)
// must still reach the exposition.
func TestHelpBeforeFirstUse(t *testing.T) {
	r := NewRegistry()
	r.Help("pre_total", "Registered ahead of use.")
	r.Counter("pre_total").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "# HELP pre_total Registered ahead of use.") {
		t.Errorf("pre-registered help lost:\n%s", b.String())
	}

	r2 := NewRegistry()
	RegisterHelp(r2)
	r2.Counter(MetricMovementsTotal).Inc()
	b.Reset()
	if err := r2.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "# HELP "+MetricMovementsTotal+" ") {
		t.Errorf("RegisterHelp text missing for %s:\n%s", MetricMovementsTotal, b.String())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", L("path", `a"b\c`)).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{path="a\"b\\c"} 1`) {
		t.Errorf("label not escaped: %s", b.String())
	}
}

func TestJSONSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("snap_total", L("device", "var")).Add(7)
	r.Histogram("snap_lat", []float64{1, 2, 4}).Observe(1.5)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []Sample `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if len(doc.Metrics) != 2 {
		t.Fatalf("snapshot has %d samples, want 2", len(doc.Metrics))
	}
	byName := map[string]Sample{}
	for _, s := range doc.Metrics {
		byName[s.Name] = s
	}
	if c := byName["snap_total"]; c.Value == nil || *c.Value != 7 || c.Labels["device"] != "var" {
		t.Errorf("counter sample = %+v", c)
	}
	if h := byName["snap_lat"]; h.Histogram == nil || h.Histogram.Count != 1 {
		t.Errorf("histogram sample = %+v", h)
	}
}

// TestConcurrentRegistry hammers one registry from many goroutines —
// run with -race. Writers update existing series, create new ones, and
// readers render concurrently.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dev := L("device", fmt.Sprintf("d%d", w%3))
			for i := 0; i < perWorker; i++ {
				r.Counter("conc_total", dev).Inc()
				r.Gauge("conc_gauge", dev).Add(1)
				r.Histogram("conc_lat", DefLatencyBuckets, dev).Observe(float64(i%100) / 1000)
				if i%500 == 0 {
					// Concurrent reads while writes continue.
					_ = r.Snapshot()
					_ = r.WritePrometheus(io.Discard)
				}
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for _, d := range []string{"d0", "d1", "d2"} {
		total += r.Counter("conc_total", L("device", d)).Value()
	}
	if want := uint64(workers * perWorker); total != want {
		t.Errorf("lost updates: counter sum = %d, want %d", total, want)
	}
	h := r.Histogram("conc_lat", DefLatencyBuckets, L("device", "d0"))
	if h.Count() == 0 {
		t.Error("histogram empty after concurrent writes")
	}
}

func TestServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total").Add(42)
	srv, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(string(body), "served_total 42") {
		t.Errorf("metrics body missing counter:\n%s", body)
	}

	resp, err = http.Get("http://" + srv.Addr() + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	jbody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var doc struct {
		Metrics []Sample `json:"metrics"`
	}
	if err := json.Unmarshal(jbody, &doc); err != nil {
		t.Fatalf("bad JSON endpoint: %v", err)
	}
	if len(doc.Metrics) != 1 || doc.Metrics[0].Name != "served_total" {
		t.Errorf("json endpoint = %+v", doc.Metrics)
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	if len(exp) != 4 || exp[3] != 8 {
		t.Errorf("ExpBuckets = %v", exp)
	}
	lin := LinearBuckets(0, 5, 3)
	if len(lin) != 3 || lin[2] != 10 {
		t.Errorf("LinearBuckets = %v", lin)
	}
	if ExpBuckets(0, 2, 3) != nil || ExpBuckets(1, 1, 3) != nil || LinearBuckets(0, 0, 3) != nil {
		t.Error("degenerate bucket specs should return nil")
	}
}
