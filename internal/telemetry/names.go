package telemetry

// Canonical metric names reported by the closed loop. Every layer uses
// these constants so the in-process Loop and the distributed TCP
// deployment export an identical schema (documented in README.md
// §Observability).
const (
	// Workload / storage layer — labeled {device="..."}.
	MetricAccessLatency    = "geomancy_access_latency_seconds"
	MetricAccessThroughput = "geomancy_access_throughput_bytes_per_second"
	MetricAccessesTotal    = "geomancy_accesses_total"
	MetricAccessBytesTotal = "geomancy_access_bytes_total"

	// Decision loop (core.Loop).
	MetricMovementsTotal   = "geomancy_movements_total"
	MetricMovedBytesTotal  = "geomancy_moved_bytes_total"
	MetricDeferralsTotal   = "geomancy_move_deferrals_total"
	MetricExplorationTotal = "geomancy_exploration_moves_total"

	// DRL engine (core.Engine).
	MetricTrainingsTotal        = "geomancy_trainings_total"
	MetricTrainingDuration      = "geomancy_training_duration_seconds"
	MetricTrainingLoss          = "geomancy_training_loss"
	MetricTrainingSamples       = "geomancy_training_samples"
	MetricTrainingErrorsTotal   = "geomancy_training_errors_total"
	MetricTrainingDurationHist  = "geomancy_training_duration_seconds_hist"
	MetricTrainingValidationMAE = "geomancy_training_validation_mare"
	MetricInferenceBatchSize    = "geomancy_inference_batch_size"
	MetricInferenceDuration     = "geomancy_inference_duration_seconds"

	// Sharded coordinator (core.Sharded) — labeled {shard="..."}.
	MetricShardDecisions   = "geomancy_shard_decisions_total"
	MetricShardEscalations = "geomancy_shard_escalations_total"
	MetricShardMigrations  = "geomancy_shard_migrations_total"

	// Interface Daemon (agents) — RPC histogram labeled {type="..."}.
	MetricDaemonConnectionsTotal = "geomancy_daemon_connections_total"
	MetricDaemonConnectionsOpen  = "geomancy_daemon_connections_open"
	MetricDaemonRPCSeconds       = "geomancy_daemon_rpc_seconds"
	MetricDaemonErrorsTotal      = "geomancy_daemon_errors_total"
	MetricDaemonLayoutPushes     = "geomancy_daemon_layout_pushes_total"
	MetricDaemonReportsTotal     = "geomancy_daemon_reports_total"
	MetricDaemonDuplicateBatches = "geomancy_daemon_duplicate_batches_total"

	// Agent-side fault tolerance (monitors, query client, control agents)
	// — retries/reconnects labeled {agent="..."}.
	MetricAgentRetriesTotal    = "geomancy_agents_retries_total"
	MetricAgentReconnectsTotal = "geomancy_agents_reconnects_total"
	MetricAgentDegradedTotal   = "geomancy_agents_degraded_decisions_total"
	MetricAgentAckSeconds      = "geomancy_agents_ack_latency_seconds"

	// ReplayDB.
	MetricReplayAccessInserts   = "geomancy_replaydb_access_inserts_total"
	MetricReplayMovementInserts = "geomancy_replaydb_movement_inserts_total"
	MetricReplayQueriesTotal    = "geomancy_replaydb_queries_total"
)

// RegisterHelp installs the HELP text of every canonical metric that has
// been created in r. Call after wiring (creation order does not matter;
// names without series are skipped).
func RegisterHelp(r *Registry) {
	if r == nil {
		return
	}
	for name, help := range map[string]string{
		MetricAccessLatency:          "Per-access open-to-close latency by storage device.",
		MetricAccessThroughput:       "Per-access throughput by storage device.",
		MetricAccessesTotal:          "Accesses observed per storage device.",
		MetricAccessBytesTotal:       "Bytes read+written per storage device.",
		MetricMovementsTotal:         "Files moved by layout applications.",
		MetricMovedBytesTotal:        "Bytes transferred by layout applications.",
		MetricDeferralsTotal:         "Moves postponed by the gap-aware scheduler.",
		MetricExplorationTotal:       "Applied moves chosen by random exploration.",
		MetricTrainingsTotal:         "Completed engine training cycles.",
		MetricTrainingDuration:       "Wall time of the most recent training cycle.",
		MetricTrainingLoss:           "Final training loss of the most recent cycle.",
		MetricTrainingSamples:        "Sample count of the most recent training cycle.",
		MetricTrainingErrorsTotal:    "Training cycles that failed.",
		MetricTrainingDurationHist:   "Distribution of training-cycle wall times.",
		MetricTrainingValidationMAE:  "Validation mean absolute relative error of the most recent cycle.",
		MetricInferenceBatchSize:     "Distribution of candidate rows scored per batched inference.",
		MetricInferenceDuration:      "Wall time of the most recent batched candidate inference.",
		MetricShardDecisions:         "Files decided per placement shard.",
		MetricShardEscalations:       "Shard decisions escalated to the global digest check.",
		MetricShardMigrations:        "Committed cross-shard migrations into each shard.",
		MetricDaemonConnectionsTotal: "TCP connections accepted by the Interface Daemon.",
		MetricDaemonConnectionsOpen:  "TCP connections currently open on the Interface Daemon.",
		MetricDaemonRPCSeconds:       "Interface Daemon request handling time by message type.",
		MetricDaemonErrorsTotal:      "Interface Daemon protocol/storage errors.",
		MetricDaemonLayoutPushes:     "Layouts pushed to control agents.",
		MetricDaemonReportsTotal:     "Telemetry reports ingested by the Interface Daemon.",
		MetricDaemonDuplicateBatches: "Retried telemetry batches deduplicated by (From, ID).",
		MetricAgentRetriesTotal:      "Agent RPC attempts retried after transport errors.",
		MetricAgentReconnectsTotal:   "Agent connections re-established after loss.",
		MetricAgentDegradedTotal:     "Decision cycles skipped because agents were unreachable.",
		MetricAgentAckSeconds:        "Round-trip latency of acknowledged agent RPCs.",
		MetricReplayAccessInserts:    "Access records appended to the ReplayDB.",
		MetricReplayMovementInserts:  "Movement records appended to the ReplayDB.",
		MetricReplayQueriesTotal:     "Read queries served by the ReplayDB.",
	} {
		r.Help(name, help)
	}
}
