package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// formatValue renders a sample value the way the Prometheus text format
// expects (shortest round-trip representation, +Inf spelled out).
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// withLabels renders `name{labels}` (or just name when unlabeled), with an
// optional extra label appended (the histogram `le`).
func withLabels(name, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return name
	case labels == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + "{" + labels + "}"
	default:
		return name + "{" + labels + "," + extra + "}"
	}
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format, families sorted by name, series in creation order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	names := append([]string(nil), r.names...)
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		f.mu.RLock()
		order := append([]string(nil), f.order...)
		help := f.help
		f.mu.RUnlock()
		if len(order) == 0 {
			continue
		}
		if help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, key := range order {
			f.mu.RLock()
			s := f.series[key]
			f.mu.RUnlock()
			switch m := s.(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s %d\n", withLabels(f.name, key, ""), m.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s %s\n", withLabels(f.name, key, ""), formatValue(m.Value()))
			case *Histogram:
				for _, bc := range m.bucketCounts() {
					le := `le="` + formatValue(bc.Upper) + `"`
					fmt.Fprintf(&b, "%s %d\n", withLabels(f.name+"_bucket", key, le), bc.Cumulative)
				}
				fmt.Fprintf(&b, "%s %s\n", withLabels(f.name+"_sum", key, ""), formatValue(m.Sum()))
				fmt.Fprintf(&b, "%s %d\n", withLabels(f.name+"_count", key, ""), m.Count())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Sample is one exported series in a JSON snapshot.
type Sample struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value is set for counters and gauges.
	Value *float64 `json:"value,omitempty"`
	// Histogram is set for histograms.
	Histogram *HistogramSummary `json:"histogram,omitempty"`
}

// Snapshot returns a point-in-time dump of every series, ordered by family
// name then series creation order.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	names := append([]string(nil), r.names...)
	r.mu.RUnlock()
	sort.Strings(names)

	var out []Sample
	for _, name := range names {
		r.mu.RLock()
		f := r.families[name]
		r.mu.RUnlock()
		f.mu.RLock()
		order := append([]string(nil), f.order...)
		f.mu.RUnlock()
		for _, key := range order {
			f.mu.RLock()
			s := f.series[key]
			labels := f.labels[key]
			f.mu.RUnlock()
			sample := Sample{Name: name}
			if len(labels) > 0 {
				sample.Labels = make(map[string]string, len(labels))
				for _, l := range labels {
					sample.Labels[l.Key] = l.Value
				}
			}
			switch m := s.(type) {
			case *Counter:
				v := float64(m.Value())
				sample.Value = &v
			case *Gauge:
				v := m.Value()
				sample.Value = &v
			case *Histogram:
				sum := m.Summary()
				sample.Histogram = &sum
			}
			out = append(out, sample)
		}
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON — the offline-run export
// (cmd/geomancy -metrics-json).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Metrics []Sample `json:"metrics"`
	}{Metrics: r.Snapshot()})
}

// Handler returns an http.Handler serving the Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Server is a running metrics endpoint.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
	once sync.Once
}

// Serve starts an HTTP server on addr (e.g. "127.0.0.1:0") exposing
// /metrics (Prometheus text) and /metrics.json (JSON snapshot). It returns
// immediately; use Server.Addr for the bound address.
func (r *Registry) Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: metrics listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.WriteJSON(w)
	})
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down and waits for the serve goroutine to
// exit, so callers observe full quiescence.
func (s *Server) Close() error {
	var err error
	s.once.Do(func() {
		err = s.srv.Close()
		<-s.done
	})
	return err
}
