// Package telemetry is Geomancy's metrics and observability substrate: a
// dependency-free registry of counters, gauges, and fixed-bucket
// histograms (with p50/p95/p99 summaries), safe for concurrent use, plus a
// Prometheus-text-format HTTP exporter and a JSON snapshot writer for
// offline runs.
//
// Every layer of the closed loop reports through one Registry: the
// workload runner feeds per-device access latency/throughput histograms,
// the DRL engine publishes training duration and loss, the loop counts
// movements and deferrals, the Interface Daemon tracks connections and RPC
// latency, and the ReplayDB counts inserts and queries. The registry is
// deliberately tiny — metric handles are plain structs updated with atomic
// operations, so the per-access hot path costs a few atomic adds.
//
// All methods are nil-safe: a nil *Registry hands out nil metric handles
// whose update methods are no-ops, so instrumented components need no
// "metrics enabled?" branches.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value metric dimension.
type Label struct {
	Key, Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// labelKey renders labels into a canonical identity string (sorted by key).
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// kind distinguishes the metric families.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family groups every labeled series of one metric name.
type family struct {
	name    string
	help    string
	kind    kind
	buckets []float64 // histogram families only

	mu     sync.RWMutex
	series map[string]any // labelKey -> *Counter | *Gauge | *Histogram
	labels map[string][]Label
	order  []string // labelKeys in creation order
}

// Registry holds every metric family. The zero value is not usable; call
// NewRegistry. A nil Registry is a valid no-op sink.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	names    []string // creation order
	help     map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		families: make(map[string]*family),
		help:     make(map[string]string),
	}
}

// family returns (creating if needed) the named family, enforcing that a
// name is only ever used with one metric kind.
func (r *Registry) family(name string, k kind, buckets []float64) *family {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		if f = r.families[name]; f == nil {
			f = &family{
				name:    name,
				help:    r.help[name],
				kind:    k,
				buckets: buckets,
				series:  make(map[string]any),
				labels:  make(map[string][]Label),
			}
			r.families[name] = f
			r.names = append(r.names, name)
		}
		r.mu.Unlock()
	}
	if f.kind != k {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, f.kind, k))
	}
	return f
}

// seriesFor returns (creating via mk if needed) the labeled series of f.
func (f *family) seriesFor(labels []Label, mk func() any) any {
	key := labelKey(labels)
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s == nil {
		s = mk()
		f.series[key] = s
		f.labels[key] = append([]Label(nil), labels...)
		f.order = append(f.order, key)
	}
	return s
}

// Help sets the HELP text of a metric name (shown by the exporter). It may
// be called before or after the metric's first use.
func (r *Registry) Help(name, text string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[name] = text
	f := r.families[name]
	r.mu.Unlock()
	if f != nil {
		f.mu.Lock()
		f.help = text
		f.mu.Unlock()
	}
}

// Counter returns the counter for name+labels, creating it at zero.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	f := r.family(name, kindCounter, nil)
	return f.seriesFor(labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge for name+labels, creating it at zero.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	f := r.family(name, kindGauge, nil)
	return f.seriesFor(labels, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns the histogram for name+labels, creating it with the
// given bucket upper bounds (ascending; an implicit +Inf bucket is always
// appended). The buckets of the first creation win for the whole family.
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	f := r.family(name, kindHistogram, buckets)
	return f.seriesFor(labels, func() any { return NewHistogram(f.buckets) }).(*Histogram)
}

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add increases the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add increments the gauge by d (CAS loop; safe for concurrent use).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram of non-negative observations.
// Observations and reads are lock-free.
type Histogram struct {
	upper  []float64 // ascending finite upper bounds
	counts []atomic.Uint64
	over   atomic.Uint64 // the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram builds a standalone histogram (also usable outside any
// registry, e.g. for per-run percentile summaries). Buckets are ascending
// finite upper bounds; nil selects DefLatencyBuckets.
func NewHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefLatencyBuckets
	}
	up := append([]float64(nil), buckets...)
	sort.Float64s(up)
	return &Histogram{upper: up, counts: make([]atomic.Uint64, len(up))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	// Binary search for the first bucket whose bound >= v.
	i := sort.SearchFloat64s(h.upper, v)
	if i < len(h.counts) {
		h.counts[i].Add(1)
	} else {
		h.over.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Mean returns the mean observation, or 0 with no data.
func (h *Histogram) Mean() float64 {
	if n := h.Count(); n > 0 {
		return h.Sum() / float64(n)
	}
	return 0
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the containing bucket — the standard fixed-bucket estimate
// Prometheus's histogram_quantile computes server-side. Values beyond the
// last finite bound clamp to it. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.upper[i-1]
			}
			hi := h.upper[i]
			frac := (rank - cum) / n
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	// Rank falls in the overflow bucket: clamp to the last finite bound.
	return h.upper[len(h.upper)-1]
}

// BucketCount is one (upper bound, cumulative count) pair of a snapshot.
type BucketCount struct {
	Upper      float64 `json:"le"`
	Cumulative uint64  `json:"count"`
}

// HistogramSummary is a point-in-time histogram digest.
type HistogramSummary struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Summary digests the histogram into count/sum/mean and the paper-relevant
// percentiles.
func (h *Histogram) Summary() HistogramSummary {
	if h == nil {
		return HistogramSummary{}
	}
	return HistogramSummary{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// buckets returns the cumulative bucket counts including +Inf last.
func (h *Histogram) bucketCounts() []BucketCount {
	out := make([]BucketCount, 0, len(h.counts)+1)
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out = append(out, BucketCount{Upper: h.upper[i], Cumulative: cum})
	}
	cum += h.over.Load()
	out = append(out, BucketCount{Upper: math.Inf(1), Cumulative: cum})
	return out
}

// ExpBuckets returns n exponentially spaced bucket bounds: start,
// start*factor, start*factor², …
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		return nil
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n linearly spaced bucket bounds: start,
// start+width, start+2·width, …
func LinearBuckets(start, width float64, n int) []float64 {
	if n <= 0 || width <= 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// Default bucket layouts for the quantities the closed loop observes.
var (
	// DefLatencyBuckets covers access latencies from 100 µs to ~50 s.
	DefLatencyBuckets = ExpBuckets(1e-4, 2, 20)
	// DefThroughputBuckets covers per-access throughput from 16 MB/s to
	// ~16 GB/s (the Bluesky devices span 0.55–14 GB/s).
	DefThroughputBuckets = ExpBuckets(16e6, 2, 11)
	// DefDurationBuckets covers coarse durations (training, RPC handling,
	// moves) from 1 ms to ~1000 s.
	DefDurationBuckets = ExpBuckets(1e-3, 4, 11)
	// DefBatchSizeBuckets covers batched-inference sizes from 1 row to
	// 32768 (files × candidate devices per decision).
	DefBatchSizeBuckets = ExpBuckets(1, 2, 16)
)
