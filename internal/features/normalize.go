package features

import (
	"fmt"
	"math"

	"geomancy/internal/mat"
)

// MinMaxScaler normalizes each feature column into [0,1], the
// transformation the Interface Daemon applies before training (§V-E:
// "the numerical data is normalized ... to decimal values between zero
// and one").
type MinMaxScaler struct {
	Min, Max []float64
	fitted   bool
}

// Fit learns per-column minima and maxima from x.
func (s *MinMaxScaler) Fit(x *mat.Matrix) {
	s.Min = make([]float64, x.Cols)
	s.Max = make([]float64, x.Cols)
	for c := 0; c < x.Cols; c++ {
		s.Min[c] = math.Inf(1)
		s.Max[c] = math.Inf(-1)
	}
	for r := 0; r < x.Rows; r++ {
		row := x.Row(r)
		for c, v := range row {
			if v < s.Min[c] {
				s.Min[c] = v
			}
			if v > s.Max[c] {
				s.Max[c] = v
			}
		}
	}
	// Degenerate columns (constant, or no rows) normalize to 0.
	for c := 0; c < x.Cols; c++ {
		if math.IsInf(s.Min[c], 1) {
			s.Min[c], s.Max[c] = 0, 0
		}
	}
	s.fitted = true
}

// Transform returns a copy of x with every column scaled into [0,1].
// Values outside the fitted range are clamped.
func (s *MinMaxScaler) Transform(x *mat.Matrix) *mat.Matrix {
	s.mustFit(x.Cols)
	out := x.Clone()
	for r := 0; r < out.Rows; r++ {
		row := out.Row(r)
		for c := range row {
			row[c] = s.TransformValue(c, row[c])
		}
	}
	return out
}

// TransformValue scales a single value of column c into [0,1], clamping
// out-of-range inputs.
func (s *MinMaxScaler) TransformValue(c int, v float64) float64 {
	span := s.Max[c] - s.Min[c]
	if span == 0 {
		return 0
	}
	t := (v - s.Min[c]) / span
	if t < 0 {
		return 0
	}
	if t > 1 {
		return 1
	}
	return t
}

// Inverse maps a normalized value of column c back to its original scale.
func (s *MinMaxScaler) Inverse(c int, v float64) float64 {
	s.mustFit(c + 1)
	return s.Min[c] + v*(s.Max[c]-s.Min[c])
}

// FitTransform is Fit followed by Transform.
func (s *MinMaxScaler) FitTransform(x *mat.Matrix) *mat.Matrix {
	s.Fit(x)
	return s.Transform(x)
}

func (s *MinMaxScaler) mustFit(cols int) {
	if !s.fitted {
		panic("features: MinMaxScaler used before Fit")
	}
	if cols > len(s.Min) {
		panic(fmt.Sprintf("features: scaler fitted for %d columns, got %d", len(s.Min), cols))
	}
}

// ScalarScaler normalizes a single series into [0,1]; used for targets.
type ScalarScaler struct {
	Min, Max float64
	fitted   bool
}

// Fit learns the range of xs.
func (s *ScalarScaler) Fit(xs []float64) {
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	for _, v := range xs {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	if math.IsInf(s.Min, 1) {
		s.Min, s.Max = 0, 0
	}
	s.fitted = true
}

// Transform scales v into [0,1] with clamping.
func (s *ScalarScaler) Transform(v float64) float64 {
	if !s.fitted {
		panic("features: ScalarScaler used before Fit")
	}
	span := s.Max - s.Min
	if span == 0 {
		return 0
	}
	t := (v - s.Min) / span
	if t < 0 {
		return 0
	}
	if t > 1 {
		return 1
	}
	return t
}

// TransformAll scales a whole series.
func (s *ScalarScaler) TransformAll(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = s.Transform(v)
	}
	return out
}

// Inverse maps a normalized value back to the original scale.
func (s *ScalarScaler) Inverse(v float64) float64 {
	if !s.fitted {
		panic("features: ScalarScaler used before Fit")
	}
	return s.Min + v*(s.Max-s.Min)
}

// MinMaxState is the serializable snapshot of a MinMaxScaler, used by the
// checkpoint plane to carry fitted normalization across a restart.
type MinMaxState struct {
	Min, Max []float64
	Fitted   bool
}

// State captures the scaler, including whether it has been fitted.
func (s *MinMaxScaler) State() MinMaxState {
	return MinMaxState{
		Min:    append([]float64(nil), s.Min...),
		Max:    append([]float64(nil), s.Max...),
		Fitted: s.fitted,
	}
}

// RestoreState overwrites the scaler with a previously captured state.
func (s *MinMaxScaler) RestoreState(st MinMaxState) {
	s.Min = append([]float64(nil), st.Min...)
	s.Max = append([]float64(nil), st.Max...)
	s.fitted = st.Fitted
}

// ScalarState is the serializable snapshot of a ScalarScaler.
type ScalarState struct {
	Min, Max float64
	Fitted   bool
}

// State captures the scaler, including whether it has been fitted.
func (s *ScalarScaler) State() ScalarState {
	return ScalarState{Min: s.Min, Max: s.Max, Fitted: s.fitted}
}

// RestoreState overwrites the scaler with a previously captured state.
func (s *ScalarScaler) RestoreState(st ScalarState) {
	s.Min, s.Max, s.fitted = st.Min, st.Max, st.Fitted
}
