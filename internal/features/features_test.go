package features

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"geomancy/internal/mat"
)

func TestPearsonPerfectCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if r := Pearson(x, y); math.Abs(r-1) > 1e-12 {
		t.Errorf("Pearson = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(x, neg); math.Abs(r+1) > 1e-12 {
		t.Errorf("Pearson = %v, want -1", r)
	}
}

func TestPearsonConstantSeries(t *testing.T) {
	if r := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); r != 0 {
		t.Errorf("constant x Pearson = %v, want 0", r)
	}
	if r := Pearson(nil, nil); r != 0 {
		t.Errorf("empty Pearson = %v, want 0", r)
	}
}

func TestPearsonUncorrelated(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 20000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
		y[i] = rng.Float64()
	}
	if r := Pearson(x, y); math.Abs(r) > 0.05 {
		t.Errorf("independent series Pearson = %v, want ~0", r)
	}
}

func TestPearsonLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Pearson([]float64{1}, []float64{1, 2})
}

// Property: Pearson is symmetric and invariant under positive affine
// transformation.
func TestPearsonProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64() + 0.5*x[i]
		}
		r1 := Pearson(x, y)
		if math.Abs(r1-Pearson(y, x)) > 1e-12 {
			return false
		}
		scaled := make([]float64, n)
		for i := range x {
			scaled[i] = 3*x[i] + 7
		}
		return math.Abs(r1-Pearson(scaled, y)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCorrelationReportAndSort(t *testing.T) {
	target := []float64{1, 2, 3, 4}
	cols := [][]float64{
		{1, 2, 3, 4},     // r = 1
		{4, 3, 2, 1},     // r = -1
		{1, 1, 1, 1},     // r = 0
		{1, 2, 2.5, 3.2}, // strong positive
	}
	rep := CorrelationReport([]string{"a", "b", "c", "d"}, cols, target)
	if len(rep) != 4 {
		t.Fatalf("got %d entries", len(rep))
	}
	SortByAbs(rep)
	if rep[len(rep)-1].Name != "c" {
		t.Errorf("weakest feature should sort last, got %q", rep[len(rep)-1].Name)
	}
	if math.Abs(rep[0].R) < math.Abs(rep[1].R) {
		t.Error("not sorted by |R| descending")
	}
}

func TestCorrelationReportMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CorrelationReport([]string{"a"}, nil, nil)
}

func TestMinMaxScaler(t *testing.T) {
	x := mat.FromRows([][]float64{{0, 10}, {5, 20}, {10, 30}})
	var s MinMaxScaler
	out := s.FitTransform(x)
	want := mat.FromRows([][]float64{{0, 0}, {0.5, 0.5}, {1, 1}})
	if !mat.Equal(out, want, 1e-12) {
		t.Errorf("FitTransform = %v, want %v", out, want)
	}
	// Clamping outside the fitted range.
	if got := s.TransformValue(0, -5); got != 0 {
		t.Errorf("below-range = %v, want 0", got)
	}
	if got := s.TransformValue(0, 50); got != 1 {
		t.Errorf("above-range = %v, want 1", got)
	}
	// Inverse round trip.
	if got := s.Inverse(1, s.TransformValue(1, 25)); math.Abs(got-25) > 1e-12 {
		t.Errorf("inverse = %v, want 25", got)
	}
}

func TestMinMaxScalerConstantColumn(t *testing.T) {
	x := mat.FromRows([][]float64{{7, 1}, {7, 2}})
	var s MinMaxScaler
	out := s.FitTransform(x)
	if out.At(0, 0) != 0 || out.At(1, 0) != 0 {
		t.Error("constant column should normalize to 0")
	}
}

func TestMinMaxScalerUnfittedPanics(t *testing.T) {
	var s MinMaxScaler
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Transform(mat.New(1, 1))
}

func TestScalarScaler(t *testing.T) {
	var s ScalarScaler
	s.Fit([]float64{10, 20, 30})
	if got := s.Transform(20); got != 0.5 {
		t.Errorf("Transform(20) = %v, want 0.5", got)
	}
	if got := s.Transform(-100); got != 0 {
		t.Errorf("clamp low = %v", got)
	}
	if got := s.Transform(100); got != 1 {
		t.Errorf("clamp high = %v", got)
	}
	if got := s.Inverse(0.5); got != 20 {
		t.Errorf("Inverse = %v, want 20", got)
	}
	all := s.TransformAll([]float64{10, 30})
	if all[0] != 0 || all[1] != 1 {
		t.Errorf("TransformAll = %v", all)
	}
	var empty ScalarScaler
	empty.Fit(nil)
	if got := empty.Transform(5); got != 0 {
		t.Errorf("empty-fit Transform = %v, want 0", got)
	}
}

func TestPathEncoderPaperExample(t *testing.T) {
	e := NewPathEncoder()
	// foo→1, bar→2... wait: per-level indexes start at 1 per level.
	// foo/bar/bat.root: level0 foo=1, level1 bar=1, level2 bat.root=1
	// → 1*1000000 + 1*1000 + 1.
	id := e.Encode("foo/bar/bat.root")
	if id != 1001001 {
		t.Errorf("Encode = %d, want 1001001", id)
	}
	// Same path encodes identically.
	if again := e.Encode("foo/bar/bat.root"); again != id {
		t.Errorf("re-encode = %d, want %d", again, id)
	}
	// Sibling file in the same directory: nearby ID (locality).
	sib := e.Encode("foo/bar/other.root")
	if sib != 1001002 {
		t.Errorf("sibling = %d, want 1001002", sib)
	}
	if diff := sib - id; diff != 1 {
		t.Errorf("sibling distance = %d, want 1", diff)
	}
	// Different top-level directory: far ID.
	far := e.Encode("zzz/bar/bat.root")
	if far-id < levelBase*levelBase-1 {
		t.Errorf("different tree should be far: %d vs %d", far, id)
	}
}

func TestPathEncoderLookup(t *testing.T) {
	e := NewPathEncoder()
	id := e.Encode("/a/b/c")
	if got, ok := e.Lookup("a/b/c"); !ok || got != id {
		t.Errorf("Lookup = %d,%v; want %d,true (slashes normalized)", got, ok, id)
	}
	if _, ok := e.Lookup("a/b/unknown"); ok {
		t.Error("Lookup of unknown component should fail")
	}
	if _, ok := e.Lookup("a/b/c/d"); ok {
		t.Error("Lookup deeper than seen should fail")
	}
	if id, ok := e.Lookup(""); !ok || id != 0 {
		t.Errorf("empty path Lookup = %d,%v; want 0,true", id, ok)
	}
	if e.Depth() != 3 {
		t.Errorf("Depth = %d, want 3", e.Depth())
	}
}

func TestPathEncoderEmptyPath(t *testing.T) {
	e := NewPathEncoder()
	if id := e.Encode(""); id != 0 {
		t.Errorf("empty path = %d, want 0", id)
	}
	if id := e.Encode("///"); id != 0 {
		t.Errorf("slashes-only path = %d, want 0", id)
	}
}

func TestPathEncoderConcurrent(t *testing.T) {
	e := NewPathEncoder()
	done := make(chan int64)
	for i := 0; i < 8; i++ {
		go func() { done <- e.Encode("x/y/z") }()
	}
	first := <-done
	for i := 1; i < 8; i++ {
		if got := <-done; got != first {
			t.Fatalf("concurrent encodes disagree: %d vs %d", got, first)
		}
	}
}

func TestMovingAverage(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	got := MovingAverage(xs, 3)
	want := []float64{1, 1.5, 2, 3, 4}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("MA[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Window 1 is identity.
	id := MovingAverage(xs, 1)
	for i := range xs {
		if id[i] != xs[i] {
			t.Errorf("window-1 MA changed values")
		}
	}
}

func TestMovingAverageWindowLargerThanSeries(t *testing.T) {
	got := MovingAverage([]float64{2, 4}, 10)
	if got[0] != 2 || got[1] != 3 {
		t.Errorf("MA = %v, want [2 3]", got)
	}
}

func TestMovingAverageBadWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MovingAverage([]float64{1}, 0)
}

func TestCumulativeAverage(t *testing.T) {
	got := CumulativeAverage([]float64{2, 4, 6})
	want := []float64{2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("CA[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// Property: a moving average never exceeds the running max or undercuts
// the running min of its window.
func TestMovingAverageBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(100)
		w := 1 + rng.Intn(10)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		ma := MovingAverage(xs, w)
		for i := range xs {
			lo, hi := math.Inf(1), math.Inf(-1)
			start := i - w + 1
			if start < 0 {
				start = 0
			}
			for j := start; j <= i; j++ {
				lo = math.Min(lo, xs[j])
				hi = math.Max(hi, xs[j])
			}
			if ma[i] < lo-1e-9 || ma[i] > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSmoothColumns(t *testing.T) {
	rows := [][]float64{{1, 10}, {3, 20}, {5, 30}}
	out := SmoothColumns(rows, 2)
	if out[0][0] != 1 || out[1][0] != 2 || out[2][0] != 4 {
		t.Errorf("column 0 smoothed = %v", out)
	}
	if out[1][1] != 15 || out[2][1] != 25 {
		t.Errorf("column 1 smoothed = %v", out)
	}
	if SmoothColumns(nil, 3) != nil {
		t.Error("empty input should return nil")
	}
}

func TestSelectTopK(t *testing.T) {
	target := []float64{1, 2, 3, 4, 5}
	cols := [][]float64{
		{5, 4, 3, 2, 1}, // strong negative
		{1, 1, 1, 1, 1}, // constant, r = 0, must be skipped
		{1, 2, 3, 4, 5}, // perfect positive
		{2, 1, 4, 3, 6}, // moderate
	}
	names := []string{"neg", "const", "pos", "mid"}
	sel, idx := SelectTopK(names, cols, target, 3)
	if len(sel) != 3 {
		t.Fatalf("selected %v", sel)
	}
	// pos and neg are |r| = 1; mid third; const excluded.
	if sel[2] != "mid" {
		t.Errorf("third pick = %q, want mid", sel[2])
	}
	for _, s := range sel {
		if s == "const" {
			t.Error("constant column must be skipped")
		}
	}
	rows := ExtractColumns(cols, idx)
	if len(rows) != 5 || len(rows[0]) != 3 {
		t.Fatalf("rows shape %dx%d", len(rows), len(rows[0]))
	}
	// Row 0 holds the first sample of each selected column.
	if rows[0][2] != cols[idx[2]][0] {
		t.Error("ExtractColumns misaligned")
	}
}

func TestSelectTopKMoreThanAvailable(t *testing.T) {
	target := []float64{1, 2}
	cols := [][]float64{{1, 2}, {3, 3}}
	sel, idx := SelectTopK([]string{"a", "b"}, cols, target, 10)
	if len(sel) != 1 || sel[0] != "a" || len(idx) != 1 {
		t.Errorf("sel=%v idx=%v, want just the informative column", sel, idx)
	}
}

func TestExtractColumnsEmpty(t *testing.T) {
	if ExtractColumns(nil, []int{0}) != nil {
		t.Error("empty columns should return nil")
	}
	if ExtractColumns([][]float64{{1}}, nil) != nil {
		t.Error("empty indexes should return nil")
	}
}
