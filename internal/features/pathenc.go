package features

import (
	"strings"
	"sync"
)

// PathEncoder converts file paths to numeric IDs the way the paper does
// (§V-E): every path component receives a per-level index, and the indexes
// are combined positionally so that files in nearby directories receive
// nearby IDs ("we want files located in similar locations to have close
// IDs to maintain a sense of locality"). The example in the paper encodes
// foo/bar/bat.root as 123 with foo→1, bar→2, bat.root→3.
//
// PathEncoder is safe for concurrent use.
type PathEncoder struct {
	mu sync.Mutex
	// levels[d] maps the component string at depth d to its 1-based index
	// in order of first appearance.
	levels []map[string]int
}

// NewPathEncoder returns an empty encoder.
func NewPathEncoder() *PathEncoder {
	return &PathEncoder{}
}

// levelBase is the positional radix: each path level contributes its
// index in a separate digit group of this size, preserving locality for
// up to 999 distinct names per level.
const levelBase = 1000

// Encode returns the numeric ID for path, assigning fresh per-level
// indexes to components seen for the first time. Leading and trailing
// slashes are ignored; the empty path encodes to 0.
func (e *PathEncoder) Encode(path string) int64 {
	comps := splitPath(path)
	if len(comps) == 0 {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var id int64
	for d, c := range comps {
		for d >= len(e.levels) {
			e.levels = append(e.levels, make(map[string]int))
		}
		idx, ok := e.levels[d][c]
		if !ok {
			idx = len(e.levels[d]) + 1
			e.levels[d][c] = idx
		}
		id = id*levelBase + int64(idx)
	}
	return id
}

// Lookup returns the ID for path without assigning new indexes; ok is
// false if any component is unknown.
func (e *PathEncoder) Lookup(path string) (id int64, ok bool) {
	comps := splitPath(path)
	if len(comps) == 0 {
		return 0, true
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for d, c := range comps {
		if d >= len(e.levels) {
			return 0, false
		}
		idx, found := e.levels[d][c]
		if !found {
			return 0, false
		}
		id = id*levelBase + int64(idx)
	}
	return id, true
}

// Depth returns the number of path levels the encoder has seen.
func (e *PathEncoder) Depth() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.levels)
}

func splitPath(path string) []string {
	var comps []string
	for _, c := range strings.Split(path, "/") {
		if c != "" {
			comps = append(comps, c)
		}
	}
	return comps
}
