// Package features implements the Geomancy feature pipeline (§V-D, §V-E):
// Pearson-correlation feature discovery against throughput, min-max
// normalization of numeric data into [0,1], the paper's file-path →
// numeric-ID encoding, moving-average smoothing of ReplayDB batches, and
// helpers for assembling model inputs.
package features

import (
	"fmt"
	"math"
	"sort"
)

// Pearson returns the Pearson correlation coefficient between x and y.
// It returns 0 when either series is constant (no linear relationship can
// be measured) and panics on length mismatch.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("features: Pearson length mismatch %d vs %d", len(x), len(y)))
	}
	n := float64(len(x))
	if n == 0 {
		return 0
	}
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// Correlation pairs a feature name with its Pearson correlation against
// the modeling target.
type Correlation struct {
	Name string
	R    float64
}

// CorrelationReport computes, for each named feature column, the Pearson
// correlation against target — the Fig. 4 analysis. Columns are given as
// columns[i][j] = value of feature i at access j.
func CorrelationReport(names []string, columns [][]float64, target []float64) []Correlation {
	if len(names) != len(columns) {
		panic(fmt.Sprintf("features: %d names for %d columns", len(names), len(columns)))
	}
	out := make([]Correlation, len(names))
	for i, col := range columns {
		out[i] = Correlation{Name: names[i], R: Pearson(col, target)}
	}
	return out
}

// SortByAbs orders a correlation report by decreasing |R|, the paper's
// criterion for candidate features ("Choosing the features with largest
// absolute correlation values usually improves model accuracy").
func SortByAbs(report []Correlation) {
	sort.SliceStable(report, func(i, j int) bool {
		return math.Abs(report[i].R) > math.Abs(report[j].R)
	})
}

// SelectTopK automates §V-D's feature discovery: it ranks features by
// |Pearson r| against the target and returns the names and column indexes
// of the top k. Constant (r = 0) columns are skipped — "training the
// neural network with these features may prevent the neural network from
// converging quickly".
func SelectTopK(names []string, columns [][]float64, target []float64, k int) (selected []string, indexes []int) {
	report := CorrelationReport(names, columns, target)
	type ranked struct {
		Correlation
		idx int
	}
	rs := make([]ranked, len(report))
	for i, c := range report {
		rs[i] = ranked{c, i}
	}
	sort.SliceStable(rs, func(i, j int) bool {
		return math.Abs(rs[i].R) > math.Abs(rs[j].R)
	})
	for _, r := range rs {
		if len(selected) >= k {
			break
		}
		if r.R == 0 {
			continue
		}
		selected = append(selected, r.Name)
		indexes = append(indexes, r.idx)
	}
	return selected, indexes
}

// ExtractColumns builds feature rows from the selected column indexes:
// out[i][j] = columns[indexes[j]][i].
func ExtractColumns(columns [][]float64, indexes []int) [][]float64 {
	if len(columns) == 0 || len(indexes) == 0 {
		return nil
	}
	n := len(columns[0])
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, len(indexes))
		for j, idx := range indexes {
			row[j] = columns[idx][i]
		}
		out[i] = row
	}
	return out
}
