package features

import "fmt"

// MovingAverage returns the trailing moving average of xs with the given
// window: out[i] = mean(xs[max(0,i-window+1) .. i]). This is the smoothing
// the paper applies to ReplayDB batches to remove small variations while
// keeping short-term fluctuations that signal rapid performance drops
// (§V-E). window must be positive.
func MovingAverage(xs []float64, window int) []float64 {
	if window <= 0 {
		panic(fmt.Sprintf("features: MovingAverage window %d must be positive", window))
	}
	out := make([]float64, len(xs))
	var sum float64
	for i, v := range xs {
		sum += v
		n := window
		if i+1 < window {
			n = i + 1
		} else if i >= window {
			sum -= xs[i-window]
		}
		out[i] = sum / float64(n)
	}
	return out
}

// CumulativeAverage returns the running mean of xs: out[i] = mean(xs[0..i]).
// The paper rejects it for training because it washes out the short-term
// fluctuations that indicate rapid performance decreases; it is retained
// for the smoothing ablation benchmark.
func CumulativeAverage(xs []float64) []float64 {
	out := make([]float64, len(xs))
	var sum float64
	for i, v := range xs {
		sum += v
		out[i] = sum / float64(i+1)
	}
	return out
}

// SmoothColumns applies MovingAverage to each column of a row-major table
// (rows = accesses in time order), returning a new table.
func SmoothColumns(rows [][]float64, window int) [][]float64 {
	if len(rows) == 0 {
		return nil
	}
	cols := len(rows[0])
	out := make([][]float64, len(rows))
	for i := range out {
		out[i] = make([]float64, cols)
	}
	col := make([]float64, len(rows))
	for c := 0; c < cols; c++ {
		for r := range rows {
			col[r] = rows[r][c]
		}
		sm := MovingAverage(col, window)
		for r := range rows {
			out[r][c] = sm[r]
		}
	}
	return out
}
