// Package generator is the workload plane's library of deterministic
// value generators — the distributions a scenario draws file indices,
// operation offsets, and population sizes from (uniform, zipfian,
// hotspot, exponential, counter, and a histogram-backed size generator,
// modeled on the YCSB generator suite).
//
// Every generator is a pure function of the *rng.RNG stream passed to
// Next plus its own registers, and those registers are fully
// extractable: State returns a flat, gob-friendly snapshot and
// RestoreState rewinds a fresh instance to it, so a scenario
// checkpointed mid-run resumes its draw sequence bit-identically. No
// generator owns a stream — the caller's RNG is threaded through every
// draw, keeping one serializable stream per workload.
package generator

import (
	"fmt"
	"math"

	"geomancy/internal/rng"
)

// Generator produces one value per draw from the caller's stream.
// Implementations must be deterministic: equal streams and equal
// restored states yield equal sequences.
type Generator interface {
	// Next draws the next value using r as the only entropy source.
	Next(r *rng.RNG) int64
	// State snapshots every register that influences future draws.
	State() State
	// RestoreState rewinds the generator to a previously captured
	// snapshot; a snapshot of the wrong Kind is rejected.
	RestoreState(State) error
}

// State is the serializable snapshot of any generator: a kind tag plus
// the generator's integer and float registers, flattened so the whole
// value gob-encodes without interface indirection.
type State struct {
	Kind string
	I    []int64
	F    []float64
}

// check validates a snapshot's shape before a restore touches registers.
func (s State) check(kind string, ni, nf int) error {
	if s.Kind != kind {
		return fmt.Errorf("generator: restoring %q state into a %s generator", s.Kind, kind)
	}
	if len(s.I) != ni || len(s.F) != nf {
		return fmt.Errorf("generator: %s state has %d/%d registers, want %d/%d",
			kind, len(s.I), len(s.F), ni, nf)
	}
	return nil
}

// Restore rebuilds a generator of the kind recorded in st. It is the
// inverse of State for every generator in the package.
func Restore(st State) (Generator, error) {
	var g Generator
	switch st.Kind {
	case kindUniform:
		g = &Uniform{}
	case kindCounter:
		g = &Counter{}
	case kindZipfian:
		g = &Zipfian{}
	case kindHotspot:
		g = &Hotspot{}
	case kindExponential:
		g = &Exponential{}
	case kindSizeHistogram:
		g = &SizeHistogram{}
	default:
		return nil, fmt.Errorf("generator: unknown kind %q", st.Kind)
	}
	if err := g.RestoreState(st); err != nil {
		return nil, err
	}
	return g, nil
}

// Kind tags of the package's generators.
const (
	kindUniform       = "uniform"
	kindCounter       = "counter"
	kindZipfian       = "zipfian"
	kindHotspot       = "hotspot"
	kindExponential   = "exponential"
	kindSizeHistogram = "size-histogram"
)

// Uniform draws integers uniformly from [Lo, Hi] inclusive.
type Uniform struct {
	lo, hi int64
}

// NewUniform returns a uniform generator over [lo, hi]; an inverted
// range collapses to the single value lo.
func NewUniform(lo, hi int64) *Uniform {
	if hi < lo {
		hi = lo
	}
	return &Uniform{lo: lo, hi: hi}
}

// Next implements Generator.
func (u *Uniform) Next(r *rng.RNG) int64 {
	return u.lo + r.Int63n(u.hi-u.lo+1)
}

// State implements Generator.
func (u *Uniform) State() State {
	return State{Kind: kindUniform, I: []int64{u.lo, u.hi}}
}

// RestoreState implements Generator.
func (u *Uniform) RestoreState(s State) error {
	if err := s.check(kindUniform, 2, 0); err != nil {
		return err
	}
	u.lo, u.hi = s.I[0], s.I[1]
	return nil
}

// Counter is the sequential generator: it returns lo, lo+1, lo+2, …,
// ignoring the stream entirely. Scenarios use it for ingest heads and
// scan cursors.
type Counter struct {
	next int64
}

// NewCounter returns a counter starting at start.
func NewCounter(start int64) *Counter { return &Counter{next: start} }

// Next implements Generator. The stream is untouched: a counter draw
// must not perturb the workload's other distributions.
func (c *Counter) Next(*rng.RNG) int64 {
	v := c.next
	c.next++
	return v
}

// Last returns the most recently returned value (start-1 before the
// first draw) — the ingest head a latest-skewed read distribution
// trails behind.
func (c *Counter) Last() int64 { return c.next - 1 }

// State implements Generator.
func (c *Counter) State() State {
	return State{Kind: kindCounter, I: []int64{c.next}}
}

// RestoreState implements Generator.
func (c *Counter) RestoreState(s State) error {
	if err := s.check(kindCounter, 1, 0); err != nil {
		return err
	}
	c.next = s.I[0]
	return nil
}

// Hotspot draws from [lo, hi] with a configurable skew: a hot fraction
// of the range receives a (typically much larger) fraction of the
// draws; the rest spread uniformly over the cold remainder.
type Hotspot struct {
	lo, hi  int64
	hotFrac float64
	hotOpn  float64
}

// NewHotspot returns a hotspot generator over [lo, hi] where the first
// hotFrac of the interval receives hotOpn of the operations.
func NewHotspot(lo, hi int64, hotFrac, hotOpn float64) *Hotspot {
	if hi < lo {
		hi = lo
	}
	return &Hotspot{lo: lo, hi: hi, hotFrac: clamp01(hotFrac), hotOpn: clamp01(hotOpn)}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// hotCount returns the size of the hot segment, at least 1.
func (h *Hotspot) hotCount() int64 {
	n := h.hi - h.lo + 1
	hot := int64(h.hotFrac * float64(n))
	if hot < 1 {
		hot = 1
	}
	if hot > n {
		hot = n
	}
	return hot
}

// Next implements Generator.
func (h *Hotspot) Next(r *rng.RNG) int64 {
	n := h.hi - h.lo + 1
	hot := h.hotCount()
	cold := n - hot
	if cold <= 0 || r.Float64() < h.hotOpn {
		return h.lo + r.Int63n(hot)
	}
	return h.lo + hot + r.Int63n(cold)
}

// State implements Generator.
func (h *Hotspot) State() State {
	return State{Kind: kindHotspot, I: []int64{h.lo, h.hi}, F: []float64{h.hotFrac, h.hotOpn}}
}

// RestoreState implements Generator.
func (h *Hotspot) RestoreState(s State) error {
	if err := s.check(kindHotspot, 2, 2); err != nil {
		return err
	}
	h.lo, h.hi = s.I[0], s.I[1]
	h.hotFrac, h.hotOpn = s.F[0], s.F[1]
	return nil
}

// Exponential draws non-negative integers with an exponentially
// decaying frequency: value v appears with probability ∝ e^(−γv). The
// YCSB parameterization is used: percentile of the mass inside the
// first rangeV values.
type Exponential struct {
	gamma float64
}

// NewExponential returns a generator where percentile percent of the
// draws fall inside [0, rangeV).
func NewExponential(percentile, rangeV float64) *Exponential {
	if percentile <= 0 || percentile >= 100 {
		percentile = 95
	}
	if rangeV <= 0 {
		rangeV = 1
	}
	return &Exponential{gamma: -math.Log(1-percentile/100) / rangeV}
}

// Next implements Generator.
func (e *Exponential) Next(r *rng.RNG) int64 {
	u := r.Float64()
	for u == 0 { // Float64 is [0,1); exclude the log(0) corner
		u = r.Float64()
	}
	return int64(-math.Log(u) / e.gamma)
}

// State implements Generator.
func (e *Exponential) State() State {
	return State{Kind: kindExponential, F: []float64{e.gamma}}
}

// RestoreState implements Generator.
func (e *Exponential) RestoreState(s State) error {
	if err := s.check(kindExponential, 0, 1); err != nil {
		return err
	}
	e.gamma = s.F[0]
	return nil
}
