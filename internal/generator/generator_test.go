package generator

import (
	"testing"

	"geomancy/internal/rng"
)

// every constructor paired with a name, for table-driven invariants.
func testGenerators(t *testing.T) map[string]func() Generator {
	t.Helper()
	return map[string]func() Generator{
		"uniform":     func() Generator { return NewUniform(3, 40) },
		"counter":     func() Generator { return NewCounter(7) },
		"zipfian":     func() Generator { return NewZipfian(24, ZipfianTheta) },
		"hotspot":     func() Generator { return NewHotspot(0, 23, 0.2, 0.8) },
		"exponential": func() Generator { return NewExponential(95, 24) },
		"size-histogram": func() Generator {
			h, err := NewSizeHistogram([]SizeBucket{
				{Lo: 1 << 10, Hi: 1 << 20, Weight: 0.7},
				{Lo: 1 << 20, Hi: 1 << 27, Weight: 0.2},
				{Lo: 1 << 27, Hi: 1 << 30, Weight: 0.1},
			})
			if err != nil {
				t.Fatal(err)
			}
			return h
		},
	}
}

// Equal seeds must yield identical draw sequences for every generator.
func TestSameSeedSameSequence(t *testing.T) {
	for name, mk := range testGenerators(t) {
		t.Run(name, func(t *testing.T) {
			g1, g2 := mk(), mk()
			r1, r2 := rng.New(42), rng.New(42)
			for i := 0; i < 1000; i++ {
				if a, b := g1.Next(r1), g2.Next(r2); a != b {
					t.Fatalf("draw %d diverged: %d vs %d", i, a, b)
				}
			}
		})
	}
}

// A State/RestoreState round trip taken mid-stream must continue the
// sequence exactly — including the stream position of the shared RNG.
func TestStateRoundTripMidStream(t *testing.T) {
	for name, mk := range testGenerators(t) {
		t.Run(name, func(t *testing.T) {
			g := mk()
			r := rng.New(7)
			for i := 0; i < 137; i++ {
				g.Next(r)
			}
			genSnap, rngSnap := g.State(), r.State()

			var want []int64
			for i := 0; i < 200; i++ {
				want = append(want, g.Next(r))
			}

			restored, err := Restore(genSnap)
			if err != nil {
				t.Fatal(err)
			}
			r2 := rng.FromState(rngSnap)
			for i, w := range want {
				if got := restored.Next(r2); got != w {
					t.Fatalf("draw %d after restore: got %d, want %d", i, got, w)
				}
			}
		})
	}
}

// RestoreState must reject a snapshot of the wrong kind.
func TestRestoreRejectsWrongKind(t *testing.T) {
	z := NewZipfian(10, 0.99)
	if err := z.RestoreState(NewCounter(0).State()); err == nil {
		t.Error("zipfian accepted a counter snapshot")
	}
	if _, err := Restore(State{Kind: "no-such-kind"}); err == nil {
		t.Error("Restore accepted an unknown kind")
	}
}

// Zipfian rank frequencies must decrease monotonically in rank (the
// defining property Gray's construction is supposed to deliver).
func TestZipfianRankFrequencyMonotone(t *testing.T) {
	const items, draws = 20, 200000
	z := NewZipfian(items, ZipfianTheta)
	r := rng.New(1)
	counts := make([]int, items)
	for i := 0; i < draws; i++ {
		v := z.Next(r)
		if v < 0 || v >= items {
			t.Fatalf("draw out of range: %d", v)
		}
		counts[v]++
	}
	// The head must be strictly ordered; the tail is noisy at finite
	// sample sizes, so compare with one rank of slack there.
	for i := 0; i < 5; i++ {
		if counts[i] <= counts[i+1] {
			t.Errorf("rank %d (%d draws) not above rank %d (%d draws)",
				i, counts[i], i+1, counts[i+1])
		}
	}
	for i := 5; i < items-2; i++ {
		if counts[i] < counts[i+2] {
			t.Errorf("rank %d (%d draws) below rank %d (%d draws)",
				i, counts[i], i+2, counts[i+2])
		}
	}
	// Rank 0 of a θ≈0.99 zipfian over 20 items holds 1/ζ(20, θ) ≈ 27%
	// of the mass.
	if frac := float64(counts[0]) / draws; frac < 0.23 || frac > 0.31 {
		t.Errorf("rank-0 mass = %.3f, want ≈0.27", frac)
	}
}

// Growing the item count mid-stream must extend the support and match a
// from-scratch generator's normalizer.
func TestZipfianIncrementalGrowth(t *testing.T) {
	z := NewZipfian(10, 0.9)
	r := rng.New(3)
	for i := 0; i < 100; i++ {
		z.Next(r)
	}
	z.Grow(50)
	seen := false
	for i := 0; i < 20000; i++ {
		v := z.Next(r)
		if v >= 50 {
			t.Fatalf("draw %d out of grown range", v)
		}
		if v >= 10 {
			seen = true
		}
	}
	if !seen {
		t.Error("no draws from the grown region after Grow(50)")
	}
	fresh := NewZipfian(50, 0.9)
	if g, w := z.State().F[1], fresh.State().F[1]; math_Abs(g-w) > 1e-9 {
		t.Errorf("incremental zetan %v != from-scratch %v", g, w)
	}
}

func math_Abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// The hotspot generator must put hotOpn of the draws in the hot
// segment, within sampling tolerance.
func TestHotspotRatio(t *testing.T) {
	const lo, hi, draws = 0, 99, 100000
	h := NewHotspot(lo, hi, 0.2, 0.8)
	r := rng.New(5)
	hot := 0
	for i := 0; i < draws; i++ {
		v := h.Next(r)
		if v < lo || v > hi {
			t.Fatalf("draw out of range: %d", v)
		}
		if v < lo+20 { // hotFrac 0.2 of 100 values
			hot++
		}
	}
	if frac := float64(hot) / draws; frac < 0.77 || frac > 0.83 {
		t.Errorf("hot fraction = %.3f, want 0.80 ± 0.03", frac)
	}
}

// The size histogram's draw frequencies must match its bucket weights,
// and every size must fall inside its bucket's bounds.
func TestSizeHistogramMatchesWeights(t *testing.T) {
	buckets := []SizeBucket{
		{Lo: 1 << 10, Hi: 1 << 20, Weight: 0.7},
		{Lo: 1 << 20, Hi: 1 << 27, Weight: 0.2},
		{Lo: 1 << 27, Hi: 1 << 30, Weight: 0.1},
	}
	h, err := NewSizeHistogram(buckets)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	const draws = 100000
	counts := make([]int, len(buckets))
	for i := 0; i < draws; i++ {
		size := h.Next(r)
		idx := h.BucketIndex(size)
		if idx < 0 {
			t.Fatalf("size %d outside every bucket", size)
		}
		counts[idx]++
	}
	for i, b := range buckets {
		got := float64(counts[i]) / draws
		if math_Abs(got-b.Weight) > 0.025 {
			t.Errorf("bucket %d frequency %.3f, want %.2f ± 0.025", i, got, b.Weight)
		}
	}
}

// The exponential generator must put ~percentile of its mass below the
// configured range.
func TestExponentialPercentile(t *testing.T) {
	e := NewExponential(95, 50)
	r := rng.New(11)
	const draws = 100000
	below := 0
	for i := 0; i < draws; i++ {
		v := e.Next(r)
		if v < 0 {
			t.Fatalf("negative draw %d", v)
		}
		if v < 50 {
			below++
		}
	}
	if frac := float64(below) / draws; frac < 0.93 || frac > 0.97 {
		t.Errorf("mass below range = %.3f, want 0.95 ± 0.02", frac)
	}
}

// The counter must count without touching the stream.
func TestCounterLeavesStreamUntouched(t *testing.T) {
	c := NewCounter(5)
	r := rng.New(13)
	before := r.State()
	for i := int64(5); i < 15; i++ {
		if v := c.Next(r); v != i {
			t.Fatalf("counter draw = %d, want %d", v, i)
		}
	}
	if r.State() != before {
		t.Error("counter consumed stream entropy")
	}
	if c.Last() != 14 {
		t.Errorf("Last = %d, want 14", c.Last())
	}
}

// NewSizeHistogram must reject empty and non-positive-weight inputs.
func TestSizeHistogramValidation(t *testing.T) {
	if _, err := NewSizeHistogram(nil); err == nil {
		t.Error("empty histogram accepted")
	}
	if _, err := NewSizeHistogram([]SizeBucket{{Lo: 1, Hi: 2, Weight: 0}}); err == nil {
		t.Error("zero-weight bucket accepted")
	}
}
