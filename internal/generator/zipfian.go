package generator

import (
	"math"

	"geomancy/internal/rng"
)

// ZipfianTheta is the canonical skew constant (YCSB's 0.99): rank-1
// draws roughly one in five operations over a few dozen items.
const ZipfianTheta = 0.99

// Zipfian draws ranks 0..items-1 with P(rank k) ∝ 1/(k+1)^θ, using
// Gray et al.'s "Quickly Generating Billion-Record Synthetic Databases"
// construction as popularized by YCSB. The generator supports growing
// the item count mid-stream: the ζ(n, θ) normalizer is recomputed
// incrementally from the last computed prefix instead of from scratch,
// so appending items (an ingest workload) costs O(added) rather than
// O(total) per growth step.
//
// Rank 0 is the most popular item. Scenarios that want hot items spread
// across the keyspace should permute ranks themselves (deterministically)
// rather than rely on hashing, which would leave the hot set opaque to
// distribution assertions.
type Zipfian struct {
	items int64
	theta float64

	// Incremental ζ state: zetan = ζ(countForZeta, θ).
	countForZeta int64
	zetan        float64

	// Derived constants (functions of theta only).
	//geomancy:ephemeral recomputed from theta by deriveConstants on construction and restore
	zeta2theta float64
	alpha      float64 //geomancy:ephemeral recomputed from theta by deriveConstants on construction and restore
}

// NewZipfian returns a zipfian generator over ranks [0, items) with
// skew theta in (0, 1); items must be ≥ 1.
func NewZipfian(items int64, theta float64) *Zipfian {
	if items < 1 {
		items = 1
	}
	if theta <= 0 || theta >= 1 {
		theta = ZipfianTheta
	}
	z := &Zipfian{items: items, theta: theta}
	z.deriveConstants()
	z.zetan = zetaRange(0, items, theta, 0)
	z.countForZeta = items
	return z
}

func (z *Zipfian) deriveConstants() {
	z.zeta2theta = zetaRange(0, 2, z.theta, 0)
	z.alpha = 1 / (1 - z.theta)
}

// zetaRange extends ζ from a computed prefix: given base = ζ(from, θ),
// it returns ζ(to, θ) by summing only the new terms — Gray's
// incremental-item-count construction.
func zetaRange(from, to int64, theta, base float64) float64 {
	sum := base
	for i := from; i < to; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
	}
	return sum
}

// Grow raises the item count (a shrink is ignored: ζ cannot be
// incrementally unwound, and scenarios only append). The normalizer is
// extended lazily on the next draw.
func (z *Zipfian) Grow(items int64) {
	if items > z.items {
		z.items = items
	}
}

// Items returns the current item count.
func (z *Zipfian) Items() int64 { return z.items }

// Next implements Generator, returning a rank in [0, items).
func (z *Zipfian) Next(r *rng.RNG) int64 {
	if z.items > z.countForZeta {
		z.zetan = zetaRange(z.countForZeta, z.items, z.theta, z.zetan)
		z.countForZeta = z.items
	}
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	eta := (1 - math.Pow(2/float64(z.items), 1-z.theta)) / (1 - z.zeta2theta/z.zetan)
	rank := int64(float64(z.items) * math.Pow(eta*u-eta+1, z.alpha))
	if rank >= z.items {
		rank = z.items - 1
	}
	return rank
}

// State implements Generator.
func (z *Zipfian) State() State {
	return State{
		Kind: kindZipfian,
		I:    []int64{z.items, z.countForZeta},
		F:    []float64{z.theta, z.zetan},
	}
}

// RestoreState implements Generator.
func (z *Zipfian) RestoreState(s State) error {
	if err := s.check(kindZipfian, 2, 2); err != nil {
		return err
	}
	z.items, z.countForZeta = s.I[0], s.I[1]
	z.theta, z.zetan = s.F[0], s.F[1]
	z.deriveConstants()
	return nil
}
