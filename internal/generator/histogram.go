package generator

import (
	"fmt"
	"math"

	"geomancy/internal/rng"
)

// SizeBucket is one weighted band of a file-size histogram.
type SizeBucket struct {
	// Lo and Hi bound the sizes of this band in bytes, inclusive.
	Lo, Hi int64
	// Weight is the band's relative draw probability (any positive
	// scale; weights are normalized over the histogram).
	Weight float64
}

// SizeHistogram draws file sizes from a weighted bucket histogram:
// first a bucket proportionally to its weight, then a log-uniform size
// within the bucket (file sizes spread over decades, so log-uniform
// keeps every magnitude represented). It backs the mixed-sizes
// scenario's population — many small files, a heavy tail of huge ones —
// the shape the paper's fixed 24-file working set never probes.
type SizeHistogram struct {
	buckets []SizeBucket
	total   float64 //geomancy:ephemeral derived sum of bucket weights, recomputed wherever buckets are rebuilt
}

// NewSizeHistogram builds a histogram generator; buckets must be
// non-empty with positive weights and Lo ≥ 1.
func NewSizeHistogram(buckets []SizeBucket) (*SizeHistogram, error) {
	if len(buckets) == 0 {
		return nil, fmt.Errorf("generator: size histogram needs at least one bucket")
	}
	h := &SizeHistogram{buckets: append([]SizeBucket(nil), buckets...)}
	for i := range h.buckets {
		b := &h.buckets[i]
		if b.Lo < 1 {
			b.Lo = 1
		}
		if b.Hi < b.Lo {
			b.Hi = b.Lo
		}
		if b.Weight <= 0 {
			return nil, fmt.Errorf("generator: size bucket %d has non-positive weight %v", i, b.Weight)
		}
		h.total += b.Weight
	}
	return h, nil
}

// Buckets returns a copy of the histogram's bands.
func (h *SizeHistogram) Buckets() []SizeBucket {
	return append([]SizeBucket(nil), h.buckets...)
}

// BucketIndex returns which band a size falls into (-1 if none) —
// distribution tests use it to compare draw frequencies against
// weights.
func (h *SizeHistogram) BucketIndex(size int64) int {
	for i, b := range h.buckets {
		if size >= b.Lo && size <= b.Hi {
			return i
		}
	}
	return -1
}

// Next implements Generator, returning a size in bytes.
func (h *SizeHistogram) Next(r *rng.RNG) int64 {
	u := r.Float64() * h.total
	idx := len(h.buckets) - 1
	for i, b := range h.buckets {
		if u < b.Weight {
			idx = i
			break
		}
		u -= b.Weight
	}
	b := h.buckets[idx]
	if b.Lo == b.Hi {
		return b.Lo
	}
	logLo, logHi := math.Log(float64(b.Lo)), math.Log(float64(b.Hi))
	size := int64(math.Exp(logLo + r.Float64()*(logHi-logLo)))
	if size < b.Lo {
		size = b.Lo
	}
	if size > b.Hi {
		size = b.Hi
	}
	return size
}

// State implements Generator: buckets flatten to (Lo, Hi) pairs in I
// and weights in F.
func (h *SizeHistogram) State() State {
	st := State{Kind: kindSizeHistogram}
	for _, b := range h.buckets {
		st.I = append(st.I, b.Lo, b.Hi)
		st.F = append(st.F, b.Weight)
	}
	return st
}

// RestoreState implements Generator.
func (h *SizeHistogram) RestoreState(s State) error {
	if s.Kind != kindSizeHistogram {
		return fmt.Errorf("generator: restoring %q state into a %s generator", s.Kind, kindSizeHistogram)
	}
	if len(s.F) == 0 || len(s.I) != 2*len(s.F) {
		return fmt.Errorf("generator: %s state has %d/%d registers, want 2n/n",
			kindSizeHistogram, len(s.I), len(s.F))
	}
	buckets := make([]SizeBucket, len(s.F))
	for i := range buckets {
		buckets[i] = SizeBucket{Lo: s.I[2*i], Hi: s.I[2*i+1], Weight: s.F[i]}
	}
	restored, err := NewSizeHistogram(buckets)
	if err != nil {
		return err
	}
	*h = *restored
	return nil
}
