package experiments

import (
	"fmt"

	"geomancy/internal/core"
	"geomancy/internal/policy"
	"geomancy/internal/rng"
	"geomancy/internal/scenario"
)

// Column labels of the learned family in the policy matrix.
const (
	// GeomancyName is the engine's column label in the policy matrix.
	GeomancyName = "Geomancy dynamic"
	// OnlineName labels the incremental-learning variant.
	OnlineName = "online-geomancy"
	// TieredName labels the device-class-gated variant.
	TieredName = "tiered-geomancy"
	// ShardedName labels the sharded-coordinator variant
	// (core.ShardedPolicyName run at matrixShards device groups).
	ShardedName = core.ShardedPolicyName
)

// PolicyMatrixResult is the per-scenario policy comparison: mean
// throughput of every placement policy on every workload scenario, with
// the winner per scenario and the learned family's win/loss tally. The
// matrix is the paper's Fig. 5 comparison swept across the workload plane
// — it answers where the learned policies' advantage holds and where a
// simple heuristic matches it.
type PolicyMatrixResult struct {
	// Scenarios are the row labels, in the order run.
	Scenarios []string
	// Policies are the column labels: baselines first, then the learned
	// family with GeomancyName always last.
	Policies []string
	// Mean[i][j] is policy j's mean per-access throughput (bytes/s) on
	// scenario i.
	Mean [][]float64
	// Winner[i] is the policy with the highest mean on scenario i.
	Winner []string
	// GeomancyWins counts scenarios where a learned-family column
	// (geomancy, sharded, online, or tiered) has the strictly highest
	// mean;
	// GeomancyLosses counts the rest.
	GeomancyWins, GeomancyLosses int
	// Gain[i] is classic Geomancy's percentage gain on scenario i over
	// the best baseline (negative where a baseline wins).
	Gain []float64
}

// matrixColumn pairs one column label with its policy builder.
type matrixColumn struct {
	name  string
	build policyBuilder
}

// matrixColumns returns the full column set of one scenario row:
// baselines first (stochastic ones on fresh streams derived from the
// seed, so every cell is independent and the whole matrix is a pure
// function of the options), then the learned family with classic
// Geomancy last.
func matrixColumns(opts Options) []matrixColumn {
	seed := opts.Seed
	return []matrixColumn{
		{"LRU", staticBuilder(policy.LRU{})},
		{"MRU", staticBuilder(policy.MRU{})},
		{"LFU", staticBuilder(policy.LFU{})},
		{"LFU (capacity-weighted)", staticBuilder(policy.Weighted{Base: policy.LFU{}})},
		{"random dynamic", staticBuilder(&policy.RandomDynamic{Rng: rng.New(seed + 2)})},
		{"random static", staticBuilder(&policy.RandomStatic{Rng: rng.New(seed + 3)})},
		{TieredName, tieredBuilder(opts)},
		{OnlineName, onlineBuilder(opts)},
		{ShardedName, shardedBuilder(opts)},
		{GeomancyName, geomancyBuilder(opts)},
	}
}

// learnedColumns is the number of learned-family columns at the tail of
// the matrix (tiered, online, sharded, geomancy).
const learnedColumns = 4

// PolicyMatrix runs every named scenario under every baseline policy and
// the four learned variants, all through the one generic runner
// (runScenarioPolicy). A nil scenarios slice selects the full catalogue.
// Each cell runs on a fresh testbed with the same seed, so columns of a
// row are comparable and the result is deterministic: equal options yield
// an identical matrix.
func PolicyMatrix(opts Options, scenarios []string) (*PolicyMatrixResult, error) {
	opts = opts.withDefaults()
	if scenarios == nil {
		scenarios = scenario.Names()
	}
	res := &PolicyMatrixResult{Scenarios: scenarios}
	for _, col := range matrixColumns(opts) {
		res.Policies = append(res.Policies, col.name)
	}
	baselines := len(res.Policies) - learnedColumns

	for _, name := range scenarios {
		row := make([]float64, 0, len(res.Policies))
		// Stochastic baseline columns carry per-cell state (RNG position,
		// one-shot flags), so the column set is rebuilt per scenario.
		for _, col := range matrixColumns(opts) {
			s, _, tb, err := runScenarioPolicy(name, col.build, opts)
			if err != nil {
				return nil, fmt.Errorf("experiments: scenario %s under %s: %w", name, col.name, err)
			}
			tb.db.Close()
			row = append(row, s.Mean)
		}
		res.Mean = append(res.Mean, row)

		best, bestBaseline := 0, 0.0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
			if j < baselines && v > bestBaseline {
				bestBaseline = v
			}
		}
		res.Winner = append(res.Winner, res.Policies[best])
		if best >= baselines {
			res.GeomancyWins++
		} else {
			res.GeomancyLosses++
		}
		gain := 0.0
		if bestBaseline > 0 {
			gain = (row[len(row)-1]/bestBaseline - 1) * 100
		}
		res.Gain = append(res.Gain, gain)
	}
	return res, nil
}

// Table renders the matrix: one row per scenario, one column per policy
// (winner cell marked with *), plus classic Geomancy's gain over the best
// baseline and the learned family's win/loss tally in the caption.
func (r *PolicyMatrixResult) Table() *Table {
	t := &Table{
		Title:  "Policy matrix: mean throughput per scenario (winner marked *)",
		Header: append(append([]string{"scenario"}, r.Policies...), "Geomancy vs best baseline"),
	}
	for i, name := range r.Scenarios {
		row := []string{name}
		for j, v := range r.Mean[i] {
			cell := GBps(v)
			if r.Policies[j] == r.Winner[i] {
				cell += " *"
			}
			row = append(row, cell)
		}
		row = append(row, fmt.Sprintf("%+.1f%%", r.Gain[i]))
		t.Rows = append(t.Rows, row)
	}
	t.Caption = fmt.Sprintf("learned family wins %d of %d scenarios", r.GeomancyWins, r.GeomancyWins+r.GeomancyLosses)
	return t
}
