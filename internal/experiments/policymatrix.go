package experiments

import (
	"fmt"

	"geomancy/internal/policy"
	"geomancy/internal/rng"
	"geomancy/internal/scenario"
)

// GeomancyName is the engine's column label in the policy matrix.
const GeomancyName = "Geomancy dynamic"

// PolicyMatrixResult is the per-scenario policy comparison: mean
// throughput of every placement policy on every workload scenario, with
// the winner per scenario and Geomancy's win/loss tally. The matrix is
// the paper's Fig. 5 comparison swept across the workload plane — it
// answers where the learned policy's advantage holds and where a simple
// heuristic matches it.
type PolicyMatrixResult struct {
	// Scenarios are the row labels, in the order run.
	Scenarios []string
	// Policies are the column labels; GeomancyName is always last.
	Policies []string
	// Mean[i][j] is policy j's mean per-access throughput (bytes/s) on
	// scenario i.
	Mean [][]float64
	// Winner[i] is the policy with the highest mean on scenario i.
	Winner []string
	// GeomancyWins counts scenarios where the engine's mean is strictly
	// highest; GeomancyLosses counts the rest.
	GeomancyWins, GeomancyLosses int
	// Gain[i] is Geomancy's percentage gain on scenario i over the best
	// baseline (negative where a baseline wins).
	Gain []float64
}

// matrixBaselines returns the baseline policy set of one scenario cell.
// Stochastic baselines get fresh streams derived from the seed, so every
// (scenario, policy) cell is independent and the whole matrix is a pure
// function of the options.
func matrixBaselines(seed int64) []policy.Policy {
	return []policy.Policy{
		policy.LRU{},
		policy.MRU{},
		policy.LFU{},
		policy.Weighted{Base: policy.LFU{}},
		&policy.RandomDynamic{Rng: rng.NewRand(seed + 2)},
		&policy.RandomStatic{Rng: rng.NewRand(seed + 3)},
	}
}

// PolicyMatrix runs every named scenario under every baseline policy and
// the Geomancy closed loop. A nil scenarios slice selects the full
// catalogue. Each cell runs on a fresh testbed with the same seed, so
// columns of a row are comparable and the result is deterministic: equal
// options yield an identical matrix.
func PolicyMatrix(opts Options, scenarios []string) (*PolicyMatrixResult, error) {
	opts = opts.withDefaults()
	if scenarios == nil {
		scenarios = scenario.Names()
	}
	res := &PolicyMatrixResult{Scenarios: scenarios}
	for _, p := range matrixBaselines(opts.Seed) {
		res.Policies = append(res.Policies, p.Name())
	}
	res.Policies = append(res.Policies, GeomancyName)

	for _, name := range scenarios {
		row := make([]float64, 0, len(res.Policies))
		for _, p := range matrixBaselines(opts.Seed) {
			s, tb, err := runPolicyScenario(name, p, opts)
			if err != nil {
				return nil, fmt.Errorf("experiments: scenario %s under %s: %w", name, p.Name(), err)
			}
			tb.db.Close()
			row = append(row, s.Mean)
		}
		s, _, tb, err := runGeomancyScenario(name, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: scenario %s under Geomancy: %w", name, err)
		}
		tb.db.Close()
		row = append(row, s.Mean)
		res.Mean = append(res.Mean, row)

		best, bestBaseline := 0, 0.0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
			if j < len(row)-1 && v > bestBaseline {
				bestBaseline = v
			}
		}
		res.Winner = append(res.Winner, res.Policies[best])
		if res.Policies[best] == GeomancyName {
			res.GeomancyWins++
		} else {
			res.GeomancyLosses++
		}
		gain := 0.0
		if bestBaseline > 0 {
			gain = (row[len(row)-1]/bestBaseline - 1) * 100
		}
		res.Gain = append(res.Gain, gain)
	}
	return res, nil
}

// Table renders the matrix: one row per scenario, one column per policy
// (winner cell marked with *), plus Geomancy's gain over the best
// baseline and the win/loss tally in the caption.
func (r *PolicyMatrixResult) Table() *Table {
	t := &Table{
		Title:  "Policy matrix: mean throughput per scenario (winner marked *)",
		Header: append(append([]string{"scenario"}, r.Policies...), "Geomancy vs best baseline"),
	}
	for i, name := range r.Scenarios {
		row := []string{name}
		for j, v := range r.Mean[i] {
			cell := GBps(v)
			if r.Policies[j] == r.Winner[i] {
				cell += " *"
			}
			row = append(row, cell)
		}
		row = append(row, fmt.Sprintf("%+.1f%%", r.Gain[i]))
		t.Rows = append(t.Rows, row)
	}
	t.Caption = fmt.Sprintf("Geomancy wins %d of %d scenarios", r.GeomancyWins, r.GeomancyWins+r.GeomancyLosses)
	return t
}
