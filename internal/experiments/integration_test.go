package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// The integration tests run every experiment at Quick scale and check the
// qualitative shape the paper reports. Full-scale shape verification lives
// in EXPERIMENTS.md via cmd/experiment.

func TestTable2QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("model search is slow")
	}
	res, err := Table2(Quick(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Device != "people" {
		t.Errorf("device = %q", res.Device)
	}
	if len(res.Models) != 23 {
		t.Fatalf("%d models, want 23", len(res.Models))
	}
	var diverged, converged int
	for _, m := range res.Models {
		if m.TrainTime <= 0 {
			t.Errorf("model %d has no train time", m.Model)
		}
		if m.Metrics.Diverged {
			diverged++
		} else {
			converged++
			if m.Metrics.MARE < 0 || m.Metrics.MARE > 500 {
				t.Errorf("model %d MARE = %v", m.Model, m.Metrics.MARE)
			}
		}
	}
	// Most models converge; a few may diverge (the paper had 2 of 23).
	if converged < 15 {
		t.Errorf("only %d models converged", converged)
	}
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table II") {
		t.Error("table title missing")
	}
}

func TestTable3QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("model search is slow")
	}
	res, err := Table3(Quick(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerMount) != 6 {
		t.Fatalf("%d mounts, want 6", len(res.PerMount))
	}
	names := map[string]bool{}
	for _, m := range res.PerMount {
		names[m.Device] = true
		if m.Samples < 20 {
			t.Errorf("mount %s has only %d samples", m.Device, m.Samples)
		}
	}
	for _, want := range []string{"file0", "pic", "people", "tmp", "var", "USBtmp"} {
		if !names[want] {
			t.Errorf("mount %s missing from Table III", want)
		}
	}
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig5aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("policy comparison is slow")
	}
	res, err := Fig5a(Quick(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 5 {
		t.Fatalf("%d series, want 5 (LRU, MRU, LFU, random dynamic, Geomancy)", len(res.Series))
	}
	byName := map[string]Series{}
	for _, s := range res.Series {
		byName[s.Name] = s
		if s.Accesses == 0 || s.Mean <= 0 {
			t.Errorf("series %s empty: %+v", s.Name, s)
		}
		if len(s.Points) == 0 {
			t.Errorf("series %s has no points", s.Name)
		}
	}
	geo, ok := byName["Geomancy dynamic"]
	if !ok {
		t.Fatal("Geomancy series missing")
	}
	if len(geo.Movements) == 0 {
		t.Error("Geomancy made no movements")
	}
	// Movement bars stay within the paper's 1–14 files per decision
	// under reasonable exploration. Allow up to the full working set.
	for _, m := range geo.Movements {
		if m.Moved < 1 || m.Moved > 24 {
			t.Errorf("movement of %d files out of range", m.Moved)
		}
	}
	if len(res.GeomancyGain) != 4 {
		t.Errorf("gains = %v, want 4 entries", res.GeomancyGain)
	}
	var buf bytes.Buffer
	if err := res.SummaryTable("Fig 5a").Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig5bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("policy comparison is slow")
	}
	res, err := Fig5b(Quick(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("%d series, want 3", len(res.Series))
	}
	names := map[string]bool{}
	for _, s := range res.Series {
		names[s.Name] = true
	}
	for _, want := range []string{"random static", "Geomancy static", "Geomancy dynamic"} {
		if !names[want] {
			t.Errorf("series %q missing", want)
		}
	}
	// Static placements must not move after their initial layout: at most
	// one movement bar, at access index 0.
	for _, s := range res.Series {
		if s.Name == "Geomancy dynamic" {
			continue
		}
		for _, m := range s.Movements {
			if m.AccessIndex > 0 {
				t.Errorf("%s moved files mid-run at access %d", s.Name, m.AccessIndex)
			}
		}
	}
}

func TestTable4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("single-mount sweep is slow")
	}
	res, err := Table4(Quick(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("%d rows, want 7 (6 mounts + Geomancy)", len(res.Rows))
	}
	best := res.Best()
	if best.Name != "file0" {
		t.Errorf("fastest single mount = %s, want file0 (Table IV ordering)", best.Name)
	}
	// USBtmp is the slowest single mount.
	var usb, geo Table4Row
	for _, r := range res.Rows {
		switch r.Name {
		case "USBtmp":
			usb = r
		case "Geomancy":
			geo = r
		}
	}
	if usb.Mean >= best.Mean {
		t.Error("USBtmp should be slower than file0")
	}
	if geo.Mean <= usb.Mean {
		t.Error("Geomancy should beat the slowest single mount")
	}
	if geo.Usage != 100 {
		t.Errorf("Geomancy usage = %v, want 100", geo.Usage)
	}
	// Usage shares of the devices sum to ~100%.
	var sum float64
	for _, r := range res.Rows {
		if r.Name != "Geomancy" {
			sum += r.Usage
		}
	}
	if sum < 99 || sum > 101 {
		t.Errorf("device usage sums to %v, want ~100", sum)
	}
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("dual workload is slow")
	}
	res, err := Fig6(Quick(6))
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuned.Accesses == 0 || res.Untuned.Accesses == 0 {
		t.Fatal("both workloads must record accesses")
	}
	if res.InterferenceStart <= 0 || res.InterferenceStart >= res.Tuned.Accesses {
		t.Errorf("interference start %d outside tuned run (0, %d)", res.InterferenceStart, res.Tuned.Accesses)
	}
	if res.PreMean <= 0 || res.DipMean <= 0 || res.RecoveredMean <= 0 {
		t.Errorf("summary means not populated: %+v", res)
	}
	if !strings.Contains(res.Summary(), "interference at access") {
		t.Errorf("summary = %q", res.Summary())
	}
}

func TestOverheadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead study is slow")
	}
	res, err := Overhead(Quick(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Six.Features != 6 || res.Thirteen.Features != 13 {
		t.Errorf("feature counts = %d, %d", res.Six.Features, res.Thirteen.Features)
	}
	if res.Six.TrainTime <= 0 || res.Thirteen.TrainTime <= 0 {
		t.Error("train times not measured")
	}
	if res.Six.PredictTime <= 0 {
		t.Error("single-prediction latency not measured")
	}
	// More features ⇒ wider model 1 ⇒ more work per epoch.
	if res.Thirteen.TrainTime < res.Six.TrainTime/2 {
		t.Errorf("13-feature training (%v) suspiciously faster than 6-feature (%v)",
			res.Thirteen.TrainTime, res.Six.TrainTime)
	}
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestGainsComputation(t *testing.T) {
	series := []Series{
		{Name: "LFU", Mean: 4e9},
		{Name: "Geomancy dynamic", Mean: 5e9},
	}
	g := gains(series)
	if got := g["LFU"]; got < 24.9 || got > 25.1 {
		t.Errorf("gain = %v, want 25", got)
	}
	if len(gains([]Series{{Name: "LFU", Mean: 1}})) != 0 {
		t.Error("no Geomancy series should yield no gains")
	}
}
