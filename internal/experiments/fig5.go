package experiments

import (
	"context"
	"fmt"

	"geomancy/internal/agents"
	"geomancy/internal/core"
	"geomancy/internal/policy"
	"geomancy/internal/rng"
	"geomancy/internal/storagesim"
)

// policyBuilder constructs the policy (and, for the learned family, the
// engine bridge behind it) over a bootstrapped testbed. Baselines carry a
// nil model.
type policyBuilder func(tb *testbed) (policy.Policy, *core.EngineModel, error)

// staticBuilder wraps a ready-made policy instance.
func staticBuilder(p policy.Policy) policyBuilder {
	return func(*testbed) (policy.Policy, *core.EngineModel, error) { return p, nil, nil }
}

// tbEngineModel builds a DRL engine over the testbed's ReplayDB and
// bridges it to the policy plane.
func tbEngineModel(tb *testbed, opts Options) (*core.EngineModel, error) {
	engine, err := core.NewEngine(tb.db, tb.cluster.DeviceNames(), engineConfig(opts))
	if err != nil {
		return nil, err
	}
	return engine.NewModel(tb.cluster), nil
}

// geomancyBuilder is the paper's closed loop: full retrain every decision.
func geomancyBuilder(opts Options) policyBuilder {
	return func(tb *testbed) (policy.Policy, *core.EngineModel, error) {
		m, err := tbEngineModel(tb, opts)
		if err != nil {
			return nil, nil, err
		}
		return &policy.Geomancy{Model: m}, m, nil
	}
}

// onlineBuilder is the incremental-learning variant: minibatch updates
// between full retrains.
func onlineBuilder(opts Options) policyBuilder {
	return func(tb *testbed) (policy.Policy, *core.EngineModel, error) {
		m, err := tbEngineModel(tb, opts)
		if err != nil {
			return nil, nil, err
		}
		return &policy.Online{Model: m}, m, nil
	}
}

// tieredBuilder is the device-class-gated variant: only cross-tier
// promote/demote moves survive.
func tieredBuilder(opts Options) policyBuilder {
	return func(tb *testbed) (policy.Policy, *core.EngineModel, error) {
		m, err := tbEngineModel(tb, opts)
		if err != nil {
			return nil, nil, err
		}
		return &policy.Tiered{Model: m}, m, nil
	}
}

// matrixShards is the sharded column's partition width: Bluesky's six
// mounts split into two device groups of three.
const matrixShards = 2

// shardedBuilder is the sharded-coordinator variant: the testbed's
// devices partition into matrixShards groups, each deciding over its own
// subset with one batched inference per cycle and cross-shard
// escalation (core.Sharded).
func shardedBuilder(opts Options) policyBuilder {
	return func(tb *testbed) (policy.Policy, *core.EngineModel, error) {
		s, err := core.NewSharded(tb.db, tb.cluster, matrixShards, nil, engineConfig(opts))
		if err != nil {
			return nil, nil, err
		}
		return s, s.Model(), nil
	}
}

// runScenarioPolicy executes the paper's experiment-1 protocol for one
// policy on one scenario: bootstrap the testbed, take an initial placement
// decision at measurement start, then run the workload with the policy
// re-deciding every CooldownRuns runs. Every policy — baseline heuristic
// or learned — goes through this one loop, so columns of a comparison
// differ only in the policy.
func runScenarioPolicy(scenarioName string, build policyBuilder, opts Options) (Series, *core.Loop, *testbed, error) {
	tb, err := newScenarioTestbed(scenarioName, opts.Seed)
	if err != nil {
		return Series{}, nil, nil, err
	}
	if err := tb.bootstrap(opts.BootstrapRuns, opts.Seed+1); err != nil {
		return Series{}, nil, nil, err
	}
	p, model, err := build(tb)
	if err != nil {
		return Series{}, nil, nil, err
	}
	ctx := context.Background()
	loop := core.NewPolicyLoop(tb.db, tb.cluster, tb.runner, p, 0)
	loop.SetModel(model)
	loop.SeedHeat(tb.lastAccess, tb.accesses)
	// Initial placement from the bootstrap telemetry: every policy acts at
	// measurement start (the paper's engine has its 10,000-access warm-up
	// behind it), then keeps adapting on the cooldown schedule.
	if err := loop.Decide(ctx); err != nil {
		return Series{}, nil, nil, err
	}
	sb := newSeriesBuilder(opts.SeriesWindow)
	loop.Observer = func(res storagesim.AccessResult, wl, run int) {
		sb.add(res.Throughput, res.End-res.Start)
	}
	for r := 0; r < opts.Runs; r++ {
		if _, err := loop.RunOnceContext(ctx); err != nil {
			return Series{}, nil, nil, err
		}
		if (r+1)%opts.CooldownRuns == 0 {
			if err := loop.Decide(ctx); err != nil {
				return Series{}, nil, nil, err
			}
		}
	}
	s := sb.finish(p.Name())
	for _, mv := range loop.Movements() {
		if mv.Moved > 0 {
			s.Movements = append(s.Movements, MovementBar{AccessIndex: mv.AccessIndex, Moved: mv.Moved})
		}
	}
	return s, loop, tb, nil
}

// runPolicy is runScenarioPolicy for a ready-made policy on the paper's
// BELLE II scenario.
func runPolicy(p policy.Policy, opts Options) (Series, *testbed, error) {
	s, _, tb, err := runScenarioPolicy("belle", staticBuilder(p), opts)
	return s, tb, err
}

// engineConfig derives the Geomancy engine settings from the options.
func engineConfig(opts Options) core.Config {
	return core.Config{
		Epochs:       opts.Epochs,
		WindowX:      opts.WindowX,
		CooldownRuns: opts.CooldownRuns,
		Seed:         opts.Seed + 77,
		Parallelism:  opts.Parallelism,
	}
}

// runGeomancyDynamic executes the full closed loop and returns its series
// plus the loop and testbed for utilization accounting.
func runGeomancyDynamic(opts Options) (Series, *core.Loop, *testbed, error) {
	return runScenarioPolicy("belle", geomancyBuilder(opts), opts)
}

// geomancyStaticLayout trains an engine on a bootstrap ReplayDB (the
// paper trains it on ~10,000 metrics from the dynamic-random experiment)
// and returns its single greedy layout proposal.
func geomancyStaticLayout(opts Options) (map[int64]string, error) {
	tb, err := newTestbed(opts.Seed)
	if err != nil {
		return nil, err
	}
	defer tb.db.Close()
	if err := tb.bootstrap(opts.BootstrapRuns+opts.CooldownRuns, opts.Seed+1); err != nil {
		return nil, err
	}
	cfg := engineConfig(opts)
	// One-shot static placement is pure exploitation: effectively no
	// exploration (exactly 0 would select the 0.1 default).
	cfg.Epsilon = 1e-9
	engine, err := core.NewEngine(tb.db, tb.cluster.DeviceNames(), cfg)
	if err != nil {
		return nil, err
	}
	if _, err := engine.Train(); err != nil {
		return nil, err
	}
	layout := tb.cluster.Layout()
	metas := make([]core.FileMeta, 0, len(tb.files))
	for _, f := range tb.files {
		metas = append(metas, core.FileMeta{ID: f.ID, Path: f.Path, Size: f.Size, Device: layout[f.ID]})
	}
	checker := agents.NewActionChecker(rng.New(opts.Seed+5), tb.cluster.DeviceNames())
	proposed, _, err := engine.ProposeLayout(metas, checker, agents.ClusterValidator(tb.cluster))
	return proposed, err
}

// ComparisonResult bundles the Fig. 5 series and the headline summary.
type ComparisonResult struct {
	Series []Series
	// GeomancyGain maps each base case to Geomancy's mean-throughput
	// gain over it, in percent (the paper's 11–30% numbers).
	GeomancyGain map[string]float64
}

// gains computes Geomancy's percentage gain over every other series.
func gains(series []Series) map[string]float64 {
	var geo *Series
	for i := range series {
		if series[i].Name == "Geomancy dynamic" {
			geo = &series[i]
		}
	}
	out := make(map[string]float64)
	if geo == nil {
		return out
	}
	for i := range series {
		if series[i].Name == geo.Name || series[i].Mean == 0 {
			continue
		}
		out[series[i].Name] = (geo.Mean/series[i].Mean - 1) * 100
	}
	return out
}

// Fig5a reproduces the dynamic-policy comparison: Geomancy dynamic vs
// LRU, MRU, LFU and random dynamic.
func Fig5a(opts Options) (*ComparisonResult, error) {
	opts = opts.withDefaults()
	res := &ComparisonResult{}

	basePolicies := []policy.Policy{
		policy.LRU{},
		policy.MRU{},
		policy.LFU{},
		&policy.RandomDynamic{Rng: rng.New(opts.Seed + 2)},
	}
	for _, p := range basePolicies {
		s, tb, err := runPolicy(p, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: policy %s: %w", p.Name(), err)
		}
		tb.db.Close()
		res.Series = append(res.Series, s)
	}
	geo, _, tb, err := runGeomancyDynamic(opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: Geomancy dynamic: %w", err)
	}
	tb.db.Close()
	res.Series = append(res.Series, geo)
	res.GeomancyGain = gains(res.Series)
	return res, nil
}

// Fig5b reproduces the static-policy comparison: Geomancy dynamic vs
// random static and Geomancy static.
func Fig5b(opts Options) (*ComparisonResult, error) {
	opts = opts.withDefaults()
	res := &ComparisonResult{}

	rs := &policy.RandomStatic{Rng: rng.New(opts.Seed + 3)}
	s, tb, err := runPolicy(rs, opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: random static: %w", err)
	}
	tb.db.Close()
	res.Series = append(res.Series, s)

	staticLayout, err := geomancyStaticLayout(opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: Geomancy static layout: %w", err)
	}
	gs := &policy.Static{Desc: "Geomancy static", Target: staticLayout}
	s, tb, err = runPolicy(gs, opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: Geomancy static: %w", err)
	}
	tb.db.Close()
	res.Series = append(res.Series, s)

	geo, _, tb, err := runGeomancyDynamic(opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: Geomancy dynamic: %w", err)
	}
	tb.db.Close()
	res.Series = append(res.Series, geo)
	res.GeomancyGain = gains(res.Series)
	return res, nil
}

// SummaryTable renders the mean-throughput comparison.
func (r *ComparisonResult) SummaryTable(title string) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"placement", "mean throughput", "σ", "accesses", "p50/p95/p99 lat (ms)", "Geomancy gain"},
	}
	for _, s := range r.Series {
		gain := ""
		if g, ok := r.GeomancyGain[s.Name]; ok {
			gain = fmt.Sprintf("%+.1f%%", g)
		}
		t.Rows = append(t.Rows, []string{
			s.Name, GBps(s.Mean), GBps(s.Std), fmt.Sprintf("%d", s.Accesses),
			fmt.Sprintf("%.1f/%.1f/%.1f", s.LatencyP50*1e3, s.LatencyP95*1e3, s.LatencyP99*1e3),
			gain,
		})
	}
	return t
}

// WeightedPolicies is an extension experiment for §VI's remark that the
// base cases could "spread files based upon the capacities of the storage
// devices": LFU with even groups vs capacity-weighted LFU vs Geomancy.
func WeightedPolicies(opts Options) (*ComparisonResult, error) {
	opts = opts.withDefaults()
	res := &ComparisonResult{}
	for _, p := range []policy.Policy{
		policy.LFU{},
		policy.Weighted{Base: policy.LFU{}},
	} {
		s, tb, err := runPolicy(p, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: policy %s: %w", p.Name(), err)
		}
		tb.db.Close()
		res.Series = append(res.Series, s)
	}
	geo, _, tb, err := runGeomancyDynamic(opts)
	if err != nil {
		return nil, err
	}
	tb.db.Close()
	res.Series = append(res.Series, geo)
	res.GeomancyGain = gains(res.Series)
	return res, nil
}
