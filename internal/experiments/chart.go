package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// RenderChart draws one or more throughput series as an ASCII chart —
// the terminal rendition of Fig. 5/Fig. 6's throughput-over-accesses
// plots, with one glyph per series and Geomancy's movement bars marked
// beneath the x axis.
func RenderChart(w io.Writer, series []Series, height int) error {
	if height <= 0 {
		height = 12
	}
	if len(series) == 0 {
		return nil
	}
	// Column count: the longest series' point count, capped for terminals.
	const maxCols = 100
	cols := 0
	var maxTp float64
	var maxAccess int64
	for _, s := range series {
		if len(s.Points) > cols {
			cols = len(s.Points)
		}
		for _, p := range s.Points {
			if p.Throughput > maxTp {
				maxTp = p.Throughput
			}
			if p.AccessIndex > maxAccess {
				maxAccess = p.AccessIndex
			}
		}
	}
	if cols == 0 || maxTp <= 0 {
		return nil
	}
	if cols > maxCols {
		cols = maxCols
	}

	glyphs := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for pi, p := range s.Points {
			c := pi
			if len(s.Points) > maxCols {
				c = pi * maxCols / len(s.Points)
			}
			if c >= cols {
				c = cols - 1
			}
			row := int(math.Round((1 - p.Throughput/maxTp) * float64(height-1)))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][c] = g
		}
	}

	var b strings.Builder
	for r := 0; r < height; r++ {
		yVal := maxTp * float64(height-1-r) / float64(height-1)
		fmt.Fprintf(&b, "%7.2f |%s\n", yVal/1e9, string(grid[r]))
	}
	fmt.Fprintf(&b, "  GB/s  +%s\n", strings.Repeat("-", cols))
	fmt.Fprintf(&b, "         0%saccesses≈%d\n", strings.Repeat(" ", max(0, cols-20)), maxAccess)

	// Movement bars: Geomancy's if present (the gray lines of Fig. 5),
	// otherwise the first series that moved anything.
	ordered := make([]Series, 0, len(series))
	for _, s := range series {
		if strings.HasPrefix(s.Name, "Geomancy") {
			ordered = append(ordered, s)
		}
	}
	for _, s := range series {
		if !strings.HasPrefix(s.Name, "Geomancy") {
			ordered = append(ordered, s)
		}
	}
	for _, s := range ordered {
		if len(s.Movements) == 0 || s.Accesses == 0 {
			continue
		}
		bars := []byte(strings.Repeat(" ", cols))
		for _, m := range s.Movements {
			c := int(m.AccessIndex * int64(cols-1) / s.Accesses)
			if c < 0 {
				c = 0
			}
			if c >= cols {
				c = cols - 1
			}
			bars[c] = '|'
		}
		fmt.Fprintf(&b, "  moves  %s  (%s)\n", string(bars), s.Name)
		break
	}
	for si, s := range series {
		fmt.Fprintf(&b, "  %c = %s (mean %s)\n", glyphs[si%len(glyphs)], s.Name, GBps(s.Mean))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
