package experiments

import (
	"fmt"
	"geomancy/internal/features"
	"geomancy/internal/rng"
	"strings"
	"time"

	"geomancy/internal/nn"
)

// Table1 renders the model zoo — the paper's Table I.
func Table1() *Table {
	t := &Table{
		Title:  "Table I — model architectures (Z = feature count)",
		Header: []string{"model", "components"},
	}
	for n := 1; n <= nn.ModelCount; n++ {
		spec, err := nn.ModelSpec(n)
		if err != nil {
			continue
		}
		parts := make([]string, len(spec))
		for i, l := range spec {
			units := "1"
			if l.Fixed == 0 {
				if l.UnitsZ == 1 {
					units = "Z"
				} else {
					units = fmt.Sprintf("%dZ", l.UnitsZ)
				}
			}
			parts[i] = fmt.Sprintf("%s (%s) %s", units, l.Kind, l.Act)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("Model %d", n), strings.Join(parts, ", ")})
	}
	return t
}

// ModelResult is one Table II row.
type ModelResult struct {
	Model       int
	Desc        string
	Metrics     nn.Metrics
	TrainTime   time.Duration
	PredictTime time.Duration // time to predict the full test partition
	PredictN    int
}

// Table2Result is the model-search outcome.
type Table2Result struct {
	Device  string
	Samples int
	Models  []ModelResult
}

// Table2 reproduces the paper's model search (§V-G): telemetry is gathered
// from the simulated Bluesky system, the people-mount dataset is assembled
// (12,000 entries at paper scale), and all 23 Table I architectures are
// trained with plain SGD for the configured epochs and compared on mean
// absolute relative error and train/predict time.
func Table2(opts Options) (*Table2Result, error) {
	opts = opts.withDefaults()
	tb, err := newTestbed(opts.Seed)
	if err != nil {
		return nil, err
	}
	defer tb.db.Close()
	// The paper's model search trains, validates and tests on 12,000
	// entries (§V-E): 6 × WindowX. Keep running the workload until the
	// target mount has accumulated that much telemetry.
	target := opts.WindowX * 6
	if err := tb.bootstrapUntil("people", target, opts, opts.Seed+1); err != nil {
		return nil, err
	}
	devIdx := deviceIndex(tb.cluster.DeviceNames())
	ds, scaler, err := deviceDataset(tb.db, "people", devIdx, target, 8)
	if err != nil {
		return nil, err
	}
	res := &Table2Result{Device: "people", Samples: ds.Len()}
	for n := 1; n <= nn.ModelCount; n++ {
		mr, err := evaluateModel(n, ds, scaler, opts)
		if err != nil {
			return nil, fmt.Errorf("model %d: %w", n, err)
		}
		res.Models = append(res.Models, mr)
	}
	return res, nil
}

// evaluateModel trains one zoo model on ds and measures Table II's three
// columns. Error percentages are computed on the denormalized throughput
// scale via scaler.
func evaluateModel(n int, ds *nn.Dataset, scaler *features.ScalarScaler, opts Options) (ModelResult, error) {
	rng := rng.NewRand(opts.Seed + int64(n)*101)
	net, err := nn.BuildModel(n, 6, rng)
	if err != nil {
		return ModelResult{}, err
	}
	train, _, test := ds.Split()

	start := time.Now()
	_, err = net.Fit(train, nn.FitConfig{
		Epochs:    opts.Epochs,
		BatchSize: 32,
		Optimizer: &nn.SGD{LR: 0.05},
		Rng:       rng,
	})
	trainTime := time.Since(start)
	if err != nil {
		return ModelResult{}, err
	}

	start = time.Now()
	preds, idx := net.Predict(test)
	predTime := time.Since(start)
	m := denormMetrics(preds, test, idx, scaler)
	return ModelResult{
		Model:       n,
		Desc:        net.String(),
		Metrics:     m,
		TrainTime:   trainTime,
		PredictTime: predTime,
		PredictN:    len(preds),
	}, nil
}

// Table renders the result as the paper's Table II.
func (r *Table2Result) Table() *Table {
	t := &Table{
		Title:  "Table II — model comparisons on predicting performance (" + r.Device + " mount)",
		Header: []string{"model", "MARE (%)", "train time (s)", "predict time (ms)"},
		Caption: fmt.Sprintf("%d telemetry samples, 60/20/20 split, plain SGD. "+
			"Diverged = failed to capture the target's mean and variation.", r.Samples),
	}
	for _, m := range r.Models {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", m.Model),
			m.Metrics.String(),
			fmt.Sprintf("%.3f", m.TrainTime.Seconds()),
			fmt.Sprintf("%.1f", float64(m.PredictTime.Microseconds())/1000),
		})
	}
	return t
}

// Table3Result is the per-mount accuracy of the deployed model.
type Table3Result struct {
	Model    int
	PerMount []MountMetrics
}

// MountMetrics is one Table III row.
type MountMetrics struct {
	Device  string
	Metrics nn.Metrics
	Samples int
}

// Table3 reproduces Table III: model 1 trained and evaluated on each
// individual storage point's telemetry.
func Table3(opts Options) (*Table3Result, error) {
	opts = opts.withDefaults()
	tb, err := newTestbed(opts.Seed)
	if err != nil {
		return nil, err
	}
	defer tb.db.Close()
	target := opts.WindowX * 6
	// var receives the least random-placement traffic; filling it fills
	// every other mount too.
	if err := tb.bootstrapUntil("var", target, opts, opts.Seed+1); err != nil {
		return nil, err
	}
	devIdx := deviceIndex(tb.cluster.DeviceNames())
	res := &Table3Result{Model: 1}
	for _, dev := range tb.cluster.DeviceNames() {
		ds, scaler, err := deviceDataset(tb.db, dev, devIdx, target, 8)
		if err != nil {
			return nil, err
		}
		mr, err := evaluateModel(1, ds, scaler, opts)
		if err != nil {
			return nil, fmt.Errorf("device %s: %w", dev, err)
		}
		res.PerMount = append(res.PerMount, MountMetrics{Device: dev, Metrics: mr.Metrics, Samples: ds.Len()})
	}
	return res, nil
}

// Table renders the result as the paper's Table III.
func (r *Table3Result) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Table III — prediction accuracy of model %d per storage point", r.Model),
		Header: []string{"storage point", "absolute relative error (%)", "samples"},
	}
	for _, m := range r.PerMount {
		t.Rows = append(t.Rows, []string{m.Device, m.Metrics.String(), fmt.Sprintf("%d", m.Samples)})
	}
	return t
}
