// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI–§VIII) on the simulated substrate:
//
//	Fig. 4    — feature↔throughput Pearson correlations on the EOS trace
//	Table I   — the 23 candidate model architectures
//	Table II  — per-model accuracy and train/predict time on `people`
//	Table III — model 1 accuracy per storage point
//	Fig. 5a   — Geomancy dynamic vs LRU/MRU/LFU/random dynamic
//	Fig. 5b   — Geomancy dynamic vs random static / Geomancy static
//	Table IV  — per-mount throughput and utilization vs Geomancy
//	Fig. 6    — adaptation when a second workload appears
//	§VIII     — training/prediction overhead at Z = 6 and Z = 13
//
// Every experiment takes an Options value whose zero state means "paper
// scale"; Quick() shrinks the workloads so the full suite runs in seconds
// for tests and benchmarks. Absolute numbers differ from the paper (the
// substrate is a simulator, not Bluesky); EXPERIMENTS.md records the
// shape comparisons.
package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"

	"geomancy/internal/telemetry"
)

// Options sizes an experiment run.
type Options struct {
	// Seed drives every stochastic component.
	Seed int64
	// Runs is the number of workload runs per policy (Fig. 5, Table IV,
	// Fig. 6).
	Runs int
	// BootstrapRuns precede measurement to fill the ReplayDB, mirroring
	// the paper's 10,000-access warm-up.
	BootstrapRuns int
	// Epochs is the neural-network training epoch count.
	Epochs int
	// WindowX is the per-device ReplayDB window for training.
	WindowX int
	// CooldownRuns is the Geomancy decision cadence.
	CooldownRuns int
	// TraceRecords sizes the synthetic EOS trace (Fig. 4, overhead).
	TraceRecords int
	// SeriesWindow is the access-count bucket for throughput series.
	SeriesWindow int
	// Parallelism sizes the engine worker pool. 0 (and 1) keep the serial
	// engine, so the paper-reproduction numbers are bit-for-bit those of
	// the original single-threaded implementation.
	Parallelism int
}

// Paper returns the paper-scale options.
func Paper(seed int64) Options {
	return Options{
		Seed:          seed,
		Runs:          50,
		BootstrapRuns: 25,
		Epochs:        200,
		WindowX:       2000,
		CooldownRuns:  5,
		TraceRecords:  50000,
		SeriesWindow:  500,
	}
}

// Quick returns reduced options for tests and benchmarks.
func Quick(seed int64) Options {
	return Options{
		Seed:          seed,
		Runs:          8,
		BootstrapRuns: 3,
		Epochs:        6,
		WindowX:       400,
		CooldownRuns:  2,
		TraceRecords:  4000,
		SeriesWindow:  200,
	}
}

func (o Options) withDefaults() Options {
	def := Paper(o.Seed)
	if o.Runs == 0 {
		o.Runs = def.Runs
	}
	if o.BootstrapRuns == 0 {
		o.BootstrapRuns = def.BootstrapRuns
	}
	if o.Epochs == 0 {
		o.Epochs = def.Epochs
	}
	if o.WindowX == 0 {
		o.WindowX = def.WindowX
	}
	if o.CooldownRuns == 0 {
		o.CooldownRuns = def.CooldownRuns
	}
	if o.TraceRecords == 0 {
		o.TraceRecords = def.TraceRecords
	}
	if o.SeriesWindow == 0 {
		o.SeriesWindow = def.SeriesWindow
	}
	return o
}

// Point is one bucket of a throughput-over-accesses series.
type Point struct {
	// AccessIndex is the global access count at the end of the bucket.
	AccessIndex int64
	// Throughput is the mean observed throughput in the bucket (bytes/s).
	Throughput float64
}

// Series is a named throughput trajectory plus the movement bars beneath
// Fig. 5's graphs.
type Series struct {
	Name      string
	Points    []Point
	Movements []MovementBar
	// Mean is the overall mean per-access throughput (bytes/s).
	Mean float64
	// Std is the standard deviation of per-access throughput.
	Std float64
	// Accesses is the total access count.
	Accesses int64
	// LatencyP50/P95/P99 are per-access latency percentiles in seconds,
	// estimated from a fixed-bucket histogram over the whole series.
	LatencyP50, LatencyP95, LatencyP99 float64
}

// MovementBar is one Fig. 5 movement annotation.
type MovementBar struct {
	AccessIndex int64
	Moved       int
}

// seriesBuilder accumulates per-access throughput into fixed-size buckets
// and per-access latency into a histogram for the percentile summary.
type seriesBuilder struct {
	window  int64
	count   int64
	sum     float64
	all     []float64
	points  []Point
	latency *telemetry.Histogram
}

func newSeriesBuilder(window int) *seriesBuilder {
	if window <= 0 {
		window = 500
	}
	return &seriesBuilder{
		window:  int64(window),
		latency: telemetry.NewHistogram(telemetry.DefLatencyBuckets),
	}
}

func (b *seriesBuilder) add(tp, lat float64) {
	b.count++
	b.sum += tp
	b.all = append(b.all, tp)
	b.latency.Observe(lat)
	if b.count%b.window == 0 {
		b.points = append(b.points, Point{AccessIndex: b.count, Throughput: b.sum / float64(b.window)})
		b.sum = 0
	}
}

func (b *seriesBuilder) finish(name string) Series {
	if rem := b.count % b.window; rem != 0 {
		b.points = append(b.points, Point{AccessIndex: b.count, Throughput: b.sum / float64(rem)})
	}
	s := Series{Name: name, Points: b.points, Accesses: b.count}
	s.Mean, s.Std = meanStd(b.all)
	s.LatencyP50 = b.latency.Quantile(0.50)
	s.LatencyP95 = b.latency.Quantile(0.95)
	s.LatencyP99 = b.latency.Quantile(0.99)
	return s
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, v := range xs {
		mean += v
	}
	mean /= float64(len(xs))
	var sq float64
	for _, v := range xs {
		d := v - mean
		sq += d * d
	}
	return mean, math.Sqrt(sq / float64(len(xs)))
}

// GBps formats bytes/second as the paper's GB/s.
func GBps(v float64) string { return fmt.Sprintf("%.2f GB/s", v/1e9) }

// Table is a rendered text table.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Caption string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (header + rows).
func (t *Table) RenderCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// RenderSeries writes series as aligned text: one block per series with
// its movement bars, plus the summary line the evaluation quotes.
func RenderSeries(w io.Writer, series []Series) error {
	var b strings.Builder
	for _, s := range series {
		fmt.Fprintf(&b, "%s: mean %s ± %s over %d accesses (p50/p95/p99 latency %.1f/%.1f/%.1f ms)\n",
			s.Name, GBps(s.Mean), GBps(s.Std), s.Accesses,
			s.LatencyP50*1e3, s.LatencyP95*1e3, s.LatencyP99*1e3)
		for _, p := range s.Points {
			fmt.Fprintf(&b, "  access %6d  %s\n", p.AccessIndex, GBps(p.Throughput))
		}
		if len(s.Movements) > 0 {
			fmt.Fprintf(&b, "  movements:")
			for _, m := range s.Movements {
				fmt.Fprintf(&b, " [%d: %d files]", m.AccessIndex, m.Moved)
			}
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
