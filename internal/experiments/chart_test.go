package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func chartSeries() []Series {
	return []Series{
		{
			Name:     "Geomancy dynamic",
			Mean:     2e9,
			Accesses: 1000,
			Points: []Point{
				{AccessIndex: 250, Throughput: 1e9},
				{AccessIndex: 500, Throughput: 2e9},
				{AccessIndex: 750, Throughput: 3e9},
				{AccessIndex: 1000, Throughput: 2.5e9},
			},
			Movements: []MovementBar{{AccessIndex: 500, Moved: 3}},
		},
		{
			Name:     "LFU",
			Mean:     1.5e9,
			Accesses: 1000,
			Points: []Point{
				{AccessIndex: 250, Throughput: 1.5e9},
				{AccessIndex: 500, Throughput: 1.4e9},
				{AccessIndex: 750, Throughput: 1.6e9},
				{AccessIndex: 1000, Throughput: 1.5e9},
			},
		},
	}
}

func TestRenderChart(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderChart(&buf, chartSeries(), 8); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"GB/s", "* = Geomancy dynamic", "o = LFU", "moves"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Peak value labeled on the y axis (3 GB/s).
	if !strings.Contains(out, "3.00 |") {
		t.Errorf("y-axis top label missing:\n%s", out)
	}
	// Both glyphs plotted.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("series glyphs missing")
	}
}

func TestRenderChartEdgeCases(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderChart(&buf, nil, 5); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Error("empty input should render nothing")
	}
	if err := RenderChart(&buf, []Series{{Name: "x"}}, 0); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Error("pointless series should render nothing")
	}
}

func TestRenderChartManyPoints(t *testing.T) {
	s := Series{Name: "dense", Accesses: 100000}
	for i := 0; i < 500; i++ {
		s.Points = append(s.Points, Point{AccessIndex: int64(i * 200), Throughput: 1e9 + float64(i%7)*1e8})
	}
	var buf bytes.Buffer
	if err := RenderChart(&buf, []Series{s}, 10); err != nil {
		t.Fatal(err)
	}
	// Columns capped: no line longer than ~120 chars.
	for _, line := range strings.Split(buf.String(), "\n") {
		if len(line) > 130 {
			t.Fatalf("line too long (%d chars)", len(line))
		}
	}
}
