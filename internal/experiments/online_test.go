package experiments

import (
	"reflect"
	"testing"
)

// shiftOptions spans one hotspot migration mid-measurement: 4 bootstrap +
// 16 measured runs with the scenario shifting a quarter of the keyspace
// every 10 runs, so the hot set moves while both learners are being
// scored.
func shiftOptions(seed int64) Options {
	return Options{
		Seed:          seed,
		Runs:          16,
		BootstrapRuns: 4,
		Epochs:        6,
		WindowX:       400,
		CooldownRuns:  2,
		TraceRecords:  4000,
		SeriesWindow:  200,
	}
}

// tailMean averages the last third of a series' windowed points — the
// post-shift regime of shiftOptions' hotspot-shift run.
func tailMean(s Series) float64 {
	pts := s.Points
	if len(pts) == 0 {
		return 0
	}
	tail := pts[len(pts)-len(pts)/3:]
	var sum float64
	for _, p := range tail {
		sum += p.Throughput
	}
	return sum / float64(len(tail))
}

// TestOnlineGeomancyReconvergesAfterShift: on a workload whose hot set
// migrates mid-run, incremental updates on the newest telemetry must
// track the shift faster than periodic full retrains over a window still
// dominated by pre-shift accesses. Same seed, same testbed construction,
// same decision cadence — the policies differ only in how they learn.
// The run is fully deterministic, so the margins are stable.
func TestOnlineGeomancyReconvergesAfterShift(t *testing.T) {
	opts := shiftOptions(3)
	online, _, tbO, err := runScenarioPolicy("hotspot-shift", onlineBuilder(opts), opts)
	if err != nil {
		t.Fatal(err)
	}
	tbO.db.Close()
	periodic, _, tbP, err := runScenarioPolicy("hotspot-shift", geomancyBuilder(opts), opts)
	if err != nil {
		t.Fatal(err)
	}
	tbP.db.Close()

	if online.Mean <= 0 || periodic.Mean <= 0 {
		t.Fatalf("degenerate series: online %v, periodic %v", online.Mean, periodic.Mean)
	}
	if online.Mean <= periodic.Mean {
		t.Errorf("online-geomancy mean %.3e did not beat periodic retrain %.3e on hotspot-shift",
			online.Mean, periodic.Mean)
	}
	ot, pt := tailMean(online), tailMean(periodic)
	if ot <= pt {
		t.Errorf("post-shift throughput: online %.3e <= periodic %.3e (no re-convergence advantage)", ot, pt)
	}
}

// TestOnlineUpdateDeterminism: the incremental-update path (scaler reuse,
// minibatch SGD on the newest window) must be bit-identical across
// same-seed runs, at serial and parallel training alike — otherwise
// online-geomancy would break the module's resume and replay guarantees.
func TestOnlineUpdateDeterminism(t *testing.T) {
	for _, parallelism := range []int{1, 4} {
		opts := shiftOptions(5)
		opts.Runs = 8
		opts.Parallelism = parallelism

		type outcome struct {
			Series Series
			Layout map[int64]string
		}
		run := func() outcome {
			t.Helper()
			s, _, tb, err := runScenarioPolicy("hotspot-shift", onlineBuilder(opts), opts)
			if err != nil {
				t.Fatal(err)
			}
			defer tb.db.Close()
			return outcome{Series: s, Layout: tb.cluster.Layout()}
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a, b) {
			t.Errorf("parallelism %d: same-seed online runs diverged", parallelism)
		}
	}
}
