package experiments

import (
	"fmt"
	"geomancy/internal/rng"
	"sort"
	"time"

	"geomancy/internal/core"
	"geomancy/internal/features"
	"geomancy/internal/mat"
	"geomancy/internal/nn"
	"geomancy/internal/trace"
)

// OverheadResult reproduces the §VIII overhead study: model 1 training and
// prediction time with the six live-system features and with thirteen
// features selected from the EOS logs.
type OverheadResult struct {
	Six      OverheadRow
	Thirteen OverheadRow
}

// OverheadRow is one configuration's measurement.
type OverheadRow struct {
	Features     int
	Samples      int
	TrainTime    time.Duration
	PredictTime  time.Duration // single-prediction latency
	PredictBatch time.Duration // full test-partition prediction
	Metrics      nn.Metrics
}

// thirteenFields are the EOS-log features of the paper's 13-metric
// configuration: the six live features plus the millisecond parts and the
// next most informative counters.
var thirteenFields = []string{
	"rb", "wb", "ots", "otms", "cts", "ctms", "fid", "fsid",
	"nrc", "nwc", "osize", "csize", "lid",
}

// Overhead measures train/predict cost for Z = 6 and Z = 13 on synthetic
// EOS telemetry of the configured size.
func Overhead(opts Options) (*OverheadResult, error) {
	opts = opts.withDefaults()
	gen := trace.NewGenerator(trace.GeneratorConfig{Seed: opts.Seed, Records: opts.TraceRecords})
	recs := gen.Generate(opts.TraceRecords)

	six, err := overheadFor(recs, 6, opts)
	if err != nil {
		return nil, err
	}
	thirteen, err := overheadFor(recs, 13, opts)
	if err != nil {
		return nil, err
	}
	return &OverheadResult{Six: six, Thirteen: thirteen}, nil
}

func overheadFor(recs []trace.EOSRecord, z int, opts Options) (OverheadRow, error) {
	ds, scaler, err := eosDataset(recs, z)
	if err != nil {
		return OverheadRow{}, err
	}
	rng := rng.NewRand(opts.Seed + int64(z))
	net, err := nn.BuildModel(1, z, rng)
	if err != nil {
		return OverheadRow{}, err
	}
	train, _, test := ds.Split()

	start := time.Now()
	if _, err := net.Fit(train, nn.FitConfig{
		Epochs:    opts.Epochs,
		BatchSize: 32,
		Optimizer: &nn.SGD{LR: 0.05},
		Rng:       rng,
	}); err != nil {
		return OverheadRow{}, err
	}
	trainTime := time.Since(start)

	start = time.Now()
	preds, idx := net.Predict(test)
	batchTime := time.Since(start)

	// Single-prediction latency: one feature row through the net.
	one := make([]float64, z)
	copy(one, test.X.Row(0))
	start = time.Now()
	const reps = 200
	for i := 0; i < reps; i++ {
		net.PredictOne([][]float64{one})
	}
	oneTime := time.Since(start) / reps

	return OverheadRow{
		Features:     z,
		Samples:      ds.Len(),
		TrainTime:    trainTime,
		PredictTime:  oneTime,
		PredictBatch: batchTime,
		Metrics:      denormMetrics(preds, test, idx, scaler),
	}, nil
}

// eosDataset builds a normalized dataset from EOS records using the first
// z fields of the 13-feature list, returning the target scaler for
// denormalized error reporting.
func eosDataset(recs []trace.EOSRecord, z int) (*nn.Dataset, *features.ScalarScaler, error) {
	if z > len(thirteenFields) {
		return nil, nil, fmt.Errorf("experiments: %d features exceeds the 13-feature set", z)
	}
	fieldPos := make([]int, z)
	for i, name := range thirteenFields[:z] {
		pos := -1
		for j, fn := range trace.FieldNames {
			if fn == name {
				pos = j
				break
			}
		}
		if pos < 0 {
			return nil, nil, fmt.Errorf("experiments: unknown EOS field %q", name)
		}
		fieldPos[i] = pos
	}
	sorted := make([]trace.EOSRecord, len(recs))
	copy(sorted, recs)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].OTS < sorted[j].OTS })

	rows := make([][]float64, len(sorted))
	targets := make([]float64, len(sorted))
	for i := range sorted {
		all := sorted[i].Fields()
		row := make([]float64, z)
		for c, p := range fieldPos {
			row[c] = all[p]
		}
		rows[i] = row
		targets[i] = sorted[i].Throughput()
	}
	targets = features.MovingAverage(targets, 8)
	for i := range targets {
		targets[i] = core.EncodeTarget(targets[i])
	}

	var fs features.MinMaxScaler
	x := fs.FitTransform(mat.FromRows(rows))
	ts := &features.ScalarScaler{}
	ts.Fit(targets)
	return nn.NewDataset(x, ts.TransformAll(targets)), ts, nil
}

// Table renders the overhead study.
func (r *OverheadResult) Table() *Table {
	t := &Table{
		Title:  "§VIII — training and prediction overhead of model 1",
		Header: []string{"features", "samples", "train time (s)", "predict one (ms)", "predict test set (ms)", "MARE (%)"},
	}
	for _, row := range []OverheadRow{r.Six, r.Thirteen} {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", row.Features),
			fmt.Sprintf("%d", row.Samples),
			fmt.Sprintf("%.3f", row.TrainTime.Seconds()),
			fmt.Sprintf("%.3f", float64(row.PredictTime.Microseconds())/1000),
			fmt.Sprintf("%.1f", float64(row.PredictBatch.Microseconds())/1000),
			row.Metrics.String(),
		})
	}
	return t
}
