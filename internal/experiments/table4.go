package experiments

import (
	"fmt"

	"geomancy/internal/policy"
)

// Table4Row is one row of the storage-point comparison.
type Table4Row struct {
	Name string
	// Mean and Std summarize the per-access throughput (bytes/s).
	Mean, Std float64
	// Usage is the share of accesses served by the device during the
	// Geomancy run, in percent (Geomancy's own row reports 100).
	Usage float64
}

// Table4Result reproduces the paper's Table IV: the throughput of placing
// every file on a single storage point, for each point, against Geomancy's
// learned layout, plus how Geomancy actually utilized each device.
type Table4Result struct {
	Rows []Table4Row
}

// Table4 runs experiment 2 (§VI-b): one all-files-on-one-mount run per
// device, then a Geomancy dynamic run whose per-device access shares form
// the utilization column.
func Table4(opts Options) (*Table4Result, error) {
	opts = opts.withDefaults()
	res := &Table4Result{}

	// Per-device single-mount runs.
	deviceNames := []string{"USBtmp", "pic", "tmp", "file0", "var", "people"}
	perDevice := make(map[string]Series)
	for _, dev := range deviceNames {
		s, tb, err := runPolicy(&policy.SingleMount{Device: dev}, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: all-on-%s: %w", dev, err)
		}
		tb.db.Close()
		perDevice[dev] = s
	}

	// Geomancy run for the utilization column and its own row.
	geo, loop, tb, err := runGeomancyDynamic(opts)
	if err != nil {
		return nil, err
	}
	defer tb.db.Close()
	_ = loop

	var totalAccesses int64
	usage := make(map[string]float64)
	for _, st := range tb.cluster.DeviceStats() {
		totalAccesses += st.Accesses
	}
	for _, st := range tb.cluster.DeviceStats() {
		if totalAccesses > 0 {
			usage[st.Name] = float64(st.Accesses) / float64(totalAccesses) * 100
		}
	}

	for _, dev := range deviceNames {
		s := perDevice[dev]
		res.Rows = append(res.Rows, Table4Row{Name: dev, Mean: s.Mean, Std: s.Std, Usage: usage[dev]})
	}
	res.Rows = append(res.Rows, Table4Row{Name: "Geomancy", Mean: geo.Mean, Std: geo.Std, Usage: 100})
	return res, nil
}

// Table renders the result as the paper's Table IV.
func (r *Table4Result) Table() *Table {
	t := &Table{
		Title:  "Table IV — performance and utilization of storage points available to Geomancy",
		Header: []string{"storage point", "avg throughput (GB/s)", "avg usage (%)"},
		Caption: "Per-device rows: every file served from that mount alone. " +
			"Usage: share of accesses Geomancy dynamic directed to the device.",
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Name,
			fmt.Sprintf("%.2f ± %.2f", row.Mean/1e9, row.Std/1e9),
			fmt.Sprintf("%.2f", row.Usage),
		})
	}
	return t
}

// Best returns the single-mount row with the highest mean throughput
// (file0 in the paper).
func (r *Table4Result) Best() Table4Row {
	var best Table4Row
	for _, row := range r.Rows {
		if row.Name != "Geomancy" && row.Mean > best.Mean {
			best = row
		}
	}
	return best
}

// Geomancy returns Geomancy's own row.
func (r *Table4Result) Geomancy() Table4Row {
	for _, row := range r.Rows {
		if row.Name == "Geomancy" {
			return row
		}
	}
	return Table4Row{}
}
