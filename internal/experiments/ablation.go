package experiments

import (
	"fmt"

	"geomancy/internal/core"
	"geomancy/internal/storagesim"
)

// AblationPoint is one configuration's outcome in an ablation sweep.
type AblationPoint struct {
	Label string
	// Mean is the mean per-access throughput achieved (bytes/s).
	Mean float64
	Std  float64
	// Moves counts file movements performed over the sweep run.
	Moves int
	// Deferred counts gap-scheduler deferrals (gap-scheduling sweep only).
	Deferred int
}

// AblationResult is a named sweep over one design decision.
type AblationResult struct {
	Name   string
	Points []AblationPoint
}

// Table renders the sweep.
func (r *AblationResult) Table() *Table {
	t := &Table{
		Title:  "Ablation — " + r.Name,
		Header: []string{"configuration", "mean throughput", "σ", "moves"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{p.Label, GBps(p.Mean), GBps(p.Std), fmt.Sprintf("%d", p.Moves)})
	}
	return t
}

// ablationRun executes the closed loop under one engine configuration and
// returns the achieved throughput statistics.
func ablationRun(opts Options, mutate func(*core.Config), gapScheduling bool) (AblationPoint, error) {
	tb, err := newTestbed(opts.Seed)
	if err != nil {
		return AblationPoint{}, err
	}
	defer tb.db.Close()
	if err := tb.bootstrap(opts.BootstrapRuns, opts.Seed+1); err != nil {
		return AblationPoint{}, err
	}
	cfg := engineConfig(opts)
	if mutate != nil {
		mutate(&cfg)
	}
	loop, err := core.NewLoop(tb.db, tb.cluster, tb.runner, cfg)
	if err != nil {
		return AblationPoint{}, err
	}
	if gapScheduling {
		loop.EnableGapScheduling()
	}
	sb := newSeriesBuilder(opts.SeriesWindow)
	loop.Observer = func(res storagesim.AccessResult, wl, run int) {
		sb.add(res.Throughput, res.End-res.Start)
	}
	for r := 0; r < opts.Runs; r++ {
		if _, err := loop.RunOnce(); err != nil {
			return AblationPoint{}, err
		}
	}
	s := sb.finish("")
	var moves int
	for _, mv := range loop.Movements() {
		moves += mv.Moved
	}
	return AblationPoint{Mean: s.Mean, Std: s.Std, Moves: moves, Deferred: len(loop.Deferrals())}, nil
}

// AblationEpsilon sweeps the exploration rate around the paper's 10%.
func AblationEpsilon(opts Options) (*AblationResult, error) {
	opts = opts.withDefaults()
	res := &AblationResult{Name: "exploration rate ε (paper: 0.1)"}
	for _, eps := range []float64{1e-9, 0.1, 0.3} {
		e := eps
		p, err := ablationRun(opts, func(c *core.Config) { c.Epsilon = e }, false)
		if err != nil {
			return nil, err
		}
		p.Label = fmt.Sprintf("ε = %.2g", eps)
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// AblationCooldown sweeps the movement cadence around the paper's
// every-5-runs choice ("moving files less frequently caused new placements
// to be less relevant... too often [and] the additional overhead from
// moving the files diminishes the performance increase", §VI).
func AblationCooldown(opts Options) (*AblationResult, error) {
	opts = opts.withDefaults()
	res := &AblationResult{Name: "cooldown runs between movements (paper: 5)"}
	for _, cd := range []int{1, 5, 10} {
		c := cd
		p, err := ablationRun(opts, func(cfg *core.Config) { cfg.CooldownRuns = c }, false)
		if err != nil {
			return nil, err
		}
		p.Label = fmt.Sprintf("every %d runs", cd)
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// AblationSmoothing compares the paper's moving average against the
// cumulative average it rejected and no smoothing at all (§V-E).
func AblationSmoothing(opts Options) (*AblationResult, error) {
	opts = opts.withDefaults()
	res := &AblationResult{Name: "telemetry smoothing (paper: moving average)"}
	for _, s := range []struct {
		label  string
		window int
	}{{"moving average (8)", 8}, {"cumulative average", -1}, {"none", 1}} {
		w := s.window
		p, err := ablationRun(opts, func(cfg *core.Config) { cfg.SmoothWindow = w }, false)
		if err != nil {
			return nil, err
		}
		p.Label = s.label
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// AblationOptimizer reproduces the paper's SGD-vs-Adam comparison (§V-G:
// "We tested out the Adam optimizer but it ended up giving us a higher
// mean and standard deviation of the absolute relative error").
func AblationOptimizer(opts Options) (*AblationResult, error) {
	opts = opts.withDefaults()
	res := &AblationResult{Name: "optimizer (paper: plain SGD)"}
	for _, o := range []string{"sgd", "adam"} {
		name := o
		p, err := ablationRun(opts, func(cfg *core.Config) { cfg.Optimizer = name }, false)
		if err != nil {
			return nil, err
		}
		p.Label = name
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// AblationModel compares the deployed dense model 1 against the recurrent
// runner-up model 18 inside the full closed loop.
func AblationModel(opts Options) (*AblationResult, error) {
	opts = opts.withDefaults()
	res := &AblationResult{Name: "architecture in the loop (paper deployed model 1)"}
	for _, m := range []int{1, 18} {
		n := m
		p, err := ablationRun(opts, func(cfg *core.Config) { cfg.ModelNumber = n }, false)
		if err != nil {
			return nil, err
		}
		p.Label = fmt.Sprintf("model %d", m)
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// AblationGapScheduling measures the §X movement-scheduler extension.
func AblationGapScheduling(opts Options) (*AblationResult, error) {
	opts = opts.withDefaults()
	res := &AblationResult{Name: "gap-aware movement scheduling (§X extension)"}
	for _, g := range []struct {
		label string
		on    bool
	}{{"off (paper)", false}, {"on", true}} {
		p, err := ablationRun(opts, nil, g.on)
		if err != nil {
			return nil, err
		}
		p.Label = g.label
		if g.on {
			p.Label = fmt.Sprintf("on (%d deferrals)", p.Deferred)
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}
