package experiments

import (
	"fmt"

	"geomancy/internal/core"
	"geomancy/internal/storagesim"
	"geomancy/internal/trace"
	"geomancy/internal/workload"
)

// Fig6Result captures experiment 3 (§VI-c, Fig. 6): a duplicate, untuned
// workload starts partway through a Geomancy-tuned run, changing the
// contention picture; Geomancy must adapt and push performance back up.
type Fig6Result struct {
	// Tuned is the Geomancy-managed workload's series.
	Tuned Series
	// Untuned is the interfering workload's series (it starts at
	// InterferenceStart accesses into the tuned run).
	Untuned Series
	// InterferenceStart is the tuned workload's access index when the
	// second workload appeared.
	InterferenceStart int64
	// PreMean, DipMean, RecoveredMean summarize the tuned workload's
	// throughput before interference, right after it starts, and at the
	// end of the run.
	PreMean, DipMean, RecoveredMean float64
}

// Fig6 runs the dual-workload scenario. The second workload uses its own
// file set (distinct IDs and paths) but the same mounts, so contention is
// shared while the data is not — "they access common mounts, but they do
// not use the same data".
func Fig6(opts Options) (*Fig6Result, error) {
	opts = opts.withDefaults()
	tb, err := newTestbed(opts.Seed)
	if err != nil {
		return nil, err
	}
	defer tb.db.Close()
	if err := tb.bootstrap(opts.BootstrapRuns, opts.Seed+1); err != nil {
		return nil, err
	}

	// Second working set: same shape, different identity.
	files2 := trace.BelleFileSet(opts.Seed + 1000)
	for i := range files2 {
		files2[i].ID += 100
		files2[i].Path = fmt.Sprintf("/belle2/dup/run%02d/sim%02d.root", i/6, i)
	}
	runner2 := workload.NewRunner(tb.cluster, files2, 2, opts.Seed+1001)
	if err := runner2.SpreadEvenly(tb.cluster.DeviceNames()); err != nil {
		return nil, err
	}

	loop, err := core.NewLoop(tb.db, tb.cluster, tb.runner, engineConfig(opts))
	if err != nil {
		return nil, err
	}
	tunedSB := newSeriesBuilder(opts.SeriesWindow)
	loop.Observer = func(res storagesim.AccessResult, wl, run int) {
		tunedSB.add(res.Throughput, res.End-res.Start)
	}
	untunedSB := newSeriesBuilder(opts.SeriesWindow)

	phase1 := opts.Runs / 2
	if phase1 < 1 {
		phase1 = 1
	}
	var preSum float64
	var preN int
	for r := 0; r < phase1; r++ {
		stats, err := loop.RunOnce()
		if err != nil {
			return nil, err
		}
		preSum += stats.MeanThroughput
		preN++
	}
	interferenceStart := tunedSB.count

	// Phase 2: the duplicate workload interleaves with the tuned one.
	var dipSum, recSum float64
	var dipN, recN int
	phase2 := opts.Runs - phase1
	if phase2 < 2 {
		phase2 = 2
	}
	for r := 0; r < phase2; r++ {
		var obsErr error
		if _, err := runner2.RunOnce(func(res storagesim.AccessResult, wl, run int) {
			if err := tb.observe(res, wl, run); err != nil && obsErr == nil {
				obsErr = err
			}
			untunedSB.add(res.Throughput, res.End-res.Start)
		}); err != nil {
			return nil, err
		}
		if obsErr != nil {
			return nil, obsErr
		}
		stats, err := loop.RunOnce()
		if err != nil {
			return nil, err
		}
		if r < phase2/2 {
			dipSum += stats.MeanThroughput
			dipN++
		} else {
			recSum += stats.MeanThroughput
			recN++
		}
	}

	tuned := tunedSB.finish("Geomancy-tuned workload")
	for _, mv := range loop.Movements() {
		if mv.Moved > 0 {
			tuned.Movements = append(tuned.Movements, MovementBar{AccessIndex: mv.AccessIndex, Moved: mv.Moved})
		}
	}
	res := &Fig6Result{
		Tuned:             tuned,
		Untuned:           untunedSB.finish("untuned duplicate workload"),
		InterferenceStart: interferenceStart,
	}
	if preN > 0 {
		res.PreMean = preSum / float64(preN)
	}
	if dipN > 0 {
		res.DipMean = dipSum / float64(dipN)
	}
	if recN > 0 {
		res.RecoveredMean = recSum / float64(recN)
	}
	return res, nil
}

// Summary renders the adaptation headline.
func (r *Fig6Result) Summary() string {
	return fmt.Sprintf(
		"Fig. 6 — interference at access %d: tuned workload %s before, %s during early interference, %s after adaptation",
		r.InterferenceStart, GBps(r.PreMean), GBps(r.DipMean), GBps(r.RecoveredMean))
}
