package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestAblationSweeps(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweeps are slow")
	}
	opts := Quick(21)
	opts.Runs = 4
	cases := []struct {
		name   string
		run    func(Options) (*AblationResult, error)
		points int
	}{
		{"epsilon", AblationEpsilon, 3},
		{"cooldown", AblationCooldown, 3},
		{"smoothing", AblationSmoothing, 3},
		{"optimizer", AblationOptimizer, 2},
		{"model", AblationModel, 2},
		{"gaps", AblationGapScheduling, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res, err := c.run(opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Points) != c.points {
				t.Fatalf("%d points, want %d", len(res.Points), c.points)
			}
			for _, p := range res.Points {
				if p.Label == "" {
					t.Error("unlabeled point")
				}
				if p.Mean <= 0 {
					t.Errorf("point %q has no throughput", p.Label)
				}
			}
			var buf bytes.Buffer
			if err := res.Table().Render(&buf); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), "Ablation") {
				t.Error("table title missing")
			}
		})
	}
}

func TestWeightedPoliciesExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	opts := Quick(22)
	opts.Runs = 4
	res, err := WeightedPolicies(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("%d series, want 3", len(res.Series))
	}
	names := map[string]bool{}
	for _, s := range res.Series {
		names[s.Name] = true
		if s.Mean <= 0 {
			t.Errorf("series %q empty", s.Name)
		}
	}
	if !names["LFU (capacity-weighted)"] {
		t.Errorf("weighted series missing: %v", names)
	}
	if len(res.GeomancyGain) != 2 {
		t.Errorf("gains = %v", res.GeomancyGain)
	}
}
