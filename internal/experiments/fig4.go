package experiments

import (
	"fmt"

	"geomancy/internal/features"
	"geomancy/internal/trace"
)

// Fig4Result is the Fig. 4 reproduction: the Pearson correlation of every
// EOS log field against measured throughput, with the paper's six chosen
// features flagged.
type Fig4Result struct {
	Correlations []features.Correlation
	// Chosen marks the fields the paper selected (rb, wb, ots/otms,
	// cts/ctms folded as ots/cts, fid, fsid).
	Chosen map[string]bool
	// Records is the trace size analyzed.
	Records int
}

// chosenFields are the Fig. 4 orange bars (§V-D), expanded to the raw
// second/millisecond columns of the log.
var chosenFields = map[string]bool{
	"rb": true, "wb": true,
	"ots": true, "otms": true,
	"cts": true, "ctms": true,
	"fid": true, "fsid": true,
}

// Fig4 generates a synthetic EOS trace and computes the field↔throughput
// correlation report.
func Fig4(opts Options) (*Fig4Result, error) {
	opts = opts.withDefaults()
	gen := trace.NewGenerator(trace.GeneratorConfig{Seed: opts.Seed, Records: opts.TraceRecords})
	recs := gen.Generate(opts.TraceRecords)
	if len(recs) == 0 {
		return nil, fmt.Errorf("experiments: empty trace")
	}

	cols := make([][]float64, len(trace.FieldNames))
	for i := range cols {
		cols[i] = make([]float64, len(recs))
	}
	target := make([]float64, len(recs))
	for j := range recs {
		fields := recs[j].Fields()
		for i, v := range fields {
			cols[i][j] = v
		}
		target[j] = recs[j].Throughput()
	}
	report := features.CorrelationReport(trace.FieldNames, cols, target)
	return &Fig4Result{Correlations: report, Chosen: chosenFields, Records: len(recs)}, nil
}

// Table renders the result in Fig. 4's spirit: one bar per field.
func (r *Fig4Result) Table() *Table {
	t := &Table{
		Title:  "Fig. 4 — correlation between EOS access features and throughput",
		Header: []string{"feature", "pearson r", "chosen", "bar"},
		Caption: fmt.Sprintf("%d synthetic EOS records; chosen = the paper's live-system features",
			r.Records),
	}
	for _, c := range r.Correlations {
		chosen := ""
		if r.Chosen[c.Name] {
			chosen = "*"
		}
		t.Rows = append(t.Rows, []string{c.Name, fmt.Sprintf("%+.3f", c.R), chosen, bar(c.R)})
	}
	return t
}

// bar renders a signed correlation as a ±20-char ASCII bar.
func bar(r float64) string {
	const width = 20
	n := int(r * width)
	switch {
	case n > 0:
		if n > width {
			n = width
		}
		return "|" + repeat('+', n)
	case n < 0:
		if n < -width {
			n = -width
		}
		return repeat('-', -n) + "|"
	default:
		return "|"
	}
}

func repeat(c byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}
