package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"geomancy/internal/scenario"
)

// The matrix must cover the whole scenario catalogue against every
// baseline plus the engine, with a winner per scenario and a consistent
// tally.
func TestPolicyMatrixCoversCatalogue(t *testing.T) {
	res, err := PolicyMatrix(Quick(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := scenario.Names(); !reflect.DeepEqual(res.Scenarios, want) {
		t.Errorf("scenarios = %v, want %v", res.Scenarios, want)
	}
	if len(res.Policies) < 9 || res.Policies[len(res.Policies)-1] != GeomancyName {
		t.Errorf("policies = %v, want ≥6 baselines then the learned family ending in %q", res.Policies, GeomancyName)
	}
	n := len(res.Policies)
	if res.Policies[n-2] != OnlineName || res.Policies[n-3] != TieredName {
		t.Errorf("learned tail = %v, want [%q %q %q]", res.Policies[n-3:], TieredName, OnlineName, GeomancyName)
	}
	if len(res.Mean) != len(res.Scenarios) || len(res.Winner) != len(res.Scenarios) {
		t.Fatalf("ragged result: %d scenarios, %d rows, %d winners",
			len(res.Scenarios), len(res.Mean), len(res.Winner))
	}
	for i, row := range res.Mean {
		if len(row) != len(res.Policies) {
			t.Fatalf("row %d has %d cells, want %d", i, len(row), len(res.Policies))
		}
		for j, v := range row {
			if v <= 0 {
				t.Errorf("scenario %s under %s: non-positive mean %v",
					res.Scenarios[i], res.Policies[j], v)
			}
		}
	}
	if res.GeomancyWins+res.GeomancyLosses != len(res.Scenarios) {
		t.Errorf("tally %d+%d does not cover %d scenarios",
			res.GeomancyWins, res.GeomancyLosses, len(res.Scenarios))
	}
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty rendered table")
	}
}

// Equal options must yield an identical matrix — every cell, winner, and
// the rendered table bit-for-bit.
func TestPolicyMatrixDeterministic(t *testing.T) {
	scenarios := []string{"zipfian-hot", "hotspot-shift"}
	a, err := PolicyMatrix(Quick(7), scenarios)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PolicyMatrix(Quick(7), scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same-seed policy matrices diverged")
	}
	var ta, tb bytes.Buffer
	if err := a.Table().Render(&ta); err != nil {
		t.Fatal(err)
	}
	if err := b.Table().Render(&tb); err != nil {
		t.Fatal(err)
	}
	if ta.String() != tb.String() {
		t.Fatal("same-seed rendered tables diverged")
	}
}
