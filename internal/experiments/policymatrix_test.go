package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"geomancy/internal/scenario"
)

// The matrix must cover the whole scenario catalogue against every
// baseline plus the engine, with a winner per scenario and a consistent
// tally.
func TestPolicyMatrixCoversCatalogue(t *testing.T) {
	res, err := PolicyMatrix(Quick(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := scenario.Names(); !reflect.DeepEqual(res.Scenarios, want) {
		t.Errorf("scenarios = %v, want %v", res.Scenarios, want)
	}
	if len(res.Policies) < 9 || res.Policies[len(res.Policies)-1] != GeomancyName {
		t.Errorf("policies = %v, want ≥6 baselines then the learned family ending in %q", res.Policies, GeomancyName)
	}
	n := len(res.Policies)
	if res.Policies[n-2] != ShardedName || res.Policies[n-3] != OnlineName || res.Policies[n-4] != TieredName {
		t.Errorf("learned tail = %v, want [%q %q %q %q]",
			res.Policies[n-4:], TieredName, OnlineName, ShardedName, GeomancyName)
	}
	if len(res.Mean) != len(res.Scenarios) || len(res.Winner) != len(res.Scenarios) {
		t.Fatalf("ragged result: %d scenarios, %d rows, %d winners",
			len(res.Scenarios), len(res.Mean), len(res.Winner))
	}
	for i, row := range res.Mean {
		if len(row) != len(res.Policies) {
			t.Fatalf("row %d has %d cells, want %d", i, len(row), len(res.Policies))
		}
		for j, v := range row {
			if v <= 0 {
				t.Errorf("scenario %s under %s: non-positive mean %v",
					res.Scenarios[i], res.Policies[j], v)
			}
		}
	}
	if res.GeomancyWins+res.GeomancyLosses != len(res.Scenarios) {
		t.Errorf("tally %d+%d does not cover %d scenarios",
			res.GeomancyWins, res.GeomancyLosses, len(res.Scenarios))
	}
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty rendered table")
	}
}

// The sharded coordinator column must hold parity with classic Geomancy:
// same telemetry, same network family, only the decision plane is
// partitioned — so its mean throughput should track the unsharded
// column on every scenario, not just in aggregate.
func TestShardedPolicyMatrixParity(t *testing.T) {
	res, err := PolicyMatrix(Quick(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	shardedCol, geomancyCol := -1, -1
	for j, name := range res.Policies {
		switch name {
		case ShardedName:
			shardedCol = j
		case GeomancyName:
			geomancyCol = j
		}
	}
	if shardedCol < 0 || geomancyCol < 0 {
		t.Fatalf("policies = %v, want both %q and %q", res.Policies, ShardedName, GeomancyName)
	}
	var shardedSum, geomancySum float64
	for i, row := range res.Mean {
		sharded, geomancy := row[shardedCol], row[geomancyCol]
		t.Logf("%-16s sharded %.3g  geomancy %.3g  (%.2fx)",
			res.Scenarios[i], sharded, geomancy, sharded/geomancy)
		if sharded <= 0 {
			t.Errorf("scenario %s: non-positive sharded mean %v", res.Scenarios[i], sharded)
		}
		// Partitioning restricts each file's candidate set to its shard
		// (plus escalations), so some drift is expected — but an
		// order-of-magnitude collapse on any scenario means the shard
		// engines are scoring through a broken adoption or fsid path.
		if sharded < 0.5*geomancy {
			t.Errorf("scenario %s: sharded mean %.3g below half of geomancy's %.3g",
				res.Scenarios[i], sharded, geomancy)
		}
		shardedSum += sharded
		geomancySum += geomancy
	}
	if ratio := shardedSum / geomancySum; ratio < 0.8 {
		t.Errorf("aggregate sharded/geomancy throughput ratio %.3f, want ≥ 0.8", ratio)
	}
}

// Equal options must yield an identical matrix — every cell, winner, and
// the rendered table bit-for-bit.
func TestPolicyMatrixDeterministic(t *testing.T) {
	scenarios := []string{"zipfian-hot", "hotspot-shift"}
	a, err := PolicyMatrix(Quick(7), scenarios)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PolicyMatrix(Quick(7), scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same-seed policy matrices diverged")
	}
	var ta, tb bytes.Buffer
	if err := a.Table().Render(&ta); err != nil {
		t.Fatal(err)
	}
	if err := b.Table().Render(&tb); err != nil {
		t.Fatal(err)
	}
	if ta.String() != tb.String() {
		t.Fatal("same-seed rendered tables diverged")
	}
}
