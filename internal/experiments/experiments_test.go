package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestOptionsDefaults(t *testing.T) {
	o := Options{Seed: 3}.withDefaults()
	p := Paper(3)
	if o != p {
		t.Errorf("withDefaults = %+v, want paper scale %+v", o, p)
	}
	q := Quick(3)
	if q.withDefaults() != q {
		t.Error("Quick options should survive withDefaults unchanged")
	}
}

func TestSeriesBuilderBuckets(t *testing.T) {
	sb := newSeriesBuilder(3)
	for i := 1; i <= 7; i++ {
		sb.add(float64(i), float64(i)*1e-3)
	}
	s := sb.finish("x")
	// Buckets: (1,2,3)→2 at 3; (4,5,6)→5 at 6; (7)→7 at 7.
	if len(s.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(s.Points))
	}
	if s.Points[0].Throughput != 2 || s.Points[1].Throughput != 5 || s.Points[2].Throughput != 7 {
		t.Errorf("bucket means = %+v", s.Points)
	}
	if s.Points[2].AccessIndex != 7 {
		t.Errorf("final bucket index = %d, want 7", s.Points[2].AccessIndex)
	}
	if s.Accesses != 7 || s.Mean != 4 {
		t.Errorf("summary: accesses %d mean %v", s.Accesses, s.Mean)
	}
}

func TestSeriesBuilderDefaultWindow(t *testing.T) {
	sb := newSeriesBuilder(0)
	if sb.window != 500 {
		t.Errorf("default window = %d, want 500", sb.window)
	}
}

func TestMeanStd(t *testing.T) {
	m, s := meanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 || math.Abs(s-2) > 1e-12 {
		t.Errorf("meanStd = %v, %v; want 5, 2", m, s)
	}
	if m, s := meanStd(nil); m != 0 || s != 0 {
		t.Error("empty meanStd should be 0,0")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:   "T",
		Header:  []string{"a", "bb"},
		Rows:    [][]string{{"xxx", "y"}},
		Caption: "cap",
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"T\n", "a    bb", "xxx  y", "cap"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableRenderCSV(t *testing.T) {
	tab := &Table{
		Header: []string{"a", "b"},
		Rows:   [][]string{{"x,y", `q"u`}},
	}
	var buf bytes.Buffer
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,y\",\"q\"\"u\"\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestGBps(t *testing.T) {
	if got := GBps(4.98e9); got != "4.98 GB/s" {
		t.Errorf("GBps = %q", got)
	}
}

func TestFig4CorrelationShape(t *testing.T) {
	res, err := Fig4(Quick(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Records == 0 || len(res.Correlations) == 0 {
		t.Fatal("empty result")
	}
	r := map[string]float64{}
	for _, c := range res.Correlations {
		r[c.Name] = c.R
	}
	// The Fig. 4 shape: rb and wb positive; rt and wt strongly negative;
	// fid ≈ 0; open/close timestamps positive.
	if r["rb"] <= 0 {
		t.Errorf("rb correlation = %v, want positive", r["rb"])
	}
	if r["rt"] >= -0.2 {
		t.Errorf("rt correlation = %v, want strongly negative", r["rt"])
	}
	if r["wt"] >= 0 {
		t.Errorf("wt correlation = %v, want negative", r["wt"])
	}
	if math.Abs(r["fid"]) > 0.15 {
		t.Errorf("fid correlation = %v, want ≈0", r["fid"])
	}
	if r["ots"] <= 0 || r["cts"] <= 0 {
		t.Errorf("timestamp correlations = %v, %v; want positive", r["ots"], r["cts"])
	}
	// The chosen set matches the paper's features.
	for _, f := range []string{"rb", "wb", "ots", "cts", "fid", "fsid"} {
		if !res.Chosen[f] {
			t.Errorf("feature %s should be flagged chosen", f)
		}
	}
	// Render smoke test.
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rb") {
		t.Error("table missing rb row")
	}
}

func TestBarRendering(t *testing.T) {
	if got := bar(0.5); got != "|++++++++++" {
		t.Errorf("bar(0.5) = %q", got)
	}
	if got := bar(-0.25); got != "-----|" {
		t.Errorf("bar(-0.25) = %q", got)
	}
	if got := bar(0); got != "|" {
		t.Errorf("bar(0) = %q", got)
	}
	if got := bar(2); got != "|"+strings.Repeat("+", 20) {
		t.Errorf("bar(2) = %q (must clamp)", got)
	}
	if got := bar(-2); got != strings.Repeat("-", 20)+"|" {
		t.Errorf("bar(-2) = %q (must clamp)", got)
	}
}

func TestTable1ListsAllModels(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 23 {
		t.Fatalf("Table I has %d rows, want 23", len(tab.Rows))
	}
	if !strings.Contains(tab.Rows[0][1], "16Z (Dense) ReLU") {
		t.Errorf("model 1 spec = %q", tab.Rows[0][1])
	}
	if !strings.Contains(tab.Rows[11][1], "LSTM") {
		t.Errorf("model 12 spec = %q", tab.Rows[11][1])
	}
}

func TestTestbedBootstrapCoversDevices(t *testing.T) {
	tb, err := newTestbed(5)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.db.Close()
	if err := tb.bootstrap(4, 6); err != nil {
		t.Fatal(err)
	}
	if tb.db.Len() == 0 {
		t.Fatal("bootstrap produced no telemetry")
	}
	devs := tb.db.Devices()
	if len(devs) < 4 {
		t.Errorf("bootstrap telemetry covers %d devices, want most of 6", len(devs))
	}
	st := tb.policyState()
	if len(st.Devices) != 6 || len(st.Files) != 24 {
		t.Errorf("policy state: %d devices, %d files", len(st.Devices), len(st.Files))
	}
	var withTp int
	for _, d := range st.Devices {
		if d.Throughput > 0 {
			withTp++
		}
	}
	if withTp < 4 {
		t.Errorf("only %d devices have observed throughput", withTp)
	}
	for _, f := range st.Files {
		if f.Accesses == 0 {
			t.Errorf("file %d never accessed during bootstrap", f.ID)
		}
	}
}

func TestDeviceDataset(t *testing.T) {
	tb, err := newTestbed(7)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.db.Close()
	if err := tb.bootstrap(4, 8); err != nil {
		t.Fatal(err)
	}
	idx := deviceIndex(tb.cluster.DeviceNames())
	ds, scaler, err := deviceDataset(tb.db, "file0", idx, 1000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() < 20 || ds.X.Cols != 6 {
		t.Errorf("dataset %dx%d", ds.Len(), ds.X.Cols)
	}
	// Normalized.
	for _, v := range ds.X.Data {
		if v < 0 || v > 1 {
			t.Fatalf("feature %v outside [0,1]", v)
		}
	}
	for _, v := range ds.Y {
		if v < 0 || v > 1 {
			t.Fatalf("target %v outside [0,1]", v)
		}
	}
	if scaler == nil || scaler.Max <= scaler.Min {
		t.Errorf("scaler not fitted: %+v", scaler)
	}
	if _, _, err := deviceDataset(tb.db, "nonexistent", idx, 1000, 8); err == nil {
		t.Error("unknown device should error")
	}
}

func TestRenderSeries(t *testing.T) {
	s := Series{
		Name:      "x",
		Points:    []Point{{AccessIndex: 10, Throughput: 1e9}},
		Movements: []MovementBar{{AccessIndex: 5, Moved: 3}},
		Mean:      1e9,
		Accesses:  10,
	}
	var buf bytes.Buffer
	if err := RenderSeries(&buf, []Series{s}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"x: mean 1.00 GB/s", "access     10", "[5: 3 files]"} {
		if !strings.Contains(out, want) {
			t.Errorf("series render missing %q:\n%s", want, out)
		}
	}
}
