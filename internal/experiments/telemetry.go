package experiments

import (
	"context"
	"fmt"
	"geomancy/internal/rng"
	"sort"

	"geomancy/internal/core"
	"geomancy/internal/features"
	"geomancy/internal/mat"
	"geomancy/internal/nn"
	"geomancy/internal/policy"
	"geomancy/internal/replaydb"
	"geomancy/internal/scenario"
	"geomancy/internal/storagesim"
	"geomancy/internal/trace"
)

// testbed bundles one fresh simulated system.
type testbed struct {
	cluster *storagesim.Cluster
	files   []trace.BelleFile
	runner  scenario.Workload
	db      *replaydb.DB
	// bookkeeping for policy state
	lastAccess map[int64]float64
	accesses   map[int64]int64
}

// newTestbed builds a Bluesky cluster with the BELLE II working set spread
// evenly — the starting state of the paper's experiments.
func newTestbed(seed int64) (*testbed, error) {
	return newScenarioTestbed("belle", seed)
}

// newScenarioTestbed builds a Bluesky cluster driven by the named
// scenario from the workload plane, its population spread evenly.
func newScenarioTestbed(scenarioName string, seed int64) (*testbed, error) {
	cluster := storagesim.NewBluesky(seed)
	runner, err := scenario.New(scenarioName, cluster, nil, seed)
	if err != nil {
		return nil, err
	}
	if err := runner.SpreadEvenly(cluster.DeviceNames()); err != nil {
		return nil, err
	}
	db, err := replaydb.Open(replaydb.Options{})
	if err != nil {
		return nil, err
	}
	return &testbed{
		cluster:    cluster,
		files:      runner.Files(),
		runner:     runner,
		db:         db,
		lastAccess: make(map[int64]float64),
		accesses:   make(map[int64]int64),
	}, nil
}

// observe records one access into the db and the policy bookkeeping.
func (tb *testbed) observe(res storagesim.AccessResult, wl, run int) error {
	tb.lastAccess[res.FileID] = res.End
	tb.accesses[res.FileID]++
	_, err := tb.db.AppendAccess(replaydb.AccessRecord{
		Time:         res.Start,
		Workload:     int32(wl),
		Run:          int32(run),
		FileID:       res.FileID,
		Path:         res.Path,
		Device:       res.Device,
		BytesRead:    res.BytesRead,
		BytesWritten: res.BytesWritten,
		OpenTS:       res.OpenTS,
		OpenTMS:      res.OpenTMS,
		CloseTS:      res.CloseTS,
		CloseTMS:     res.CloseTMS,
		Throughput:   res.Throughput,
	})
	return err
}

// policyState snapshots the system the way the paper's base cases see it:
// device throughput from recent ReplayDB telemetry, file recency and
// frequency from the run so far.
func (tb *testbed) policyState() policy.State {
	var s policy.State
	for _, name := range tb.cluster.DeviceNames() {
		recent := tb.db.RecentByDevice(name, 200)
		var tp float64
		if len(recent) > 0 {
			for i := range recent {
				tp += recent[i].Throughput
			}
			tp /= float64(len(recent))
		}
		dev := tb.cluster.Device(name)
		s.Devices = append(s.Devices, policy.DeviceInfo{
			Name:       name,
			Throughput: tp,
			Free:       dev.Free(),
			Class:      dev.Profile.Class,
		})
	}
	layout := tb.cluster.Layout()
	for _, f := range tb.files {
		s.Files = append(s.Files, policy.FileInfo{
			ID:         f.ID,
			Path:       f.Path,
			Size:       f.Size,
			Device:     layout[f.ID],
			LastAccess: tb.lastAccess[f.ID],
			Accesses:   tb.accesses[f.ID],
		})
	}
	return s
}

// bootstrap runs warm-up workload runs with occasional random shuffles so
// every device accumulates telemetry, mirroring the paper's pre-experiment
// capture of 10,000 accesses per file set.
func (tb *testbed) bootstrap(runs int, seed int64) error {
	shuffler := &policy.RandomDynamic{Rng: rng.New(seed)}
	for r := 0; r < runs; r++ {
		var obsErr error
		if _, err := tb.runner.RunOnce(func(res storagesim.AccessResult, wl, run int) {
			if err := tb.observe(res, wl, run); err != nil && obsErr == nil {
				obsErr = err
			}
		}); err != nil {
			return err
		}
		if obsErr != nil {
			return obsErr
		}
		layout, err := shuffler.Propose(context.Background(), tb.policyState())
		if err != nil {
			return err
		}
		if layout != nil {
			if _, err := tb.runner.ApplyLayout(layout); err != nil {
				return err
			}
		}
	}
	return nil
}

// bootstrapUntil keeps running bootstrap rounds until the named device has
// accumulated at least target telemetry records (bounded by a generous run
// cap so a misconfigured target cannot spin forever).
func (tb *testbed) bootstrapUntil(device string, target int, opts Options, seed int64) error {
	const roundRuns = 5
	maxRounds := 200
	for round := 0; round < maxRounds; round++ {
		if len(tb.db.RecentByDevice(device, target)) >= target {
			return nil
		}
		if err := tb.bootstrap(roundRuns, seed+int64(round)); err != nil {
			return err
		}
	}
	if got := len(tb.db.RecentByDevice(device, target)); got < target/4 {
		return fmt.Errorf("experiments: device %s accumulated only %d of %d records", device, got, target)
	}
	return nil
}

// deviceDataset assembles the normalized, smoothed training dataset of one
// mount's telemetry — the per-mount modeling task of Tables II and III.
// The returned scaler denormalizes targets back to bytes/second so error
// percentages are computed on the real throughput scale (as the paper
// reports them), not on normalized values that pass near zero.
func deviceDataset(db *replaydb.DB, device string, devIndex map[string]int, windowX, smooth int) (*nn.Dataset, *features.ScalarScaler, error) {
	recs := db.RecentByDevice(device, windowX)
	if len(recs) < 20 {
		return nil, nil, fmt.Errorf("experiments: only %d records for device %s", len(recs), device)
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Time < recs[j].Time })
	rows := make([][]float64, len(recs))
	targets := make([]float64, len(recs))
	for i := range recs {
		rows[i] = core.FeatureVector(&recs[i], devIndex)
		targets[i] = recs[i].Throughput
	}
	// Smooth per data ID (§V-E): mixing files would blur the per-file
	// throughput differences the features predict.
	core.SmoothByFile(recs, rows, targets, smooth)
	// Model the target in log space (see core.EncodeTarget).
	for i := range targets {
		targets[i] = core.EncodeTarget(targets[i])
	}
	var fs features.MinMaxScaler
	x := fs.FitTransform(mat.FromRows(rows))
	ts := &features.ScalarScaler{}
	ts.Fit(targets)
	return nn.NewDataset(x, ts.TransformAll(targets)), ts, nil
}

// denormMetrics evaluates predictions against targets on the original
// throughput scale.
func denormMetrics(preds []float64, test *nn.Dataset, idx []int, scaler *features.ScalarScaler) nn.Metrics {
	if len(preds) == 0 {
		return nn.Metrics{Diverged: true}
	}
	targets := make([]float64, len(idx))
	out := make([]float64, len(preds))
	for i, r := range idx {
		targets[i] = core.DecodeTarget(scaler.Inverse(test.Y[r]))
		p := preds[i]
		if p < 0 {
			p = 0
		} else if p > 1 {
			p = 1
		}
		out[i] = core.DecodeTarget(scaler.Inverse(p))
	}
	return nn.EvaluatePredictions(out, targets)
}

// deviceIndex maps device names to their profile-order index.
func deviceIndex(names []string) map[string]int {
	idx := make(map[string]int, len(names))
	for i, n := range names {
		idx[n] = i
	}
	return idx
}
