// Package faultnet wraps net.Listener and net.Conn with deterministic,
// seeded fault injection: dropped connections, added latency, partial
// writes, and mid-stream disconnects. It exists so that every layer of the
// agents plane — monitors, the query client, control agents, and the
// Interface Daemon — can be exercised under the network failures a real
// deployment sees ("Geomancy and the target system are separate entities"
// communicating only over the network, §V-A) without flaky,
// timing-dependent tests.
//
// Determinism: every connection draws its fault decisions from a private
// rand.Rand seeded by (network seed, connection index). Connection indexes
// are assigned in Accept/Dial order, so as long as the code under test
// establishes connections in a deterministic order (the closed loop dials
// its agents sequentially), the exact same operations fail on the exact
// same connections run after run, regardless of goroutine scheduling.
package faultnet

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"geomancy/internal/rng"
)

// Config tunes a fault-injecting Network. All rates are probabilities in
// [0, 1] evaluated independently per I/O operation; the zero value injects
// nothing.
type Config struct {
	// Seed derives every connection's private fault stream.
	Seed int64
	// DropRate is the per-operation probability of severing the
	// connection mid-stream: the operation fails and the conn is closed,
	// exactly like a peer crash or a cut cable.
	DropRate float64
	// DelayRate is the per-operation probability of sleeping Delay before
	// the operation proceeds.
	DelayRate float64
	// Delay is the injected latency; default 1ms when DelayRate > 0.
	Delay time.Duration
	// PartialWriteRate is the per-write probability that only a prefix of
	// the buffer reaches the wire before the connection is severed — the
	// torn-message case stream decoders must survive.
	PartialWriteRate float64
}

func (c Config) withDefaults() Config {
	if c.Delay <= 0 {
		c.Delay = time.Millisecond
	}
	return c
}

// Stats counts the faults a Network has injected.
type Stats struct {
	Conns         uint64 // connections wrapped
	Drops         uint64 // connections severed mid-operation
	Delays        uint64 // operations delayed
	PartialWrites uint64 // writes truncated before severing
}

// Network is a shared fault-injection domain: every listener and dialer
// wrapped by one Network shares its config and stats, and each wrapped
// connection gets the next deterministic fault stream.
type Network struct {
	cfg Config

	connIndex atomic.Uint64
	drops     atomic.Uint64
	delays    atomic.Uint64
	partials  atomic.Uint64
}

// New builds a fault-injection domain from cfg.
func New(cfg Config) *Network {
	return &Network{cfg: cfg.withDefaults()}
}

// Stats snapshots the injected-fault counters.
func (n *Network) Stats() Stats {
	return Stats{
		Conns:         n.connIndex.Load(),
		Drops:         n.drops.Load(),
		Delays:        n.delays.Load(),
		PartialWrites: n.partials.Load(),
	}
}

// Listener wraps ln so every accepted connection injects faults.
func (n *Network) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, net: n}
}

// Dial wraps net.Dial with fault injection on the resulting connection.
func (n *Network) Dial(network, addr string) (net.Conn, error) {
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return n.Wrap(c), nil
}

// Wrap attaches the next deterministic fault stream to c.
func (n *Network) Wrap(c net.Conn) net.Conn {
	idx := n.connIndex.Add(1)
	// splitmix64-style scramble keeps per-connection streams decorrelated
	// even for adjacent indexes.
	seed := n.cfg.Seed ^ int64(idx*0x9E3779B97F4A7C15)
	return &conn{
		Conn: c,
		net:  n,
		rng:  rng.New(seed),
	}
}

type listener struct {
	net.Listener
	net *Network
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.net.Wrap(c), nil
}

// errDropped is the error surfaced by an injected disconnect.
type errDropped struct{ op string }

func (e errDropped) Error() string {
	return fmt.Sprintf("faultnet: connection dropped during %s", e.op)
}

// Timeout and Temporary mark the error as non-timeout so callers treat it
// like a real peer reset, not a deadline.
func (errDropped) Timeout() bool   { return false }
func (errDropped) Temporary() bool { return false }

// conn injects faults on one connection. The rng is guarded by mu because
// reads and writes may run on different goroutines; within one side the
// operation order is the caller's, so the decision sequence stays
// deterministic for deterministic callers.
type conn struct {
	net.Conn
	net *Network

	mu      sync.Mutex
	rng     *rng.RNG
	dropped bool
}

// decide draws the fate of one operation: drop, delay, and (for writes)
// partial truncation.
func (c *conn) decide(write bool) (drop, delay, partial bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dropped {
		return true, false, false
	}
	cfg := c.net.cfg
	if cfg.DropRate > 0 && c.rng.Float64() < cfg.DropRate {
		c.dropped = true
		return true, false, false
	}
	if cfg.DelayRate > 0 && c.rng.Float64() < cfg.DelayRate {
		delay = true
	}
	if write && cfg.PartialWriteRate > 0 && c.rng.Float64() < cfg.PartialWriteRate {
		c.dropped = true
		partial = true
	}
	return false, delay, partial
}

func (c *conn) Read(p []byte) (int, error) {
	drop, delay, _ := c.decide(false)
	if drop {
		c.net.drops.Add(1)
		c.Conn.Close()
		return 0, errDropped{op: "read"}
	}
	if delay {
		c.net.delays.Add(1)
		time.Sleep(c.net.cfg.Delay)
	}
	return c.Conn.Read(p)
}

func (c *conn) Write(p []byte) (int, error) {
	drop, delay, partial := c.decide(true)
	if drop {
		c.net.drops.Add(1)
		c.Conn.Close()
		return 0, errDropped{op: "write"}
	}
	if delay {
		c.net.delays.Add(1)
		time.Sleep(c.net.cfg.Delay)
	}
	if partial {
		c.net.partials.Add(1)
		c.net.drops.Add(1)
		n := len(p) / 2
		if n > 0 {
			n, _ = c.Conn.Write(p[:n])
		}
		c.Conn.Close()
		return n, errDropped{op: "write"}
	}
	return c.Conn.Write(p)
}
