package faultnet

import (
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections on ln and echoes bytes back.
func echoServer(ln net.Listener) {
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		go func() {
			defer c.Close()
			io.Copy(c, c)
		}()
	}
}

func TestZeroConfigPassesTrafficThrough(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fn := New(Config{Seed: 1})
	ln := fn.Listener(raw)
	defer ln.Close()
	go echoServer(ln)

	conn, err := fn.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("hello, fault-free world")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Errorf("echoed %q, want %q", got, msg)
	}
	if s := fn.Stats(); s.Drops != 0 || s.PartialWrites != 0 {
		t.Errorf("zero config injected faults: %+v", s)
	}
}

func TestDropSeversConnection(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	go echoServer(raw)

	fn := New(Config{Seed: 7, DropRate: 1})
	conn, err := fn.Dial("tcp", raw.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("doomed")); err == nil {
		t.Fatal("write on a DropRate=1 conn should fail")
	}
	// The conn stays dead: later operations keep failing.
	if _, err := conn.Read(make([]byte, 4)); err == nil {
		t.Fatal("read after drop should fail")
	}
	if s := fn.Stats(); s.Drops == 0 {
		t.Errorf("drop not counted: %+v", s)
	}
}

func TestPartialWriteTruncates(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	recv := make(chan []byte, 1)
	go func() {
		c, err := raw.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		b, _ := io.ReadAll(c)
		recv <- b
	}()

	fn := New(Config{Seed: 3, PartialWriteRate: 1})
	conn, err := fn.Dial("tcp", raw.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("0123456789abcdef")
	n, err := conn.Write(msg)
	if err == nil {
		t.Fatal("partial write should report an error")
	}
	if n >= len(msg) {
		t.Fatalf("wrote %d bytes, want a strict prefix of %d", n, len(msg))
	}
	select {
	case got := <-recv:
		if len(got) >= len(msg) {
			t.Errorf("peer received %d bytes, want fewer than %d", len(got), len(msg))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer never saw the truncated stream close")
	}
	if s := fn.Stats(); s.PartialWrites == 0 {
		t.Errorf("partial write not counted: %+v", s)
	}
}

// Determinism: two Networks with the same seed inject faults at the same
// operation offsets on the same connection index.
func TestSameSeedSameFaultSequence(t *testing.T) {
	sequence := func(seed int64) []int {
		raw, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer raw.Close()
		go echoServer(raw)
		fn := New(Config{Seed: seed, DropRate: 0.3})
		var fails []int
		for c := 0; c < 8; c++ {
			conn, err := fn.Dial("tcp", raw.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			for op := 0; op < 10; op++ {
				if _, err := conn.Write([]byte("x")); err != nil {
					fails = append(fails, c*100+op)
					break
				}
			}
			conn.Close()
		}
		return fails
	}
	a := sequence(42)
	b := sequence(42)
	if len(a) == 0 {
		t.Fatal("DropRate=0.3 over 80 ops injected nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("fault sequences differ in length: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault sequences diverge at %d: %v vs %v", i, a, b)
		}
	}
	c := sequence(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical fault sequences")
	}
}

func TestDelayInjectsLatency(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	go echoServer(raw)

	fn := New(Config{Seed: 5, DelayRate: 1, Delay: 20 * time.Millisecond})
	conn, err := fn.Dial("tcp", raw.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	if _, err := conn.Write([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Errorf("write took %v, want ≥ 20ms injected delay", d)
	}
	if s := fn.Stats(); s.Delays == 0 {
		t.Errorf("delay not counted: %+v", s)
	}
}
