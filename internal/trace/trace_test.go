package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestThroughputFormula(t *testing.T) {
	r := EOSRecord{RB: 1000, WB: 500, OTS: 100, OTMS: 0, CTS: 101, CTMS: 500}
	// 1500 bytes over 1.5 s = 1000 B/s.
	if got := r.Throughput(); got != 1000 {
		t.Errorf("Throughput = %v, want 1000", got)
	}
	if got := r.Duration(); got != 1.5 {
		t.Errorf("Duration = %v, want 1.5", got)
	}
}

func TestThroughputZeroDuration(t *testing.T) {
	r := EOSRecord{RB: 1000, OTS: 100, CTS: 100}
	if got := r.Throughput(); got != 0 {
		t.Errorf("Throughput with zero duration = %v, want 0", got)
	}
}

func TestValidate(t *testing.T) {
	good := EOSRecord{RB: 1, OTS: 10, CTS: 11}
	if err := good.Validate(); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
	cases := []EOSRecord{
		{RB: -1},
		{OTMS: 1000},
		{CTMS: -5},
		{OTS: 20, CTS: 10},
		{RT: -1},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid record accepted", i)
		}
	}
}

func TestFieldsMatchesFieldNames(t *testing.T) {
	r := EOSRecord{}
	fields := r.Fields()
	if len(fields) != len(FieldNames) {
		t.Fatalf("Fields returned %d values, FieldNames has %d", len(fields), len(FieldNames))
	}
	if len(FieldNames)+1 != NumFields {
		t.Errorf("numeric fields (%d) + path should equal NumFields (%d)", len(FieldNames), NumFields)
	}
}

func TestChosenFeatures(t *testing.T) {
	r := EOSRecord{RB: 10, WB: 20, OTS: 100, OTMS: 500, CTS: 101, CTMS: 250, FID: 7, FSID: 3}
	got := r.ChosenFeatures()
	want := []float64{10, 20, 100.5, 101.25, 7, 3}
	if len(got) != len(ChosenFeatureNames) {
		t.Fatalf("ChosenFeatures returned %d values, names list has %d", len(got), len(ChosenFeatureNames))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("feature %s = %v, want %v", ChosenFeatureNames[i], got[i], want[i])
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	cfg := GeneratorConfig{Seed: 42, Records: 100}
	a := NewGenerator(cfg).Generate(100)
	b := NewGenerator(cfg).Generate(100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs between equal-seed generators", i)
		}
	}
	c := NewGenerator(GeneratorConfig{Seed: 43, Records: 100}).Generate(100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGeneratorRecordsValid(t *testing.T) {
	recs := NewGenerator(GeneratorConfig{Seed: 7}).Generate(2000)
	var lastOpen int64
	for i := range recs {
		if err := recs[i].Validate(); err != nil {
			t.Fatalf("record %d invalid: %v", i, err)
		}
		if recs[i].OTS < lastOpen {
			t.Fatalf("record %d opens before record %d (time went backwards)", i, i-1)
		}
		lastOpen = recs[i].OTS
		if recs[i].Throughput() <= 0 {
			t.Fatalf("record %d has non-positive throughput", i)
		}
		if !strings.HasPrefix(recs[i].Path, "/eos/") {
			t.Fatalf("record %d has unexpected path %q", i, recs[i].Path)
		}
	}
}

func TestGeneratorDefaultsApplied(t *testing.T) {
	g := NewGenerator(GeneratorConfig{})
	def := DefaultGeneratorConfig()
	if g.cfg.Devices != def.Devices || g.cfg.Files != def.Files {
		t.Errorf("defaults not applied: %+v", g.cfg)
	}
	if n := len(g.Generate(0)); n != def.Records {
		t.Errorf("Generate(0) produced %d records, want default %d", n, def.Records)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	recs := NewGenerator(GeneratorConfig{Seed: 9}).Generate(50)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round trip lost records: %d -> %d", len(recs), len(back))
	}
	for i := range recs {
		if recs[i] != back[i] {
			t.Fatalf("record %d changed in round trip:\n  out: %+v\n  in:  %+v", i, recs[i], back[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input should error")
	}
	if _, err := ReadCSV(strings.NewReader("a,b,c\n1,2,3\n")); err == nil {
		t.Error("wrong column count should error")
	}
	// Valid header, bad value.
	var buf bytes.Buffer
	if err := WriteCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	bad := buf.String() + strings.Repeat("x,", NumFields-1) + "p\n"
	if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
		t.Error("non-numeric value should error")
	}
}

// Property: CSV round trip preserves throughput for arbitrary valid records.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := NewGenerator(GeneratorConfig{Seed: rng.Int63(), Records: 5}).Generate(5)
		var buf bytes.Buffer
		if err := WriteCSV(&buf, recs); err != nil {
			return false
		}
		back, err := ReadCSV(&buf)
		if err != nil || len(back) != len(recs) {
			return false
		}
		for i := range recs {
			if recs[i].Throughput() != back[i].Throughput() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBelleFileSet(t *testing.T) {
	files := BelleFileSet(1)
	if len(files) != BelleFileCount {
		t.Fatalf("got %d files, want %d", len(files), BelleFileCount)
	}
	var sawMin, sawMax bool
	for i, f := range files {
		if f.Size < BelleMinFileSize || f.Size > BelleMaxFileSize {
			t.Errorf("file %d size %d outside paper range", i, f.Size)
		}
		if f.ID != int64(i+1) {
			t.Errorf("file %d has ID %d, want %d", i, f.ID, i+1)
		}
		if f.Size == BelleMinFileSize {
			sawMin = true
		}
		if f.Size == BelleMaxFileSize {
			sawMax = true
		}
	}
	if !sawMin || !sawMax {
		t.Error("file set should pin the paper's 583 KB and 1.1 GB extremes")
	}
	// Deterministic.
	again := BelleFileSet(1)
	for i := range files {
		if files[i] != again[i] {
			t.Fatal("BelleFileSet not deterministic")
		}
	}
}

func TestBelleRunAccessPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	seq := BelleRun(rng, BelleFileCount)

	// Every file appears, in runs of 10..20 successive accesses.
	seen := make(map[int]bool)
	runLen := 1
	checkRun := func(l int) {
		if l < 10 || l > 20 {
			t.Fatalf("run length %d outside 10..20", l)
		}
	}
	for i := 1; i < len(seq); i++ {
		if seq[i].FileIndex == seq[i-1].FileIndex {
			runLen++
		} else {
			checkRun(runLen)
			runLen = 1
		}
		seen[seq[i].FileIndex] = true
	}
	checkRun(runLen)
	seen[seq[0].FileIndex] = true
	if len(seen) != BelleFileCount {
		t.Errorf("run touched %d files, want %d", len(seen), BelleFileCount)
	}

	// Read-heavy: writes well under 20%.
	var writes int
	for _, a := range seq {
		if a.Write {
			writes++
		}
		if a.Fraction <= 0 || a.Fraction > 1 {
			t.Fatalf("fraction %v out of (0,1]", a.Fraction)
		}
	}
	if frac := float64(writes) / float64(len(seq)); frac > 0.2 {
		t.Errorf("write fraction %v too high for a read-heavy workload", frac)
	}
}

func TestBelleRunDefaultCount(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	seq := BelleRun(rng, 0)
	max := 0
	for _, a := range seq {
		if a.FileIndex > max {
			max = a.FileIndex
		}
	}
	if max != BelleFileCount-1 {
		t.Errorf("default run max file index = %d, want %d", max, BelleFileCount-1)
	}
}
